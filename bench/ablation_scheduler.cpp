// Ablation: the HEFT scheduler (§4.4) vs naive placement policies.
//
// HEFT's communication-aware EFT placement should beat round-robin /
// random / min-load on communication-heavy patterns (stencil, fft), and
// tie on trivial (no edges, any balanced placement works).
#include "bench_util.hpp"

int main() {
  using namespace ompc;
  using namespace ompc::taskbench;

  const int nodes = 8;
  const mpi::NetworkModel net = bench::bench_network();
  const std::vector<std::pair<std::string, core::SchedulerKind>> policies = {
      {"HEFT", core::SchedulerKind::Heft},
      {"round-robin", core::SchedulerKind::RoundRobin},
      {"random", core::SchedulerKind::Random},
      {"min-load", core::SchedulerKind::MinLoad}};

  std::printf("=== Ablation: scheduler policy — 8 nodes, 16x16 graph, 2 ms "
              "tasks, CCR 0.5 (communication-heavy), %d reps ===\n",
              bench::repetitions());

  Table table({"pattern", "HEFT", "round-robin", "random", "min-load"});
  for (Pattern pattern :
       {Pattern::Stencil1D, Pattern::Fft, Pattern::Tree, Pattern::Trivial}) {
    TaskBenchSpec spec;
    spec.pattern = pattern;
    spec.steps = 16;
    spec.width = 16;
    spec.iterations = 400'000;  // 2 ms
    spec.mode = KernelMode::Sleep;
    spec.output_bytes = bytes_for_ccr(spec.task_seconds(), 0.5, net);

    std::vector<std::string> row{pattern_name(pattern)};
    for (const auto& [name, kind] : policies) {
      core::ClusterOptions opts;
      opts.num_workers = nodes;
      opts.network = net;
      opts.scheduler = kind;
      const RunningStats s =
          bench::timed_runs(spec, [&] { return run_ompc(spec, opts); });
      row.push_back(bench::mean_pm_dev(s));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::printf("\n(expected: random clearly worst; HEFT at or near the best "
              "on the communication-heavy patterns — the §4.3 replication "
              "makes stencil forgiving of striped placements, so HEFT, "
              "round-robin and min-load bunch together there; ties on "
              "trivial)\n");
  return 0;
}
