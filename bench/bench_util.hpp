// Shared harness pieces for the figure-reproduction benches: the dilated
// cluster network, repetition handling (mean +- stddev over runs, like the
// paper's OMPC Bench tool), and result validation on every run.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <iostream>
#include <string>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "taskbench/kernel.hpp"
#include "taskbench/runners.hpp"

namespace ompc::bench {

/// Repetitions per configuration (paper: 10; default 3 here to keep the
/// full suite in CI time — override with OMPC_BENCH_REPS).
inline int repetitions() {
  if (const char* env = std::getenv("OMPC_BENCH_REPS"))
    return std::max(1, std::atoi(env));
  return 3;
}

/// The benches' simulated interconnect: EDR InfiniBand dilated consistently
/// with the compute dilation (DESIGN.md §2) — 20 us latency, 100 MB/s per
/// link, 8 hardware channels (VCIs).
inline mpi::NetworkModel bench_network() {
  return {20'000, 100.0e6, 8};
}

/// Runs `fn` `repetitions()` times, validates each run's checksum and
/// accumulates wall seconds.
inline RunningStats timed_runs(const taskbench::TaskBenchSpec& spec,
                               const std::function<taskbench::RunResult()>& fn) {
  const std::uint64_t expect = taskbench::expected_checksum(spec);
  RunningStats stats;
  for (int rep = 0; rep < repetitions(); ++rep) {
    const taskbench::RunResult r = fn();
    if (r.checksum != expect) {
      std::fprintf(stderr, "VALIDATION FAILED (checksum %016llx != %016llx)\n",
                   static_cast<unsigned long long>(r.checksum),
                   static_cast<unsigned long long>(expect));
      std::exit(1);
    }
    stats.add(r.wall_s);
  }
  return stats;
}

inline std::string mean_pm_dev(const RunningStats& s, int precision = 3) {
  return Table::num(s.mean(), precision) + " +- " +
         Table::num(s.stddev(), precision);
}

}  // namespace ompc::bench
