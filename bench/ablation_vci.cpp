// Ablation: Virtual Communication Interfaces (§6.1 compiled MPICH with 64
// VCIs; §4.2 stripes events over communicators to exploit them).
//
// The simulated network serializes transfers per (src, dst, channel) link,
// so more channels = more concurrent wires. Communication-heavy Task Bench
// should speed up with channel count and saturate once concurrency is
// exhausted.
#include "bench_util.hpp"

int main() {
  using namespace ompc;
  using namespace ompc::taskbench;

  std::printf("=== Ablation: VCI / channel count — stencil, 8 nodes, 16x16 "
              "graph, 2 ms tasks, CCR 0.5, %d reps ===\n",
              bench::repetitions());

  Table table({"channels(VCIs)", "time (s)"});
  for (int channels : {1, 2, 4, 8, 16}) {
    mpi::NetworkModel net = bench::bench_network();
    net.channels = channels;

    TaskBenchSpec spec;
    spec.pattern = Pattern::Stencil1D;
    spec.steps = 16;
    spec.width = 16;
    spec.iterations = 400'000;  // 2 ms
    spec.mode = KernelMode::Sleep;
    spec.output_bytes = bytes_for_ccr(spec.task_seconds(), 0.5, net);

    core::ClusterOptions opts;
    opts.num_workers = 8;
    opts.network = net;
    opts.vci = channels;

    const RunningStats s =
        bench::timed_runs(spec, [&] { return run_ompc(spec, opts); });
    table.add_row({std::to_string(channels), bench::mean_pm_dev(s)});
  }
  table.print(std::cout);
  std::printf("\n(expected: time falls as channels increase, then "
              "saturates)\n");
  return 0;
}
