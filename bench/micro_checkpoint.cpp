// Checkpoint-locality microbenchmark: what the §5 snapshot data plane
// costs the *head node*, as machine-checkable JSON (BENCH_checkpoint.json).
//
// The workload is dirty-heavy on purpose — a stepwise Task Bench stencil
// writes every buffer every wave, so with checkpoint_period = 1 each
// boundary must re-snapshot the whole working set. Under
// CheckpointLocality::Head that volume crosses the head NIC at every
// boundary (the Fig. 7a-style bottleneck); under WorkerLocal/Buddy the
// workers snapshot in place (plus a worker->worker buddy replica) and the
// head ships O(metadata) commands.
//
// Asserted invariants (exit 1 on violation):
//  - Head mode moves the dirty volume through the head (sanity: the
//    workload really is head-bound in the baseline);
//  - Buddy mode moves < 1% of that through the head per boundary —
//    metadata only — while taking the same logical snapshots;
//  - recovery after killing a snapshot owner under Buddy mode reproduces
//    bitwise-identical results (restored from the buddy replicas).
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <vector>

#include "bench_util.hpp"
#include "taskbench/kernel.hpp"

namespace {

using namespace ompc;
using namespace ompc::taskbench;

const char* locality_name(core::CheckpointLocality l) {
  switch (l) {
    case core::CheckpointLocality::Head: return "Head";
    case core::CheckpointLocality::WorkerLocal: return "WorkerLocal";
    case core::CheckpointLocality::Buddy: return "Buddy";
  }
  return "?";
}

}  // namespace

int main() {
  using core::CheckpointLocality;
  using core::RuntimeStats;

  const int reps = ompc::bench::repetitions();

  // Dirty-heavy: every buffer written every wave, 128 KiB each.
  TaskBenchSpec spec;
  spec.pattern = Pattern::Stencil1D;
  spec.steps = 8;
  spec.width = 8;
  spec.iterations = 0;
  spec.mode = KernelMode::Sleep;
  spec.output_bytes = 128 * 1024;

  core::ClusterOptions base;
  base.num_workers = 3;
  base.checkpoint_period = 1;

  const std::uint64_t expect = expected_checksum(spec);

  std::printf(
      "=== micro_checkpoint: §5 snapshot locality vs head traffic "
      "(%dx%d steps, %zu KiB buffers, %d reps) ===\n",
      spec.steps, spec.width, spec.output_bytes / 1024, reps);

  struct ModeResult {
    std::int64_t head_bytes = 0;
    std::int64_t dirty_bytes = 0;
    std::int64_t logical_bytes = 0;
    std::int64_t checkpoints = 0;
    std::int64_t replicas = 0;
    std::int64_t cache_hits = 0;
    double capture_ms = 0.0;
  };
  ModeResult results[3];
  const CheckpointLocality modes[] = {CheckpointLocality::Head,
                                      CheckpointLocality::WorkerLocal,
                                      CheckpointLocality::Buddy};
  for (int m = 0; m < 3; ++m) {
    core::ClusterOptions opts = base;
    opts.checkpoint_locality = modes[m];
    for (int rep = 0; rep < reps; ++rep) {
      const RunResult r = run_ompc_stepwise(spec, opts);
      if (r.checksum != expect) {
        std::fprintf(stderr, "VALIDATION FAILED in %s mode\n",
                     locality_name(modes[m]));
        return 1;
      }
      results[m].head_bytes = r.stats.checkpoint_head_bytes;
      results[m].dirty_bytes = r.stats.checkpoint_dirty_bytes;
      results[m].logical_bytes = r.stats.checkpoint_bytes;
      results[m].checkpoints = r.stats.checkpoints;
      results[m].replicas = r.stats.snapshot_replicas;
      results[m].cache_hits = r.stats.schedule_cache_hits;
      results[m].capture_ms = ns_to_ms(r.stats.checkpoint_ns);
    }
    const ModeResult& mr = results[m];
    std::printf(
        "%-12s: %8.1f KiB through head (%.1f KiB/boundary), "
        "%.1f KiB dirty/boundary, %lld replicas, capture %.2f ms\n",
        locality_name(modes[m]), static_cast<double>(mr.head_bytes) / 1024,
        static_cast<double>(mr.head_bytes) /
            static_cast<double>(mr.checkpoints) / 1024,
        static_cast<double>(mr.dirty_bytes) /
            static_cast<double>(mr.checkpoints) / 1024,
        static_cast<long long>(mr.replicas), mr.capture_ms);
  }
  const double ratio =
      results[0].head_bytes == 0
          ? 1.0
          : static_cast<double>(results[2].head_bytes) /
                static_cast<double>(results[0].head_bytes);

  // --- recovery: kill a snapshot owner under Buddy mode ------------------
  TaskBenchSpec kspec = spec;
  kspec.iterations = 2'000'000;  // 10 ms sleep tasks: the kill lands mid-wave
  core::ClusterOptions kopts = base;
  kopts.checkpoint_locality = CheckpointLocality::Buddy;
  kopts.heartbeat_period_ms = 5;
  kopts.heartbeat_timeout_ms = 50;
  kopts.kills.push_back({2, 60'000'000});
  const std::uint64_t kexpect = expected_checksum(kspec);
  std::int64_t recoveries = 0;
  bool recovery_ok = true;
  for (int rep = 0; rep < reps; ++rep) {
    const RunResult r = run_ompc_stepwise(kspec, kopts);
    recovery_ok = recovery_ok && r.checksum == kexpect &&
                  r.stats.recoveries >= 1 && r.stats.workers_lost == 1;
    recoveries += r.stats.recoveries;
  }
  std::printf(
      "recovery (owner killed, Buddy): %s, %.1f recoveries/run\n",
      recovery_ok ? "bitwise-identical" : "DIVERGED",
      static_cast<double>(recoveries) / reps);

  {
    std::ofstream json("BENCH_checkpoint.json");
    json << "{\n"
         << "  \"bench\": \"micro_checkpoint\",\n"
         << "  \"reps\": " << reps << ",\n"
         << "  \"steps\": " << spec.steps << ",\n"
         << "  \"width\": " << spec.width << ",\n"
         << "  \"workers\": " << base.num_workers << ",\n"
         << "  \"buffer_bytes\": " << spec.output_bytes << ",\n"
         << "  \"checkpoints\": " << results[0].checkpoints << ",\n"
         << "  \"checkpoint_logical_bytes\": " << results[0].logical_bytes
         << ",\n"
         << "  \"head_mode_head_bytes\": " << results[0].head_bytes << ",\n"
         << "  \"workerlocal_mode_head_bytes\": " << results[1].head_bytes
         << ",\n"
         << "  \"buddy_mode_head_bytes\": " << results[2].head_bytes << ",\n"
         << "  \"buddy_over_head_ratio\": " << ratio << ",\n"
         << "  \"buddy_snapshot_replicas\": " << results[2].replicas << ",\n"
         << "  \"schedule_cache_hits\": " << results[2].cache_hits << ",\n"
         << "  \"recovery_bitwise_identical\": "
         << (recovery_ok ? "true" : "false") << "\n"
         << "}\n";
  }
  std::printf("wrote BENCH_checkpoint.json\n");

  // --- hard gates (CI fails on regression) -------------------------------
  int status = 0;
  if (results[0].head_bytes <
      results[0].dirty_bytes / 2) {  // boundary 0 is head-resident
    std::fprintf(stderr,
                 "FAIL: Head mode moved only %lld B through the head for "
                 "%lld dirty B — the baseline is no longer head-bound and "
                 "the comparison is vacuous\n",
                 static_cast<long long>(results[0].head_bytes),
                 static_cast<long long>(results[0].dirty_bytes));
    status = 1;
  }
  if (ratio >= 0.01) {
    std::fprintf(stderr,
                 "FAIL: Buddy mode moved %.2f%% of the Head-mode volume "
                 "through the head (want < 1%%: metadata only) — snapshot "
                 "bytes are crossing the head NIC again\n",
                 ratio * 100.0);
    status = 1;
  }
  if (results[2].logical_bytes != results[0].logical_bytes ||
      results[2].checkpoints != results[0].checkpoints) {
    std::fprintf(stderr,
                 "FAIL: Buddy mode took different snapshots (%lld B / %lld "
                 "captures) than Head mode (%lld B / %lld) — the modes are "
                 "no longer comparable\n",
                 static_cast<long long>(results[2].logical_bytes),
                 static_cast<long long>(results[2].checkpoints),
                 static_cast<long long>(results[0].logical_bytes),
                 static_cast<long long>(results[0].checkpoints));
    status = 1;
  }
  if (results[2].replicas == 0) {
    std::fprintf(stderr, "FAIL: Buddy mode shipped zero buddy replicas\n");
    status = 1;
  }
  if (!recovery_ok) {
    std::fprintf(stderr,
                 "FAIL: recovery after killing the snapshot owner did not "
                 "reproduce bitwise-identical results from the buddy "
                 "replicas\n");
    status = 1;
  }
  return status;
}
