// Ablation: multi-tenant fair-share vs solo tail latency.
//
// A latency-sensitive NARROW tenant (2-wide stencil waves of short tasks,
// WDRR weight 2) shares the cluster with a WIDE throughput tenant (10-wide
// trivial waves) and a mid-size stencil tenant (both weight 1). Waves are
// non-preemptive, so the narrow tenant's tail latency is bounded by how
// often the deficit-round-robin token comes back around — the fairness
// property the scheduler exists to provide. Three measurements:
//   1. the narrow tenant alone (solo): the per-wave latency baseline
//      (submit -> wave complete, through the same tenant queue machinery);
//   2. the narrow tenant under mixed load: p50/p95/p99 of the same metric,
//      plus every tenant's checksum against its solo oracle;
//   3. elastic pool + admission counters across the mixed runs.
// The gate: narrow-tenant p99 under mixed load stays within 3x its solo
// p99, and every tenant's result is bitwise identical to running alone.
#include <fstream>

#include "bench_util.hpp"
#include "common/time.hpp"
#include "taskbench/kernel.hpp"

using namespace ompc;
using namespace ompc::taskbench;

namespace {

TaskBenchSpec narrow_spec() {
  TaskBenchSpec s;
  s.pattern = Pattern::Stencil1D;
  s.steps = 30;
  s.width = 2;
  s.iterations = 600'000;  // 3 ms per task
  s.output_bytes = 1024;
  s.mode = KernelMode::Sleep;
  return s;
}

TaskBenchSpec wide_spec() {
  TaskBenchSpec s;
  s.pattern = Pattern::Trivial;
  s.steps = 30;
  s.width = 10;
  s.iterations = 600'000;
  s.output_bytes = 1024;
  s.mode = KernelMode::Sleep;
  return s;
}

TaskBenchSpec stencil_spec() {
  TaskBenchSpec s;
  s.pattern = Pattern::Stencil1D;
  s.steps = 30;
  s.width = 6;
  s.iterations = 600'000;
  s.output_bytes = 1024;
  s.mode = KernelMode::Sleep;
  return s;
}

/// Appends one run's per-wave latencies (ms) to `out`.
void collect_latencies(const core::TenantStats& ts, SampleStats& out) {
  for (std::int64_t ns : ts.wave_latency_ns) out.add(ns_to_ms(ns));
}

}  // namespace

int main() {
  const int reps = bench::repetitions();

  core::ClusterOptions opts;
  opts.num_workers = 6;
  opts.network = bench::bench_network();

  std::printf("=== Ablation: tenancy — narrow (w=2, weight 2) vs wide "
              "(w=10) + stencil (w=6), 6 nodes, 30 steps, 3 ms tasks, "
              "%d reps ===\n", reps);

  // --- 1. solo baseline: the narrow tenant alone -------------------------
  SampleStats solo_lat_ms;
  RunningStats solo_wall;
  bool ok = true;
  for (int rep = 0; rep < reps; ++rep) {
    std::vector<TenantStream> streams{{narrow_spec(), 2.0}};
    const core::RuntimeStats rs = run_multi_tenant(opts, streams);
    ok = ok && streams[0].checksum == expected_checksum(streams[0].spec);
    collect_latencies(streams[0].stats, solo_lat_ms);
    solo_wall.add(ns_to_s(rs.wall_ns));
  }

  // --- 2. mixed load: narrow + wide + stencil -----------------------------
  SampleStats mixed_lat_ms;
  RunningStats mixed_wall;
  std::int64_t cache_hits = 0;
  std::int64_t rejections = 0;
  std::int64_t pool_peak = 0;
  std::int64_t pool_retired = 0;
  std::int64_t tenant_waves = 0;
  SampleStats wide_lat_ms;
  SampleStats stencil_lat_ms;
  for (int rep = 0; rep < reps; ++rep) {
    std::vector<TenantStream> streams{{narrow_spec(), 2.0},
                                      {wide_spec(), 1.0},
                                      {stencil_spec(), 1.0}};
    const core::RuntimeStats rs = run_multi_tenant(opts, streams);
    for (const TenantStream& st : streams) {
      if (st.checksum != expected_checksum(st.spec)) {
        std::fprintf(stderr, "VALIDATION FAILED (%s under mixed load)\n",
                     pattern_name(st.spec.pattern));
        ok = false;
      }
      rejections += st.stats.rejected_waves;
    }
    collect_latencies(streams[0].stats, mixed_lat_ms);
    collect_latencies(streams[1].stats, wide_lat_ms);
    collect_latencies(streams[2].stats, stencil_lat_ms);
    cache_hits += streams[0].stats.schedule_cache_hits;
    pool_peak = std::max(pool_peak, rs.pool_threads_peak);
    pool_retired += rs.pool_threads_retired;
    tenant_waves += rs.tenant_waves;
    mixed_wall.add(ns_to_s(rs.wall_ns));
  }

  const double solo_p99 = solo_lat_ms.percentile(0.99);
  const double mixed_p99 = mixed_lat_ms.percentile(0.99);
  const double ratio = solo_p99 > 0.0 ? mixed_p99 / solo_p99 : 0.0;

  Table table({"tenant", "load", "p50 (ms)", "p95 (ms)", "p99 (ms)"});
  table.add_row({"narrow w=2 (weight 2)", "solo",
                 Table::num(solo_lat_ms.percentile(0.50), 2),
                 Table::num(solo_lat_ms.percentile(0.95), 2),
                 Table::num(solo_p99, 2)});
  table.add_row({"narrow w=2 (weight 2)", "mixed",
                 Table::num(mixed_lat_ms.percentile(0.50), 2),
                 Table::num(mixed_lat_ms.percentile(0.95), 2),
                 Table::num(mixed_p99, 2)});
  table.add_row({"wide w=10 (weight 1)", "mixed",
                 Table::num(wide_lat_ms.percentile(0.50), 2),
                 Table::num(wide_lat_ms.percentile(0.95), 2),
                 Table::num(wide_lat_ms.percentile(0.99), 2)});
  table.add_row({"stencil w=6 (weight 1)", "mixed",
                 Table::num(stencil_lat_ms.percentile(0.50), 2),
                 Table::num(stencil_lat_ms.percentile(0.95), 2),
                 Table::num(stencil_lat_ms.percentile(0.99), 2)});
  table.print(std::cout);

  std::printf(
      "\nnarrow p99 mixed/solo ratio %.2fx (limit 3x); schedule cache hits "
      "%lld; admission rejections %lld; pool peak %lld threads, %lld "
      "retired; %lld tenant waves across %d mixed runs\n",
      ratio, static_cast<long long>(cache_hits),
      static_cast<long long>(rejections), static_cast<long long>(pool_peak),
      static_cast<long long>(pool_retired),
      static_cast<long long>(tenant_waves), reps);

  {
    std::ofstream json("BENCH_tenancy.json");
    json << "{\n"
         << "  \"bench\": \"ablation_tenancy\",\n"
         << "  \"reps\": " << reps << ",\n"
         << "  \"workers\": " << opts.num_workers << ",\n"
         << "  \"narrow_solo_p50_ms\": " << solo_lat_ms.percentile(0.50)
         << ",\n"
         << "  \"narrow_solo_p95_ms\": " << solo_lat_ms.percentile(0.95)
         << ",\n"
         << "  \"narrow_solo_p99_ms\": " << solo_p99 << ",\n"
         << "  \"narrow_mixed_p50_ms\": " << mixed_lat_ms.percentile(0.50)
         << ",\n"
         << "  \"narrow_mixed_p95_ms\": " << mixed_lat_ms.percentile(0.95)
         << ",\n"
         << "  \"narrow_mixed_p99_ms\": " << mixed_p99 << ",\n"
         << "  \"wide_mixed_p99_ms\": " << wide_lat_ms.percentile(0.99)
         << ",\n"
         << "  \"stencil_mixed_p99_ms\": " << stencil_lat_ms.percentile(0.99)
         << ",\n"
         << "  \"narrow_p99_mixed_over_solo\": " << ratio << ",\n"
         << "  \"solo_wall_s\": " << solo_wall.mean() << ",\n"
         << "  \"mixed_wall_s\": " << mixed_wall.mean() << ",\n"
         << "  \"schedule_cache_hits_narrow\": " << cache_hits << ",\n"
         << "  \"admission_rejections\": " << rejections << ",\n"
         << "  \"pool_threads_peak\": " << pool_peak << ",\n"
         << "  \"pool_threads_retired\": " << pool_retired << ",\n"
         << "  \"tenant_waves\": " << tenant_waves << ",\n"
         << "  \"bitwise_identical\": " << (ok ? "true" : "false") << "\n"
         << "}\n";
  }
  std::printf("wrote BENCH_tenancy.json\n");

  // --- hard gates (CI fails on regression) -------------------------------
  int status = 0;
  if (!ok) {
    std::fprintf(stderr, "GATE: a tenant diverged from its solo result\n");
    status = 1;
  }
  if (ratio > 3.0) {
    std::fprintf(stderr,
                 "GATE: narrow-tenant p99 %.2fx solo under mixed load "
                 "(limit 3x)\n",
                 ratio);
    status = 1;
  }
  if (cache_hits < 1) {
    std::fprintf(stderr,
                 "GATE: steady-state tenant waves never hit the schedule "
                 "cache\n");
    status = 1;
  }
  return status;
}
