// Head hot-path microbenchmark: per-task head overhead, thread churn,
// payload copies and checkpoint volume — the three overheads the paper's
// Fig. 7a isolates, reported as machine-checkable JSON (BENCH_hotpath.json)
// so regressions fail CI instead of drifting.
//
// Asserted invariants (exit 1 on violation):
//  - threads_spawned is wave-count-independent: pools are created once per
//    launch, so a steady-state wave spawns ZERO threads;
//  - every data transfer (submit/retrieve/exchange) performs exactly ONE
//    payload byte-copy (the delivery fill) — the zero-copy data plane;
//  - on a sparse-writer workload (1 of N buffers written per interval) the
//    dirty-set checkpointer copies well under half of the full-snapshot
//    volume.
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <vector>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "core/runtime.hpp"
#include "offload/kernel_registry.hpp"

namespace {

using namespace ompc;

/// buffers[0]: u64 cell, incremented once per task (every task is a writer,
/// so waves move data and dirty their outputs).
const offload::KernelId kBump =
    offload::KernelRegistry::instance().register_kernel(
        "hotpath_bump", [](offload::KernelContext& ctx) {
          *ctx.buffer<std::uint64_t>(0) += 1;
        });

/// `waves` waves of `width` independent one-buffer tasks (explicit
/// wait_all per wave — the head hot path, uncontaminated by compute).
core::RuntimeStats run_waves(int waves, int width, int workers) {
  core::ClusterOptions opts;
  opts.num_workers = workers;
  std::vector<std::uint64_t> cells(static_cast<std::size_t>(width), 0);
  core::RuntimeStats stats = core::launch(opts, [&](core::Runtime& rt) {
    for (auto& c : cells) rt.enter_data(&c, sizeof c);
    for (int w = 0; w < waves; ++w) {
      for (auto& c : cells) {
        core::Args args;
        args.buf(&c);
        rt.target({omp::inout(&c)}, kBump, std::move(args));
      }
      rt.wait_all();
    }
    for (auto& c : cells) rt.exit_data(&c);
  });
  for (const auto c : cells) {
    if (c != static_cast<std::uint64_t>(waves)) {
      std::fprintf(stderr, "VALIDATION FAILED: cell=%llu waves=%d\n",
                   static_cast<unsigned long long>(c), waves);
      std::exit(1);
    }
  }
  return stats;
}

/// Sparse-writer fault-tolerant run: N buffers, one written per wave,
/// checkpoint at every boundary. The dirty-set win in its purest form.
core::RuntimeStats run_sparse_checkpointed(int waves, int buffers,
                                           std::size_t bytes_each) {
  core::ClusterOptions opts;
  opts.num_workers = 2;
  opts.checkpoint_period = 1;
  std::vector<std::vector<std::uint64_t>> bufs(
      static_cast<std::size_t>(buffers),
      std::vector<std::uint64_t>(bytes_each / sizeof(std::uint64_t), 0));
  core::RuntimeStats stats = core::launch(opts, [&](core::Runtime& rt) {
    for (auto& b : bufs) rt.enter_data(b.data(), bytes_each);
    for (int w = 0; w < waves; ++w) {
      auto& victim = bufs[static_cast<std::size_t>(w % buffers)];
      core::Args args;
      args.buf(victim.data());
      rt.target({omp::inout(victim.data())}, kBump, std::move(args));
      rt.wait_all();
    }
    for (auto& b : bufs) rt.exit_data(b.data());
  });
  return stats;
}

}  // namespace

int main() {
  using ompc::core::RuntimeStats;

  const int reps = ompc::bench::repetitions();
  constexpr int kWidth = 16;
  constexpr int kWorkers = 2;
  constexpr int kWavesShort = 2;
  constexpr int kWavesLong = 10;

  std::printf("=== micro_hotpath: head hot-path overheads (%d reps) ===\n",
              reps);

  // --- dispatch churn + per-task head overhead + payload copies ----------
  ompc::RunningStats overhead_us;
  std::int64_t threads_short = 0, threads_long = 0;
  std::int64_t copies = 0, transfers = 0;
  for (int rep = 0; rep < reps; ++rep) {
    const RuntimeStats s2 = run_waves(kWavesShort, kWidth, kWorkers);
    const RuntimeStats s10 = run_waves(kWavesLong, kWidth, kWorkers);
    threads_short = s2.threads_spawned;
    threads_long = s10.threads_spawned;
    const std::int64_t tasks = s10.target_tasks + s10.data_tasks;
    overhead_us.add(
        static_cast<double>(s10.wall_ns - s10.startup_ns - s10.shutdown_ns) /
        static_cast<double>(tasks) / 1e3);
    copies = s10.payload_copies;
    transfers = s10.submits + s10.retrieves + s10.exchanges;
  }
  const double threads_per_steady_wave =
      static_cast<double>(threads_long - threads_short) /
      static_cast<double>(kWavesLong - kWavesShort);
  const double copies_per_transfer =
      transfers == 0 ? 0.0
                     : static_cast<double>(copies) /
                           static_cast<double>(transfers);

  // --- dirty-set checkpoint volume ---------------------------------------
  constexpr int kCkptWaves = 8;
  constexpr int kCkptBuffers = 16;
  constexpr std::size_t kCkptBytes = 4096;
  const RuntimeStats cs =
      run_sparse_checkpointed(kCkptWaves, kCkptBuffers, kCkptBytes);
  const double dirty_ratio =
      cs.checkpoint_bytes == 0
          ? 1.0
          : static_cast<double>(cs.checkpoint_dirty_bytes) /
                static_cast<double>(cs.checkpoint_bytes);

  std::printf("per-task head overhead : %.1f +- %.1f us\n", overhead_us.mean(),
              overhead_us.stddev());
  std::printf("threads spawned        : %lld per launch, %.2f per steady wave\n",
              static_cast<long long>(threads_long), threads_per_steady_wave);
  std::printf("payload copies         : %lld for %lld transfers (%.2f each)\n",
              static_cast<long long>(copies),
              static_cast<long long>(transfers), copies_per_transfer);
  std::printf("checkpoint volume      : %lld dirty of %lld logical bytes "
              "(ratio %.3f, %lld captures)\n",
              static_cast<long long>(cs.checkpoint_dirty_bytes),
              static_cast<long long>(cs.checkpoint_bytes), dirty_ratio,
              static_cast<long long>(cs.checkpoints));

  {
    std::ofstream json("BENCH_hotpath.json");
    json << "{\n"
         << "  \"bench\": \"micro_hotpath\",\n"
         << "  \"reps\": " << reps << ",\n"
         << "  \"waves\": " << kWavesLong << ",\n"
         << "  \"tasks_per_wave\": " << kWidth << ",\n"
         << "  \"workers\": " << kWorkers << ",\n"
         << "  \"head_overhead_us_per_task_mean\": " << overhead_us.mean()
         << ",\n"
         << "  \"head_overhead_us_per_task_stddev\": " << overhead_us.stddev()
         << ",\n"
         << "  \"threads_spawned_per_launch\": " << threads_long << ",\n"
         << "  \"threads_spawned_per_steady_wave\": "
         << threads_per_steady_wave << ",\n"
         << "  \"payload_copies\": " << copies << ",\n"
         << "  \"data_transfers\": " << transfers << ",\n"
         << "  \"copies_per_transfer\": " << copies_per_transfer << ",\n"
         << "  \"checkpoint_captures\": " << cs.checkpoints << ",\n"
         << "  \"checkpoint_logical_bytes\": " << cs.checkpoint_bytes << ",\n"
         << "  \"checkpoint_dirty_bytes\": " << cs.checkpoint_dirty_bytes
         << ",\n"
         << "  \"checkpoint_dirty_ratio\": " << dirty_ratio << "\n"
         << "}\n";
  }
  std::printf("wrote BENCH_hotpath.json\n");

  // --- hard gates (CI fails on regression) -------------------------------
  int status = 0;
  if (threads_per_steady_wave != 0.0) {
    std::fprintf(stderr,
                 "FAIL: steady-state waves spawned %.2f threads (want 0) — "
                 "a pool is being re-created per wave\n",
                 threads_per_steady_wave);
    status = 1;
  }
  if (copies != transfers) {
    std::fprintf(stderr,
                 "FAIL: %lld payload copies for %lld transfers (want exactly "
                 "1 per transfer) — a staging copy crept back in\n",
                 static_cast<long long>(copies),
                 static_cast<long long>(transfers));
    status = 1;
  }
  if (dirty_ratio >= 0.5) {
    std::fprintf(stderr,
                 "FAIL: checkpoint dirty ratio %.3f (want < 0.5 on the "
                 "sparse-writer workload) — capture is re-copying clean "
                 "buffers\n",
                 dirty_ratio);
    status = 1;
  }
  return status;
}
