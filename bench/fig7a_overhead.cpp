// Figure 7(a) reproduction: OMPC runtime overhead (startup / schedule /
// shutdown as % of wall time) vs task workload.
//
// Paper setup: 1 head + 1 worker, 1 x 16 Trivial graph (16 independent
// tasks on one node), workload from 1K iterations (~5 us dilated here) to
// 100M (500 ms; dilated to 50 ms = 10M iterations equivalent at our 1/10
// dilation). Startup = process begin to gate-thread creation; shutdown =
// gate destruction to process end; schedule = HEFT time.
//
// Expected shape: startup+shutdown constant, so overhead % falls as tasks
// grow; < 25% by ~10 ms tasks; negligible >= 50 ms; dominant below 5 ms.
#include "bench_util.hpp"

int main() {
  using namespace ompc;
  using namespace ompc::taskbench;

  // Workloads in paper iterations; dilation 1/10 => dilated_iters = N/10.
  const std::vector<std::pair<std::string, std::int64_t>> workloads = {
      {"1K", 1'000},   {"10K", 10'000},   {"100K", 100'000},
      {"1M", 1'000'000}, {"10M", 10'000'000}, {"100M", 100'000'000}};

  std::printf("=== Figure 7(a): OMPC overhead %% of wall time — 1 worker, "
              "1x16 trivial graph, dilation 1/10, %d reps ===\n",
              bench::repetitions());

  Table table({"workload", "task(ms)", "wall(ms)", "startup%", "schedule%",
               "shutdown%", "runtime-ovh%"});

  for (const auto& [label, iters] : workloads) {
    TaskBenchSpec spec;
    spec.pattern = Pattern::Trivial;
    spec.steps = 1;
    spec.width = 16;
    spec.iterations = iters / 10;  // time dilation 1/10
    spec.output_bytes = 16;
    spec.mode = KernelMode::Sleep;

    core::ClusterOptions opts;
    opts.num_workers = 1;
    // Paper baseline: "force tasks to run on a single node and with a
    // single thread", isolating runtime overhead from task execution.
    opts.handler_threads = 1;
    opts.worker_threads = 1;
    opts.network = bench::bench_network();

    RunningStats wall, startup, schedule, shutdown;
    const std::uint64_t expect = expected_checksum(spec);
    for (int rep = 0; rep < bench::repetitions(); ++rep) {
      const RunResult r = run_ompc(spec, opts);
      if (r.checksum != expect) {
        std::fprintf(stderr, "VALIDATION FAILED\n");
        return 1;
      }
      wall.add(ns_to_ms(r.stats.wall_ns));
      startup.add(ns_to_ms(r.stats.startup_ns));
      schedule.add(ns_to_ms(r.stats.schedule_ns));
      shutdown.add(ns_to_ms(r.stats.shutdown_ns));
    }
    const double w = wall.mean();
    const double pct = 100.0 / w;
    // Total runtime overhead: wall minus the serialized ideal compute time
    // (16 tasks on one worker thread) — the paper's headline metric.
    const double compute_ms = 16.0 * spec.task_seconds() * 1e3;
    const double ovh_pct = std::max(0.0, 100.0 * (w - compute_ms) / w);
    table.add_row({label,
                   Table::num(spec.task_seconds() * 1e3, 3),
                   Table::num(w, 2),
                   Table::num(startup.mean() * pct, 1),
                   Table::num(schedule.mean() * pct, 1),
                   Table::num(shutdown.mean() * pct, 1),
                   Table::num(ovh_pct, 1)});
  }
  table.print(std::cout);
  std::printf("\n(constant startup+shutdown -> overhead %% falls with task "
              "size; paper: <25%% by 10 ms tasks, negligible >= 50 ms, "
              "dominant below 5 ms — compare task(ms) x10 for paper-scale "
              "durations)\n");
  return 0;
}
