// google-benchmark microbenchmarks of the minimpi substrate: matching
// engine throughput, ping-pong latency, collective cost — the real CPU
// overheads underneath every simulated-network experiment.
#include <benchmark/benchmark.h>

#include "minimpi/mpi.hpp"

namespace {

using namespace ompc;
using namespace ompc::mpi;

void BM_SelfSendRecv(benchmark::State& state) {
  const std::size_t bytes = static_cast<std::size_t>(state.range(0));
  Universe u(UniverseOptions{1, {}, 1});
  Comm comm = u.comm(0);
  Bytes payload(bytes);
  Bytes sink(bytes);
  for (auto _ : state) {
    comm.isend(payload.data(), bytes, 0, 5);
    comm.recv(sink.data(), bytes, 0, 5);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_SelfSendRecv)->Arg(16)->Arg(4096)->Arg(1 << 20);

void BM_PingPongAcrossRanks(benchmark::State& state) {
  // Two rank threads ping-ponging a small message over the instant network:
  // measures matching + wakeup cost per hop.
  const int hops = 1000;
  for (auto _ : state) {
    Universe::launch(UniverseOptions{2, {}, 1}, [&](RankContext& ctx) {
      Comm comm = ctx.world();
      std::uint64_t token = 1;
      for (int h = 0; h < hops; ++h) {
        if (ctx.rank() == 0) {
          comm.send(&token, sizeof token, 1, 3);
          comm.recv(&token, sizeof token, 1, 4);
        } else {
          comm.recv(&token, sizeof token, 0, 3);
          comm.send(&token, sizeof token, 0, 4);
        }
      }
    });
  }
  state.SetItemsProcessed(state.iterations() * hops * 2);
}
BENCHMARK(BM_PingPongAcrossRanks)->Unit(benchmark::kMillisecond);

void BM_UnexpectedQueueScan(benchmark::State& state) {
  // Worst-case matching: N unexpected messages with distinct tags, receive
  // them in reverse order (each recv scans the queue).
  const int n = static_cast<int>(state.range(0));
  Universe u(UniverseOptions{1, {}, 1});
  Comm comm = u.comm(0);
  std::uint64_t v = 7;
  std::uint64_t sink = 0;
  for (auto _ : state) {
    for (int i = 0; i < n; ++i) comm.isend(&v, sizeof v, 0, 100 + i);
    for (int i = n - 1; i >= 0; --i)
      comm.recv(&sink, sizeof sink, 0, 100 + i);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_UnexpectedQueueScan)->Arg(16)->Arg(128)->Arg(1024);

void BM_Barrier(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  const int rounds = 100;
  for (auto _ : state) {
    Universe::launch(UniverseOptions{ranks, {}, 1}, [&](RankContext& ctx) {
      Comm comm = ctx.world();
      for (int i = 0; i < rounds; ++i) comm.barrier();
    });
  }
  state.SetItemsProcessed(state.iterations() * rounds);
}
BENCHMARK(BM_Barrier)->Arg(2)->Arg(8)->Arg(32)->Unit(benchmark::kMillisecond);

void BM_BcastBinomial(benchmark::State& state) {
  const int ranks = 8;
  const std::size_t bytes = static_cast<std::size_t>(state.range(0));
  const int rounds = 50;
  for (auto _ : state) {
    Universe::launch(UniverseOptions{ranks, {}, 1}, [&](RankContext& ctx) {
      Comm comm = ctx.world();
      Bytes buf(bytes);
      for (int i = 0; i < rounds; ++i)
        comm.bcast(buf.data(), bytes, 0);
    });
  }
  state.SetItemsProcessed(state.iterations() * rounds);
}
BENCHMARK(BM_BcastBinomial)->Arg(64)->Arg(65536)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
