// Transport-conduit microbenchmark: per-conduit ping-pong latency and
// bandwidth, one-sided put cost, and the wire price of a worker->worker
// Exchange on the RMA data plane vs the old rendezvous pair — reported as
// machine-checkable JSON (BENCH_minimpi.json) so regressions fail CI
// instead of drifting.
//
// Asserted invariant (exit 1 on violation):
//  - an RMA Exchange puts no more messages on the wire than the rendezvous
//    Exchange it replaced (today: 4 vs 5 — one-sided writes need no posted
//    receive and no second completion).
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "core/data_manager.hpp"
#include "core/runtime.hpp"
#include "minimpi/mpi.hpp"

namespace {

using namespace ompc;
using Clock = std::chrono::steady_clock;

double elapsed_us(Clock::time_point t0) {
  return std::chrono::duration<double, std::micro>(Clock::now() - t0).count();
}

mpi::UniverseOptions pair_opts(mpi::ConduitKind kind) {
  mpi::UniverseOptions o;
  o.ranks = 2;
  o.conduit = kind;
  return o;
}

/// One-way latency (us) of a small-message ping-pong over `kind`.
double pingpong_us(mpi::ConduitKind kind) {
  constexpr int kWarmup = 100;
  constexpr int kHops = 2000;
  constexpr mpi::Tag kTag = 20;
  double us = 0.0;
  mpi::Universe::launch(pair_opts(kind), [&](mpi::RankContext& ctx) {
    mpi::Comm comm = ctx.world();
    std::uint64_t token = 1;
    const auto bounce = [&](int rounds) {
      for (int i = 0; i < rounds; ++i) {
        if (ctx.rank() == 0) {
          comm.send(&token, sizeof token, 1, kTag);
          comm.recv(&token, sizeof token, 1, kTag + 1);
        } else {
          comm.recv(&token, sizeof token, 0, kTag);
          comm.send(&token, sizeof token, 0, kTag + 1);
        }
      }
    };
    bounce(kWarmup);
    comm.barrier();
    const auto t0 = Clock::now();
    bounce(kHops);
    if (ctx.rank() == 0) us = elapsed_us(t0) / (2.0 * kHops);
  });
  return us;
}

/// Streaming bandwidth (MB/s) of 1 MiB messages over `kind`. The sender
/// drains through a trailing ack so eager submission cannot shortcut the
/// measurement.
double stream_MBps(mpi::ConduitKind kind) {
  constexpr std::size_t kBytes = 1 << 20;
  constexpr int kMsgs = 64;
  constexpr mpi::Tag kTag = 24;
  double mbps = 0.0;
  mpi::Universe::launch(pair_opts(kind), [&](mpi::RankContext& ctx) {
    mpi::Comm comm = ctx.world();
    Bytes buf(kBytes, std::byte{0x42});
    comm.barrier();
    if (ctx.rank() == 0) {
      const auto t0 = Clock::now();
      for (int i = 0; i < kMsgs; ++i) comm.send(buf.data(), kBytes, 1, kTag);
      std::uint64_t done = 0;
      comm.recv(&done, sizeof done, 1, kTag + 1);
      mbps = static_cast<double>(kMsgs) * static_cast<double>(kBytes) /
             elapsed_us(t0);  // bytes/us == MB/s
    } else {
      for (int i = 0; i < kMsgs; ++i) comm.recv(buf.data(), kBytes, 0, kTag);
      const std::uint64_t done = 1;
      comm.send(&done, sizeof done, 0, kTag + 1);
    }
  });
  return mbps;
}

/// Completion latency (us) of a small one-sided put over `kind`.
double put_us(mpi::ConduitKind kind) {
  constexpr int kWarmup = 50;
  constexpr int kOps = 1000;
  double us = 0.0;
  mpi::Universe::launch(pair_opts(kind), [&](mpi::RankContext& ctx) {
    mpi::Comm comm = ctx.world();
    if (ctx.rank() == 1) {
      std::uint64_t cell = 0;
      mpi::Window win = comm.win_create(1, &cell, sizeof cell);
      comm.barrier();  // window is up
      comm.barrier();  // origin is done
    } else {
      comm.barrier();
      std::uint64_t v = 7;
      for (int i = 0; i < kWarmup; ++i)
        comm.put(1, 1, 0, mpi::Payload::copy_of(&v, sizeof v)).wait();
      const auto t0 = Clock::now();
      for (int i = 0; i < kOps; ++i)
        comm.put(1, 1, 0, mpi::Payload::copy_of(&v, sizeof v)).wait();
      us = elapsed_us(t0) / kOps;
      comm.barrier();
    }
  });
  return us;
}

/// Wire messages of one worker->worker Exchange under the given data plane:
/// a buffer is produced on worker 1, then demanded by worker 2; the delta
/// of Universe::messages_sent around the second prepare_args is exactly the
/// Exchange protocol cost.
std::int64_t exchange_messages(core::DataPlane plane) {
  core::ClusterOptions opts;
  opts.num_workers = 2;
  opts.network = {};
  opts.data_plane = plane;
  mpi::UniverseOptions uopts;
  uopts.ranks = opts.ranks();
  uopts.comms = 1 + opts.vci;
  std::int64_t delta = 0;
  mpi::Universe universe(uopts);
  universe.run([&](mpi::RankContext& ctx) {
    if (ctx.rank() == 0) {
      core::EventSystem events(ctx, opts, nullptr, nullptr);
      core::DataManager dm(events, opts);
      std::vector<std::uint64_t> buf(64, 9);
      dm.register_buffer(buf.data(), buf.size() * sizeof(std::uint64_t));
      const void* args[] = {buf.data()};
      dm.prepare_args(1, args);
      dm.after_write(1, {omp::inout(buf.data())});
      const std::int64_t before = universe.messages_sent();
      dm.prepare_args(2, args);  // worker 1 -> worker 2
      delta = universe.messages_sent() - before;
      if (dm.stats().exchanges.load() != 1) {
        std::fprintf(stderr, "VALIDATION FAILED: expected 1 exchange\n");
        std::exit(1);
      }
      dm.cleanup_all();
      events.shutdown_cluster();
    } else {
      core::WorkerMemory memory(&ctx.universe(), ctx.rank());
      omp::TaskRuntime pool(1);
      core::EventSystem events(ctx, opts, &memory, &pool);
      events.wait_until_stopped();
    }
  });
  return delta;
}

struct ConduitNumbers {
  RunningStats pingpong_us;
  RunningStats stream_MBps;
  RunningStats put_us;
};

}  // namespace

int main() {
  const int reps = ompc::bench::repetitions();
  const mpi::ConduitKind kinds[] = {mpi::ConduitKind::InProcess,
                                    mpi::ConduitKind::Shm};

  std::printf("=== micro_minimpi: transport conduits (%d reps) ===\n", reps);
  if (const char* env = std::getenv("OMPC_CONDUIT"))
    std::printf("note: OMPC_CONDUIT=%s overrides both rows\n", env);

  ConduitNumbers rows[2];
  for (int k = 0; k < 2; ++k) {
    for (int rep = 0; rep < reps; ++rep) {
      rows[k].pingpong_us.add(pingpong_us(kinds[k]));
      rows[k].stream_MBps.add(stream_MBps(kinds[k]));
      rows[k].put_us.add(put_us(kinds[k]));
    }
    std::printf(
        "%-10s ping-pong %7.2f +- %.2f us   stream %8.1f MB/s   "
        "put %7.2f us\n",
        mpi::to_string(kinds[k]), rows[k].pingpong_us.mean(),
        rows[k].pingpong_us.stddev(), rows[k].stream_MBps.mean(),
        rows[k].put_us.mean());
  }

  const std::int64_t msgs_rma = exchange_messages(core::DataPlane::Rma);
  const std::int64_t msgs_rdv = exchange_messages(core::DataPlane::Rendezvous);
  std::printf("exchange wire messages : %lld RMA vs %lld rendezvous\n",
              static_cast<long long>(msgs_rma),
              static_cast<long long>(msgs_rdv));

  {
    std::ofstream json("BENCH_minimpi.json");
    json << "{\n"
         << "  \"bench\": \"micro_minimpi\",\n"
         << "  \"reps\": " << reps << ",\n";
    for (int k = 0; k < 2; ++k) {
      const char* name = mpi::to_string(kinds[k]);
      json << "  \"" << name
           << "_pingpong_us\": " << rows[k].pingpong_us.mean() << ",\n"
           << "  \"" << name
           << "_stream_MBps\": " << rows[k].stream_MBps.mean() << ",\n"
           << "  \"" << name << "_put_us\": " << rows[k].put_us.mean()
           << ",\n";
    }
    json << "  \"exchange_messages_rma\": " << msgs_rma << ",\n"
         << "  \"exchange_messages_rendezvous\": " << msgs_rdv << "\n"
         << "}\n";
  }
  std::printf("wrote BENCH_minimpi.json\n");

  // --- hard gate (CI fails on regression) --------------------------------
  if (msgs_rma > msgs_rdv) {
    std::fprintf(stderr,
                 "FAIL: RMA exchange costs %lld wire messages, rendezvous "
                 "%lld (want RMA <= rendezvous) — the one-sided data plane "
                 "regressed into extra round trips\n",
                 static_cast<long long>(msgs_rma),
                 static_cast<long long>(msgs_rdv));
    return 1;
  }
  return 0;
}
