// Ablation: fault-tolerance cost (paper §5) — checkpoint overhead in
// steady state and recovery cost after a mid-run worker failure, as a
// function of the checkpoint period.
//
// The workload is Task Bench stencil executed stepwise (one wave per step),
// so `checkpoint_period = k` snapshots the buffer state every k steps.
// Three measurements:
//   1. failure-free wall time vs period (the checkpoint tax: retrieving
//      worker-resident buffers to the head at each boundary);
//   2. wall time when one of the workers dies mid-run (rollback + replay
//      of the waves since the last boundary);
//   3. the recovery bookkeeping itself (replayed tasks, checkpoint bytes).
// Expected shape: steady-state cost falls as the period grows, recovery
// cost rises — the classic checkpoint-interval trade-off.
#include "bench_util.hpp"
#include "taskbench/kernel.hpp"

namespace {

using namespace ompc;
using namespace ompc::taskbench;

/// Same point kernel as the OMPC runner (buffers[0] = output, buffers[1..]
/// = inputs), registered under a bench-local id.
const offload::KernelId kPoint =
    offload::KernelRegistry::instance().register_kernel(
        "ablation_recovery_point", [](offload::KernelContext& ctx) {
          auto r = ctx.scalars();
          const int t = r.get<int>();
          const int i = r.get<int>();
          const auto mode = r.get<KernelMode>();
          const auto iterations = r.get<std::int64_t>();
          const auto out_bytes = r.get<std::uint64_t>();
          std::vector<std::uint64_t> ins;
          ins.reserve(ctx.num_buffers() - 1);
          for (std::size_t b = 1; b < ctx.num_buffers(); ++b)
            ins.push_back(read_digest(
                std::span<const std::byte>(ctx.buffer<std::byte>(b), 8)));
          TaskBenchSpec k;
          k.mode = mode;
          k.iterations = iterations;
          k.output_bytes = out_bytes;
          point_compute(k, t, i, ins,
                        std::span<std::byte>(ctx.buffer<std::byte>(0),
                                             out_bytes));
        });

/// Task Bench with one wait_all() per step — the wave-per-step execution
/// the checkpoint period is defined over.
RunResult run_ompc_stepwise(const TaskBenchSpec& spec,
                            const core::ClusterOptions& opts) {
  const auto w = static_cast<std::size_t>(spec.width);
  const std::size_t out_bytes = std::max<std::size_t>(16, spec.output_bytes);
  std::vector<std::vector<Bytes>> rows(2, std::vector<Bytes>(w));
  for (auto& row : rows)
    for (auto& b : row) b.assign(out_bytes, std::byte{0});

  RunResult result;
  result.stats = core::launch(opts, [&](core::Runtime& rt) {
    for (auto& row : rows)
      for (auto& b : row) rt.enter_data(b.data(), b.size());
    for (int t = 0; t < spec.steps; ++t) {
      auto& cur = rows[static_cast<std::size_t>(t % 2)];
      auto& prev = rows[static_cast<std::size_t>((t + 1) % 2)];
      for (int i = 0; i < spec.width; ++i) {
        core::Args args;
        omp::DepList deps;
        Bytes& out = cur[static_cast<std::size_t>(i)];
        args.buf(out.data());
        deps.push_back(omp::inout(out.data()));
        for (int j : dependencies(spec, t, i)) {
          Bytes& in = prev[static_cast<std::size_t>(j)];
          args.buf(in.data());
          deps.push_back(omp::in(in.data()));
        }
        args.scalar(t).scalar(i).scalar(spec.mode).scalar(spec.iterations)
            .scalar<std::uint64_t>(out_bytes);
        rt.target(std::move(deps), kPoint, std::move(args),
                  spec.task_seconds());
      }
      rt.wait_all();  // one wave per step
    }
    const auto final_row = static_cast<std::size_t>((spec.steps - 1) % 2);
    for (std::size_t p = 0; p < 2; ++p)
      for (auto& b : rows[p]) rt.exit_data(b.data(), p == final_row);
  });

  result.wall_s = ns_to_s(result.stats.wall_ns);
  std::vector<std::uint64_t> digests;
  digests.reserve(w);
  for (const Bytes& b : rows[static_cast<std::size_t>((spec.steps - 1) % 2)])
    digests.push_back(read_digest(b));
  result.checksum = combine_digests(digests);
  return result;
}

}  // namespace

int main() {
  const mpi::NetworkModel net = bench::bench_network();

  TaskBenchSpec spec;
  spec.pattern = Pattern::Stencil1D;
  spec.steps = 12;
  spec.width = 8;
  spec.iterations = 1'000'000;  // 5 ms per task -> ~10 ms waves on 4 nodes
  spec.mode = KernelMode::Sleep;
  spec.output_bytes = 4096;

  std::printf("=== Ablation: checkpoint period vs recovery cost — stencil, "
              "4 nodes, %dx%d stepwise, 5 ms tasks, %d reps ===\n",
              spec.steps, spec.width, bench::repetitions());

  core::ClusterOptions base;
  base.num_workers = 4;
  base.network = net;
  base.heartbeat_period_ms = 5;
  base.heartbeat_timeout_ms = 50;

  // Kill one worker roughly mid-run (waves are ~10-15 ms each).
  const std::int64_t kill_at_ns = 80'000'000;

  Table table({"checkpoint period", "no-failure (s)", "1 kill (s)",
               "replayed tasks", "ckpt MB"});
  for (int period : {0, 1, 2, 4, 8}) {
    core::ClusterOptions opts = base;
    opts.checkpoint_period = period;

    const RunningStats healthy = bench::timed_runs(
        spec, [&] { return run_ompc_stepwise(spec, opts); });

    std::string killed;
    std::string replayed = "-";
    std::string ckpt_mb = "0";
    if (period == 0) {
      // No checkpoint to recover from: the kill must surface as a clean
      // RecoveryError (measured, not assumed).
      core::ClusterOptions kopts = opts;
      kopts.kills.push_back({2, kill_at_ns});
      try {
        (void)run_ompc_stepwise(spec, kopts);
        std::fprintf(stderr, "expected RecoveryError with period 0\n");
        return 1;
      } catch (const core::RecoveryError&) {
        killed = "RecoveryError";
      }
    } else {
      core::ClusterOptions kopts = opts;
      kopts.kills.push_back({2, kill_at_ns});
      RunningStats k;
      std::int64_t replayed_tasks = 0;
      std::int64_t ckpt_bytes = 0;
      const std::uint64_t expect = expected_checksum(spec);
      for (int rep = 0; rep < bench::repetitions(); ++rep) {
        const RunResult r = run_ompc_stepwise(spec, kopts);
        if (r.checksum != expect) {
          std::fprintf(stderr, "VALIDATION FAILED after recovery\n");
          return 1;
        }
        k.add(r.wall_s);
        replayed_tasks += r.stats.replayed_tasks;
        ckpt_bytes = r.stats.checkpoint_bytes;
      }
      killed = bench::mean_pm_dev(k);
      replayed = Table::num(
          static_cast<double>(replayed_tasks) / bench::repetitions(), 1);
      ckpt_mb = Table::num(static_cast<double>(ckpt_bytes) / 1e6, 2);
    }
    table.add_row({period == 0 ? "off" : Table::num(period, 0),
                   bench::mean_pm_dev(healthy), killed, replayed, ckpt_mb});
  }
  table.print(std::cout);
  std::printf(
      "\n(expected: steady-state overhead falls and recovery work rises "
      "with the period — §5's checkpoint-interval trade-off)\n");
  return 0;
}
