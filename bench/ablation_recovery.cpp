// Ablation: fault-tolerance cost (paper §5) — checkpoint overhead in
// steady state and recovery cost after a mid-run worker failure, as a
// function of the checkpoint period.
//
// The workload is Task Bench stencil executed stepwise (one wave per step),
// so `checkpoint_period = k` snapshots the buffer state every k steps.
// Three measurements:
//   1. failure-free wall time vs period (the checkpoint tax: retrieving
//      worker-resident buffers to the head at each boundary);
//   2. wall time when one of the workers dies mid-run (rollback + replay
//      of the waves since the last boundary);
//   3. the recovery bookkeeping itself (replayed tasks, checkpoint bytes).
// Expected shape: steady-state cost falls as the period grows, recovery
// cost rises — the classic checkpoint-interval trade-off.
#include "bench_util.hpp"
#include "taskbench/kernel.hpp"

using namespace ompc;
using namespace ompc::taskbench;

int main() {
  const mpi::NetworkModel net = bench::bench_network();

  TaskBenchSpec spec;
  spec.pattern = Pattern::Stencil1D;
  spec.steps = 12;
  spec.width = 8;
  spec.iterations = 1'000'000;  // 5 ms per task -> ~10 ms waves on 4 nodes
  spec.mode = KernelMode::Sleep;
  spec.output_bytes = 4096;

  std::printf("=== Ablation: checkpoint period vs recovery cost — stencil, "
              "4 nodes, %dx%d stepwise, 5 ms tasks, %d reps ===\n",
              spec.steps, spec.width, bench::repetitions());

  core::ClusterOptions base;
  base.num_workers = 4;
  base.network = net;
  base.heartbeat_period_ms = 5;
  base.heartbeat_timeout_ms = 50;

  // Kill one worker roughly mid-run (waves are ~10-15 ms each).
  const std::int64_t kill_at_ns = 80'000'000;

  Table table({"checkpoint period", "no-failure (s)", "1 kill (s)",
               "replayed tasks", "ckpt MB"});
  for (int period : {0, 1, 2, 4, 8}) {
    core::ClusterOptions opts = base;
    opts.checkpoint_period = period;

    const RunningStats healthy = bench::timed_runs(
        spec, [&] { return run_ompc_stepwise(spec, opts); });

    std::string killed;
    std::string replayed = "-";
    std::string ckpt_mb = "0";
    if (period == 0) {
      // No checkpoint to recover from: the kill must surface as a clean
      // RecoveryError (measured, not assumed).
      core::ClusterOptions kopts = opts;
      kopts.kills.push_back({2, kill_at_ns});
      try {
        (void)run_ompc_stepwise(spec, kopts);
        std::fprintf(stderr, "expected RecoveryError with period 0\n");
        return 1;
      } catch (const core::RecoveryError&) {
        killed = "RecoveryError";
      }
    } else {
      core::ClusterOptions kopts = opts;
      kopts.kills.push_back({2, kill_at_ns});
      RunningStats k;
      std::int64_t replayed_tasks = 0;
      std::int64_t ckpt_bytes = 0;
      const std::uint64_t expect = expected_checksum(spec);
      for (int rep = 0; rep < bench::repetitions(); ++rep) {
        const RunResult r = run_ompc_stepwise(spec, kopts);
        if (r.checksum != expect) {
          std::fprintf(stderr, "VALIDATION FAILED after recovery\n");
          return 1;
        }
        k.add(r.wall_s);
        replayed_tasks += r.stats.replayed_tasks;
        ckpt_bytes = r.stats.checkpoint_bytes;
      }
      killed = bench::mean_pm_dev(k);
      replayed = Table::num(
          static_cast<double>(replayed_tasks) / bench::repetitions(), 1);
      ckpt_mb = Table::num(static_cast<double>(ckpt_bytes) / 1e6, 2);
    }
    table.add_row({period == 0 ? "off" : Table::num(period, 0),
                   bench::mean_pm_dev(healthy), killed, replayed, ckpt_mb});
  }
  table.print(std::cout);
  std::printf(
      "\n(expected: steady-state overhead falls and recovery work rises "
      "with the period — §5's checkpoint-interval trade-off)\n");

  // --- TwoStep × recovery (ROADMAP): recovery *latency* by dispatch mode --
  //
  // Under AsyncMode::TwoStep the in-flight pool scales with the cluster, so
  // a death mid-wave aborts far more helper jobs at once than under
  // HelperThreads. The checkpoint-period table above prices the steady
  // state; this one prices the recovery episode itself:
  // detection -> rollback -> replay-complete (RuntimeStats::
  // recovery_latency_ns), not just the wall-time delta.
  std::printf("\n=== TwoStep × recovery: detection -> replay-complete ===\n");
  Table lat({"async mode", "no-failure (s)", "1 kill (s)",
             "recovery latency (ms)", "replayed tasks"});
  for (const core::AsyncMode mode :
       {core::AsyncMode::HelperThreads, core::AsyncMode::TwoStep}) {
    core::ClusterOptions opts = base;
    opts.checkpoint_period = 2;
    opts.async_mode = mode;

    const RunningStats healthy = bench::timed_runs(
        spec, [&] { return run_ompc_stepwise(spec, opts); });

    core::ClusterOptions kopts = opts;
    kopts.kills.push_back({2, kill_at_ns});
    RunningStats killed;
    RunningStats latency_ms;
    std::int64_t replayed_tasks = 0;
    const std::uint64_t expect = expected_checksum(spec);
    for (int rep = 0; rep < bench::repetitions(); ++rep) {
      const RunResult r = run_ompc_stepwise(spec, kopts);
      if (r.checksum != expect) {
        std::fprintf(stderr, "VALIDATION FAILED after recovery (%s)\n",
                     mode == core::AsyncMode::TwoStep ? "TwoStep"
                                                      : "HelperThreads");
        return 1;
      }
      killed.add(r.wall_s);
      latency_ms.add(ns_to_ms(r.stats.recovery_latency_ns));
      replayed_tasks += r.stats.replayed_tasks;
    }
    lat.add_row({mode == core::AsyncMode::TwoStep ? "TwoStep"
                                                  : "HelperThreads",
                 bench::mean_pm_dev(healthy), bench::mean_pm_dev(killed),
                 bench::mean_pm_dev(latency_ms, 1),
                 Table::num(static_cast<double>(replayed_tasks) /
                                bench::repetitions(),
                            1)});
  }
  lat.print(std::cout);
  std::printf(
      "\n(recovery latency = first failure detection to replay complete; "
      "TwoStep aborts a wider in-flight window but replays the same "
      "logged waves)\n");
  return 0;
}
