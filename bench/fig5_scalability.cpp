// Figure 5 reproduction: execution-time scalability of the four runtimes
// over the four dependency patterns.
//
// Paper setup: nodes {2..64}, graph = (2n x 32) — width doubles with the
// node count (weak scaling) — 10M-iteration (50 ms) tasks, CCR 1.0,
// average of 10 runs. Here tasks are dilated to 5 ms (1M iterations at
// the paper's 5 ns/iteration calibration) and the network is dilated
// consistently (bench_network()); see DESIGN.md §2 and EXPERIMENTS.md.
//
// Expected shape: MPI < StarPU everywhere; OMPC beats Charm++ at small and
// medium node counts, then saturates and crosses over at the head-node
// in-flight ceiling (the paper sees this between 32 and 64 nodes; on the
// single-core simulation the knee lands one octave earlier because the
// head's real message-processing CPU is the shared bottleneck — see
// EXPERIMENTS.md).
#include "bench_util.hpp"

int main() {
  using namespace ompc;
  using namespace ompc::taskbench;

  const std::vector<int> node_counts = {2, 4, 8, 16, 32, 64};
  const std::vector<std::string> runtimes = {"ompc", "charm", "starpu", "mpi"};
  const mpi::NetworkModel net = bench::bench_network();

  std::printf("=== Figure 5: execution time (s) vs nodes — weak scaling, "
              "graph 2n x 32, 5 ms tasks (dilated 50 ms), CCR 1.0, %d reps "
              "===\n",
              bench::repetitions());

  // Summary of OMPC-vs-Charm++ speedups (the paper's headline numbers).
  RunningStats speedup_per_pattern[4];

  for (Pattern pattern : all_patterns()) {
    TaskBenchSpec base;
    base.pattern = pattern;
    base.steps = 32;
    base.iterations = 1'000'000;  // 5 ms dilated task (1/10 of the paper's 50 ms)
    base.mode = KernelMode::Sleep;

    Table table({"nodes", "OMPC", "Charm++", "StarPU", "MPI"});
    for (int nodes : node_counts) {
      TaskBenchSpec spec = base;
      spec.width = 2 * nodes;
      spec.output_bytes = bytes_for_ccr(spec.task_seconds(), 1.0, net);

      std::vector<std::string> row{std::to_string(nodes)};
      double ompc_s = 0.0, charm_s = 0.0;
      for (const std::string& rt : runtimes) {
        const RunningStats s = bench::timed_runs(
            spec, [&] { return run_named(rt, spec, nodes, net); });
        row.push_back(bench::mean_pm_dev(s));
        if (rt == "ompc") ompc_s = s.mean();
        if (rt == "charm") charm_s = s.mean();
      }
      table.add_row(std::move(row));
      if (ompc_s > 0.0)
        speedup_per_pattern[static_cast<int>(pattern)].add(charm_s / ompc_s);
    }
    std::printf("\n--- Fig 5(%c): %s ---\n",
                "abcd"[static_cast<int>(pattern)], pattern_name(pattern));
    table.print(std::cout);
  }

  std::printf("\nOMPC speedup vs Charm++ (mean over node counts, paper "
              "reports Tree 2.43x / Stencil 1.64x / FFT 1.61x):\n");
  for (Pattern p : all_patterns()) {
    std::printf("  %-10s %.2fx\n", pattern_name(p),
                speedup_per_pattern[static_cast<int>(p)].mean());
  }
  return 0;
}
