// Ablation: the §7 head-node in-flight ceiling, and the paper's proposed
// fix.
//
// Under AsyncMode::HelperThreads (LLVM's behaviour) at most
// `helper_threads` target regions are in flight — one blocked head thread
// each. With graph width above that ceiling, workers starve: this is the
// paper's diagnosis of Fig. 5's 32/64-node saturation. AsyncMode::TwoStep
// implements the §7 operation-queue proposal and lifts the bound.
#include "bench_util.hpp"

int main() {
  using namespace ompc;
  using namespace ompc::taskbench;

  const mpi::NetworkModel net = bench::bench_network();
  const int helper_threads = 48;  // the paper's head-node thread count

  std::printf("=== Ablation: in-flight ceiling (helper threads = %d) vs "
              "two-step async — trivial pattern, width = 2 x nodes, 4 steps, "
              "2 ms tasks, %d reps ===\n",
              helper_threads, bench::repetitions());

  Table table({"nodes", "width", "helper-threads (s)", "two-step (s)",
               "ideal (s)"});
  for (int nodes : {8, 16, 32, 64}) {
    TaskBenchSpec spec;
    spec.pattern = Pattern::Trivial;
    spec.steps = 4;
    spec.width = 2 * nodes;  // 32+ nodes exceed the 48-thread window
    spec.iterations = 400'000;  // 2 ms
    spec.output_bytes = 16;
    spec.mode = KernelMode::Sleep;

    std::vector<std::string> row{std::to_string(nodes),
                                 std::to_string(spec.width)};
    for (core::AsyncMode mode :
         {core::AsyncMode::HelperThreads, core::AsyncMode::TwoStep}) {
      core::ClusterOptions opts;
      opts.num_workers = nodes;
      opts.network = net;
      opts.async_mode = mode;
      opts.helper_threads = helper_threads;
      const RunningStats s =
          bench::timed_runs(spec, [&] { return run_ompc(spec, opts); });
      row.push_back(bench::mean_pm_dev(s));
    }
    // Ideal: width/nodes tasks per worker x steps x task time.
    row.push_back(Table::num(
        static_cast<double>(spec.width / nodes) * spec.steps *
        spec.task_seconds(), 3));
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::printf("\n(expected: both columns sit near the ideal while width <= "
              "%d, then drift as the head saturates — the helper-thread "
              "column by the §7 in-flight ceiling, and on a single-core "
              "host the two-step column by real contention among its "
              "larger dispatch pool, which masks the fix's benefit; on a "
              "multi-core head two-step keeps scaling, the paper's §7 "
              "proposal)\n",
              helper_threads);
  return 0;
}
