// Ablation: the Data Manager's direct worker->worker forwarding (§4.3,
// "dramatically improving performance") vs staging every transfer through
// the head node.
//
// A dependence chain whose producer and consumer sit on different workers
// pays one hop with Forwarding::Direct and two (worker->head->worker) with
// Forwarding::ViaHead — plus head serialization. Stencil at low CCR makes
// the difference visible.
#include "bench_util.hpp"

int main() {
  using namespace ompc;
  using namespace ompc::taskbench;

  const mpi::NetworkModel net = bench::bench_network();

  std::printf("=== Ablation: data forwarding policy — stencil, 8 nodes, "
              "16x16 graph, 2 ms tasks, %d reps ===\n",
              bench::repetitions());

  Table table({"CCR", "direct worker->worker (s)", "via head (s)"});
  for (double ccr : {0.5, 1.0, 2.0}) {
    TaskBenchSpec spec;
    spec.pattern = Pattern::Stencil1D;
    spec.steps = 16;
    spec.width = 16;
    spec.iterations = 400'000;  // 2 ms
    spec.mode = KernelMode::Sleep;
    spec.output_bytes = bytes_for_ccr(spec.task_seconds(), ccr, net);

    std::vector<std::string> row{Table::num(ccr, 1)};
    for (core::Forwarding fw :
         {core::Forwarding::Direct, core::Forwarding::ViaHead}) {
      core::ClusterOptions opts;
      opts.num_workers = 8;
      opts.network = net;
      opts.forwarding = fw;
      const RunningStats s =
          bench::timed_runs(spec, [&] { return run_ompc(spec, opts); });
      row.push_back(bench::mean_pm_dev(s));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::printf("\n(expected: direct forwarding wins, most at low CCR — the "
              "paper's justification for the DM design)\n");
  return 0;
}
