// Ablation: head failover vs worker recovery (paper §5, extended to the
// head node) — what a head death costs relative to the worker deaths the
// paper's protocol was designed around, and what continuous head-state
// replication costs in steady state.
//
// The workload is Task Bench stencil executed stepwise with per-wave
// checkpoints under Buddy locality, so both failure classes recover from
// the same committed boundary. Three measurements:
//   1. failure-free wall time, with and without head replication (the
//      replication tax: one metadata delta to the shadow rank per wave);
//   2. one worker killed mid-run — detection -> rollback -> replay
//      latency (RuntimeStats::recovery_latency_ns), the baseline episode;
//   3. the head killed mid-run — detection -> election -> replica
//      adoption -> replay latency, same counter, same workload.
// The gate: failover latency must stay within 5x the worker-recovery
// latency. Election and replica adoption add work, but both episodes are
// dominated by the same heartbeat timeout and wave replay, so an order-of-
// magnitude gap means the failover path regressed.
#include <fstream>

#include "bench_util.hpp"
#include "common/time.hpp"
#include "taskbench/kernel.hpp"

using namespace ompc;
using namespace ompc::taskbench;

int main() {
  const mpi::NetworkModel net = bench::bench_network();
  const int reps = bench::repetitions();

  TaskBenchSpec spec;
  spec.pattern = Pattern::Stencil1D;
  spec.steps = 12;
  spec.width = 8;
  spec.iterations = 1'000'000;  // 5 ms per task -> ~10 ms waves on 4 nodes
  spec.mode = KernelMode::Sleep;
  spec.output_bytes = 4096;
  const std::uint64_t expect = expected_checksum(spec);

  std::printf("=== Ablation: head failover vs worker recovery — stencil, "
              "4 nodes, %dx%d stepwise, 5 ms tasks, %d reps ===\n",
              spec.steps, spec.width, reps);

  core::ClusterOptions base;
  base.num_workers = 4;
  base.network = net;
  base.heartbeat_period_ms = 5;
  base.heartbeat_timeout_ms = 60;
  base.checkpoint_period = 1;
  base.checkpoint_locality = core::CheckpointLocality::Buddy;

  // Both corpses drop roughly mid-run (waves are ~10-15 ms each), so the
  // two episodes replay a comparable log tail.
  const std::int64_t kill_at_ns = 80'000'000;

  // --- 1. steady state: the replication tax ------------------------------
  core::ClusterOptions norep = base;
  norep.head_replication = false;
  const RunningStats healthy_norep = bench::timed_runs(
      spec, [&] { return run_ompc_stepwise(spec, norep); });

  RunningStats healthy;
  std::int64_t repl_updates = 0;
  std::int64_t repl_bytes = 0;
  std::int64_t waves = 0;
  for (int rep = 0; rep < reps; ++rep) {
    const RunResult r = run_ompc_stepwise(spec, base);
    if (r.checksum != expect) {
      std::fprintf(stderr, "VALIDATION FAILED (failure-free)\n");
      return 1;
    }
    healthy.add(r.wall_s);
    repl_updates += r.stats.replication_updates;
    repl_bytes += r.stats.replication_bytes;
    waves += r.stats.waves;
  }
  const double bytes_per_wave =
      waves > 0 ? static_cast<double>(repl_bytes) / static_cast<double>(waves)
                : 0.0;

  // --- 2. baseline episode: one worker killed ----------------------------
  core::ClusterOptions wkill = base;
  wkill.kills.push_back({2, kill_at_ns});
  RunningStats worker_wall;
  RunningStats worker_latency_ms;
  bool worker_ok = true;
  for (int rep = 0; rep < reps; ++rep) {
    const RunResult r = run_ompc_stepwise(spec, wkill);
    worker_ok = worker_ok && r.checksum == expect && r.stats.recoveries >= 1 &&
                r.stats.workers_lost >= 1;
    worker_wall.add(r.wall_s);
    worker_latency_ms.add(ns_to_ms(r.stats.recovery_latency_ns));
  }

  // --- 3. the head killed: election + replica adoption + replay ----------
  core::ClusterOptions hkill = base;
  hkill.kills.push_back({0, kill_at_ns});
  RunningStats failover_wall;
  RunningStats failover_latency_ms;
  bool failover_ok = true;
  std::int64_t failovers = 0;
  for (int rep = 0; rep < reps; ++rep) {
    const RunResult r = run_ompc_stepwise(spec, hkill);
    failover_ok = failover_ok && r.checksum == expect &&
                  r.stats.failovers >= 1 && r.stats.recoveries >= 1;
    failover_wall.add(r.wall_s);
    failover_latency_ms.add(ns_to_ms(r.stats.recovery_latency_ns));
    failovers += r.stats.failovers;
  }

  Table table({"episode", "wall (s)", "latency (ms)", "bitwise"});
  table.add_row({"none (replication off)", bench::mean_pm_dev(healthy_norep),
                 "-", "yes"});
  table.add_row({"none (replication on)", bench::mean_pm_dev(healthy), "-",
                 "yes"});
  table.add_row({"worker killed", bench::mean_pm_dev(worker_wall),
                 bench::mean_pm_dev(worker_latency_ms, 1),
                 worker_ok ? "yes" : "DIVERGED"});
  table.add_row({"head killed", bench::mean_pm_dev(failover_wall),
                 bench::mean_pm_dev(failover_latency_ms, 1),
                 failover_ok ? "yes" : "DIVERGED"});
  table.print(std::cout);

  const double ratio =
      worker_latency_ms.mean() > 0.0
          ? failover_latency_ms.mean() / worker_latency_ms.mean()
          : 0.0;
  std::printf(
      "\nreplication: %.1f bytes/wave to the shadow rank "
      "(%.1f updates/run); failover/worker latency ratio %.2fx "
      "(%.1f failovers across %d runs)\n",
      bytes_per_wave, static_cast<double>(repl_updates) / reps, ratio,
      static_cast<double>(failovers) / reps, reps);

  {
    std::ofstream json("BENCH_failover.json");
    json << "{\n"
         << "  \"bench\": \"ablation_failover\",\n"
         << "  \"reps\": " << reps << ",\n"
         << "  \"steps\": " << spec.steps << ",\n"
         << "  \"width\": " << spec.width << ",\n"
         << "  \"workers\": " << base.num_workers << ",\n"
         << "  \"checkpoint_period\": " << base.checkpoint_period << ",\n"
         << "  \"healthy_noreplication_s\": " << healthy_norep.mean() << ",\n"
         << "  \"healthy_replication_s\": " << healthy.mean() << ",\n"
         << "  \"replication_bytes_per_wave\": " << bytes_per_wave << ",\n"
         << "  \"replication_updates_per_run\": "
         << static_cast<double>(repl_updates) / reps << ",\n"
         << "  \"worker_recovery_latency_ms\": " << worker_latency_ms.mean()
         << ",\n"
         << "  \"head_failover_latency_ms\": " << failover_latency_ms.mean()
         << ",\n"
         << "  \"failover_over_worker_ratio\": " << ratio << ",\n"
         << "  \"worker_recovery_bitwise_identical\": "
         << (worker_ok ? "true" : "false") << ",\n"
         << "  \"head_failover_bitwise_identical\": "
         << (failover_ok ? "true" : "false") << "\n"
         << "}\n";
  }
  std::printf("wrote BENCH_failover.json\n");

  // --- hard gates (CI fails on regression) -------------------------------
  int status = 0;
  if (!worker_ok) {
    std::fprintf(stderr, "GATE: worker recovery diverged or never fired\n");
    status = 1;
  }
  if (!failover_ok) {
    std::fprintf(stderr, "GATE: head failover diverged or never fired\n");
    status = 1;
  }
  if (ratio > 5.0) {
    std::fprintf(stderr,
                 "GATE: failover latency %.2fx worker recovery (limit 5x)\n",
                 ratio);
    status = 1;
  }
  if (repl_updates == 0) {
    std::fprintf(stderr, "GATE: head replication never shipped an update\n");
    status = 1;
  }
  return status;
}
