// google-benchmark microbenchmarks of the OMPC event system: event
// round-trip cost (alloc/delete/submit/execute) — the per-task constant
// the Fig. 7(a) overhead analysis is made of.
#include <benchmark/benchmark.h>

#include "core/event_system.hpp"
#include "core/runtime.hpp"

namespace {

using namespace ompc;
using namespace ompc::core;

const offload::KernelId kNop =
    offload::KernelRegistry::instance().register_kernel(
        "micro_nop", [](offload::KernelContext&) {});

/// Runs `body(events)` on the head of a 1-worker instant-network cluster.
void with_cluster(const std::function<void(EventSystem&)>& body) {
  ClusterOptions opts;
  opts.num_workers = 1;
  opts.network = {};
  mpi::UniverseOptions uopts;
  uopts.ranks = opts.ranks();
  uopts.comms = 1 + opts.vci;
  mpi::Universe universe(uopts);
  universe.run([&](mpi::RankContext& ctx) {
    if (ctx.rank() == 0) {
      EventSystem events(ctx, opts, nullptr, nullptr);
      body(events);
      events.shutdown_cluster();
    } else {
      WorkerMemory memory(&ctx.universe(), ctx.rank());
      omp::TaskRuntime pool(1);
      EventSystem events(ctx, opts, &memory, &pool);
      events.wait_until_stopped();
    }
  });
}

void BM_EventAllocDeleteRoundTrip(benchmark::State& state) {
  const int rounds = 200;
  for (auto _ : state) {
    with_cluster([&](EventSystem& es) {
      for (int i = 0; i < rounds; ++i) {
        ArchiveWriter w;
        w.put(AllocHeader{64});
        const Bytes reply = es.run(1, EventKind::Alloc, w.take());
        ArchiveReader r(reply);
        const auto ptr = r.get<offload::TargetPtr>();
        ArchiveWriter d;
        d.put(DeleteHeader{ptr});
        es.run(1, EventKind::Delete, d.take());
      }
    });
  }
  state.SetItemsProcessed(state.iterations() * rounds * 2);
}
BENCHMARK(BM_EventAllocDeleteRoundTrip)->Unit(benchmark::kMillisecond);

void BM_EventSubmitRetrieve(benchmark::State& state) {
  const std::size_t bytes = static_cast<std::size_t>(state.range(0));
  const int rounds = 100;
  for (auto _ : state) {
    with_cluster([&](EventSystem& es) {
      ArchiveWriter aw;
      aw.put(AllocHeader{bytes});
      const Bytes reply = es.run(1, EventKind::Alloc, aw.take());
      ArchiveReader ar(reply);
      const auto ptr = ar.get<offload::TargetPtr>();
      Bytes host(bytes);
      for (int i = 0; i < rounds; ++i) {
        ArchiveWriter sw;
        sw.put(SubmitHeader{ptr, bytes});
        Bytes payload = host;
        es.run(1, EventKind::Submit, sw.take(), std::move(payload));
        es.start_retrieve(1, ptr, host.data(), bytes)->wait();
      }
      ArchiveWriter dw;
      dw.put(DeleteHeader{ptr});
      es.run(1, EventKind::Delete, dw.take());
    });
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          rounds * 2 * static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_EventSubmitRetrieve)->Arg(4096)->Arg(1 << 20)
    ->Unit(benchmark::kMillisecond);

void BM_ExecuteEventNopKernel(benchmark::State& state) {
  const int rounds = 200;
  for (auto _ : state) {
    with_cluster([&](EventSystem& es) {
      for (int i = 0; i < rounds; ++i) {
        ExecuteHeader h;
        h.kernel = kNop;
        es.run(1, EventKind::Execute, h.serialize());
      }
    });
  }
  state.SetItemsProcessed(state.iterations() * rounds);
}
BENCHMARK(BM_ExecuteEventNopKernel)->Unit(benchmark::kMillisecond);

void BM_EmptyTargetTaskEndToEnd(benchmark::State& state) {
  // Whole-stack per-task cost: record + HEFT + dispatch + events for a
  // dependency chain of nop targets.
  const int tasks = 64;
  std::uint64_t cell = 0;
  for (auto _ : state) {
    ClusterOptions opts;
    opts.num_workers = 2;
    opts.network = {};
    launch(opts, [&](Runtime& rt) {
      rt.enter_data(&cell, sizeof cell);
      for (int i = 0; i < tasks; ++i) {
        rt.target({omp::inout(&cell)}, kNop, Args().buf(&cell));
      }
      rt.exit_data(&cell);
    });
  }
  state.SetItemsProcessed(state.iterations() * tasks);
}
BENCHMARK(BM_EmptyTargetTaskEndToEnd)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
