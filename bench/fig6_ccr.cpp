// Figure 6 reproduction: execution time vs computation-to-communication
// ratio (CCR 0.5 / 1.0 / 2.0).
//
// Paper setup: 16 nodes, 16 x 16 graph, 500 ms (100M-iteration) tasks,
// data per edge scaled to hit each CCR. Here tasks are dilated to 10 ms
// (2M iterations) on the dilated network; CCR is achieved the same way —
// by scaling output_bytes so one edge transfer costs task_time / CCR.
//
// Expected shape: Charm++ collapses at CCR 0.5 (communication-dominated,
// one payload message per dependence edge); OMPC beats Charm++ on
// Tree/Stencil/FFT and tracks StarPU/MPI's variability.
#include "bench_util.hpp"

int main() {
  using namespace ompc;
  using namespace ompc::taskbench;

  const std::vector<double> ccrs = {0.5, 1.0, 2.0};
  const std::vector<std::string> runtimes = {"ompc", "charm", "starpu", "mpi"};
  const int nodes = 16;
  const mpi::NetworkModel net = bench::bench_network();

  std::printf("=== Figure 6: execution time (s) vs CCR — 16 nodes, 16x16 "
              "graph, 10 ms tasks (dilated 500 ms), %d reps ===\n",
              bench::repetitions());

  RunningStats speedup_per_pattern[4];

  for (Pattern pattern : all_patterns()) {
    TaskBenchSpec base;
    base.pattern = pattern;
    base.steps = 16;
    base.width = 16;
    base.iterations = 2'000'000;  // 10 ms dilated task
    base.mode = KernelMode::Sleep;

    Table table({"CCR", "OMPC", "Charm++", "StarPU", "MPI"});
    for (double ccr : ccrs) {
      TaskBenchSpec spec = base;
      spec.output_bytes = bytes_for_ccr(spec.task_seconds(), ccr, net);

      std::vector<std::string> row{Table::num(ccr, 1)};
      double ompc_s = 0.0, charm_s = 0.0;
      for (const std::string& rt : runtimes) {
        const RunningStats s = bench::timed_runs(
            spec, [&] { return run_named(rt, spec, nodes, net); });
        row.push_back(bench::mean_pm_dev(s));
        if (rt == "ompc") ompc_s = s.mean();
        if (rt == "charm") charm_s = s.mean();
      }
      table.add_row(std::move(row));
      if (ompc_s > 0.0)
        speedup_per_pattern[static_cast<int>(pattern)].add(charm_s / ompc_s);
    }
    std::printf("\n--- Fig 6(%c): %s ---\n",
                "abcd"[static_cast<int>(pattern)], pattern_name(pattern));
    table.print(std::cout);
  }

  std::printf("\nOMPC speedup vs Charm++ over CCRs (paper reports Tree "
              "1.53x / Stencil 1.34x / FFT 1.41x):\n");
  for (Pattern p : all_patterns()) {
    std::printf("  %-10s %.2fx\n", pattern_name(p),
                speedup_per_pattern[static_cast<int>(p)].mean());
  }
  return 0;
}
