// google-benchmark microbenchmarks of the host tasking substrate: task
// spawn/execute throughput, dependence-chain resolution, work stealing and
// parallel_for — LLVM-OpenMP-runtime analogue costs.
#include <benchmark/benchmark.h>

#include <atomic>

#include "omptask/runtime.hpp"

namespace {

using namespace ompc;
using namespace ompc::omp;

void BM_IndependentTaskThroughput(benchmark::State& state) {
  TaskRuntime rt(2);
  const int tasks = 1000;
  std::atomic<int> counter{0};
  for (auto _ : state) {
    counter = 0;
    for (int i = 0; i < tasks; ++i) {
      rt.submit([&] { counter.fetch_add(1, std::memory_order_relaxed); });
    }
    rt.taskwait();
    if (counter != tasks) state.SkipWithError("lost tasks");
  }
  state.SetItemsProcessed(state.iterations() * tasks);
}
BENCHMARK(BM_IndependentTaskThroughput)->Unit(benchmark::kMillisecond);

void BM_DependenceChain(benchmark::State& state) {
  // Serialized chain through one inout address: measures dependence
  // resolution + wakeup per task.
  TaskRuntime rt(2);
  const int tasks = 500;
  int cell = 0;
  for (auto _ : state) {
    for (int i = 0; i < tasks; ++i) {
      rt.submit([&] { ++cell; }, {inout(&cell)});
    }
    rt.taskwait();
  }
  state.SetItemsProcessed(state.iterations() * tasks);
}
BENCHMARK(BM_DependenceChain)->Unit(benchmark::kMillisecond);

void BM_FanOutFanIn(benchmark::State& state) {
  // 1 producer -> N readers -> 1 writer: the WAR/RAW bookkeeping pattern
  // the cluster graph builder uses too.
  TaskRuntime rt(2);
  const int readers = static_cast<int>(state.range(0));
  int cell = 0;
  std::atomic<int> reads{0};
  for (auto _ : state) {
    reads = 0;
    rt.submit([&] { cell = 42; }, {out(&cell)});
    for (int r = 0; r < readers; ++r) {
      rt.submit([&] { reads.fetch_add(cell == 42 ? 1 : 0); }, {in(&cell)});
    }
    rt.submit([&] { cell = 0; }, {inout(&cell)});
    rt.taskwait();
    if (reads != readers) state.SkipWithError("dependence violation");
  }
  state.SetItemsProcessed(state.iterations() * (readers + 2));
}
BENCHMARK(BM_FanOutFanIn)->Arg(16)->Arg(128);

void BM_ParallelFor(benchmark::State& state) {
  TaskRuntime rt(4);
  const std::int64_t n = state.range(0);
  std::vector<double> data(static_cast<std::size_t>(n), 1.0);
  for (auto _ : state) {
    rt.parallel_for(0, n, 1024, [&](std::int64_t lo, std::int64_t hi) {
      for (std::int64_t i = lo; i < hi; ++i)
        data[static_cast<std::size_t>(i)] *= 1.0000001;
    });
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ParallelFor)->Arg(1 << 14)->Arg(1 << 18);

}  // namespace

BENCHMARK_MAIN();
