// Figure 7(b) reproduction: Awave weak-scaling speedup on the Sigsbee-like
// and Marmousi-like models, one shot per worker node, 1..16 workers.
//
// Time dilation: each shot task is a real (small-grid) RTM plus padding to
// a fixed task duration, so N sleeping shots expose the scheduler's
// concurrency on the single-core host. Speedup(N) = N * T(1 shot serial) /
// T(N shots on N workers); ideal = N. Expected shape: near-linear for both
// models (coarse tasks, independent shots).
#include "awave/driver.hpp"
#include "bench_util.hpp"

int main() {
  using namespace ompc;
  using namespace ompc::awave;

  const std::vector<int> worker_counts = {1, 2, 4, 8, 16};
  // Dilated per-shot duration. The pad must dominate the shot's *real*
  // FD compute (~8 ms on the small grid below): concurrent shots share
  // the single host core, so real compute serializes — with a 2% real
  // fraction the serialization floor stays under the ideal line even at
  // 16 workers.
  const double task_pad_s = 0.4;

  std::printf("=== Figure 7(b): Awave weak-scaling speedup — one shot per "
              "worker, %.0f ms dilated shots, %d reps ===\n",
              task_pad_s * 1e3, bench::repetitions());

  Table table({"workers", "Sigsbee speedup", "Marmousi speedup", "ideal"});

  std::vector<std::vector<std::string>> rows(worker_counts.size());
  for (std::size_t w = 0; w < worker_counts.size(); ++w)
    rows[w].push_back(std::to_string(worker_counts[w]));

  for (const std::string& model_name : {std::string("sigsbee"),
                                        std::string("marmousi")}) {
    AwaveConfig cfg;
    cfg.model = model_name == "sigsbee" ? sigsbee_like(48, 40)
                                        : marmousi_like(48, 40);
    cfg.params.nt = 40;
    cfg.params.sponge = 8;
    cfg.pad_task_seconds = task_pad_s;

    // Serial cost of ONE shot (the weak-scaling unit).
    cfg.shots = 1;
    RunningStats serial_one;
    for (int rep = 0; rep < bench::repetitions(); ++rep)
      serial_one.add(migrate_serial(cfg).wall_s);
    const double t1 = serial_one.mean();

    for (std::size_t w = 0; w < worker_counts.size(); ++w) {
      const int workers = worker_counts[w];
      cfg.shots = workers;  // one shot per worker (paper setup)

      core::ClusterOptions opts;
      opts.num_workers = workers;
      opts.network = bench::bench_network();

      RunningStats wall;
      const AwaveResult check = migrate_serial(cfg);
      for (int rep = 0; rep < bench::repetitions(); ++rep) {
        const AwaveResult r = migrate_ompc(cfg, opts);
        // Validation: distributed image must equal the serial stack.
        for (std::size_t i = 0; i < r.image.size(); ++i) {
          if (r.image[i] != check.image[i]) {
            std::fprintf(stderr, "VALIDATION FAILED at pixel %zu\n", i);
            return 1;
          }
        }
        wall.add(r.wall_s);
      }
      const double speedup = static_cast<double>(workers) * t1 / wall.mean();
      rows[w].push_back(Table::num(speedup, 2));
    }
  }
  for (std::size_t w = 0; w < worker_counts.size(); ++w) {
    rows[w].push_back(std::to_string(worker_counts[w]) + ".00");
    table.add_row(rows[w]);
  }
  table.print(std::cout);
  std::printf("\n(paper: both models stay close to the ideal line up to 16 "
              "workers — coarse independent tasks)\n");
  return 0;
}
