// Persistent-channel gate on the 3D halo-exchange workload (src/halo): the
// steady-state iteration re-records the same wave every step, which is
// exactly the shape the ChannelPlan pre-posts. Three measurements, each a
// hard CI gate (exit 1, BENCH_persistent.json):
//   1. wire envelopes per steady-state iteration, persistent vs transient,
//      on BOTH transport conduits — persistent must be strictly fewer (the
//      Delete/Alloc renegotiation traffic must actually disappear);
//   2. iteration latency p50/p99 with persistent_channels on vs off —
//      p99(on) <= p99(off), and the armed run must report channels_armed
//      and persistent_reuses > 0 (the plan is live, not just enabled);
//   3. a worker killed while channels are armed: rollback invalidates the
//      plan and the recovered result stays bitwise-identical to the serial
//      oracle.
#include <algorithm>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "common/time.hpp"
#include "halo/halo3d.hpp"

using namespace ompc;

namespace {

halo::HaloSpec spec_of(int iters) {
  halo::HaloSpec s;
  s.nx = 2;
  s.ny = 2;
  s.nz = 2;
  s.cells = 6;
  s.iters = iters;
  return s;
}

core::ClusterOptions base_opts(bool persistent) {
  core::ClusterOptions o;
  o.num_workers = 4;
  o.persistent_channels = persistent;
  return o;
}

struct EnvelopeCount {
  double per_iter = 0.0;
  bool valid = false;
};

/// Steady-state envelopes per iteration: two runs differing only in
/// iteration count, so launch/teardown and cache-warmup traffic cancel.
EnvelopeCount envelopes_per_iter(mpi::ConduitKind conduit, bool persistent) {
  constexpr int kShort = 4, kLong = 10;
  core::ClusterOptions opts = base_opts(persistent);
  opts.conduit = conduit;
  const halo::HaloResult a = halo::run_halo3d(opts, spec_of(kShort));
  const halo::HaloResult b = halo::run_halo3d(opts, spec_of(kLong));
  EnvelopeCount e;
  e.per_iter = static_cast<double>(b.stats.messages_sent -
                                   a.stats.messages_sent) /
               static_cast<double>(kLong - kShort);
  e.valid = a.checksum == halo::serial_checksum(spec_of(kShort)) &&
            b.checksum == halo::serial_checksum(spec_of(kLong));
  return e;
}

}  // namespace

int main() {
  const int reps = bench::repetitions();
  const halo::HaloSpec spec = spec_of(12);
  const std::uint64_t oracle = halo::serial_checksum(spec);
  bool ok = true;
  int status = 0;

  std::printf("=== fig5_halo: persistent channels on 2x2x2 x %d^3 halo "
              "exchange, 4 workers, %d reps ===\n",
              spec.cells, reps);

  // --- 1. wire envelopes per steady-state iteration, both conduits -------
  struct ConduitRow {
    const char* name;
    mpi::ConduitKind kind;
    EnvelopeCount on, off;
  };
  std::vector<ConduitRow> conduits{
      {"inprocess", mpi::ConduitKind::InProcess, {}, {}},
      {"shm", mpi::ConduitKind::Shm, {}, {}}};
  for (ConduitRow& row : conduits) {
    row.on = envelopes_per_iter(row.kind, true);
    row.off = envelopes_per_iter(row.kind, false);
    ok = ok && row.on.valid && row.off.valid;
    std::printf("envelopes/iteration (%s): persistent %.1f, transient %.1f\n",
                row.name, row.on.per_iter, row.off.per_iter);
    if (!(row.on.per_iter < row.off.per_iter)) {
      std::fprintf(stderr,
                   "GATE: persistent channels did not reduce steady-state "
                   "envelopes on the %s conduit (%.1f vs %.1f)\n",
                   row.name, row.on.per_iter, row.off.per_iter);
      status = 1;
    }
  }

  // --- 2. iteration latency p50/p99, persistent vs transient -------------
  constexpr int kWarmup = 2;  // cache-miss iterations before the plan arms
  SampleStats lat_on_ms, lat_off_ms;
  std::int64_t armed = 0, reuses = 0;
  for (int rep = 0; rep < reps; ++rep) {
    const halo::HaloResult on = halo::run_halo3d(base_opts(true), spec);
    const halo::HaloResult off = halo::run_halo3d(base_opts(false), spec);
    ok = ok && on.checksum == oracle && off.checksum == oracle;
    for (std::size_t i = kWarmup; i < on.iter_ns.size(); ++i)
      lat_on_ms.add(ns_to_ms(on.iter_ns[i]));
    for (std::size_t i = kWarmup; i < off.iter_ns.size(); ++i)
      lat_off_ms.add(ns_to_ms(off.iter_ns[i]));
    armed += on.stats.channels_armed;
    reuses += on.stats.persistent_reuses;
  }
  const double p50_on = lat_on_ms.percentile(0.50);
  const double p99_on = lat_on_ms.percentile(0.99);
  const double p50_off = lat_off_ms.percentile(0.50);
  const double p99_off = lat_off_ms.percentile(0.99);
  std::printf("iteration latency: persistent p50 %.2f / p99 %.2f ms, "
              "transient p50 %.2f / p99 %.2f ms\n",
              p50_on, p99_on, p50_off, p99_off);
  std::printf("channel plan: %lld waves armed, %lld allocation re-uses "
              "across %d runs\n",
              static_cast<long long>(armed), static_cast<long long>(reuses),
              reps);
  if (p99_on > p99_off) {
    std::fprintf(stderr,
                 "GATE: persistent p99 %.2f ms exceeds transient p99 %.2f "
                 "ms\n",
                 p99_on, p99_off);
    status = 1;
  }
  if (armed <= 0 || reuses <= 0) {
    std::fprintf(stderr,
                 "GATE: persistent run never armed (%lld) or never re-used "
                 "(%lld) — the plan is dead weight\n",
                 static_cast<long long>(armed),
                 static_cast<long long>(reuses));
    status = 1;
  }

  // --- 3. kill a worker while channels are armed --------------------------
  halo::HaloSpec kill_spec = spec_of(20);
  core::ClusterOptions kopts = base_opts(true);
  kopts.heartbeat_period_ms = 5;
  kopts.heartbeat_timeout_ms = 60;
  kopts.checkpoint_period = 1;
  kopts.kills.push_back({2, 30'000'000});  // worker rank 2 dies at 30 ms
  const halo::HaloResult killed = halo::run_halo3d(kopts, kill_spec);
  const bool kill_bitwise =
      killed.checksum == halo::serial_checksum(kill_spec);
  std::printf("kill-mid-armed: %lld recoveries, %lld waves armed, checksum "
              "%s\n",
              static_cast<long long>(killed.stats.recoveries),
              static_cast<long long>(killed.stats.channels_armed),
              kill_bitwise ? "bitwise-identical" : "DIVERGED");
  if (killed.stats.recoveries < 1) {
    std::fprintf(stderr, "GATE: the kill run never recovered\n");
    status = 1;
  }
  if (killed.stats.channels_armed < 1) {
    std::fprintf(stderr, "GATE: the kill run never armed its channels\n");
    status = 1;
  }
  if (!kill_bitwise) {
    std::fprintf(stderr,
                 "GATE: recovery with channels armed diverged from the "
                 "serial oracle\n");
    status = 1;
  }
  if (!ok) {
    std::fprintf(stderr, "GATE: a measured run diverged from the oracle\n");
    status = 1;
  }

  {
    std::ofstream json("BENCH_persistent.json");
    json << "{\n"
         << "  \"bench\": \"fig5_halo\",\n"
         << "  \"reps\": " << reps << ",\n"
         << "  \"workers\": 4,\n"
         << "  \"subdomains\": " << spec.subdomains() << ",\n"
         << "  \"cells\": " << spec.cells << ",\n";
    for (const ConduitRow& row : conduits)
      json << "  \"envelopes_per_iter_" << row.name
           << "_persistent\": " << row.on.per_iter << ",\n"
           << "  \"envelopes_per_iter_" << row.name
           << "_transient\": " << row.off.per_iter << ",\n";
    json << "  \"iter_p50_persistent_ms\": " << p50_on << ",\n"
         << "  \"iter_p99_persistent_ms\": " << p99_on << ",\n"
         << "  \"iter_p50_transient_ms\": " << p50_off << ",\n"
         << "  \"iter_p99_transient_ms\": " << p99_off << ",\n"
         << "  \"channels_armed\": " << armed << ",\n"
         << "  \"persistent_reuses\": " << reuses << ",\n"
         << "  \"kill_recoveries\": " << killed.stats.recoveries << ",\n"
         << "  \"kill_channels_armed\": " << killed.stats.channels_armed
         << ",\n"
         << "  \"bitwise_identical\": "
         << (ok && kill_bitwise ? "true" : "false") << "\n"
         << "}\n";
  }
  std::printf("wrote BENCH_persistent.json\n");
  return status;
}
