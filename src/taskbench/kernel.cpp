#include "taskbench/kernel.hpp"

#include <cstring>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/time.hpp"

namespace ompc::taskbench {

std::uint64_t burn(KernelMode mode, std::int64_t iterations) {
  if (iterations <= 0) return 0;
  if (mode == KernelMode::Sleep) {
    precise_sleep_ns(static_cast<std::int64_t>(
        static_cast<double>(iterations) * kNsPerIteration));
    return 0;
  }
  XorShift64 rng(static_cast<std::uint64_t>(iterations) | 1u);
  std::uint64_t acc = 0;
  for (std::int64_t k = 0; k < iterations; ++k) acc ^= rng.next();
  return acc;
}

std::uint64_t read_digest(std::span<const std::byte> output) {
  OMPC_CHECK(output.size() >= sizeof(std::uint64_t));
  std::uint64_t d = 0;
  std::memcpy(&d, output.data(), sizeof d);
  return d;
}

namespace {
std::uint64_t point_digest(int t, int i,
                           std::span<const std::uint64_t> input_digests) {
  std::uint64_t h = fnv1a(&t, sizeof t);
  h = fnv1a(&i, sizeof i, h);
  for (std::uint64_t in : input_digests) h = fnv1a(&in, sizeof in, h);
  return h;
}
}  // namespace

void point_compute(const TaskBenchSpec& spec, int t, int i,
                   std::span<const std::uint64_t> input_digests,
                   std::span<std::byte> output) {
  OMPC_CHECK_MSG(output.size() >= 16, "task bench outputs are >= 16 bytes");
  const std::uint64_t noise = burn(spec.mode, spec.iterations);
  std::uint64_t digest = point_digest(t, i, input_digests);
  digest ^= (noise & 0);  // keep `noise` observable without affecting data

  std::memcpy(output.data(), &digest, sizeof digest);
  // Deterministic filler for the payload body: cheap, seeded by the
  // digest, and bounded so huge CCR payloads don't turn into compute.
  XorShift64 rng(digest);
  const std::size_t fill = std::min<std::size_t>(output.size(), 64);
  for (std::size_t off = sizeof digest; off + 8 <= fill; off += 8) {
    const std::uint64_t v = rng.next();
    std::memcpy(output.data() + off, &v, sizeof v);
  }
}

std::uint64_t combine_digests(std::span<const std::uint64_t> digests) {
  // Sum is commutative: partial sums from distributed ranks combine in any
  // order (allreduce_sum) and still match the sequential value.
  std::uint64_t total = 0;
  for (std::uint64_t d : digests) total += d * 0x9e3779b97f4a7c15ull;
  return total;
}

std::uint64_t expected_checksum(const TaskBenchSpec& spec) {
  const std::size_t w = static_cast<std::size_t>(spec.width);
  std::vector<std::uint64_t> prev(w, 0), cur(w, 0);
  for (int t = 0; t < spec.steps; ++t) {
    for (int i = 0; i < spec.width; ++i) {
      std::vector<std::uint64_t> ins;
      for (int j : dependencies(spec, t, i))
        ins.push_back(prev[static_cast<std::size_t>(j)]);
      cur[static_cast<std::size_t>(i)] = point_digest(t, i, ins);
    }
    std::swap(prev, cur);
  }
  return combine_digests(prev);
}

}  // namespace ompc::taskbench
