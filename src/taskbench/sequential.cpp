// Sequential Task Bench runner: the validation oracle. Executes the full
// dataflow (including the compute burn) in one thread with real buffers.
#include <vector>

#include "common/time.hpp"
#include "taskbench/kernel.hpp"
#include "taskbench/runners.hpp"

namespace ompc::taskbench {

RunResult run_sequential(const TaskBenchSpec& spec) {
  const auto w = static_cast<std::size_t>(spec.width);
  const std::size_t out_bytes = std::max<std::size_t>(16, spec.output_bytes);
  std::vector<Bytes> prev(w, Bytes(out_bytes));
  std::vector<Bytes> cur(w, Bytes(out_bytes));

  const Stopwatch timer;
  for (int t = 0; t < spec.steps; ++t) {
    for (int i = 0; i < spec.width; ++i) {
      std::vector<std::uint64_t> ins;
      for (int j : dependencies(spec, t, i))
        ins.push_back(read_digest(prev[static_cast<std::size_t>(j)]));
      point_compute(spec, t, i, ins, cur[static_cast<std::size_t>(i)]);
    }
    std::swap(prev, cur);
  }

  RunResult r;
  r.wall_s = timer.elapsed_s();
  std::vector<std::uint64_t> digests;
  digests.reserve(w);
  for (const Bytes& b : prev) digests.push_back(read_digest(b));
  r.checksum = combine_digests(digests);
  return r;
}

}  // namespace ompc::taskbench
