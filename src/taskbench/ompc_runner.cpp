// Task Bench over the OMPC runtime.
//
// Ping-pong buffer scheme: two rows of `width` device buffers; the task at
// (t, i) writes row t%2 column i and reads its dependencies from row
// (t+1)%2. Every buffer a task touches appears in its depend list (the
// §4.3 restriction), which is exactly what lets the Data Manager place and
// forward data with no explicit communication in this file — the whole
// point of the programming model.
#include <memory>
#include <thread>
#include <vector>

#include "common/check.hpp"
#include "common/log.hpp"
#include "taskbench/kernel.hpp"
#include "taskbench/runners.hpp"

namespace ompc::taskbench {

namespace {

/// Worker-side kernel: buffers[0] = own output, buffers[1..] = dependency
/// inputs; scalars carry the point coordinates and kernel parameters.
const offload::KernelId kPointKernel =
    offload::KernelRegistry::instance().register_kernel(
        "taskbench_point", [](offload::KernelContext& ctx) {
          auto r = ctx.scalars();
          const int t = r.get<int>();
          const int i = r.get<int>();
          const auto mode = r.get<KernelMode>();
          const auto iterations = r.get<std::int64_t>();
          const auto out_bytes = r.get<std::uint64_t>();

          std::vector<std::uint64_t> ins;
          ins.reserve(ctx.num_buffers() - 1);
          for (std::size_t b = 1; b < ctx.num_buffers(); ++b) {
            ins.push_back(read_digest(
                std::span<const std::byte>(ctx.buffer<std::byte>(b), 8)));
          }
          TaskBenchSpec k;
          k.mode = mode;
          k.iterations = iterations;
          k.output_bytes = out_bytes;
          point_compute(k, t, i, ins,
                        std::span<std::byte>(ctx.buffer<std::byte>(0),
                                             out_bytes));
        });

}  // namespace

namespace {

/// Shared body of run_ompc / run_ompc_stepwise: the ping-pong dataflow with
/// an optional wait_all() barrier after every step.
RunResult run_ompc_impl(const TaskBenchSpec& spec,
                        const core::ClusterOptions& opts, bool stepwise) {
  const auto w = static_cast<std::size_t>(spec.width);
  const std::size_t out_bytes = std::max<std::size_t>(16, spec.output_bytes);

  // Row parity x column. Host-side backing store; contents only round-trip
  // at enter/exit.
  std::vector<std::vector<Bytes>> rows(2, std::vector<Bytes>(w));
  for (auto& row : rows)
    for (auto& b : row) b.assign(out_bytes, std::byte{0});

  RunResult result;
  result.stats = core::launch(opts, [&](core::Runtime& rt) {
    for (auto& row : rows)
      for (auto& b : row) rt.enter_data(b.data(), b.size());

    for (int t = 0; t < spec.steps; ++t) {
      auto& cur = rows[static_cast<std::size_t>(t % 2)];
      auto& prev = rows[static_cast<std::size_t>((t + 1) % 2)];
      for (int i = 0; i < spec.width; ++i) {
        core::Args args;
        omp::DepList deps;
        Bytes& out = cur[static_cast<std::size_t>(i)];
        args.buf(out.data());
        deps.push_back(omp::inout(out.data()));
        for (int j : dependencies(spec, t, i)) {
          Bytes& in = prev[static_cast<std::size_t>(j)];
          args.buf(in.data());
          deps.push_back(omp::in(in.data()));
        }
        args.scalar(t).scalar(i).scalar(spec.mode).scalar(spec.iterations)
            .scalar<std::uint64_t>(out_bytes);
        rt.target(std::move(deps), kPointKernel, std::move(args),
                  spec.task_seconds());
      }
      if (stepwise) rt.wait_all();  // one wave per step
    }

    // Retrieve the final row; release the scratch row without copying.
    const auto final_row = static_cast<std::size_t>((spec.steps - 1) % 2);
    for (std::size_t p = 0; p < 2; ++p)
      for (auto& b : rows[p]) rt.exit_data(b.data(), p == final_row);
  });

  result.wall_s = ns_to_s(result.stats.wall_ns);
  result.messages = result.stats.messages_sent;

  std::vector<std::uint64_t> digests;
  digests.reserve(w);
  const auto& final_row = rows[static_cast<std::size_t>((spec.steps - 1) % 2)];
  for (const Bytes& b : final_row) digests.push_back(read_digest(b));
  result.checksum = combine_digests(digests);
  return result;
}

}  // namespace

RunResult run_ompc(const TaskBenchSpec& spec,
                   const core::ClusterOptions& opts) {
  return run_ompc_impl(spec, opts, /*stepwise=*/false);
}

RunResult run_ompc_stepwise(const TaskBenchSpec& spec,
                            const core::ClusterOptions& opts) {
  return run_ompc_impl(spec, opts, /*stepwise=*/true);
}

// --- multi-tenancy --------------------------------------------------------

void drive_tenant_stream(core::TenantSession& session, TenantStream& stream) {
  const TaskBenchSpec& spec = stream.spec;
  const auto w = static_cast<std::size_t>(spec.width);
  const std::size_t out_bytes = std::max<std::size_t>(16, spec.output_bytes);

  // The stream owns its ping-pong rows: tenants use disjoint buffer sets
  // (host pointers are the cluster-wide namespace), and the rows outlive
  // every wave because wait() below returns only after the exit wave.
  std::vector<std::vector<Bytes>> rows(2, std::vector<Bytes>(w));
  for (auto& row : rows)
    for (auto& b : row) b.assign(out_bytes, std::byte{0});

  for (auto& row : rows)
    for (auto& b : row) session.enter_data(b.data(), b.size());

  for (int t = 0; t < spec.steps; ++t) {
    auto& cur = rows[static_cast<std::size_t>(t % 2)];
    auto& prev = rows[static_cast<std::size_t>((t + 1) % 2)];
    for (int i = 0; i < spec.width; ++i) {
      core::Args args;
      omp::DepList deps;
      Bytes& out = cur[static_cast<std::size_t>(i)];
      args.buf(out.data());
      deps.push_back(omp::inout(out.data()));
      for (int j : dependencies(spec, t, i)) {
        Bytes& in = prev[static_cast<std::size_t>(j)];
        args.buf(in.data());
        deps.push_back(omp::in(in.data()));
      }
      args.scalar(t).scalar(i).scalar(spec.mode).scalar(spec.iterations)
          .scalar<std::uint64_t>(out_bytes);
      session.target(std::move(deps), kPointKernel, std::move(args),
                     spec.task_seconds());
    }
    // One wave per step (wave 0 carries the enters too). Blocking submit:
    // backpressure instead of AdmissionError when the queue is full.
    session.submit_wait();
  }

  const auto final_row = static_cast<std::size_t>((spec.steps - 1) % 2);
  for (std::size_t p = 0; p < 2; ++p)
    for (auto& b : rows[p]) session.exit_data(b.data(), p == final_row);
  session.submit_wait();
  session.wait();

  std::vector<std::uint64_t> digests;
  digests.reserve(w);
  for (const Bytes& b : rows[final_row]) digests.push_back(read_digest(b));
  stream.checksum = combine_digests(digests);
}

core::RuntimeStats run_multi_tenant(const core::ClusterOptions& opts,
                                    std::vector<TenantStream>& streams) {
  return core::launch(opts, [&](core::Runtime& rt) {
    // Sessions must exist before serve_tenants(): an instant with no open
    // session and no queued wave reads as "all tenants done".
    std::vector<std::unique_ptr<core::TenantSession>> sessions;
    sessions.reserve(streams.size());
    for (TenantStream& st : streams) {
      st.tenant = rt.create_tenant(st.weight);
      sessions.push_back(
          std::make_unique<core::TenantSession>(rt, st.tenant));
    }

    std::vector<std::exception_ptr> errors(streams.size());
    std::vector<std::thread> submitters;
    submitters.reserve(streams.size());
    for (std::size_t i = 0; i < streams.size(); ++i) {
      submitters.emplace_back([&, i] {
        log::set_thread_label("tenant" + std::to_string(streams[i].tenant));
        try {
          drive_tenant_stream(*sessions[i], streams[i]);
        } catch (...) {
          errors[i] = std::current_exception();
        }
        // Close even on error, or the serve loop would wait forever for
        // this stream to finish.
        sessions[i]->close();
      });
    }

    std::exception_ptr serve_error;
    try {
      rt.serve_tenants();
    } catch (...) {
      // serve_tenants wakes every blocked submitter before rethrowing, so
      // the joins below terminate.
      serve_error = std::current_exception();
    }
    for (std::thread& th : submitters) th.join();
    for (TenantStream& st : streams) st.stats = rt.tenant_stats(st.tenant);

    // The serve loop's failure is the root cause (submitter errors are
    // usually its AdmissionError shadow); report it first.
    if (serve_error) std::rethrow_exception(serve_error);
    for (std::exception_ptr& e : errors)
      if (e) std::rethrow_exception(e);
  });
}

}  // namespace ompc::taskbench
