// Task Bench runners: one per runtime the paper evaluates (§6.1 selected
// the task-based distributed runtimes — Charm++, StarPU — plus the raw MPI
// reference; OMPC is the system under test; sequential is our validation
// oracle).
//
// Every runner executes the same dataflow with the same point kernel and
// returns a checksum that must equal expected_checksum(spec) — a
// cross-runtime integration test of the whole stack.
#pragma once

#include <cstdint>

#include "core/options.hpp"
#include "core/runtime.hpp"
#include "taskbench/spec.hpp"

namespace ompc::taskbench {

struct RunResult {
  double wall_s = 0.0;          ///< execution time (the figures' y-axis)
  std::uint64_t checksum = 0;   ///< must match expected_checksum(spec)
  std::int64_t messages = 0;    ///< wire messages (instrumentation)
  core::RuntimeStats stats;     ///< populated by the OMPC runner only
};

/// In-process reference (no cluster, no communication).
RunResult run_sequential(const TaskBenchSpec& spec);

/// The system under test: OMPC with `opts.num_workers` worker nodes.
RunResult run_ompc(const TaskBenchSpec& spec, const core::ClusterOptions& opts);

/// run_ompc with one wait_all() per step instead of one graph for the whole
/// run: each step is its own wave, which is what `checkpoint_period` (and
/// the schedule cache) are defined over. The fault-tolerance benches and
/// tests use this shape so every boundary sees worker-resident buffers.
RunResult run_ompc_stepwise(const TaskBenchSpec& spec,
                            const core::ClusterOptions& opts);

/// One tenant's workload in a multi-tenant run: a Task Bench spec driven
/// stepwise (one wave per step) through the tenant's own TenantSession
/// from its own submitter thread. `weight` is the WDRR share; `tenant`,
/// `checksum` and `stats` are outputs.
struct TenantStream {
  TaskBenchSpec spec;
  double weight = 1.0;
  core::TenantId tenant = core::kDefaultTenant;
  std::uint64_t checksum = 0;     ///< must match expected_checksum(spec)
  core::TenantStats stats;
};

/// Drives `stream` to completion through `session`: enters + step 0 as
/// wave 0, one wave per later step, the exit wave last (all blocking
/// submits), then waits for the tenant's queue to drain and computes the
/// checksum from the final row. Runs on the stream's own thread.
void drive_tenant_stream(core::TenantSession& session, TenantStream& stream);

/// N concurrent tenants sharing one cluster: one submitter thread per
/// stream, the head control thread pumping Runtime::serve_tenants(). Each
/// stream's checksum/stats are filled in; the serve loop's failure (e.g.
/// RecoveryError with fault tolerance off) is rethrown after all submitter
/// threads have been joined.
core::RuntimeStats run_multi_tenant(const core::ClusterOptions& opts,
                                    std::vector<TenantStream>& streams);

/// Synchronous data-parallel MPI reference: block-owned columns, per-step
/// halo exchange (the paper's "best possible baseline").
RunResult run_mpisync(const TaskBenchSpec& spec, int nodes,
                      const mpi::NetworkModel& net);

/// StarPU-like: decentralized task runtime, owner-computes data handles,
/// automatic per-edge isend/irecv (see src/baselines/starpulike.cpp).
RunResult run_starpulike(const TaskBenchSpec& spec, int nodes,
                         const mpi::NetworkModel& net);

/// Charm++-like: message-driven chare array, one chare per point column,
/// one message per dependence edge (see src/baselines/charmlike.cpp).
RunResult run_charmlike(const TaskBenchSpec& spec, int nodes,
                        const mpi::NetworkModel& net);

/// Runner by name ("ompc", "mpi", "starpu", "charm") — for the CLI example
/// and the figure benches. `nodes` is the paper's x-axis meaning: OMPC
/// worker count / baseline rank count.
RunResult run_named(const std::string& runtime, const TaskBenchSpec& spec,
                    int nodes, const mpi::NetworkModel& net);

}  // namespace ompc::taskbench
