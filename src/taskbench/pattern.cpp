#include "taskbench/spec.hpp"

#include <algorithm>
#include <sstream>

#include "common/check.hpp"

namespace ompc::taskbench {

const char* pattern_name(Pattern p) {
  switch (p) {
    case Pattern::Trivial: return "trivial";
    case Pattern::Stencil1D: return "stencil_1d";
    case Pattern::Fft: return "fft";
    case Pattern::Tree: return "tree";
  }
  return "?";
}

Pattern pattern_from_name(const std::string& name) {
  for (Pattern p : all_patterns()) {
    if (name == pattern_name(p)) return p;
  }
  OMPC_CHECK_MSG(false, "unknown pattern '" << name << '\'');
}

std::vector<Pattern> all_patterns() {
  return {Pattern::Trivial, Pattern::Stencil1D, Pattern::Fft, Pattern::Tree};
}

namespace {
int log2_floor(int v) {
  int l = 0;
  while ((1 << (l + 1)) <= v) ++l;
  return l;
}
}  // namespace

std::vector<int> dependencies(const TaskBenchSpec& spec, int t, int i) {
  OMPC_CHECK(t >= 0 && t < spec.steps && i >= 0 && i < spec.width);
  if (t == 0) return {};
  const int w = spec.width;
  switch (spec.pattern) {
    case Pattern::Trivial:
      return {};
    case Pattern::Stencil1D: {
      std::vector<int> d{(i - 1 + w) % w, i, (i + 1) % w};
      std::sort(d.begin(), d.end());
      d.erase(std::unique(d.begin(), d.end()), d.end());
      return d;
    }
    case Pattern::Fft: {
      const int levels = log2_floor(w);
      if (levels == 0) return {i};
      const int partner = i ^ (1 << ((t - 1) % levels));
      if (partner >= w || partner == i) return {i};
      std::vector<int> d{i, partner};
      std::sort(d.begin(), d.end());
      return d;
    }
    case Pattern::Tree:
      return {i / 2};
  }
  return {};
}

std::vector<int> consumers(const TaskBenchSpec& spec, int t, int i) {
  std::vector<int> out;
  if (t + 1 >= spec.steps) return out;
  // Width is small (<= a few thousand); scanning the next row keeps the
  // pattern definition in one place.
  for (int j = 0; j < spec.width; ++j) {
    const std::vector<int> deps = dependencies(spec, t + 1, j);
    if (std::find(deps.begin(), deps.end(), i) != deps.end())
      out.push_back(j);
  }
  return out;
}

std::size_t bytes_for_ccr(double task_seconds, double ccr,
                          const mpi::NetworkModel& net) {
  OMPC_CHECK(ccr > 0.0 && task_seconds > 0.0);
  const double comm_seconds = task_seconds / ccr;
  const double latency_s = static_cast<double>(net.latency_ns) / 1e9;
  const double payload_s = std::max(0.0, comm_seconds - latency_s);
  if (net.bandwidth_Bps <= 0.0) return 16;
  const auto bytes =
      static_cast<std::size_t>(payload_s * net.bandwidth_Bps);
  return std::max<std::size_t>(16, bytes);
}

std::string render_pattern(Pattern p, int width, int steps) {
  TaskBenchSpec spec;
  spec.pattern = p;
  spec.width = width;
  spec.steps = steps;
  std::ostringstream os;
  os << pattern_name(p) << " (" << steps << " steps x " << width
     << " points; '<-' lists the t-1 columns each point reads)\n";
  for (int t = 0; t < steps; ++t) {
    os << "t=" << t << ": ";
    for (int i = 0; i < width; ++i) {
      os << '[' << i;
      const auto deps = dependencies(spec, t, i);
      if (!deps.empty()) {
        os << "<-";
        for (std::size_t k = 0; k < deps.size(); ++k)
          os << (k > 0 ? "," : "") << deps[k];
      }
      os << "] ";
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace ompc::taskbench
