// Task Bench workload specification (Slaughter et al., SC'20 — the
// benchmark used throughout the paper's §6).
//
// A Task Bench workload is a grid of `steps` x `width` points; the task at
// (t, i) consumes the outputs of a pattern-defined set of points at t-1 and
// produces `output_bytes` of data after `iterations` of compute. The paper
// uses four dependency patterns (Fig. 4) and controls the computation-to-
// communication ratio (CCR) by scaling the data exchanged per edge.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "minimpi/mpi.hpp"

namespace ompc::taskbench {

/// Dependency patterns of the paper's Figure 4.
enum class Pattern : std::uint8_t {
  Trivial,    ///< no inter-task dependencies
  Stencil1D,  ///< periodic 3-point stencil: {i-1, i, i+1} mod W
  Fft,        ///< butterfly: {i, i xor 2^((t-1) mod log2 W)}
  Tree,       ///< binary fan-out: {i/2} — broadcast-tree shaped traffic
};

const char* pattern_name(Pattern p);
Pattern pattern_from_name(const std::string& name);
std::vector<Pattern> all_patterns();

/// How a task's compute cost is realized (DESIGN.md §2, time dilation).
enum class KernelMode : std::uint8_t {
  Busy,   ///< real arithmetic (xorshift loop), ~1 iteration per ~1.25ns
  Sleep,  ///< calibrated wait: iterations x 5 ns (paper: 10M iters = 50ms)
};

/// Paper calibration: 10M iterations == 50 ms of compute.
inline constexpr double kNsPerIteration = 5.0;

struct TaskBenchSpec {
  int steps = 16;
  int width = 16;
  Pattern pattern = Pattern::Stencil1D;
  std::int64_t iterations = 10'000;  ///< compute per task
  std::size_t output_bytes = 64;     ///< data produced per task (>= 16)
  KernelMode mode = KernelMode::Sleep;

  double task_seconds() const {
    return static_cast<double>(iterations) * kNsPerIteration / 1e9;
  }
};

/// Dependencies of point (t, i): column indices at t-1 (empty at t == 0).
std::vector<int> dependencies(const TaskBenchSpec& spec, int t, int i);

/// Consumers of point (t, i)'s output at t+1 (empty at the last step).
std::vector<int> consumers(const TaskBenchSpec& spec, int t, int i);

/// Output size per task such that one edge's transfer time equals
/// task_seconds / ccr on the given network (the paper's CCR control:
/// CCR = computation cost / communication cost).
std::size_t bytes_for_ccr(double task_seconds, double ccr,
                          const mpi::NetworkModel& net);

/// ASCII rendering of a pattern's first few steps (Fig. 4 visual check).
std::string render_pattern(Pattern p, int width, int steps);

}  // namespace ompc::taskbench
