// The Task Bench point kernel, shared verbatim by every runner
// (sequential, OMPC, MPI, StarPU-like, Charm-like) so that all runtimes
// produce bit-identical outputs and a common checksum validates their
// dataflow end to end.
//
// Each point's output begins with an 8-byte digest that chains the digests
// of its inputs — any misrouted, stale or missing dependence changes the
// final checksum.
#pragma once

#include <cstdint>
#include <span>

#include "taskbench/spec.hpp"

namespace ompc::taskbench {

/// Burns the task's compute cost: a real arithmetic loop (Busy) or a
/// calibrated wait (Sleep; 5 ns per iteration). Returns a value that
/// depends on the loop so Busy cannot be optimized away.
std::uint64_t burn(KernelMode mode, std::int64_t iterations);

/// Digest stored in the first 8 bytes of an output buffer.
std::uint64_t read_digest(std::span<const std::byte> output);

/// Computes point (t, i): consumes the digests of `inputs` (the outputs of
/// its t-1 dependencies, pattern order), performs the compute, and fills
/// `output` (>= 16 bytes) with the new digest plus deterministic filler.
void point_compute(const TaskBenchSpec& spec, int t, int i,
                   std::span<const std::uint64_t> input_digests,
                   std::span<std::byte> output);

/// Order-independent combination of last-row digests: the value every
/// runner must agree on.
std::uint64_t combine_digests(std::span<const std::uint64_t> digests);

/// Reference checksum computed directly (no buffers): what a correct run
/// of `spec` must produce. Skips the compute burn, so it is fast even for
/// specs with large iteration counts.
std::uint64_t expected_checksum(const TaskBenchSpec& spec);

}  // namespace ompc::taskbench
