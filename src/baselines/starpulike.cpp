// StarPU-like Task Bench runner.
//
// Captures the architectural signature of StarPU + starpu_mpi that the
// paper compares against (§5 calls it "much lower-level", §6.2 shows it
// tracking raw MPI closely):
//  - decentralized: every rank runs its own dataflow scheduler, no head;
//  - owner computes: a data handle (column version) lives on its block
//    owner, and the task writing it runs there;
//  - automatic communication: for every dependence edge that crosses
//    ranks, the producer's rank isends and the consumer's rank irecvs,
//    tagged by (step, column) — what starpu_mpi derives from handles;
//  - asynchronous dataflow execution: tasks run as their inputs land, not
//    in bulk-synchronous rounds, so slack in one column overlaps
//    communication in another;
//  - per-task runtime bookkeeping (dependence counters, ready queue,
//    progress polling) is real work, so its overhead relative to the
//    bulk-synchronous MPI version is honestly measured, not modelled.
//
// Handle versions are stored as 8-byte digests (that is all a consumer
// reads); full `output_bytes` payloads are materialized only to cross the
// wire, so memory stays bounded while network cost is identical to
// shipping the real buffer.
#include <deque>
#include <map>
#include <vector>

#include "common/check.hpp"
#include "common/time.hpp"
#include "minimpi/mpi.hpp"
#include "taskbench/kernel.hpp"
#include "taskbench/runners.hpp"

namespace ompc::taskbench {

namespace {

struct BlockMap {
  int width;
  int ranks;
  int block;
  BlockMap(int w, int r) : width(w), ranks(r), block((w + r - 1) / r) {}
  int owner(int col) const { return col / block; }
  int lo(int rank) const { return std::min(rank * block, width); }
  int hi(int rank) const { return std::min((rank + 1) * block, width); }
};

mpi::Tag tag_of(int t, int col, int width) {
  const auto tag = static_cast<mpi::Tag>(t) * width + col;
  OMPC_CHECK_MSG(tag <= mpi::kMaxUserTag, "graph too large for tag space");
  return tag;
}

struct Inbound {
  mpi::Request req;
  int t = 0;    ///< producing step
  int col = 0;  ///< producing column
  Bytes data;
  bool done = false;
};

}  // namespace

RunResult run_starpulike(const TaskBenchSpec& spec, int nodes,
                         const mpi::NetworkModel& net) {
  OMPC_CHECK(nodes >= 1);
  const std::size_t out_bytes = std::max<std::size_t>(16, spec.output_bytes);

  double wall_s = 0.0;
  std::uint64_t checksum = 0;

  mpi::UniverseOptions uopts;
  uopts.ranks = nodes;
  uopts.network = net;
  mpi::Universe universe(uopts);
  universe.run([&](mpi::RankContext& ctx) {
    const mpi::Comm comm = ctx.world();
    const int me = comm.rank();
    const BlockMap blocks(spec.width, nodes);
    const int lo = blocks.lo(me);
    const int hi = blocks.hi(me);
    const int owned = hi - lo;

    // Handle versions: digest of (t, col) once produced/received.
    std::map<std::pair<int, int>, std::uint64_t> digest_of;

    auto task_index = [&](int t, int i) {
      return static_cast<std::size_t>(t) * static_cast<std::size_t>(owned) +
             static_cast<std::size_t>(i - lo);
    };
    std::vector<int> waiting(static_cast<std::size_t>(spec.steps) *
                                 static_cast<std::size_t>(std::max(owned, 1)),
                             0);
    std::deque<std::pair<int, int>> ready;

    // Pre-post one irecv per unique remote handle version we will consume
    // (starpu_mpi posts communications at submission time).
    std::vector<Inbound> inbound;
    {
      std::map<std::pair<int, int>, bool> posted;
      for (int t = 0; t < spec.steps; ++t) {
        for (int i = lo; i < hi; ++i) {
          const auto deps = dependencies(spec, t, i);
          waiting[task_index(t, i)] = static_cast<int>(deps.size());
          if (deps.empty()) ready.emplace_back(t, i);
          for (int j : deps) {
            if (blocks.owner(j) == me) continue;
            if (posted.emplace(std::make_pair(t - 1, j), true).second) {
              Inbound in;
              in.t = t - 1;
              in.col = j;
              in.data.resize(out_bytes);
              in.req = comm.irecv(in.data.data(), out_bytes, blocks.owner(j),
                                  tag_of(t - 1, j, spec.width));
              inbound.push_back(std::move(in));
            }
          }
        }
      }
    }

    comm.barrier();
    const Stopwatch timer;

    int completed = 0;
    const int total = spec.steps * owned;

    auto satisfy = [&](int t_prod, int col) {
      const int t = t_prod + 1;
      if (t >= spec.steps) return;
      for (int c : consumers(spec, t_prod, col)) {
        if (blocks.owner(c) != me) continue;
        if (--waiting[task_index(t, c)] == 0) ready.emplace_back(t, c);
      }
    };

    Bytes scratch(out_bytes);
    while (completed < total) {
      if (!ready.empty()) {
        const auto [t, i] = ready.front();
        ready.pop_front();

        std::vector<std::uint64_t> ins;
        for (int j : dependencies(spec, t, i))
          ins.push_back(digest_of.at({t - 1, j}));
        point_compute(spec, t, i, ins, scratch);
        digest_of[{t, i}] = read_digest(scratch);
        ++completed;

        if (t + 1 < spec.steps) {
          // One wire message per remote destination rank.
          std::vector<bool> sent(static_cast<std::size_t>(nodes), false);
          for (int c : consumers(spec, t, i)) {
            const int dst = blocks.owner(c);
            if (dst == me || sent[static_cast<std::size_t>(dst)]) continue;
            sent[static_cast<std::size_t>(dst)] = true;
            comm.isend(scratch.data(), scratch.size(), dst,
                       tag_of(t, i, spec.width));
          }
          satisfy(t, i);
        }
        continue;
      }

      // Nothing ready: progress inbound transfers (the dataflow engine's
      // polling loop).
      bool progressed = false;
      for (auto& in : inbound) {
        if (in.done) continue;
        if (in.req.test()) {
          in.done = true;
          digest_of[{in.t, in.col}] = read_digest(in.data);
          satisfy(in.t, in.col);
          progressed = true;
        }
      }
      // Real OS sleep: a precise (spinning) wait would hog the simulated
      // cluster's shared CPU while transfers are in flight.
      if (!progressed)
        std::this_thread::sleep_for(std::chrono::microseconds(200));
    }

    comm.barrier();
    if (me == 0) wall_s = timer.elapsed_s();

    std::uint64_t partial = 0;
    for (int i = lo; i < hi; ++i)
      partial += digest_of.at({spec.steps - 1, i}) * 0x9e3779b97f4a7c15ull;
    const std::uint64_t total_sum = comm.allreduce_sum(partial);
    if (me == 0) checksum = total_sum;
  });

  return RunResult{wall_s, checksum, universe.messages_sent(), {}};
}

}  // namespace ompc::taskbench
