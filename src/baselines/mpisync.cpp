// Synchronous data-parallel MPI Task Bench (the paper's baseline).
//
// The classic structure the paper contrasts OMPC against: every rank owns
// a contiguous block of columns, all ranks run the same loop, and each
// timestep is a communication round — irecv the remote dependencies, isend
// the locally produced values consumers need, waitall, compute. Minimal
// per-task overhead, perfectly tailored communication; this is why §6.2
// reports MPI 1.4x-2.9x ahead of every task runtime.
#include <map>
#include <vector>

#include "common/check.hpp"
#include "common/time.hpp"
#include "minimpi/mpi.hpp"
#include "taskbench/kernel.hpp"
#include "taskbench/runners.hpp"

namespace ompc::taskbench {

namespace {

/// Block ownership: column -> rank (ceil-sized contiguous blocks).
struct BlockMap {
  int width;
  int ranks;
  int block;

  BlockMap(int w, int r) : width(w), ranks(r), block((w + r - 1) / r) {}

  int owner(int col) const { return col / block; }
  int lo(int rank) const { return std::min(rank * block, width); }
  int hi(int rank) const { return std::min((rank + 1) * block, width); }
};

/// Tag encoding: one tag per (step, column) so matching can never confuse
/// rounds; bounded by the user tag space (checked).
mpi::Tag tag_of(int t, int col, int width) {
  const auto tag = static_cast<mpi::Tag>(t) * width + col;
  OMPC_CHECK_MSG(tag <= mpi::kMaxUserTag, "graph too large for tag space");
  return tag;
}

}  // namespace

RunResult run_mpisync(const TaskBenchSpec& spec, int nodes,
                      const mpi::NetworkModel& net) {
  OMPC_CHECK(nodes >= 1);
  const std::size_t out_bytes = std::max<std::size_t>(16, spec.output_bytes);

  double wall_s = 0.0;
  std::uint64_t checksum = 0;
  std::int64_t messages = 0;

  mpi::UniverseOptions uopts;
  uopts.ranks = nodes;
  uopts.network = net;
  mpi::Universe universe(uopts);
  universe.run([&](mpi::RankContext& ctx) {
    const mpi::Comm comm = ctx.world();
    const int me = comm.rank();
    const BlockMap blocks(spec.width, nodes);
    const int lo = blocks.lo(me);
    const int hi = blocks.hi(me);

    auto col_buf = [&](std::vector<Bytes>& row, int col) -> Bytes& {
      return row[static_cast<std::size_t>(col - lo)];
    };
    std::vector<Bytes> prev(static_cast<std::size_t>(hi - lo),
                            Bytes(out_bytes));
    std::vector<Bytes> cur(static_cast<std::size_t>(hi - lo),
                           Bytes(out_bytes));

    comm.barrier();
    const Stopwatch timer;

    for (int t = 0; t < spec.steps; ++t) {
      // Ghost values this rank must receive: the t-1 outputs of remote
      // columns appearing in any owned point's dependence list.
      std::map<int, Bytes> ghosts;
      std::vector<mpi::Request> reqs;
      if (t > 0) {
        for (int i = lo; i < hi; ++i) {
          for (int j : dependencies(spec, t, i)) {
            if (blocks.owner(j) != me && !ghosts.contains(j))
              ghosts.emplace(j, Bytes(out_bytes));
          }
        }
        for (auto& [j, buf] : ghosts) {
          reqs.push_back(comm.irecv(buf.data(), buf.size(), blocks.owner(j),
                                    tag_of(t - 1, j, spec.width)));
        }
        // Symmetric sends: owned t-1 outputs consumed remotely (one
        // message per (column, destination rank) pair).
        for (int j = lo; j < hi; ++j) {
          std::vector<bool> sent(static_cast<std::size_t>(nodes), false);
          for (int c : consumers(spec, t - 1, j)) {
            const int dst = blocks.owner(c);
            if (dst == me || sent[static_cast<std::size_t>(dst)]) continue;
            sent[static_cast<std::size_t>(dst)] = true;
            const Bytes& payload = col_buf(prev, j);
            reqs.push_back(comm.isend(payload.data(), payload.size(), dst,
                                      tag_of(t - 1, j, spec.width)));
          }
        }
        mpi::wait_all(reqs);
      }

      for (int i = lo; i < hi; ++i) {
        std::vector<std::uint64_t> ins;
        for (int j : dependencies(spec, t, i)) {
          ins.push_back(read_digest(blocks.owner(j) == me
                                        ? col_buf(prev, j)
                                        : ghosts.at(j)));
        }
        point_compute(spec, t, i, ins, col_buf(cur, i));
      }
      std::swap(prev, cur);
    }

    comm.barrier();
    if (me == 0) wall_s = timer.elapsed_s();

    std::uint64_t partial = 0;
    for (int i = lo; i < hi; ++i)
      partial += read_digest(col_buf(prev, i)) * 0x9e3779b97f4a7c15ull;
    const std::uint64_t total = comm.allreduce_sum(partial);
    if (me == 0) checksum = total;
  });

  messages = universe.messages_sent();
  return RunResult{wall_s, checksum, messages, {}};
}

}  // namespace ompc::taskbench
