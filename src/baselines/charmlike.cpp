// Charm++-like Task Bench runner.
//
// Captures the architectural signature of Charm++ that the paper contrasts
// with OMPC (§5: "Chares and over-decomposition ... computation is bounded
// to the data itself"; §6.2: its performance collapses when communication
// dominates):
//  - over-decomposition: one chare per Task Bench column, block-mapped to
//    ranks (the chare array holds `width` chares on `nodes` ranks);
//  - message-driven execution: a chare fires its step t once a message has
//    arrived from every t-1 dependence; each dependence edge between
//    distinct chares is ONE wire message — no halo batching, which is
//    exactly why low CCR hurts (many payload-sized messages per step);
//  - a chare's own previous output is chare state (no message), and
//    messages between co-located chares use the local queue (our self-send
//    path bypasses the simulated NIC, as in Charm++);
//  - no head node: every rank schedules its own chares.
#include <map>
#include <vector>

#include "common/check.hpp"
#include "common/serialize.hpp"
#include "common/time.hpp"
#include "minimpi/mpi.hpp"
#include "taskbench/kernel.hpp"
#include "taskbench/runners.hpp"

namespace ompc::taskbench {

namespace {

constexpr mpi::Tag kChareTag = 11;

/// Charm++ parameter-marshalled entry methods copy the payload on the
/// sending PE (pack) and again on delivery through the scheduler queue
/// (unpack), and both copies serialize with that PE's compute. MPI writes
/// into posted receive buffers instead. On the dilated time base every
/// time quantity scales together, so the marshalling copies are modelled
/// at twice the wire bandwidth (a memory copy is faster than the NIC, but
/// not free); this is the architectural term behind Charm++'s collapse
/// when communication dominates (paper §6.2, Fig. 6 at CCR 0.5). See
/// DESIGN.md's substitution table.
///
/// Rate calibration: on the paper's EDR InfiniBand (~12.5 GB/s) a single
/// core's memcpy bandwidth (~10 GB/s) is roughly the wire rate, so each
/// marshalling copy costs about one wire-time of PE time.
constexpr double kMarshalRateVsWire = 1.0;

void marshal_cost(std::size_t bytes, const mpi::NetworkModel& net) {
  if (net.bandwidth_Bps <= 0.0) return;  // instant network: tests
  precise_sleep_ns(static_cast<std::int64_t>(
      static_cast<double>(bytes) /
      (net.bandwidth_Bps * kMarshalRateVsWire) * 1e9));
}

struct BlockMap {
  int width;
  int ranks;
  int block;
  BlockMap(int w, int r) : width(w), ranks(r), block((w + r - 1) / r) {}
  int owner(int col) const { return col / block; }
  int lo(int rank) const { return std::min(rank * block, width); }
  int hi(int rank) const { return std::min((rank + 1) * block, width); }
};

struct ChareMessage {
  int dest_col = 0;
  int src_col = 0;
  int t_prod = 0;  ///< producing step; consumed by dest at t_prod + 1
};

}  // namespace

RunResult run_charmlike(const TaskBenchSpec& spec, int nodes,
                        const mpi::NetworkModel& net) {
  OMPC_CHECK(nodes >= 1);
  const std::size_t out_bytes = std::max<std::size_t>(16, spec.output_bytes);

  double wall_s = 0.0;
  std::uint64_t checksum = 0;

  mpi::UniverseOptions uopts;
  uopts.ranks = nodes;
  uopts.network = net;
  mpi::Universe universe(uopts);
  universe.run([&](mpi::RankContext& ctx) {
    const mpi::Comm comm = ctx.world();
    const int me = comm.rank();
    const BlockMap blocks(spec.width, nodes);
    const int lo = blocks.lo(me);
    const int hi = blocks.hi(me);
    const int owned = hi - lo;

    // Chare state: the step each chare will fire next and the digest of
    // its most recent output (its own history is chare state, not a
    // message).
    std::vector<int> next_step(static_cast<std::size_t>(std::max(owned, 1)), 0);
    std::vector<std::uint64_t> own_digest(
        static_cast<std::size_t>(std::max(owned, 1)), 0);
    // Mailbox per (chare, step): digests from other chares.
    std::map<std::pair<int, int>, std::map<int, std::uint64_t>> pending;

    int completed = 0;
    const int total = spec.steps * owned;

    Bytes scratch(out_bytes);

    // Fires chare `c` for as many consecutive steps as its inputs allow.
    auto try_fire = [&](int c) {
      const std::size_t ci = static_cast<std::size_t>(c - lo);
      for (;;) {
        const int t = next_step[ci];
        if (t >= spec.steps) return;
        const auto deps = dependencies(spec, t, c);
        auto it = pending.find({c, t});
        // All non-self dependencies must have arrived.
        bool ok = true;
        for (int j : deps) {
          if (j == c) continue;
          if (it == pending.end() || !it->second.contains(j)) {
            ok = false;
            break;
          }
        }
        if (!ok) return;

        std::vector<std::uint64_t> ins;
        ins.reserve(deps.size());
        for (int j : deps)
          ins.push_back(j == c ? own_digest[ci] : it->second.at(j));
        point_compute(spec, t, c, ins, scratch);
        own_digest[ci] = read_digest(scratch);
        next_step[ci] = t + 1;
        ++completed;
        if (it != pending.end()) pending.erase(it);

        // One message per consumer edge (over-decomposition: no batching),
        // each paying the pack copy on this PE.
        if (t + 1 < spec.steps) {
          for (int cc : consumers(spec, t, c)) {
            if (cc == c) continue;  // own history is chare state
            marshal_cost(scratch.size(), net);
            ArchiveWriter w;
            w.put(ChareMessage{cc, c, t});
            w.put_raw(scratch.data(), scratch.size());
            comm.isend_bytes(w.take(), blocks.owner(cc), kChareTag);
          }
        }
      }
    };

    comm.barrier();
    const Stopwatch timer;

    // Seed: every chare can fire step 0 (and trivial chains run through).
    for (int c = lo; c < hi; ++c) try_fire(c);

    // Message-driven scheduler loop: each delivery pays the unpack copy on
    // this PE before its entry method can run.
    while (completed < total) {
      const Bytes msg = comm.recv_bytes(mpi::kAnySource, kChareTag);
      ArchiveReader r(msg);
      const auto hdr = r.get<ChareMessage>();
      Bytes payload(r.remaining());
      r.get_raw(payload.data(), payload.size());
      marshal_cost(payload.size(), net);
      OMPC_CHECK(blocks.owner(hdr.dest_col) == me);
      pending[{hdr.dest_col, hdr.t_prod + 1}][hdr.src_col] =
          read_digest(payload);
      try_fire(hdr.dest_col);
    }

    comm.barrier();
    if (me == 0) wall_s = timer.elapsed_s();

    std::uint64_t partial = 0;
    for (int c = lo; c < hi; ++c)
      partial += own_digest[static_cast<std::size_t>(c - lo)] *
                 0x9e3779b97f4a7c15ull;
    const std::uint64_t total_sum = comm.allreduce_sum(partial);
    if (me == 0) checksum = total_sum;
  });

  return RunResult{wall_s, checksum, universe.messages_sent(), {}};
}

}  // namespace ompc::taskbench
