// Name -> runner dispatch used by the CLI example and the figure benches.
#include "common/check.hpp"
#include "taskbench/runners.hpp"

namespace ompc::taskbench {

RunResult run_named(const std::string& runtime, const TaskBenchSpec& spec,
                    int nodes, const mpi::NetworkModel& net) {
  if (runtime == "ompc") {
    core::ClusterOptions opts;
    opts.num_workers = nodes;
    opts.network = net;
    return run_ompc(spec, opts);
  }
  if (runtime == "mpi") return run_mpisync(spec, nodes, net);
  if (runtime == "starpu") return run_starpulike(spec, nodes, net);
  if (runtime == "charm") return run_charmlike(spec, nodes, net);
  if (runtime == "seq") return run_sequential(spec);
  OMPC_CHECK_MSG(false, "unknown runtime '" << runtime
                                            << "' (ompc|mpi|starpu|charm|seq)");
}

}  // namespace ompc::taskbench
