// Deterministic, allocation-free randomness and hashing.
//
// Benchmarks and Task Bench validation need reproducible streams that are
// identical across runtimes (the checksum of a task's output must not depend
// on which runner produced it), so everything here is seed-driven and
// stateless across modules.
#pragma once

#include <cstdint>

namespace ompc {

/// xorshift64* — tiny, fast, good-enough PRNG for workload generation.
class XorShift64 {
 public:
  explicit XorShift64(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
      : state_(seed == 0 ? 0x9e3779b97f4a7c15ull : seed) {}

  std::uint64_t next() noexcept {
    std::uint64_t x = state_;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    state_ = x;
    return x * 0x2545f4914f6cdd1dull;
  }

  /// Uniform in [0, bound).
  std::uint64_t next_below(std::uint64_t bound) noexcept {
    return bound == 0 ? 0 : next() % bound;
  }

  /// Uniform double in [0, 1).
  double next_double() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

 private:
  std::uint64_t state_;
};

/// FNV-1a 64-bit — used for Task Bench output checksums.
inline std::uint64_t fnv1a(const void* data, std::size_t n,
                           std::uint64_t seed = 0xcbf29ce484222325ull) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

/// Order-independent combiner for merging per-task checksums.
inline std::uint64_t hash_mix(std::uint64_t a, std::uint64_t b) {
  return a + (b * 0x9e3779b97f4a7c15ull);
}

}  // namespace ompc
