// Fixed-width ASCII table printer for the figure-reproduction benches.
//
// Each bench prints the same rows/series the paper's figure plots; Table
// keeps columns aligned so the output diffs cleanly across runs and can be
// pasted into EXPERIMENTS.md.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace ompc {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Adds one row; missing cells render empty, extra cells widen the table.
  void add_row(std::vector<std::string> cells);

  /// Formats a double with the given precision (helper for row building).
  static std::string num(double v, int precision = 3);

  void print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ompc
