// Thread-safe leveled logger with a per-thread rank label.
//
// The OMPC runtime is a distributed system in one process: log lines
// interleave from the head node, worker gate threads and event handlers.
// Each line carries [level][rank:thread-role] so traces stay readable.
// The level is read from OMPC_LOG_LEVEL (error|warn|info|debug|trace) once
// at startup and may be overridden programmatically for tests.
#pragma once

#include <atomic>
#include <sstream>
#include <string>

namespace ompc::log {

enum class Level : int { Off = 0, Error, Warn, Info, Debug, Trace };

/// Global log level. Defaults from the OMPC_LOG_LEVEL environment variable
/// (off when unset) so production runs pay only an atomic load per call site.
Level level() noexcept;
void set_level(Level lvl) noexcept;

/// Labels the calling thread in subsequent log lines, e.g. "w3/gate".
/// Rank threads set this when they start; plain threads show as "-".
void set_thread_label(std::string label);
const std::string& thread_label() noexcept;

namespace detail {
void emit(Level lvl, const std::string& text);
}

}  // namespace ompc::log

#define OMPC_LOG_AT(lvl, ...)                                      \
  do {                                                             \
    if (static_cast<int>(::ompc::log::level()) >=                  \
        static_cast<int>(lvl)) {                                   \
      std::ostringstream os_;                                      \
      os_ << __VA_ARGS__;                                          \
      ::ompc::log::detail::emit(lvl, os_.str());                   \
    }                                                              \
  } while (0)

#define OMPC_LOG_ERROR(...) OMPC_LOG_AT(::ompc::log::Level::Error, __VA_ARGS__)
#define OMPC_LOG_WARN(...) OMPC_LOG_AT(::ompc::log::Level::Warn, __VA_ARGS__)
#define OMPC_LOG_INFO(...) OMPC_LOG_AT(::ompc::log::Level::Info, __VA_ARGS__)
#define OMPC_LOG_DEBUG(...) OMPC_LOG_AT(::ompc::log::Level::Debug, __VA_ARGS__)
#define OMPC_LOG_TRACE(...) OMPC_LOG_AT(::ompc::log::Level::Trace, __VA_ARGS__)
