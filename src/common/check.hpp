// Invariant checking macros used across the OMPC runtime.
//
// OMPC_CHECK is active in all build types: runtime invariants in a
// message-passing runtime are cheap relative to communication and failing
// fast with a location beats corrupting a distributed state machine.
// OMPC_ASSERT compiles out in NDEBUG builds and is meant for hot paths.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace ompc {

/// Thrown when a runtime invariant is violated (OMPC_CHECK failure).
class CheckError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "OMPC_CHECK failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}
}  // namespace detail

}  // namespace ompc

#define OMPC_CHECK(expr)                                                \
  do {                                                                  \
    if (!(expr))                                                        \
      ::ompc::detail::check_failed(#expr, __FILE__, __LINE__, "");      \
  } while (0)

#define OMPC_CHECK_MSG(expr, msg)                                       \
  do {                                                                  \
    if (!(expr)) {                                                      \
      std::ostringstream os_;                                           \
      os_ << msg;                                                       \
      ::ompc::detail::check_failed(#expr, __FILE__, __LINE__, os_.str()); \
    }                                                                   \
  } while (0)

#ifdef NDEBUG
#define OMPC_ASSERT(expr) ((void)0)
#else
#define OMPC_ASSERT(expr) OMPC_CHECK(expr)
#endif
