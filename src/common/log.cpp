#include "common/log.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace ompc::log {

namespace {

Level parse_level(const char* s) {
  if (s == nullptr) return Level::Off;
  if (std::strcmp(s, "error") == 0) return Level::Error;
  if (std::strcmp(s, "warn") == 0) return Level::Warn;
  if (std::strcmp(s, "info") == 0) return Level::Info;
  if (std::strcmp(s, "debug") == 0) return Level::Debug;
  if (std::strcmp(s, "trace") == 0) return Level::Trace;
  return Level::Off;
}

std::atomic<Level> g_level{parse_level(std::getenv("OMPC_LOG_LEVEL"))};
std::mutex g_emit_mutex;

const char* level_name(Level lvl) {
  switch (lvl) {
    case Level::Error: return "E";
    case Level::Warn: return "W";
    case Level::Info: return "I";
    case Level::Debug: return "D";
    case Level::Trace: return "T";
    default: return "?";
  }
}

thread_local std::string t_label = "-";

}  // namespace

Level level() noexcept { return g_level.load(std::memory_order_relaxed); }
void set_level(Level lvl) noexcept {
  g_level.store(lvl, std::memory_order_relaxed);
}

void set_thread_label(std::string label) { t_label = std::move(label); }
const std::string& thread_label() noexcept { return t_label; }

namespace detail {
void emit(Level lvl, const std::string& text) {
  // One fprintf under a mutex keeps lines atomic without a background
  // logging thread; logging is off by default so this never contends in
  // benchmark runs.
  std::lock_guard<std::mutex> lock(g_emit_mutex);
  std::fprintf(stderr, "[%s][%s] %s\n", level_name(lvl), t_label.c_str(),
               text.c_str());
}
}  // namespace detail

}  // namespace ompc::log
