#include "common/stats.hpp"

// Header-only; TU anchors the archive member.
