#include "common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace ompc {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

void Table::print(std::ostream& os) const {
  std::size_t ncols = headers_.size();
  for (const auto& r : rows_) ncols = std::max(ncols, r.size());

  std::vector<std::size_t> width(ncols, 0);
  auto widen = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i)
      width[i] = std::max(width[i], cells[i].size());
  };
  widen(headers_);
  for (const auto& r : rows_) widen(r);

  auto line = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t i = 0; i < ncols; ++i) {
      const std::string& c = i < cells.size() ? cells[i] : std::string{};
      os << ' ' << c << std::string(width[i] - c.size(), ' ') << " |";
    }
    os << '\n';
  };

  line(headers_);
  os << '|';
  for (std::size_t i = 0; i < ncols; ++i)
    os << std::string(width[i] + 2, '-') << '|';
  os << '\n';
  for (const auto& r : rows_) line(r);
}

}  // namespace ompc
