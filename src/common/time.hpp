// Timing utilities: a monotonic clock alias, a scope timer, and the precise
// sleep used by time-dilated task kernels.
//
// Time dilation (DESIGN.md §2): on the single-core CI machine the paper's
// multi-second compute kernels are replaced by calibrated waits, so worker
// occupancy and runtime-overhead *ratios* are preserved while the CPU stays
// available to the runtime itself. precise_sleep() therefore needs to be
// accurate to tens of microseconds: it sleeps in bulk and spins the last
// stretch.
#pragma once

#include <chrono>
#include <cstdint>

namespace ompc {

using Clock = std::chrono::steady_clock;
using TimePoint = Clock::time_point;
using Duration = Clock::duration;

/// Nanoseconds since an arbitrary (per-process) epoch.
inline std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             Clock::now().time_since_epoch())
      .count();
}

inline double ns_to_ms(std::int64_t ns) { return static_cast<double>(ns) / 1e6; }
inline double ns_to_s(std::int64_t ns) { return static_cast<double>(ns) / 1e9; }

/// Sleeps for `ns` nanoseconds with ~10 µs accuracy: OS sleep for the bulk,
/// then a spin-wait for the tail. Returns immediately for ns <= 0.
void precise_sleep_ns(std::int64_t ns);

inline void precise_sleep(Duration d) {
  precise_sleep_ns(
      std::chrono::duration_cast<std::chrono::nanoseconds>(d).count());
}

/// Measures wall time between construction and elapsed_ns()/elapsed_ms().
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  std::int64_t elapsed_ns() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }
  double elapsed_ms() const { return ns_to_ms(elapsed_ns()); }
  double elapsed_s() const { return ns_to_s(elapsed_ns()); }

 private:
  TimePoint start_;
};

}  // namespace ompc
