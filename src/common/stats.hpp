// Streaming statistics used by the benchmark harness (mean/stddev over
// repeated runs, matching the paper's "average and dispersion statistics
// from multiple executions" collected by OMPC Bench).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

namespace ompc {

/// Welford accumulator: numerically stable mean/variance, plus min/max.
class RunningStats {
 public:
  void add(double x) noexcept {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  std::int64_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ > 0 ? mean_ : 0.0; }
  double variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const noexcept { return std::sqrt(variance()); }
  double min() const noexcept {
    return n_ > 0 ? min_ : std::numeric_limits<double>::quiet_NaN();
  }
  double max() const noexcept {
    return n_ > 0 ? max_ : std::numeric_limits<double>::quiet_NaN();
  }

 private:
  std::int64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Median/percentile helper over a stored sample (small run counts only).
class SampleStats {
 public:
  void add(double x) { samples_.push_back(x); }

  std::size_t count() const noexcept { return samples_.size(); }

  double percentile(double p) const {
    if (samples_.empty()) return std::numeric_limits<double>::quiet_NaN();
    std::vector<double> s = samples_;
    std::sort(s.begin(), s.end());
    const double idx = p * static_cast<double>(s.size() - 1);
    const auto lo = static_cast<std::size_t>(idx);
    const auto hi = std::min(lo + 1, s.size() - 1);
    const double frac = idx - static_cast<double>(lo);
    return s[lo] * (1.0 - frac) + s[hi] * frac;
  }

  double median() const { return percentile(0.5); }

  RunningStats summary() const {
    RunningStats r;
    for (double x : samples_) r.add(x);
    return r;
  }

 private:
  std::vector<double> samples_;
};

}  // namespace ompc
