// Byte-oriented serialization for event payloads and kernel arguments.
//
// Everything that crosses a minimpi message boundary is flattened through
// ArchiveWriter/ArchiveReader: trivially-copyable values, strings, vectors
// and nested blobs. The format is native-endian (messages never leave the
// process) but the reader bounds-checks every read so a malformed payload
// fails loudly instead of corrupting a remote rank.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

#include "common/check.hpp"

namespace ompc {

using Bytes = std::vector<std::byte>;

/// Appends values to a growing byte buffer.
class ArchiveWriter {
 public:
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void put(const T& value) {
    const auto* p = reinterpret_cast<const std::byte*>(&value);
    buf_.insert(buf_.end(), p, p + sizeof(T));
  }

  void put_string(const std::string& s) {
    put<std::uint64_t>(s.size());
    const auto* p = reinterpret_cast<const std::byte*>(s.data());
    buf_.insert(buf_.end(), p, p + s.size());
  }

  void put_blob(std::span<const std::byte> blob) {
    put<std::uint64_t>(blob.size());
    buf_.insert(buf_.end(), blob.begin(), blob.end());
  }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void put_vector(const std::vector<T>& v) {
    put<std::uint64_t>(v.size());
    const auto* p = reinterpret_cast<const std::byte*>(v.data());
    buf_.insert(buf_.end(), p, p + v.size() * sizeof(T));
  }

  /// Appends raw bytes with no length prefix (caller knows the size).
  void put_raw(const void* data, std::size_t n) {
    const auto* p = static_cast<const std::byte*>(data);
    buf_.insert(buf_.end(), p, p + n);
  }

  std::size_t size() const noexcept { return buf_.size(); }
  const Bytes& bytes() const noexcept { return buf_; }
  Bytes take() { return std::move(buf_); }

 private:
  Bytes buf_;
};

/// Reads values back in the order they were written; every read is
/// bounds-checked against the underlying span.
class ArchiveReader {
 public:
  explicit ArchiveReader(std::span<const std::byte> data) : data_(data) {}

  /// A reader refers to the buffer, it does not own it: constructing one
  /// over a temporary would dangle by the next statement.
  explicit ArchiveReader(Bytes&&) = delete;

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  T get() {
    T out;
    OMPC_CHECK_MSG(pos_ + sizeof(T) <= data_.size(),
                   "archive underflow reading " << sizeof(T) << " bytes at "
                                                << pos_ << '/' << data_.size());
    std::memcpy(&out, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return out;
  }

  std::string get_string() {
    const auto n = get<std::uint64_t>();
    OMPC_CHECK(pos_ + n <= data_.size());
    std::string s(reinterpret_cast<const char*>(data_.data() + pos_), n);
    pos_ += n;
    return s;
  }

  Bytes get_blob() {
    const auto n = get<std::uint64_t>();
    OMPC_CHECK(pos_ + n <= data_.size());
    Bytes b(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
            data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += n;
    return b;
  }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  std::vector<T> get_vector() {
    const auto n = get<std::uint64_t>();
    OMPC_CHECK(pos_ + n * sizeof(T) <= data_.size());
    std::vector<T> v(n);
    std::memcpy(v.data(), data_.data() + pos_, n * sizeof(T));
    pos_ += n * sizeof(T);
    return v;
  }

  void get_raw(void* out, std::size_t n) {
    OMPC_CHECK(pos_ + n <= data_.size());
    std::memcpy(out, data_.data() + pos_, n);
    pos_ += n;
  }

  std::size_t remaining() const noexcept { return data_.size() - pos_; }
  bool exhausted() const noexcept { return pos_ == data_.size(); }

 private:
  std::span<const std::byte> data_;
  std::size_t pos_ = 0;
};

}  // namespace ompc
