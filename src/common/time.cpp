#include "common/time.hpp"

#include <thread>

namespace ompc {

void precise_sleep_ns(std::int64_t ns) {
  if (ns <= 0) return;
  const TimePoint deadline = Clock::now() + std::chrono::nanoseconds(ns);

  // Leave a short spin tail to compensate OS wakeup granularity. It must
  // stay small: on the single-core simulated cluster many ranks sleep
  // concurrently and every spinning tail steals CPU from the runtime
  // threads that are being measured.
  constexpr std::int64_t kSpinTailNs = 30'000;
  if (ns > kSpinTailNs) {
    std::this_thread::sleep_for(std::chrono::nanoseconds(ns - kSpinTailNs));
  }
  while (Clock::now() < deadline) {
    // Busy tail. On the 1-core target this is short enough (≤100 µs) not to
    // starve the runtime threads.
  }
}

}  // namespace ompc
