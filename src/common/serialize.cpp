#include "common/serialize.hpp"

// Header-only in practice; this TU anchors the module in the archive and
// gives the templates one home for explicit instantiation if ever needed.
