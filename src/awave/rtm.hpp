// Reverse Time Migration (Baysal et al. 1983): the imaging algorithm
// behind Awave (paper §6.2).
//
// Per shot: (1) forward-propagate the source wavefield, storing decimated
// snapshots; (2) time-reverse the recorded traces and propagate them as
// sources from the receiver positions (the adjoint field); (3) correlate
// the two fields at matching times — reflectors appear where down-going
// and up-going energy coincide. Shots are independent; their images stack.
#pragma once

#include "awave/fd.hpp"

namespace ompc::awave {

/// Migrated image, same layout as the velocity grid.
using Image = std::vector<float>;

/// Migrates one shot (forward + adjoint + cross-correlation). The
/// `observed` seismogram is what the field crew recorded; in this
/// synthetic pipeline it comes from model_shot() on the same model.
Image rtm_shot(const VelocityModel& model, const FdParams& params,
               const Shot& shot, const Receivers& recv,
               const Seismogram& observed, ParallelFor pfor = {});

/// Full single-shot pipeline used by the experiments: forward-model the
/// "observed" data, then migrate it. One call == one Awave task.
Image rtm_shot_pipeline(const VelocityModel& model, const FdParams& params,
                        const Shot& shot, const Receivers& recv,
                        ParallelFor pfor = {});

/// Stacks `partial` into `total` (element-wise accumulate).
void stack_image(Image& total, const Image& partial);

/// Evenly spread `count` surface shots across the model width.
std::vector<Shot> spread_shots(const VelocityModel& model, int count,
                               int sz = 6);

/// RMS amplitude of an image (test metric).
double image_rms(const Image& img);

}  // namespace ompc::awave
