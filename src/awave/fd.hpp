// 2D acoustic finite-difference engine: 2nd-order time, 8th-order space,
// sponge absorbing boundaries — the numerical core of Awave (paper §6.2:
// "numerically solving the acoustic wave equation using the finite
// differences method").
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "awave/model.hpp"
#include "awave/wavelet.hpp"

namespace ompc::awave {

/// Wavefield: same layout as VelocityModel::v (row-major, z-major rows).
using Field = std::vector<float>;

/// Optional chunked-loop executor for the second level of parallelism
/// inside a worker node (wired to KernelContext::parallel_for when running
/// under OMPC; serial by default).
using ParallelFor = std::function<void(
    std::int64_t, std::int64_t, std::int64_t,
    const std::function<void(std::int64_t, std::int64_t)>&)>;

struct FdParams {
  float dt = 0.0f;        ///< time step (s); 0 = derive from stability bound
  int nt = 500;           ///< time steps
  float f_peak = 15.0f;   ///< Ricker peak frequency (Hz)
  int sponge = 20;        ///< absorbing boundary width (cells)
  float sponge_decay = 0.0035f;
  int snapshot_stride = 4;  ///< RTM stores every k-th forward field
};

/// Largest stable dt for the model under the 8th-order CFL bound,
/// multiplied by `safety`.
float stable_dt(const VelocityModel& m, float safety = 0.7f);

/// One shot's acquisition geometry: a surface source and a line of
/// receivers at depth `rz`.
struct Shot {
  int sx = 0;  ///< source x (grid index)
  int sz = 6;  ///< source z (below the 4-cell FD halo)
};

/// Receiver line: every `stride`-th column at depth rz.
struct Receivers {
  int rz = 6;  ///< below the 4-cell FD halo
  int stride = 1;
  int count(int nx) const { return (nx + stride - 1) / stride; }
};

/// nt x nrec recorded pressure traces.
struct Seismogram {
  int nt = 0;
  int nrec = 0;
  std::vector<float> data;  ///< data[t * nrec + r]

  float& at(int t, int r) {
    return data[static_cast<std::size_t>(t) * static_cast<std::size_t>(nrec) +
                static_cast<std::size_t>(r)];
  }
  float at(int t, int r) const {
    return data[static_cast<std::size_t>(t) * static_cast<std::size_t>(nrec) +
                static_cast<std::size_t>(r)];
  }
};

/// One injected pressure sample (multi-source steps drive the adjoint
/// propagation of RTM, where every receiver re-emits its trace).
struct SourceSample {
  int x = 0;
  int z = 0;
  float amp = 0.0f;
};

/// Time-stepping engine over a velocity model. Owns the ping-pong pressure
/// fields; step() advances one dt with an injected source sample.
class Propagator {
 public:
  Propagator(const VelocityModel& model, const FdParams& params,
             ParallelFor pfor = {});

  /// Advances one step; `source_amp` is added at (sx, sz).
  void step(int sx, int sz, float source_amp);

  /// Advances one step injecting several samples (adjoint propagation).
  void step_sources(std::span<const SourceSample> sources);

  const Field& current() const noexcept { return *cur_; }
  Field& current() noexcept { return *cur_; }

  void reset();

  float dt() const noexcept { return dt_; }

 private:
  void apply_sponge(Field& f) const;

  const VelocityModel& model_;
  FdParams params_;
  ParallelFor pfor_;
  float dt_;
  Field a_, b_;
  Field* cur_;   ///< p(t)
  Field* prev_;  ///< p(t-dt); becomes p(t+dt) after step
  std::vector<float> vdt2_;    ///< (v*dt/dx)^2 per cell
  std::vector<float> sponge_;  ///< per-cell damping factor
};

/// Forward-models a shot: propagates the source and records traces at the
/// receivers. When `snapshots` is non-null, stores every
/// params.snapshot_stride-th wavefield (for the RTM imaging condition).
Seismogram model_shot(const VelocityModel& model, const FdParams& params,
                      const Shot& shot, const Receivers& recv,
                      std::vector<Field>* snapshots = nullptr,
                      ParallelFor pfor = {});

}  // namespace ompc::awave
