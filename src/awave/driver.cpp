#include "awave/driver.hpp"

#include <cstring>

#include "common/time.hpp"
#include "offload/kernel_registry.hpp"

namespace ompc::awave {

namespace {

/// buffers[0] = velocity grid (in), buffers[1] = partial image (inout).
const offload::KernelId kShotKernel =
    offload::KernelRegistry::instance().register_kernel(
        "awave_shot", [](offload::KernelContext& ctx) {
          auto r = ctx.scalars();
          VelocityModel model;
          model.nx = r.get<int>();
          model.nz = r.get<int>();
          model.dx = r.get<float>();
          FdParams params;
          params.dt = r.get<float>();
          params.nt = r.get<int>();
          params.f_peak = r.get<float>();
          params.sponge = r.get<int>();
          params.sponge_decay = r.get<float>();
          params.snapshot_stride = r.get<int>();
          Shot shot;
          shot.sx = r.get<int>();
          shot.sz = r.get<int>();
          Receivers recv;
          recv.rz = r.get<int>();
          recv.stride = r.get<int>();
          const auto pad_s = r.get<double>();

          const std::size_t n = static_cast<std::size_t>(model.nx) *
                                static_cast<std::size_t>(model.nz);
          model.v.resize(n);
          std::memcpy(model.v.data(), ctx.buffer<float>(0),
                      n * sizeof(float));

          // Second level of parallelism: FD rows over the worker's pool.
          ParallelFor pfor = [&ctx](std::int64_t b, std::int64_t e,
                                    std::int64_t g, const auto& body) {
            ctx.parallel_for(b, e, g, body);
          };
          const Image img =
              rtm_shot_pipeline(model, params, shot, recv, pfor);
          std::memcpy(ctx.buffer<float>(1), img.data(),
                      img.size() * sizeof(float));
          if (pad_s > 0.0)
            precise_sleep_ns(static_cast<std::int64_t>(pad_s * 1e9));
        });

core::Args shot_args(const AwaveConfig& cfg, const Shot& shot,
                     const void* vel, const void* img) {
  core::Args a;
  a.buf(vel).buf(img);
  a.scalar(cfg.model.nx)
      .scalar(cfg.model.nz)
      .scalar(cfg.model.dx)
      .scalar(cfg.params.dt)
      .scalar(cfg.params.nt)
      .scalar(cfg.params.f_peak)
      .scalar(cfg.params.sponge)
      .scalar(cfg.params.sponge_decay)
      .scalar(cfg.params.snapshot_stride)
      .scalar(shot.sx)
      .scalar(shot.sz)
      .scalar(cfg.recv.rz)
      .scalar(cfg.recv.stride)
      .scalar(cfg.pad_task_seconds);
  return a;
}

}  // namespace

AwaveResult migrate_serial(const AwaveConfig& config) {
  const Stopwatch timer;
  AwaveResult out;
  out.image.assign(config.model.v.size(), 0.0f);
  for (const Shot& shot : spread_shots(config.model, config.shots)) {
    const Image partial =
        rtm_shot_pipeline(config.model, config.params, shot, config.recv);
    stack_image(out.image, partial);
    if (config.pad_task_seconds > 0.0)
      precise_sleep_ns(
          static_cast<std::int64_t>(config.pad_task_seconds * 1e9));
  }
  out.wall_s = timer.elapsed_s();
  return out;
}

AwaveResult migrate_ompc(const AwaveConfig& config,
                         const core::ClusterOptions& opts) {
  const std::vector<Shot> shots = spread_shots(config.model, config.shots);
  const std::size_t n = config.model.v.size();

  // One partial-image host buffer per shot; the velocity model is a single
  // read-only buffer the Data Manager replicates on demand.
  std::vector<float> velocity = config.model.v;
  std::vector<Image> partials(static_cast<std::size_t>(config.shots),
                              Image(n, 0.0f));

  AwaveResult out;
  const Stopwatch timer;
  out.stats = core::launch(opts, [&](core::Runtime& rt) {
    rt.enter_data(velocity.data(), n * sizeof(float));
    for (int s = 0; s < config.shots; ++s) {
      Image& img = partials[static_cast<std::size_t>(s)];
      rt.enter_data(img.data(), n * sizeof(float));
      rt.target(
          {omp::in(velocity.data()), omp::inout(img.data())}, kShotKernel,
          shot_args(config, shots[static_cast<std::size_t>(s)],
                    velocity.data(), img.data()),
          /*cost_s=*/config.pad_task_seconds + 1e-3);
      rt.exit_data(img.data());
    }
    rt.exit_data(velocity.data(), /*copy=*/false);
  });
  out.wall_s = timer.elapsed_s();

  out.image.assign(n, 0.0f);
  for (const Image& p : partials) stack_image(out.image, p);
  return out;
}

}  // namespace ompc::awave
