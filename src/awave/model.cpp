#include "awave/model.hpp"

#include <algorithm>
#include <cmath>

namespace ompc::awave {

float VelocityModel::vmax() const {
  return *std::max_element(v.begin(), v.end());
}
float VelocityModel::vmin() const {
  return *std::min_element(v.begin(), v.end());
}

VelocityModel layered_model(int nx, int nz, float dx,
                            const std::vector<int>& interfaces,
                            const std::vector<float>& velocities) {
  OMPC_CHECK(velocities.size() == interfaces.size() + 1);
  VelocityModel m(nx, nz, dx, velocities.front());
  for (int z = 0; z < nz; ++z) {
    std::size_t layer = 0;
    while (layer < interfaces.size() && z >= interfaces[layer]) ++layer;
    for (int x = 0; x < nx; ++x) m.at(x, z) = velocities[layer];
  }
  return m;
}

VelocityModel sigsbee_like(int nx, int nz, float dx) {
  VelocityModel m(nx, nz, dx);
  const int water_bottom = nz / 8;
  for (int z = 0; z < nz; ++z) {
    for (int x = 0; x < nx; ++x) {
      if (z < water_bottom) {
        m.at(x, z) = 1492.0f;  // water
      } else {
        // Smooth compaction gradient beneath the water bottom.
        const float depth_frac =
            static_cast<float>(z - water_bottom) /
            static_cast<float>(nz - water_bottom);
        m.at(x, z) = 1650.0f + 1800.0f * depth_frac;
      }
    }
  }
  // Salt body: an irregular lens in the middle of the model. Boundary
  // modulated by sines so reflections are not axis-aligned (Sigsbee's salt
  // has a rough top).
  const float cx = static_cast<float>(nx) * 0.5f;
  const float cz = static_cast<float>(nz) * 0.55f;
  const float rx = static_cast<float>(nx) * 0.28f;
  const float rz = static_cast<float>(nz) * 0.22f;
  for (int z = 0; z < nz; ++z) {
    for (int x = 0; x < nx; ++x) {
      const float ux = (static_cast<float>(x) - cx) / rx;
      const float uz = (static_cast<float>(z) - cz) / rz;
      const float wobble =
          0.15f * std::sin(6.0f * static_cast<float>(x) /
                           static_cast<float>(nx) * 6.2831853f) +
          0.1f * std::sin(11.0f * static_cast<float>(z) /
                          static_cast<float>(nz) * 6.2831853f);
      if (ux * ux + uz * uz < 1.0f + wobble) m.at(x, z) = 4480.0f;  // salt
    }
  }
  return m;
}

VelocityModel marmousi_like(int nx, int nz, float dx) {
  VelocityModel m(nx, nz, dx);
  const int nlayers = 24;
  for (int z = 0; z < nz; ++z) {
    for (int x = 0; x < nx; ++x) {
      const float xf = static_cast<float>(x) / static_cast<float>(nx);
      // Dipping structure: layer index shifts with x (steep dips) and a
      // central growth fault offsets the right-hand block downwards.
      float zf = static_cast<float>(z) / static_cast<float>(nz);
      zf -= 0.25f * xf;                      // regional dip
      if (xf > 0.5f) zf -= 0.08f;            // fault throw
      zf += 0.04f * std::sin(8.0f * xf * 6.2831853f);  // folding
      int layer = static_cast<int>(std::floor(zf * nlayers));
      layer = std::clamp(layer, 0, nlayers - 1);
      // Alternating fast/slow thin beds over a compaction trend, with
      // lateral velocity variation inside each layer.
      const float trend =
          1500.0f + 2600.0f * static_cast<float>(layer) /
                        static_cast<float>(nlayers - 1);
      const float alternation = (layer % 2 == 0) ? 140.0f : -120.0f;
      const float lateral = 120.0f * std::sin((xf + 0.13f * layer) *
                                              6.2831853f * 1.7f);
      m.at(x, z) = trend + alternation + lateral;
    }
  }
  // Water layer on top (Marmousi2 extends the original with one).
  for (int z = 0; z < nz / 12; ++z)
    for (int x = 0; x < nx; ++x) m.at(x, z) = 1500.0f;
  return m;
}

}  // namespace ompc::awave
