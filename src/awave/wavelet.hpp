// Source signature: the Ricker wavelet standard in synthetic seismic
// modeling (second derivative of a Gaussian, parameterized by peak
// frequency).
#pragma once

#include <cmath>

namespace ompc::awave {

/// Ricker wavelet sample at time `t` (s) for peak frequency `f` (Hz),
/// delayed so the wavelet starts near zero amplitude at t = 0.
inline float ricker(float t, float f) {
  const float delay = 1.2f / f;
  const float arg = static_cast<float>(M_PI) * f * (t - delay);
  const float a2 = arg * arg;
  return (1.0f - 2.0f * a2) * std::exp(-a2);
}

}  // namespace ompc::awave
