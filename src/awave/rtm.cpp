#include "awave/rtm.hpp"

#include <cmath>

#include "common/check.hpp"

namespace ompc::awave {

Image rtm_shot(const VelocityModel& model, const FdParams& params,
               const Shot& shot, const Receivers& recv,
               const Seismogram& observed, ParallelFor pfor) {
  OMPC_CHECK(observed.nt == params.nt);
  const int stride = std::max(1, params.snapshot_stride);

  // (1) forward wavefield with snapshots.
  std::vector<Field> snaps;
  (void)model_shot(model, params, shot, recv, &snaps, pfor);

  // (2)+(3) adjoint propagation with on-the-fly imaging condition.
  Propagator adj(model, params, pfor);
  Image img(model.v.size(), 0.0f);
  std::vector<SourceSample> sources(
      static_cast<std::size_t>(observed.nrec));
  for (int t = params.nt - 1; t >= 0; --t) {
    for (int r = 0; r < observed.nrec; ++r) {
      sources[static_cast<std::size_t>(r)] = SourceSample{
          std::min(r * recv.stride, model.nx - 1), recv.rz, observed.at(t, r)};
    }
    adj.step_sources(sources);
    if (t % stride == 0) {
      const std::size_t snap_idx = static_cast<std::size_t>(t / stride);
      if (snap_idx < snaps.size()) {
        const Field& fwd = snaps[snap_idx];
        const Field& bwd = adj.current();
        for (std::size_t i = 0; i < img.size(); ++i)
          img[i] += fwd[i] * bwd[i];
      }
    }
  }
  return img;
}

Image rtm_shot_pipeline(const VelocityModel& model, const FdParams& params,
                        const Shot& shot, const Receivers& recv,
                        ParallelFor pfor) {
  const Seismogram observed =
      model_shot(model, params, shot, recv, nullptr, pfor);
  return rtm_shot(model, params, shot, recv, observed, pfor);
}

void stack_image(Image& total, const Image& partial) {
  OMPC_CHECK(total.size() == partial.size());
  for (std::size_t i = 0; i < total.size(); ++i) total[i] += partial[i];
}

std::vector<Shot> spread_shots(const VelocityModel& model, int count, int sz) {
  OMPC_CHECK(count >= 1);
  std::vector<Shot> shots;
  shots.reserve(static_cast<std::size_t>(count));
  for (int s = 0; s < count; ++s) {
    const int sx = static_cast<int>(
        (static_cast<double>(s) + 0.5) / count * model.nx);
    shots.push_back(Shot{std::clamp(sx, 0, model.nx - 1), sz});
  }
  return shots;
}

double image_rms(const Image& img) {
  double acc = 0.0;
  for (float v : img) acc += static_cast<double>(v) * v;
  return std::sqrt(acc / static_cast<double>(img.size()));
}

}  // namespace ompc::awave
