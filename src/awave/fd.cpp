#include "awave/fd.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace ompc::awave {

namespace {
// 8th-order central second-derivative coefficients (c0 applied once for
// each axis).
constexpr float kC0 = -205.0f / 72.0f;
constexpr float kC[4] = {8.0f / 5.0f, -1.0f / 5.0f, 8.0f / 315.0f,
                         -1.0f / 560.0f};
constexpr int kHalo = 4;

// Sum |coefficients| for the CFL bound of the 8th-order Laplacian.
float coeff_sum_abs() {
  float s = std::abs(kC0) * 2.0f;  // both axes contribute c0
  for (float c : kC) s += 4.0f * std::abs(c);
  return s;
}
}  // namespace

float stable_dt(const VelocityModel& m, float safety) {
  // dt <= dx / (vmax * sqrt(sum|c|)) for the explicit 2nd-order scheme.
  return safety * m.dx / (m.vmax() * std::sqrt(coeff_sum_abs()));
}

Propagator::Propagator(const VelocityModel& model, const FdParams& params,
                       ParallelFor pfor)
    : model_(model), params_(params), pfor_(std::move(pfor)) {
  dt_ = params_.dt > 0.0f ? params_.dt : stable_dt(model);
  OMPC_CHECK_MSG(dt_ <= stable_dt(model, 1.0f),
                 "dt " << dt_ << " violates the CFL stability bound");
  const std::size_t n = model.v.size();
  a_.assign(n, 0.0f);
  b_.assign(n, 0.0f);
  cur_ = &a_;
  prev_ = &b_;

  vdt2_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const float r = model.v[i] * dt_ / model.dx;
    vdt2_[i] = r * r;
  }

  // Exponential sponge taper on the side and bottom edges. The top stays
  // free (sources and receivers live just below the surface, as in a
  // marine acquisition; a top sponge would annihilate the direct wave).
  sponge_.assign(n, 1.0f);
  const int nx = model.nx;
  const int nz = model.nz;
  const int sw = params_.sponge;
  for (int z = 0; z < nz; ++z) {
    for (int x = 0; x < nx; ++x) {
      const int d = std::min({x, nx - 1 - x, nz - 1 - z});
      if (d < sw) {
        const float u = static_cast<float>(sw - d);
        sponge_[static_cast<std::size_t>(z) * nx + x] =
            std::exp(-params_.sponge_decay * u * u);
      }
    }
  }
}

void Propagator::reset() {
  std::fill(a_.begin(), a_.end(), 0.0f);
  std::fill(b_.begin(), b_.end(), 0.0f);
  cur_ = &a_;
  prev_ = &b_;
}

void Propagator::apply_sponge(Field& f) const {
  for (std::size_t i = 0; i < f.size(); ++i) f[i] *= sponge_[i];
}

void Propagator::step(int sx, int sz, float source_amp) {
  const SourceSample s{sx, sz, source_amp};
  step_sources(std::span<const SourceSample>(&s, 1));
}

void Propagator::step_sources(std::span<const SourceSample> sources) {
  const int nx = model_.nx;
  const int nz = model_.nz;
  Field& next = *prev_;  // overwritten in place: p(t+dt) = 2p - p(t-dt) + ...
  const Field& cur = *cur_;

  auto row_range = [&](std::int64_t z0, std::int64_t z1) {
    for (std::int64_t z = z0; z < z1; ++z) {
      const std::size_t row = static_cast<std::size_t>(z) * nx;
      for (int x = kHalo; x < nx - kHalo; ++x) {
        const std::size_t i = row + static_cast<std::size_t>(x);
        float lap = 2.0f * kC0 * cur[i];
        for (int k = 1; k <= 4; ++k) {
          lap += kC[k - 1] *
                 (cur[i - static_cast<std::size_t>(k)] +
                  cur[i + static_cast<std::size_t>(k)] +
                  cur[i - static_cast<std::size_t>(k) * nx] +
                  cur[i + static_cast<std::size_t>(k) * nx]);
        }
        next[i] = 2.0f * cur[i] - next[i] + vdt2_[i] * lap;
      }
    }
  };

  // Second level of parallelism: chunk interior rows over the node's local
  // pool when one was provided (paper §3.1's `parallel for` inside a task).
  if (pfor_) {
    pfor_(kHalo, nz - kHalo, 16, row_range);
  } else {
    row_range(kHalo, nz - kHalo);
  }

  // Source injection scaled like a pressure source.
  for (const SourceSample& s : sources) {
    const std::size_t si =
        static_cast<std::size_t>(s.z) * nx + static_cast<std::size_t>(s.x);
    next[si] += s.amp * vdt2_[si];
  }

  apply_sponge(next);
  std::swap(cur_, prev_);
  apply_sponge(*prev_);
}

Seismogram model_shot(const VelocityModel& model, const FdParams& params,
                      const Shot& shot, const Receivers& recv,
                      std::vector<Field>* snapshots, ParallelFor pfor) {
  Propagator prop(model, params, std::move(pfor));
  Seismogram seis;
  seis.nt = params.nt;
  seis.nrec = recv.count(model.nx);
  seis.data.assign(
      static_cast<std::size_t>(seis.nt) * static_cast<std::size_t>(seis.nrec),
      0.0f);

  if (snapshots != nullptr) {
    snapshots->clear();
    snapshots->reserve(static_cast<std::size_t>(
        params.nt / std::max(1, params.snapshot_stride) + 1));
  }

  for (int t = 0; t < params.nt; ++t) {
    const float amp = ricker(static_cast<float>(t) * prop.dt(), params.f_peak);
    prop.step(shot.sx, shot.sz, amp);
    const Field& p = prop.current();
    for (int r = 0; r < seis.nrec; ++r) {
      const int x = std::min(r * recv.stride, model.nx - 1);
      seis.at(t, r) =
          p[static_cast<std::size_t>(recv.rz) * model.nx + x];
    }
    if (snapshots != nullptr && t % std::max(1, params.snapshot_stride) == 0)
      snapshots->push_back(p);
  }
  return seis;
}

}  // namespace ompc::awave
