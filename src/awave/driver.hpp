// Awave drivers: serial reference and the OMPC-distributed version used in
// the paper's Fig. 7(b) ("a single shot is assigned to each worker node").
//
// The OMPC driver is deliberately small — it is the paper's pitch in code:
// the velocity model is entered once and replicated on demand (read-only
// `in` dependence, so the Data Manager keeps every copy); each shot is one
// `target nowait` writing its own partial image; the head stacks retrieved
// images. No explicit communication anywhere.
#pragma once

#include "awave/rtm.hpp"
#include "core/options.hpp"
#include "core/runtime.hpp"

namespace ompc::awave {

struct AwaveConfig {
  VelocityModel model;
  FdParams params;
  Receivers recv;
  int shots = 4;
  /// Extra per-shot task time (s) for time-dilated scaling benches
  /// (0 for correctness tests).
  double pad_task_seconds = 0.0;
};

struct AwaveResult {
  Image image;
  double wall_s = 0.0;
  core::RuntimeStats stats;  ///< populated by the distributed driver
};

/// Migrates all shots in one thread (validation oracle).
AwaveResult migrate_serial(const AwaveConfig& config);

/// Migrates with one target task per shot over the OMPC cluster.
AwaveResult migrate_ompc(const AwaveConfig& config,
                         const core::ClusterOptions& opts);

}  // namespace ompc::awave
