// Velocity models for the Awave RTM experiments.
//
// The paper evaluates on two published 2D models: Sigsbee (constant-density
// salt model) and Marmousi (complex layered structural model). Those
// datasets are licensed artifacts we cannot ship, so sigsbee_like() and
// marmousi_like() generate synthetic models with the same qualitative
// structure (DESIGN.md substitution table): a high-velocity salt body in a
// smooth background, and steeply dipping laterally varying layers,
// respectively. The RTM code path is identical either way.
#pragma once

#include <cstdint>
#include <vector>

#include "common/check.hpp"

namespace ompc::awave {

struct VelocityModel {
  int nx = 0;      ///< horizontal samples
  int nz = 0;      ///< depth samples
  float dx = 10.0f;  ///< grid spacing (m), isotropic

  /// Row-major velocity (m/s): v[z * nx + x].
  std::vector<float> v;

  VelocityModel() = default;
  VelocityModel(int nx_, int nz_, float dx_, float fill = 1500.0f)
      : nx(nx_), nz(nz_), dx(dx_),
        v(static_cast<std::size_t>(nx_) * static_cast<std::size_t>(nz_),
          fill) {}

  float& at(int x, int z) {
    return v[static_cast<std::size_t>(z) * static_cast<std::size_t>(nx) +
             static_cast<std::size_t>(x)];
  }
  float at(int x, int z) const {
    return v[static_cast<std::size_t>(z) * static_cast<std::size_t>(nx) +
             static_cast<std::size_t>(x)];
  }

  float vmax() const;
  float vmin() const;
};

/// Horizontally layered medium: `interfaces[k]` is the depth sample where
/// layer k+1 (velocity `velocities[k+1]`) begins.
VelocityModel layered_model(int nx, int nz, float dx,
                            const std::vector<int>& interfaces,
                            const std::vector<float>& velocities);

/// Sigsbee-like: water layer over smooth sediment gradient with an
/// embedded irregular high-velocity salt body (the model's signature
/// feature — strong impedance contrast, constant density).
VelocityModel sigsbee_like(int nx, int nz, float dx = 10.0f);

/// Marmousi-like: many thin dipping layers with strong lateral velocity
/// variation and a growth-fault-style offset in the middle of the model.
VelocityModel marmousi_like(int nx, int nz, float dx = 10.0f);

}  // namespace ompc::awave
