// Head failover and elastic membership (§5 extension).
//
// The paper's fault-tolerance design (and PR 1/5 here) survives any worker
// death but keeps the head as a single point of failure. This module turns
// recovery into membership management:
//
//  - ReplicaStore: a worker-side mailbox for the head's replicated
//    recording state (wave-log deltas + ownership/checkpoint metadata),
//    filled by HeadState events at wave boundaries. Blobs are stored
//    verbatim — deserialization cost is paid only on promotion.
//  - MembershipAgent: one per worker rank. Owns the heartbeat ring,
//    routes failure reports to the *current* head (re-sending them after a
//    handoff so reports aimed at a corpse are not lost), detects head
//    death, and runs the ring election: every replica holder broadcasts
//    its generation, and the freshest one promotes itself (generations are
//    unique — exactly one rank holds the latest update — so the maximum
//    cannot tie; rank order is a defensive tie-break only).
//  - MembershipBus: the process-level rendezvous between the election
//    (worker threads) and the surviving control thread, which adopts the
//    winner's event system and resumes from the replica. In a real MPI
//    cluster this would be the connection re-establishment layer; in the
//    simulated universe it is a registry + condition variable.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <thread>
#include <vector>

#include "core/heartbeat.hpp"
#include "minimpi/mpi.hpp"

namespace ompc::core {

class EventSystem;

/// Heartbeat-communicator tags of the election protocol (kFailureReportTag
/// = 8 lives in heartbeat.hpp). All messages are two u64 words.
inline constexpr mpi::Tag kElectionTag = 9;    ///< candidacy {rank, generation}
inline constexpr mpi::Tag kHeadHandoffTag = 10;  ///< result {new head, generation}

/// Worker-side store of the head's replicated recording state. apply() is
/// called from the event-handler thread; snapshot() from the control thread
/// at promotion time.
class ReplicaStore {
 public:
  /// How an update changes the accumulated wave list (mirrors the head's
  /// wave_log_ lifecycle; see HeadStateHeader::reset).
  enum class Update : std::uint8_t {
    Append = 0,  ///< append the update's waves
    Reset = 1,   ///< checkpoint retaken: current waves become the previous
                 ///< generation, then append
    Full = 2,    ///< resync (shadow changed): replace both wave lists
  };

  struct Snapshot {
    std::uint64_t generation = 0;
    Bytes metadata;                ///< serialized DM/checkpoint/stats state
    std::vector<Bytes> prev_waves; ///< serialized graphs, previous period
    std::vector<Bytes> waves;      ///< serialized graphs since last capture
  };

  /// Ingests one HeadState payload (see Runtime::replicate_head_state for
  /// the wire layout). Thread-safe.
  void apply(Update kind, std::uint64_t generation, const Bytes& payload);

  Snapshot snapshot() const;
  std::uint64_t generation() const;

 private:
  mutable std::mutex mutex_;
  Snapshot state_;
};

/// Process-level coordination between the per-rank election agents and the
/// surviving control thread during a head failover.
class MembershipBus {
 public:
  struct Node {
    EventSystem* events = nullptr;
    ReplicaStore* replica = nullptr;
  };

  void register_node(mpi::Rank r, EventSystem* events, ReplicaStore* replica);
  Node node(mpi::Rank r) const;

  /// Called by the election winner's agent. Bumps the epoch and wakes
  /// await_new_head().
  void announce_new_head(mpi::Rank r);
  std::uint64_t epoch() const;
  mpi::Rank current_head() const;

  /// Blocks until a head newer than `seen_epoch` is announced; nullopt on
  /// timeout (no surviving replica holder — failover impossible).
  std::optional<mpi::Rank> await_new_head(std::uint64_t seen_epoch,
                                          std::int64_t timeout_ms);

  /// Post-failover failure routing: the promoted rank's agent feeds
  /// detector reports here; the control thread installs a handler once it
  /// has adopted the new head. Reports arriving before that are buffered.
  void set_failure_handler(std::function<void(mpi::Rank)> fn);
  void report_failure(mpi::Rank dead);

  /// Teardown latch: the promoted rank's main thread must not destroy its
  /// event system while the control thread still drives it. The control
  /// thread releases when completely done (all paths, error unwinds
  /// included); a promoted worker waits before unwinding.
  void release_control();
  void await_control_release();

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::map<mpi::Rank, Node> nodes_;
  mpi::Rank head_ = 0;
  std::uint64_t epoch_ = 0;
  std::function<void(mpi::Rank)> failure_handler_;
  std::vector<mpi::Rank> buffered_failures_;
  bool control_released_ = false;
};

/// Per-worker membership agent: heartbeat ring + failure-report routing +
/// head-death election. Replaces the bare ring workers ran before.
class MembershipAgent {
 public:
  struct Options {
    HeartbeatRing::Options hb;
    mpi::Rank initial_head = 0;
    /// Candidacy collection window; 0 = auto (max(2 periods, 10 ms)).
    std::int64_t election_window_ms = 0;
  };

  /// `comm` must be the dedicated heartbeat communicator. `bus` and
  /// `replica` must outlive the agent.
  MembershipAgent(mpi::Comm comm, Options opts, MembershipBus* bus,
                  ReplicaStore* replica);
  ~MembershipAgent();

  MembershipAgent(const MembershipAgent&) = delete;
  MembershipAgent& operator=(const MembershipAgent&) = delete;

  void stop();

  /// The head this agent currently reports failures to.
  mpi::Rank current_head() const {
    return current_head_.load(std::memory_order_acquire);
  }

  HeartbeatRing& ring() { return *ring_; }

 private:
  void agent_main();
  void drain();
  void on_ring_failure(mpi::Rank dead);
  void begin_election();
  void finish_election();
  void send_word2(mpi::Rank to, mpi::Tag tag, std::uint64_t a, std::uint64_t b);
  void report_to_head(mpi::Rank dead);

  mpi::Comm comm_;
  Options opts_;
  MembershipBus* bus_;
  ReplicaStore* replica_;

  std::atomic<mpi::Rank> current_head_;
  std::atomic<bool> head_suspect_{false};  ///< ring flagged the head dead
  std::atomic<bool> stop_{false};

  // Agent-thread state (no locking needed beyond known_dead_).
  bool electing_ = false;
  std::int64_t window_end_ns_ = 0;
  std::map<mpi::Rank, std::uint64_t> candidacies_;

  std::mutex dead_mutex_;
  std::set<mpi::Rank> known_dead_;  ///< locally detected, re-sent on handoff

  std::unique_ptr<HeartbeatRing> ring_;
  std::thread thread_;
};

}  // namespace ompc::core
