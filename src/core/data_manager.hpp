// The Data Management module (paper §4.3).
//
// Lives on the head node ("at the agnostic layer" in Figure 2) and tracks,
// for every registered buffer, which ranks hold a *valid* copy and at what
// device address. Decisions follow §4.3's rules verbatim:
//
//  - enter data: the buffer is sent to the first node that will use it
//    (the scheduler pins the enter task there; executing it performs
//    Alloc + Submit);
//  - target region: a missing input is forwarded from its most recent
//    location — a direct worker->worker exchange commanded by the head but
//    never routed through it (Forwarding::Direct), or a retrieve+submit
//    bounce for the ablation strawman (Forwarding::ViaHead);
//  - after a task writes a buffer (out/inout dependence), every other copy
//    is stale: the DM deletes them and the writer becomes the only valid
//    location. Read-only uses replicate instead;
//  - exit data: the freshest copy is retrieved to the head and the buffer
//    is removed from the whole cluster.
//
// Concurrency: helper threads execute many tasks at once. Transfers of the
// *same* buffer are serialized by a per-buffer mutex (acquired in address
// order for multi-buffer tasks, so no deadlock); distinct buffers move in
// parallel.
#pragma once

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <tuple>
#include <set>
#include <shared_mutex>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/event_system.hpp"
#include "core/helper_pool.hpp"
#include "core/options.hpp"
#include "omptask/dep.hpp"

namespace ompc::core {

struct DataManagerStats {
  std::atomic<std::int64_t> submits{0};
  std::atomic<std::int64_t> retrieves{0};
  std::atomic<std::int64_t> exchanges{0};
  std::atomic<std::int64_t> allocs{0};
  std::atomic<std::int64_t> deletes{0};
  std::atomic<std::int64_t> bytes_moved{0};
  std::atomic<std::int64_t> buffers_lost{0};  ///< sole copy was on a corpse
  std::atomic<std::int64_t> threads_spawned{0};  ///< transfer-pool spawns
  std::atomic<std::int64_t> head_fetch_bytes{0};  ///< bytes retrieved into
                                                  ///< host copies (head NIC
                                                  ///< inbound data volume)
  std::atomic<std::int64_t> persistent_reuses{0};  ///< device allocations
                                                   ///< re-used by an armed
                                                   ///< ChannelPlan
};

class DataManager {
 public:
  DataManager(EventSystem& events, const ClusterOptions& opts);

  // --- registration (recording phase, single-threaded head) -----------

  /// Declares a mappable buffer (the `map` clause extent).
  void register_buffer(void* host, std::size_t size);

  bool is_registered(const void* host) const;
  std::size_t buffer_size(const void* host) const;
  std::size_t num_buffers() const;

  // --- execution phase (called from helper threads) -------------------

  /// Executes a DataEnter task pinned to `worker`: allocate there and, when
  /// `copy`, submit the host contents.
  void enter_to_worker(mpi::Rank worker, const void* host, bool copy);

  /// Executes a DataExit task: retrieve the freshest copy to the host
  /// (when `copy`) and remove the buffer from the entire cluster.
  void exit_to_head(void* host, bool copy);

  /// Makes every buffer in `buffers` valid on `worker` (§4.3 target-region
  /// rule) and returns their device addresses, positionally.
  std::vector<offload::TargetPtr> prepare_args(
      mpi::Rank worker, std::span<const void* const> buffers);

  /// Applies post-execution invalidation: each written dependence leaves
  /// `worker` as the only valid location (and marks the buffer dirty for
  /// the next incremental checkpoint).
  void after_write(mpi::Rank worker, const omp::DepList& deps);

  /// Host-task equivalent of after_write's dirty marking: a host task
  /// writes `host` memory directly (the head copy stays authoritative, no
  /// replica invalidation to do), but the incremental checkpointer must
  /// still re-capture every written buffer.
  void after_host_write(const omp::DepList& deps);

  /// Deletes every remaining device allocation (pre-shutdown sweep for
  /// buffers the program never exited).
  void cleanup_all();

  // --- fault tolerance (paper §5; driven by the Runtime) ---------------
  //
  // The ownership map this module maintains is exactly what checkpointing
  // and rollback need: capture walks it to find the freshest copy of every
  // buffer, rollback rewrites it to "host only" before re-execution.

  /// Refreshes the head's host copy of `host` from the freshest worker
  /// replica (no-op when the head already holds a valid copy). Read-only:
  /// worker replicas stay valid. Checkpoint capture uses this.
  void refresh_head(const void* host);

  /// refresh_head for a whole set at once: the retrieves fan out across the
  /// persistent transfer pool (one job per buffer, max(transfer) instead of
  /// sum(transfer) — the head-resident capture path was serial before).
  /// Returns the bytes actually retrieved (buffers already valid on the
  /// head cost nothing); rethrows the first fetch failure after all jobs
  /// have settled, so no job outlives the call.
  std::int64_t refresh_head_many(std::span<const void* const> hosts);

  /// Calls `fn(host, size)` for every registered buffer. Must not be
  /// called concurrently with registration (head control thread only).
  void for_each_buffer(
      const std::function<void(void*, std::size_t)>& fn) const;

  /// Snapshot-placement query (worker-local checkpoints): where the
  /// freshest copy of `host` lives — the head and/or the first worker with
  /// a valid replica (owner == -1 when none), with the replica's device
  /// address so the owner can snapshot it in place.
  struct Residency {
    bool on_head = false;
    mpi::Rank owner = -1;
    offload::TargetPtr owner_addr = 0;
  };
  Residency residency(const void* host) const;

  /// Forgets every replica on `dead` WITHOUT issuing Delete events (a dead
  /// rank frees its own memory when its thread unwinds). Buffers whose only
  /// valid copy lived there are counted in stats().buffers_lost.
  void purge_rank(mpi::Rank dead);

  /// Rollback step 1: drops every worker replica (Delete events on live
  /// workers) and declares the host copy the only valid location, for every
  /// registered buffer. Requires a quiesced cluster (no tasks in flight).
  void reset_all_to_host();

  /// Rollback step 2: (re-)registers `host` if a DataExit erased it during
  /// the failed execution attempt and overwrites the host bytes with the
  /// checkpointed `content`. Requires reset_all_to_host() to have run.
  void restore_buffer(void* host, std::size_t size,
                      std::span<const std::byte> content);

  // --- head failover / elastic membership ------------------------------

  /// Head-replication support: flattens the registry ({host, size} per
  /// buffer). Placement is deliberately not shipped — a promoted head
  /// adopts every buffer as host-resident and lets rollback redistribute,
  /// so its reset_all_to_host() issues no Deletes against state the dead
  /// head was mid-way through mutating.
  Bytes serialize_registry() const;
  void adopt_registry(std::span<const std::byte> data);

  /// Re-homes the event plane after a head failover (the promoted rank's
  /// event system replaces the dead head's).
  void rebind(EventSystem* events) { events_ = events; }

  /// Elastic membership: migrates every `take_every`-th worker-resident
  /// buffer to `joiner` (a direct transfer from the current owner over the
  /// configured data plane) and makes the joiner its only worker replica —
  /// the joiner's ownership slice. Returns the number of buffers moved.
  std::size_t migrate_buffers(mpi::Rank joiner, std::size_t take_every);

  // --- persistent channels (the per-wave ChannelPlan) -------------------
  //
  // Armed by the Runtime when the schedule cache hits (same structural
  // hash, same live-worker set): the steady-state wave shape is known, so
  // (1) stale replicas keep their device allocations across write
  // invalidations — the next wave's transfer re-uses the block instead of
  // paying Delete+Alloc round-trips — and (2) repeated transfers ride
  // fixed channel tags that the destination's pre-posted persistent
  // receives match (see EventSystem's channel cache). Disarmed on
  // rollback, membership change, head failover and tenant-set change; the
  // fixed tags are retired with the plan so recovery can never match a
  // stale in-flight payload, keeping re-execution bitwise-identical.

  void arm_channels() { channels_on_.store(true, std::memory_order_release); }
  void disarm_channels();
  bool channels_armed() const {
    return channels_on_.load(std::memory_order_acquire);
  }

  // --- dirty-set tracking (incremental checkpoints) --------------------
  //
  // A buffer is dirty when its logical content may have changed since the
  // last successful checkpoint capture: it was registered, or a task wrote
  // it (after_write). Capture copies exactly the dirty set and keeps clean
  // entries by reference; it calls mark_all_clean() only after committing,
  // so a capture that dies mid-way leaves the set conservatively intact.

  /// Snapshot of the currently-dirty buffers (thread-safe).
  std::unordered_set<const void*> dirty_buffers() const;

  /// Clears the dirty set (after a committed capture, or after restore —
  /// which rewrites every checkpointed buffer to its captured content).
  void mark_all_clean();

  // --- introspection (tests) ------------------------------------------

  struct Snapshot {
    bool valid_on_head = false;
    std::set<mpi::Rank> valid_workers;
    std::set<mpi::Rank> allocated_workers;
  };
  Snapshot snapshot(const void* host) const;

  const DataManagerStats& stats() const { return stats_; }

  /// The elastic transfer pool (Runtime folds its peak/retire counters
  /// into RuntimeStats; tests assert the elasticity).
  const HelperPool& transfer_pool() const { return *transfer_pool_; }

 private:
  /// Per-(buffer, worker) replica lifecycle. Concurrent readers fanning one
  /// buffer out to different workers overlap (each replica is its own
  /// transfer); a second request for the same worker waits on the cv.
  enum class CopyState { Absent, Transferring, Valid };

  struct BufferState {
    void* host = nullptr;
    std::size_t size = 0;
    bool on_head = true;  ///< host copy valid
    bool head_fetching = false;  ///< a retrieve into `host` is in flight
    std::map<mpi::Rank, offload::TargetPtr> addr;  ///< device allocations
    std::map<mpi::Rank, CopyState> state;
    std::mutex lock;  ///< guards addr/state/on_head (not the transfers)
    std::condition_variable cv;  ///< signalled on Transferring -> Valid
  };

  BufferState* find(const void* host) const;

  /// Core of §4.3's target-region rule: makes the buffer Valid on `worker`
  /// and returns its device address. Blocks for the transfer; concurrent
  /// calls for distinct workers proceed in parallel.
  offload::TargetPtr ensure_on(mpi::Rank worker, BufferState& b);

  /// Allocates (once) on `worker`; requires b.lock NOT held.
  offload::TargetPtr alloc_on(mpi::Rank worker, BufferState& b);

  /// Submits the (valid) host copy into `worker`'s block at `dst`.
  /// Armed plans ship the payload on the edge's fixed channel tag
  /// (SubmitHeader::data_tag) so the worker's persistent receive matches.
  void submit_to(mpi::Rank worker, offload::TargetPtr dst, BufferState& b);

  /// Removes the replica on `worker`; requires b.lock held (no transfer in
  /// flight for that worker).
  void delete_on_locked(mpi::Rank worker, BufferState& b,
                        std::unique_lock<std::mutex>& lk);

  /// Makes the head's host copy valid, coalescing concurrent refreshes of
  /// the same buffer onto one retrieve (waiters park on b.cv). Enters and
  /// leaves with `lk` held on b.lock; on return b.on_head is true. The
  /// coalescing also guarantees nobody rewrites `host` while a borrowed
  /// Submit payload of it is in flight.
  void fetch_to_head_locked(BufferState& b, std::unique_lock<std::mutex>& lk);

  /// Marks `host` as written since the last checkpoint.
  void mark_dirty(const void* host);

  /// The fixed wire tag of the (buffer, producer, consumer) transfer edge
  /// (src == -1: head-to-worker Submit). Allocated from the channel space
  /// on first use, stable until disarm_channels() retires the plan.
  mpi::Tag channel_tag_for(const void* host, mpi::Rank src, mpi::Rank dst);

  EventSystem* events_;
  const ClusterOptions opts_;

  mutable std::shared_mutex mutex_;  ///< guards the buffer map itself
  std::unordered_map<const void*, std::unique_ptr<BufferState>> buffers_;

  mutable std::mutex dirty_mutex_;
  std::unordered_set<const void*> dirty_;

  // ChannelPlan state: the armed flag plus the fixed-tag table of the
  // current plan's transfer edges.
  std::atomic<bool> channels_on_{false};
  mutable std::mutex channel_tag_mutex_;
  std::map<std::tuple<const void*, mpi::Rank, mpi::Rank>, mpi::Tag>
      channel_tags_;

  /// Shared transfer pool for prepare_args fan-out — created with the
  /// manager (once per launch, like the dispatch pool). Elastic: capped at
  /// ClusterOptions::transfer_threads (auto: cluster_pool_threads), grown
  /// on demand from a small floor. Growth is demand-based, so
  /// threads_spawned stays wave-count-independent for steady workloads.
  std::unique_ptr<HelperPool> transfer_pool_;

  DataManagerStats stats_;
};

}  // namespace ompc::core
