// Fault-tolerance error taxonomy (paper §5).
//
// The paper pairs heartbeat *detection* with checkpoint/re-execution
// *recovery*. Inside the runtime a detected failure surfaces as
// WorkerDiedError on every operation touching the dead rank; wait_all()
// catches it and either recovers (rolls buffers back to the last wave
// checkpoint and re-executes the lost sub-graph on the survivors) or — when
// recovery is impossible — rethrows the condition as RecoveryError so the
// program fails cleanly instead of hanging.
#pragma once

#include <stdexcept>
#include <string>

#include "minimpi/mpi.hpp"

namespace ompc::core {

/// A cluster operation targeted a worker that the failure detector has
/// declared dead. Recoverable: wait_all() catches this and re-executes.
class WorkerDiedError : public std::runtime_error {
 public:
  explicit WorkerDiedError(mpi::Rank rank)
      : std::runtime_error("worker rank " + std::to_string(rank) +
                           " died mid-operation"),
        rank_(rank) {}

  mpi::Rank rank() const noexcept { return rank_; }

 private:
  mpi::Rank rank_;
};

/// A worker failure could not be recovered from: checkpointing is disabled
/// (ClusterOptions::checkpoint_period == 0), no checkpoint exists yet, or
/// every worker is gone. Terminal for the launch.
class RecoveryError : public std::runtime_error {
 public:
  explicit RecoveryError(const std::string& what) : std::runtime_error(what) {}
};

}  // namespace ompc::core
