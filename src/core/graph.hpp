// Cluster task graph: what the head node accumulates between wait_all()
// barriers (paper §4.4 — tasks are created eagerly but execution is
// deferred until the implicit barrier, when the whole graph is scheduled).
//
// Node kinds mirror the paper:
//  - Target     — a `target nowait` region (kernel + buffer args + deps)
//  - DataEnter  — `target enter data nowait` (allocate/copy to the cluster)
//  - DataExit   — `target exit data nowait` (retrieve/remove from cluster)
//  - Host       — a classical `task` (always executed on the head, §4.4)
//
// Edges are derived from depend clauses with OpenMP semantics and carry the
// byte size of the dependence's buffer, which feeds the HEFT communication
// cost model.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/serialize.hpp"
#include "core/tenant.hpp"
#include "offload/kernel_registry.hpp"
#include "omptask/dep.hpp"

namespace ompc::core {

enum class TaskType : std::uint8_t { Target, DataEnter, DataExit, Host };

struct ClusterTask {
  int id = 0;
  TaskType type = TaskType::Target;

  // Target tasks.
  offload::KernelId kernel = offload::kInvalidKernel;
  std::vector<const void*> buffer_args;  ///< host pointers, positional
  Bytes scalars;
  double cost_s = 0.0;  ///< compute estimate for the scheduler (0 = default)

  // Data tasks.
  const void* buffer = nullptr;
  bool copy = true;  ///< enter: copy payload; exit: copy back to host
  /// DataEnter only: the mapping's byte size. Session-recorded enters defer
  /// DM registration to execution time (the session thread must not mutate
  /// the registry while another tenant's wave is in flight), so the size
  /// must travel with the task — and with the serialized wave log, where it
  /// also lets a promoted head replay an enter it never saw registered.
  std::size_t buffer_bytes = 0;

  // Host tasks. A std::function cannot cross a serialization boundary, so
  // the closure is interned in the process-wide HostFnRegistry and the
  // handle travels in its place (head replication; valid because workers
  // share the process in this simulated cluster).
  std::function<void()> host_fn;
  std::uint64_t host_fn_handle = 0;  ///< 0 = none

  omp::DepList deps;

  // Derived edges (indices into the graph's task vector).
  std::vector<int> preds;
  std::vector<int> succs;
};

struct Edge {
  int from = 0;
  int to = 0;
  std::size_t bytes = 0;
};

/// A graph view with data tasks collapsed away: HEFT schedules compute
/// tasks only, and the paper's adaptation pins each data task to its
/// consumer/producer afterwards (§4.4, second adaptation).
struct CollapsedView {
  std::vector<int> task_ids;            ///< graph ids of the view's nodes
  std::vector<int> view_index;          ///< graph id -> view index (-1 none)
  std::vector<std::vector<std::pair<int, std::size_t>>> succs;  ///< per view node: (succ view idx, bytes)
  std::vector<std::vector<std::pair<int, std::size_t>>> preds;
};

class ClusterGraph {
 public:
  /// `buffer_size(addr)` resolves a dependence address to its buffer size
  /// for edge weights (unknown addresses weigh 0).
  explicit ClusterGraph(
      std::function<std::size_t(const void*)> buffer_size = {});

  int add_task(ClusterTask task);

  /// Resolves depend clauses into edges. Called once, after all add_task().
  void build_edges();

  std::size_t size() const noexcept { return tasks_.size(); }
  bool empty() const noexcept { return tasks_.empty(); }
  const ClusterTask& task(int id) const { return tasks_[static_cast<std::size_t>(id)]; }
  ClusterTask& task(int id) { return tasks_[static_cast<std::size_t>(id)]; }
  const std::vector<ClusterTask>& tasks() const noexcept { return tasks_; }
  const std::vector<Edge>& edges() const noexcept { return edges_; }

  /// Entry tasks (no predecessors). Valid after build_edges().
  std::vector<int> roots() const;

  /// Topological order (ids). Throws if the dependence graph has a cycle
  /// (impossible via depend clauses, defensive for hand-built graphs).
  std::vector<int> topological_order() const;

  /// Data-task-free view for the scheduler.
  CollapsedView collapsed() const;

  /// Structural fingerprint for schedule memoization (paper Fig. 7b:
  /// iterative applications re-record an identical DAG every time step).
  /// Covers every input the scheduler reads: task types, kernels, cost
  /// hints, the dependence lists (addresses + access types) and the
  /// dependence buffers' byte sizes. Equal hashes mean build_edges()
  /// derives identical edges and schedule() sees an identical problem.
  std::uint64_t structural_hash() const;

  /// Bytes attached to the edge from->to (0 when absent).
  std::size_t edge_bytes(int from, int to) const;

  /// The submission stream this wave belongs to. Deliberately NOT part of
  /// structural_hash(): two tenants recording the same DAG shape share a
  /// schedule-cache entry, which is the whole point of the memoization.
  /// It IS part of serialize_graph(), so wave-log entries stay
  /// tenant-scoped across head failover and per-tenant recovery
  /// accounting survives the handoff.
  TenantId tenant() const noexcept { return tenant_; }
  void set_tenant(TenantId t) noexcept { tenant_ = t; }

  /// Replaces the edge-weight resolver (used when a session hands its
  /// graph to the runtime: the recording-time resolver points into
  /// session-owned state, the submitted graph gets a self-contained one).
  void set_buffer_size_fn(std::function<std::size_t(const void*)> fn) {
    buffer_size_ = std::move(fn);
  }

 private:
  std::function<std::size_t(const void*)> buffer_size_;
  TenantId tenant_ = kDefaultTenant;
  std::vector<ClusterTask> tasks_;
  std::vector<Edge> edges_;
  bool edges_built_ = false;
};

/// Process-wide host-task closure registry (head replication): a promoted
/// head resurrects a replicated wave's host tasks by handle. Entries live
/// for the process — handles are issued once per recorded task.
class HostFnRegistry {
 public:
  static HostFnRegistry& instance();

  /// Stores `fn` and returns its handle (> 0).
  std::uint64_t intern(std::function<void()> fn);

  /// Resolves a handle; throws on an unknown one.
  std::function<void()> get(std::uint64_t handle) const;

 private:
  mutable std::mutex mutex_;
  std::uint64_t next_ = 1;
  std::unordered_map<std::uint64_t, std::function<void()>> fns_;
};

/// Flattens a built graph's tasks for the head-state replica. Derived
/// edges are not shipped; deserialize_graph() rebuilds them.
Bytes serialize_graph(const ClusterGraph& g);

/// Inverse of serialize_graph: reconstructs the tasks (host_fn resolved
/// through the HostFnRegistry) and rebuilds the edges.
ClusterGraph deserialize_graph(
    std::span<const std::byte> data,
    std::function<std::size_t(const void*)> buffer_size);

}  // namespace ompc::core
