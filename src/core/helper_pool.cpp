#include "core/helper_pool.hpp"

#include <algorithm>
#include <latch>
#include <memory>

#include "common/check.hpp"
#include "common/log.hpp"

namespace ompc::core {

HelperPool::HelperPool(int threads, std::string label_prefix) {
  const int n = std::max(1, threads);
  threads_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    threads_.emplace_back([this, label = label_prefix + std::to_string(i)] {
      log::set_thread_label(label);
      worker_main();
    });
  }
}

HelperPool::~HelperPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void HelperPool::submit(std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    OMPC_CHECK_MSG(!stop_, "submit on a stopped helper pool");
    queue_.push_back(std::move(job));
  }
  cv_.notify_one();
}

void HelperPool::worker_main() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop and drained
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    job();
    jobs_run_.fetch_add(1, std::memory_order_relaxed);
  }
}

void fan_out(HelperPool& pool, std::size_t n,
             const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (n == 1) {
    fn(0);
    return;
  }
  // Shared, not stack-allocated: wait() can return while the last job is
  // still inside count_down()'s notify, which would race a stack latch's
  // destructor; the jobs' copies keep it alive past that window. (fn and
  // errors stay stack refs — their writes happen before count_down, which
  // wait() synchronizes with.)
  auto done =
      std::make_shared<std::latch>(static_cast<std::ptrdiff_t>(n - 1));
  std::vector<std::exception_ptr> errors(n);
  for (std::size_t i = 1; i < n; ++i) {
    pool.submit([&fn, &errors, done, i] {
      try {
        fn(i);
      } catch (...) {
        errors[i] = std::current_exception();
      }
      done->count_down();
    });
  }
  try {
    fn(0);
  } catch (...) {
    errors[0] = std::current_exception();
  }
  done->wait();
  for (auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

}  // namespace ompc::core
