#include "core/helper_pool.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/log.hpp"

namespace ompc::core {

HelperPool::HelperPool(int threads, std::string label_prefix) {
  const int n = std::max(1, threads);
  threads_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    threads_.emplace_back([this, label = label_prefix + std::to_string(i)] {
      log::set_thread_label(label);
      worker_main();
    });
  }
}

HelperPool::~HelperPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void HelperPool::submit(std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    OMPC_CHECK_MSG(!stop_, "submit on a stopped helper pool");
    queue_.push_back(std::move(job));
  }
  cv_.notify_one();
}

void HelperPool::worker_main() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop and drained
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    job();
    jobs_run_.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace ompc::core
