#include "core/helper_pool.hpp"

#include <algorithm>
#include <chrono>
#include <latch>
#include <memory>

#include "common/check.hpp"
#include "common/log.hpp"

namespace ompc::core {

HelperPool::HelperPool(int threads, std::string label_prefix)
    : HelperPool(std::max(1, threads), std::max(1, threads), 0,
                 std::move(label_prefix)) {}

HelperPool::HelperPool(int min_threads, int max_threads,
                       std::int64_t idle_shrink_ms, std::string label_prefix,
                       std::atomic<std::int64_t>* spawn_counter)
    : min_(std::max(1, min_threads)),
      max_(std::max(std::max(1, min_threads), max_threads)),
      idle_shrink_ms_(idle_shrink_ms),
      label_(std::move(label_prefix)),
      spawn_counter_(spawn_counter) {
  std::lock_guard<std::mutex> lock(mutex_);
  while (live_ < min_) spawn_locked();
}

HelperPool::~HelperPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  std::vector<std::thread> to_join;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    // A worker seeing stop_ returns with its handle still in threads_; one
    // racing the flag into its retire path has already moved its handle to
    // reap_. Either way the handle is in exactly one of the two lists.
    for (auto& [slot, t] : threads_) to_join.push_back(std::move(t));
    threads_.clear();
    to_join.insert(to_join.end(), std::make_move_iterator(reap_.begin()),
                   std::make_move_iterator(reap_.end()));
    reap_.clear();
  }
  for (auto& t : to_join) t.join();
}

int HelperPool::num_threads() const noexcept {
  std::lock_guard<std::mutex> lock(mutex_);
  return live_;
}

void HelperPool::spawn_locked() {
  const std::int64_t slot = next_slot_++;
  threads_.emplace(
      slot, std::thread([this, slot, label = label_ + std::to_string(slot)] {
        log::set_thread_label(label);
        worker_main(slot);
      }));
  ++live_;
  threads_spawned_.fetch_add(1, std::memory_order_relaxed);
  if (spawn_counter_ != nullptr)
    spawn_counter_->fetch_add(1, std::memory_order_relaxed);
  int peak = peak_threads_.load(std::memory_order_relaxed);
  while (live_ > peak &&
         !peak_threads_.compare_exchange_weak(peak, live_,
                                              std::memory_order_relaxed)) {
  }
}

void HelperPool::reserve(int target) {
  std::vector<std::thread> to_reap;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    OMPC_CHECK_MSG(!stop_, "reserve on a stopped helper pool");
    const int want = std::min(max_, target);
    while (live_ < want) spawn_locked();
    to_reap.swap(reap_);
  }
  // Join retired threads outside the lock (they have already exited or are
  // unwinding their last stack frames; this just releases the handles).
  for (auto& t : to_reap) t.join();
}

void HelperPool::submit(std::function<void()> job) {
  std::vector<std::thread> to_reap;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    OMPC_CHECK_MSG(!stop_, "submit on a stopped helper pool");
    queue_.push_back(std::move(job));
    // No growth here: submit-time queue pressure depends on job-completion
    // timing, which would make the spawn count nondeterministic across
    // identical waves (the hotpath gates assert it exactly). Growth is the
    // callers' announced demand — reserve().
    to_reap.swap(reap_);
  }
  cv_.notify_one();
  for (auto& t : to_reap) t.join();
}

void HelperPool::worker_main(std::int64_t slot) {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    bool timed_out = false;
    ++idle_;
    if (idle_shrink_ms_ > 0) {
      timed_out =
          !cv_.wait_for(lock, std::chrono::milliseconds(idle_shrink_ms_),
                        [this] { return stop_ || !queue_.empty(); });
    } else {
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
    }
    --idle_;
    if (!queue_.empty()) {
      std::function<void()> job = std::move(queue_.front());
      queue_.pop_front();
      lock.unlock();
      job();
      jobs_run_.fetch_add(1, std::memory_order_relaxed);
      lock.lock();
      continue;
    }
    if (stop_) return;  // drained
    if (timed_out && live_ > min_) {
      // Idle shrink: retire this thread. It cannot join itself, so the
      // handle moves to reap_ for the next submit (or the destructor).
      --live_;
      threads_retired_.fetch_add(1, std::memory_order_relaxed);
      if (auto it = threads_.find(slot); it != threads_.end()) {
        reap_.push_back(std::move(it->second));
        threads_.erase(it);
      }
      return;
    }
    // Timed out at the floor (or spurious wake): keep waiting.
  }
}

void fan_out(HelperPool& pool, std::size_t n,
             const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (n == 1) {
    fn(0);
    return;
  }
  // Announce the fan-out width (n-1 pool jobs; fn(0) runs inline) so an
  // elastic pool grows to cover it — deterministic per call site.
  pool.reserve(static_cast<int>(n - 1));
  // Shared, not stack-allocated: wait() can return while the last job is
  // still inside count_down()'s notify, which would race a stack latch's
  // destructor; the jobs' copies keep it alive past that window. (fn and
  // errors stay stack refs — their writes happen before count_down, which
  // wait() synchronizes with.)
  auto done =
      std::make_shared<std::latch>(static_cast<std::ptrdiff_t>(n - 1));
  std::vector<std::exception_ptr> errors(n);
  for (std::size_t i = 1; i < n; ++i) {
    pool.submit([&fn, &errors, done, i] {
      try {
        fn(i);
      } catch (...) {
        errors[i] = std::current_exception();
      }
      done->count_down();
    });
  }
  try {
    fn(0);
  } catch (...) {
    errors[0] = std::current_exception();
  }
  done->wait();
  for (auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

}  // namespace ompc::core
