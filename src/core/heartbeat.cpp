#include "core/heartbeat.hpp"

#include "common/log.hpp"
#include "common/time.hpp"

namespace ompc::core {

namespace {
constexpr mpi::Tag kPingTag = 7;
}

HeartbeatRing::HeartbeatRing(mpi::Comm comm, Options opts,
                             std::function<void(mpi::Rank)> on_failure)
    : comm_(comm), opts_(opts), on_failure_(std::move(on_failure)) {
  const int n = comm_.size();
  prev_ = (comm_.rank() - 1 + n) % n;
  next_ = (comm_.rank() + 1) % n;
  thread_ = std::thread([this] {
    log::set_thread_label("hb" + std::to_string(comm_.rank()));
    ring_main();
  });
}

HeartbeatRing::~HeartbeatRing() { stop(); }

void HeartbeatRing::stop() {
  bool expected = false;
  if (!stop_.compare_exchange_strong(expected, true)) return;
  thread_.join();
}

void HeartbeatRing::ring_main() {
  if (comm_.size() == 1) return;  // no neighbours to monitor

  // Grace: the predecessor counts as alive at startup.
  std::int64_t last_ping_ns = now_ns();
  const std::int64_t period_ns = opts_.period_ms * 1'000'000;
  const std::int64_t timeout_ns = opts_.timeout_ms * 1'000'000;
  const std::int64_t min_ns = (opts_.min_timeout_ms > 0
                                   ? opts_.min_timeout_ms * 1'000'000
                                   : 4 * period_ns);

  // Adaptive threshold (Jacobson/Karels): EWMA mean and deviation of the
  // measured inter-ping gaps. A quiet, punctual ring tightens detection
  // well below the worst-case fixed timeout; a jittery one backs off
  // before it false-positives. The fixed timeout stays the upper bound.
  std::int64_t mean_ns = period_ns;
  std::int64_t dev_ns = period_ns;
  std::int64_t threshold_ns = timeout_ns;
  threshold_ns_.store(threshold_ns, std::memory_order_relaxed);

  while (!stop_.load(std::memory_order_relaxed)) {
    try {
      if (!paused_.load(std::memory_order_relaxed)) {
        const std::uint64_t beat = 1;
        comm_.send(&beat, sizeof beat, next_, kPingTag);
      }
      // Drain everything the predecessor sent since the last round.
      while (comm_.iprobe(prev_, kPingTag)) {
        std::uint64_t beat = 0;
        comm_.recv(&beat, sizeof beat, prev_, kPingTag);
        const std::int64_t now = now_ns();
        if (opts_.adaptive) {
          const std::int64_t gap = now - last_ping_ns;
          const std::int64_t err = gap - mean_ns;
          mean_ns += err / 8;
          dev_ns += ((err < 0 ? -err : err) - dev_ns) / 4;
          threshold_ns = mean_ns + opts_.dev_factor * dev_ns + period_ns;
          if (threshold_ns < min_ns) threshold_ns = min_ns;
          if (threshold_ns > timeout_ns) threshold_ns = timeout_ns;
          threshold_ns_.store(threshold_ns, std::memory_order_relaxed);
        }
        last_ping_ns = now;
      }
      if (!failed_.load(std::memory_order_relaxed) &&
          now_ns() - last_ping_ns > threshold_ns) {
        if (opts_.verify_liveness && !comm_.universe().is_dead(prev_)) {
          // Silence without a corpse: this ring thread (or the peer's) was
          // starved by the scheduler, not the peer dying. The liveness
          // check stands in for a real transport's connection-state
          // notification, same as the membership agent's head poll. Widen
          // the adaptive threshold so the same stall does not re-trip.
          last_ping_ns = now_ns();
          if (opts_.adaptive) {
            dev_ns += dev_ns / 2 + period_ns;
            threshold_ns = mean_ns + opts_.dev_factor * dev_ns + period_ns;
            if (threshold_ns > timeout_ns) threshold_ns = timeout_ns;
            threshold_ns_.store(threshold_ns, std::memory_order_relaxed);
          }
        } else {
          failed_.store(true, std::memory_order_relaxed);
          OMPC_LOG_WARN("heartbeat: rank " << prev_ << " stopped responding");
          if (on_failure_) on_failure_(prev_);
        }
      }
    } catch (const mpi::RankKilledError&) {
      // This rank was killed under us (pre-poison ping still queued when
      // the recv landed). The ring dies with the rank — nothing to report.
      return;
    }
    precise_sleep_ns(period_ns);
  }
}

}  // namespace ompc::core
