#include "core/heartbeat.hpp"

#include "common/log.hpp"
#include "common/time.hpp"

namespace ompc::core {

namespace {
constexpr mpi::Tag kPingTag = 7;
}

HeartbeatRing::HeartbeatRing(mpi::Comm comm, Options opts,
                             std::function<void(mpi::Rank)> on_failure)
    : comm_(comm), opts_(opts), on_failure_(std::move(on_failure)) {
  const int n = comm_.size();
  prev_ = (comm_.rank() - 1 + n) % n;
  next_ = (comm_.rank() + 1) % n;
  thread_ = std::thread([this] {
    log::set_thread_label("hb" + std::to_string(comm_.rank()));
    ring_main();
  });
}

HeartbeatRing::~HeartbeatRing() { stop(); }

void HeartbeatRing::stop() {
  bool expected = false;
  if (!stop_.compare_exchange_strong(expected, true)) return;
  thread_.join();
}

void HeartbeatRing::ring_main() {
  if (comm_.size() == 1) return;  // no neighbours to monitor

  // Grace: the predecessor counts as alive at startup.
  std::int64_t last_ping_ns = now_ns();
  const std::int64_t period_ns = opts_.period_ms * 1'000'000;
  const std::int64_t timeout_ns = opts_.timeout_ms * 1'000'000;

  while (!stop_.load(std::memory_order_relaxed)) {
    if (!paused_.load(std::memory_order_relaxed)) {
      const std::uint64_t beat = 1;
      comm_.send(&beat, sizeof beat, next_, kPingTag);
    }
    // Drain everything the predecessor sent since the last round.
    while (comm_.iprobe(prev_, kPingTag)) {
      std::uint64_t beat = 0;
      comm_.recv(&beat, sizeof beat, prev_, kPingTag);
      last_ping_ns = now_ns();
    }
    if (!failed_.load(std::memory_order_relaxed) &&
        now_ns() - last_ping_ns > timeout_ns) {
      failed_.store(true, std::memory_order_relaxed);
      OMPC_LOG_WARN("heartbeat: rank " << prev_ << " stopped responding");
      if (on_failure_) on_failure_(prev_);
    }
    precise_sleep_ns(period_ns);
  }
}

}  // namespace ompc::core
