// The OMPC runtime facade — the user-visible programming model.
//
// This is the C++-API equivalent of the paper's pragma surface (Listing 1):
//
//   #pragma omp target enter data map(to: A[:N]) nowait depend(out: *A)
//     -> rt.enter_data(A, N * sizeof *A);
//   #pragma omp target nowait depend(inout: *A)   { foo(A); }
//     -> rt.target({omp::inout(A)}, foo_kernel_id, Args().buf(A));
//   #pragma omp target exit data map(from: A[:N]) nowait depend(inout: *A)
//     -> rt.exit_data(A);
//   (implicit barrier at the end of the parallel region)
//     -> rt.wait_all();
//
// Execution model (paper §3.1/§4.4): the control thread only *records*
// tasks; nothing runs until wait_all(), when the whole graph is scheduled
// with HEFT and dispatched. Under AsyncMode::HelperThreads each in-flight
// target region occupies one blocked helper thread — LLVM's libomptarget
// behaviour and the §7 scalability bottleneck; AsyncMode::TwoStep lifts the
// bound (the paper's proposed fix).
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "core/checkpoint.hpp"
#include "core/data_manager.hpp"
#include "core/fault.hpp"
#include "core/graph.hpp"
#include "core/heft.hpp"
#include "core/helper_pool.hpp"
#include "core/options.hpp"
#include "core/tenant.hpp"

namespace ompc::core {

/// Timing/counter summary of one cluster run, the measurements Fig. 7(a)
/// reports (startup / schedule / shutdown vs total wall time).
struct RuntimeStats {
  std::int64_t startup_ns = 0;   ///< process begin -> gate threads live
  std::int64_t schedule_ns = 0;  ///< total HEFT time across waves
  std::int64_t shutdown_ns = 0;  ///< shutdown begin -> universe joined
  std::int64_t wall_ns = 0;      ///< whole launch()

  std::int64_t waves = 0;
  std::int64_t target_tasks = 0;
  std::int64_t data_tasks = 0;
  std::int64_t host_tasks = 0;

  std::int64_t events_originated = 0;
  std::int64_t submits = 0;
  std::int64_t retrieves = 0;
  std::int64_t exchanges = 0;
  std::int64_t bytes_moved = 0;
  std::int64_t messages_sent = 0;
  double makespan_estimate_s = 0.0;  ///< HEFT's prediction (last wave)

  // Fault tolerance (§5): checkpoint cost and recovery work.
  std::int64_t checkpoints = 0;       ///< wave-boundary snapshots taken
  std::int64_t checkpoint_bytes = 0;  ///< cumulative logical snapshot volume
  std::int64_t checkpoint_dirty_bytes = 0;  ///< bytes actually snapshotted
                                            ///< (the dirty subset)
  std::int64_t checkpoint_head_bytes = 0;  ///< capture bytes through the
                                           ///< head NIC (payload retrieves +
                                           ///< snapshot-command metadata) —
                                           ///< O(metadata) under Buddy mode
  std::int64_t snapshot_replicas = 0;  ///< buddy replicas shipped
                                       ///< worker->worker at boundaries
  std::int64_t checkpoint_ns = 0;     ///< cumulative capture wall time
  std::int64_t recoveries = 0;        ///< rollback + re-execution rounds
  std::int64_t workers_lost = 0;      ///< ranks declared dead and dropped
  std::int64_t buffers_lost = 0;      ///< sole-copy buffers restored
  std::int64_t replayed_tasks = 0;    ///< tasks re-executed after rollback
  std::int64_t recovery_ns = 0;       ///< rollback + replay wall time
  std::int64_t recovery_latency_ns = 0;  ///< failure detection -> replay
                                         ///< complete, summed per episode

  // Head failover + elastic membership (replicated head state, ring
  // election, runtime join/leave). Counters survive a head handoff: the
  // promoted head adopts the replica's stats block instead of zeroing.
  std::int64_t failovers = 0;            ///< head deaths survived by election
  std::int64_t replication_updates = 0;  ///< head-state deltas shipped to the
                                         ///< shadow rank at wave boundaries
  std::int64_t replication_bytes = 0;    ///< cumulative replication payload
  std::int64_t workers_joined = 0;       ///< ranks admitted at runtime
  std::int64_t workers_retired = 0;      ///< ranks drained and released

  // Schedule memoization (paper Fig. 7b: iterative apps re-record an
  // identical DAG every step; rescheduling it is pure head overhead).
  std::int64_t schedule_cache_hits = 0;  ///< waves served from the cache

  // Persistent channels (the per-wave ChannelPlan; bench/fig5_halo gates
  // these — a steady-state run must arm and then actually re-use).
  std::int64_t channels_armed = 0;       ///< waves dispatched with the plan
                                         ///< armed (schedule-cache hits with
                                         ///< persistent_channels on)
  std::int64_t persistent_reuses = 0;    ///< device allocations re-used by
                                         ///< an armed plan instead of a
                                         ///< Delete+Alloc round-trip

  // Hot-path counters (bench/micro_hotpath asserts these, not eyeballs).
  std::int64_t threads_spawned = 0;  ///< head-side pool threads created —
                                     ///< floor at launch + demand growth,
                                     ///< 0 per steady wave
  std::int64_t payload_copies = 0;   ///< data-plane payload byte-copies
                                     ///< across the whole cluster

  // Multi-tenancy + elastic pools (aggregates of the per-tenant
  // TenantStats and the pools' own counters; refreshed at wave boundaries
  // and before launch() merges, so they survive head failover with the
  // rest of this POD block).
  std::int64_t tenants = 0;               ///< tenant queues ever opened
  std::int64_t tenant_waves = 0;          ///< waves served through them
  std::int64_t admission_rejections = 0;  ///< AdmissionError throws
  std::int64_t pool_threads_peak = 0;     ///< dispatch+transfer high water
  std::int64_t pool_threads_retired = 0;  ///< idle-shrink retirements
};

/// Builder for a target region's positional arguments: device buffers
/// (referenced by their host pointer) and serialized firstprivate scalars.
class Args {
 public:
  Args& buf(const void* host) {
    buffers_.push_back(host);
    return *this;
  }
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  Args& scalar(const T& v) {
    scalars_.put(v);
    return *this;
  }

  const std::vector<const void*>& buffers() const noexcept { return buffers_; }
  Bytes take_scalars() { return scalars_.take(); }

 private:
  std::vector<const void*> buffers_;
  ArchiveWriter scalars_;
};

class MembershipBus;

class Runtime {
 public:
  /// Constructed by launch() on the head rank; user code receives it in
  /// the head_main callback. All methods are head-control-thread-only.
  /// `bus` (optional) wires head-state replication and failover: with it,
  /// the runtime mirrors its recording state to a shadow worker at every
  /// wave boundary and, when the head rank dies, adopts the elected
  /// successor's event system and resumes from the replicated state.
  Runtime(const ClusterOptions& opts, EventSystem& events,
          MembershipBus* bus = nullptr);
  ~Runtime();

  // --- recording API ----------------------------------------------------

  /// `target enter data nowait map(to:)` (copy=false: map(alloc:)).
  void enter_data(void* host, std::size_t size, bool copy = true);

  /// `target exit data nowait map(from:)` (copy=false: map(release:)).
  void exit_data(void* host, bool copy = true);

  /// `target nowait depend(...)`: records a kernel launch. Every buffer in
  /// `args` must appear in `deps` (§4.3's documented restriction: the DM
  /// infers placement and write-intent from the dependence list).
  /// `cost_s` is the scheduler's compute estimate (0 = options default).
  int target(omp::DepList deps, offload::KernelId kernel, Args args,
             double cost_s = 0.0);

  /// A classical `task` — always executed on the head node (§4.4).
  int host_task(std::function<void()> fn, omp::DepList deps = {});

  /// The implicit barrier: schedules the recorded graph (HEFT), executes
  /// it across the cluster and returns when every task has completed.
  ///
  /// Fault tolerance (§5): when the failure detector declares a worker dead
  /// mid-wave and checkpointing is on (options().checkpoint_period > 0),
  /// this rolls all buffers back to the last wave-boundary checkpoint,
  /// re-ranks the survivors, re-schedules the lost waves with HEFT and
  /// re-executes them — then returns normally. With checkpointing off it
  /// throws RecoveryError instead of hanging.
  void wait_all();

  // --- multi-tenancy ----------------------------------------------------
  //
  // N independent DAG streams share the cluster: each tenant records waves
  // through a TenantSession (any thread), submits them into a bounded
  // per-tenant queue, and the head control thread pumps serve_tenants(),
  // which picks ready waves across tenants with weighted deficit
  // round-robin and runs each through the same engine as wait_all() — so
  // checkpointing, rollback and head failover apply to tenant waves
  // unchanged, and the wave log stays tenant-scoped (ClusterGraph::tenant
  // rides in the serialized entries).

  /// Registers a tenant queue and returns its id. `weight` scales the
  /// tenant's WDRR share (2.0 = twice the service of a weight-1.0 tenant
  /// under contention). Thread-safe.
  TenantId create_tenant(double weight = 1.0);

  /// Queues one recorded wave for `tenant`. Thread-safe; throws
  /// AdmissionError when the tenant's queue holds max_pending_waves
  /// entries (the wave is not consumed — retry or submit_wait) or when
  /// serving has stopped.
  void submit(ClusterGraph&& wave, TenantId tenant);

  /// Blocking submit: waits for queue space instead of throwing. Still
  /// throws AdmissionError if serving stops while waiting.
  void submit_wait(ClusterGraph&& wave, TenantId tenant);

  /// Head-control-thread pump: serves queued waves across tenants (WDRR)
  /// until every TenantSession has closed and all queues have drained.
  /// Create the sessions BEFORE calling this — an instant with no open
  /// session and no queued wave reads as "all tenants done". Recovery
  /// errors propagate after waking all blocked submitters/waiters.
  void serve_tenants();

  /// Blocks until every wave `tenant` submitted so far has completed (or
  /// rethrows the serve loop's failure).
  void wait_tenant(TenantId tenant);

  /// Snapshot of a tenant's counters (thread-safe copy).
  TenantStats tenant_stats(TenantId tenant) const;

  /// Folds pool/tenant aggregates into the POD stats block (head control
  /// thread; launch() calls it before merging, wave boundaries keep the
  /// replicated copy fresh).
  void refresh_derived_stats();

  // --- fault handling ---------------------------------------------------

  /// Failure-detector entry point (heartbeat ring / failure monitor
  /// threads): declares `dead` failed, aborts in-flight events touching it
  /// and arms recovery for the current/next wave. Thread-safe; idempotent.
  void report_worker_failure(mpi::Rank dead);

  /// Distinct worker failures accepted so far (thread-safe). The failure
  /// monitor uses this to widen detection once the ring has holes: a
  /// corpse's ring successor may itself be dead, leaving nobody to flag it.
  int failures_reported() const noexcept {
    return failures_reported_.load(std::memory_order_acquire);
  }

  // --- elastic membership (head control thread) -------------------------

  /// Requests that one spare rank (booted but idle; ClusterOptions::
  /// spare_workers) join the worker set. Takes effect at the next wave
  /// boundary: the joiner receives an ownership slice of the registered
  /// buffers (migrated worker->worker over the data plane), the schedule
  /// cache is invalidated so the next HEFT pass can place tasks on it, and
  /// a MembershipUpdate is broadcast. Returns the joining rank, or -1 when
  /// no spare is available.
  mpi::Rank request_join();

  /// Requests that worker `rank` leave the cluster. At the next boundary
  /// its buffers are refreshed to the head, its device heap is trimmed down
  /// to the checkpoint shadows it hosts, and the rank returns to the spare
  /// pool (schedulable again by a later request_join). Returns false when
  /// `rank` is not a live worker or is the last one.
  bool request_leave(mpi::Rank rank);

  // --- introspection ----------------------------------------------------

  /// Rank currently acting as head (changes after a failover).
  mpi::Rank head_rank() const noexcept { return head_rank_; }

  int num_workers() const noexcept { return opts_.num_workers; }
  /// Workers still alive (shrinks when recovery drops a corpse).
  int num_live_workers() const noexcept {
    return static_cast<int>(live_workers_.size());
  }
  const ClusterOptions& options() const noexcept { return opts_; }
  /// The event system currently driven — the promoted rank's after a
  /// failover (launch() shuts the cluster down through it).
  EventSystem& events() noexcept { return *events_; }
  DataManager& data_manager() noexcept { return dm_; }
  CheckpointStore& checkpoints() noexcept { return ckpt_; }
  RuntimeStats& stats() noexcept { return stats_; }

  /// The worker assignment chosen for the most recent wave (test hook).
  const ScheduleResult& last_schedule() const noexcept { return last_; }

 private:
  friend class TenantSession;

  void execute_task(const ClusterTask& t, int proc);
  void dispatch(const ClusterGraph& graph, const ScheduleResult& sched);
  /// The shared wave engine: build edges, checkpoint/log/replicate when
  /// fault tolerance is on, run with the §5 recovery loop, advance the
  /// wave index. Both the legacy wait_all() path and the tenant serve
  /// loop execute waves through here, which is what makes recovery and
  /// failover tenant-agnostic.
  void execute_wave(ClusterGraph&& wave);
  /// Schedules `graph` onto the surviving workers and dispatches it.
  void run_wave(const ClusterGraph& graph);
  /// Runs `current` (nullable) with the §5 recovery loop around it: on a
  /// worker death, rolls back to the checkpoint and replays the logged
  /// waves (all of them when `current` is null — the between-waves repair
  /// path) before retrying. `replaying` starts a replay round immediately
  /// (set when the checkpoint capture itself hit the failure).
  void run_with_recovery(const ClusterGraph* current, bool replaying);
  /// Rolls the cluster back to the last checkpoint after `dead` failed (or
  /// throws RecoveryError when recovery is impossible).
  void rollback(mpi::Rank dead);
  /// Cache key for the current wave: the graph's structural hash combined
  /// with everything else schedule() reads (policy, survivors, cost model).
  std::uint64_t schedule_cache_key(const ClusterGraph& graph) const;
  /// rollback() in a retry loop: absorbs workers that die during the
  /// rollback itself. Throws only RecoveryError.
  void recover_from(mpi::Rank dead);
  ClusterGraph fresh_graph() const;

  // --- head failover internals ------------------------------------------

  /// Ships the head recording state to the shadow rank (the first live
  /// worker): a Full resync when the shadow changed or `boundary` committed
  /// a checkpoint (the wave log was cut), an Append of the new wave blobs
  /// otherwise. Best-effort: a dying shadow is skipped this round and
  /// resynced to its successor at the next boundary.
  void replicate_head_state(bool boundary_reset);

  /// The head rank died: await the ring election on the membership bus,
  /// adopt the winner's event system and replica, re-home the DM and
  /// checkpoint store, trim survivor heaps, and roll back to the last
  /// committed wave. Throws RecoveryError when no replica holder survives
  /// or no checkpoint exists to resume from.
  void failover();

  /// Rebuilds all recording state from the elected winner's replica blob.
  void adopt_replica();

  /// After a restore that fell back to the prior checkpoint generation:
  /// splices the previous period's waves ahead of the current log so
  /// replay starts from the prior boundary.
  void absorb_degraded_restore();

  /// Post-failover heap reset: every survivor frees all device blocks
  /// except its checkpoint shadows (TrimHeap), so replay re-allocates from
  /// a clean slate that matches the adopted host-resident registry.
  void trim_worker_heaps();

  /// Broadcasts a MembershipUpdate {head, worker_count} to live workers.
  void broadcast_membership();

  /// Applies pending join/leave requests at a wave boundary.
  void process_membership_requests();

  const ClusterOptions opts_;
  EventSystem* events_;
  DataManager dm_;
  /// Persistent dispatch pool: created once per launch, reused by every
  /// wave and recovery replay. Its size is the in-flight target-region
  /// bound (one blocked job per region, like an LLVM hidden-helper
  /// thread), so HelperThreads/TwoStep semantics are unchanged — only the
  /// per-wave create/join churn is gone.
  std::unique_ptr<HelperPool> helpers_;
  ClusterGraph graph_;
  ScheduleResult last_;
  RuntimeStats stats_;

  /// Memoized schedules keyed by schedule_cache_key(): steady-state
  /// identical-graph waves skip HEFT entirely. Cleared on recovery (the
  /// live-worker set is also part of the key, so a stale entry could never
  /// match — clearing just bounds memory and makes invalidation explicit).
  std::unordered_map<std::uint64_t, ScheduleResult> schedule_cache_;

  // Fault-tolerance state (head control thread, except reported_dead_
  // which detector threads append to under fault_mutex_).
  CheckpointStore ckpt_;
  std::vector<ClusterGraph> wave_log_;     ///< waves since last checkpoint
  std::vector<mpi::Rank> live_workers_;    ///< proc index -> minimpi rank
  std::int64_t wave_index_ = 0;
  std::mutex fault_mutex_;
  std::vector<mpi::Rank> reported_dead_;   ///< detected, not yet purged
  std::atomic<bool> failure_pending_{false};
  std::atomic<int> failures_reported_{0};
  /// Start of the current recovery episode (first detection), 0 when none;
  /// run_with_recovery closes the episode when replay completes.
  std::atomic<std::int64_t> failure_detected_ns_{0};

  // Head failover + elastic membership state (head control thread only).
  mpi::Rank head_rank_ = 0;        ///< rank whose event system we drive
  std::uint64_t head_epoch_ = 0;   ///< bumps on every handoff adoption
  MembershipBus* bus_ = nullptr;
  mpi::Rank shadow_rank_ = -1;     ///< current replication target
  std::uint64_t replica_generation_ = 0;
  std::size_t replicated_waves_ = 0;  ///< wave_blobs_ prefix already shipped
  /// Serialized mirrors of wave_log_ (same indices): what replication ships
  /// and what failover replays for waves the replica missed. prev_* mirror
  /// the generation retained by the checkpoint store for degraded restores.
  std::vector<Bytes> wave_blobs_;
  std::vector<ClusterGraph> prev_wave_log_;
  std::vector<Bytes> prev_wave_blobs_;
  /// Global wave number of each wave_blobs_/prev_wave_blobs_ entry (same
  /// indices). Failover merges the replica's log with the local tail BY
  /// WAVE NUMBER: a position splice loses the current wave whenever the
  /// head dies after a boundary reset but before that wave's replication
  /// round commits (both lists then have the same length but are one
  /// boundary apart).
  std::vector<std::int64_t> wave_seqs_;
  std::vector<std::int64_t> prev_wave_seqs_;
  std::vector<mpi::Rank> spare_pool_;      ///< booted, idle, joinable ranks
  std::vector<mpi::Rank> pending_joins_;   ///< applied at the next boundary
  std::vector<mpi::Rank> pending_leaves_;

  // --- multi-tenancy state ----------------------------------------------

  struct PendingWave {
    ClusterGraph graph;
    std::int64_t submit_ns = 0;
  };
  struct TenantState {
    std::deque<PendingWave> queue;
    TenantStats stats;
    double deficit = 0.0;  ///< WDRR credit carried while waiting
    int executing = 0;     ///< popped waves not yet completed (0 or 1)
  };

  TenantState& tenant_state_locked(TenantId tenant);
  void enqueue_locked(TenantState& ts, ClusterGraph&& wave, TenantId tenant);
  /// One WDRR pick: resumes at the token holder, replenishing deficits as
  /// the token advances, until some tenant can afford its head wave.
  /// Returns false when every queue is empty.
  bool pick_wave_locked(TenantId* tenant, PendingWave* wave);
  /// Completion bookkeeping for a served wave (latency sample, queue-wait,
  /// executing--), then wakes submitters and waiters.
  void finish_tenant_wave(TenantId tenant, std::int64_t submit_ns,
                          std::int64_t start_ns);
  /// Attribution hooks called from the wave engine (head control thread).
  void note_cache_hit(TenantId tenant);
  void note_replay(TenantId tenant, std::int64_t tasks);
  /// Charges a closed recovery episode's latency to every tenant whose
  /// waves it replayed (episode_tenants_), then clears the set.
  void close_tenant_episode(std::int64_t latency_ns);

  /// Guards tenants_ and the serve flags; tenants_cv_ signals submissions,
  /// completions, session closes and serve-loop termination.
  mutable std::mutex tenants_mutex_;
  std::condition_variable tenants_cv_;
  /// Ordered map: WDRR visits tenants in id order, deterministically.
  std::map<TenantId, TenantState> tenants_;
  TenantId next_tenant_ = 1;
  TenantId wdrr_token_ = -1;  ///< tenant whose deficit the token rests on
  std::atomic<int> open_sessions_{0};
  bool serving_stopped_ = false;     ///< serve loop exited (or never ran)
  std::exception_ptr serve_error_;   ///< rethrown to blocked waiters
  /// Tenants with waves replayed in the open recovery episode (head
  /// control thread only, like the episode clock it mirrors).
  std::vector<TenantId> episode_tenants_;
};

/// Per-tenant recording surface: the same enter/exit/target/host_task API
/// as Runtime, but thread-confined to the tenant's own thread and detached
/// from the legacy single-graph state. A session validates dependences
/// against the buffers *it* entered (tenants own disjoint buffer sets —
/// host pointers are the namespace, so sharing one buffer across tenants
/// is a recording error, not a data race), and DM registration is deferred
/// to the wave's execution on the head control thread.
///
/// Lifecycle: create all sessions, spawn one submitter thread each, then
/// pump Runtime::serve_tenants() from the head control thread. close()
/// (or destruction) marks the stream finished; the serve loop exits once
/// every session has closed and the queues have drained.
class TenantSession {
 public:
  /// Opens a session for `tenant` (from Runtime::create_tenant).
  TenantSession(Runtime& rt, TenantId tenant);
  ~TenantSession();

  TenantSession(const TenantSession&) = delete;
  TenantSession& operator=(const TenantSession&) = delete;

  /// `target enter data nowait map(to:)` — recorded; the DM learns of the
  /// buffer when the wave executes.
  void enter_data(void* host, std::size_t size, bool copy = true);
  void exit_data(void* host, bool copy = true);
  int target(omp::DepList deps, offload::KernelId kernel, Args args,
             double cost_s = 0.0);
  int host_task(std::function<void()> fn, omp::DepList deps = {});

  /// Tasks recorded since the last submit.
  bool has_recorded() const noexcept { return !graph_.empty(); }

  /// Submits the recorded wave (throws AdmissionError when the tenant's
  /// queue is full — the wave stays recorded for a retry).
  void submit();
  /// Blocking variant: waits for queue space (backpressure).
  void submit_wait();

  /// Waits until every submitted wave has completed.
  void wait();

  /// Marks the stream finished (idempotent; the destructor calls it).
  /// Unsubmitted recorded tasks are discarded.
  void close();

  TenantId tenant() const noexcept { return tenant_; }

 private:
  ClusterGraph fresh() const;
  void submit_impl(bool blocking);

  Runtime* rt_;
  TenantId tenant_;
  bool closed_ = false;
  /// Buffers this session entered (host ptr -> bytes): the session-local
  /// registry that stands in for the DM at recording time.
  std::unordered_map<const void*, std::size_t> sizes_;
  /// Buffers exit_data recorded in the wave being built: still resolvable
  /// (the exit wave's own dependences name them) until the wave submits,
  /// erased from sizes_ then.
  std::vector<const void*> exited_;
  ClusterGraph graph_;
};

/// Runs `head_main` on the head rank of a freshly simulated cluster:
/// workers boot their event systems, the head records and executes waves,
/// then the cluster is shut down. Returns the head's runtime statistics.
RuntimeStats launch(const ClusterOptions& opts,
                    const std::function<void(Runtime&)>& head_main);

}  // namespace ompc::core
