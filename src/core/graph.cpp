#include "core/graph.hpp"

#include <algorithm>
#include <cstring>
#include <map>
#include <unordered_map>

#include "common/check.hpp"

namespace ompc::core {

ClusterGraph::ClusterGraph(std::function<std::size_t(const void*)> buffer_size)
    : buffer_size_(std::move(buffer_size)) {}

int ClusterGraph::add_task(ClusterTask task) {
  OMPC_CHECK_MSG(!edges_built_, "graph is frozen after build_edges()");
  const int id = static_cast<int>(tasks_.size());
  task.id = id;
  tasks_.push_back(std::move(task));
  return id;
}

void ClusterGraph::build_edges() {
  OMPC_CHECK(!edges_built_);
  edges_built_ = true;

  struct AddrState {
    int last_writer = -1;
    std::vector<int> readers_since_write;
  };
  std::unordered_map<const void*, AddrState> state;

  // De-duplicates multi-dep edges between the same task pair, keeping the
  // largest byte weight (a pair linked through two buffers transfers both,
  // but HEFT's cost model charges the critical transfer).
  std::map<std::pair<int, int>, std::size_t> edge_set;

  auto add_edge = [&](int from, int to, const void* addr) {
    if (from < 0 || from == to) return;
    const std::size_t bytes =
        (buffer_size_ && addr != nullptr) ? buffer_size_(addr) : 0;
    auto [it, inserted] = edge_set.emplace(std::make_pair(from, to), bytes);
    if (!inserted) it->second = std::max(it->second, bytes);
  };

  for (const ClusterTask& t : tasks_) {
    for (const omp::Dep& d : t.deps) {
      AddrState& st = state[d.addr];
      if (d.type == omp::DepType::In) {
        add_edge(st.last_writer, t.id, d.addr);
        st.readers_since_write.push_back(t.id);
      } else {
        add_edge(st.last_writer, t.id, d.addr);
        for (int r : st.readers_since_write) add_edge(r, t.id, d.addr);
        st.readers_since_write.clear();
        st.last_writer = t.id;
      }
    }
  }

  edges_.reserve(edge_set.size());
  for (const auto& [pair, bytes] : edge_set) {
    edges_.push_back(Edge{pair.first, pair.second, bytes});
    tasks_[static_cast<std::size_t>(pair.first)].succs.push_back(pair.second);
    tasks_[static_cast<std::size_t>(pair.second)].preds.push_back(pair.first);
  }
}

std::uint64_t ClusterGraph::structural_hash() const {
  // FNV-1a over everything the scheduler consumes. Host-pointer values
  // stand in for buffer identity: an iterative program re-using the same
  // buffers hashes identically wave after wave, which is the case worth
  // memoizing.
  std::uint64_t h = 0xcbf29ce484222325ull;
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xff;
      h *= 0x100000001b3ull;
    }
  };
  mix(tasks_.size());
  for (const ClusterTask& t : tasks_) {
    mix(static_cast<std::uint64_t>(t.type));
    mix(static_cast<std::uint64_t>(t.kernel));
    std::uint64_t cost_bits = 0;
    static_assert(sizeof cost_bits == sizeof t.cost_s);
    std::memcpy(&cost_bits, &t.cost_s, sizeof cost_bits);
    mix(cost_bits);
    mix(reinterpret_cast<std::uintptr_t>(t.buffer));
    mix(static_cast<std::uint64_t>(t.copy));
    mix(t.deps.size());
    for (const omp::Dep& d : t.deps) {
      mix(reinterpret_cast<std::uintptr_t>(d.addr));
      mix(static_cast<std::uint64_t>(d.type));
      if (buffer_size_ && d.addr != nullptr) mix(buffer_size_(d.addr));
    }
  }
  return h;
}

std::vector<int> ClusterGraph::roots() const {
  std::vector<int> out;
  for (const ClusterTask& t : tasks_) {
    if (t.preds.empty()) out.push_back(t.id);
  }
  return out;
}

std::vector<int> ClusterGraph::topological_order() const {
  std::vector<int> indegree(tasks_.size(), 0);
  for (const ClusterTask& t : tasks_)
    indegree[static_cast<std::size_t>(t.id)] = static_cast<int>(t.preds.size());

  std::vector<int> order;
  order.reserve(tasks_.size());
  std::vector<int> frontier = roots();
  while (!frontier.empty()) {
    const int id = frontier.back();
    frontier.pop_back();
    order.push_back(id);
    for (int s : tasks_[static_cast<std::size_t>(id)].succs) {
      if (--indegree[static_cast<std::size_t>(s)] == 0) frontier.push_back(s);
    }
  }
  OMPC_CHECK_MSG(order.size() == tasks_.size(),
                 "dependence graph contains a cycle");
  return order;
}

std::size_t ClusterGraph::edge_bytes(int from, int to) const {
  for (const Edge& e : edges_) {
    if (e.from == from && e.to == to) return e.bytes;
  }
  return 0;
}

HostFnRegistry& HostFnRegistry::instance() {
  static HostFnRegistry reg;
  return reg;
}

std::uint64_t HostFnRegistry::intern(std::function<void()> fn) {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::uint64_t h = next_++;
  fns_.emplace(h, std::move(fn));
  return h;
}

std::function<void()> HostFnRegistry::get(std::uint64_t handle) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = fns_.find(handle);
  OMPC_CHECK_MSG(it != fns_.end(), "unknown host-fn handle " << handle);
  return it->second;
}

Bytes serialize_graph(const ClusterGraph& g) {
  ArchiveWriter w;
  w.put<std::int32_t>(g.tenant());
  w.put<std::uint64_t>(g.size());
  for (const ClusterTask& t : g.tasks()) {
    w.put(t.type);
    w.put(t.kernel);
    w.put(t.cost_s);
    w.put<std::uint64_t>(reinterpret_cast<std::uintptr_t>(t.buffer));
    w.put<std::uint64_t>(t.buffer_bytes);
    w.put<std::uint8_t>(t.copy ? 1 : 0);
    w.put(t.host_fn_handle);
    w.put<std::uint64_t>(t.buffer_args.size());
    for (const void* b : t.buffer_args)
      w.put<std::uint64_t>(reinterpret_cast<std::uintptr_t>(b));
    w.put_blob(std::span<const std::byte>(t.scalars.data(), t.scalars.size()));
    w.put<std::uint64_t>(t.deps.size());
    for (const omp::Dep& d : t.deps) {
      w.put<std::uint64_t>(reinterpret_cast<std::uintptr_t>(d.addr));
      w.put(d.type);
    }
  }
  return w.take();
}

ClusterGraph deserialize_graph(
    std::span<const std::byte> data,
    std::function<std::size_t(const void*)> buffer_size) {
  ArchiveReader r(data);
  ClusterGraph g(std::move(buffer_size));
  g.set_tenant(r.get<std::int32_t>());
  const auto n = r.get<std::uint64_t>();
  for (std::uint64_t i = 0; i < n; ++i) {
    ClusterTask t;
    t.type = r.get<TaskType>();
    t.kernel = r.get<offload::KernelId>();
    t.cost_s = r.get<double>();
    t.buffer = reinterpret_cast<const void*>(
        static_cast<std::uintptr_t>(r.get<std::uint64_t>()));
    t.buffer_bytes = static_cast<std::size_t>(r.get<std::uint64_t>());
    t.copy = r.get<std::uint8_t>() != 0;
    t.host_fn_handle = r.get<std::uint64_t>();
    if (t.host_fn_handle != 0)
      t.host_fn = HostFnRegistry::instance().get(t.host_fn_handle);
    const auto nb = r.get<std::uint64_t>();
    t.buffer_args.reserve(nb);
    for (std::uint64_t b = 0; b < nb; ++b)
      t.buffer_args.push_back(reinterpret_cast<const void*>(
          static_cast<std::uintptr_t>(r.get<std::uint64_t>())));
    t.scalars = r.get_blob();
    const auto nd = r.get<std::uint64_t>();
    t.deps.reserve(nd);
    for (std::uint64_t d = 0; d < nd; ++d) {
      omp::Dep dep;
      dep.addr = reinterpret_cast<const void*>(
          static_cast<std::uintptr_t>(r.get<std::uint64_t>()));
      dep.type = r.get<omp::DepType>();
      t.deps.push_back(dep);
    }
    g.add_task(std::move(t));
  }
  g.build_edges();
  return g;
}

CollapsedView ClusterGraph::collapsed() const {
  CollapsedView v;
  v.view_index.assign(tasks_.size(), -1);
  for (const ClusterTask& t : tasks_) {
    if (t.type == TaskType::Target || t.type == TaskType::Host) {
      v.view_index[static_cast<std::size_t>(t.id)] =
          static_cast<int>(v.task_ids.size());
      v.task_ids.push_back(t.id);
    }
  }
  v.succs.resize(v.task_ids.size());
  v.preds.resize(v.task_ids.size());

  // Collapse chains compute -> data* -> compute into direct edges carrying
  // the max byte weight along the chain. Data-task chains are short (a
  // single data node), so a small DFS per edge suffices.
  auto is_compute = [&](int id) {
    return v.view_index[static_cast<std::size_t>(id)] >= 0;
  };

  auto add = [&](int from_view, int to_view, std::size_t bytes) {
    auto& sl = v.succs[static_cast<std::size_t>(from_view)];
    for (auto& [t, b] : sl) {
      if (t == to_view) {
        b = std::max(b, bytes);
        return;
      }
    }
    sl.emplace_back(to_view, bytes);
    v.preds[static_cast<std::size_t>(to_view)].emplace_back(from_view, bytes);
  };

  for (const Edge& e : edges_) {
    if (!is_compute(e.from)) continue;
    const int from_view = v.view_index[static_cast<std::size_t>(e.from)];
    if (is_compute(e.to)) {
      add(from_view, v.view_index[static_cast<std::size_t>(e.to)], e.bytes);
      continue;
    }
    // e.to is a data task: connect to each of its compute successors.
    for (int s : tasks_[static_cast<std::size_t>(e.to)].succs) {
      if (is_compute(s)) {
        add(from_view, v.view_index[static_cast<std::size_t>(s)],
            std::max(e.bytes, edge_bytes(e.to, s)));
      }
    }
  }
  return v;
}

}  // namespace ompc::core
