#include "core/tenant.hpp"

#include <algorithm>
#include <cmath>

namespace ompc::core {

std::int64_t TenantStats::latency_percentile_ns(double p) const {
  if (wave_latency_ns.empty()) return 0;
  std::vector<std::int64_t> sorted = wave_latency_ns;
  std::sort(sorted.begin(), sorted.end());
  p = std::clamp(p, 0.0, 100.0);
  // Nearest-rank: the smallest sample with at least p% of the mass at or
  // below it — exact for the small sample counts the soak/bench produce.
  const auto rank = static_cast<std::size_t>(
      std::ceil(p / 100.0 * static_cast<double>(sorted.size())));
  return sorted[rank == 0 ? 0 : rank - 1];
}

}  // namespace ompc::core
