#include "core/membership.hpp"

#include <algorithm>
#include <chrono>

#include "common/check.hpp"
#include "common/log.hpp"
#include "common/time.hpp"
#include "common/serialize.hpp"

namespace ompc::core {

// --- ReplicaStore --------------------------------------------------------

void ReplicaStore::apply(Update kind, std::uint64_t generation,
                         const Bytes& payload) {
  ArchiveReader r(std::span<const std::byte>(payload.data(), payload.size()));
  Bytes metadata = r.get_blob();
  std::vector<Bytes> prev;
  if (kind == Update::Full) {
    const auto np = r.get<std::uint64_t>();
    prev.reserve(np);
    for (std::uint64_t i = 0; i < np; ++i) prev.push_back(r.get_blob());
  }
  const auto nw = r.get<std::uint64_t>();
  std::vector<Bytes> waves;
  waves.reserve(nw);
  for (std::uint64_t i = 0; i < nw; ++i) waves.push_back(r.get_blob());

  std::lock_guard<std::mutex> lock(mutex_);
  switch (kind) {
    case Update::Append:
      break;
    case Update::Reset:
      state_.prev_waves = std::move(state_.waves);
      state_.waves.clear();
      break;
    case Update::Full:
      state_.prev_waves = std::move(prev);
      state_.waves.clear();
      break;
  }
  for (Bytes& w : waves) state_.waves.push_back(std::move(w));
  state_.metadata = std::move(metadata);
  state_.generation = generation;
}

ReplicaStore::Snapshot ReplicaStore::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return state_;
}

std::uint64_t ReplicaStore::generation() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return state_.generation;
}

// --- MembershipBus -------------------------------------------------------

void MembershipBus::register_node(mpi::Rank r, EventSystem* events,
                                  ReplicaStore* replica) {
  std::lock_guard<std::mutex> lock(mutex_);
  nodes_[r] = Node{events, replica};
}

MembershipBus::Node MembershipBus::node(mpi::Rank r) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = nodes_.find(r);
  OMPC_CHECK_MSG(it != nodes_.end(), "no membership node for rank " << r);
  return it->second;
}

void MembershipBus::announce_new_head(mpi::Rank r) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    head_ = r;
    ++epoch_;
  }
  cv_.notify_all();
}

std::uint64_t MembershipBus::epoch() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return epoch_;
}

mpi::Rank MembershipBus::current_head() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return head_;
}

std::optional<mpi::Rank> MembershipBus::await_new_head(
    std::uint64_t seen_epoch, std::int64_t timeout_ms) {
  std::unique_lock<std::mutex> lock(mutex_);
  const bool ok =
      cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                   [this, seen_epoch] { return epoch_ > seen_epoch; });
  if (!ok) return std::nullopt;
  return head_;
}

void MembershipBus::set_failure_handler(std::function<void(mpi::Rank)> fn) {
  std::vector<mpi::Rank> backlog;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    failure_handler_ = std::move(fn);
    backlog.swap(buffered_failures_);
  }
  // Reports that raced the adoption are replayed into the new handler.
  for (const mpi::Rank d : backlog) report_failure(d);
}

void MembershipBus::report_failure(mpi::Rank dead) {
  std::function<void(mpi::Rank)> fn;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!failure_handler_) {
      buffered_failures_.push_back(dead);
      return;
    }
    fn = failure_handler_;
  }
  fn(dead);
}

void MembershipBus::release_control() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    control_released_ = true;
  }
  cv_.notify_all();
}

void MembershipBus::await_control_release() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [this] { return control_released_; });
}

// --- MembershipAgent -----------------------------------------------------

MembershipAgent::MembershipAgent(mpi::Comm comm, Options opts,
                                 MembershipBus* bus, ReplicaStore* replica)
    : comm_(comm),
      opts_(opts),
      bus_(bus),
      replica_(replica),
      current_head_(opts.initial_head) {
  if (opts_.election_window_ms <= 0)
    opts_.election_window_ms = std::max<std::int64_t>(2 * opts_.hb.period_ms, 10);
  ring_ = std::make_unique<HeartbeatRing>(
      comm_, opts_.hb, [this](mpi::Rank dead) { on_ring_failure(dead); });
  thread_ = std::thread([this] {
    log::set_thread_label("ma" + std::to_string(comm_.rank()));
    agent_main();
  });
}

MembershipAgent::~MembershipAgent() { stop(); }

void MembershipAgent::stop() {
  bool expected = false;
  if (stop_.compare_exchange_strong(expected, true)) {
    if (ring_) ring_->stop();
    thread_.join();
  }
}

void MembershipAgent::send_word2(mpi::Rank to, mpi::Tag tag, std::uint64_t a,
                                 std::uint64_t b) {
  const std::uint64_t msg[2] = {a, b};
  comm_.send(msg, sizeof msg, to, tag);
}

void MembershipAgent::report_to_head(mpi::Rank dead) {
  const mpi::Rank head = current_head_.load(std::memory_order_acquire);
  if (head == comm_.rank()) {
    bus_->report_failure(dead);
    return;
  }
  const std::uint64_t r = static_cast<std::uint64_t>(dead);
  comm_.send(&r, sizeof r, head, kFailureReportTag);
}

void MembershipAgent::on_ring_failure(mpi::Rank dead) {
  // Runs on the heartbeat thread. The agent loop acts on the flags.
  if (dead == current_head_.load(std::memory_order_acquire)) {
    head_suspect_.store(true, std::memory_order_release);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(dead_mutex_);
    known_dead_.insert(dead);
  }
  report_to_head(dead);
}

void MembershipAgent::drain() {
  // Handoff result: adopt the new head and re-send every failure this rank
  // detected — reports aimed at the dead head vanished from the wire.
  while (const auto st = comm_.iprobe(mpi::kAnySource, kHeadHandoffTag)) {
    std::uint64_t msg[2] = {0, 0};
    comm_.recv(msg, sizeof msg, st->source, kHeadHandoffTag);
    const auto new_head = static_cast<mpi::Rank>(msg[0]);
    current_head_.store(new_head, std::memory_order_release);
    head_suspect_.store(false, std::memory_order_release);
    electing_ = false;
    candidacies_.clear();
    std::vector<mpi::Rank> dead;
    {
      std::lock_guard<std::mutex> lock(dead_mutex_);
      dead.assign(known_dead_.begin(), known_dead_.end());
    }
    for (const mpi::Rank d : dead)
      if (d != new_head) report_to_head(d);
  }
  // Candidacies: another rank noticing head death first also starts our
  // election clock.
  while (const auto st = comm_.iprobe(mpi::kAnySource, kElectionTag)) {
    std::uint64_t msg[2] = {0, 0};
    comm_.recv(msg, sizeof msg, st->source, kElectionTag);
    if (!electing_) begin_election();
    candidacies_[static_cast<mpi::Rank>(msg[0])] = msg[1];
  }
  // Failure reports land here when this rank is the acting head.
  while (const auto st = comm_.iprobe(mpi::kAnySource, kFailureReportTag)) {
    std::uint64_t dead = 0;
    comm_.recv(&dead, sizeof dead, st->source, kFailureReportTag);
    {
      std::lock_guard<std::mutex> lock(dead_mutex_);
      known_dead_.insert(static_cast<mpi::Rank>(dead));
    }
    if (current_head_.load(std::memory_order_acquire) == comm_.rank())
      bus_->report_failure(static_cast<mpi::Rank>(dead));
  }
}

void MembershipAgent::begin_election() {
  electing_ = true;
  window_end_ns_ = now_ns() + opts_.election_window_ms * 1'000'000;
  const std::uint64_t gen = replica_->generation();
  if (gen == 0) return;  // nothing to offer: listen only
  candidacies_[comm_.rank()] = gen;
  const int n = comm_.size();
  for (mpi::Rank r = 0; r < n; ++r) {
    if (r == comm_.rank()) continue;
    send_word2(r, kElectionTag, static_cast<std::uint64_t>(comm_.rank()), gen);
  }
}

void MembershipAgent::finish_election() {
  // Dead candidates (a double failure mid-election) are struck before the
  // vote is counted, so the election converges on a live winner.
  for (auto it = candidacies_.begin(); it != candidacies_.end();) {
    if (comm_.universe().is_dead(it->first)) {
      it = candidacies_.erase(it);
    } else {
      ++it;
    }
  }
  if (candidacies_.empty()) {
    // No live replica holder has spoken (yet): keep listening. The control
    // thread's await_new_head() timeout bounds this, not the agent.
    window_end_ns_ = now_ns() + opts_.election_window_ms * 1'000'000;
    return;
  }
  mpi::Rank winner = -1;
  std::uint64_t best = 0;
  for (const auto& [r, gen] : candidacies_) {
    // Strictly-greater: on the (impossible-by-construction) tie the lowest
    // rank wins, since the map iterates in rank order.
    if (gen > best) {
      best = gen;
      winner = r;
    }
  }
  if (winner != comm_.rank()) {
    // Wait for the winner's handoff; if it died meanwhile its candidacy is
    // struck next round and the election re-runs.
    window_end_ns_ = now_ns() + opts_.election_window_ms * 1'000'000;
    return;
  }
  OMPC_LOG_WARN("election: rank " << comm_.rank() << " promotes itself head"
                                  << " (replica generation " << best << ")");
  const int n = comm_.size();
  for (mpi::Rank r = 0; r < n; ++r) {
    if (r == comm_.rank()) continue;
    send_word2(r, kHeadHandoffTag, static_cast<std::uint64_t>(comm_.rank()),
               best);
  }
  current_head_.store(comm_.rank(), std::memory_order_release);
  head_suspect_.store(false, std::memory_order_release);
  electing_ = false;
  candidacies_.clear();
  bus_->announce_new_head(comm_.rank());
  // Corpses this rank knew about before promotion now report to itself.
  std::vector<mpi::Rank> dead;
  {
    std::lock_guard<std::mutex> lock(dead_mutex_);
    dead.assign(known_dead_.begin(), known_dead_.end());
  }
  for (const mpi::Rank d : dead) bus_->report_failure(d);
}

void MembershipAgent::agent_main() {
  const std::int64_t poll_ns =
      std::max<std::int64_t>(1, opts_.hb.period_ms / 2) * 1'000'000;
  while (!stop_.load(std::memory_order_acquire)) {
    drain();
    const mpi::Rank head = current_head_.load(std::memory_order_acquire);
    if (!electing_ && head != comm_.rank()) {
      // Two detectors: the ring (predecessor link) and — standing in for a
      // real transport's connection-loss notification — a liveness poll of
      // the current head, which catches head death when this rank is not
      // the head's ring successor.
      if (head_suspect_.load(std::memory_order_acquire) ||
          comm_.universe().is_dead(head)) {
        begin_election();
      }
    }
    if (electing_ && now_ns() >= window_end_ns_) finish_election();
    if (current_head_.load(std::memory_order_acquire) == comm_.rank()) {
      // Acting head: once the ring has a hole, cascade failures (a corpse
      // whose ring successor is also dead) have no reporter left — fall
      // back to universe liveness, mirroring the launch-time monitor.
      bool any_dead;
      {
        std::lock_guard<std::mutex> lock(dead_mutex_);
        any_dead = !known_dead_.empty();
      }
      if (any_dead) {
        const int n = comm_.size();
        for (mpi::Rank r = 1; r < n; ++r) {
          if (r == comm_.rank() || !comm_.universe().is_dead(r)) continue;
          bool fresh;
          {
            std::lock_guard<std::mutex> lock(dead_mutex_);
            fresh = known_dead_.insert(r).second;
          }
          if (fresh) bus_->report_failure(r);
        }
      }
    }
    precise_sleep_ns(poll_ns);
  }
}

}  // namespace ompc::core
