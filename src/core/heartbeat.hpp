// Fault-detection heartbeat ring (paper §3.1).
//
// "each node in OMPC (head node and worker nodes) has a heartbeat
//  mechanism, connected in a ring topology, which allows nodes to monitor
//  their neighbors" — the paper defers restart to future work, so this
// component implements exactly the detection half: every node pings its
// successor each period and flags its predecessor dead when pings stop
// arriving for `timeout`. Failure simulation for tests is a method
// (pause()), since ranks are threads and cannot be killed.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <thread>

#include "minimpi/mpi.hpp"

namespace ompc::core {

/// Tag (on the heartbeat communicator) a worker uses to report a detected
/// neighbour failure to the head node, which owns recovery (§5): the ring
/// detects, the head's failure monitor collects and acts.
inline constexpr mpi::Tag kFailureReportTag = 8;

class HeartbeatRing {
 public:
  struct Options {
    std::int64_t period_ms = 20;
    std::int64_t timeout_ms = 100;

    /// Adaptive miss threshold (Jacobson/Karels over inter-ping gaps):
    /// threshold = mean + dev_factor * dev + period, clamped to
    /// [min_timeout_ms, timeout_ms]. Off by default — the fixed timeout
    /// above applies — so direct-ring users see unchanged behaviour.
    bool adaptive = false;
    std::int64_t min_timeout_ms = 0;  ///< 0 = auto (4 * period)
    int dev_factor = 6;

    /// Confirm a miss against universe-level liveness before declaring the
    /// predecessor dead (stands in for a real transport's connection-state
    /// notification): a starved ring thread then reads as a false alarm
    /// that widens the adaptive threshold instead of triggering recovery —
    /// or, far worse, a head-death election against a live head. Off only
    /// for tests that exercise the pure ring protocol via pause().
    bool verify_liveness = true;
  };

  /// `comm` must be dedicated to the ring (dup() one). `on_failure` is
  /// invoked at most once, from the heartbeat thread, with the rank of the
  /// dead predecessor.
  HeartbeatRing(mpi::Comm comm, Options opts,
                std::function<void(mpi::Rank)> on_failure);
  ~HeartbeatRing();

  HeartbeatRing(const HeartbeatRing&) = delete;
  HeartbeatRing& operator=(const HeartbeatRing&) = delete;

  void stop();

  /// Simulates this node going silent (its successor will flag it).
  void pause() { paused_.store(true, std::memory_order_relaxed); }
  void resume() { paused_.store(false, std::memory_order_relaxed); }

  /// Whether the predecessor has been declared dead.
  bool predecessor_failed() const {
    return failed_.load(std::memory_order_relaxed);
  }

  mpi::Rank predecessor() const noexcept { return prev_; }
  mpi::Rank successor() const noexcept { return next_; }

  /// The miss threshold currently in force, in ns (test hook; the fixed
  /// timeout unless adaptive estimation has tightened it).
  std::int64_t current_threshold_ns() const {
    return threshold_ns_.load(std::memory_order_relaxed);
  }

 private:
  void ring_main();

  mpi::Comm comm_;
  Options opts_;
  std::function<void(mpi::Rank)> on_failure_;
  mpi::Rank prev_ = 0;
  mpi::Rank next_ = 0;

  std::atomic<bool> stop_{false};
  std::atomic<bool> paused_{false};
  std::atomic<bool> failed_{false};
  std::atomic<std::int64_t> threshold_ns_{0};
  std::thread thread_;
};

}  // namespace ompc::core
