#include "core/event_system.hpp"

#include <chrono>
#include <cstdlib>
#include <cstring>

#include "common/check.hpp"
#include "core/fault.hpp"
#include "core/membership.hpp"
#include "common/log.hpp"
#include "common/time.hpp"

namespace ompc::core {

const char* to_string(EventKind k) {
  switch (k) {
    case EventKind::Alloc: return "Alloc";
    case EventKind::Delete: return "Delete";
    case EventKind::Submit: return "Submit";
    case EventKind::Retrieve: return "Retrieve";
    case EventKind::ExchangeSend: return "ExchangeSend";
    case EventKind::ExchangeRecv: return "ExchangeRecv";
    case EventKind::Execute: return "Execute";
    case EventKind::Shutdown: return "Shutdown";
    case EventKind::RankDead: return "RankDead";
    case EventKind::SnapshotSave: return "SnapshotSave";
    case EventKind::SnapshotDrop: return "SnapshotDrop";
    case EventKind::SnapshotFetch: return "SnapshotFetch";
    case EventKind::RmaPut: return "RmaPut";
    case EventKind::HeadState: return "HeadState";
    case EventKind::TrimHeap: return "TrimHeap";
    case EventKind::MembershipUpdate: return "MembershipUpdate";
  }
  return "?";
}

// --- WorkerMemory --------------------------------------------------------

WorkerMemory::~WorkerMemory() {
  if (universe_ == nullptr) return;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [tp, blk] : live_) {
    (void)blk;
    universe_->windows().destroy(rank_, tp);
  }
}

offload::TargetPtr WorkerMemory::alloc(std::size_t size) {
  const std::size_t n = size == 0 ? 1 : size;
  std::shared_ptr<std::byte[]> mem(new std::byte[n]);
  const auto tp = reinterpret_cast<offload::TargetPtr>(mem.get());
  {
    std::lock_guard<std::mutex> lock(mutex_);
    live_.emplace(tp, Block{std::move(mem), n});
  }
  // Eager window registration: every live block is a put/get target under
  // its own address, so a producer can write a consumer's block without
  // any per-transfer registration handshake.
  if (universe_ != nullptr) register_window(tp);
  return tp;
}

void WorkerMemory::free(offload::TargetPtr ptr) {
  OMPC_CHECK_MSG(try_free(ptr), "worker double free of device ptr " << ptr);
}

bool WorkerMemory::try_free(offload::TargetPtr ptr) {
  // The block must stay alive until the window is gone: destroy() excludes
  // in-flight landing copies (WindowRegistry fills under its lock), so a
  // put racing the free either lands before the teardown or is dropped at
  // delivery (and still acked) — never written into freed memory. Hence
  // the entry is moved out of the map first and its bytes released only
  // after destroy() returns; in-flight payloads that share the block keep
  // it alive longer still.
  Block doomed;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = live_.find(ptr);
    if (it == live_.end()) return false;
    doomed = std::move(it->second);
    live_.erase(it);
  }
  if (universe_ != nullptr) universe_->windows().destroy(rank_, ptr);
  return true;
}

void WorkerMemory::register_window(offload::TargetPtr ptr) {
  std::size_t n = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = live_.find(ptr);
    OMPC_CHECK_MSG(it != live_.end(), "window for unknown device ptr " << ptr);
    n = it->second.size;
  }
  universe_->windows().create(rank_, ptr, reinterpret_cast<void*>(ptr), n);
}

std::shared_ptr<const void> WorkerMemory::pin(offload::TargetPtr ptr) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = live_.find(ptr);
  OMPC_CHECK_MSG(it != live_.end(), "pin of unknown device ptr " << ptr);
  return std::shared_ptr<const void>(it->second.mem, it->second.mem.get());
}

mpi::Payload WorkerMemory::share(offload::TargetPtr ptr,
                                 std::size_t size) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = live_.find(ptr);
  OMPC_CHECK_MSG(it != live_.end(), "share of unknown device ptr " << ptr);
  OMPC_CHECK_MSG(size <= it->second.size,
                 "share of " << size << " B exceeds allocation of "
                             << it->second.size << " B");
  return mpi::Payload::share(
      std::shared_ptr<const void>(it->second.mem, it->second.mem.get()),
      reinterpret_cast<const void*>(ptr), size);
}

offload::TargetPtr WorkerMemory::snapshot(offload::TargetPtr src,
                                          std::size_t size) {
  std::unique_lock<std::mutex> lock(mutex_);
  const auto it = live_.find(src);
  OMPC_CHECK_MSG(it != live_.end(), "snapshot of unknown device ptr " << src);
  OMPC_CHECK_MSG(size <= it->second.size,
                 "snapshot of " << size << " B exceeds allocation of "
                                << it->second.size << " B");
  const std::size_t n = size == 0 ? 1 : size;
  std::shared_ptr<std::byte[]> mem(new std::byte[n]);
  std::memcpy(mem.get(), it->second.mem.get(), size);
  const auto tp = reinterpret_cast<offload::TargetPtr>(mem.get());
  live_.emplace(tp, Block{std::move(mem), n});
  lock.unlock();
  if (universe_ != nullptr) register_window(tp);
  return tp;
}

void WorkerMemory::retain_only(const std::vector<offload::TargetPtr>& keep) {
  const std::unordered_set<offload::TargetPtr> ks(keep.begin(), keep.end());
  std::vector<offload::TargetPtr> victims;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [tp, blk] : live_) {
      (void)blk;
      if (ks.count(tp) == 0) victims.push_back(tp);
    }
  }
  for (const offload::TargetPtr tp : victims) free(tp);
}

std::size_t WorkerMemory::live() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return live_.size();
}

// --- OriginEvent ---------------------------------------------------------

const Bytes& OriginEvent::wait() {
  // Inbound payload (Retrieve) completes before the completion notification
  // is meaningful; wait for it first. fail() force-completes it, so this
  // cannot block past a failure.
  if (data_request_.valid()) {
    try {
      data_request_.wait();
    } catch (const mpi::RankKilledError& e) {
      throw WorkerDiedError(e.rank());
    }
  }
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [this] { return done_; });
  if (failed_rank_ >= 0) throw WorkerDiedError(failed_rank_);
  return result_;
}

bool OriginEvent::done() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return done_;
}

void OriginEvent::complete(Bytes result) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (done_) return;  // completion raced a failure; failure already won
    result_ = std::move(result);
    done_ = true;
  }
  cv_.notify_all();
}

void OriginEvent::fail(mpi::Rank dead) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (done_) return;  // the completion beat the failure: data is valid
    failed_rank_ = dead;
    done_ = true;
  }
  // Unblock a waiter parked on the inbound payload (Retrieve): the payload
  // will never arrive from a dead worker.
  if (data_request_.valid()) data_request_.state()->kill(dead);
  cv_.notify_all();
}

// --- EventSystem ---------------------------------------------------------

EventSystem::EventSystem(mpi::RankContext& ctx, const ClusterOptions& opts,
                         WorkerMemory* memory, omp::TaskRuntime* exec_pool,
                         ReplicaStore* replica)
    : opts_(opts),
      rank_(ctx.rank()),
      control_(ctx.comm(0)),
      memory_(memory),
      exec_pool_(exec_pool),
      replica_(replica) {
  OMPC_CHECK_MSG(ctx.universe().options().comms >= 1 + opts.vci,
                 "universe must pre-create 1 control + vci data comms");
  OMPC_CHECK_MSG(rank_ < kMaxChannelRanks,
                 "rank " << rank_ << " exceeds the channel-tag stripe count "
                         << kMaxChannelRanks);
  next_channel_tag_.store(kChannelTagBase + rank_ * kChannelTagsPerRank,
                          std::memory_order_relaxed);
  data_comms_.reserve(static_cast<std::size_t>(opts.vci));
  for (int i = 0; i < opts.vci; ++i)
    data_comms_.push_back(ctx.comm(1 + i));

  handlers_.reserve(static_cast<std::size_t>(opts.handler_threads));
  for (int i = 0; i < opts.handler_threads; ++i) {
    handlers_.emplace_back([this, i] {
      log::set_thread_label("r" + std::to_string(rank_) + "/eh" +
                            std::to_string(i));
      handler_main(i);
    });
  }
  gate_ = std::thread([this] {
    log::set_thread_label("r" + std::to_string(rank_) + "/gate");
    gate_main();
  });
}

EventSystem::~EventSystem() {
  // Normal paths stop via shutdown_cluster() / the Shutdown event. If the
  // owner destroys us without that (error unwind), stop locally so threads
  // join; the gate may be blocked on probe, so poke it with a self-message.
  if (!stopped()) {
    EventAnnounce bye;
    bye.kind = EventKind::Shutdown;
    bye.origin = rank_;
    control_.isend_bytes(bye.serialize(), rank_, kTagNewEvent);
  }
  gate_.join();
  for (auto& h : handlers_) h.join();
}

mpi::Comm EventSystem::data_comm_for(mpi::Tag tag) const {
  return data_comms_[static_cast<std::size_t>(tag) %
                     data_comms_.size()];
}

mpi::Tag EventSystem::allocate_tag() {
  mpi::Tag t = next_tag_.fetch_add(1, std::memory_order_relaxed);
  OMPC_CHECK_MSG(t < kChannelTagBase, "event tag space exhausted");
  return t;
}

mpi::Tag EventSystem::allocate_channel_tag() {
  const mpi::Tag t = next_channel_tag_.fetch_add(1, std::memory_order_relaxed);
  OMPC_CHECK_MSG(t < kChannelTagBase + (rank_ + 1) * kChannelTagsPerRank,
                 "channel tag space exhausted for rank " << rank_);
  return t;
}

void EventSystem::send_data(mpi::Rank dest, mpi::Tag tag,
                            mpi::Payload payload) {
  data_comm_for(tag).isend_payload(std::move(payload), dest, tag);
}

OriginEventPtr EventSystem::start(mpi::Rank dest, EventKind kind, Bytes header,
                                  mpi::Payload payload, mpi::Rank peer) {
  const mpi::Tag tag = allocate_tag();
  auto ev = std::make_shared<OriginEvent>(tag, kind, dest, peer);
  {
    std::lock_guard<std::mutex> lock(origin_mutex_);
    if (dead_ranks_.count(dest) != 0) throw WorkerDiedError(dest);
    if (peer >= 0 && dead_ranks_.count(peer) != 0) throw WorkerDiedError(peer);
    // Fail fast on a corpse the heartbeat has not flagged yet — the
    // simulated analogue of MPI erroring on a send to a crashed peer.
    // Without this, an event started in the window between death and ring
    // detection (or after detection was shut down) would block forever.
    if (control_.universe().is_dead(dest)) throw WorkerDiedError(dest);
    if (peer >= 0 && control_.universe().is_dead(peer))
      throw WorkerDiedError(peer);
    // Self check last: a killed rank's sends vanish silently, so an event
    // started from a corpse would block forever. This matters during head
    // failover — the control thread survives kill_rank(head) and must fail
    // fast on the old head's event system rather than hang in wait().
    if (control_.universe().is_dead(rank_)) throw WorkerDiedError(rank_);
    origin_events_.emplace(tag, ev);
  }
  stats_.originated.fetch_add(1, std::memory_order_relaxed);

  // Eager payload first (Submit): it travels on the event's data comm with
  // the event tag; the destination's irecv will match it whenever it lands.
  if (!payload.empty())
    data_comm_for(tag).isend_payload(std::move(payload), dest, tag);

  EventAnnounce a;
  a.kind = kind;
  a.tag = tag;
  a.origin = rank_;
  a.header = std::move(header);
  control_.isend_bytes(a.serialize(), dest, kTagNewEvent);
  return ev;
}

OriginEventPtr EventSystem::start_retrieve(mpi::Rank dest,
                                           offload::TargetPtr src,
                                           void* dst_host, std::size_t size,
                                           EventKind kind) {
  // Self check before posting anything: a poisoned mailbox kills posted
  // receives, and a corpse's notification would vanish anyway.
  if (control_.universe().is_dead(rank_)) throw WorkerDiedError(rank_);
  const mpi::Tag tag = allocate_tag();
  auto ev = std::make_shared<OriginEvent>(tag, kind, dest);
  // Post the landing buffer before the worker can possibly send.
  ev->data_request_ = data_comm_for(tag).irecv(dst_host, size, dest, tag);
  {
    std::lock_guard<std::mutex> lock(origin_mutex_);
    if (dead_ranks_.count(dest) != 0 || control_.universe().is_dead(dest)) {
      // Unpost the landing buffer before unwinding, or a stale payload
      // could later land in memory the caller has moved on from.
      control_.cancel(ev->data_request_);
      throw WorkerDiedError(dest);
    }
    origin_events_.emplace(tag, ev);
  }
  stats_.originated.fetch_add(1, std::memory_order_relaxed);

  ArchiveWriter w;
  w.put(RetrieveHeader{src, size});
  EventAnnounce a;
  a.kind = kind;
  a.tag = tag;
  a.origin = rank_;
  a.header = w.take();
  control_.isend_bytes(a.serialize(), dest, kTagNewEvent);
  return ev;
}

Bytes EventSystem::run(mpi::Rank dest, EventKind kind, Bytes header,
                       mpi::Payload payload) {
  return start(dest, kind, std::move(header), std::move(payload))->wait();
}

void EventSystem::fail_local() {
  std::vector<OriginEventPtr> victims;
  {
    std::lock_guard<std::mutex> lock(origin_mutex_);
    dead_ranks_.insert(rank_);
    victims.reserve(origin_events_.size());
    for (auto& [tag, ev] : origin_events_) {
      (void)tag;
      victims.push_back(std::move(ev));
    }
    origin_events_.clear();
  }
  origin_cv_.notify_all();
  // No cancel here: the poison that killed this rank already killed its
  // posted receives; fail() force-completes any landing-buffer request.
  for (auto& ev : victims) ev->fail(rank_);
}

void EventSystem::fail_rank(mpi::Rank dead) {
  std::vector<OriginEventPtr> victims;
  {
    std::lock_guard<std::mutex> lock(origin_mutex_);
    if (!dead_ranks_.insert(dead).second) return;  // already declared
    for (auto it = origin_events_.begin(); it != origin_events_.end();) {
      if (it->second->dest() == dead || it->second->peer() == dead) {
        victims.push_back(std::move(it->second));
        it = origin_events_.erase(it);
      } else {
        ++it;
      }
    }
  }
  origin_cv_.notify_all();
  for (auto& ev : victims) {
    // Unpost a pending Retrieve landing buffer first: an in-flight payload
    // (sent before the death) arriving after recovery restored that host
    // buffer must not overwrite the rolled-back contents.
    control_.cancel(ev->data_request_);
    ev->fail(dead);
  }
}

void EventSystem::announce_rank_dead(mpi::Rank dead) {
  // Raw control sends, like the shutdown self-poke: RankDead carries no
  // completion (tag 0), so no origin event is registered.
  ArchiveWriter w;
  w.put(RankDeadHeader{dead});
  EventAnnounce a;
  a.kind = EventKind::RankDead;
  a.tag = 0;
  a.origin = rank_;
  a.header = w.take();
  const Bytes msg = a.serialize();
  const int n = control_.size();
  for (mpi::Rank r = 0; r < n; ++r) {
    if (r == rank_ || is_rank_dead(r)) continue;
    control_.isend_bytes(Bytes(msg), r, kTagNewEvent);
  }
}

bool EventSystem::is_rank_dead(mpi::Rank r) const {
  std::lock_guard<std::mutex> lock(origin_mutex_);
  return dead_ranks_.count(r) != 0;
}

bool EventSystem::is_rank_gone(mpi::Rank r) const {
  return is_rank_dead(r) || control_.universe().is_dead(r);
}

void EventSystem::quiesce() {
  std::unique_lock<std::mutex> lock(origin_mutex_);
  const bool drained = origin_cv_.wait_for(
      lock, std::chrono::seconds(30), [this] { return origin_events_.empty(); });
  OMPC_CHECK_MSG(drained, "quiesce timed out with "
                              << origin_events_.size()
                              << " origin events outstanding");
}

void EventSystem::shutdown_cluster() {
  // Stop each live worker (acknowledged via the normal completion path),
  // then unblock the local gate with a self-shutdown.
  std::vector<OriginEventPtr> acks;
  const int n = control_.size();
  for (mpi::Rank w = 0; w < n; ++w) {
    if (w == rank_ || is_rank_dead(w) || control_.universe().is_dead(w))
      continue;
    acks.push_back(start(w, EventKind::Shutdown, {}));
  }
  // Poll rather than block: a rank can die mid-handshake, after every
  // failure detector has already been stopped — its ack will never come,
  // and nobody is left to fail the event. Liveness comes straight from the
  // universe here (an abandoned shutdown ack needs no recovery).
  for (auto& ev : acks) {
    while (!ev->done()) {
      if (control_.universe().is_dead(ev->dest())) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }

  EventAnnounce bye;
  bye.kind = EventKind::Shutdown;
  bye.origin = rank_;
  bye.tag = 0;
  control_.isend_bytes(bye.serialize(), rank_, kTagNewEvent);
  wait_until_stopped();
}

void EventSystem::wait_until_stopped() {
  std::unique_lock<std::mutex> lock(stopped_mutex_);
  stopped_cv_.wait(lock, [this] { return stop_.load(); });
}

void EventSystem::stop_local() {
  stop_.store(true, std::memory_order_release);
  queue_cv_.notify_all();
  {
    std::lock_guard<std::mutex> lock(stopped_mutex_);
  }
  stopped_cv_.notify_all();
}

void EventSystem::enqueue_remote(RemoteEvent&& ev) {
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    queue_.push_back(std::move(ev));
  }
  queue_cv_.notify_one();
}

void EventSystem::gate_main() {
  try {
    for (;;) {
      const mpi::Status st = control_.probe(mpi::kAnySource, mpi::kAnyTag);
      const Bytes msg = control_.recv_bytes(st.source, st.tag);
      if (st.tag == kTagNewEvent) {
        EventAnnounce a = EventAnnounce::deserialize(msg);
        if (a.kind == EventKind::Shutdown) {
          // Ack remote shutdowns so the head's wait completes; a tag of 0
          // marks the local self-poke, which needs no ack.
          if (a.origin != rank_ || a.tag != 0) {
            send_completion(a.origin, a.tag, {});
          }
          stop_local();
          return;
        }
        if (a.kind == EventKind::RankDead) {
          ArchiveReader r(a.header);
          const auto h = r.get<RankDeadHeader>();
          {
            std::lock_guard<std::mutex> lock(origin_mutex_);
            dead_ranks_.insert(h.rank);
          }
          // Any cached channel shape may involve the corpse, and the head
          // retires every channel tag on recovery anyway: drop the cache
          // wholesale so no pre-posted slot outlives the failure.
          clear_channels();
          // Re-queue events already parked on pending I/O so handlers
          // re-evaluate them against the updated dead set promptly.
          queue_cv_.notify_all();
          continue;
        }
        RemoteEvent ev;
        ev.announce = std::move(a);
        enqueue_remote(std::move(ev));
      } else if (st.tag == kTagComplete) {
        EventCompletion c = EventCompletion::deserialize(msg);
        OriginEventPtr ev;
        {
          std::lock_guard<std::mutex> lock(origin_mutex_);
          auto it = origin_events_.find(c.tag);
          if (it == origin_events_.end()) {
            // A completion can outlive its event: fail_rank() already
            // failed it, or a worker aborted an exchange half whose origin
            // gave up. Late completions are dropped, not protocol errors.
            OMPC_LOG_WARN("dropping late completion for event tag " << c.tag);
            continue;
          }
          ev = std::move(it->second);
          origin_events_.erase(it);
        }
        origin_cv_.notify_all();
        ev->complete(std::move(c.result));
      } else {
        OMPC_CHECK_MSG(false, "unexpected control tag " << st.tag);
      }
    }
  } catch (const mpi::RankKilledError&) {
    // This rank was killed by fault injection: fail every outstanding
    // origin event (their completions can never arrive through a poisoned
    // mailbox), then unwind the gate and release the rank's main thread so
    // the universe can join it.
    fail_local();
    stop_local();
  }
}

void EventSystem::handler_main(int /*index*/) {
  for (;;) {
    RemoteEvent ev;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [this] { return stop_.load() || !queue_.empty(); });
      if (queue_.empty()) return;  // stop and drained
      ev = std::move(queue_.front());
      queue_.pop_front();
    }
    bool finished = true;
    bool died = false;
    // The active counter is held only while inside progress() so a parked
    // event backing off does not starve TrimHeap's only-active-event gate.
    active_events_.fetch_add(1, std::memory_order_acq_rel);
    try {
      finished = progress(ev);
    } catch (const mpi::RankKilledError&) {
      // This rank died while executing the event; abandon it and keep
      // draining so the queue empties and the handler can exit at stop.
      died = true;
    }
    active_events_.fetch_sub(1, std::memory_order_acq_rel);
    if (died) continue;
    if (finished) {
      stats_.handled.fetch_add(1, std::memory_order_relaxed);
    } else {
      // Pending I/O: back off with a real OS sleep so a lone pending event
      // doesn't turn the handler pool into a spin storm (precise_sleep
      // would spin for a wait this short), then requeue (step 5b, Fig 3).
      // 200 us of poll granularity is noise against millisecond transfers.
      stats_.reenqueued.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::sleep_for(std::chrono::microseconds(200));
      enqueue_remote(std::move(ev));
    }
  }
}

void EventSystem::send_completion(mpi::Rank to, mpi::Tag tag, Bytes result) {
  EventCompletion c;
  c.tag = tag;
  c.result = std::move(result);
  control_.isend_bytes(c.serialize(), to, kTagComplete);
}

// --- persistent channels -------------------------------------------------

std::shared_ptr<EventSystem::PutChannel> EventSystem::arm_put_channel(
    const RmaPutHeader& h, mpi::Tag tag) {
  const PutKey key{h.peer, h.win, h.offset, h.src, h.size};
  std::shared_ptr<PutChannel> ch;
  {
    std::lock_guard<std::mutex> lock(channel_mutex_);
    const auto it = put_channels_.find(key);
    if (it != put_channels_.end()) {
      if (it->second->in_use) return nullptr;  // same shape twice in flight
      ch = it->second;
      ch->in_use = true;
    }
  }
  if (ch == nullptr) {
    // Build outside the lock: put_init pre-resolves the peer's window. The
    // pin keeps the source block alive across cycles AND keeps its address
    // unique — the allocator cannot reuse it while the channel exists.
    try {
      auto keepalive = memory_->pin(h.src);
      auto pr = data_comm_for(tag).put_init(
          h.peer, h.win, h.offset, reinterpret_cast<const void*>(h.src),
          h.size, std::move(keepalive), tag);
      ch = std::make_shared<PutChannel>();
      ch->pr = std::move(pr);
      ch->in_use = true;
      std::lock_guard<std::mutex> lock(channel_mutex_);
      // A raced twin just means our entry goes uncached (used once).
      put_channels_.emplace(key, ch);
    } catch (...) {
      return nullptr;  // window gone / block gone: transient put handles it
    }
  }
  try {
    ch->pr.start();
  } catch (...) {
    // Sticky kill (peer died between cycles) or an arm failure: retire the
    // channel and let the transient path resolve this event's outcome.
    std::lock_guard<std::mutex> lock(channel_mutex_);
    const auto it = put_channels_.find(key);
    if (it != put_channels_.end() && it->second == ch) put_channels_.erase(it);
    ch->in_use = false;
    return nullptr;
  }
  return ch;
}

std::shared_ptr<EventSystem::RecvChannel> EventSystem::arm_recv_channel(
    mpi::Tag data_tag, offload::TargetPtr dst, std::uint64_t size,
    mpi::Rank peer) {
  std::shared_ptr<RecvChannel> ch;
  {
    std::lock_guard<std::mutex> lock(channel_mutex_);
    const auto it = recv_channels_.find(data_tag);
    if (it != recv_channels_.end()) {
      RecvChannel& e = *it->second;
      if (e.in_use) return nullptr;
      if (e.dst == dst && e.size == size && e.peer == peer) {
        ch = it->second;
        ch->in_use = true;
      } else {
        // The destination block moved (realloc after a disarm): rebuild.
        recv_channels_.erase(it);
      }
    }
  }
  if (ch == nullptr) {
    try {
      ch = std::make_shared<RecvChannel>();
      ch->dst = dst;
      ch->size = size;
      ch->peer = peer;
      ch->pr = data_comm_for(data_tag).recv_init(
          reinterpret_cast<void*>(dst), size, peer, data_tag);
      ch->in_use = true;
      std::lock_guard<std::mutex> lock(channel_mutex_);
      recv_channels_[data_tag] = ch;
    } catch (...) {
      return nullptr;
    }
  }
  try {
    ch->pr.start();
  } catch (...) {
    // Peer already dead (RankKilledError): fall back to the transient
    // irecv, whose dead-peer abort path acks the event.
    std::lock_guard<std::mutex> lock(channel_mutex_);
    const auto it = recv_channels_.find(data_tag);
    if (it != recv_channels_.end() && it->second == ch)
      recv_channels_.erase(it);
    ch->in_use = false;
    return nullptr;
  }
  return ch;
}

void EventSystem::evict_channels_for(offload::TargetPtr p) {
  std::lock_guard<std::mutex> lock(channel_mutex_);
  for (auto it = put_channels_.begin(); it != put_channels_.end();) {
    if (std::get<3>(it->first) == p)
      it = put_channels_.erase(it);
    else
      ++it;
  }
  for (auto it = recv_channels_.begin(); it != recv_channels_.end();) {
    if (it->second->dst == p)
      it = recv_channels_.erase(it);
    else
      ++it;
  }
}

void EventSystem::clear_channels() {
  std::lock_guard<std::mutex> lock(channel_mutex_);
  put_channels_.clear();
  recv_channels_.clear();
}

bool EventSystem::progress(RemoteEvent& ev) {
  const EventAnnounce& a = ev.announce;
  ArchiveReader header(a.header);
  switch (a.kind) {
    case EventKind::Alloc: {
      const auto h = header.get<AllocHeader>();
      OMPC_CHECK(memory_ != nullptr);
      const offload::TargetPtr p = memory_->alloc(h.size);
      ArchiveWriter w;
      w.put(p);
      send_completion(a.origin, a.tag, w.take());
      return true;
    }
    case EventKind::Delete: {
      const auto h = header.get<DeleteHeader>();
      OMPC_CHECK(memory_ != nullptr);
      // Channels reading or landing in the doomed block die with it (their
      // pins release once no cycle is in flight).
      evict_channels_for(h.ptr);
      memory_->free(h.ptr);
      send_completion(a.origin, a.tag, {});
      return true;
    }
    case EventKind::Submit: {
      const auto h = header.get<SubmitHeader>();
      if (ev.phase == 0) {
        if (opts_.persistent_channels && h.data_tag >= kChannelTagBase) {
          ev.recv_channel =
              arm_recv_channel(h.data_tag, h.dst, h.size, a.origin);
          if (ev.recv_channel != nullptr) ev.phase = 2;
        }
        if (ev.phase == 0) {
          // Transient slot; a non-zero data_tag still names the payload's
          // wire tag (the origin armed, we could not).
          const mpi::Tag t = h.data_tag != 0 ? h.data_tag : a.tag;
          ev.io = data_comm_for(t).irecv(reinterpret_cast<void*>(h.dst),
                                         h.size, a.origin, t);
          ev.phase = 1;
        }
      }
      if (ev.phase == 2) {
        try {
          if (!ev.recv_channel->pr.test()) return false;
        } catch (const mpi::RankKilledError& e) {
          if (e.rank() == rank_) throw;
          // The origin died with the cycle armed: the mailbox failed the
          // pre-posted slot (never a zombie). Retire the channel and ack;
          // the promoted head drops this completion as late.
          std::lock_guard<std::mutex> lock(channel_mutex_);
          const auto it = recv_channels_.find(h.data_tag);
          if (it != recv_channels_.end() && it->second == ev.recv_channel)
            recv_channels_.erase(it);
        }
        {
          std::lock_guard<std::mutex> lock(channel_mutex_);
          ev.recv_channel->in_use = false;
        }
        ev.recv_channel.reset();
      } else {
        if (!ev.io.test()) return false;
      }
      send_completion(a.origin, a.tag, {});
      return true;
    }
    case EventKind::Retrieve:
    case EventKind::SnapshotFetch: {
      const auto h = header.get<RetrieveHeader>();
      OMPC_CHECK(memory_ != nullptr);
      // Zero-copy: the payload shares the device block (pinned even across
      // a later Delete); the head's posted irecv is the only copy.
      data_comm_for(a.tag).isend_payload(memory_->share(h.src, h.size),
                                         a.origin, a.tag);
      send_completion(a.origin, a.tag, {});
      return true;
    }
    case EventKind::SnapshotSave: {
      const auto h = header.get<SnapshotSaveHeader>();
      OMPC_CHECK(memory_ != nullptr);
      offload::TargetPtr shadow = 0;
      if (opts_.data_plane == DataPlane::Rma) {
        // Allocate the shadow (auto-registered as a window) and fill it
        // with a rank-local self-put: the same one-sided path the
        // cross-rank transfers use, delivered inline since src == dst.
        shadow = memory_->alloc(h.size);
        data_comm_for(a.tag)
            .put(rank_, shadow, 0, memory_->share(h.src, h.size),
                 kTagSnapshotPut)
            .wait();
      } else {
        shadow = memory_->snapshot(h.src, h.size);
      }
      ArchiveWriter w;
      w.put(shadow);
      send_completion(a.origin, a.tag, w.take());
      return true;
    }
    case EventKind::SnapshotDrop: {
      const auto h = header.get<SnapshotDropHeader>();
      OMPC_CHECK(memory_ != nullptr);
      // Tolerant: a head promoted from a one-boundary-stale replica may
      // drop shadows this rank released under the old head (orphan sweeps
      // after the generation the replica never saw). Ack the no-op.
      if (!memory_->try_free(h.ptr))
        OMPC_LOG_DEBUG("snapshot drop of unknown shadow "
                       << h.ptr << " (stale post-failover state) ignored");
      send_completion(a.origin, a.tag, {});
      return true;
    }
    case EventKind::RmaPut: {
      const auto h = header.get<RmaPutHeader>();
      OMPC_CHECK(memory_ != nullptr);
      if (ev.phase == 0) {
        if (opts_.persistent_channels) {
          // Steady-state fast path: a re-armed put into the pre-resolved
          // window — no fresh request state, no re-registration.
          ev.put_channel = arm_put_channel(h, a.tag);
          if (ev.put_channel != nullptr) ev.phase = 2;
        }
        if (ev.phase == 0) {
          // One-sided forward: put straight into the peer's registered
          // block. The payload shares our device memory (zero-copy
          // source); the request completes when the peer acked the
          // landing.
          ev.io = data_comm_for(a.tag).put(
              h.peer, h.win, h.offset, memory_->share(h.src, h.size), a.tag);
          ev.phase = 1;
        }
      }
      try {
        if (ev.phase == 2) {
          if (!ev.put_channel->pr.test()) return false;
        } else {
          if (!ev.io.test()) return false;
        }
      } catch (const mpi::RankKilledError& e) {
        // The peer died mid-put (our own death rethrows to handler_main).
        // Ack anyway so this event drains; the head has already failed the
        // origin half, which drops this completion as late.
        if (e.rank() == rank_) throw;
        if (ev.phase == 2) {
          std::lock_guard<std::mutex> lock(channel_mutex_);
          const PutKey key{h.peer, h.win, h.offset, h.src, h.size};
          const auto it = put_channels_.find(key);
          if (it != put_channels_.end() && it->second == ev.put_channel)
            put_channels_.erase(it);
        }
      }
      if (ev.put_channel != nullptr) {
        std::lock_guard<std::mutex> lock(channel_mutex_);
        ev.put_channel->in_use = false;
        ev.put_channel.reset();
      }
      send_completion(a.origin, a.tag, {});
      return true;
    }
    case EventKind::ExchangeSend: {
      const auto h = header.get<ExchangeSendHeader>();
      OMPC_CHECK(memory_ != nullptr);
      data_comm_for(h.data_tag).isend_payload(memory_->share(h.src, h.size),
                                             h.peer, h.data_tag);
      send_completion(a.origin, a.tag, {});
      return true;
    }
    case EventKind::ExchangeRecv: {
      const auto h = header.get<ExchangeRecvHeader>();
      if (ev.phase == 0) {
        if (opts_.persistent_channels && h.data_tag >= kChannelTagBase) {
          ev.recv_channel = arm_recv_channel(h.data_tag, h.dst, h.size,
                                             h.peer);
          if (ev.recv_channel != nullptr) ev.phase = 2;
        }
        if (ev.phase == 0) {
          ev.io = data_comm_for(h.data_tag).irecv(
              reinterpret_cast<void*>(h.dst), h.size, h.peer, h.data_tag);
          ev.phase = 1;
        }
      }
      bool landed = false;
      if (ev.phase == 2) {
        try {
          landed = ev.recv_channel->pr.test();
        } catch (const mpi::RankKilledError& e) {
          if (e.rank() == rank_) throw;
          // The peer died with the cycle armed: fail_persistent_from
          // cancelled the pre-posted slot (the satellite kill-safety
          // contract — never a zombie). Retire the channel and ack.
          {
            std::lock_guard<std::mutex> lock(channel_mutex_);
            const auto it = recv_channels_.find(h.data_tag);
            if (it != recv_channels_.end() && it->second == ev.recv_channel)
              recv_channels_.erase(it);
            ev.recv_channel->in_use = false;
          }
          ev.recv_channel.reset();
          send_completion(a.origin, a.tag, {});
          return true;
        }
      } else {
        landed = ev.io.test();
      }
      if (!landed) {
        // A payload from a dead peer will never arrive; abort the event
        // instead of re-enqueueing it forever. The head has already failed
        // the origin half, so this completion is dropped there as late.
        // A dead *origin* aborts too: a head that died after starting this
        // half but before starting the matching send leaves the payload
        // unsent forever, and the promoted head must be able to drain us.
        // Unpost the irecv: recovery may free h.dst, and a stale in-flight
        // payload landing there afterwards would be a use-after-free.
        if (is_rank_dead(h.peer) || is_rank_dead(a.origin)) {
          if (ev.phase == 2) {
            // Dropping the last channel ref disarms the pre-posted slot.
            std::lock_guard<std::mutex> lock(channel_mutex_);
            const auto it = recv_channels_.find(h.data_tag);
            if (it != recv_channels_.end() && it->second == ev.recv_channel)
              recv_channels_.erase(it);
            ev.recv_channel.reset();
          } else {
            control_.cancel(ev.io);
          }
          send_completion(a.origin, a.tag, {});
          return true;
        }
        return false;
      }
      if (ev.phase == 2) {
        std::lock_guard<std::mutex> lock(channel_mutex_);
        ev.recv_channel->in_use = false;
        ev.recv_channel.reset();
      }
      send_completion(a.origin, a.tag, {});
      return true;
    }
    case EventKind::HeadState: {
      // Replication update. Like Submit, the payload is posted before the
      // announce, so the irecv always matches — no dead-origin abort needed.
      const auto h = header.get<HeadStateHeader>();
      if (ev.phase == 0) {
        ev.blob = std::make_shared<Bytes>(h.size);
        ev.io = data_comm_for(a.tag).irecv(ev.blob->data(), h.size, a.origin,
                                           a.tag);
        ev.phase = 1;
      }
      if (!ev.io.test()) return false;
      if (replica_ != nullptr) {
        replica_->apply(static_cast<ReplicaStore::Update>(h.reset),
                        h.generation, *ev.blob);
      }
      send_completion(a.origin, a.tag, {});
      return true;
    }
    case EventKind::TrimHeap: {
      // Heap reconciliation after failover frees blocks in bulk, so it must
      // not run concurrently with an event that may touch one (an Execute
      // dispatched by the dead head and still in flight). Defer until this
      // is the only active event and the queue is drained.
      {
        std::lock_guard<std::mutex> lock(queue_mutex_);
        if (!queue_.empty()) return false;
      }
      if (active_events_.load(std::memory_order_acquire) != 1) return false;
      const auto h = header.get<TrimHeapHeader>();
      std::vector<offload::TargetPtr> keep;
      keep.reserve(h.keep_count);
      for (std::uint64_t i = 0; i < h.keep_count; ++i)
        keep.push_back(header.get<offload::TargetPtr>());
      OMPC_CHECK(memory_ != nullptr);
      memory_->retain_only(keep);
      send_completion(a.origin, a.tag, {});
      return true;
    }
    case EventKind::MembershipUpdate: {
      // Informational on workers today (the head owns placement); carried
      // as an event so membership changes are acknowledged and ordered
      // with the data plane.
      send_completion(a.origin, a.tag, {});
      return true;
    }
    case EventKind::Execute: {
      ExecuteHeader h = ExecuteHeader::deserialize(a.header);
      std::vector<void*> ptrs;
      ptrs.reserve(h.buffers.size());
      for (offload::TargetPtr p : h.buffers)
        ptrs.push_back(reinterpret_cast<void*>(p));
      offload::KernelContext ctx(ptrs, h.scalars, exec_pool_, rank_);
      offload::KernelRegistry::instance().run(h.kernel, ctx);
      stats_.kernels_run.fetch_add(1, std::memory_order_relaxed);
      send_completion(a.origin, a.tag, {});
      return true;
    }
    case EventKind::Shutdown:
    case EventKind::RankDead:
      OMPC_CHECK_MSG(false, to_string(a.kind) << " must be handled by the gate");
  }
  return true;
}

}  // namespace ompc::core
