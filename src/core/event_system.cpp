#include "core/event_system.hpp"

#include <cstdlib>
#include <cstring>

#include "common/check.hpp"
#include "common/log.hpp"
#include "common/time.hpp"

namespace ompc::core {

const char* to_string(EventKind k) {
  switch (k) {
    case EventKind::Alloc: return "Alloc";
    case EventKind::Delete: return "Delete";
    case EventKind::Submit: return "Submit";
    case EventKind::Retrieve: return "Retrieve";
    case EventKind::ExchangeSend: return "ExchangeSend";
    case EventKind::ExchangeRecv: return "ExchangeRecv";
    case EventKind::Execute: return "Execute";
    case EventKind::Shutdown: return "Shutdown";
  }
  return "?";
}

// --- WorkerMemory --------------------------------------------------------

WorkerMemory::~WorkerMemory() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (offload::TargetPtr p : live_) std::free(reinterpret_cast<void*>(p));
}

offload::TargetPtr WorkerMemory::alloc(std::size_t size) {
  void* p = std::malloc(size == 0 ? 1 : size);
  OMPC_CHECK_MSG(p != nullptr, "worker allocation of " << size << " B failed");
  const auto tp = reinterpret_cast<offload::TargetPtr>(p);
  std::lock_guard<std::mutex> lock(mutex_);
  live_.insert(tp);
  return tp;
}

void WorkerMemory::free(offload::TargetPtr ptr) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    OMPC_CHECK_MSG(live_.erase(ptr) == 1,
                   "worker double free of device ptr " << ptr);
  }
  std::free(reinterpret_cast<void*>(ptr));
}

std::size_t WorkerMemory::live() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return live_.size();
}

// --- OriginEvent ---------------------------------------------------------

const Bytes& OriginEvent::wait() {
  // Inbound payload (Retrieve) completes before the completion notification
  // is meaningful; wait for it first.
  if (data_request_.valid()) data_request_.wait();
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [this] { return done_; });
  return result_;
}

bool OriginEvent::done() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return done_;
}

void OriginEvent::complete(Bytes result) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    result_ = std::move(result);
    done_ = true;
  }
  cv_.notify_all();
}

// --- EventSystem ---------------------------------------------------------

EventSystem::EventSystem(mpi::RankContext& ctx, const ClusterOptions& opts,
                         WorkerMemory* memory, omp::TaskRuntime* exec_pool)
    : opts_(opts),
      rank_(ctx.rank()),
      control_(ctx.comm(0)),
      memory_(memory),
      exec_pool_(exec_pool) {
  OMPC_CHECK_MSG(ctx.universe().options().comms >= 1 + opts.vci,
                 "universe must pre-create 1 control + vci data comms");
  data_comms_.reserve(static_cast<std::size_t>(opts.vci));
  for (int i = 0; i < opts.vci; ++i)
    data_comms_.push_back(ctx.comm(1 + i));

  handlers_.reserve(static_cast<std::size_t>(opts.handler_threads));
  for (int i = 0; i < opts.handler_threads; ++i) {
    handlers_.emplace_back([this, i] {
      log::set_thread_label("r" + std::to_string(rank_) + "/eh" +
                            std::to_string(i));
      handler_main(i);
    });
  }
  gate_ = std::thread([this] {
    log::set_thread_label("r" + std::to_string(rank_) + "/gate");
    gate_main();
  });
}

EventSystem::~EventSystem() {
  // Normal paths stop via shutdown_cluster() / the Shutdown event. If the
  // owner destroys us without that (error unwind), stop locally so threads
  // join; the gate may be blocked on probe, so poke it with a self-message.
  if (!stopped()) {
    EventAnnounce bye;
    bye.kind = EventKind::Shutdown;
    bye.origin = rank_;
    const Bytes msg = bye.serialize();
    control_.send(msg.data(), msg.size(), rank_, kTagNewEvent);
  }
  gate_.join();
  for (auto& h : handlers_) h.join();
}

mpi::Comm EventSystem::data_comm_for(mpi::Tag tag) const {
  return data_comms_[static_cast<std::size_t>(tag) %
                     data_comms_.size()];
}

mpi::Tag EventSystem::allocate_tag() {
  mpi::Tag t = next_tag_.fetch_add(1, std::memory_order_relaxed);
  OMPC_CHECK_MSG(t < mpi::kMaxUserTag, "event tag space exhausted");
  return t;
}

OriginEventPtr EventSystem::start(mpi::Rank dest, EventKind kind, Bytes header,
                                  Bytes payload) {
  const mpi::Tag tag = allocate_tag();
  auto ev = std::make_shared<OriginEvent>(tag, kind, dest);
  {
    std::lock_guard<std::mutex> lock(origin_mutex_);
    origin_events_.emplace(tag, ev);
  }
  stats_.originated.fetch_add(1, std::memory_order_relaxed);

  // Eager payload first (Submit): it travels on the event's data comm with
  // the event tag; the destination's irecv will match it whenever it lands.
  if (!payload.empty())
    data_comm_for(tag).isend_bytes(std::move(payload), dest, tag);

  EventAnnounce a;
  a.kind = kind;
  a.tag = tag;
  a.origin = rank_;
  a.header = std::move(header);
  const Bytes msg = a.serialize();
  control_.send(msg.data(), msg.size(), dest, kTagNewEvent);
  return ev;
}

OriginEventPtr EventSystem::start_retrieve(mpi::Rank dest,
                                           offload::TargetPtr src,
                                           void* dst_host, std::size_t size) {
  const mpi::Tag tag = allocate_tag();
  auto ev = std::make_shared<OriginEvent>(tag, EventKind::Retrieve, dest);
  // Post the landing buffer before the worker can possibly send.
  ev->data_request_ = data_comm_for(tag).irecv(dst_host, size, dest, tag);
  {
    std::lock_guard<std::mutex> lock(origin_mutex_);
    origin_events_.emplace(tag, ev);
  }
  stats_.originated.fetch_add(1, std::memory_order_relaxed);

  ArchiveWriter w;
  w.put(RetrieveHeader{src, size});
  EventAnnounce a;
  a.kind = EventKind::Retrieve;
  a.tag = tag;
  a.origin = rank_;
  a.header = w.take();
  const Bytes msg = a.serialize();
  control_.send(msg.data(), msg.size(), dest, kTagNewEvent);
  return ev;
}

Bytes EventSystem::run(mpi::Rank dest, EventKind kind, Bytes header,
                       Bytes payload) {
  return start(dest, kind, std::move(header), std::move(payload))->wait();
}

void EventSystem::shutdown_cluster() {
  // Stop each worker (acknowledged via the normal completion path), then
  // unblock the local gate with a self-shutdown.
  std::vector<OriginEventPtr> acks;
  const int n = control_.size();
  for (mpi::Rank w = 0; w < n; ++w) {
    if (w == rank_) continue;
    acks.push_back(start(w, EventKind::Shutdown, {}));
  }
  for (auto& ev : acks) ev->wait();

  EventAnnounce bye;
  bye.kind = EventKind::Shutdown;
  bye.origin = rank_;
  bye.tag = 0;
  const Bytes msg = bye.serialize();
  control_.send(msg.data(), msg.size(), rank_, kTagNewEvent);
  wait_until_stopped();
}

void EventSystem::wait_until_stopped() {
  std::unique_lock<std::mutex> lock(stopped_mutex_);
  stopped_cv_.wait(lock, [this] { return stop_.load(); });
}

void EventSystem::stop_local() {
  stop_.store(true, std::memory_order_release);
  queue_cv_.notify_all();
  {
    std::lock_guard<std::mutex> lock(stopped_mutex_);
  }
  stopped_cv_.notify_all();
}

void EventSystem::enqueue_remote(RemoteEvent&& ev) {
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    queue_.push_back(std::move(ev));
  }
  queue_cv_.notify_one();
}

void EventSystem::gate_main() {
  for (;;) {
    const mpi::Status st = control_.probe(mpi::kAnySource, mpi::kAnyTag);
    const Bytes msg = control_.recv_bytes(st.source, st.tag);
    if (st.tag == kTagNewEvent) {
      EventAnnounce a = EventAnnounce::deserialize(msg);
      if (a.kind == EventKind::Shutdown) {
        // Ack remote shutdowns so the head's wait completes; a tag of 0
        // marks the local self-poke, which needs no ack.
        if (a.origin != rank_ || a.tag != 0) {
          send_completion(a.origin, a.tag, {});
        }
        stop_local();
        return;
      }
      RemoteEvent ev;
      ev.announce = std::move(a);
      enqueue_remote(std::move(ev));
    } else if (st.tag == kTagComplete) {
      EventCompletion c = EventCompletion::deserialize(msg);
      OriginEventPtr ev;
      {
        std::lock_guard<std::mutex> lock(origin_mutex_);
        auto it = origin_events_.find(c.tag);
        OMPC_CHECK_MSG(it != origin_events_.end(),
                       "completion for unknown event tag " << c.tag);
        ev = std::move(it->second);
        origin_events_.erase(it);
      }
      ev->complete(std::move(c.result));
    } else {
      OMPC_CHECK_MSG(false, "unexpected control tag " << st.tag);
    }
  }
}

void EventSystem::handler_main(int /*index*/) {
  for (;;) {
    RemoteEvent ev;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [this] { return stop_.load() || !queue_.empty(); });
      if (queue_.empty()) return;  // stop and drained
      ev = std::move(queue_.front());
      queue_.pop_front();
    }
    if (progress(ev)) {
      stats_.handled.fetch_add(1, std::memory_order_relaxed);
    } else {
      // Pending I/O: back off with a real OS sleep so a lone pending event
      // doesn't turn the handler pool into a spin storm (precise_sleep
      // would spin for a wait this short), then requeue (step 5b, Fig 3).
      // 200 us of poll granularity is noise against millisecond transfers.
      stats_.reenqueued.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::sleep_for(std::chrono::microseconds(200));
      enqueue_remote(std::move(ev));
    }
  }
}

void EventSystem::send_completion(mpi::Rank to, mpi::Tag tag, Bytes result) {
  EventCompletion c;
  c.tag = tag;
  c.result = std::move(result);
  const Bytes msg = c.serialize();
  control_.send(msg.data(), msg.size(), to, kTagComplete);
}

bool EventSystem::progress(RemoteEvent& ev) {
  const EventAnnounce& a = ev.announce;
  ArchiveReader header(a.header);
  switch (a.kind) {
    case EventKind::Alloc: {
      const auto h = header.get<AllocHeader>();
      OMPC_CHECK(memory_ != nullptr);
      const offload::TargetPtr p = memory_->alloc(h.size);
      ArchiveWriter w;
      w.put(p);
      send_completion(a.origin, a.tag, w.take());
      return true;
    }
    case EventKind::Delete: {
      const auto h = header.get<DeleteHeader>();
      OMPC_CHECK(memory_ != nullptr);
      memory_->free(h.ptr);
      send_completion(a.origin, a.tag, {});
      return true;
    }
    case EventKind::Submit: {
      const auto h = header.get<SubmitHeader>();
      if (ev.phase == 0) {
        ev.io = data_comm_for(a.tag).irecv(
            reinterpret_cast<void*>(h.dst), h.size, a.origin, a.tag);
        ev.phase = 1;
      }
      if (!ev.io.test()) return false;
      send_completion(a.origin, a.tag, {});
      return true;
    }
    case EventKind::Retrieve: {
      const auto h = header.get<RetrieveHeader>();
      Bytes payload(h.size);
      std::memcpy(payload.data(), reinterpret_cast<void*>(h.src), h.size);
      data_comm_for(a.tag).isend_bytes(std::move(payload), a.origin, a.tag);
      send_completion(a.origin, a.tag, {});
      return true;
    }
    case EventKind::ExchangeSend: {
      const auto h = header.get<ExchangeSendHeader>();
      Bytes payload(h.size);
      std::memcpy(payload.data(), reinterpret_cast<void*>(h.src), h.size);
      data_comm_for(h.data_tag).isend_bytes(std::move(payload), h.peer,
                                            h.data_tag);
      send_completion(a.origin, a.tag, {});
      return true;
    }
    case EventKind::ExchangeRecv: {
      const auto h = header.get<ExchangeRecvHeader>();
      if (ev.phase == 0) {
        ev.io = data_comm_for(h.data_tag).irecv(
            reinterpret_cast<void*>(h.dst), h.size, h.peer, h.data_tag);
        ev.phase = 1;
      }
      if (!ev.io.test()) return false;
      send_completion(a.origin, a.tag, {});
      return true;
    }
    case EventKind::Execute: {
      ExecuteHeader h = ExecuteHeader::deserialize(a.header);
      std::vector<void*> ptrs;
      ptrs.reserve(h.buffers.size());
      for (offload::TargetPtr p : h.buffers)
        ptrs.push_back(reinterpret_cast<void*>(p));
      offload::KernelContext ctx(ptrs, h.scalars, exec_pool_, rank_);
      offload::KernelRegistry::instance().run(h.kernel, ctx);
      stats_.kernels_run.fetch_add(1, std::memory_order_relaxed);
      send_completion(a.origin, a.tag, {});
      return true;
    }
    case EventKind::Shutdown:
      OMPC_CHECK_MSG(false, "Shutdown must be handled by the gate");
  }
  return true;
}

}  // namespace ompc::core
