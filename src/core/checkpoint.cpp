#include "core/checkpoint.hpp"

#include <cstring>

#include "common/time.hpp"

namespace ompc::core {

void CheckpointStore::capture(DataManager& dm, std::int64_t wave) {
  const Stopwatch timer;
  // Build aside and commit atomically: a worker can die mid-capture (the
  // refresh_head retrieve throws), and recovery then rolls back to the
  // PREVIOUS snapshot — which must still be intact.
  std::vector<Entry> fresh;
  std::int64_t bytes = 0;
  dm.for_each_buffer([&](void* host, std::size_t size) {
    // The freshest copy may live on a worker; pull it home. Worker replicas
    // stay valid (a checkpoint read must not perturb placement).
    dm.refresh_head(host);
    Entry e;
    e.host = host;
    e.size = size;
    e.data.resize(size);
    std::memcpy(e.data.data(), host, size);
    bytes += static_cast<std::int64_t>(size);
    fresh.push_back(std::move(e));
  });
  entries_ = std::move(fresh);
  wave_ = wave;
  have_ = true;
  ++stats_.captures;
  stats_.bytes_captured += bytes;
  stats_.capture_ns += timer.elapsed_ns();
}

void CheckpointStore::restore(DataManager& dm) {
  for (const Entry& e : entries_) {
    dm.restore_buffer(e.host, e.size,
                      std::span<const std::byte>(e.data.data(), e.size));
  }
  ++stats_.restores;
}

}  // namespace ompc::core
