#include "core/checkpoint.hpp"

#include <algorithm>
#include <cstring>
#include <set>
#include <sstream>
#include <unordered_map>
#include <utility>

#include "common/check.hpp"
#include "common/log.hpp"
#include "common/time.hpp"
#include "core/fault.hpp"

namespace ompc::core {

namespace {

/// Head NIC cost of one snapshot-plane control message: the serialized
/// header plus the EventAnnounce envelope (kind/tag/origin + blob length).
/// What flows through the head in worker-local modes is exactly these.
std::int64_t meta_bytes(std::size_t header_size) {
  return static_cast<std::int64_t>(header_size) + 24;
}

}  // namespace

mpi::Rank CheckpointStore::buddy_of(mpi::Rank owner,
                                    std::span<const mpi::Rank> live) {
  if (live.size() < 2) return -1;
  const auto it = std::find(live.begin(), live.end(), owner);
  if (it == live.end()) return -1;  // stale owner: no buddy, head fallback
  const std::size_t idx = static_cast<std::size_t>(it - live.begin());
  return live[(idx + 1) % live.size()];
}

bool CheckpointStore::restorable(const Entry& e) const {
  if (e.data != nullptr) return true;
  if (events_ == nullptr) return false;
  if (e.owner.rank >= 0 && !events_->is_rank_gone(e.owner.rank)) return true;
  if (e.buddy.rank >= 0 && !events_->is_rank_gone(e.buddy.rank)) return true;
  return false;
}

std::size_t CheckpointStore::worker_resident_entries() const {
  std::size_t n = 0;
  for (const Entry& e : entries_) {
    if (e.data == nullptr && e.owner.rank >= 0) ++n;
  }
  return n;
}

std::vector<offload::TargetPtr> CheckpointStore::shadows_on(
    mpi::Rank rank) const {
  // Both generations AND the parked orphans: anything the store might still
  // SnapshotDrop later must survive a heap trim, or the drop double-frees.
  std::vector<offload::TargetPtr> ptrs;
  const auto collect = [&ptrs, rank](const std::vector<Entry>& entries) {
    for (const Entry& e : entries) {
      if (e.owner.rank == rank && e.owner.ptr != 0) ptrs.push_back(e.owner.ptr);
      if (e.buddy.rank == rank && e.buddy.ptr != 0) ptrs.push_back(e.buddy.ptr);
    }
  };
  collect(entries_);
  collect(prev_entries_);
  for (const Shadow& s : orphaned_) {
    if (s.rank == rank && s.ptr != 0) ptrs.push_back(s.ptr);
  }
  return ptrs;
}

void CheckpointStore::drop_shadows(const std::vector<Shadow>& shadows) {
  if (events_ == nullptr) return;
  // Pipelined like the capture phases: start every drop, then wait — the
  // commit pays max(latency) across ranks, not sum over O(dirty) shadows.
  std::vector<OriginEventPtr> acks;
  acks.reserve(shadows.size());
  for (const Shadow& s : shadows) {
    if (s.rank < 0 || events_->is_rank_gone(s.rank)) continue;
    ArchiveWriter w;
    w.put(SnapshotDropHeader{s.ptr});
    stats_.head_bytes += meta_bytes(w.size());
    try {
      acks.push_back(events_->start(s.rank, EventKind::SnapshotDrop, w.take()));
    } catch (const WorkerDiedError&) {
      // The rank died under the drop; its heap dies with it.
    }
  }
  for (const OriginEventPtr& ev : acks) {
    try {
      ev->wait();
      ++stats_.snapshot_drops;
    } catch (const WorkerDiedError&) {
    }
  }
}

void CheckpointStore::capture_on_head(DataManager& dm,
                                      std::vector<Entry>& fresh,
                                      const std::vector<std::size_t>& pending) {
  // The freshest copies may live on workers; pull them home concurrently
  // (the transfer-pool fan-out), then copy. Worker replicas stay valid — a
  // checkpoint read must not perturb placement.
  std::vector<const void*> hosts;
  hosts.reserve(pending.size());
  for (const std::size_t i : pending) hosts.push_back(fresh[i].host);
  stats_.head_bytes += dm.refresh_head_many(hosts);
  for (const std::size_t i : pending) {
    Entry& e = fresh[i];
    auto bytes = std::make_shared<Bytes>(e.size);
    std::memcpy(bytes->data(), e.host, e.size);
    e.data = std::move(bytes);
    e.generation = generation_ + 1;
  }
}

void CheckpointStore::capture_on_workers(
    DataManager& dm, std::vector<Entry>& fresh,
    const std::vector<std::size_t>& pending,
    std::span<const mpi::Rank> live_workers) {
  // A dirty buffer whose freshest copy sits on a worker is snapshotted in
  // place: SnapshotSave makes a device-local shadow (rank-local, invisible
  // to every NIC), and in Buddy mode the shadow is replicated to the
  // owner's ring successor — a single one-sided put into the buddy's block
  // on the RMA data plane, the two-sided Exchange pair on the rendezvous
  // one. The head only ships commands — O(metadata) per buffer. The three
  // phases below pipeline every buffer's events so capture pays
  // max(transfer), not sum.
  struct Job {
    std::size_t idx = 0;
    mpi::Rank owner = -1;
    mpi::Rank buddy = -1;
    OriginEventPtr save_ev;
    OriginEventPtr alloc_ev;
    OriginEventPtr send_ev;
    OriginEventPtr recv_ev;
    offload::TargetPtr shadow = 0;
    offload::TargetPtr replica = 0;
  };
  std::vector<Job> jobs;
  std::vector<Shadow> created;  // parked in orphaned_ on abort
  const auto settle = [](const OriginEventPtr& ev) {
    if (ev == nullptr) return;
    try {
      ev->wait();
    } catch (...) {
      // Settling only: the primary error is already being propagated.
    }
  };
  try {
    // Phase A: command every save (and buddy allocation) up front.
    for (const std::size_t i : pending) {
      Entry& e = fresh[i];
      e.generation = generation_ + 1;
      const DataManager::Residency where = dm.residency(e.host);
      if (where.on_head) {
        // Freshest copy already lives on the head (host-task writes, fresh
        // registrations): keep the bytes here — a local memcpy, no NIC.
        auto bytes = std::make_shared<Bytes>(e.size);
        std::memcpy(bytes->data(), e.host, e.size);
        e.data = std::move(bytes);
        continue;
      }
      OMPC_CHECK_MSG(where.owner >= 0,
                     "checkpoint capture found buffer "
                         << e.host << " with no valid location anywhere");
      Job j;
      j.idx = i;
      j.owner = where.owner;
      ArchiveWriter w;
      w.put(SnapshotSaveHeader{where.owner_addr, e.size});
      stats_.head_bytes += meta_bytes(w.size());
      j.save_ev = events_->start(j.owner, EventKind::SnapshotSave, w.take());
      if (locality_ == CheckpointLocality::Buddy) {
        j.buddy = buddy_of(j.owner, live_workers);
      }
      // Track the job before any further start() can throw: the abort path
      // below harvests the save's shadow address so it can be dropped.
      jobs.push_back(std::move(j));
      if (jobs.back().buddy >= 0) {
        ArchiveWriter aw;
        aw.put(AllocHeader{e.size});
        stats_.head_bytes += meta_bytes(aw.size());
        jobs.back().alloc_ev =
            events_->start(jobs.back().buddy, EventKind::Alloc, aw.take());
      }
    }
    // Phase B: collect shadow addresses, command the buddy replications.
    for (Job& j : jobs) {
      {
        const Bytes& reply = j.save_ev->wait();
        ArchiveReader r(reply);
        j.shadow = r.get<offload::TargetPtr>();
      }
      created.push_back({j.owner, j.shadow});
      ++stats_.snapshot_saves;
      if (j.alloc_ev != nullptr) {
        const Bytes& reply = j.alloc_ev->wait();
        ArchiveReader r(reply);
        j.replica = r.get<offload::TargetPtr>();
        created.push_back({j.buddy, j.replica});
        const Entry& e = fresh[j.idx];
        if (data_plane_ == DataPlane::Rma) {
          // One-sided replication: the owner puts its shadow straight into
          // the buddy's freshly allocated block (registered as a window
          // under its own address). One event instead of the two-sided
          // pair; the buddy's event handlers never see the bytes land.
          ArchiveWriter pw;
          pw.put(RmaPutHeader{j.shadow, e.size, j.buddy, j.replica, 0});
          stats_.head_bytes += meta_bytes(pw.size());
          j.send_ev = events_->start(j.owner, EventKind::RmaPut, pw.take(),
                                     {}, j.buddy);
        } else {
          const mpi::Tag data_tag = events_->allocate_tag();
          ArchiveWriter rw;
          rw.put(ExchangeRecvHeader{j.replica, e.size, j.owner, data_tag});
          stats_.head_bytes += meta_bytes(rw.size());
          j.recv_ev = events_->start(j.buddy, EventKind::ExchangeRecv,
                                     rw.take(), {}, j.owner);
          ArchiveWriter sw;
          sw.put(ExchangeSendHeader{j.shadow, e.size, j.buddy, data_tag});
          stats_.head_bytes += meta_bytes(sw.size());
          j.send_ev = events_->start(j.owner, EventKind::ExchangeSend,
                                     sw.take(), {}, j.buddy);
        }
      }
    }
    // Phase C: the replicas land; only now may entries reference them.
    for (Job& j : jobs) {
      if (j.send_ev != nullptr) j.send_ev->wait();
      if (j.recv_ev != nullptr) j.recv_ev->wait();
      Entry& e = fresh[j.idx];
      e.owner = {j.owner, j.shadow};
      if (j.replica != 0) {
        e.buddy = {j.buddy, j.replica};
        ++stats_.snapshot_replicas;
      }
    }
  } catch (...) {
    // Abort: settle every outstanding event (an in-flight exchange must not
    // land in a block we later free), harvesting the addresses of shadows
    // and replicas that did materialize, then park them all for the next
    // quiescent drop. The previous generation is untouched.
    for (const Job& j : jobs) {
      if (j.save_ev != nullptr && j.shadow == 0) {
        try {
          ArchiveReader r(j.save_ev->wait());
          created.push_back({j.owner, r.get<offload::TargetPtr>()});
        } catch (...) {
          // The owner died before saving: nothing to drop there.
        }
      }
      if (j.alloc_ev != nullptr && j.replica == 0) {
        try {
          ArchiveReader r(j.alloc_ev->wait());
          created.push_back({j.buddy, r.get<offload::TargetPtr>()});
        } catch (...) {
        }
      }
      settle(j.send_ev);
      settle(j.recv_ev);
    }
    orphaned_.insert(orphaned_.end(), created.begin(), created.end());
    throw;
  }
}

void CheckpointStore::capture(DataManager& dm, std::int64_t wave,
                              std::span<const mpi::Rank> live_workers) {
  const Stopwatch timer;
  // The dirty set is read, not consumed: it is cleared only after the new
  // snapshot commits, so a worker dying mid-capture leaves both the
  // PREVIOUS snapshot and the set of buffers that still need capturing
  // intact for the retake at the next boundary.
  const auto dirty = dm.dirty_buffers();
  std::unordered_map<const void*, const Entry*> prev;
  prev.reserve(entries_.size());
  for (const Entry& e : entries_) prev.emplace(e.host, &e);

  std::vector<Entry> fresh;
  std::vector<std::size_t> pending;  // fresh indices still needing capture
  std::int64_t logical = 0;
  std::int64_t copied = 0;
  std::int64_t reused = 0;
  dm.for_each_buffer([&](void* host, std::size_t size) {
    Entry e;
    e.host = host;
    e.size = size;
    const auto it = prev.find(host);
    // Unwritten since the last committed capture AND still resolvable from
    // a live holder: keep the old entry by reference — no retrieve, no
    // copy. An entry whose every holder died is re-captured from the
    // current freshest copy even though the buffer is clean.
    const bool clean = it != prev.end() && it->second->size == size &&
                       dirty.count(host) == 0 && restorable(*it->second);
    if (clean) {
      e = *it->second;
      ++reused;
    } else {
      pending.push_back(fresh.size());
      copied += static_cast<std::int64_t>(size);
    }
    logical += static_cast<std::int64_t>(size);
    fresh.push_back(std::move(e));
  });

  if (locality_ == CheckpointLocality::Head || events_ == nullptr) {
    capture_on_head(dm, fresh, pending);
  } else {
    capture_on_workers(dm, fresh, pending, live_workers);
  }

  // Commit: the committed generation is demoted to the retained previous
  // one, and only the cut dropping out (two boundaries ago) has its shadows
  // freed — minus anything either newer generation still references (a
  // clean entry is shared by reference across generations, and orphans are
  // included too). Retaining one full prior generation lets restore() fall
  // back a period when a double kill voids a current-generation entry.
  std::set<std::pair<mpi::Rank, offload::TargetPtr>> kept;
  const auto keep = [&kept](const Entry& e) {
    if (e.owner.rank >= 0) kept.emplace(e.owner.rank, e.owner.ptr);
    if (e.buddy.rank >= 0) kept.emplace(e.buddy.rank, e.buddy.ptr);
  };
  for (const Entry& e : fresh) keep(e);
  for (const Entry& e : entries_) keep(e);
  std::vector<Shadow> stale;
  stale.swap(orphaned_);
  for (const Entry& e : prev_entries_) {
    if (e.owner.rank >= 0 && kept.count({e.owner.rank, e.owner.ptr}) == 0)
      stale.push_back(e.owner);
    if (e.buddy.rank >= 0 && kept.count({e.buddy.rank, e.buddy.ptr}) == 0)
      stale.push_back(e.buddy);
  }
  prev_entries_ = std::move(entries_);
  prev_wave_ = wave_;
  prev_have_ = have_;
  entries_ = std::move(fresh);
  wave_ = wave;
  have_ = true;
  ++generation_;
  drop_shadows(stale);
  dm.mark_all_clean();  // commit point: everything captured or reused
  ++stats_.captures;
  stats_.bytes_captured += logical;
  stats_.dirty_bytes += copied;
  stats_.entries_reused += reused;
  stats_.capture_ns += timer.elapsed_ns();
}

void CheckpointStore::restore(DataManager& dm) {
  last_restore_degraded_ = false;
  // Pre-scan: can the current cut be restored in full? A buffer whose
  // owner AND buddy died since the capture (with no head-resident bytes)
  // is gone from this generation.
  std::vector<const Entry*> lost;
  for (const Entry& e : entries_) {
    if (!restorable(e)) lost.push_back(&e);
  }
  if (!lost.empty()) {
    bool prev_ok = prev_have_;
    if (prev_ok) {
      for (const Entry& e : prev_entries_) {
        if (!restorable(e)) {
          prev_ok = false;
          break;
        }
      }
    }
    if (!prev_ok) {
      std::ostringstream msg;
      msg << "checkpoint snapshot lost: owner and buddy of "
          << lost.size() << " worker-local snapshot"
          << (lost.size() == 1 ? "" : "s")
          << " died in the same checkpoint period and no complete prior "
             "generation survives; unrecoverable buffers:";
      for (const Entry* e : lost) {
        msg << " {host=" << e->host << " size=" << e->size << " owner=r"
            << e->owner.rank << " buddy=r" << e->buddy.rank << "}";
      }
      throw RecoveryError(msg.str());
    }
    // Degraded fallback: abandon the voided cut and roll back one more
    // period. Shadows only the abandoned cut references are parked for the
    // next quiescent drop.
    std::set<std::pair<mpi::Rank, offload::TargetPtr>> prev_kept;
    for (const Entry& e : prev_entries_) {
      if (e.owner.rank >= 0) prev_kept.emplace(e.owner.rank, e.owner.ptr);
      if (e.buddy.rank >= 0) prev_kept.emplace(e.buddy.rank, e.buddy.ptr);
    }
    for (const Entry& e : entries_) {
      if (e.owner.rank >= 0 &&
          prev_kept.count({e.owner.rank, e.owner.ptr}) == 0)
        orphaned_.push_back(e.owner);
      if (e.buddy.rank >= 0 &&
          prev_kept.count({e.buddy.rank, e.buddy.ptr}) == 0)
        orphaned_.push_back(e.buddy);
    }
    entries_ = std::move(prev_entries_);
    prev_entries_.clear();
    prev_have_ = false;
    wave_ = prev_wave_;
    prev_wave_ = -1;
    last_restore_degraded_ = true;
    ++stats_.degraded_restores;
    OMPC_LOG_WARN("checkpoint: current generation unrecoverable ("
                  << lost.size()
                  << " buffers); falling back to the prior boundary (wave "
                  << wave_ << ")");
  }
  // Worker-resident fetches are pipelined like capture: start every
  // SnapshotFetch (each lands in its own staging block), then wait and
  // convert — recovery pays max(fetch) across holders, not sum, which is
  // most of recovery_latency_ns on a big working set.
  struct Fetch {
    Entry* entry = nullptr;
    std::shared_ptr<Bytes> staging;
    OriginEventPtr ev;
  };
  std::vector<Fetch> fetches;
  std::vector<Shadow> drops;
  try {
    for (Entry& e : entries_) {
      if (e.data != nullptr) {
        dm.restore_buffer(
            e.host, e.size,
            std::span<const std::byte>(e.data->data(), e.size));
        continue;
      }
      // Worker-resident snapshot: resolve the freshest surviving holder.
      const Shadow* holder = nullptr;
      if (e.owner.rank >= 0 && !events_->is_rank_gone(e.owner.rank)) {
        holder = &e.owner;
      } else if (e.buddy.rank >= 0 && !events_->is_rank_gone(e.buddy.rank)) {
        holder = &e.buddy;
      }
      if (holder == nullptr) {
        // The pre-scan passed, so a holder died between the scan and this
        // resolve; surface it like the scan would have.
        std::ostringstream msg;
        msg << "checkpoint snapshot lost: owner and buddy of a worker-local "
               "snapshot died in the same checkpoint period; unrecoverable "
               "buffer: {host="
            << e.host << " size=" << e.size << " owner=r" << e.owner.rank
            << " buddy=r" << e.buddy.rank << "}";
        throw RecoveryError(msg.str());
      }
      // Stream the shadow to the head — where replay needs it — and keep
      // the bytes: the entry becomes head-resident, so a later failure
      // never chases shadows on ranks that died since this recovery.
      Fetch f;
      f.entry = &e;
      f.staging = std::make_shared<Bytes>(e.size);
      f.ev = events_->start_retrieve(holder->rank, holder->ptr,
                                     f.staging->data(), e.size,
                                     EventKind::SnapshotFetch);
      fetches.push_back(std::move(f));
    }
    for (Fetch& f : fetches) {
      f.ev->wait();
      Entry& e = *f.entry;
      dm.restore_buffer(
          e.host, e.size,
          std::span<const std::byte>(f.staging->data(), e.size));
      if (e.owner.rank >= 0) drops.push_back(e.owner);
      if (e.buddy.rank >= 0) drops.push_back(e.buddy);
      e.owner = {};
      e.buddy = {};
      e.data = std::move(f.staging);
    }
  } catch (...) {
    // Another failure interrupted the restore (or a snapshot is gone for
    // good). Settle the outstanding fetches first — their posted irecvs
    // point into the staging blocks about to unwind — then park the
    // converted entries' now-stale shadows for the next quiescent drop.
    for (Fetch& f : fetches) {
      if (f.ev == nullptr) continue;
      try {
        f.ev->wait();  // also drains the posted payload irecv
      } catch (...) {
      }
    }
    orphaned_.insert(orphaned_.end(), drops.begin(), drops.end());
    throw;
  }
  // Every entry is head-resident now, so the retained prior generation can
  // never be needed again — free its shadows along with the converted
  // entries' and any parked orphans. Dedupe first: a clean entry shares its
  // shadows across generations, and a double drop would double-free.
  for (const Entry& e : prev_entries_) {
    if (e.owner.rank >= 0) drops.push_back(e.owner);
    if (e.buddy.rank >= 0) drops.push_back(e.buddy);
  }
  prev_entries_.clear();
  prev_have_ = false;
  prev_wave_ = -1;
  drops.insert(drops.end(), orphaned_.begin(), orphaned_.end());
  orphaned_.clear();
  std::set<std::pair<mpi::Rank, offload::TargetPtr>> seen;
  std::vector<Shadow> unique;
  unique.reserve(drops.size());
  for (const Shadow& s : drops) {
    if (seen.emplace(s.rank, s.ptr).second) unique.push_back(s);
  }
  drop_shadows(unique);
  // Every checkpointed buffer now holds exactly its captured bytes, so
  // nothing is dirty relative to this snapshot; the replay re-marks what it
  // rewrites.
  dm.mark_all_clean();
  ++stats_.restores;
}

Bytes CheckpointStore::serialize_state() const {
  ArchiveWriter w;
  const auto put_entries = [&w](const std::vector<Entry>& list) {
    w.put<std::uint64_t>(list.size());
    for (const Entry& e : list) {
      w.put<std::uint64_t>(reinterpret_cast<std::uintptr_t>(e.host));
      w.put<std::uint64_t>(e.size);
      w.put(e.generation);
      w.put<std::uint8_t>(e.data != nullptr ? 1 : 0);
      if (e.data != nullptr)
        w.put_blob(std::span<const std::byte>(e.data->data(), e.data->size()));
      w.put(e.owner.rank);
      w.put(e.owner.ptr);
      w.put(e.buddy.rank);
      w.put(e.buddy.ptr);
    }
  };
  w.put<std::uint8_t>(have_ ? 1 : 0);
  w.put(wave_);
  w.put(generation_);
  put_entries(entries_);
  w.put<std::uint8_t>(prev_have_ ? 1 : 0);
  w.put(prev_wave_);
  put_entries(prev_entries_);
  w.put<std::uint64_t>(orphaned_.size());
  for (const Shadow& s : orphaned_) {
    w.put(s.rank);
    w.put(s.ptr);
  }
  w.put_raw(&stats_, sizeof stats_);
  return w.take();
}

void CheckpointStore::adopt_state(std::span<const std::byte> data) {
  ArchiveReader r(data);
  const auto get_entries = [&r]() {
    std::vector<Entry> list;
    const auto n = r.get<std::uint64_t>();
    list.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      Entry e;
      e.host = reinterpret_cast<void*>(
          static_cast<std::uintptr_t>(r.get<std::uint64_t>()));
      e.size = r.get<std::uint64_t>();
      e.generation = r.get<std::uint64_t>();
      if (r.get<std::uint8_t>() != 0)
        e.data = std::make_shared<const Bytes>(r.get_blob());
      e.owner.rank = r.get<mpi::Rank>();
      e.owner.ptr = r.get<offload::TargetPtr>();
      e.buddy.rank = r.get<mpi::Rank>();
      e.buddy.ptr = r.get<offload::TargetPtr>();
      list.push_back(std::move(e));
    }
    return list;
  };
  have_ = r.get<std::uint8_t>() != 0;
  wave_ = r.get<std::int64_t>();
  generation_ = r.get<std::uint64_t>();
  entries_ = get_entries();
  prev_have_ = r.get<std::uint8_t>() != 0;
  prev_wave_ = r.get<std::int64_t>();
  prev_entries_ = get_entries();
  orphaned_.clear();
  const auto norphans = r.get<std::uint64_t>();
  orphaned_.reserve(norphans);
  for (std::uint64_t i = 0; i < norphans; ++i) {
    Shadow s;
    s.rank = r.get<mpi::Rank>();
    s.ptr = r.get<offload::TargetPtr>();
    orphaned_.push_back(s);
  }
  r.get_raw(&stats_, sizeof stats_);
  last_restore_degraded_ = false;
}

}  // namespace ompc::core
