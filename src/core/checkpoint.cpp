#include "core/checkpoint.hpp"

#include <cstring>
#include <unordered_map>

#include "common/time.hpp"

namespace ompc::core {

void CheckpointStore::capture(DataManager& dm, std::int64_t wave) {
  const Stopwatch timer;
  // The dirty set is read, not consumed: it is cleared only after the new
  // snapshot commits, so a worker dying mid-capture (the refresh_head
  // retrieve throws) leaves both the PREVIOUS snapshot and the set of
  // buffers that still need capturing intact for the retake at the next
  // boundary.
  const auto dirty = dm.dirty_buffers();
  std::unordered_map<const void*, const Entry*> prev;
  prev.reserve(entries_.size());
  for (const Entry& e : entries_) prev.emplace(e.host, &e);

  std::vector<Entry> fresh;
  std::int64_t logical = 0;
  std::int64_t copied = 0;
  std::int64_t reused = 0;
  dm.for_each_buffer([&](void* host, std::size_t size) {
    Entry e;
    e.host = host;
    e.size = size;
    const auto it = prev.find(host);
    const bool clean = it != prev.end() && it->second->size == size &&
                       dirty.count(host) == 0;
    if (clean) {
      // Unwritten since the last committed capture: the old entry's bytes
      // still equal the buffer's logical content. Keep them by reference —
      // no retrieve, no copy.
      e.data = it->second->data;
      ++reused;
    } else {
      // The freshest copy may live on a worker; pull it home. Worker
      // replicas stay valid (a checkpoint read must not perturb placement).
      dm.refresh_head(host);
      auto bytes = std::make_shared<Bytes>(size);
      std::memcpy(bytes->data(), host, size);
      e.data = std::move(bytes);
      copied += static_cast<std::int64_t>(size);
    }
    logical += static_cast<std::int64_t>(size);
    fresh.push_back(std::move(e));
  });
  entries_ = std::move(fresh);
  wave_ = wave;
  have_ = true;
  dm.mark_all_clean();  // commit point: everything captured or reused
  ++stats_.captures;
  stats_.bytes_captured += logical;
  stats_.dirty_bytes += copied;
  stats_.entries_reused += reused;
  stats_.capture_ns += timer.elapsed_ns();
}

void CheckpointStore::restore(DataManager& dm) {
  for (const Entry& e : entries_) {
    dm.restore_buffer(e.host, e.size,
                      std::span<const std::byte>(e.data->data(), e.size));
  }
  // Every checkpointed buffer now holds exactly its captured bytes, so
  // nothing is dirty relative to this snapshot; the replay re-marks what it
  // rewrites.
  dm.mark_all_clean();
  ++stats_.restores;
}

}  // namespace ompc::core
