// Persistent, elastic helper pool for the head node's hot path.
//
// The dispatch engine used to create and join a pool of threads on *every
// wave* (mirroring one LLVM hidden-helper thread per in-flight target
// region), and the Data Manager spawned one std::thread per extra buffer of
// every multi-input task. Per-wave thread churn is exactly the head-side
// overhead the paper's Fig. 7a isolates, so both now submit jobs to pools
// that live for the whole launch: one dispatch pool (its *ceiling* still
// bounds in-flight target regions, preserving the HelperThreads/TwoStep
// semantics) and one transfer pool shared by all concurrent prepare_args
// calls.
//
// Elasticity: the old pools spawned their full ceiling (`16 + 3·W`, or 48
// helper threads) at launch even for a 2-worker test cluster. An elastic
// pool starts at a small floor and grows only when a caller ANNOUNCES
// demand (reserve(n) — the dispatcher passes the wave's task count, fan_out
// its job count). Announced demand is a pure function of the wave
// structure, never of job-completion timing, so identical waves grow the
// pool identically and the hotpath gates ("spawn count is wave-count
// independent", "0 spawns per steady wave") stay exact — a queue-pressure
// rule would flake on scheduler noise. An above-floor thread that sits
// idle for `idle_shrink_ms` retires, so a tenant burst's threads are given
// back once the burst drains. Under-announcing is safe: jobs queue behind
// the live threads (pool jobs never block on other pool jobs).
//
// Jobs must not throw — callers capture exceptions into their own state
// (the wave's first_error, a fetch group's error slots).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

namespace ompc::core {

class HelperPool {
 public:
  /// Fixed-size pool: spawns max(1, threads) workers once and keeps them
  /// until destruction (floor == ceiling, no shrink). `label_prefix` names
  /// the threads for log output ("hh0", "xfer3", ...).
  HelperPool(int threads, std::string label_prefix);

  /// Elastic pool: spawns `min_threads` upfront, grows on demand up to
  /// `max_threads` (the in-flight bound), retires above-floor threads idle
  /// for `idle_shrink_ms` (0 = never shrink). `spawn_counter`, when given,
  /// is incremented on every spawn — the owner's stats block sees mid-run
  /// growth without polling.
  HelperPool(int min_threads, int max_threads, std::int64_t idle_shrink_ms,
             std::string label_prefix,
             std::atomic<std::int64_t>* spawn_counter = nullptr);
  ~HelperPool();

  HelperPool(const HelperPool&) = delete;
  HelperPool& operator=(const HelperPool&) = delete;

  /// Announces upcoming demand: grows the pool to min(ceiling, target)
  /// live threads. Deterministic — callers pass structural facts (task
  /// count of the wave, fan-out width), so identical work reserves
  /// identically. Never shrinks; also reaps retired-thread handles.
  void reserve(int target);

  /// Enqueues a job on the pool. Jobs run in FIFO order across the live
  /// threads (grown via reserve) and must not throw.
  void submit(std::function<void()> job);

  /// Threads currently alive (floor <= n <= ceiling at rest; transiently
  /// observable mid-grow/mid-retire).
  int num_threads() const noexcept;

  int max_threads() const noexcept { return max_; }
  int min_threads() const noexcept { return min_; }

  /// Jobs executed since construction (test/bench hook).
  std::int64_t jobs_run() const noexcept {
    return jobs_run_.load(std::memory_order_relaxed);
  }

  /// Cumulative spawns (launch floor + demand growth).
  std::int64_t threads_spawned() const noexcept {
    return threads_spawned_.load(std::memory_order_relaxed);
  }

  /// Threads retired by the idle-shrink rule.
  std::int64_t threads_retired() const noexcept {
    return threads_retired_.load(std::memory_order_relaxed);
  }

  /// High-water mark of live threads.
  int peak_threads() const noexcept {
    return peak_threads_.load(std::memory_order_relaxed);
  }

 private:
  void spawn_locked();
  void worker_main(std::int64_t slot);

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  int min_ = 1;
  int max_ = 1;
  std::int64_t idle_shrink_ms_ = 0;
  std::string label_;
  int live_ = 0;  ///< spawned minus retired (mutex-guarded)
  int idle_ = 0;  ///< live threads currently waiting for work
  std::int64_t next_slot_ = 0;
  std::atomic<std::int64_t> jobs_run_{0};
  std::atomic<std::int64_t> threads_spawned_{0};
  std::atomic<std::int64_t> threads_retired_{0};
  std::atomic<int> peak_threads_{0};
  std::atomic<std::int64_t>* spawn_counter_ = nullptr;
  /// Live thread handles by slot. A retiring thread moves its own handle to
  /// reap_ (it cannot join itself); the next submit — or the destructor —
  /// joins the reaped handles.
  std::unordered_map<std::int64_t, std::thread> threads_;
  std::vector<std::thread> reap_;
};

/// Runs fn(0) inline and fn(1..n-1) as pool jobs, returning only after
/// every call has settled; the first failure is rethrown on the calling
/// thread (so no job outlives the stack state fn captures). This is the
/// shared fan-out scaffold of prepare_args and refresh_head_many — the
/// latch-lifetime subtlety (wait() can return while the last count_down is
/// still inside notify) lives here once.
void fan_out(HelperPool& pool, std::size_t n,
             const std::function<void(std::size_t)>& fn);

}  // namespace ompc::core
