// Persistent helper pool for the head node's hot path.
//
// The dispatch engine used to create and join a pool of threads on *every
// wave* (mirroring one LLVM hidden-helper thread per in-flight target
// region), and the Data Manager spawned one std::thread per extra buffer of
// every multi-input task. Per-wave thread churn is exactly the head-side
// overhead the paper's Fig. 7a isolates, so both now submit jobs to pools
// that live for the whole launch: one dispatch pool (its size still bounds
// in-flight target regions, preserving the HelperThreads/TwoStep semantics)
// and one transfer pool shared by all concurrent prepare_args calls.
//
// Jobs must not throw — callers capture exceptions into their own state
// (the wave's first_error, a fetch group's error slots).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace ompc::core {

class HelperPool {
 public:
  /// Spawns max(1, threads) workers once; they idle between jobs and are
  /// joined by the destructor (which drains any queued jobs first).
  /// `label_prefix` names the threads for log output ("hh0", "xfer3", ...).
  HelperPool(int threads, std::string label_prefix);
  ~HelperPool();

  HelperPool(const HelperPool&) = delete;
  HelperPool& operator=(const HelperPool&) = delete;

  /// Enqueues a job on the pool. Jobs run in FIFO order across up to
  /// num_threads() workers and must not throw.
  void submit(std::function<void()> job);

  int num_threads() const noexcept {
    return static_cast<int>(threads_.size());
  }

  /// Jobs executed since construction (test/bench hook).
  std::int64_t jobs_run() const noexcept {
    return jobs_run_.load(std::memory_order_relaxed);
  }

 private:
  void worker_main();

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  std::atomic<std::int64_t> jobs_run_{0};
  std::vector<std::thread> threads_;
};

/// Runs fn(0) inline and fn(1..n-1) as pool jobs, returning only after
/// every call has settled; the first failure is rethrown on the calling
/// thread (so no job outlives the stack state fn captures). This is the
/// shared fan-out scaffold of prepare_args and refresh_head_many — the
/// latch-lifetime subtlety (wait() can return while the last count_down is
/// still inside notify) lives here once.
void fan_out(HelperPool& pool, std::size_t n,
             const std::function<void(std::size_t)>& fn);

}  // namespace ompc::core
