// The MPI-based distributed event system (paper §4.2, Figure 3).
//
// Per rank:
//  - a *gate thread* owns the control communicator: it receives new-event
//    notifications (enqueuing the destination half of each event) and
//    completion notifications (waking the origin waiter);
//  - a pool of *event handlers* executes queued events as poll-driven state
//    machines, re-enqueueing any event with pending I/O;
//  - origin threads (the head's helper threads) create events, each with a
//    unique tag; every data message of an event travels on a data
//    communicator chosen round-robin by that tag (the VCI striping of
//    §4.2's last paragraph) so events are isolated channels.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <tuple>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/options.hpp"
#include "core/proto.hpp"
#include "minimpi/mpi.hpp"
#include "omptask/runtime.hpp"

namespace ompc::core {

class ReplicaStore;

/// Rank-local "device memory": the worker-side heap that Alloc/Delete
/// events manage. Head code never dereferences these addresses (distinct
/// address spaces by discipline, DESIGN.md decision 1).
///
/// Blocks are shared-ownership so outbound payloads (Retrieve/ExchangeSend)
/// can send device memory zero-copy: share() pins the block for the life of
/// the in-flight message, surviving a concurrent Delete event and even this
/// rank dying with the payload still on the simulated wire.
///
/// Constructed with a universe, the heap doubles as the rank's one-sided
/// exposure: every block is registered as an RMA window under its own
/// address at alloc() and unregistered at free(), so remote ranks can put
/// into any live block by (rank, address) with no per-transfer handshake —
/// the target side of the RmaPut data plane. The universe-less form keeps
/// the heap usable standalone (unit tests).
class WorkerMemory {
 public:
  WorkerMemory() = default;
  WorkerMemory(mpi::Universe* universe, mpi::Rank rank)
      : universe_(universe), rank_(rank) {}
  /// Unregisters any window still live (leftover snapshot shadows, a rank
  /// unwinding from fault injection) — a put in flight toward them resolves
  /// to nothing and is dropped at delivery, matching the rank's death.
  ~WorkerMemory();

  offload::TargetPtr alloc(std::size_t size);
  void free(offload::TargetPtr ptr);

  /// free() that tolerates an unknown pointer (returns false instead of
  /// failing). After a head failover the adopted checkpoint state lags the
  /// real heap by up to one boundary, so a SnapshotDrop may name a shadow
  /// this rank already released — a legitimate no-op, not a double free.
  bool try_free(offload::TargetPtr ptr);

  /// Worker-local checkpoint shadow (SnapshotSave): allocates a fresh block
  /// and copies `size` bytes from the live allocation at `src` (a block
  /// base) into it, entirely rank-local. Returns the shadow's address.
  offload::TargetPtr snapshot(offload::TargetPtr src, std::size_t size);

  /// Zero-copy read view of the allocation starting at `ptr` (must be a
  /// block base), pinned for the payload's lifetime.
  mpi::Payload share(offload::TargetPtr ptr, std::size_t size) const;

  /// Pins the block at `ptr` (must be a block base) for the life of the
  /// returned handle. Persistent put channels hold one per cycle source:
  /// while pinned the allocator can never hand the address out again, so a
  /// cached channel keyed by address cannot alias a future block.
  std::shared_ptr<const void> pin(offload::TargetPtr ptr) const;

  /// Frees every block whose address is not in `keep` (TrimHeap): heap
  /// reconciliation after a head failover, when the dead head's bookkeeping
  /// for all non-checkpoint blocks is unrecoverable. Windows go with the
  /// blocks; in-flight payloads sharing a freed block stay pinned.
  void retain_only(const std::vector<offload::TargetPtr>& keep);

  std::size_t live() const;

 private:
  void register_window(offload::TargetPtr ptr);

  struct Block {
    std::shared_ptr<std::byte[]> mem;
    std::size_t size = 0;
  };
  mpi::Universe* universe_ = nullptr;  ///< null: no window registration
  mpi::Rank rank_ = -1;
  mutable std::mutex mutex_;
  std::unordered_map<offload::TargetPtr, Block> live_;
};

/// Origin half of an event (the E_O of Figure 3). wait() blocks the origin
/// thread until the destination's completion notification arrives.
class OriginEvent {
 public:
  /// `peer` is the third rank involved, if any (the opposite half of a
  /// worker->worker exchange); a failure of either dest or peer fails the
  /// event.
  OriginEvent(mpi::Tag tag, EventKind kind, mpi::Rank dest,
              mpi::Rank peer = mpi::kAnySource)
      : tag_(tag), kind_(kind), dest_(dest), peer_(peer) {}

  mpi::Tag tag() const noexcept { return tag_; }
  EventKind kind() const noexcept { return kind_; }
  mpi::Rank dest() const noexcept { return dest_; }
  mpi::Rank peer() const noexcept { return peer_; }

  /// Blocks until completion; returns the destination's result blob.
  /// Throws WorkerDiedError if the destination (or exchange peer) died
  /// before completing the event.
  const Bytes& wait();

  bool done() const;

 private:
  friend class EventSystem;

  void complete(Bytes result);

  /// Completes exceptionally: `dead` (dest or peer) died. wait() throws.
  void fail(mpi::Rank dead);

  const mpi::Tag tag_;
  const EventKind kind_;
  const mpi::Rank dest_;
  const mpi::Rank peer_;

  // Inbound payload request (Retrieve posts its irecv before notifying).
  mpi::Request data_request_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool done_ = false;
  mpi::Rank failed_rank_ = mpi::kAnySource;  ///< >= 0: completed by failure
  Bytes result_;
};

using OriginEventPtr = std::shared_ptr<OriginEvent>;

struct EventSystemStats {
  std::atomic<std::int64_t> originated{0};
  std::atomic<std::int64_t> handled{0};
  std::atomic<std::int64_t> reenqueued{0};
  std::atomic<std::int64_t> kernels_run{0};
};

class EventSystem {
 public:
  /// `memory`/`exec_pool` may be null on the head (it executes nothing).
  /// `replica`, when non-null, receives HeadState payloads (worker ranks
  /// eligible to shadow the head's recording state).
  EventSystem(mpi::RankContext& ctx, const ClusterOptions& opts,
              WorkerMemory* memory, omp::TaskRuntime* exec_pool,
              ReplicaStore* replica = nullptr);
  ~EventSystem();

  EventSystem(const EventSystem&) = delete;
  EventSystem& operator=(const EventSystem&) = delete;

  // --- origin API (head helper threads) --------------------------------

  /// Creates an event, ships its notification (and eager payload, for
  /// Submit) and returns the waitable origin half. `peer` marks the other
  /// half of a worker->worker exchange (failure of either rank fails the
  /// event). Throws WorkerDiedError when dest/peer is already known dead.
  /// A borrowed payload is safe here: the destination completes the event
  /// only after delivery, and the origin blocks in wait() until then.
  OriginEventPtr start(mpi::Rank dest, EventKind kind, Bytes header,
                       mpi::Payload payload = {},
                       mpi::Rank peer = mpi::kAnySource);

  /// Retrieve: posts the inbound irecv into `dst_host` *before* notifying
  /// the worker, so the payload can never race the receive. `kind` may be
  /// SnapshotFetch (wire-identical pull of a checkpoint shadow) instead of
  /// the default Retrieve.
  OriginEventPtr start_retrieve(mpi::Rank dest, offload::TargetPtr src,
                                void* dst_host, std::size_t size,
                                EventKind kind = EventKind::Retrieve);

  /// start + wait.
  Bytes run(mpi::Rank dest, EventKind kind, Bytes header,
            mpi::Payload payload = {});

  /// Fresh event tag (unique per origin rank).
  mpi::Tag allocate_tag();

  /// Fresh persistent-channel tag from this rank's slice of the reserved
  /// top-of-range channel space (see kChannelTagBase). Striped per rank so
  /// a promoted head can never re-issue a tag the dead head's orphaned
  /// payloads still carry.
  mpi::Tag allocate_channel_tag();

  /// Ships `payload` to `dest` on the data comm selected by `tag`, outside
  /// any event. The persistent Submit path uses this to put the payload on
  /// a fixed channel tag (SubmitHeader::data_tag) instead of the event tag.
  void send_data(mpi::Rank dest, mpi::Tag tag, mpi::Payload payload);

  // --- fault handling (paper §5) ---------------------------------------

  /// Declares `dead` failed: every origin event whose destination or
  /// exchange peer is `dead` completes exceptionally (wait() throws
  /// WorkerDiedError) and future start()s to it throw immediately.
  /// Thread-safe; called by the failure detector on the head.
  void fail_rank(mpi::Rank dead);

  /// Head only: tells every live worker that `dead` died, so they abort
  /// pending events (exchange halves) that involve it.
  void announce_rank_dead(mpi::Rank dead);

  /// Whether `r` has been declared dead (local knowledge).
  bool is_rank_dead(mpi::Rank r) const;

  /// Combined liveness: declared dead by a detector OR already poisoned in
  /// the simulated universe (a corpse no detector has flagged yet). The
  /// checkpoint store uses this to resolve which snapshot holder survives.
  bool is_rank_gone(mpi::Rank r) const;

  /// Blocks until no origin event is outstanding — the quiescent point the
  /// recovery path needs before it mutates cluster-wide data state.
  void quiesce();

  // --- lifecycle --------------------------------------------------------

  /// Head only: shuts down every live worker's event system (acknowledged),
  /// then stops the local one. Dead ranks are skipped.
  void shutdown_cluster();

  /// Blocks the worker main thread until a Shutdown event arrives.
  void wait_until_stopped();

  bool stopped() const { return stop_.load(std::memory_order_acquire); }

  const EventSystemStats& stats() const { return stats_; }
  mpi::Rank rank() const noexcept { return rank_; }

 private:
  // --- persistent channels (destination side) --------------------------
  //
  // Caches of re-armable minimpi requests keyed by the wave structure, so
  // a steady-state wave re-uses its pre-posted receives and pre-armed puts
  // instead of allocating fresh mailbox slots and re-resolving windows.
  // Entries are shared_ptrs: eviction detaches an entry from the cache
  // while the handler mid-cycle keeps it alive until the cycle settles.

  /// Pre-armed one-sided put, keyed by its full wire shape.
  struct PutChannel {
    mpi::PersistentRequest pr;
    bool in_use = false;  ///< a handler owns the current cycle
  };
  /// (peer, win, offset, src, size) — the RmaPutHeader fields.
  using PutKey = std::tuple<mpi::Rank, offload::TargetPtr, std::uint64_t,
                            offload::TargetPtr, std::uint64_t>;

  /// Pre-posted receive on a fixed channel tag (Submit / ExchangeRecv).
  struct RecvChannel {
    mpi::PersistentRequest pr;
    offload::TargetPtr dst = 0;
    std::uint64_t size = 0;
    mpi::Rank peer = -1;
    bool in_use = false;
  };

  /// Destination half of an event (the E_D of Figure 3).
  struct RemoteEvent {
    EventAnnounce announce;
    int phase = 0;
    mpi::Request io;  ///< pending irecv for Submit / ExchangeRecv
    std::shared_ptr<Bytes> blob;  ///< HeadState payload landing buffer
    std::shared_ptr<PutChannel> put_channel;    ///< phase 2: persistent put
    std::shared_ptr<RecvChannel> recv_channel;  ///< phase 2: persistent recv
  };

  /// Finds-or-creates and start()s the put channel for `h`; null means
  /// fall back to a transient put this time (channel busy, window gone,
  /// peer dead). `tag` seeds a fresh channel's comm/accounting tag.
  std::shared_ptr<PutChannel> arm_put_channel(const RmaPutHeader& h,
                                              mpi::Tag tag);

  /// Finds-or-creates and start()s the recv channel on `data_tag` (shape
  /// mismatches rebuild the entry — the destination block moved); null
  /// means fall back to a transient irecv this time.
  std::shared_ptr<RecvChannel> arm_recv_channel(mpi::Tag data_tag,
                                                offload::TargetPtr dst,
                                                std::uint64_t size,
                                                mpi::Rank peer);

  /// Drops every channel that reads or writes the local block at `p`
  /// (about to be freed by a Delete event).
  void evict_channels_for(offload::TargetPtr p);

  /// Drops the whole channel cache (RankDead: any cached shape may involve
  /// the corpse, and post-recovery tags are fresh anyway).
  void clear_channels();

  void gate_main();
  void handler_main(int index);

  /// This rank died (gate caught RankKilledError): declare self dead and
  /// fail every outstanding origin event, so origin waiters unblock —
  /// their completions can never arrive once the mailbox is poisoned.
  void fail_local();

  /// Advances the event; true when finished (completion already sent).
  bool progress(RemoteEvent& ev);
  void send_completion(mpi::Rank to, mpi::Tag tag, Bytes result);

  mpi::Comm data_comm_for(mpi::Tag tag) const;

  void enqueue_remote(RemoteEvent&& ev);
  void stop_local();

  const ClusterOptions opts_;
  const mpi::Rank rank_;
  mpi::Comm control_;
  std::vector<mpi::Comm> data_comms_;

  WorkerMemory* memory_;
  omp::TaskRuntime* exec_pool_;
  ReplicaStore* replica_;

  // Origin registry: events awaiting completion, keyed by tag. Also guards
  // the dead-rank set; origin_cv_ signals the registry shrinking (quiesce).
  mutable std::mutex origin_mutex_;
  std::condition_variable origin_cv_;
  std::unordered_map<mpi::Tag, OriginEventPtr> origin_events_;
  std::unordered_set<mpi::Rank> dead_ranks_;
  std::atomic<mpi::Tag> next_tag_{kFirstEventTag};
  std::atomic<mpi::Tag> next_channel_tag_{0};  ///< set per rank in the ctor

  // Channel caches (see the structs above). The mutex guards the maps and
  // the in_use flags; a cycle in flight is owned by exactly one handler.
  std::mutex channel_mutex_;
  std::map<PutKey, std::shared_ptr<PutChannel>> put_channels_;
  std::unordered_map<mpi::Tag, std::shared_ptr<RecvChannel>> recv_channels_;

  // Local destination-event queue. active_events_ counts events currently
  // inside progress() — TrimHeap defers until it is the only one.
  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<RemoteEvent> queue_;
  std::atomic<int> active_events_{0};

  std::atomic<bool> stop_{false};
  std::mutex stopped_mutex_;
  std::condition_variable stopped_cv_;

  EventSystemStats stats_;

  std::vector<std::thread> handlers_;
  std::thread gate_;  // declared last: starts after, joined first
};

}  // namespace ompc::core
