#include "core/data_manager.hpp"

#include <algorithm>
#include <cstring>

#include "common/check.hpp"
#include "common/log.hpp"

namespace ompc::core {

DataManager::DataManager(EventSystem& events, const ClusterOptions& opts)
    : events_(&events), opts_(opts) {
  // Elastic (ROADMAP "elastic pool sizing"): the ceiling is the old fixed
  // launch size — it still bounds concurrent fetches — but only a small
  // floor spawns upfront; fan-outs grow the pool on demand and idle growth
  // retires. Spawns are counted straight into stats_ by the pool (growth
  // happens mid-run, on transfer threads, where we cannot poll).
  const int n = opts_.transfer_threads > 0 ? opts_.transfer_threads
                                           : opts_.cluster_pool_threads();
  transfer_pool_ = std::make_unique<HelperPool>(
      opts_.pool_floor(n), n, opts_.pool_idle_shrink_ms, "xfer",
      &stats_.threads_spawned);
}

void DataManager::register_buffer(void* host, std::size_t size) {
  {
    std::unique_lock<std::shared_mutex> lock(mutex_);
    auto it = buffers_.find(host);
    OMPC_CHECK_MSG(it == buffers_.end(),
                   "buffer " << host << " is already mapped (exit it first)");
    auto b = std::make_unique<BufferState>();
    b->host = host;
    b->size = size;
    buffers_.emplace(host, std::move(b));
  }
  // A fresh mapping has no checkpoint entry to reuse.
  mark_dirty(host);
}

DataManager::BufferState* DataManager::find(const void* host) const {
  // Reader-side lookup: every helper and transfer thread comes through
  // here, so readers share the lock; only register/erase are exclusive.
  std::shared_lock<std::shared_mutex> lock(mutex_);
  auto it = buffers_.find(host);
  return it == buffers_.end() ? nullptr : it->second.get();
}

bool DataManager::is_registered(const void* host) const {
  return find(host) != nullptr;
}

std::size_t DataManager::buffer_size(const void* host) const {
  const BufferState* b = find(host);
  return b == nullptr ? 0 : b->size;
}

std::size_t DataManager::num_buffers() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return buffers_.size();
}

offload::TargetPtr DataManager::alloc_on(mpi::Rank worker, BufferState& b) {
  {
    std::lock_guard<std::mutex> lock(b.lock);
    auto it = b.addr.find(worker);
    if (it != b.addr.end()) {
      // An Absent replica with a live block is the ChannelPlan at work:
      // after_write kept the allocation, so this wave skips the
      // Delete+Alloc round-trips entirely and re-fills in place.
      if (channels_armed())
        stats_.persistent_reuses.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }
  ArchiveWriter w;
  w.put(AllocHeader{b.size});
  const Bytes reply = events_->run(worker, EventKind::Alloc, w.take());
  ArchiveReader r(reply);
  const auto ptr = r.get<offload::TargetPtr>();
  stats_.allocs.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(b.lock);
  // ensure_on's Transferring marker makes per-worker allocation single-
  // flight, so no entry can have appeared meanwhile.
  b.addr.emplace(worker, ptr);
  return ptr;
}

void DataManager::delete_on_locked(mpi::Rank worker, BufferState& b,
                                   std::unique_lock<std::mutex>& lk) {
  auto it = b.addr.find(worker);
  if (it == b.addr.end()) return;
  const offload::TargetPtr ptr = it->second;
  b.addr.erase(it);
  b.state.erase(worker);
  // The event blocks; release the buffer lock while it runs.
  lk.unlock();
  ArchiveWriter w;
  w.put(DeleteHeader{ptr});
  events_->run(worker, EventKind::Delete, w.take());
  stats_.deletes.fetch_add(1, std::memory_order_relaxed);
  lk.lock();
}

void DataManager::submit_to(mpi::Rank worker, offload::TargetPtr dst,
                            BufferState& b) {
  // Borrowed, not copied: run() blocks until the worker's completion,
  // which it sends only after the payload landed in its device buffer —
  // so b.host outlives the flight, and fetch_to_head_locked's coalescing
  // keeps anyone from rewriting it meanwhile. With an armed plan the
  // payload rides the edge's fixed channel tag ahead of the announce (the
  // worker's pre-posted slot — or its unexpected queue — matches it).
  const mpi::Tag ctag =
      channels_armed() ? channel_tag_for(b.host, -1, worker) : 0;
  ArchiveWriter w;
  w.put(SubmitHeader{dst, b.size, ctag});
  if (ctag != 0) {
    events_->send_data(worker, ctag, mpi::Payload::borrow(b.host, b.size));
    events_->run(worker, EventKind::Submit, w.take());
  } else {
    events_->run(worker, EventKind::Submit, w.take(),
                 mpi::Payload::borrow(b.host, b.size));
  }
  stats_.submits.fetch_add(1, std::memory_order_relaxed);
}

offload::TargetPtr DataManager::ensure_on(mpi::Rank worker, BufferState& b) {
  mpi::Rank src = -1;  // -1 = the head's host copy
  {
    std::unique_lock<std::mutex> lk(b.lock);
    for (;;) {
      const auto it = b.state.find(worker);
      const CopyState st =
          it == b.state.end() ? CopyState::Absent : it->second;
      if (st == CopyState::Valid) return b.addr.at(worker);
      if (st == CopyState::Transferring) {
        b.cv.wait(lk);
        continue;
      }
      break;  // Absent: this thread owns the transfer
    }
    for (const auto& [r, st] : b.state) {
      if (st == CopyState::Valid) {
        src = r;
        break;
      }
    }
    OMPC_CHECK_MSG(src >= 0 || b.on_head,
                   "buffer has no valid location anywhere");
    b.state[worker] = CopyState::Transferring;
  }

  // Transfer outside the lock: replicas to other workers proceed in
  // parallel on their own links. If the transfer dies (worker failure),
  // the Transferring marker MUST be rolled back to Absent and waiters
  // woken, or a concurrent ensure_on for the same (buffer, worker) pair
  // would sleep on the cv forever and deadlock dispatch.
  try {
  const offload::TargetPtr dst = alloc_on(worker, b);
  if (src >= 0 && opts_.forwarding == Forwarding::Direct &&
      opts_.data_plane == DataPlane::Rma) {
    // §4.3 direct forwarding over the one-sided data plane: a single
    // RmaPut event tells the producer to put straight into the consumer's
    // freshly allocated block (its window id is its address). One event +
    // one put where the rendezvous pair needs two events and a matched
    // send/recv — and the consumer's event handlers never run.
    const offload::TargetPtr src_ptr = [&] {
      std::lock_guard<std::mutex> lock(b.lock);
      return b.addr.at(src);
    }();
    ArchiveWriter w;
    w.put(RmaPutHeader{src_ptr, b.size, worker, dst, 0});
    events_->start(src, EventKind::RmaPut, w.take(), {}, worker)->wait();
    stats_.exchanges.fetch_add(1, std::memory_order_relaxed);
  } else if (src >= 0 && opts_.forwarding == Forwarding::Direct) {
    // §4.3: direct worker->worker forwarding commanded by the head. Both
    // halves share one payload tag; post the receive half first.
    const offload::TargetPtr src_ptr = [&] {
      std::lock_guard<std::mutex> lock(b.lock);
      return b.addr.at(src);
    }();
    // Armed plan: the transfer edge's fixed channel tag, so the consumer's
    // pre-posted persistent receive matches the payload without a fresh
    // mailbox slot. Transient: a throwaway per-event tag as before.
    const mpi::Tag data_tag = channels_armed()
                                  ? channel_tag_for(b.host, src, worker)
                                  : events_->allocate_tag();
    ArchiveWriter rw;
    rw.put(ExchangeRecvHeader{dst, b.size, src, data_tag});
    auto recv_ev =
        events_->start(worker, EventKind::ExchangeRecv, rw.take(), {}, src);
    ArchiveWriter sw;
    sw.put(ExchangeSendHeader{src_ptr, b.size, worker, data_tag});
    auto send_ev =
        events_->start(src, EventKind::ExchangeSend, sw.take(), {}, worker);
    send_ev->wait();
    recv_ev->wait();
    stats_.exchanges.fetch_add(1, std::memory_order_relaxed);
  } else if (src >= 0) {
    // Forwarding::ViaHead ablation strawman: bounce through the head's
    // host buffer (still the naive policy — but staged once, not copied
    // again into the payload).
    {
      std::unique_lock<std::mutex> lk(b.lock);
      fetch_to_head_locked(b, lk);
    }
    submit_to(worker, dst, b);
  } else {
    // Only the head has the data: submit host -> worker, zero-copy (see
    // submit_to for why borrowing is safe).
    submit_to(worker, dst, b);
  }
  stats_.bytes_moved.fetch_add(static_cast<std::int64_t>(b.size),
                               std::memory_order_relaxed);

  std::lock_guard<std::mutex> lock(b.lock);
  b.state[worker] = CopyState::Valid;
  b.cv.notify_all();
  return dst;
  } catch (...) {
    std::lock_guard<std::mutex> lock(b.lock);
    b.state.erase(worker);  // back to Absent; the replica never materialized
    b.cv.notify_all();
    throw;
  }
}

void DataManager::enter_to_worker(mpi::Rank worker, const void* host,
                                  bool copy) {
  BufferState* b = find(host);
  OMPC_CHECK_MSG(b != nullptr, "enter data for unregistered buffer " << host);
  if (copy) {
    ensure_on(worker, *b);
  } else {
    // map(alloc:): allocate only; first use will still copy (presence-
    // based forwarding, §4.3).
    std::unique_lock<std::mutex> lk(b->lock);
    if (b->state.find(worker) == b->state.end()) {
      b->state[worker] = CopyState::Transferring;
      lk.unlock();
      try {
        alloc_on(worker, *b);
      } catch (...) {
        lk.lock();
        b->state.erase(worker);  // see ensure_on: never leave Transferring
        b->cv.notify_all();
        throw;
      }
      lk.lock();
      b->state[worker] = CopyState::Absent;
      b->cv.notify_all();
    }
  }
}

void DataManager::exit_to_head(void* host, bool copy) {
  BufferState* b = find(host);
  OMPC_CHECK_MSG(b != nullptr, "exit data for unregistered buffer " << host);
  {
    std::unique_lock<std::mutex> lk(b->lock);
    if (copy) fetch_to_head_locked(*b, lk);
    // Remove from the entire cluster (§4.3 exit rule).
    while (!b->addr.empty())
      delete_on_locked(b->addr.begin()->first, *b, lk);
  }
  std::unique_lock<std::shared_mutex> lock(mutex_);
  buffers_.erase(host);
}

std::vector<offload::TargetPtr> DataManager::prepare_args(
    mpi::Rank worker, std::span<const void* const> buffers) {
  std::vector<BufferState*> states;
  states.reserve(buffers.size());
  for (const void* host : buffers) {
    BufferState* b = find(host);
    OMPC_CHECK_MSG(b != nullptr,
                   "target argument " << host << " was never entered");
    states.push_back(b);
  }
  std::vector<offload::TargetPtr> out(buffers.size(), 0);
  // A target region's inputs arrive from independent locations; fetch them
  // concurrently so one task pays max(transfer) instead of sum(transfer).
  // The extra fetches run as jobs on the persistent transfer pool (shared
  // by every in-flight task) instead of freshly spawned threads — per-task
  // thread churn was a measurable slice of head overhead. Transfer jobs
  // never submit further jobs, so a saturated pool only queues, it cannot
  // deadlock. (ensure_on already coalesces duplicate buffers.) Fetcher
  // failures (a worker dying mid-transfer) are re-raised by fan_out so the
  // helper thread running the task sees them.
  fan_out(*transfer_pool_, states.size(), [this, worker, &states, &out](
                                              std::size_t i) {
    out[i] = ensure_on(worker, *states[i]);
  });
  return out;
}

void DataManager::after_write(mpi::Rank worker, const omp::DepList& deps) {
  for (const omp::Dep& d : deps) {
    if (!omp::is_write(d.type)) continue;
    BufferState* b = find(d.addr);
    if (b == nullptr) continue;  // dependence on non-buffer storage
    std::unique_lock<std::mutex> lk(b->lock);
    // Dependence edges order writers after every reader (WAR), so no
    // replica of this buffer can be mid-transfer here.
    for (const auto& [r, st] : b->state) {
      OMPC_CHECK_MSG(st != CopyState::Transferring,
                     "write invalidation raced a transfer");
      (void)r;
    }
    // The writer holds the only fresh copy; every replica is stale and is
    // removed so a later use must fetch from the up-to-date location.
    // With an armed ChannelPlan the stale blocks stay ALLOCATED (only the
    // state entry goes, downgrading them to Absent): the steady-state wave
    // will re-fill the very same block next iteration, so the
    // Delete+Alloc round-trips — and their wire envelopes — disappear.
    // Every recovery path (reset_all_to_host, purge_rank, restore_buffer,
    // exit_to_head, cleanup_all) still erases addr entries, so kept blocks
    // can never leak past the plan.
    if (!channels_armed()) {
      std::vector<mpi::Rank> stale;
      for (const auto& [r, ptr] : b->addr) {
        (void)ptr;
        if (r != worker) stale.push_back(r);
      }
      for (mpi::Rank r : stale) delete_on_locked(r, *b, lk);
    }
    b->state.clear();
    b->state[worker] = CopyState::Valid;
    b->on_head = false;
    lk.unlock();
    mark_dirty(d.addr);
  }
}

void DataManager::after_host_write(const omp::DepList& deps) {
  for (const omp::Dep& d : deps) {
    if (!omp::is_write(d.type)) continue;
    if (is_registered(d.addr)) mark_dirty(d.addr);
  }
}

void DataManager::cleanup_all() {
  std::vector<BufferState*> all;
  {
    std::shared_lock<std::shared_mutex> lock(mutex_);
    for (auto& [host, b] : buffers_) {
      (void)host;
      all.push_back(b.get());
    }
  }
  for (BufferState* b : all) {
    std::unique_lock<std::mutex> lk(b->lock);
    while (!b->addr.empty())
      delete_on_locked(b->addr.begin()->first, *b, lk);
  }
  std::unique_lock<std::shared_mutex> lock(mutex_);
  buffers_.clear();
}

void DataManager::fetch_to_head_locked(BufferState& b,
                                       std::unique_lock<std::mutex>& lk) {
  for (;;) {
    if (b.on_head) return;
    if (!b.head_fetching) break;  // this thread owns the retrieve
    b.cv.wait(lk);
  }
  mpi::Rank src = -1;
  for (const auto& [r, st] : b.state) {
    if (st == CopyState::Valid) {
      src = r;
      break;
    }
  }
  OMPC_CHECK_MSG(src >= 0, "no valid copy of buffer to retrieve");
  const offload::TargetPtr src_ptr = b.addr.at(src);
  b.head_fetching = true;
  lk.unlock();
  try {
    events_->start_retrieve(src, src_ptr, b.host, b.size)->wait();
  } catch (...) {
    lk.lock();
    b.head_fetching = false;
    b.cv.notify_all();
    throw;
  }
  stats_.retrieves.fetch_add(1, std::memory_order_relaxed);
  stats_.bytes_moved.fetch_add(static_cast<std::int64_t>(b.size),
                               std::memory_order_relaxed);
  stats_.head_fetch_bytes.fetch_add(static_cast<std::int64_t>(b.size),
                                    std::memory_order_relaxed);
  lk.lock();
  b.head_fetching = false;
  b.on_head = true;
  b.cv.notify_all();
}

void DataManager::refresh_head(const void* host) {
  BufferState* b = find(host);
  OMPC_CHECK_MSG(b != nullptr, "refresh_head for unregistered buffer " << host);
  std::unique_lock<std::mutex> lk(b->lock);
  fetch_to_head_locked(*b, lk);
}

std::int64_t DataManager::refresh_head_many(
    std::span<const void* const> hosts) {
  std::atomic<std::int64_t> fetched{0};
  fan_out(*transfer_pool_, hosts.size(), [this, &hosts, &fetched](
                                             std::size_t i) {
    BufferState* b = find(hosts[i]);
    OMPC_CHECK_MSG(b != nullptr,
                   "refresh_head for unregistered buffer " << hosts[i]);
    std::unique_lock<std::mutex> lk(b->lock);
    if (!b->on_head)
      fetched.fetch_add(static_cast<std::int64_t>(b->size),
                        std::memory_order_relaxed);
    fetch_to_head_locked(*b, lk);
  });
  return fetched.load();
}

void DataManager::for_each_buffer(
    const std::function<void(void*, std::size_t)>& fn) const {
  std::vector<std::pair<void*, std::size_t>> all;
  {
    std::shared_lock<std::shared_mutex> lock(mutex_);
    all.reserve(buffers_.size());
    for (const auto& [host, b] : buffers_) {
      (void)host;
      all.emplace_back(b->host, b->size);
    }
  }
  for (const auto& [host, size] : all) fn(host, size);
}

DataManager::Residency DataManager::residency(const void* host) const {
  Residency r;
  BufferState* b = find(host);
  if (b == nullptr) return r;
  std::lock_guard<std::mutex> lock(b->lock);
  r.on_head = b->on_head;
  for (const auto& [rank, st] : b->state) {
    if (st == CopyState::Valid) {
      r.owner = rank;
      r.owner_addr = b->addr.at(rank);
      break;
    }
  }
  return r;
}

void DataManager::purge_rank(mpi::Rank dead) {
  std::vector<BufferState*> all;
  {
    std::shared_lock<std::shared_mutex> lock(mutex_);
    for (auto& [host, b] : buffers_) {
      (void)host;
      all.push_back(b.get());
    }
  }
  for (BufferState* b : all) {
    std::lock_guard<std::mutex> lock(b->lock);
    const auto st = b->state.find(dead);
    const bool was_valid = st != b->state.end() && st->second == CopyState::Valid;
    b->addr.erase(dead);
    b->state.erase(dead);
    if (was_valid && !b->on_head) {
      bool elsewhere = false;
      for (const auto& [r, s] : b->state) {
        (void)r;
        if (s == CopyState::Valid) {
          elsewhere = true;
          break;
        }
      }
      if (!elsewhere)
        stats_.buffers_lost.fetch_add(1, std::memory_order_relaxed);
    }
    // Wake anyone parked on a Transferring state that involved the corpse.
    b->cv.notify_all();
  }
}

void DataManager::reset_all_to_host() {
  std::vector<BufferState*> all;
  {
    std::shared_lock<std::shared_mutex> lock(mutex_);
    for (auto& [host, b] : buffers_) {
      (void)host;
      all.push_back(b.get());
    }
  }
  for (BufferState* b : all) {
    std::unique_lock<std::mutex> lk(b->lock);
    while (!b->addr.empty())
      delete_on_locked(b->addr.begin()->first, *b, lk);
    b->state.clear();
    b->on_head = true;
  }
}

void DataManager::restore_buffer(void* host, std::size_t size,
                                 std::span<const std::byte> content) {
  if (!is_registered(host)) register_buffer(host, size);
  BufferState* b = find(host);
  std::unique_lock<std::mutex> lk(b->lock);
  OMPC_CHECK_MSG(b->size == size, "checkpoint size mismatch for buffer "
                                      << host << ": " << b->size << " vs "
                                      << size);
  while (!b->addr.empty())
    delete_on_locked(b->addr.begin()->first, *b, lk);
  b->state.clear();
  std::memcpy(host, content.data(), size);
  b->on_head = true;
}

Bytes DataManager::serialize_registry() const {
  ArchiveWriter w;
  std::shared_lock<std::shared_mutex> lock(mutex_);
  w.put<std::uint64_t>(buffers_.size());
  for (const auto& [host, b] : buffers_) {
    (void)host;
    w.put<std::uint64_t>(reinterpret_cast<std::uintptr_t>(b->host));
    w.put<std::uint64_t>(b->size);
  }
  return w.take();
}

void DataManager::adopt_registry(std::span<const std::byte> data) {
  {
    std::unique_lock<std::shared_mutex> lock(mutex_);
    buffers_.clear();
  }
  ArchiveReader r(data);
  const auto n = r.get<std::uint64_t>();
  for (std::uint64_t i = 0; i < n; ++i) {
    void* host = reinterpret_cast<void*>(
        static_cast<std::uintptr_t>(r.get<std::uint64_t>()));
    const auto size = r.get<std::uint64_t>();
    // Host-resident and dirty, like a fresh registration: the failover
    // rollback redistributes placement and the next capture re-snapshots.
    register_buffer(host, size);
  }
}

std::size_t DataManager::migrate_buffers(mpi::Rank joiner,
                                         std::size_t take_every) {
  if (take_every == 0) take_every = 1;
  std::vector<BufferState*> all;
  {
    std::shared_lock<std::shared_mutex> lock(mutex_);
    all.reserve(buffers_.size());
    for (auto& [host, b] : buffers_) {
      (void)host;
      all.push_back(b.get());
    }
  }
  std::size_t migrated = 0;
  std::size_t seen = 0;
  for (BufferState* b : all) {
    {
      // Only worker-resident buffers move; head-resident ones get placed
      // by the next schedule anyway.
      std::lock_guard<std::mutex> lk(b->lock);
      bool worker_valid = false;
      for (const auto& [r, st] : b->state) {
        (void)r;
        if (st == CopyState::Valid) {
          worker_valid = true;
          break;
        }
      }
      if (!worker_valid || b->state.count(joiner) != 0) continue;
    }
    if (seen++ % take_every != 0) continue;
    ensure_on(joiner, *b);
    // The joiner becomes the buffer's only worker replica (its ownership
    // slice); the old owner's copy is deleted like a write invalidation.
    std::unique_lock<std::mutex> lk(b->lock);
    std::vector<mpi::Rank> stale;
    for (const auto& [r, ptr] : b->addr) {
      (void)ptr;
      if (r != joiner) stale.push_back(r);
    }
    for (mpi::Rank r : stale) delete_on_locked(r, *b, lk);
    ++migrated;
  }
  return migrated;
}

void DataManager::disarm_channels() {
  channels_on_.store(false, std::memory_order_release);
  // Retire the plan's fixed tags: a payload orphaned by the failure (sent,
  // never received) must not be matchable by the next plan's channels —
  // fresh tags keep recovery bitwise-identical to a transient run.
  std::lock_guard<std::mutex> lock(channel_tag_mutex_);
  channel_tags_.clear();
}

mpi::Tag DataManager::channel_tag_for(const void* host, mpi::Rank src,
                                      mpi::Rank dst) {
  std::lock_guard<std::mutex> lock(channel_tag_mutex_);
  const auto key = std::make_tuple(host, src, dst);
  const auto it = channel_tags_.find(key);
  if (it != channel_tags_.end()) return it->second;
  const mpi::Tag t = events_->allocate_channel_tag();
  channel_tags_.emplace(key, t);
  return t;
}

void DataManager::mark_dirty(const void* host) {
  std::lock_guard<std::mutex> lock(dirty_mutex_);
  dirty_.insert(host);
}

std::unordered_set<const void*> DataManager::dirty_buffers() const {
  std::lock_guard<std::mutex> lock(dirty_mutex_);
  return dirty_;
}

void DataManager::mark_all_clean() {
  std::lock_guard<std::mutex> lock(dirty_mutex_);
  dirty_.clear();
}

DataManager::Snapshot DataManager::snapshot(const void* host) const {
  Snapshot s;
  BufferState* b = find(host);
  if (b == nullptr) return s;
  std::lock_guard<std::mutex> lock(b->lock);
  s.valid_on_head = b->on_head;
  for (const auto& [r, st] : b->state) {
    if (st == CopyState::Valid) s.valid_workers.insert(r);
  }
  for (const auto& [r, ptr] : b->addr) {
    (void)ptr;
    s.allocated_workers.insert(r);
  }
  return s;
}

}  // namespace ompc::core
