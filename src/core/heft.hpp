// Task-to-worker schedulers (paper §4.4).
//
// The primary policy is HEFT [Topcuoglu et al. 2002] with the paper's two
// adaptations:
//   1. classical `task` nodes are pinned to the head node (OpenMP
//      semantics would be violated otherwise);
//   2. `target data nowait` nodes never enter the scheduler — they are
//      pinned afterwards to the worker of their first consumer (enter) or
//      their producer (exit), so transfers are never staged through an
//      unrelated process.
// Round-robin, random and min-load policies exist for the scheduler
// ablation bench.
#pragma once

#include <cstdint>
#include <vector>

#include "core/graph.hpp"
#include "core/options.hpp"

namespace ompc::core {

/// Worker index (0-based, NOT a minimpi rank) per task id; kHeadProc for
/// tasks executed by the head node.
inline constexpr int kHeadProc = -1;

struct ScheduleResult {
  std::vector<int> processor;  ///< per graph task id
  double makespan_estimate_s = 0.0;
  std::int64_t schedule_ns = 0;  ///< wall time the scheduler itself took
};

struct CostModel {
  /// Estimated seconds to move `bytes` between two distinct processors.
  double latency_s = 0.0;
  double per_byte_s = 0.0;

  double comm_s(std::size_t bytes) const {
    return latency_s + per_byte_s * static_cast<double>(bytes);
  }

  static CostModel from_network(const mpi::NetworkModel& net) {
    CostModel m;
    m.latency_s = static_cast<double>(net.latency_ns) / 1e9;
    m.per_byte_s = net.bandwidth_Bps > 0.0 ? 1.0 / net.bandwidth_Bps : 0.0;
    return m;
  }
};

/// Schedules `graph` onto `num_workers` workers with the chosen policy and
/// applies the data-task pinning adaptation. `default_cost_s` substitutes
/// for tasks with cost_s == 0.
ScheduleResult schedule(SchedulerKind kind, const ClusterGraph& graph,
                        int num_workers, const CostModel& cost,
                        double default_cost_s, std::uint64_t seed = 0);

}  // namespace ompc::core
