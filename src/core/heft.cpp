#include "core/heft.hpp"

#include <algorithm>
#include <limits>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/time.hpp"

namespace ompc::core {

namespace {

double task_cost(const ClusterTask& t, double default_cost_s) {
  return t.cost_s > 0.0 ? t.cost_s : default_cost_s;
}

/// Upward rank: rank(i) = cost(i) + max over successors of
/// (comm(i,j) + rank(j)), computed in reverse topological order of the
/// collapsed view.
std::vector<double> upward_ranks(const ClusterGraph& graph,
                                 const CollapsedView& view,
                                 const CostModel& cost,
                                 double default_cost_s) {
  const std::size_t n = view.task_ids.size();
  std::vector<double> rank(n, 0.0);

  // Reverse topological order over the view: process a node once all its
  // successors are done (Kahn on the reversed DAG).
  std::vector<int> out_remaining(n);
  std::vector<int> stack;
  for (std::size_t i = 0; i < n; ++i) {
    out_remaining[i] = static_cast<int>(view.succs[i].size());
    if (out_remaining[i] == 0) stack.push_back(static_cast<int>(i));
  }
  std::size_t processed = 0;
  while (!stack.empty()) {
    const int i = stack.back();
    stack.pop_back();
    ++processed;
    const ClusterTask& t = graph.task(view.task_ids[static_cast<std::size_t>(i)]);
    double best_succ = 0.0;
    for (const auto& [s, bytes] : view.succs[static_cast<std::size_t>(i)]) {
      best_succ = std::max(
          best_succ, cost.comm_s(bytes) + rank[static_cast<std::size_t>(s)]);
    }
    rank[static_cast<std::size_t>(i)] =
        task_cost(t, default_cost_s) + best_succ;
    for (const auto& [p, bytes] : view.preds[static_cast<std::size_t>(i)]) {
      (void)bytes;
      if (--out_remaining[static_cast<std::size_t>(p)] == 0) stack.push_back(p);
    }
  }
  OMPC_CHECK_MSG(processed == n, "collapsed view contains a cycle");
  return rank;
}

/// Per-processor timeline supporting HEFT's insertion policy: find the
/// earliest idle gap of length `len` at or after `ready`.
class Timeline {
 public:
  double earliest_start(double ready, double len) const {
    double cursor = ready;
    for (const auto& [start, end] : busy_) {
      if (start - cursor >= len) return cursor;  // fits in the gap
      cursor = std::max(cursor, end);
    }
    return cursor;
  }

  void reserve(double start, double end) {
    auto it = std::lower_bound(
        busy_.begin(), busy_.end(), start,
        [](const auto& slot, double v) { return slot.first < v; });
    busy_.insert(it, {start, end});
  }

 private:
  std::vector<std::pair<double, double>> busy_;  // sorted by start
};

ScheduleResult schedule_heft(const ClusterGraph& graph,
                             const CollapsedView& view, int num_workers,
                             const CostModel& cost, double default_cost_s) {
  const std::size_t n = view.task_ids.size();
  ScheduleResult result;
  result.processor.assign(graph.size(), kHeadProc);

  const std::vector<double> rank =
      upward_ranks(graph, view, cost, default_cost_s);

  // Schedule in decreasing upward rank (ties by id for determinism).
  std::vector<int> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = static_cast<int>(i);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    const double ra = rank[static_cast<std::size_t>(a)];
    const double rb = rank[static_cast<std::size_t>(b)];
    return ra != rb ? ra > rb : a < b;
  });

  std::vector<Timeline> timelines(static_cast<std::size_t>(num_workers));
  Timeline head_timeline;
  std::vector<double> finish(n, 0.0);
  std::vector<int> proc(n, kHeadProc);
  double makespan = 0.0;

  for (int vi : order) {
    const std::size_t v = static_cast<std::size_t>(vi);
    const ClusterTask& t = graph.task(view.task_ids[v]);
    const double len = task_cost(t, default_cost_s);

    auto ready_on = [&](int candidate) {
      // Data must have arrived from every predecessor; transfers between
      // distinct processors pay the communication cost.
      double ready = 0.0;
      for (const auto& [p, bytes] : view.preds[v]) {
        const std::size_t ps = static_cast<std::size_t>(p);
        double arrive = finish[ps];
        if (proc[ps] != candidate) arrive += cost.comm_s(bytes);
        ready = std::max(ready, arrive);
      }
      return ready;
    };

    if (t.type == TaskType::Host) {
      // Adaptation 1: classical tasks run on the head, unconditionally.
      const double ready = ready_on(kHeadProc);
      const double start = head_timeline.earliest_start(ready, len);
      head_timeline.reserve(start, start + len);
      proc[v] = kHeadProc;
      finish[v] = start + len;
    } else {
      double best_eft = std::numeric_limits<double>::infinity();
      int best_p = 0;
      double best_start = 0.0;
      for (int p = 0; p < num_workers; ++p) {
        const double ready = ready_on(p);
        const double start =
            timelines[static_cast<std::size_t>(p)].earliest_start(ready, len);
        const double eft = start + len;
        if (eft < best_eft) {
          best_eft = eft;
          best_p = p;
          best_start = start;
        }
      }
      timelines[static_cast<std::size_t>(best_p)].reserve(best_start,
                                                          best_eft);
      proc[v] = best_p;
      finish[v] = best_eft;
    }
    makespan = std::max(makespan, finish[v]);
    result.processor[static_cast<std::size_t>(view.task_ids[v])] = proc[v];
  }
  result.makespan_estimate_s = makespan;
  return result;
}

ScheduleResult schedule_simple(SchedulerKind kind, const ClusterGraph& graph,
                               const CollapsedView& view, int num_workers,
                               double default_cost_s, std::uint64_t seed) {
  ScheduleResult result;
  result.processor.assign(graph.size(), kHeadProc);
  XorShift64 rng(seed);
  std::vector<double> load(static_cast<std::size_t>(num_workers), 0.0);
  int rr = 0;
  for (std::size_t v = 0; v < view.task_ids.size(); ++v) {
    const ClusterTask& t = graph.task(view.task_ids[v]);
    if (t.type == TaskType::Host) continue;  // stays on the head
    int p = 0;
    switch (kind) {
      case SchedulerKind::RoundRobin:
        p = rr++ % num_workers;
        break;
      case SchedulerKind::Random:
        p = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(num_workers)));
        break;
      case SchedulerKind::MinLoad: {
        p = static_cast<int>(std::min_element(load.begin(), load.end()) -
                             load.begin());
        load[static_cast<std::size_t>(p)] += task_cost(t, default_cost_s);
        break;
      }
      default:
        OMPC_CHECK(false);
    }
    result.processor[static_cast<std::size_t>(view.task_ids[v])] = p;
  }
  return result;
}

/// Adaptation 2: pin data tasks next to their compute partner.
void pin_data_tasks(const ClusterGraph& graph, ScheduleResult& result) {
  for (const ClusterTask& t : graph.tasks()) {
    if (t.type == TaskType::DataEnter) {
      // First consumer's worker (falls back to worker 0 for unused data).
      int pin = 0;
      for (int s : t.succs) {
        const int p = result.processor[static_cast<std::size_t>(s)];
        if (p != kHeadProc) {
          pin = p;
          break;
        }
      }
      result.processor[static_cast<std::size_t>(t.id)] = pin;
    } else if (t.type == TaskType::DataExit) {
      // Producer's worker.
      int pin = 0;
      for (int p_id : t.preds) {
        const int p = result.processor[static_cast<std::size_t>(p_id)];
        if (p != kHeadProc) {
          pin = p;
          break;
        }
      }
      result.processor[static_cast<std::size_t>(t.id)] = pin;
    }
  }
}

}  // namespace

ScheduleResult schedule(SchedulerKind kind, const ClusterGraph& graph,
                        int num_workers, const CostModel& cost,
                        double default_cost_s, std::uint64_t seed) {
  OMPC_CHECK_MSG(num_workers >= 1, "scheduling requires >= 1 worker");
  const Stopwatch timer;
  const CollapsedView view = graph.collapsed();

  ScheduleResult result;
  if (kind == SchedulerKind::Heft) {
    result = schedule_heft(graph, view, num_workers, cost, default_cost_s);
  } else {
    result = schedule_simple(kind, graph, view, num_workers, default_cost_s,
                             seed);
  }
  pin_data_tasks(graph, result);
  result.schedule_ns = timer.elapsed_ns();
  return result;
}

}  // namespace ompc::core
