#include "core/runtime.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <thread>

#include "common/check.hpp"
#include "common/log.hpp"
#include "common/time.hpp"
#include "core/heartbeat.hpp"

namespace ompc::core {

Runtime::Runtime(const ClusterOptions& opts, EventSystem& events)
    : opts_(opts),
      events_(events),
      dm_(events, opts),
      graph_(fresh_graph()),
      ckpt_(&events, opts.checkpoint_locality, opts.data_plane) {
  // Scheduler processors map onto this live-worker table; recovery shrinks
  // it, which is how survivors are re-ranked after a failure.
  live_workers_.reserve(static_cast<std::size_t>(opts.num_workers));
  for (int w = 0; w < opts.num_workers; ++w) live_workers_.push_back(w + 1);

  // HelperThreads: the LLVM bound — in-flight regions <= head threads.
  // TwoStep: the §7 fix decouples in-flight regions from head cores; its
  // pool scales with the *cluster* (enough to saturate every worker's
  // executor and transfer pipeline) instead of the head's thread count.
  const int helpers = std::max(1, opts_.async_mode == AsyncMode::HelperThreads
                                      ? opts_.helper_threads
                                      : opts_.cluster_pool_threads());
  helpers_ = std::make_unique<HelperPool>(helpers, "hh");
  stats_.threads_spawned += helpers_->num_threads();
}

Runtime::~Runtime() = default;

ClusterGraph Runtime::fresh_graph() const {
  // Edge weights resolve dependence addresses to buffer sizes through the
  // data manager's registry.
  return ClusterGraph(
      [this](const void* addr) { return dm_.buffer_size(addr); });
}

void Runtime::enter_data(void* host, std::size_t size, bool copy) {
  dm_.register_buffer(host, size);
  ClusterTask t;
  t.type = TaskType::DataEnter;
  t.buffer = host;
  t.copy = copy;
  // Listing 1: enter data carries depend(out: *A) — it is the first writer.
  t.deps = {omp::out(host)};
  graph_.add_task(std::move(t));
  ++stats_.data_tasks;
}

void Runtime::exit_data(void* host, bool copy) {
  OMPC_CHECK_MSG(dm_.is_registered(host),
                 "exit_data for buffer " << host << " that was never entered");
  ClusterTask t;
  t.type = TaskType::DataExit;
  t.buffer = host;
  t.copy = copy;
  // inout: runs after the last writer and all readers of the buffer.
  t.deps = {omp::inout(host)};
  graph_.add_task(std::move(t));
  ++stats_.data_tasks;
}

int Runtime::target(omp::DepList deps, offload::KernelId kernel, Args args,
                    double cost_s) {
  // §4.3's restriction: every buffer a target uses must appear in its
  // dependence list — that is the only way the DM can infer placement and
  // write intent. Enforced here instead of failing mysteriously later.
  for (const void* b : args.buffers()) {
    const bool listed = std::any_of(deps.begin(), deps.end(),
                                    [&](const omp::Dep& d) { return d.addr == b; });
    OMPC_CHECK_MSG(listed, "target buffer argument " << b
                                                     << " missing from depend list");
    OMPC_CHECK_MSG(dm_.is_registered(b),
                   "target buffer argument " << b << " was never entered");
  }
  ClusterTask t;
  t.type = TaskType::Target;
  t.kernel = kernel;
  t.buffer_args = args.buffers();
  t.scalars = args.take_scalars();
  t.deps = std::move(deps);
  t.cost_s = cost_s;
  const int id = graph_.add_task(std::move(t));
  ++stats_.target_tasks;
  return id;
}

int Runtime::host_task(std::function<void()> fn, omp::DepList deps) {
  ClusterTask t;
  t.type = TaskType::Host;
  t.host_fn = std::move(fn);
  t.deps = std::move(deps);
  const int id = graph_.add_task(std::move(t));
  ++stats_.host_tasks;
  return id;
}

void Runtime::execute_task(const ClusterTask& t, int proc) {
  const auto rank_of_proc = [this](int p) {
    return live_workers_[static_cast<std::size_t>(p)];
  };
  switch (t.type) {
    case TaskType::DataEnter:
      dm_.enter_to_worker(rank_of_proc(proc), t.buffer, t.copy);
      return;
    case TaskType::DataExit:
      dm_.exit_to_head(const_cast<void*>(t.buffer), t.copy);
      return;
    case TaskType::Host:
      t.host_fn();
      // A host task's out/inout deps were written in place on the head;
      // without this the incremental checkpointer would reuse a stale
      // entry for them and recovery would roll the write back silently.
      dm_.after_host_write(t.deps);
      return;
    case TaskType::Target: {
      const mpi::Rank worker = rank_of_proc(proc);
      // §4.3 target-region rule: make inputs valid on the assigned worker
      // (allocating/forwarding as needed), run, then invalidate replicas
      // of written buffers.
      const std::vector<offload::TargetPtr> addrs =
          dm_.prepare_args(worker, t.buffer_args);
      ExecuteHeader h;
      h.kernel = t.kernel;
      h.buffers = addrs;
      h.scalars = t.scalars;
      events_.run(worker, EventKind::Execute, h.serialize());
      dm_.after_write(worker, t.deps);
      return;
    }
  }
}

void Runtime::dispatch(const ClusterGraph& graph, const ScheduleResult& sched) {
  const std::size_t n = graph.size();
  if (n == 0) return;

  // Dependence-driven execution on the persistent helper pool: each ready
  // task becomes one job, and a job stays blocked inside execute_task() for
  // the whole life of its in-flight target region — so the pool size bounds
  // in-flight regions exactly as §7 describes, without creating or joining
  // a single thread per wave. The control thread only seeds the sources and
  // waits; completed jobs schedule their newly-ready successors themselves.
  struct WaveState {
    std::mutex mutex;
    std::condition_variable cv;
    std::vector<int> indegree;
    std::size_t done = 0;      ///< tasks executed successfully
    std::size_t inflight = 0;  ///< jobs queued or executing
    std::exception_ptr first_error;
  } ws;
  ws.indegree.resize(n, 0);
  for (const ClusterTask& t : graph.tasks())
    ws.indegree[static_cast<std::size_t>(t.id)] =
        static_cast<int>(t.preds.size());

  // All captured state outlives the jobs: dispatch() returns only once
  // inflight == 0, i.e. every submitted job has run (or skipped).
  std::function<void(int)> submit_task = [&](int id) {
    helpers_->submit([this, &graph, &sched, &ws, &submit_task, id] {
      const ClusterTask& t = graph.task(id);
      bool skipped;
      {
        std::lock_guard<std::mutex> lock(ws.mutex);
        skipped = ws.first_error != nullptr;  // wave is unwinding
      }
      std::exception_ptr error;
      if (!skipped) {
        try {
          execute_task(t, sched.processor[static_cast<std::size_t>(id)]);
        } catch (...) {
          error = std::current_exception();
        }
      }
      std::lock_guard<std::mutex> lock(ws.mutex);
      --ws.inflight;
      if (error && !ws.first_error) ws.first_error = error;
      if (!skipped && !error) {
        ++ws.done;
        for (int s : t.succs) {
          if (--ws.indegree[static_cast<std::size_t>(s)] == 0) {
            ++ws.inflight;
            submit_task(s);
          }
        }
      }
      ws.cv.notify_all();
    });
  };

  {
    std::lock_guard<std::mutex> lock(ws.mutex);
    for (const ClusterTask& t : graph.tasks()) {
      if (t.preds.empty()) {
        ++ws.inflight;
        submit_task(t.id);
      }
    }
  }
  std::unique_lock<std::mutex> lock(ws.mutex);
  ws.cv.wait(lock, [&ws, n] {
    return ws.inflight == 0 && (ws.done == n || ws.first_error != nullptr);
  });
  if (ws.first_error) std::rethrow_exception(ws.first_error);
  OMPC_CHECK_MSG(ws.done == n, "dispatch finished with unexecuted tasks");
}

std::uint64_t Runtime::schedule_cache_key(const ClusterGraph& graph) const {
  // Everything schedule() reads beyond the graph itself goes into the key;
  // the live-worker set in particular, so a schedule computed before a
  // failure can never be replayed onto a shrunk cluster.
  std::uint64_t h = graph.structural_hash();
  const auto mix = [&h](std::uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  };
  mix(static_cast<std::uint64_t>(opts_.scheduler));
  mix(static_cast<std::uint64_t>(opts_.network.latency_ns));
  std::uint64_t bw_bits = 0;
  std::memcpy(&bw_bits, &opts_.network.bandwidth_Bps, sizeof bw_bits);
  mix(bw_bits);
  std::uint64_t cost_bits = 0;
  std::memcpy(&cost_bits, &opts_.default_task_cost_s, sizeof cost_bits);
  mix(cost_bits);
  mix(opts_.seed);
  mix(live_workers_.size());
  for (const mpi::Rank r : live_workers_) mix(static_cast<std::uint64_t>(r));
  return h;
}

void Runtime::run_wave(const ClusterGraph& graph) {
  // Fig. 7b workloads (awave/RTM, stepwise Task Bench) re-record an
  // identical DAG every time step; rescheduling it is pure head overhead.
  // Serve repeats from the cache and run HEFT only on structurally new
  // graphs. Recovery clears the cache (and re-keys it via live_workers_).
  const std::uint64_t key = schedule_cache_key(graph);
  if (const auto it = schedule_cache_.find(key);
      it != schedule_cache_.end() &&
      it->second.processor.size() == graph.size()) {
    // (The size check makes a 64-bit key collision a miss, not an
    // out-of-bounds dispatch.)
    ++stats_.schedule_cache_hits;
    stats_.makespan_estimate_s = it->second.makespan_estimate_s;
    last_ = it->second;
    dispatch(graph, it->second);
    return;
  }
  const ScheduleResult sched =
      schedule(opts_.scheduler, graph, num_live_workers(),
               CostModel::from_network(opts_.network),
               opts_.default_task_cost_s, opts_.seed);
  stats_.schedule_ns += sched.schedule_ns;
  stats_.makespan_estimate_s = sched.makespan_estimate_s;
  if (schedule_cache_.size() >= 128) schedule_cache_.clear();  // bound it
  schedule_cache_.insert_or_assign(key, sched);
  last_ = sched;
  dispatch(graph, sched);
}

void Runtime::report_worker_failure(mpi::Rank dead) {
  {
    std::lock_guard<std::mutex> lock(fault_mutex_);
    if (std::find(reported_dead_.begin(), reported_dead_.end(), dead) !=
        reported_dead_.end())
      return;
    if (std::find(live_workers_.begin(), live_workers_.end(), dead) ==
        live_workers_.end())
      return;  // not a worker we still track (e.g. a duplicate report)
    reported_dead_.push_back(dead);
    // Invariant (maintained under fault_mutex_ here and in rollback):
    // failure_pending_ is set iff reported_dead_ is non-empty, so an armed
    // recovery always finds a corpse to process.
    failure_pending_.store(true, std::memory_order_release);
  }
  OMPC_LOG_WARN("failure detector: worker rank " << dead
                                                 << " declared dead");
  // Recovery-latency episode start (detection -> replay complete): only the
  // first detection of an episode arms the clock.
  std::int64_t expected = 0;
  failure_detected_ns_.compare_exchange_strong(expected, now_ns(),
                                               std::memory_order_acq_rel);
  failures_reported_.fetch_add(1, std::memory_order_acq_rel);
  // Abort in-flight events touching the corpse (helper threads unwind with
  // WorkerDiedError) and tell live workers to drop its pending exchanges.
  events_.fail_rank(dead);
  events_.announce_rank_dead(dead);
}

void Runtime::rollback(mpi::Rank dead) {
  const Stopwatch timer;
  // A corpse discovered by an event throw (no detector report yet) must
  // still open the latency episode.
  std::int64_t expected = 0;
  failure_detected_ns_.compare_exchange_strong(expected, now_ns(),
                                               std::memory_order_acq_rel);
  // Cached schedules were computed for the pre-failure worker set; the
  // re-ranked survivors must be scheduled fresh.
  schedule_cache_.clear();

  // Re-rank: drop every reported corpse from the processor table. Detector
  // threads read live_workers_ under fault_mutex_ (report_worker_failure),
  // so the erase must hold it too.
  std::vector<mpi::Rank> corpses;
  {
    std::lock_guard<std::mutex> lock(fault_mutex_);
    corpses.swap(reported_dead_);
    if (std::find(corpses.begin(), corpses.end(), dead) == corpses.end() &&
        std::find(live_workers_.begin(), live_workers_.end(), dead) !=
            live_workers_.end())
      corpses.push_back(dead);  // failure seen by an event before a report
    for (mpi::Rank r : corpses) {
      live_workers_.erase(
          std::remove(live_workers_.begin(), live_workers_.end(), r),
          live_workers_.end());
    }
  }
  // fail_rank outside fault_mutex_ (it takes the event system's own lock);
  // idempotent, and covers the unreported-corpse path.
  for (mpi::Rank r : corpses) events_.fail_rank(r);
  stats_.workers_lost += static_cast<std::int64_t>(corpses.size());
  // Arm the monitor's cascading-failure fallback even when the corpse was
  // discovered by an event throw rather than a heartbeat report (the
  // report path would have early-returned after this removal).
  failures_reported_.fetch_add(static_cast<int>(corpses.size()),
                               std::memory_order_acq_rel);

  OMPC_CHECK_MSG(!corpses.empty(),
                 "recovery triggered without a detected failure");
  if (live_workers_.empty())
    throw RecoveryError("cannot recover: every worker has died");
  if (opts_.checkpoint_period <= 0 || !ckpt_.has_checkpoint())
    throw RecoveryError(
        "worker died but checkpointing is disabled "
        "(ClusterOptions::checkpoint_period == 0); no recovery possible");

  // Wait until no origin event is in flight: completions from live workers
  // must land before we mutate the cluster-wide buffer state underneath
  // them (a Submit racing a Delete would be a use-after-free on the
  // worker's device heap).
  events_.quiesce();

  const std::int64_t lost_before = dm_.stats().buffers_lost.load();
  for (mpi::Rank r : corpses) dm_.purge_rank(r);
  stats_.buffers_lost += dm_.stats().buffers_lost.load() - lost_before;

  // Roll every buffer back to the wave-boundary snapshot: worker replicas
  // are dropped, checkpointed contents land on the head, from which replay
  // re-distributes them to the survivors.
  dm_.reset_all_to_host();
  ckpt_.restore(dm_);

  {
    // A failure reported *during* this rollback stays pending and triggers
    // another round; only a clean slate disarms recovery.
    std::lock_guard<std::mutex> lock(fault_mutex_);
    failure_pending_.store(!reported_dead_.empty(), std::memory_order_release);
  }
  ++stats_.recoveries;
  stats_.recovery_ns += timer.elapsed_ns();
  OMPC_LOG_WARN("recovery: rolled back to wave " << ckpt_.wave() << ", "
                                                 << num_live_workers()
                                                 << " workers survive");
}

void Runtime::recover_from(mpi::Rank dead) {
  // Rollback can itself trip over yet another worker dying (its Delete
  // events and checkpoint restores touch live workers); absorb those and
  // keep rolling back. Only RecoveryError escapes.
  for (;;) {
    try {
      rollback(dead);
      return;
    } catch (const WorkerDiedError& again) {
      dead = again.rank();
    }
  }
}

void Runtime::run_with_recovery(const ClusterGraph* current, bool replaying) {
  // `current` being the last wave_log_ entry (the wave being executed for
  // the first time) must not be double-run by the replay sweep; a null
  // current replays the WHOLE log — the between-waves repair path, where
  // rollback regressed buffers that completed waves had already written.
  const bool current_is_logged =
      current != nullptr && !wave_log_.empty() && current == &wave_log_.back();
  for (;;) {
    try {
      // A failure reported while the head was idle between waves arms
      // failure_pending_ without any event throwing; surface it here so the
      // wave never starts against a schedule containing the corpse.
      if (failure_pending_.load(std::memory_order_acquire))
        throw WorkerDiedError(-1);
      if (replaying) {
        // Re-execute the waves lost since the checkpoint. Host tasks in
        // replayed waves run again — §5's re-execution semantics.
        const std::size_t upto =
            wave_log_.size() - (current_is_logged ? 1 : 0);
        for (std::size_t i = 0; i < upto; ++i) {
          run_wave(wave_log_[i]);
          stats_.replayed_tasks +=
              static_cast<std::int64_t>(wave_log_[i].size());
        }
      }
      if (current != nullptr) {
        run_wave(*current);
        if (replaying)
          stats_.replayed_tasks += static_cast<std::int64_t>(current->size());
      }
      // Replay complete: close the recovery-latency episode. Guarded on
      // `replaying` so a detection landing after the wave finished is left
      // armed for the recovery that will process it, and on
      // failure_pending_ so a failure detected mid-replay extends the
      // episode (its own wait time must not be dropped) instead of
      // restarting the clock at its later rollback.
      if (replaying &&
          !failure_pending_.load(std::memory_order_acquire)) {
        if (const std::int64_t t0 = failure_detected_ns_.exchange(
                0, std::memory_order_acq_rel);
            t0 != 0) {
          stats_.recovery_latency_ns += now_ns() - t0;
        }
      }
      return;
    } catch (const WorkerDiedError& e) {
      recover_from(e.rank());  // RecoveryError escapes when impossible
      replaying = true;
    }
  }
}

void Runtime::wait_all() {
  if (graph_.empty()) {
    // A failure can land in the instants after the last wave completed; the
    // cluster state must be repaired (or the condition surfaced as
    // RecoveryError) before shutdown deletes buffers on a corpse. Repair =
    // rollback + replay of every logged wave, so buffer contents the
    // completed waves produced are regenerated, not silently regressed.
    if (failure_pending_.load(std::memory_order_acquire))
      run_with_recovery(nullptr, false);
    return;
  }
  graph_.build_edges();

  const bool ft = opts_.checkpoint_period > 0;
  bool replaying = false;
  if (ft) {
    if (wave_index_ % opts_.checkpoint_period == 0) {
      try {
        ckpt_.capture(dm_, wave_index_, live_workers_);
        wave_log_.clear();
      } catch (const WorkerDiedError& e) {
        // A worker died mid-capture. The previous snapshot is intact
        // (capture commits atomically, worker-local shadows included);
        // roll back to it and keep the wave log — those waves still need
        // replaying. The next boundary will retake the checkpoint.
        recover_from(e.rank());
        replaying = true;
      }
      const CheckpointStats& cs = ckpt_.stats();
      stats_.checkpoints = cs.captures;
      stats_.checkpoint_bytes = cs.bytes_captured;
      stats_.checkpoint_dirty_bytes = cs.dirty_bytes;
      stats_.checkpoint_head_bytes = cs.head_bytes;
      stats_.snapshot_replicas = cs.snapshot_replicas;
      stats_.checkpoint_ns = cs.capture_ns;
    }
    // Log the wave for replay (moved, not copied — it is executed from the
    // log); kept until the next checkpoint makes the waves since the
    // previous one unreachable by recovery.
    wave_log_.push_back(std::move(graph_));
    graph_ = fresh_graph();
    run_with_recovery(&wave_log_.back(), replaying);
  } else {
    run_with_recovery(&graph_, replaying);
    graph_ = fresh_graph();
  }

  ++wave_index_;
  ++stats_.waves;
}

RuntimeStats launch(const ClusterOptions& opts,
                    const std::function<void(Runtime&)>& head_main) {
  const Stopwatch wall;
  RuntimeStats stats;

  // Data-plane copy accounting is process-wide (workers share the process
  // in this simulated cluster); report this launch's delta.
  const std::int64_t payload_copies_before = mpi::payload_copies();

  const bool hb_on = opts.heartbeat_period_ms > 0;

  mpi::UniverseOptions uopts;
  uopts.ranks = opts.ranks();
  uopts.network = opts.network;
  // control + data communicators (+ a dedicated heartbeat ring comm).
  uopts.comms = 1 + opts.vci + (hb_on ? 1 : 0);
  uopts.kills = opts.kills;  // fault injection (§5 testing)
  uopts.conduit = opts.conduit;
  // The control communicator (context 0) must own a hardware channel no
  // data context aliases onto, or notification latency serializes behind
  // multi-megabyte payload transfers (contexts stripe channel = ctx % n).
  uopts.network.channels = std::max(uopts.network.channels, opts.vci + 1);

  const int hb_comm_index = 1 + opts.vci;
  const HeartbeatRing::Options hb_opts{opts.heartbeat_period_ms,
                                       opts.heartbeat_timeout_ms};

  mpi::Universe universe(uopts);
  universe.run([&](mpi::RankContext& ctx) {
    if (ctx.rank() == 0) {
      // --- head node ---
      const Stopwatch startup;
      EventSystem events(ctx, opts, nullptr, nullptr);

      Runtime rt(opts, events);

      // §5 failure detection: the head sits in the heartbeat ring (catching
      // its own predecessor's death) and runs a monitor thread collecting
      // the reports other ring members send when *their* predecessor dies.
      // Both paths funnel into report_worker_failure(), which arms the
      // recovery machinery in wait_all().
      std::unique_ptr<HeartbeatRing> ring;
      std::thread monitor;
      std::atomic<bool> monitor_stop{false};
      std::mutex monitor_mutex;
      std::condition_variable monitor_cv;
      if (hb_on) {
        mpi::Comm hb = ctx.comm(hb_comm_index);
        ring = std::make_unique<HeartbeatRing>(
            hb, hb_opts, [&rt](mpi::Rank dead) {
              rt.report_worker_failure(dead);
            });
        monitor = std::thread([&, hb] {
          log::set_thread_label("fmon");
          while (!monitor_stop.load(std::memory_order_acquire)) {
            while (auto st = hb.iprobe(mpi::kAnySource, kFailureReportTag)) {
              std::uint64_t dead = 0;
              hb.recv(&dead, sizeof dead, st->source, kFailureReportTag);
              rt.report_worker_failure(static_cast<mpi::Rank>(dead));
            }
            // Once the ring has a hole, a further corpse whose successor is
            // already dead has no ring member left to flag it. Until the
            // ring is re-linked around failures (ROADMAP), fall back to
            // universe-level liveness for the cascading case only — the
            // ring stays the sole detector of the first failure.
            if (rt.failures_reported() > 0) {
              for (mpi::Rank r = 1; r <= opts.num_workers; ++r) {
                if (hb.universe().is_dead(r)) rt.report_worker_failure(r);
              }
            }
            // Drain with a short bounded wait, not a full heartbeat period:
            // a report now reaches recovery within ~1 ms of arriving
            // instead of adding up to heartbeat_period_ms of detection
            // latency on top of the ring timeout. The cv (paired with the
            // shutdown path, which notifies under monitor_mutex) lets stop
            // take effect immediately instead of after the timeout.
            std::unique_lock<std::mutex> lock(monitor_mutex);
            monitor_cv.wait_for(lock, std::chrono::milliseconds(1),
                                [&monitor_stop] {
                                  return monitor_stop.load(
                                      std::memory_order_acquire);
                                });
          }
        });
      }
      stats.startup_ns = startup.elapsed_ns();

      // Any head-side failure must still shut the workers down, or they
      // would wait for events forever and the join below would hang.
      std::exception_ptr error;
      try {
        head_main(rt);
        rt.wait_all();  // implicit barrier at the end of the parallel region
      } catch (...) {
        error = std::current_exception();
      }

      const Stopwatch shutdown;
      if (!error) {
        // A worker can die in this very window (after the last wave,
        // before/while cleanup deletes its buffers) — which is why the
        // ring and monitor are still running here: detection fails the
        // blocked Delete events so this cannot hang. Capture the error so
        // the live workers still get their Shutdown below.
        try {
          rt.data_manager().cleanup_all();
        } catch (...) {
          error = std::current_exception();
        }
      }
      // Detection must stop before cluster teardown: ring members going
      // silent one by one as they shut down must not read as failures.
      // (shutdown_cluster itself tolerates a rank dying mid-handshake by
      // polling liveness instead of blocking on the ack.)
      if (ring) ring->stop();
      if (monitor.joinable()) {
        {
          std::lock_guard<std::mutex> lock(monitor_mutex);
          monitor_stop.store(true, std::memory_order_release);
        }
        monitor_cv.notify_all();
        monitor.join();
      }
      events.shutdown_cluster();
      stats.shutdown_ns = shutdown.elapsed_ns();
      if (error) std::rethrow_exception(error);

      // Merge head-side counters.
      RuntimeStats& rs = rt.stats();
      stats.schedule_ns = rs.schedule_ns;
      stats.waves = rs.waves;
      stats.target_tasks = rs.target_tasks;
      stats.data_tasks = rs.data_tasks;
      stats.host_tasks = rs.host_tasks;
      stats.makespan_estimate_s = rs.makespan_estimate_s;
      // Checkpoint counters come straight from the store: drops issued at
      // late boundaries and restores update it after the last wait_all
      // refresh.
      const CheckpointStats& cks = rt.checkpoints().stats();
      stats.checkpoints = cks.captures;
      stats.checkpoint_bytes = cks.bytes_captured;
      stats.checkpoint_dirty_bytes = cks.dirty_bytes;
      stats.checkpoint_head_bytes = cks.head_bytes;
      stats.snapshot_replicas = cks.snapshot_replicas;
      stats.checkpoint_ns = cks.capture_ns;
      stats.schedule_cache_hits = rs.schedule_cache_hits;
      stats.recovery_latency_ns = rs.recovery_latency_ns;
      stats.recoveries = rs.recoveries;
      stats.workers_lost = rs.workers_lost;
      stats.buffers_lost = rs.buffers_lost;
      stats.replayed_tasks = rs.replayed_tasks;
      stats.recovery_ns = rs.recovery_ns;
      stats.events_originated = events.stats().originated.load();
      const DataManagerStats& ds = rt.data_manager().stats();
      stats.submits = ds.submits.load();
      stats.retrieves = ds.retrieves.load();
      stats.exchanges = ds.exchanges.load();
      stats.bytes_moved = ds.bytes_moved.load();
      stats.threads_spawned = rs.threads_spawned + ds.threads_spawned.load();
    } else {
      // --- worker node ---
      // Universe-aware heap: every device block doubles as an RMA window,
      // making this worker a put/get target for the one-sided data plane.
      WorkerMemory memory(&ctx.universe(), ctx.rank());
      omp::TaskRuntime exec_pool(opts.worker_threads);
      EventSystem events(ctx, opts, &memory, &exec_pool);
      // Ring detection on workers: report the dead predecessor to the
      // head's failure monitor (rank 0 owns recovery).
      std::unique_ptr<HeartbeatRing> ring;
      if (hb_on) {
        mpi::Comm hb = ctx.comm(hb_comm_index);
        ring = std::make_unique<HeartbeatRing>(
            hb, hb_opts, [hb](mpi::Rank dead) {
              const std::uint64_t r = static_cast<std::uint64_t>(dead);
              hb.send(&r, sizeof r, 0, kFailureReportTag);
            });
      }
      events.wait_until_stopped();
      if (ring) ring->stop();
    }
  });

  stats.messages_sent = universe.messages_sent();
  stats.payload_copies = mpi::payload_copies() - payload_copies_before;
  stats.wall_ns = wall.elapsed_ns();
  return stats;
}

}  // namespace ompc::core
