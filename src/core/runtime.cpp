#include "core/runtime.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <thread>

#include "common/check.hpp"
#include "common/log.hpp"
#include "common/time.hpp"
#include "core/heartbeat.hpp"
#include "core/membership.hpp"

namespace ompc::core {

Runtime::Runtime(const ClusterOptions& opts, EventSystem& events,
                 MembershipBus* bus)
    : opts_(opts),
      events_(&events),
      dm_(events, opts),
      graph_(fresh_graph()),
      ckpt_(&events, opts.checkpoint_locality, opts.data_plane),
      bus_(bus) {
  // Scheduler processors map onto this live-worker table; recovery shrinks
  // it, which is how survivors are re-ranked after a failure. Spare ranks
  // boot like workers but stay out of it until request_join().
  live_workers_.reserve(static_cast<std::size_t>(opts.num_workers));
  for (int w = 0; w < opts.num_workers; ++w) live_workers_.push_back(w + 1);
  for (int s = 0; s < opts.spare_workers; ++s)
    spare_pool_.push_back(opts.num_workers + 1 + s);

  // HelperThreads: the LLVM bound — in-flight regions <= head threads.
  // TwoStep: the §7 fix decouples in-flight regions from head cores; its
  // pool scales with the *cluster* (enough to saturate every worker's
  // executor and transfer pipeline) instead of the head's thread count.
  // Elastic: the bound is the pool's *ceiling*; only a small floor spawns
  // at launch, demand grows it, idle growth retires (ROADMAP "elastic pool
  // sizing" — a 2-worker test cluster no longer pays for 48 threads).
  const int helpers = std::max(1, opts_.async_mode == AsyncMode::HelperThreads
                                      ? opts_.helper_threads
                                      : opts_.cluster_pool_threads());
  helpers_ = std::make_unique<HelperPool>(opts_.pool_floor(helpers), helpers,
                                          opts_.pool_idle_shrink_ms, "hh");
  stats_.threads_spawned = helpers_->threads_spawned();
}

Runtime::~Runtime() = default;

ClusterGraph Runtime::fresh_graph() const {
  // Edge weights resolve dependence addresses to buffer sizes through the
  // data manager's registry.
  return ClusterGraph(
      [this](const void* addr) { return dm_.buffer_size(addr); });
}

void Runtime::enter_data(void* host, std::size_t size, bool copy) {
  dm_.register_buffer(host, size);
  ClusterTask t;
  t.type = TaskType::DataEnter;
  t.buffer = host;
  t.buffer_bytes = size;
  t.copy = copy;
  // Listing 1: enter data carries depend(out: *A) — it is the first writer.
  t.deps = {omp::out(host)};
  graph_.add_task(std::move(t));
  ++stats_.data_tasks;
}

void Runtime::exit_data(void* host, bool copy) {
  OMPC_CHECK_MSG(dm_.is_registered(host),
                 "exit_data for buffer " << host << " that was never entered");
  ClusterTask t;
  t.type = TaskType::DataExit;
  t.buffer = host;
  t.copy = copy;
  // inout: runs after the last writer and all readers of the buffer.
  t.deps = {omp::inout(host)};
  graph_.add_task(std::move(t));
  ++stats_.data_tasks;
}

int Runtime::target(omp::DepList deps, offload::KernelId kernel, Args args,
                    double cost_s) {
  // §4.3's restriction: every buffer a target uses must appear in its
  // dependence list — that is the only way the DM can infer placement and
  // write intent. Enforced here instead of failing mysteriously later.
  for (const void* b : args.buffers()) {
    const bool listed = std::any_of(deps.begin(), deps.end(),
                                    [&](const omp::Dep& d) { return d.addr == b; });
    OMPC_CHECK_MSG(listed, "target buffer argument " << b
                                                     << " missing from depend list");
    OMPC_CHECK_MSG(dm_.is_registered(b),
                   "target buffer argument " << b << " was never entered");
  }
  ClusterTask t;
  t.type = TaskType::Target;
  t.kernel = kernel;
  t.buffer_args = args.buffers();
  t.scalars = args.take_scalars();
  t.deps = std::move(deps);
  t.cost_s = cost_s;
  const int id = graph_.add_task(std::move(t));
  ++stats_.target_tasks;
  return id;
}

int Runtime::host_task(std::function<void()> fn, omp::DepList deps) {
  ClusterTask t;
  t.type = TaskType::Host;
  // Interned so the closure survives head replication: the handle travels
  // in the serialized wave log and a promoted head resurrects the function
  // from the process-wide registry.
  t.host_fn_handle = HostFnRegistry::instance().intern(fn);
  t.host_fn = std::move(fn);
  t.deps = std::move(deps);
  const int id = graph_.add_task(std::move(t));
  ++stats_.host_tasks;
  return id;
}

void Runtime::execute_task(const ClusterTask& t, int proc) {
  const auto rank_of_proc = [this](int p) {
    return live_workers_[static_cast<std::size_t>(p)];
  };
  switch (t.type) {
    case TaskType::DataEnter:
      // Session-recorded enters defer registration to execution time (the
      // submitting thread must not mutate the registry while another
      // tenant's wave is in flight); legacy and replayed enters find the
      // buffer already registered and skip. The task carries its mapping
      // size precisely for this moment.
      if (!dm_.is_registered(t.buffer))
        dm_.register_buffer(const_cast<void*>(t.buffer), t.buffer_bytes);
      dm_.enter_to_worker(rank_of_proc(proc), t.buffer, t.copy);
      return;
    case TaskType::DataExit:
      dm_.exit_to_head(const_cast<void*>(t.buffer), t.copy);
      return;
    case TaskType::Host:
      t.host_fn();
      // A host task's out/inout deps were written in place on the head;
      // without this the incremental checkpointer would reuse a stale
      // entry for them and recovery would roll the write back silently.
      dm_.after_host_write(t.deps);
      return;
    case TaskType::Target: {
      const mpi::Rank worker = rank_of_proc(proc);
      // §4.3 target-region rule: make inputs valid on the assigned worker
      // (allocating/forwarding as needed), run, then invalidate replicas
      // of written buffers.
      const std::vector<offload::TargetPtr> addrs =
          dm_.prepare_args(worker, t.buffer_args);
      ExecuteHeader h;
      h.kernel = t.kernel;
      h.buffers = addrs;
      h.scalars = t.scalars;
      events_->run(worker, EventKind::Execute, h.serialize());
      dm_.after_write(worker, t.deps);
      return;
    }
  }
}

void Runtime::dispatch(const ClusterGraph& graph, const ScheduleResult& sched) {
  const std::size_t n = graph.size();
  if (n == 0) return;

  // Grow the elastic pool to the wave's worst-case concurrency (every task
  // in flight at once), capped by the ceiling that bounds in-flight target
  // regions. A structural announcement, so identical waves spawn
  // identically — and a steady-state wave spawns nothing at all.
  helpers_->reserve(static_cast<int>(n));

  // Dependence-driven execution on the persistent helper pool: each ready
  // task becomes one job, and a job stays blocked inside execute_task() for
  // the whole life of its in-flight target region — so the pool size bounds
  // in-flight regions exactly as §7 describes, without creating or joining
  // a single thread per wave. The control thread only seeds the sources and
  // waits; completed jobs schedule their newly-ready successors themselves.
  struct WaveState {
    std::mutex mutex;
    std::condition_variable cv;
    std::vector<int> indegree;
    std::size_t done = 0;      ///< tasks executed successfully
    std::size_t inflight = 0;  ///< jobs queued or executing
    std::exception_ptr first_error;
  } ws;
  ws.indegree.resize(n, 0);
  for (const ClusterTask& t : graph.tasks())
    ws.indegree[static_cast<std::size_t>(t.id)] =
        static_cast<int>(t.preds.size());

  // All captured state outlives the jobs: dispatch() returns only once
  // inflight == 0, i.e. every submitted job has run (or skipped).
  std::function<void(int)> submit_task = [&](int id) {
    helpers_->submit([this, &graph, &sched, &ws, &submit_task, id] {
      const ClusterTask& t = graph.task(id);
      bool skipped;
      {
        std::lock_guard<std::mutex> lock(ws.mutex);
        skipped = ws.first_error != nullptr;  // wave is unwinding
      }
      std::exception_ptr error;
      if (!skipped) {
        try {
          execute_task(t, sched.processor[static_cast<std::size_t>(id)]);
        } catch (...) {
          error = std::current_exception();
        }
      }
      std::lock_guard<std::mutex> lock(ws.mutex);
      --ws.inflight;
      if (error && !ws.first_error) ws.first_error = error;
      if (!skipped && !error) {
        ++ws.done;
        for (int s : t.succs) {
          if (--ws.indegree[static_cast<std::size_t>(s)] == 0) {
            ++ws.inflight;
            submit_task(s);
          }
        }
      }
      ws.cv.notify_all();
    });
  };

  {
    std::lock_guard<std::mutex> lock(ws.mutex);
    for (const ClusterTask& t : graph.tasks()) {
      if (t.preds.empty()) {
        ++ws.inflight;
        submit_task(t.id);
      }
    }
  }
  std::unique_lock<std::mutex> lock(ws.mutex);
  ws.cv.wait(lock, [&ws, n] {
    return ws.inflight == 0 && (ws.done == n || ws.first_error != nullptr);
  });
  if (ws.first_error) std::rethrow_exception(ws.first_error);
  OMPC_CHECK_MSG(ws.done == n, "dispatch finished with unexecuted tasks");
}

std::uint64_t Runtime::schedule_cache_key(const ClusterGraph& graph) const {
  // Everything schedule() reads beyond the graph itself goes into the key;
  // the live-worker set in particular, so a schedule computed before a
  // failure can never be replayed onto a shrunk cluster.
  std::uint64_t h = graph.structural_hash();
  const auto mix = [&h](std::uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  };
  mix(static_cast<std::uint64_t>(opts_.scheduler));
  mix(static_cast<std::uint64_t>(opts_.network.latency_ns));
  std::uint64_t bw_bits = 0;
  std::memcpy(&bw_bits, &opts_.network.bandwidth_Bps, sizeof bw_bits);
  mix(bw_bits);
  std::uint64_t cost_bits = 0;
  std::memcpy(&cost_bits, &opts_.default_task_cost_s, sizeof cost_bits);
  mix(cost_bits);
  mix(opts_.seed);
  mix(live_workers_.size());
  for (const mpi::Rank r : live_workers_) mix(static_cast<std::uint64_t>(r));
  return h;
}

void Runtime::run_wave(const ClusterGraph& graph) {
  // Fig. 7b workloads (awave/RTM, stepwise Task Bench) re-record an
  // identical DAG every time step; rescheduling it is pure head overhead.
  // Serve repeats from the cache and run HEFT only on structurally new
  // graphs. Recovery clears the cache (and re-keys it via live_workers_).
  const std::uint64_t key = schedule_cache_key(graph);
  if (const auto it = schedule_cache_.find(key);
      it != schedule_cache_.end() &&
      it->second.processor.size() == graph.size()) {
    // (The size check makes a 64-bit key collision a miss, not an
    // out-of-bounds dispatch.)
    ++stats_.schedule_cache_hits;
    note_cache_hit(graph.tenant());
    stats_.makespan_estimate_s = it->second.makespan_estimate_s;
    // Steady state: the wave shape is known (same structural hash, same
    // live-worker set — both in the cache key), so arm the ChannelPlan.
    // The dispatched transfers ride pre-posted persistent receives and
    // pre-armed puts, and write invalidations keep device blocks for next
    // wave's re-fill.
    if (opts_.persistent_channels) {
      dm_.arm_channels();
      ++stats_.channels_armed;
    }
    last_ = it->second;
    dispatch(graph, it->second);
    return;
  }
  // A structurally new wave is not the cached shape: back to transient
  // channels until the cache hits again (the plan is keyed to the shape).
  dm_.disarm_channels();
  const ScheduleResult sched =
      schedule(opts_.scheduler, graph, num_live_workers(),
               CostModel::from_network(opts_.network),
               opts_.default_task_cost_s, opts_.seed);
  stats_.schedule_ns += sched.schedule_ns;
  stats_.makespan_estimate_s = sched.makespan_estimate_s;
  if (schedule_cache_.size() >= 128) schedule_cache_.clear();  // bound it
  schedule_cache_.insert_or_assign(key, sched);
  last_ = sched;
  dispatch(graph, sched);
}

void Runtime::report_worker_failure(mpi::Rank dead) {
  EventSystem* ev = nullptr;
  {
    std::lock_guard<std::mutex> lock(fault_mutex_);
    if (std::find(reported_dead_.begin(), reported_dead_.end(), dead) !=
        reported_dead_.end())
      return;
    if (std::find(live_workers_.begin(), live_workers_.end(), dead) ==
        live_workers_.end())
      return;  // not a worker we still track (e.g. a duplicate report)
    reported_dead_.push_back(dead);
    // Invariant (maintained under fault_mutex_ here and in rollback):
    // failure_pending_ is set iff reported_dead_ is non-empty, so an armed
    // recovery always finds a corpse to process.
    failure_pending_.store(true, std::memory_order_release);
    // Snapshot the event plane under the lock: failover() swaps events_
    // (under this mutex) while detector threads are still reporting.
    ev = events_;
  }
  OMPC_LOG_WARN("failure detector: worker rank " << dead
                                                 << " declared dead");
  // Recovery-latency episode start (detection -> replay complete): only the
  // first detection of an episode arms the clock.
  std::int64_t expected = 0;
  failure_detected_ns_.compare_exchange_strong(expected, now_ns(),
                                               std::memory_order_acq_rel);
  failures_reported_.fetch_add(1, std::memory_order_acq_rel);
  // Abort in-flight events touching the corpse (helper threads unwind with
  // WorkerDiedError) and tell live workers to drop its pending exchanges.
  ev->fail_rank(dead);
  ev->announce_rank_dead(dead);
}

void Runtime::rollback(mpi::Rank dead) {
  const Stopwatch timer;
  // A corpse discovered by an event throw (no detector report yet) must
  // still open the latency episode.
  std::int64_t expected = 0;
  failure_detected_ns_.compare_exchange_strong(expected, now_ns(),
                                               std::memory_order_acq_rel);
  // Cached schedules were computed for the pre-failure worker set; the
  // re-ranked survivors must be scheduled fresh. The ChannelPlan goes with
  // them: replay must run transient (and with retired channel tags) so
  // recovery stays bitwise-identical to an unfailed run.
  schedule_cache_.clear();
  dm_.disarm_channels();

  // Re-rank: drop every reported corpse from the processor table. Detector
  // threads read live_workers_ under fault_mutex_ (report_worker_failure),
  // so the erase must hold it too.
  std::vector<mpi::Rank> corpses;
  {
    std::lock_guard<std::mutex> lock(fault_mutex_);
    corpses.swap(reported_dead_);
    if (std::find(corpses.begin(), corpses.end(), dead) == corpses.end() &&
        std::find(live_workers_.begin(), live_workers_.end(), dead) !=
            live_workers_.end())
      corpses.push_back(dead);  // failure seen by an event before a report
    for (mpi::Rank r : corpses) {
      live_workers_.erase(
          std::remove(live_workers_.begin(), live_workers_.end(), r),
          live_workers_.end());
    }
  }
  // fail_rank outside fault_mutex_ (it takes the event system's own lock);
  // idempotent, and covers the unreported-corpse path.
  for (mpi::Rank r : corpses) events_->fail_rank(r);
  stats_.workers_lost += static_cast<std::int64_t>(corpses.size());
  // Arm the monitor's cascading-failure fallback even when the corpse was
  // discovered by an event throw rather than a heartbeat report (the
  // report path would have early-returned after this removal).
  failures_reported_.fetch_add(static_cast<int>(corpses.size()),
                               std::memory_order_acq_rel);

  OMPC_CHECK_MSG(!corpses.empty(),
                 "recovery triggered without a detected failure");
  if (live_workers_.empty())
    throw RecoveryError("cannot recover: every worker has died");
  if (opts_.checkpoint_period <= 0 || !ckpt_.has_checkpoint())
    throw RecoveryError(
        "worker died but checkpointing is disabled "
        "(ClusterOptions::checkpoint_period == 0); no recovery possible");

  // Wait until no origin event is in flight: completions from live workers
  // must land before we mutate the cluster-wide buffer state underneath
  // them (a Submit racing a Delete would be a use-after-free on the
  // worker's device heap).
  events_->quiesce();

  const std::int64_t lost_before = dm_.stats().buffers_lost.load();
  for (mpi::Rank r : corpses) dm_.purge_rank(r);
  stats_.buffers_lost += dm_.stats().buffers_lost.load() - lost_before;

  // Roll every buffer back to the wave-boundary snapshot: worker replicas
  // are dropped, checkpointed contents land on the head, from which replay
  // re-distributes them to the survivors.
  dm_.reset_all_to_host();
  ckpt_.restore(dm_);
  absorb_degraded_restore();

  {
    // A failure reported *during* this rollback stays pending and triggers
    // another round; only a clean slate disarms recovery.
    std::lock_guard<std::mutex> lock(fault_mutex_);
    failure_pending_.store(!reported_dead_.empty(), std::memory_order_release);
  }
  ++stats_.recoveries;
  stats_.recovery_ns += timer.elapsed_ns();
  OMPC_LOG_WARN("recovery: rolled back to wave " << ckpt_.wave() << ", "
                                                 << num_live_workers()
                                                 << " workers survive");
}

void Runtime::recover_from(mpi::Rank dead) {
  // Rollback can itself trip over yet another worker dying (its Delete
  // events and checkpoint restores touch live workers); absorb those and
  // keep rolling back. Only RecoveryError escapes.
  for (;;) {
    try {
      // The corpse may be the head itself (dispatch fails fast on the dead
      // head's event system): that is a failover, not a rollback — adopt
      // the elected successor's replica, then return so the caller replays
      // from the adopted log.
      if (events_->is_rank_gone(head_rank_)) {
        failover();
        return;
      }
      rollback(dead);
      return;
    } catch (const WorkerDiedError& again) {
      dead = again.rank();
    }
  }
}

void Runtime::run_with_recovery(const ClusterGraph* current, bool replaying) {
  // `current` being the last wave_log_ entry (the wave being executed for
  // the first time) must not be double-run by the replay sweep; a null
  // current replays the WHOLE log — the between-waves repair path, where
  // rollback regressed buffers that completed waves had already written.
  bool current_is_logged =
      current != nullptr && !wave_log_.empty() && current == &wave_log_.back();
  for (;;) {
    try {
      // A failure reported while the head was idle between waves arms
      // failure_pending_ without any event throwing; surface it here so the
      // wave never starts against a schedule containing the corpse.
      if (failure_pending_.load(std::memory_order_acquire))
        throw WorkerDiedError(-1);
      if (replaying) {
        // Re-execute the waves lost since the checkpoint. Host tasks in
        // replayed waves run again — §5's re-execution semantics.
        const std::size_t upto =
            wave_log_.size() - (current_is_logged ? 1 : 0);
        for (std::size_t i = 0; i < upto; ++i) {
          run_wave(wave_log_[i]);
          stats_.replayed_tasks +=
              static_cast<std::int64_t>(wave_log_[i].size());
          note_replay(wave_log_[i].tenant(),
                      static_cast<std::int64_t>(wave_log_[i].size()));
        }
      }
      if (current != nullptr) {
        run_wave(*current);
        if (replaying) {
          stats_.replayed_tasks += static_cast<std::int64_t>(current->size());
          note_replay(current->tenant(),
                      static_cast<std::int64_t>(current->size()));
        }
      }
      // Replay complete: close the recovery-latency episode. Guarded on
      // `replaying` so a detection landing after the wave finished is left
      // armed for the recovery that will process it, and on
      // failure_pending_ so a failure detected mid-replay extends the
      // episode (its own wait time must not be dropped) instead of
      // restarting the clock at its later rollback.
      if (replaying &&
          !failure_pending_.load(std::memory_order_acquire)) {
        if (const std::int64_t t0 = failure_detected_ns_.exchange(
                0, std::memory_order_acq_rel);
            t0 != 0) {
          const std::int64_t latency = now_ns() - t0;
          stats_.recovery_latency_ns += latency;
          // The episode's latency is charged to every tenant whose waves
          // it replayed — concurrent streams keep honest per-tenant
          // recovery accounting instead of sharing one global counter.
          close_tenant_episode(latency);
        }
      }
      return;
    } catch (const mpi::RankKilledError& e) {
      // A raw transport-level death that escaped the event layer's
      // translation (rare: a request completed exceptionally on a path
      // with no origin event). Same recovery as WorkerDiedError.
      const std::uint64_t epoch_before = head_epoch_;
      recover_from(e.rank());
      replaying = true;
      if (current != nullptr &&
          (current_is_logged || head_epoch_ != epoch_before)) {
        current = wave_log_.empty() ? nullptr : &wave_log_.back();
        current_is_logged = current != nullptr;
      }
    } catch (const WorkerDiedError& e) {
      const std::uint64_t epoch_before = head_epoch_;
      recover_from(e.rank());  // RecoveryError escapes when impossible
      replaying = true;
      // Recovery can rebuild or grow the wave log underneath `current`:
      // a failover re-creates it from the replica blobs, and a degraded
      // restore prepends the prior generation's waves (both reallocate the
      // vector). Re-home the pointer at the log's new tail — the same
      // wave, just at its new address.
      if (current != nullptr &&
          (current_is_logged || head_epoch_ != epoch_before)) {
        current = wave_log_.empty() ? nullptr : &wave_log_.back();
        current_is_logged = current != nullptr;
      }
    }
  }
}

void Runtime::wait_all() {
  // Membership changes commit at wave boundaries — the cluster is quiescent
  // here, so buffer migration cannot race in-flight tasks.
  process_membership_requests();
  if (graph_.empty()) {
    // A failure can land in the instants after the last wave completed; the
    // cluster state must be repaired (or the condition surfaced as
    // RecoveryError) before shutdown deletes buffers on a corpse. Repair =
    // rollback + replay of every logged wave, so buffer contents the
    // completed waves produced are regenerated, not silently regressed.
    if (failure_pending_.load(std::memory_order_acquire))
      run_with_recovery(nullptr, false);
    return;
  }
  ClusterGraph wave = std::move(graph_);
  graph_ = fresh_graph();
  execute_wave(std::move(wave));
}

void Runtime::execute_wave(ClusterGraph&& wave) {
  wave.build_edges();

  const bool ft = opts_.checkpoint_period > 0;
  bool replaying = false;
  bool boundary_reset = false;
  if (ft) {
    if (wave_index_ % opts_.checkpoint_period == 0) {
      try {
        ckpt_.capture(dm_, wave_index_, live_workers_);
        // The committed capture makes these waves unreachable by normal
        // recovery; they move to the previous-generation slot (not gone:
        // a degraded restore replays from the PRIOR boundary, and the
        // checkpoint store keeps that generation's snapshots until the
        // next capture commits).
        prev_wave_log_ = std::move(wave_log_);
        prev_wave_blobs_ = std::move(wave_blobs_);
        prev_wave_seqs_ = std::move(wave_seqs_);
        wave_log_.clear();
        wave_blobs_.clear();
        wave_seqs_.clear();
        replicated_waves_ = 0;
        boundary_reset = true;
      } catch (const WorkerDiedError& e) {
        // A worker died mid-capture. The previous snapshot is intact
        // (capture commits atomically, worker-local shadows included);
        // roll back to it and keep the wave log — those waves still need
        // replaying. The next boundary will retake the checkpoint.
        recover_from(e.rank());
        replaying = true;
      }
      const CheckpointStats& cs = ckpt_.stats();
      stats_.checkpoints = cs.captures;
      stats_.checkpoint_bytes = cs.bytes_captured;
      stats_.checkpoint_dirty_bytes = cs.dirty_bytes;
      stats_.checkpoint_head_bytes = cs.head_bytes;
      stats_.snapshot_replicas = cs.snapshot_replicas;
      stats_.checkpoint_ns = cs.capture_ns;
    }
    // Log the wave for replay (moved, not copied — it is executed from the
    // log); kept until the next checkpoint makes the waves since the
    // previous one unreachable by recovery. The serialized blob carries the
    // wave's tenant, so the log — and any replica adopted after a head
    // death — stays tenant-scoped.
    wave_log_.push_back(std::move(wave));
    wave_blobs_.push_back(serialize_graph(wave_log_.back()));
    wave_seqs_.push_back(wave_index_);
    // Pool/tenant aggregates ride in the replicated stats block; fold the
    // latest counters in before the state ships.
    refresh_derived_stats();
    // Mirror the head state to the shadow rank BEFORE executing: if the
    // head dies mid-wave, the promoted successor holds this very wave and
    // replays it — that is the bitwise-identical failover guarantee.
    replicate_head_state(boundary_reset);
    run_with_recovery(&wave_log_.back(), replaying);
  } else {
    run_with_recovery(&wave, replaying);
  }

  ++wave_index_;
  ++stats_.waves;
}

// --- multi-tenancy (tenant queues, WDRR fair-share, admission) ------------

TenantId Runtime::create_tenant(double weight) {
  std::lock_guard<std::mutex> lock(tenants_mutex_);
  const TenantId id = next_tenant_++;
  TenantState& ts = tenants_[id];
  ts.stats.weight = weight > 0.0 ? weight : 1.0;
  // A new tenant changes the wave interleaving the scheduler will produce,
  // so the pre-armed wave-shape channels are no longer the steady state.
  dm_.disarm_channels();
  return id;
}

Runtime::TenantState& Runtime::tenant_state_locked(TenantId tenant) {
  // find-or-create: kDefaultTenant (and ids minted elsewhere after a head
  // failover) get a queue lazily with the default weight.
  return tenants_[tenant];
}

void Runtime::enqueue_locked(TenantState& ts, ClusterGraph&& wave,
                             TenantId tenant) {
  wave.set_tenant(tenant);
  ++ts.stats.submitted_waves;
  ts.stats.tasks += static_cast<std::int64_t>(wave.size());
  ts.queue.push_back(PendingWave{std::move(wave), now_ns()});
  tenants_cv_.notify_all();
}

void Runtime::submit(ClusterGraph&& wave, TenantId tenant) {
  std::lock_guard<std::mutex> lock(tenants_mutex_);
  TenantState& ts = tenant_state_locked(tenant);
  if (serving_stopped_ && serve_error_) {
    ++ts.stats.rejected_waves;
    throw AdmissionError(tenant, "serve loop failed; submission refused");
  }
  const std::int64_t cap = opts_.max_pending_waves;
  if (cap > 0 && static_cast<std::int64_t>(ts.queue.size()) >= cap) {
    // Backpressure: the wave is NOT consumed — the caller's rvalue is
    // intact (nothing was moved from it yet), so a retry or submit_wait
    // can resend the same recording.
    ++ts.stats.rejected_waves;
    throw AdmissionError(tenant,
                         "tenant queue full (" + std::to_string(cap) +
                             " pending waves); retry or use submit_wait");
  }
  enqueue_locked(ts, std::move(wave), tenant);
}

void Runtime::submit_wait(ClusterGraph&& wave, TenantId tenant) {
  std::unique_lock<std::mutex> lock(tenants_mutex_);
  TenantState& ts = tenant_state_locked(tenant);
  const std::int64_t cap = opts_.max_pending_waves;
  tenants_cv_.wait(lock, [&] {
    return (serving_stopped_ && serve_error_) || cap <= 0 ||
           static_cast<std::int64_t>(ts.queue.size()) < cap;
  });
  if (serving_stopped_ && serve_error_) {
    ++ts.stats.rejected_waves;
    throw AdmissionError(tenant, "serve loop failed while waiting for space");
  }
  enqueue_locked(ts, std::move(wave), tenant);
}

bool Runtime::pick_wave_locked(TenantId* tenant, PendingWave* wave) {
  // Weighted deficit round-robin at wave granularity (non-preemptive: a
  // picked wave runs to completion). The token RESTS on a tenant: it keeps
  // spending its deficit on consecutive waves until it can no longer afford
  // the next one — that is what makes service weight-proportional instead
  // of alternating. Deficit replenishes only when the token ARRIVES at a
  // tenant with work; empty queues forfeit their credit (classic DRR).
  constexpr double kQuantumTasks = 4.0;

  bool any = false;
  for (const auto& [id, ts] : tenants_) {
    (void)id;
    if (!ts.queue.empty()) {
      any = true;
      break;
    }
  }
  if (!any) return false;

  auto next = [this](std::map<TenantId, TenantState>::iterator it) {
    ++it;
    return it == tenants_.end() ? tenants_.begin() : it;
  };
  const auto cost_of = [](const PendingWave& w) {
    return std::max<double>(1.0, static_cast<double>(w.graph.size()));
  };

  auto it = tenants_.find(wdrr_token_);
  bool fresh_arrival = false;
  if (it == tenants_.end()) {
    it = tenants_.begin();
    fresh_arrival = true;
  }
  // Bounded walk: each full cycle adds >= one quantum to some non-empty
  // queue, so a pick happens within a few cycles; the guard is belt and
  // braces against a pathological weight.
  for (int hops = 0; hops < static_cast<int>(tenants_.size()) * 64 + 64;
       ++hops) {
    TenantState& ts = it->second;
    if (ts.queue.empty()) {
      ts.deficit = 0.0;  // forfeits unused credit (bounds burstiness)
      it = next(it);
      fresh_arrival = true;
      continue;
    }
    if (fresh_arrival)
      ts.deficit += kQuantumTasks * std::max(ts.stats.weight, 1e-6);
    const double cost = cost_of(ts.queue.front());
    if (cost <= ts.deficit) {
      ts.deficit -= cost;
      *tenant = it->first;
      *wave = std::move(ts.queue.front());
      ts.queue.pop_front();
      ++ts.executing;
      if (ts.queue.empty()) ts.deficit = 0.0;
      wdrr_token_ = it->first;
      tenants_cv_.notify_all();  // queue space freed for submit_wait
      return true;
    }
    it = next(it);
    fresh_arrival = true;
  }
  // Unreachable with sane weights; treat as empty rather than spin.
  return false;
}

void Runtime::serve_tenants() {
  {
    std::lock_guard<std::mutex> lock(tenants_mutex_);
    serving_stopped_ = false;
    serve_error_ = nullptr;
  }
  try {
    for (;;) {
      // Membership changes commit between tenant waves, same as between
      // wait_all() waves — the cluster is quiescent here.
      process_membership_requests();

      TenantId tenant = kDefaultTenant;
      PendingWave wave;
      bool picked = false;
      bool finished = false;
      {
        std::unique_lock<std::mutex> lock(tenants_mutex_);
        tenants_cv_.wait_for(lock, std::chrono::milliseconds(2), [&] {
          if (open_sessions_.load(std::memory_order_acquire) == 0)
            return true;
          for (const auto& [id, ts] : tenants_) {
            (void)id;
            if (!ts.queue.empty()) return true;
          }
          return false;
        });
        picked = pick_wave_locked(&tenant, &wave);
        if (!picked) {
          bool drained = true;
          for (const auto& [id, ts] : tenants_) {
            (void)id;
            if (!ts.queue.empty() || ts.executing > 0) drained = false;
          }
          finished =
              drained && open_sessions_.load(std::memory_order_acquire) == 0;
        }
      }
      if (finished) break;
      if (!picked) {
        // Idle instant: a failure reported between waves still needs the
        // between-waves repair path so buffers are not left on a corpse.
        if (failure_pending_.load(std::memory_order_acquire))
          run_with_recovery(nullptr, false);
        continue;
      }

      // Task-mix accounting happens here (the session recorded off the
      // head thread, so the recording API's counters never saw the tasks).
      for (const ClusterTask& t : wave.graph.tasks()) {
        switch (t.type) {
          case TaskType::Target: ++stats_.target_tasks; break;
          case TaskType::Host: ++stats_.host_tasks; break;
          default: ++stats_.data_tasks; break;
        }
      }
      ++stats_.tenant_waves;

      const std::int64_t start_ns = now_ns();
      const std::int64_t submit_ns = wave.submit_ns;
      execute_wave(std::move(wave.graph));
      finish_tenant_wave(tenant, submit_ns, start_ns);
    }
    // Final repair sweep, mirroring wait_all()'s empty-graph path.
    if (failure_pending_.load(std::memory_order_acquire))
      run_with_recovery(nullptr, false);
  } catch (...) {
    {
      std::lock_guard<std::mutex> lock(tenants_mutex_);
      serving_stopped_ = true;
      serve_error_ = std::current_exception();
    }
    tenants_cv_.notify_all();
    throw;
  }
  {
    std::lock_guard<std::mutex> lock(tenants_mutex_);
    serving_stopped_ = true;
  }
  tenants_cv_.notify_all();
}

void Runtime::finish_tenant_wave(TenantId tenant, std::int64_t submit_ns,
                                 std::int64_t start_ns) {
  const std::int64_t end_ns = now_ns();
  std::lock_guard<std::mutex> lock(tenants_mutex_);
  TenantState& ts = tenant_state_locked(tenant);
  --ts.executing;
  ++ts.stats.completed_waves;
  ts.stats.queue_wait_ns += start_ns - submit_ns;
  ts.stats.wave_latency_ns.push_back(end_ns - submit_ns);
  tenants_cv_.notify_all();
}

void Runtime::wait_tenant(TenantId tenant) {
  std::unique_lock<std::mutex> lock(tenants_mutex_);
  TenantState& ts = tenant_state_locked(tenant);
  tenants_cv_.wait(lock, [&] {
    return (ts.queue.empty() && ts.executing == 0) || serving_stopped_;
  });
  if (ts.queue.empty() && ts.executing == 0) return;
  if (serve_error_) std::rethrow_exception(serve_error_);
  throw AdmissionError(tenant, "serving stopped before the queue drained");
}

TenantStats Runtime::tenant_stats(TenantId tenant) const {
  std::lock_guard<std::mutex> lock(tenants_mutex_);
  auto it = tenants_.find(tenant);
  return it == tenants_.end() ? TenantStats{} : it->second.stats;
}

void Runtime::note_cache_hit(TenantId tenant) {
  std::lock_guard<std::mutex> lock(tenants_mutex_);
  if (auto it = tenants_.find(tenant); it != tenants_.end())
    ++it->second.stats.schedule_cache_hits;
}

void Runtime::note_replay(TenantId tenant, std::int64_t tasks) {
  {
    std::lock_guard<std::mutex> lock(tenants_mutex_);
    if (auto it = tenants_.find(tenant); it != tenants_.end())
      it->second.stats.replayed_tasks += tasks;
  }
  // episode_tenants_ is head-control-thread state (like the episode clock);
  // no lock needed for it.
  if (std::find(episode_tenants_.begin(), episode_tenants_.end(), tenant) ==
      episode_tenants_.end())
    episode_tenants_.push_back(tenant);
}

void Runtime::close_tenant_episode(std::int64_t latency_ns) {
  std::lock_guard<std::mutex> lock(tenants_mutex_);
  for (TenantId tenant : episode_tenants_) {
    if (auto it = tenants_.find(tenant); it != tenants_.end()) {
      ++it->second.stats.recoveries;
      it->second.stats.recovery_latency_ns += latency_ns;
    }
  }
  episode_tenants_.clear();
}

void Runtime::refresh_derived_stats() {
  stats_.threads_spawned = helpers_->threads_spawned();
  const HelperPool& xfer = dm_.transfer_pool();
  stats_.pool_threads_peak = helpers_->peak_threads() + xfer.peak_threads();
  stats_.pool_threads_retired =
      helpers_->threads_retired() + xfer.threads_retired();
  std::lock_guard<std::mutex> lock(tenants_mutex_);
  stats_.tenants = static_cast<std::int64_t>(tenants_.size());
  std::int64_t rejections = 0;
  for (const auto& [id, ts] : tenants_) {
    (void)id;
    rejections += ts.stats.rejected_waves;
  }
  stats_.admission_rejections = rejections;
}

// --- TenantSession --------------------------------------------------------

TenantSession::TenantSession(Runtime& rt, TenantId tenant)
    : rt_(&rt), tenant_(tenant), graph_(fresh()) {
  rt_->open_sessions_.fetch_add(1, std::memory_order_acq_rel);
}

TenantSession::~TenantSession() { close(); }

ClusterGraph TenantSession::fresh() const {
  // The resolver is installed at submit time (a snapshot of sizes_); until
  // then the graph only records, so any lookup would be a logic error.
  return ClusterGraph([](const void*) -> std::size_t {
    OMPC_CHECK_MSG(false, "buffer-size lookup before session submit");
    return 0;
  });
}

void TenantSession::enter_data(void* host, std::size_t size, bool copy) {
  OMPC_CHECK_MSG(!closed_, "enter_data on a closed tenant session");
  OMPC_CHECK_MSG(sizes_.emplace(host, size).second,
                 "buffer " << host << " entered twice in tenant session "
                           << tenant_);
  ClusterTask t;
  t.type = TaskType::DataEnter;
  t.buffer = host;
  t.buffer_bytes = size;
  t.copy = copy;
  t.deps = {omp::out(host)};
  graph_.add_task(std::move(t));
}

void TenantSession::exit_data(void* host, bool copy) {
  OMPC_CHECK_MSG(!closed_, "exit_data on a closed tenant session");
  OMPC_CHECK_MSG(sizes_.count(host) != 0,
                 "exit_data for buffer " << host
                                         << " never entered in this session");
  OMPC_CHECK_MSG(std::find(exited_.begin(), exited_.end(), host) ==
                     exited_.end(),
                 "exit_data for buffer " << host << " recorded twice");
  // Deferred removal: the exit wave's own dependences resolve this buffer,
  // so it leaves sizes_ only when the wave submits.
  exited_.push_back(host);
  ClusterTask t;
  t.type = TaskType::DataExit;
  t.buffer = host;
  t.copy = copy;
  t.deps = {omp::inout(host)};
  graph_.add_task(std::move(t));
}

int TenantSession::target(omp::DepList deps, offload::KernelId kernel,
                          Args args, double cost_s) {
  OMPC_CHECK_MSG(!closed_, "target on a closed tenant session");
  for (const void* b : args.buffers()) {
    const bool listed =
        std::any_of(deps.begin(), deps.end(),
                    [&](const omp::Dep& d) { return d.addr == b; });
    OMPC_CHECK_MSG(listed, "target buffer argument "
                               << b << " missing from depend list");
    OMPC_CHECK_MSG(sizes_.count(b) != 0,
                   "target buffer argument "
                       << b << " was never entered in this session");
  }
  ClusterTask t;
  t.type = TaskType::Target;
  t.kernel = kernel;
  t.buffer_args = args.buffers();
  t.scalars = args.take_scalars();
  t.deps = std::move(deps);
  t.cost_s = cost_s;
  return graph_.add_task(std::move(t));
}

int TenantSession::host_task(std::function<void()> fn, omp::DepList deps) {
  OMPC_CHECK_MSG(!closed_, "host_task on a closed tenant session");
  ClusterTask t;
  t.type = TaskType::Host;
  t.host_fn_handle = HostFnRegistry::instance().intern(fn);
  t.host_fn = std::move(fn);
  t.deps = std::move(deps);
  return graph_.add_task(std::move(t));
}

void TenantSession::submit_impl(bool blocking) {
  OMPC_CHECK_MSG(!closed_, "submit on a closed tenant session");
  if (graph_.empty()) return;
  // The head thread hashes/builds the wave while this thread keeps
  // recording the next one: the resolver must not read live session state.
  // A snapshot closure makes the wave self-contained.
  auto sizes = std::make_shared<const std::unordered_map<const void*,
                                                         std::size_t>>(sizes_);
  graph_.set_buffer_size_fn([sizes](const void* addr) -> std::size_t {
    auto it = sizes->find(addr);
    OMPC_CHECK_MSG(it != sizes->end(),
                   "dependence on buffer " << addr
                                           << " not entered in this session");
    return it->second;
  });
  ClusterGraph wave = std::move(graph_);
  graph_ = fresh();
  try {
    if (blocking) {
      rt_->submit_wait(std::move(wave), tenant_);
    } else {
      rt_->submit(std::move(wave), tenant_);
    }
  } catch (...) {
    // Admission refused the wave un-consumed: keep it recorded so the
    // caller can retry (or fall back to submit_wait).
    graph_ = std::move(wave);
    throw;
  }
  // The wave (and its snapshot) is in flight: recorded exits now leave the
  // session registry, so the buffers can be re-entered in a later wave.
  for (const void* host : exited_) sizes_.erase(host);
  exited_.clear();
}

void TenantSession::submit() { submit_impl(false); }
void TenantSession::submit_wait() { submit_impl(true); }

void TenantSession::wait() {
  OMPC_CHECK_MSG(!closed_, "wait on a closed tenant session");
  rt_->wait_tenant(tenant_);
}

void TenantSession::close() {
  if (closed_) return;
  closed_ = true;
  rt_->open_sessions_.fetch_sub(1, std::memory_order_acq_rel);
  // Wake the serve loop so "all sessions closed + queues drained" is
  // re-evaluated immediately.
  std::lock_guard<std::mutex> lock(rt_->tenants_mutex_);
  rt_->tenants_cv_.notify_all();
}

// --- head failover (replicated state, election adoption) -----------------

void Runtime::replicate_head_state(bool boundary_reset) {
  if (bus_ == nullptr || !opts_.head_replication || live_workers_.empty())
    return;
  // The shadow is the first live worker: deterministic, and recovery's
  // re-ranking naturally promotes the next one when it dies.
  const mpi::Rank shadow = live_workers_.front();
  ReplicaStore::Update kind;
  if (shadow != shadow_rank_) {
    kind = ReplicaStore::Update::Full;  // new shadow: resync everything
  } else if (boundary_reset) {
    kind = ReplicaStore::Update::Reset;  // checkpoint retaken: new period
  } else {
    kind = ReplicaStore::Update::Append;  // steady state: just the new wave
  }

  // Metadata travels in full every time — it is O(buffers + workers), tiny
  // next to the wave payloads, and replacing it wholesale keeps the replica
  // trivially consistent. Stats ride along so counters survive a handoff.
  ArchiveWriter meta;
  meta.put_raw(&stats_, sizeof stats_);
  meta.put_vector(live_workers_);
  meta.put_vector(spare_pool_);
  const Bytes dm_blob = dm_.serialize_registry();
  meta.put_blob(std::span<const std::byte>(dm_blob.data(), dm_blob.size()));
  const Bytes ck_blob = ckpt_.serialize_state();
  meta.put_blob(std::span<const std::byte>(ck_blob.data(), ck_blob.size()));
  const Bytes meta_blob = meta.take();

  ArchiveWriter w;
  w.put_blob(std::span<const std::byte>(meta_blob.data(), meta_blob.size()));
  if (kind == ReplicaStore::Update::Full) {
    w.put(static_cast<std::uint64_t>(prev_wave_blobs_.size()));
    for (const Bytes& b : prev_wave_blobs_)
      w.put_blob(std::span<const std::byte>(b.data(), b.size()));
  }
  const std::size_t from =
      kind == ReplicaStore::Update::Append ? replicated_waves_ : 0;
  w.put(static_cast<std::uint64_t>(wave_blobs_.size() - from));
  for (std::size_t i = from; i < wave_blobs_.size(); ++i)
    w.put_blob(std::span<const std::byte>(wave_blobs_[i].data(),
                                          wave_blobs_[i].size()));
  // Shared, not borrowed: if THIS rank dies while waiting for the shadow's
  // completion, the unwind must not free bytes the in-flight envelope still
  // references — the shadow would parse garbage at the exact moment its
  // replica matters most.
  const auto payload = std::make_shared<const Bytes>(w.take());

  HeadStateHeader h;
  h.size = payload->size();
  h.generation = ++replica_generation_;
  h.reset = static_cast<std::uint8_t>(kind);
  ArchiveWriter hw;
  hw.put(h);
  try {
    events_->run(shadow, EventKind::HeadState, hw.take(),
                 mpi::Payload::share(payload, payload->data(),
                                     payload->size()));
    shadow_rank_ = shadow;
    replicated_waves_ = wave_blobs_.size();
    ++stats_.replication_updates;
    stats_.replication_bytes += static_cast<std::int64_t>(payload->size());
  } catch (const WorkerDiedError&) {
    // Shadow died under the update. Skip this round; the detector will
    // shrink the live set and the next boundary resyncs (Full) to the new
    // front. Generations stay strictly increasing across the gap, so the
    // election invariant (freshest replica is unique) holds.
  }
}

void Runtime::failover() {
  const Stopwatch timer;
  // The head's death opens the recovery-latency episode if nothing else
  // did (mirrors rollback()).
  std::int64_t expected = 0;
  failure_detected_ns_.compare_exchange_strong(expected, now_ns(),
                                               std::memory_order_acq_rel);
  const mpi::Rank old_head = head_rank_;
  if (bus_ == nullptr || !opts_.head_replication)
    throw RecoveryError(
        "head rank died and head replication is disabled "
        "(ClusterOptions::head_replication); no failover possible");
  OMPC_LOG_WARN("head rank " << old_head
                             << " died; awaiting ring election");

  // The agents' election needs detection (timeout) + candidacy window;
  // bound the wait well above both so a slow CI machine cannot miss a
  // legitimate winner, yet a cluster with no surviving replica holder
  // still fails crisply.
  const std::int64_t timeout_ms =
      std::max<std::int64_t>(2000, 20 * opts_.heartbeat_timeout_ms);
  const std::optional<mpi::Rank> winner =
      bus_->await_new_head(head_epoch_, timeout_ms);
  if (!winner)
    throw RecoveryError(
        "head rank " + std::to_string(old_head) +
        " died and no surviving replica holder won the election; "
        "head state is unrecoverable");

  const MembershipBus::Node node = bus_->node(*winner);
  OMPC_CHECK_MSG(node.events != nullptr && node.replica != nullptr,
                 "elected head rank " << *winner
                                      << " has no registered event system");
  {
    // Swap the event plane under fault_mutex_: detector threads snapshot
    // events_ under the same lock in report_worker_failure().
    std::lock_guard<std::mutex> lock(fault_mutex_);
    head_rank_ = *winner;
    head_epoch_ = bus_->epoch();
    events_ = node.events;
  }
  dm_.rebind(events_);
  ckpt_.rebind(events_);
  adopt_replica();
  schedule_cache_.clear();
  // The dead head's ChannelPlan dies with it: replay runs transient, and
  // the promoted head's channel-tag stripe is disjoint from the old one,
  // so orphaned payloads can never match a new channel.
  dm_.disarm_channels();

  // The old head is a corpse to the new event plane too: abort anything
  // still referencing it and tell the workers.
  events_->fail_rank(old_head);
  events_->announce_rank_dead(old_head);
  // Future detector reports (the promoted rank's agent receives them now)
  // flow into this runtime.
  bus_->set_failure_handler(
      [this](mpi::Rank dead) { report_worker_failure(dead); });
  // Workers that died while no head was listening: sweep liveness once so
  // the rollback below (or the next wave's recovery round) processes them.
  std::vector<mpi::Rank> gone;
  for (const mpi::Rank r : live_workers_)
    if (events_->is_rank_gone(r)) gone.push_back(r);
  for (const mpi::Rank r : gone) report_worker_failure(r);

  // Heap reconciliation: the dead head's bookkeeping for in-flight blocks
  // is unrecoverable, so every survivor drops all device blocks except its
  // checkpoint shadows; replay re-allocates from the adopted registry.
  trim_worker_heaps();

  if (!ckpt_.has_checkpoint())
    throw RecoveryError(
        "elected head adopted a replica with no committed checkpoint; "
        "cannot resume");
  events_->quiesce();
  dm_.reset_all_to_host();
  ckpt_.restore(dm_);
  absorb_degraded_restore();
  broadcast_membership();

  ++stats_.recoveries;
  stats_.recovery_ns += timer.elapsed_ns();
  OMPC_LOG_WARN("failover: rank " << head_rank_ << " is the new head ("
                                  << num_live_workers()
                                  << " workers, resuming from wave "
                                  << ckpt_.wave() << ")");
}

void Runtime::adopt_replica() {
  const ReplicaStore::Snapshot snap =
      bus_->node(head_rank_).replica->snapshot();
  OMPC_CHECK_MSG(snap.generation > 0 && !snap.metadata.empty(),
                 "elected head holds an empty replica");

  ArchiveReader r(
      std::span<const std::byte>(snap.metadata.data(), snap.metadata.size()));
  RuntimeStats adopted{};
  r.get_raw(&adopted, sizeof adopted);
  std::vector<mpi::Rank> live = r.get_vector<mpi::Rank>();
  std::vector<mpi::Rank> spares = r.get_vector<mpi::Rank>();
  const Bytes dm_blob = r.get_blob();
  const Bytes ck_blob = r.get_blob();

  // Counters survive the handoff: adopt the replicated block, then count
  // the handoff itself.
  adopted.failovers = stats_.failovers;  // local view is authoritative here
  stats_ = adopted;
  ++stats_.failovers;

  // The winner stops being a worker the moment it becomes the head.
  live.erase(std::remove(live.begin(), live.end(), head_rank_), live.end());
  spares.erase(std::remove(spares.begin(), spares.end(), head_rank_),
               spares.end());
  {
    std::lock_guard<std::mutex> lock(fault_mutex_);
    live_workers_ = std::move(live);
  }
  spare_pool_ = std::move(spares);
  if (live_workers_.empty())
    throw RecoveryError("cannot fail over: no worker survives the head");

  dm_.adopt_registry(
      std::span<const std::byte>(dm_blob.data(), dm_blob.size()));
  ckpt_.adopt_state(
      std::span<const std::byte>(ck_blob.data(), ck_blob.size()));

  // Wave logs: the replica's blobs plus the local tail — this control
  // thread is the surviving *client*, and waves it recorded that never
  // reached the shadow (a replication round lost with the head) are
  // resubmitted from its own cache, exactly like a client re-issuing
  // unacknowledged requests. The merge aligns BY WAVE NUMBER, not by list
  // position: the replica's first wave is the one recorded right after the
  // adopted checkpoint's boundary (`ckpt_.wave()`), while the local lists
  // may have been reset at a later boundary the replica never learned of —
  // same lengths, one boundary apart, and a position splice would silently
  // drop the wave the client is still waiting on.
  const std::int64_t base = std::max<std::int64_t>(ckpt_.wave(), 0);
  std::vector<Bytes> blobs = snap.waves;
  std::int64_t next_seq = base + static_cast<std::int64_t>(blobs.size());
  std::int64_t newest_local = -1;
  const auto take_local = [&](std::int64_t seq) -> Bytes* {
    for (std::size_t i = 0; i < wave_seqs_.size(); ++i)
      if (wave_seqs_[i] == seq) return &wave_blobs_[i];
    for (std::size_t i = 0; i < prev_wave_seqs_.size(); ++i)
      if (prev_wave_seqs_[i] == seq) return &prev_wave_blobs_[i];
    return nullptr;
  };
  for (const std::int64_t s : wave_seqs_) newest_local = std::max(newest_local, s);
  for (const std::int64_t s : prev_wave_seqs_) newest_local = std::max(newest_local, s);
  while (Bytes* b = take_local(next_seq)) {
    blobs.push_back(std::move(*b));
    ++next_seq;
  }
  if (newest_local >= next_seq)
    throw RecoveryError(
        "head failover cannot reconstruct wave " + std::to_string(next_seq) +
        ": the replica ends before it and the client cache holds only waves "
        "up to " + std::to_string(newest_local) + " with a gap between");
  // The previous-period log belongs to the ADOPTED checkpoint's prior
  // generation; local prev entries newer than that were promoted into the
  // current log above.
  std::vector<Bytes> prev_blobs = snap.prev_waves;

  const auto buffer_size = [this](const void* addr) -> std::size_t {
    // A buffer a replayed wave exits may not be in the adopted registry
    // yet (restore re-registers it); its edge weight defaults harmlessly.
    return dm_.is_registered(addr) ? dm_.buffer_size(addr) : 0;
  };
  wave_log_.clear();
  for (const Bytes& b : blobs)
    wave_log_.push_back(deserialize_graph(
        std::span<const std::byte>(b.data(), b.size()), buffer_size));
  wave_blobs_ = std::move(blobs);
  prev_wave_log_.clear();
  for (const Bytes& b : prev_blobs)
    prev_wave_log_.push_back(deserialize_graph(
        std::span<const std::byte>(b.data(), b.size()), buffer_size));
  prev_wave_blobs_ = std::move(prev_blobs);

  wave_seqs_.clear();
  for (std::int64_t s = base; s < next_seq; ++s) wave_seqs_.push_back(s);
  prev_wave_seqs_.clear();
  for (std::int64_t s = base - static_cast<std::int64_t>(prev_wave_blobs_.size());
       s < base; ++s)
    prev_wave_seqs_.push_back(s);

  // Replication continues from the adopted generation (monotonic across
  // handoffs — the election invariant depends on it) to a fresh shadow.
  replica_generation_ = snap.generation;
  shadow_rank_ = -1;
  replicated_waves_ = 0;
}

void Runtime::absorb_degraded_restore() {
  if (!ckpt_.last_restore_degraded()) return;
  // The restore fell back to the PRIOR checkpoint generation: the waves of
  // the previous period must replay too. Splice them ahead of the current
  // period's log (callers re-home any pointer into the vector).
  wave_log_.insert(wave_log_.begin(),
                   std::make_move_iterator(prev_wave_log_.begin()),
                   std::make_move_iterator(prev_wave_log_.end()));
  wave_blobs_.insert(wave_blobs_.begin(),
                     std::make_move_iterator(prev_wave_blobs_.begin()),
                     std::make_move_iterator(prev_wave_blobs_.end()));
  wave_seqs_.insert(wave_seqs_.begin(), prev_wave_seqs_.begin(),
                    prev_wave_seqs_.end());
  prev_wave_log_.clear();
  prev_wave_blobs_.clear();
  prev_wave_seqs_.clear();
  // The spliced log is one period again; force a Full resync so the shadow
  // sees the same shape.
  shadow_rank_ = -1;
  OMPC_LOG_WARN("recovery: degraded restore — replaying "
                << wave_log_.size() << " waves from the prior boundary");
}

void Runtime::trim_worker_heaps() {
  std::vector<OriginEventPtr> acks;
  std::vector<mpi::Rank> targets = live_workers_;
  targets.push_back(head_rank_);  // the promoted rank's own worker heap
  for (const mpi::Rank r : targets) {
    if (events_->is_rank_gone(r)) continue;
    const std::vector<offload::TargetPtr> keep = ckpt_.shadows_on(r);
    ArchiveWriter w;
    w.put(TrimHeapHeader{static_cast<std::uint64_t>(keep.size())});
    for (const offload::TargetPtr p : keep) w.put(p);
    try {
      acks.push_back(events_->start(r, EventKind::TrimHeap, w.take()));
    } catch (const WorkerDiedError&) {
      // Died under the trim command; the liveness sweep picks it up.
    }
  }
  for (const OriginEventPtr& ev : acks) {
    try {
      ev->wait();
    } catch (const WorkerDiedError&) {
    }
  }
}

void Runtime::broadcast_membership() {
  ArchiveWriter w;
  MembershipUpdateHeader h;
  h.head = head_rank_;
  h.worker_count = live_workers_.size();
  w.put(h);
  for (const mpi::Rank r : live_workers_) w.put(r);
  const Bytes header = w.take();
  std::vector<OriginEventPtr> acks;
  for (const mpi::Rank r : live_workers_) {
    if (events_->is_rank_gone(r)) continue;
    try {
      acks.push_back(
          events_->start(r, EventKind::MembershipUpdate, Bytes(header)));
    } catch (const WorkerDiedError&) {
    }
  }
  for (const OriginEventPtr& ev : acks) {
    try {
      ev->wait();
    } catch (const WorkerDiedError&) {
    }
  }
}

// --- elastic membership (runtime join/leave) ------------------------------

mpi::Rank Runtime::request_join() {
  if (spare_pool_.empty()) return -1;
  const mpi::Rank r = spare_pool_.front();
  spare_pool_.erase(spare_pool_.begin());
  pending_joins_.push_back(r);
  return r;
}

bool Runtime::request_leave(mpi::Rank rank) {
  if (std::find(live_workers_.begin(), live_workers_.end(), rank) ==
      live_workers_.end())
    return false;
  if (live_workers_.size() <= 1) return false;  // never drain the last one
  if (std::find(pending_leaves_.begin(), pending_leaves_.end(), rank) !=
      pending_leaves_.end())
    return false;
  pending_leaves_.push_back(rank);
  return true;
}

void Runtime::process_membership_requests() {
  if (pending_joins_.empty() && pending_leaves_.empty()) return;
  bool changed = false;
  try {
    while (!pending_leaves_.empty()) {
      const mpi::Rank r = pending_leaves_.front();
      if (std::find(live_workers_.begin(), live_workers_.end(), r) ==
              live_workers_.end() ||
          live_workers_.size() <= 1) {
        pending_leaves_.erase(pending_leaves_.begin());
        continue;  // died (or shrank to last) since the request
      }
      // Drain: the leaver may hold the sole valid copy of any buffer, so
      // pull everything head-side first, then forget its replicas (no
      // Delete events — the trim below frees wholesale) and shrink its
      // heap down to the checkpoint shadows it still hosts: those stay
      // fetchable, so snapshots buddy'd on a retired rank survive a later
      // owner death.
      std::vector<const void*> hosts;
      dm_.for_each_buffer(
          [&hosts](void* h, std::size_t) { hosts.push_back(h); });
      dm_.refresh_head_many(hosts);
      dm_.purge_rank(r);
      const std::vector<offload::TargetPtr> keep = ckpt_.shadows_on(r);
      ArchiveWriter w;
      w.put(TrimHeapHeader{static_cast<std::uint64_t>(keep.size())});
      for (const offload::TargetPtr p : keep) w.put(p);
      events_->run(r, EventKind::TrimHeap, w.take());
      {
        std::lock_guard<std::mutex> lock(fault_mutex_);
        live_workers_.erase(
            std::remove(live_workers_.begin(), live_workers_.end(), r),
            live_workers_.end());
      }
      spare_pool_.push_back(r);  // re-joinable later
      pending_leaves_.erase(pending_leaves_.begin());
      ++stats_.workers_retired;
      changed = true;
      OMPC_LOG_INFO("membership: worker rank "
                    << r << " retired (" << live_workers_.size()
                    << " remain)");
    }
    while (!pending_joins_.empty()) {
      const mpi::Rank r = pending_joins_.front();
      pending_joins_.erase(pending_joins_.begin());
      if (events_->is_rank_gone(r)) continue;  // died while pending
      {
        std::lock_guard<std::mutex> lock(fault_mutex_);
        live_workers_.insert(
            std::upper_bound(live_workers_.begin(), live_workers_.end(), r),
            r);
      }
      changed = true;
      ++stats_.workers_joined;
      // The joiner's ownership slice: every |live|-th buffer migrates to
      // it worker->worker over the data plane, so its replicas are real
      // (they survive a later owner death via the normal ownership map,
      // and give HEFT locality to schedule against).
      const std::size_t moved =
          dm_.migrate_buffers(r, live_workers_.size());
      OMPC_LOG_INFO("membership: worker rank "
                    << r << " joined (" << live_workers_.size()
                    << " live, " << moved << " buffers migrated)");
    }
  } catch (const WorkerDiedError& e) {
    // A rank died under the membership change. Leave the remaining
    // requests queued (they re-apply at the next boundary, after
    // recovery); the failure itself goes through the normal machinery.
    if (e.rank() >= 0) report_worker_failure(e.rank());
  }
  if (changed) {
    // Schedules were computed for the old worker table — and so was the
    // ChannelPlan (its shapes name ranks): both invalidate together.
    schedule_cache_.clear();
    dm_.disarm_channels();
    broadcast_membership();
    // Membership is head state: resync the replica eagerly so a failover
    // in the very next wave sees the new table.
    shadow_rank_ = -1;
  }
}

RuntimeStats launch(const ClusterOptions& opts,
                    const std::function<void(Runtime&)>& head_main) {
  const Stopwatch wall;
  RuntimeStats stats;

  // Data-plane copy accounting is process-wide (workers share the process
  // in this simulated cluster); report this launch's delta.
  const std::int64_t payload_copies_before = mpi::payload_copies();

  const bool hb_on = opts.heartbeat_period_ms > 0;

  mpi::UniverseOptions uopts;
  uopts.ranks = opts.ranks();
  uopts.network = opts.network;
  // control + data communicators (+ a dedicated heartbeat ring comm).
  uopts.comms = 1 + opts.vci + (hb_on ? 1 : 0);
  uopts.kills = opts.kills;  // fault injection (§5 testing)
  uopts.conduit = opts.conduit;
  // The control communicator (context 0) must own a hardware channel no
  // data context aliases onto, or notification latency serializes behind
  // multi-megabyte payload transfers (contexts stripe channel = ctx % n).
  uopts.network.channels = std::max(uopts.network.channels, opts.vci + 1);

  const int hb_comm_index = 1 + opts.vci;
  HeartbeatRing::Options hb_opts;
  hb_opts.period_ms = opts.heartbeat_period_ms;
  hb_opts.timeout_ms = opts.heartbeat_timeout_ms;
  hb_opts.adaptive = opts.heartbeat_adaptive;
  hb_opts.min_timeout_ms = opts.heartbeat_min_timeout_ms;
  hb_opts.dev_factor = opts.heartbeat_dev_factor;

  // Election/replication rendezvous between the per-rank agents and the
  // surviving control thread (shared-memory stand-in for connection
  // re-establishment; see membership.hpp).
  MembershipBus bus;

  mpi::Universe universe(uopts);
  universe.run([&](mpi::RankContext& ctx) {
    if (ctx.rank() == 0) {
      // --- head node ---
      const Stopwatch startup;
      EventSystem events(ctx, opts, nullptr, nullptr);

      Runtime rt(opts, events, &bus);
      // Teardown latch: whatever happens below (including error unwinds),
      // a promoted worker's main thread must eventually be released to
      // destroy the event system this control thread borrowed.
      struct ControlReleaser {
        MembershipBus& bus;
        ~ControlReleaser() { bus.release_control(); }
      } releaser{bus};

      // §5 failure detection: the head sits in the heartbeat ring (catching
      // its own predecessor's death) and runs a monitor thread collecting
      // the reports other ring members send when *their* predecessor dies.
      // Both paths funnel into report_worker_failure(), which arms the
      // recovery machinery in wait_all().
      std::unique_ptr<HeartbeatRing> ring;
      std::thread monitor;
      std::atomic<bool> monitor_stop{false};
      std::mutex monitor_mutex;
      std::condition_variable monitor_cv;
      if (hb_on) {
        mpi::Comm hb = ctx.comm(hb_comm_index);
        ring = std::make_unique<HeartbeatRing>(
            hb, hb_opts, [&rt, hb](mpi::Rank dead) {
              // A dead head stops hearing pings too — that silence is the
              // head's OWN death, not the predecessor's. The failover
              // machinery owns detection from here.
              if (!hb.universe().is_dead(0)) rt.report_worker_failure(dead);
            });
        monitor = std::thread([&, hb] {
          log::set_thread_label("fmon");
          while (!monitor_stop.load(std::memory_order_acquire)) {
            // After the head dies the promoted rank's membership agent is
            // the failure monitor; this thread must stop touching the
            // runtime (it would race the control thread's adoption).
            if (hb.universe().is_dead(0)) break;
            try {
              while (
                  auto st = hb.iprobe(mpi::kAnySource, kFailureReportTag)) {
                std::uint64_t dead = 0;
                hb.recv(&dead, sizeof dead, st->source, kFailureReportTag);
                rt.report_worker_failure(static_cast<mpi::Rank>(dead));
              }
            } catch (const mpi::RankKilledError&) {
              break;  // own mailbox poisoned: the head just died
            }
            // Once the ring has a hole, a further corpse whose successor is
            // already dead has no ring member left to flag it. Until the
            // ring is re-linked around failures (ROADMAP), fall back to
            // universe-level liveness for the cascading case only — the
            // ring stays the sole detector of the first failure.
            if (rt.failures_reported() > 0) {
              for (mpi::Rank r = 1; r <= opts.total_workers(); ++r) {
                if (hb.universe().is_dead(r)) rt.report_worker_failure(r);
              }
            }
            // Drain with a short bounded wait, not a full heartbeat period:
            // a report now reaches recovery within ~1 ms of arriving
            // instead of adding up to heartbeat_period_ms of detection
            // latency on top of the ring timeout. The cv (paired with the
            // shutdown path, which notifies under monitor_mutex) lets stop
            // take effect immediately instead of after the timeout.
            std::unique_lock<std::mutex> lock(monitor_mutex);
            monitor_cv.wait_for(lock, std::chrono::milliseconds(1),
                                [&monitor_stop] {
                                  return monitor_stop.load(
                                      std::memory_order_acquire);
                                });
          }
        });
      }
      stats.startup_ns = startup.elapsed_ns();

      // Any head-side failure must still shut the workers down, or they
      // would wait for events forever and the join below would hang.
      std::exception_ptr error;
      try {
        head_main(rt);
        rt.wait_all();  // implicit barrier at the end of the parallel region
      } catch (...) {
        error = std::current_exception();
      }

      const Stopwatch shutdown;
      if (!error) {
        // A worker can die in this very window (after the last wave,
        // before/while cleanup deletes its buffers) — which is why the
        // ring and monitor are still running here: detection fails the
        // blocked Delete events so this cannot hang. Capture the error so
        // the live workers still get their Shutdown below.
        try {
          rt.data_manager().cleanup_all();
        } catch (...) {
          error = std::current_exception();
        }
      }
      // Detection must stop before cluster teardown: ring members going
      // silent one by one as they shut down must not read as failures.
      // (shutdown_cluster itself tolerates a rank dying mid-handshake by
      // polling liveness instead of blocking on the ack.)
      if (ring) ring->stop();
      if (monitor.joinable()) {
        {
          std::lock_guard<std::mutex> lock(monitor_mutex);
          monitor_stop.store(true, std::memory_order_release);
        }
        monitor_cv.notify_all();
        monitor.join();
      }
      // Through the runtime's CURRENT event system: after a failover this
      // is the promoted rank's, and the dead head's own system already
      // stopped itself when its mailbox was poisoned. When the head died
      // and nobody could be promoted (replica lost with it, or replication
      // off), there is no live control plane left to deliver Shutdown —
      // model the job scheduler reclaiming the allocation instead: poison
      // the survivors, which unwinds their gate threads like any kill.
      if (!ctx.universe().is_dead(rt.head_rank())) {
        rt.events().shutdown_cluster();
      } else {
        for (mpi::Rank r = 1; r < static_cast<mpi::Rank>(opts.ranks()); ++r)
          if (!ctx.universe().is_dead(r)) ctx.universe().kill_rank(r, 0);
      }
      stats.shutdown_ns = shutdown.elapsed_ns();
      if (error) std::rethrow_exception(error);

      // Merge head-side counters.
      rt.refresh_derived_stats();
      RuntimeStats& rs = rt.stats();
      stats.schedule_ns = rs.schedule_ns;
      stats.waves = rs.waves;
      stats.target_tasks = rs.target_tasks;
      stats.data_tasks = rs.data_tasks;
      stats.host_tasks = rs.host_tasks;
      stats.makespan_estimate_s = rs.makespan_estimate_s;
      // Checkpoint counters come straight from the store: drops issued at
      // late boundaries and restores update it after the last wait_all
      // refresh.
      const CheckpointStats& cks = rt.checkpoints().stats();
      stats.checkpoints = cks.captures;
      stats.checkpoint_bytes = cks.bytes_captured;
      stats.checkpoint_dirty_bytes = cks.dirty_bytes;
      stats.checkpoint_head_bytes = cks.head_bytes;
      stats.snapshot_replicas = cks.snapshot_replicas;
      stats.checkpoint_ns = cks.capture_ns;
      stats.schedule_cache_hits = rs.schedule_cache_hits;
      stats.channels_armed = rs.channels_armed;
      stats.recovery_latency_ns = rs.recovery_latency_ns;
      stats.recoveries = rs.recoveries;
      stats.workers_lost = rs.workers_lost;
      stats.buffers_lost = rs.buffers_lost;
      stats.replayed_tasks = rs.replayed_tasks;
      stats.recovery_ns = rs.recovery_ns;
      stats.failovers = rs.failovers;
      stats.replication_updates = rs.replication_updates;
      stats.replication_bytes = rs.replication_bytes;
      stats.workers_joined = rs.workers_joined;
      stats.workers_retired = rs.workers_retired;
      stats.tenants = rs.tenants;
      stats.tenant_waves = rs.tenant_waves;
      stats.admission_rejections = rs.admission_rejections;
      stats.pool_threads_peak = rs.pool_threads_peak;
      stats.pool_threads_retired = rs.pool_threads_retired;
      stats.events_originated = rt.events().stats().originated.load();
      const DataManagerStats& ds = rt.data_manager().stats();
      stats.submits = ds.submits.load();
      stats.retrieves = ds.retrieves.load();
      stats.exchanges = ds.exchanges.load();
      stats.bytes_moved = ds.bytes_moved.load();
      stats.persistent_reuses = ds.persistent_reuses.load();
      stats.threads_spawned = rs.threads_spawned + ds.threads_spawned.load();
    } else {
      // --- worker node ---
      // Universe-aware heap: every device block doubles as an RMA window,
      // making this worker a put/get target for the one-sided data plane.
      WorkerMemory memory(&ctx.universe(), ctx.rank());
      omp::TaskRuntime exec_pool(opts.worker_threads);
      // The replica store makes this rank a head-failover candidate: it
      // accumulates HeadState updates (verbatim blobs) and its generation
      // is the rank's ballot in the ring election.
      ReplicaStore replica;
      EventSystem events(ctx, opts, &memory, &exec_pool, &replica);
      bus.register_node(ctx.rank(), &events, &replica);
      // Membership agent: heartbeat ring + failure-report routing to the
      // *current* head + the head-death election (membership.hpp).
      std::unique_ptr<MembershipAgent> agent;
      if (hb_on) {
        MembershipAgent::Options aopts;
        aopts.hb = hb_opts;
        aopts.initial_head = 0;
        agent = std::make_unique<MembershipAgent>(ctx.comm(hb_comm_index),
                                                 aopts, &bus, &replica);
      }
      events.wait_until_stopped();
      if (agent) agent->stop();
      // A promoted worker's event system is being driven by the surviving
      // control thread; destroying it underneath that thread would be a
      // use-after-free. Wait for the control thread to finish completely.
      if (bus.epoch() > 0 && bus.current_head() == ctx.rank())
        bus.await_control_release();
    }
  });

  stats.messages_sent = universe.messages_sent();
  stats.payload_copies = mpi::payload_copies() - payload_copies_before;
  stats.wall_ns = wall.elapsed_ns();
  return stats;
}

}  // namespace ompc::core
