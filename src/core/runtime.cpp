#include "core/runtime.hpp"

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <thread>

#include "common/check.hpp"
#include "common/log.hpp"
#include "common/time.hpp"

namespace ompc::core {

namespace {
/// Worker index (0-based scheduler processor) -> minimpi rank.
mpi::Rank rank_of_proc(int proc) { return proc + 1; }
}  // namespace

Runtime::Runtime(const ClusterOptions& opts, EventSystem& events)
    : opts_(opts), events_(events), dm_(events, opts), graph_(fresh_graph()) {}

Runtime::~Runtime() = default;

ClusterGraph Runtime::fresh_graph() const {
  // Edge weights resolve dependence addresses to buffer sizes through the
  // data manager's registry.
  return ClusterGraph(
      [this](const void* addr) { return dm_.buffer_size(addr); });
}

void Runtime::enter_data(void* host, std::size_t size, bool copy) {
  dm_.register_buffer(host, size);
  ClusterTask t;
  t.type = TaskType::DataEnter;
  t.buffer = host;
  t.copy = copy;
  // Listing 1: enter data carries depend(out: *A) — it is the first writer.
  t.deps = {omp::out(host)};
  graph_.add_task(std::move(t));
  ++stats_.data_tasks;
}

void Runtime::exit_data(void* host, bool copy) {
  OMPC_CHECK_MSG(dm_.is_registered(host),
                 "exit_data for buffer " << host << " that was never entered");
  ClusterTask t;
  t.type = TaskType::DataExit;
  t.buffer = host;
  t.copy = copy;
  // inout: runs after the last writer and all readers of the buffer.
  t.deps = {omp::inout(host)};
  graph_.add_task(std::move(t));
  ++stats_.data_tasks;
}

int Runtime::target(omp::DepList deps, offload::KernelId kernel, Args args,
                    double cost_s) {
  // §4.3's restriction: every buffer a target uses must appear in its
  // dependence list — that is the only way the DM can infer placement and
  // write intent. Enforced here instead of failing mysteriously later.
  for (const void* b : args.buffers()) {
    const bool listed = std::any_of(deps.begin(), deps.end(),
                                    [&](const omp::Dep& d) { return d.addr == b; });
    OMPC_CHECK_MSG(listed, "target buffer argument " << b
                                                     << " missing from depend list");
    OMPC_CHECK_MSG(dm_.is_registered(b),
                   "target buffer argument " << b << " was never entered");
  }
  ClusterTask t;
  t.type = TaskType::Target;
  t.kernel = kernel;
  t.buffer_args = args.buffers();
  t.scalars = args.take_scalars();
  t.deps = std::move(deps);
  t.cost_s = cost_s;
  const int id = graph_.add_task(std::move(t));
  ++stats_.target_tasks;
  return id;
}

int Runtime::host_task(std::function<void()> fn, omp::DepList deps) {
  ClusterTask t;
  t.type = TaskType::Host;
  t.host_fn = std::move(fn);
  t.deps = std::move(deps);
  const int id = graph_.add_task(std::move(t));
  ++stats_.host_tasks;
  return id;
}

void Runtime::execute_task(const ClusterTask& t, int proc) {
  switch (t.type) {
    case TaskType::DataEnter:
      dm_.enter_to_worker(rank_of_proc(proc), t.buffer, t.copy);
      return;
    case TaskType::DataExit:
      dm_.exit_to_head(const_cast<void*>(t.buffer), t.copy);
      return;
    case TaskType::Host:
      t.host_fn();
      return;
    case TaskType::Target: {
      const mpi::Rank worker = rank_of_proc(proc);
      // §4.3 target-region rule: make inputs valid on the assigned worker
      // (allocating/forwarding as needed), run, then invalidate replicas
      // of written buffers.
      const std::vector<offload::TargetPtr> addrs =
          dm_.prepare_args(worker, t.buffer_args);
      ExecuteHeader h;
      h.kernel = t.kernel;
      h.buffers = addrs;
      h.scalars = t.scalars;
      events_.run(worker, EventKind::Execute, h.serialize());
      dm_.after_write(worker, t.deps);
      return;
    }
  }
}

void Runtime::dispatch(const ScheduleResult& sched) {
  const std::size_t n = graph_.size();
  if (n == 0) return;

  // Dependence-driven execution with a bounded helper pool. Each helper
  // models one LLVM hidden-helper thread: it stays blocked inside
  // execute_task() for the whole life of an in-flight target region, so
  // `helpers` bounds in-flight regions exactly as §7 describes.
  std::vector<int> indegree(n, 0);
  for (const ClusterTask& t : graph_.tasks())
    indegree[static_cast<std::size_t>(t.id)] =
        static_cast<int>(t.preds.size());

  std::mutex mutex;
  std::condition_variable cv;
  std::deque<int> ready;
  std::size_t done = 0;
  std::exception_ptr first_error;

  for (const ClusterTask& t : graph_.tasks()) {
    if (t.preds.empty()) ready.push_back(t.id);
  }

  // HelperThreads: the LLVM bound — in-flight regions <= head threads.
  // TwoStep: the §7 fix decouples in-flight regions from head cores; its
  // pool scales with the *cluster* (enough to saturate every worker's
  // executor and transfer pipeline) instead of the head's thread count.
  int helpers = opts_.async_mode == AsyncMode::HelperThreads
                    ? opts_.helper_threads
                    : 16 + 3 * opts_.num_workers;
  helpers = std::max(1, std::min<int>(helpers, static_cast<int>(n)));

  auto helper_loop = [&] {
    std::unique_lock<std::mutex> lock(mutex);
    for (;;) {
      cv.wait(lock, [&] {
        return !ready.empty() || done == n || first_error != nullptr;
      });
      if ((done == n && ready.empty()) || first_error != nullptr) return;
      if (ready.empty()) continue;
      const int id = ready.front();
      ready.pop_front();
      lock.unlock();

      const ClusterTask& t = graph_.task(id);
      try {
        execute_task(t, sched.processor[static_cast<std::size_t>(id)]);
      } catch (...) {
        lock.lock();
        if (!first_error) first_error = std::current_exception();
        cv.notify_all();
        return;
      }

      lock.lock();
      ++done;
      for (int s : t.succs) {
        if (--indegree[static_cast<std::size_t>(s)] == 0) ready.push_back(s);
      }
      cv.notify_all();
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(helpers));
  for (int i = 0; i < helpers; ++i) {
    pool.emplace_back([&, i] {
      log::set_thread_label("hh" + std::to_string(i));
      helper_loop();
    });
  }
  for (auto& th : pool) th.join();
  if (first_error) std::rethrow_exception(first_error);
  OMPC_CHECK_MSG(done == n, "dispatch finished with unexecuted tasks");
}

void Runtime::wait_all() {
  if (graph_.empty()) return;
  graph_.build_edges();
  const ScheduleResult sched =
      schedule(opts_.scheduler, graph_, opts_.num_workers,
               CostModel::from_network(opts_.network),
               opts_.default_task_cost_s, opts_.seed);
  stats_.schedule_ns += sched.schedule_ns;
  stats_.makespan_estimate_s = sched.makespan_estimate_s;
  last_ = sched;

  dispatch(sched);

  ++stats_.waves;
  graph_ = fresh_graph();
}

RuntimeStats launch(const ClusterOptions& opts,
                    const std::function<void(Runtime&)>& head_main) {
  const Stopwatch wall;
  RuntimeStats stats;

  mpi::UniverseOptions uopts;
  uopts.ranks = opts.ranks();
  uopts.network = opts.network;
  uopts.comms = 1 + opts.vci;  // control + data communicators
  // The control communicator (context 0) must own a hardware channel no
  // data context aliases onto, or notification latency serializes behind
  // multi-megabyte payload transfers (contexts stripe channel = ctx % n).
  uopts.network.channels = std::max(uopts.network.channels, opts.vci + 1);

  mpi::Universe universe(uopts);
  universe.run([&](mpi::RankContext& ctx) {
    if (ctx.rank() == 0) {
      // --- head node ---
      const Stopwatch startup;
      EventSystem events(ctx, opts, nullptr, nullptr);
      stats.startup_ns = startup.elapsed_ns();

      Runtime rt(opts, events);
      // Any head-side failure must still shut the workers down, or they
      // would wait for events forever and the join below would hang.
      std::exception_ptr error;
      try {
        head_main(rt);
        rt.wait_all();  // implicit barrier at the end of the parallel region
      } catch (...) {
        error = std::current_exception();
      }

      const Stopwatch shutdown;
      if (!error) rt.data_manager().cleanup_all();
      events.shutdown_cluster();
      stats.shutdown_ns = shutdown.elapsed_ns();
      if (error) std::rethrow_exception(error);

      // Merge head-side counters.
      RuntimeStats& rs = rt.stats();
      stats.schedule_ns = rs.schedule_ns;
      stats.waves = rs.waves;
      stats.target_tasks = rs.target_tasks;
      stats.data_tasks = rs.data_tasks;
      stats.host_tasks = rs.host_tasks;
      stats.makespan_estimate_s = rs.makespan_estimate_s;
      stats.events_originated = events.stats().originated.load();
      const DataManagerStats& ds = rt.data_manager().stats();
      stats.submits = ds.submits.load();
      stats.retrieves = ds.retrieves.load();
      stats.exchanges = ds.exchanges.load();
      stats.bytes_moved = ds.bytes_moved.load();
    } else {
      // --- worker node ---
      WorkerMemory memory;
      omp::TaskRuntime exec_pool(opts.worker_threads);
      EventSystem events(ctx, opts, &memory, &exec_pool);
      events.wait_until_stopped();
    }
  });

  stats.messages_sent = universe.messages_sent();
  stats.wall_ns = wall.elapsed_ns();
  return stats;
}

}  // namespace ompc::core
