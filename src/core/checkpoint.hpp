// Wave-boundary checkpointing (paper §5).
//
// The paper couples its heartbeat fault *detection* with checkpointing and
// task-graph re-execution for *recovery*. OMPC's natural consistency points
// are the implicit barriers between waves: no task is in flight, so the set
// of registered buffers — resolved to their freshest copies through the
// Data Manager's ownership map — IS the global state of the computation.
//
// capture() is *incremental*: the Data Manager's dirty set (buffers written
// since the last committed capture) selects what must be re-snapshotted;
// clean buffers keep their previous entry by reference. Where the snapshot
// bytes go is CheckpointLocality's choice:
//
//  - Head: every dirty buffer is retrieved to the head (fanned out across
//    the transfer pool) and copied there — the PR 1/PR 3 baseline, whose
//    cost scales with dirty bytes × head NIC bandwidth;
//  - WorkerLocal: each worker snapshots its dirty buffers into device-local
//    shadow blocks (SnapshotSave, a rank-local memcpy); the head keeps only
//    metadata {owner, shadow address, generation} plus bytes for buffers
//    whose freshest copy already lives on the head;
//  - Buddy: WorkerLocal plus one replica on the owner's ring successor
//    among the live workers, shipped worker->worker over the existing
//    Exchange path — head traffic per boundary stays O(metadata) while
//    recovery survives the snapshot owner's death.
//
// Capture commits in two phases: new-generation shadows are created while
// the previous generation stays intact, so a worker dying mid-capture
// leaves the old snapshot (and the dirty set) untouched; only after every
// save/replica settles are the entries swapped and the stale shadows
// dropped. restore() resolves each buffer from the freshest surviving
// holder (owner, else buddy, else the head entry — else RecoveryError),
// streams it to the head where replay re-distributes it, and converts the
// entry to head-resident bytes so a later failure cannot chase shadows on
// ranks that died since.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/serialize.hpp"
#include "core/data_manager.hpp"
#include "core/event_system.hpp"
#include "core/options.hpp"

namespace ompc::core {

struct CheckpointStats {
  std::int64_t captures = 0;
  std::int64_t restores = 0;
  std::int64_t bytes_captured = 0;  ///< cumulative logical snapshot volume
  std::int64_t dirty_bytes = 0;     ///< cumulative bytes actually snapshotted
  std::int64_t entries_reused = 0;  ///< clean entries kept by reference
  std::int64_t capture_ns = 0;      ///< cumulative capture wall time
  std::int64_t head_bytes = 0;      ///< capture bytes through the head NIC:
                                    ///< retrieved payloads (Head mode) plus
                                    ///< snapshot-command metadata (worker
                                    ///< modes) — the micro_checkpoint gate
  std::int64_t snapshot_saves = 0;     ///< worker-local shadows created
  std::int64_t snapshot_replicas = 0;  ///< buddy replicas shipped
  std::int64_t snapshot_drops = 0;     ///< stale shadows freed
  std::int64_t degraded_restores = 0;  ///< fell back to the prior generation
};

class CheckpointStore {
 public:
  /// Head-resident store with no event plane (unit tests, and the default
  /// ablation baseline).
  CheckpointStore() = default;

  /// `events` may be null, which forces Head locality. `data_plane` picks
  /// how buddy replicas travel: one RmaPut into the buddy's registered
  /// block (default) or the two-sided Exchange pair (ablation baseline).
  CheckpointStore(EventSystem* events, CheckpointLocality locality,
                  DataPlane data_plane = DataPlane::Rma)
      : events_(events),
        locality_(events == nullptr ? CheckpointLocality::Head : locality),
        data_plane_(data_plane) {}

  /// Whether a snapshot exists to roll back to.
  bool has_checkpoint() const noexcept { return have_; }

  /// Wave index the snapshot was taken before (-1 when none).
  std::int64_t wave() const noexcept { return wave_; }

  std::size_t num_buffers() const noexcept { return entries_.size(); }

  /// Snapshots every registered buffer at a wave boundary. Only buffers in
  /// the Data Manager's dirty set are re-captured; clean buffers reuse the
  /// previous snapshot's entry by reference. Must run at a quiescent point
  /// (between waves). Replaces any previous snapshot — recovery is always
  /// to the most recent boundary — and commits atomically: a worker dying
  /// mid-capture leaves the previous snapshot (and the dirty set) intact.
  /// `live_workers` (worker-local modes) picks each owner's buddy rank.
  void capture(DataManager& dm, std::int64_t wave,
               std::span<const mpi::Rank> live_workers = {});

  /// Rolls every checkpointed buffer back: re-registers buffers a DataExit
  /// erased meanwhile, resolves each snapshot from its freshest surviving
  /// holder, and rewrites the host copies. The cluster must be quiescent
  /// and dead ranks already purged from the Data Manager. When a buffer's
  /// owner AND buddy died in the same checkpoint period with no head entry
  /// to fall back on, the store attempts a *degraded* restore of the prior
  /// generation (retained in full until the next capture commits); only
  /// when that cut is incomplete too does it throw RecoveryError, naming
  /// every unrecoverable buffer. After a degraded restore
  /// last_restore_degraded() is true and wave() reports the prior
  /// boundary — the caller must replay from there.
  void restore(DataManager& dm);

  /// Whether the last restore() fell back to the prior generation.
  bool last_restore_degraded() const noexcept {
    return last_restore_degraded_;
  }

  /// Head-replication support: flattens the full store state (both
  /// generations' entries, head-resident bytes included, parked orphans
  /// and counters) so a promoted head can adopt it.
  Bytes serialize_state() const;
  void adopt_state(std::span<const std::byte> data);

  /// Re-homes the event plane after a head failover (the promoted rank's
  /// event system replaces the dead head's).
  void rebind(EventSystem* events) { events_ = events; }

  const CheckpointStats& stats() const noexcept { return stats_; }

  /// Snapshot shadows (both generations + parked orphans) living on `rank`
  /// — the blocks a heap trim of that rank must keep so later
  /// SnapshotDrop/SnapshotFetch events still resolve.
  std::vector<offload::TargetPtr> shadows_on(mpi::Rank rank) const;

  /// Current committed snapshot generation (test hook).
  std::uint64_t generation() const noexcept { return generation_; }

  /// Entries whose bytes live on workers, not the head (test hook).
  std::size_t worker_resident_entries() const;

 private:
  /// A device-local snapshot replica on one rank (rank < 0: none).
  struct Shadow {
    mpi::Rank rank = -1;
    offload::TargetPtr ptr = 0;
  };

  struct Entry {
    void* host = nullptr;
    std::size_t size = 0;
    std::uint64_t generation = 0;
    /// Head-resident bytes; immutable once captured and shared between
    /// consecutive snapshot generations so clean buffers cost no copy.
    /// Null when the snapshot lives on workers instead.
    std::shared_ptr<const Bytes> data;
    Shadow owner;  ///< worker-local shadow (worker modes)
    Shadow buddy;  ///< ring-successor replica (Buddy mode)
  };

  /// Whether `e`'s bytes can still be produced from some live holder.
  bool restorable(const Entry& e) const;

  /// Ring successor of `owner` among `live` (-1 when no distinct buddy).
  static mpi::Rank buddy_of(mpi::Rank owner,
                            std::span<const mpi::Rank> live);

  /// Best-effort SnapshotDrop of every shadow on a still-live rank; a rank
  /// dying mid-drop is ignored (its memory dies with it).
  void drop_shadows(const std::vector<Shadow>& shadows);

  /// Head-resident capture of the pending entries: fan the retrieves out
  /// across the transfer pool, then copy each host buffer.
  void capture_on_head(DataManager& dm, std::vector<Entry>& fresh,
                       const std::vector<std::size_t>& pending);

  /// Worker-local capture: SnapshotSave on each owner (+ buddy replica via
  /// the Exchange path), pipelined across buffers. On failure the shadows
  /// created so far are parked in orphaned_ and the error rethrown — the
  /// previous generation stays intact.
  void capture_on_workers(DataManager& dm, std::vector<Entry>& fresh,
                          const std::vector<std::size_t>& pending,
                          std::span<const mpi::Rank> live_workers);

  EventSystem* events_ = nullptr;
  CheckpointLocality locality_ = CheckpointLocality::Head;
  DataPlane data_plane_ = DataPlane::Rma;

  std::vector<Entry> entries_;
  std::int64_t wave_ = -1;
  bool have_ = false;
  std::uint64_t generation_ = 0;
  /// The generation before the current one, retained in full (its shadows
  /// are dropped only when the NEXT capture commits) so a double kill that
  /// voids a current-generation entry can fall back one period instead of
  /// failing the launch.
  std::vector<Entry> prev_entries_;
  std::int64_t prev_wave_ = -1;
  bool prev_have_ = false;
  bool last_restore_degraded_ = false;
  /// Shadows whose drop had to be deferred (aborted capture, interrupted
  /// restore): freed at the next quiescent opportunity.
  std::vector<Shadow> orphaned_;
  CheckpointStats stats_;
};

}  // namespace ompc::core
