// Wave-boundary checkpointing (paper §5).
//
// The paper couples its heartbeat fault *detection* with checkpointing and
// task-graph re-execution for *recovery*. OMPC's natural consistency points
// are the implicit barriers between waves: no task is in flight, so the set
// of registered buffers — resolved to their freshest copies through the
// Data Manager's ownership map — IS the global state of the computation.
//
// capture() walks that map: buffers whose freshest copy lives on a worker
// are first retrieved to the head (the checkpoint cost the
// bench/ablation_recovery knob trades against re-execution work), then all
// host copies are snapshotted into head memory. restore() plays the
// snapshot back through the Data Manager after a failure: every buffer
// becomes "valid on head only" with its checkpointed contents, from which
// the lost waves are re-executed on the surviving workers.
#pragma once

#include <cstdint>
#include <vector>

#include "common/serialize.hpp"
#include "core/data_manager.hpp"

namespace ompc::core {

struct CheckpointStats {
  std::int64_t captures = 0;
  std::int64_t restores = 0;
  std::int64_t bytes_captured = 0;  ///< cumulative snapshot volume
  std::int64_t capture_ns = 0;      ///< cumulative capture wall time
};

class CheckpointStore {
 public:
  /// Whether a snapshot exists to roll back to.
  bool has_checkpoint() const noexcept { return have_; }

  /// Wave index the snapshot was taken before (-1 when none).
  std::int64_t wave() const noexcept { return wave_; }

  std::size_t num_buffers() const noexcept { return entries_.size(); }

  /// Snapshots every registered buffer at a wave boundary. Retrieves
  /// worker-resident copies to the head first; must therefore run at a
  /// quiescent point (between waves). Replaces any previous snapshot —
  /// recovery is always to the most recent wave boundary checkpoint.
  void capture(DataManager& dm, std::int64_t wave);

  /// Rolls every checkpointed buffer back: re-registers buffers a DataExit
  /// erased meanwhile, drops surviving worker replicas and rewrites the
  /// host copies with the snapshot. The cluster must be quiescent and dead
  /// ranks already purged from the Data Manager.
  void restore(DataManager& dm);

  const CheckpointStats& stats() const noexcept { return stats_; }

 private:
  struct Entry {
    void* host = nullptr;
    std::size_t size = 0;
    Bytes data;
  };

  std::vector<Entry> entries_;
  std::int64_t wave_ = -1;
  bool have_ = false;
  CheckpointStats stats_;
};

}  // namespace ompc::core
