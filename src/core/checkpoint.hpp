// Wave-boundary checkpointing (paper §5).
//
// The paper couples its heartbeat fault *detection* with checkpointing and
// task-graph re-execution for *recovery*. OMPC's natural consistency points
// are the implicit barriers between waves: no task is in flight, so the set
// of registered buffers — resolved to their freshest copies through the
// Data Manager's ownership map — IS the global state of the computation.
//
// capture() is *incremental*: the Data Manager's dirty set (buffers written
// since the last committed capture — it already knows every writer through
// after_write) selects what must be retrieved to the head and re-
// snapshotted; clean buffers keep their previous entry by reference
// (shared, immutable bytes), costing neither a retrieve nor a copy. On a
// sparse-writer workload the per-boundary checkpoint cost shrinks from the
// full working set to the written subset (the ROADMAP "incremental /
// dirty-buffer checkpoints" item; bench/micro_hotpath measures it).
// restore() plays the snapshot back through the Data Manager after a
// failure: every buffer becomes "valid on head only" with its checkpointed
// contents, from which the lost waves are re-executed on the surviving
// workers.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/serialize.hpp"
#include "core/data_manager.hpp"

namespace ompc::core {

struct CheckpointStats {
  std::int64_t captures = 0;
  std::int64_t restores = 0;
  std::int64_t bytes_captured = 0;  ///< cumulative logical snapshot volume
  std::int64_t dirty_bytes = 0;     ///< cumulative bytes actually copied
  std::int64_t entries_reused = 0;  ///< clean entries kept by reference
  std::int64_t capture_ns = 0;      ///< cumulative capture wall time
};

class CheckpointStore {
 public:
  /// Whether a snapshot exists to roll back to.
  bool has_checkpoint() const noexcept { return have_; }

  /// Wave index the snapshot was taken before (-1 when none).
  std::int64_t wave() const noexcept { return wave_; }

  std::size_t num_buffers() const noexcept { return entries_.size(); }

  /// Snapshots every registered buffer at a wave boundary. Only buffers in
  /// the Data Manager's dirty set are retrieved and copied; clean buffers
  /// reuse the previous snapshot's entry by reference. Must run at a
  /// quiescent point (between waves). Replaces any previous snapshot —
  /// recovery is always to the most recent wave boundary checkpoint — and
  /// commits atomically: a worker dying mid-capture leaves the previous
  /// snapshot (and the dirty set) intact.
  void capture(DataManager& dm, std::int64_t wave);

  /// Rolls every checkpointed buffer back: re-registers buffers a DataExit
  /// erased meanwhile, drops surviving worker replicas and rewrites the
  /// host copies with the snapshot. The cluster must be quiescent and dead
  /// ranks already purged from the Data Manager.
  void restore(DataManager& dm);

  const CheckpointStats& stats() const noexcept { return stats_; }

 private:
  struct Entry {
    void* host = nullptr;
    std::size_t size = 0;
    /// Immutable once captured; shared between consecutive snapshot
    /// generations so clean buffers cost no copy.
    std::shared_ptr<const Bytes> data;
  };

  std::vector<Entry> entries_;
  std::int64_t wave_ = -1;
  bool have_ = false;
  CheckpointStats stats_;
};

}  // namespace ompc::core
