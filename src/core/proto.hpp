// Wire protocol of the OMPC event system (§4.2).
//
// Three message classes flow between ranks:
//   1. new-event notifications   (control comm, tag kTagNewEvent)
//   2. event data messages       (data comm chosen by tag, tag = event tag)
//   3. completion notifications  (control comm, tag kTagComplete)
// Every event owns a unique origin-allocated tag; all its data messages use
// that tag, so matching can never cross-talk between events (the paper's
// "exclusive channel" invariant).
#pragma once

#include <cstdint>

#include "common/serialize.hpp"
#include "minimpi/mpi.hpp"
#include "offload/kernel_registry.hpp"
#include "offload/plugin.hpp"

namespace ompc::core {

/// Actions a destination rank can perform — one-to-one with the plugin API
/// (paper §4.2: "a one-to-one match to all the required functions that a
/// device plugin must implement").
enum class EventKind : std::uint8_t {
  Alloc = 1,     ///< allocate device memory; replies with the address
  Delete,        ///< free device memory
  Submit,        ///< receive buffer data from the origin (host -> worker)
  Retrieve,      ///< send buffer data to the origin (worker -> host)
  ExchangeSend,  ///< send a local buffer directly to another worker
  ExchangeRecv,  ///< receive a buffer directly from another worker
  Execute,       ///< run a registered kernel on local device memory
  Shutdown,      ///< stop the event system (sent once by the head)
  RankDead,      ///< head -> workers: a rank died; abort events touching it

  // Worker-local checkpoint data plane (§5, CheckpointLocality): the head
  // commands snapshots by metadata; the bytes never touch its NIC.
  SnapshotSave,   ///< copy a device region into a local shadow; replies
                  ///< with the shadow's address
  SnapshotDrop,   ///< free a shadow (stale generation / post-restore)
  SnapshotFetch,  ///< send shadow bytes to the origin (restore path) —
                  ///< wire-identical to Retrieve, distinct for accounting

  /// One-sided forward: the destination rank puts a local region straight
  /// into a pre-registered window of `peer` (Comm::put). Replaces the
  /// ExchangeSend/ExchangeRecv pair on the RMA data plane — one event, no
  /// receive posted at the peer, the bytes land via the window registry.
  RmaPut,

  // Head failover / elastic membership (§5 extension).

  /// Head -> shadow rank: an incremental update of the head's recording
  /// state (wave log delta + ownership/checkpoint metadata). The payload
  /// blob is stored verbatim in the shadow's ReplicaStore; it is only
  /// deserialized if that rank is later promoted.
  HeadState,

  /// New head -> worker (post-election): free every device block except the
  /// listed keep-set (the checkpoint shadows the replicated metadata still
  /// references). Reconciles worker heaps the old head was mid-way through
  /// mutating — the dead head's bookkeeping for them is unrecoverable.
  TrimHeap,

  /// New head -> workers: the authoritative live-worker set changed (a
  /// runtime join/leave, or post-failover re-ranking). Informational on the
  /// destination today (the head owns all placement decisions); carried as
  /// an event so membership changes are acknowledged and ordered with the
  /// data plane.
  MembershipUpdate,
};

const char* to_string(EventKind k);

/// The runtime's tag map, centralized: every control tag the event system
/// uses lives in this one enum, so a new protocol message cannot silently
/// collide with an existing one (the static_asserts below pin the layout).
enum ControlTag : mpi::Tag {
  kTagNewEvent = 1,  ///< new-event notifications (control comm)
  kTagComplete = 2,  ///< completion notifications (control comm)

  /// Tag for the rank-local self-put that fills a snapshot shadow. A
  /// control tag (below the data-tag boundary) on purpose: the bytes never
  /// leave the rank, so the write must stay out of the wire-copy
  /// accounting exactly like the memcpy it replaced.
  kTagSnapshotPut = 3,
};

/// First tag usable by events (small tags are control tags). Anchored to
/// the minimpi data-tag boundary so payload-copy accounting sees every
/// event data message and none of the control traffic.
inline constexpr mpi::Tag kFirstEventTag = mpi::kFirstDataTag;

/// Persistent-channel tag space: the top 2^20 user tags are reserved for
/// pre-posted wave-shape channels (EventSystem::allocate_channel_tag).
/// Ordinary event tags (allocate_tag) stay strictly below this base, so a
/// channel's fixed (rank, tag) shape can never match transient traffic.
inline constexpr mpi::Tag kChannelTagBase = mpi::kMaxUserTag - (1 << 20) + 1;

/// Channel tags are striped per origin rank (rank r allocates from
/// [base + r * stripe, base + (r+1) * stripe)), so a head promoted after a
/// failover can never re-issue a tag whose orphaned payloads — sent under
/// the dead head — might still sit in a worker's unexpected queue.
inline constexpr mpi::Tag kChannelTagsPerRank = 1 << 14;
inline constexpr int kMaxChannelRanks = (1 << 20) / kChannelTagsPerRank;

// Layout invariants of the tag map. Control tags are pairwise distinct and
// below the data boundary; event tags start at the boundary; channel tags
// occupy the top of the user range without touching the collective space.
static_assert(kTagNewEvent != kTagComplete &&
              kTagComplete != kTagSnapshotPut &&
              kTagNewEvent != kTagSnapshotPut);
static_assert(kTagNewEvent > 0 && kTagSnapshotPut < mpi::kFirstDataTag,
              "control tags must stay below the data-tag boundary");
static_assert(kFirstEventTag >= mpi::kFirstDataTag,
              "event data tags must be visible to copy accounting");
static_assert(kFirstEventTag < kChannelTagBase &&
                  kChannelTagBase <= mpi::kMaxUserTag,
              "channel tags must not overlap transient event tags");
static_assert(kChannelTagBase + kMaxChannelRanks * kChannelTagsPerRank - 1 ==
                  mpi::kMaxUserTag,
              "per-rank channel stripes must tile the channel space exactly");

// --- event headers (serialized into the new-event notification) ---------

struct AllocHeader {
  std::uint64_t size = 0;
};

struct DeleteHeader {
  offload::TargetPtr ptr = 0;
};

struct SubmitHeader {
  offload::TargetPtr dst = 0;
  std::uint64_t size = 0;
  /// Non-zero: the payload travels on this fixed channel tag instead of the
  /// event's own tag, so the destination's pre-posted persistent receive
  /// (ChannelPlan) matches it without a fresh mailbox slot. 0 = transient.
  mpi::Tag data_tag = 0;
};

struct RetrieveHeader {
  offload::TargetPtr src = 0;
  std::uint64_t size = 0;
};

/// SnapshotSave: the destination copies `size` bytes starting at the device
/// address `src` into a freshly allocated local shadow block and replies
/// with the shadow's address. Purely rank-local — the one event whose data
/// volume is invisible to the network.
struct SnapshotSaveHeader {
  offload::TargetPtr src = 0;
  std::uint64_t size = 0;
};

/// SnapshotDrop: free the shadow at `ptr` (a previous SnapshotSave result).
struct SnapshotDropHeader {
  offload::TargetPtr ptr = 0;
};

/// Broadcast by the head after the failure detector declares a rank dead so
/// workers abort events (pending exchanges) that involve the corpse.
struct RankDeadHeader {
  mpi::Rank rank = -1;
};

/// The two halves of a worker->worker forward share one wire tag
/// (`data_tag`) so the payload matches even though each half is its own
/// event with its own notification tag.
struct ExchangeSendHeader {
  offload::TargetPtr src = 0;
  std::uint64_t size = 0;
  mpi::Rank peer = 0;      ///< destination worker rank
  mpi::Tag data_tag = 0;   ///< tag of the payload message
};

struct ExchangeRecvHeader {
  offload::TargetPtr dst = 0;
  std::uint64_t size = 0;
  mpi::Rank peer = 0;      ///< source worker rank
  mpi::Tag data_tag = 0;   ///< tag of the payload message
};

/// RmaPut: the destination rank writes [src, src+size) of its device heap
/// into window `win` of `peer` at `offset` with a single one-sided put and
/// completes when the bytes have landed. `win` is the peer's destination
/// block address (the worker heap registers every block under its own
/// address — see WorkerMemory).
struct RmaPutHeader {
  offload::TargetPtr src = 0;
  std::uint64_t size = 0;
  mpi::Rank peer = 0;           ///< target rank of the put
  offload::TargetPtr win = 0;   ///< peer's window id (= block address)
  std::uint64_t offset = 0;     ///< byte offset inside the window
};

/// HeadState: `size` bytes of serialized head state follow as the event
/// payload. `reset` marks a boundary where the checkpoint was retaken: the
/// shadow moves its accumulated waves to the previous-generation slot and
/// starts fresh (mirroring wave_log_.clear() on the head).
struct HeadStateHeader {
  std::uint64_t size = 0;
  std::uint64_t generation = 0;
  std::uint8_t reset = 0;
};

/// TrimHeap: keep-set of device block addresses follows in the header blob
/// (serialized vector). Everything else on the destination's heap is freed.
/// The handler defers until it is the only active event on the rank so no
/// in-flight Submit/Execute touches a block being freed.
struct TrimHeapHeader {
  std::uint64_t keep_count = 0;  ///< vector<TargetPtr> follows
};

/// MembershipUpdate: the new live-worker table, positional (proc index ->
/// rank), plus the current head rank.
struct MembershipUpdateHeader {
  mpi::Rank head = 0;
  std::uint64_t worker_count = 0;  ///< vector<Rank> follows
};

/// Execute carries variable-length argument lists, serialized explicitly.
struct ExecuteHeader {
  offload::KernelId kernel = offload::kInvalidKernel;
  std::vector<offload::TargetPtr> buffers;
  Bytes scalars;

  Bytes serialize() const {
    ArchiveWriter w;
    w.put(kernel);
    w.put_vector(buffers);
    w.put_blob(std::span<const std::byte>(scalars.data(), scalars.size()));
    return w.take();
  }
  static ExecuteHeader deserialize(std::span<const std::byte> data) {
    ArchiveReader r(data);
    ExecuteHeader h;
    h.kernel = r.get<offload::KernelId>();
    h.buffers = r.get_vector<offload::TargetPtr>();
    h.scalars = r.get_blob();
    return h;
  }
};

/// Envelope of a new-event notification.
struct EventAnnounce {
  EventKind kind = EventKind::Shutdown;
  mpi::Tag tag = 0;
  mpi::Rank origin = 0;
  Bytes header;

  Bytes serialize() const {
    ArchiveWriter w;
    w.put(kind);
    w.put(tag);
    w.put(origin);
    w.put_blob(std::span<const std::byte>(header.data(), header.size()));
    return w.take();
  }
  static EventAnnounce deserialize(std::span<const std::byte> data) {
    ArchiveReader r(data);
    EventAnnounce a;
    a.kind = r.get<EventKind>();
    a.tag = r.get<mpi::Tag>();
    a.origin = r.get<mpi::Rank>();
    a.header = r.get_blob();
    return a;
  }
};

/// Envelope of a completion notification (result rides along: Alloc returns
/// the device address here).
struct EventCompletion {
  mpi::Tag tag = 0;
  Bytes result;

  Bytes serialize() const {
    ArchiveWriter w;
    w.put(tag);
    w.put_blob(std::span<const std::byte>(result.data(), result.size()));
    return w.take();
  }
  static EventCompletion deserialize(std::span<const std::byte> data) {
    ArchiveReader r(data);
    EventCompletion c;
    c.tag = r.get<mpi::Tag>();
    c.result = r.get_blob();
    return c;
  }
};

}  // namespace ompc::core
