// Configuration of the OMPC cluster runtime.
#pragma once

#include <cstdint>
#include <vector>

#include "minimpi/mpi.hpp"

namespace ompc::core {

/// How the head node drives in-flight target regions (paper §7).
enum class AsyncMode {
  /// LLVM's behaviour: one head thread blocks per in-flight `target
  /// nowait` region, so at most `helper_threads` regions are in flight.
  /// This reproduces the paper's 32/64-node saturation in Fig. 5.
  HelperThreads,
  /// The paper's proposed fix ("two-step" dispatch through an operation
  /// queue): in-flight regions are not bounded by head threads.
  TwoStep,
};

/// How the Data Manager moves a buffer between two workers (§4.3).
enum class Forwarding {
  /// Direct worker->worker exchange commanded by the head (the paper's
  /// design: the head orchestrates but the data never passes through it).
  Direct,
  /// Strawman for bench/ablation_forwarding: retrieve to the head, then
  /// submit to the consumer (what a naive single-device runtime would do).
  ViaHead,
};

/// Where the §5 wave-boundary snapshot bytes live (the checkpoint data
/// plane). The paper only requires a *consistent* snapshot, not a
/// head-resident one — worker-local placement takes the capture cost off
/// the head NIC entirely (bench/micro_checkpoint gates this).
enum class CheckpointLocality {
  /// PR 1/PR 3 baseline: every dirty buffer is retrieved to the head and
  /// copied there — capture cost scales with dirty bytes × head bandwidth.
  Head,
  /// Each worker snapshots its dirty buffers into device-local shadow
  /// copies; the head keeps metadata only (plus bytes for head-resident
  /// buffers). No redundancy: the snapshot dies with its owner.
  WorkerLocal,
  /// WorkerLocal plus one replica on a buddy rank (the owner's ring
  /// successor among the live workers), shipped over the direct
  /// worker->worker Exchange path. Recovery survives the owner's death;
  /// owner AND buddy dying in one period degrades to a clean
  /// RecoveryError (or the head entry when one exists).
  Buddy,
};

/// How bulk buffer bytes travel between ranks (exchange, buddy replicas).
enum class DataPlane {
  /// Two-sided baseline: every forward is an ExchangeSend/ExchangeRecv
  /// event pair rendezvousing on a shared data tag (5 control+data
  /// messages per forward). Kept for bench/ablation comparison.
  Rendezvous,
  /// One-sided: a single RmaPut event; the producer puts straight into the
  /// consumer's pre-registered window (4 messages per forward, no receive
  /// handler on the consumer's event path).
  Rma,
};

/// Task-to-worker scheduling policy (§4.4 + ablations).
enum class SchedulerKind {
  Heft,        ///< The paper's HEFT with its two adaptations.
  RoundRobin,  ///< tasks striped over workers in creation order
  Random,      ///< uniform random placement (seeded)
  MinLoad,     ///< greedy earliest-available-worker, ignores communication
};

struct ClusterOptions {
  /// Worker nodes (the paper's "nodes"); the head is one extra rank.
  int num_workers = 2;

  /// Head-node threads that drive in-flight target regions under
  /// AsyncMode::HelperThreads. Default 48 = the paper's head (2x24 cores
  /// with 48 threads usable), which is what makes width>48 graphs saturate.
  int helper_threads = 48;

  /// Event-handler threads per rank (§4.2 "a set of threads ... executing
  /// the events present in the local queue").
  int handler_threads = 2;

  /// Per-worker threads for second-level parallelism inside kernels.
  int worker_threads = 2;

  /// Ceiling of the head's persistent transfer pool (prepare_args fans the
  /// buffer fetches of multi-input tasks out to it, replacing per-buffer
  /// thread spawns). 0 = auto: 16 + 3 * num_workers. The pool is elastic:
  /// it starts at pool_min_threads and grows on demand up to this bound.
  int transfer_threads = 0;

  /// Floor of the elastic dispatch/transfer pools: threads kept alive even
  /// when the pools sit idle. 0 = auto: min(ceiling, 4 + num_workers).
  /// The ceilings stay what they always were (helper_threads respectively
  /// transfer_threads/cluster_pool_threads()), so the §7 in-flight-region
  /// bound is unchanged — only launch cost and idle footprint shrink.
  int pool_min_threads = 0;

  /// An elastic pool thread that sits idle this long (and is above the
  /// floor) retires. Long enough that steady per-wave traffic never churns
  /// threads (bench/micro_hotpath gates 0 spawns per steady wave); 0 keeps
  /// every spawned thread for the whole launch.
  std::int64_t pool_idle_shrink_ms = 500;

  /// Admission control (multi-tenancy): max waves queued per tenant before
  /// Runtime::submit throws AdmissionError (submit_wait blocks instead).
  /// 0 = unbounded.
  int max_pending_waves = 8;

  /// Number of data communicators; events are striped over them by tag
  /// (the paper's VCI usage, §4.2/§6.1).
  int vci = 4;

  AsyncMode async_mode = AsyncMode::HelperThreads;
  Forwarding forwarding = Forwarding::Direct;
  DataPlane data_plane = DataPlane::Rma;
  SchedulerKind scheduler = SchedulerKind::Heft;

  /// Persistent message channels (ablation knob, bench/fig5_halo): when the
  /// schedule cache hits — same structural_hash, same live-worker set — the
  /// steady-state wave path arms a ChannelPlan of pre-posted receives and
  /// pre-armed one-sided puts (minimpi send_init/recv_init/put_init) and
  /// the Data Manager keeps device allocations alive across waves, so a
  /// repeated wave re-uses its channels instead of re-allocating mailbox
  /// slots and re-resolving windows. Invalidated on rollback, membership
  /// change, head failover and tenant-set change, so recovery stays
  /// bitwise-identical to the transient path. Off = every wave transient.
  bool persistent_channels = true;

  /// Transport conduit for the simulated universe (see minimpi/conduit.hpp;
  /// the OMPC_CONDUIT environment variable overrides this process-wide and
  /// is validated at Universe construction).
  mpi::ConduitKind conduit = mpi::ConduitKind::InProcess;

  /// Simulated interconnect. Default roughly dilates the paper's EDR
  /// InfiniBand consistently with 1/25-dilated compute: 2 us latency and
  /// ~12.5 GB/s per link become 50 us and 500 MB/s.
  mpi::NetworkModel network{50'000, 500.0e6, 8};

  /// Default compute-cost estimate (seconds) the HEFT cost model assumes
  /// for target tasks that carry no explicit hint.
  double default_task_cost_s = 1.0e-3;

  /// Heartbeat period for the fault-detection ring (0 = disabled). With the
  /// ring enabled a dead worker is detected within ~heartbeat_timeout_ms
  /// and reported to the head, which triggers recovery in wait_all().
  std::int64_t heartbeat_period_ms = 0;

  /// Silence threshold before a ring neighbour is declared dead. With
  /// adaptive timing (below) this is the *ceiling*: the EWMA-derived
  /// threshold never exceeds it.
  std::int64_t heartbeat_timeout_ms = 100;

  /// Derive the miss threshold from measured ping inter-arrival samples
  /// (Jacobson-style EWMA of mean + k·deviation) instead of the fixed
  /// timeout. Robust under sanitizer/CI jitter: a slow run widens its own
  /// threshold instead of needing inflated static timeouts.
  bool heartbeat_adaptive = true;

  /// Adaptive-mode floor (ms): the derived threshold never drops below
  /// this, so a burst of fast pings cannot make detection hair-triggered.
  /// 0 = auto (4 heartbeat periods).
  std::int64_t heartbeat_min_timeout_ms = 0;

  /// Deviation multiplier k in the adaptive threshold
  /// mean + k * deviation (Jacobson's RTO uses 4).
  int heartbeat_dev_factor = 6;

  /// Waves between buffer checkpoints (paper §5): 1 = snapshot at every
  /// wait_all() boundary, k = every k-th, 0 = fault tolerance disabled (a
  /// detected failure raises RecoveryError instead of recovering). Larger
  /// periods cost less in steady state but re-execute more waves on
  /// failure — bench/ablation_recovery measures the trade.
  int checkpoint_period = 0;

  /// Snapshot placement policy (see CheckpointLocality). Head is the
  /// ablation baseline; Buddy keeps capture traffic through the head to
  /// O(metadata) while surviving the snapshot owner's death.
  CheckpointLocality checkpoint_locality = CheckpointLocality::Head;

  /// Replicate the head's recording state (wave log, ownership map,
  /// checkpoint metadata) to a shadow worker at every wave boundary, so a
  /// surviving rank can be elected head and resume from the last committed
  /// wave when the head dies. Requires checkpoint_period > 0 and the
  /// heartbeat ring (detection + election ride on it).
  bool head_replication = true;

  /// Extra ranks launched as workers but left out of the initial schedule:
  /// the elastic pool Runtime::request_join() activates at a wave boundary
  /// (they heartbeat and serve events from the start, so joining is pure
  /// bookkeeping — no process launch).
  int spare_workers = 0;

  /// Fault injection forwarded to the simulated universe: each entry kills
  /// one rank at a fixed time offset (deterministic, testable failures).
  std::vector<mpi::KillSpec> kills;

  /// Seed for SchedulerKind::Random.
  std::uint64_t seed = 0x5eed;

  /// Ranks in the universe (head + workers + spare workers).
  int ranks() const noexcept { return num_workers + spare_workers + 1; }

  /// Workers booted at launch (initial + spares); spares only become
  /// schedulable after Runtime::request_join().
  int total_workers() const noexcept { return num_workers + spare_workers; }

  /// Cluster-scaled head pool size: enough in-flight jobs to saturate
  /// every worker's executor and transfer pipeline. Used for the TwoStep
  /// dispatch pool and as the transfer-pool default.
  int cluster_pool_threads() const noexcept { return 16 + 3 * num_workers; }

  /// Resolved elastic-pool floor for a pool capped at `max_threads`.
  int pool_floor(int max_threads) const noexcept {
    const int floor = pool_min_threads > 0 ? pool_min_threads
                                           : 4 + num_workers;
    return floor < max_threads ? floor : max_threads;
  }
};

}  // namespace ompc::core
