// Multi-tenancy primitives: tenant identity, per-tenant statistics and the
// admission-control error surfaced when a tenant's submission queue is full.
//
// The paper's runtime serves one task graph at a time; a production head
// node serves many independent DAG streams sharing one cluster. Each stream
// is a *tenant*: it records waves through a TenantSession (runtime.hpp),
// submits them into a bounded per-tenant queue, and the head's serve loop
// interleaves ready waves across tenants with weighted deficit round-robin.
// Everything here is plain data — the scheduling itself lives in Runtime.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace ompc::core {

/// Identifies one submission stream. Tenant 0 is the legacy single-graph
/// surface (Runtime::enter_data/.../wait_all records on behalf of it), so
/// its counters stay meaningful for programs that never create a session.
using TenantId = std::int32_t;
inline constexpr TenantId kDefaultTenant = 0;

/// Thrown by Runtime::submit when a tenant's queue is at
/// ClusterOptions::max_pending_waves (backpressure: the head is saturated)
/// or when the serve loop has already stopped. The rejected wave is NOT
/// lost — the session keeps it recorded so the caller can retry or switch
/// to the blocking submit_wait().
class AdmissionError : public std::runtime_error {
 public:
  AdmissionError(TenantId tenant, const std::string& what)
      : std::runtime_error(what), tenant_(tenant) {}
  TenantId tenant() const noexcept { return tenant_; }

 private:
  TenantId tenant_;
};

/// Per-tenant slice of the runtime counters. The global RuntimeStats block
/// stays a trivially-copyable POD (it is replicated raw to the shadow rank
/// for head failover), so the per-tenant view — which carries a latency
/// sample vector for tail percentiles — lives in this separate struct,
/// guarded by the runtime's tenant mutex.
struct TenantStats {
  double weight = 1.0;  ///< WDRR share: credit per scheduler visit

  std::int64_t submitted_waves = 0;  ///< waves accepted into the queue
  std::int64_t completed_waves = 0;  ///< waves executed to completion
  std::int64_t rejected_waves = 0;   ///< AdmissionError throws
  std::int64_t tasks = 0;            ///< tasks across accepted waves

  /// Waves of THIS tenant served from the memoized schedule (the global
  /// schedule_cache_hits counter cannot attribute a hit once graphs from
  /// several tenants interleave through one cache).
  std::int64_t schedule_cache_hits = 0;

  // §5 recovery, scoped per tenant: an episode's rollback+replay latency is
  // charged to every tenant whose waves were replayed, so concurrent
  // streams don't corrupt each other's recovery accounting.
  std::int64_t recoveries = 0;           ///< episodes that replayed this
                                         ///< tenant's waves
  std::int64_t replayed_tasks = 0;       ///< this tenant's re-executed tasks
  std::int64_t recovery_latency_ns = 0;  ///< detection -> replay complete,
                                         ///< summed over its episodes

  std::int64_t queue_wait_ns = 0;  ///< submit -> dispatch start, summed

  /// submit -> completion per wave, in completion order. The raw samples
  /// (not a digest): soak runs are bounded, and exact percentiles keep the
  /// bench gate honest.
  std::vector<std::int64_t> wave_latency_ns;

  /// Nearest-rank percentile of wave_latency_ns, p in [0, 100].
  /// 0 when no wave has completed.
  std::int64_t latency_percentile_ns(double p) const;
};

}  // namespace ompc::core
