// OpenMP-style dependence descriptors.
//
// A Dep names a storage location (by address, exactly as the OpenMP
// `depend` clause does) and a direction. The runtime serializes tasks that
// touch the same location according to the standard's rules: readers after
// the last writer; writers after the last writer *and* all intervening
// readers (flow, anti and output dependences).
#pragma once

#include <span>
#include <vector>

namespace ompc::omp {

enum class DepType { In, Out, InOut };

struct Dep {
  const void* addr = nullptr;
  DepType type = DepType::In;
};

inline Dep in(const void* p) { return Dep{p, DepType::In}; }
inline Dep out(const void* p) { return Dep{p, DepType::Out}; }
inline Dep inout(const void* p) { return Dep{p, DepType::InOut}; }

inline bool is_write(DepType t) { return t != DepType::In; }

using DepList = std::vector<Dep>;

}  // namespace ompc::omp
