#include "omptask/runtime.hpp"

#include "common/check.hpp"
#include "common/log.hpp"

namespace ompc::omp {

namespace {
// Identifies the worker index of the calling thread within its runtime
// (-1 for external threads). Thread-local per (thread, runtime) pair is
// overkill; a task runtime never migrates threads, so a plain pair works.
thread_local const TaskRuntime* t_pool = nullptr;
thread_local int t_worker_index = -1;
}  // namespace

TaskRuntime::TaskRuntime(int num_threads) {
  OMPC_CHECK_MSG(num_threads >= 1, "task runtime needs >= 1 thread");
  const int n = num_threads;
  ready_.reserve(static_cast<std::size_t>(n) + 1);
  for (int i = 0; i < n + 1; ++i)
    ready_.push_back(std::make_unique<ReadyQueue>());
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] {
      log::set_thread_label("omp" + std::to_string(i));
      t_pool = this;
      t_worker_index = i;
      worker_main(i);
    });
  }
}

TaskRuntime::~TaskRuntime() {
  stop_.store(true, std::memory_order_release);
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

TaskId TaskRuntime::submit(TaskFn fn, std::span<const Dep> deps) {
  TaskId ready_id = 0;
  TaskId id = 0;
  {
    std::lock_guard<std::mutex> lock(graph_mutex_);
    id = next_id_++;
    auto task = std::make_unique<Task>();
    task->id = id;
    task->fn = std::move(fn);

    // OpenMP dependence resolution against the per-address history.
    auto add_edge = [&](TaskId pred_id) {
      auto it = tasks_.find(pred_id);
      if (it == tasks_.end() || it->second->finished) return;
      it->second->successors.push_back(id);
      ++task->remaining_deps;
    };
    for (const Dep& d : deps) {
      AddrState& st = addr_state_[d.addr];
      if (d.type == DepType::In) {
        if (st.has_writer) add_edge(st.last_writer);
        st.readers_since_write.push_back(id);
      } else {
        if (st.has_writer) add_edge(st.last_writer);
        for (TaskId r : st.readers_since_write) add_edge(r);
        st.readers_since_write.clear();
        st.last_writer = id;
        st.has_writer = true;
      }
    }

    ++pending_;
    const bool is_ready = task->remaining_deps == 0;
    tasks_.emplace(id, std::move(task));
    if (is_ready) ready_id = id;
  }
  if (ready_id != 0) enqueue_ready(ready_id, t_worker_index);
  return id;
}

void TaskRuntime::taskwait() {
  std::unique_lock<std::mutex> lock(graph_mutex_);
  all_done_cv_.wait(lock, [this] { return pending_ == 0; });
  // Epoch boundary: drop completed task records and dependence history so
  // long-running programs (benchmark sweeps) don't accumulate state.
  tasks_.clear();
  addr_state_.clear();
}

bool TaskRuntime::is_finished(TaskId id) const {
  std::lock_guard<std::mutex> lock(graph_mutex_);
  auto it = tasks_.find(id);
  return it == tasks_.end() || it->second->finished;
}

void TaskRuntime::enqueue_ready(TaskId id, int hint_queue) {
  const int inbox = static_cast<int>(ready_.size()) - 1;
  const int q = (hint_queue >= 0 && hint_queue < inbox && t_pool == this)
                    ? hint_queue
                    : inbox;
  {
    std::lock_guard<std::mutex> lock(ready_[static_cast<std::size_t>(q)]->mutex);
    ready_[static_cast<std::size_t>(q)]->queue.push_back(id);
  }
  work_cv_.notify_one();
}

bool TaskRuntime::try_pop(int self, TaskId& out) {
  // Own queue first (LIFO for locality) ...
  {
    auto& rq = *ready_[static_cast<std::size_t>(self)];
    std::lock_guard<std::mutex> lock(rq.mutex);
    if (!rq.queue.empty()) {
      out = rq.queue.back();
      rq.queue.pop_back();
      return true;
    }
  }
  // ... then the external inbox and victims (FIFO steal side).
  const int n = static_cast<int>(ready_.size());
  for (int i = 1; i < n; ++i) {
    const int v = (self + i) % n;
    auto& rq = *ready_[static_cast<std::size_t>(v)];
    std::lock_guard<std::mutex> lock(rq.mutex);
    if (!rq.queue.empty()) {
      out = rq.queue.front();
      rq.queue.pop_front();
      steals_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

void TaskRuntime::run_task(TaskId id) {
  TaskFn fn;
  {
    std::lock_guard<std::mutex> lock(graph_mutex_);
    auto it = tasks_.find(id);
    OMPC_CHECK_MSG(it != tasks_.end(), "running unknown task " << id);
    fn = std::move(it->second->fn);
  }
  fn();  // user code runs outside every lock (CP.22)
  executed_.fetch_add(1, std::memory_order_relaxed);

  std::vector<TaskId> now_ready;
  {
    std::lock_guard<std::mutex> lock(graph_mutex_);
    auto it = tasks_.find(id);
    Task& task = *it->second;
    task.finished = true;
    for (TaskId succ : task.successors) {
      auto sit = tasks_.find(succ);
      if (sit == tasks_.end()) continue;
      if (--sit->second->remaining_deps == 0) now_ready.push_back(succ);
    }
    if (--pending_ == 0) all_done_cv_.notify_all();
  }
  for (TaskId succ : now_ready) enqueue_ready(succ, t_worker_index);
}

void TaskRuntime::worker_main(int self) {
  for (;;) {
    TaskId id = 0;
    if (try_pop(self, id)) {
      run_task(id);
      continue;
    }
    std::unique_lock<std::mutex> lock(sleep_mutex_);
    if (stop_.load(std::memory_order_acquire)) return;
    // Re-check after taking the sleep lock: a task may have been enqueued
    // between the failed pop and here; work_cv_ notification races are
    // resolved by the timed wait below.
    work_cv_.wait_for(lock, std::chrono::milliseconds(1));
    if (stop_.load(std::memory_order_acquire)) return;
  }
}

void TaskRuntime::parallel_for(
    std::int64_t begin, std::int64_t end, std::int64_t grain,
    const std::function<void(std::int64_t, std::int64_t)>& body) {
  OMPC_CHECK(grain >= 1);
  if (begin >= end) return;

  // Chunk cursor shared with helper tasks; the caller participates so this
  // is safe inside a task body (never blocks a pool thread on the pool).
  struct Shared {
    std::atomic<std::int64_t> next;
    std::atomic<std::int64_t> done_chunks{0};
    std::int64_t begin, end, grain, total_chunks;
    const std::function<void(std::int64_t, std::int64_t)>* body;
  };
  auto shared = std::make_shared<Shared>();
  shared->next.store(begin);
  shared->begin = begin;
  shared->end = end;
  shared->grain = grain;
  shared->total_chunks = (end - begin + grain - 1) / grain;
  shared->body = &body;

  auto drain_one = [](Shared& s) -> bool {
    const std::int64_t lo = s.next.fetch_add(s.grain);
    if (lo >= s.end) return false;
    const std::int64_t hi = std::min(lo + s.grain, s.end);
    (*s.body)(lo, hi);
    s.done_chunks.fetch_add(1, std::memory_order_release);
    return true;
  };

  // One helper task per worker; each drains chunks until the cursor is
  // exhausted. The caller drains too, then spins (yielding) for stragglers.
  const int helpers = num_threads();
  for (int i = 0; i < helpers; ++i) {
    submit([shared, drain_one] {
      while (drain_one(*shared)) {
      }
    });
  }
  while (drain_one(*shared)) {
  }
  while (shared->done_chunks.load(std::memory_order_acquire) <
         shared->total_chunks) {
    std::this_thread::yield();
  }
}

}  // namespace ompc::omp
