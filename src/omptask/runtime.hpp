// Host task runtime: the miniature of LLVM's OpenMP tasking layer that OMPC
// builds on (DESIGN.md §3 "omptask").
//
// - submit() outlines a code fragment as a task with depend() semantics;
//   ready tasks feed a pool of worker threads with work stealing (LLVM's
//   host scheduling strategy, §4.4 of the paper).
// - taskwait() is the implicit barrier at the end of a parallel region.
// - parallel_for() provides the second level of parallelism the paper keeps
//   available inside each cluster node (§3.1): it is caller-participating
//   and safe to call from inside a task.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <random>
#include <span>
#include <thread>
#include <unordered_map>
#include <vector>

#include "omptask/dep.hpp"

namespace ompc::omp {

using TaskId = std::uint64_t;
using TaskFn = std::function<void()>;

class TaskRuntime {
 public:
  /// Spawns `num_threads` workers (>=1).
  explicit TaskRuntime(int num_threads);
  ~TaskRuntime();

  TaskRuntime(const TaskRuntime&) = delete;
  TaskRuntime& operator=(const TaskRuntime&) = delete;

  /// Outlines `fn` as a task ordered by `deps`; returns its id. Thread-safe.
  TaskId submit(TaskFn fn, std::span<const Dep> deps = {});
  TaskId submit(TaskFn fn, std::initializer_list<Dep> deps) {
    return submit(std::move(fn), std::span<const Dep>(deps.begin(), deps.size()));
  }

  /// Blocks until every task submitted so far has finished, then recycles
  /// completed-task storage (epoch boundary, like an implicit barrier).
  void taskwait();

  /// True once the given task has finished executing.
  bool is_finished(TaskId id) const;

  /// Caller-participating parallel loop over [begin, end) in `grain`-sized
  /// chunks. Safe to call from within a task body (it never blocks a worker
  /// on the pool — the caller executes chunks itself while waiting).
  void parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain,
                    const std::function<void(std::int64_t, std::int64_t)>& body);

  int num_threads() const noexcept {
    return static_cast<int>(workers_.size());
  }

  /// Tasks executed since construction (test/bench hook).
  std::int64_t executed() const noexcept {
    return executed_.load(std::memory_order_relaxed);
  }
  /// Successful steals since construction (test/bench hook).
  std::int64_t steals() const noexcept {
    return steals_.load(std::memory_order_relaxed);
  }

 private:
  struct Task {
    TaskId id = 0;
    TaskFn fn;
    int remaining_deps = 0;            // guarded by graph_mutex_
    std::vector<TaskId> successors;    // guarded by graph_mutex_
    bool finished = false;             // guarded by graph_mutex_
  };

  struct AddrState {
    TaskId last_writer = 0;
    bool has_writer = false;
    std::vector<TaskId> readers_since_write;
  };

  void worker_main(int self);
  void enqueue_ready(TaskId id, int hint_queue);
  bool try_pop(int self, TaskId& out);
  void run_task(TaskId id);

  // Graph state: task table, dependence map, pending counter.
  mutable std::mutex graph_mutex_;
  std::unordered_map<TaskId, std::unique_ptr<Task>> tasks_;
  std::unordered_map<const void*, AddrState> addr_state_;
  TaskId next_id_ = 1;
  std::int64_t pending_ = 0;  // submitted but not yet finished
  std::condition_variable all_done_cv_;

  // Ready queues: one deque per worker plus a shared inbox for external
  // submitters; workers pop their own queue LIFO and steal FIFO.
  struct ReadyQueue {
    std::mutex mutex;
    std::deque<TaskId> queue;
  };
  std::vector<std::unique_ptr<ReadyQueue>> ready_;  // [workers] + inbox last
  std::mutex sleep_mutex_;
  std::condition_variable work_cv_;
  std::atomic<bool> stop_{false};
  std::atomic<std::int64_t> executed_{0};
  std::atomic<std::int64_t> steals_{0};

  std::vector<std::thread> workers_;
};

}  // namespace ompc::omp
