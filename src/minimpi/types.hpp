// Core identifiers and constants for the minimpi message-passing substrate.
//
// minimpi reproduces the MPI semantics OMPC depends on (DESIGN.md §2):
// ranks, tags, communicator contexts, wildcard matching and non-overtaking
// delivery within a communicator. Ranks are threads of one process; the
// "wire" is the simulated network in network.hpp.
#pragma once

#include <cstddef>
#include <cstdint>

namespace ompc::mpi {

using Rank = int;
using Tag = int;

/// Matches messages from any source (like MPI_ANY_SOURCE).
inline constexpr Rank kAnySource = -1;
/// Matches messages with any tag (like MPI_ANY_TAG).
inline constexpr Tag kAnyTag = -1;

/// User tags must stay below this bound; the range above is reserved for
/// internal protocols (collectives), mirroring MPI's MPI_TAG_UB contract.
inline constexpr Tag kMaxUserTag = (1 << 29) - 1;

/// Reserved tag space for collective operations (barrier/bcast/gather).
inline constexpr Tag kCollectiveTagBase = 1 << 29;

/// Identifies a communicator; each context is an isolated matching domain.
using ContextId = int;

/// Receive completion information (like MPI_Status).
struct Status {
  Rank source = kAnySource;
  Tag tag = kAnyTag;
  std::size_t count = 0;  ///< Payload size in bytes.
};

}  // namespace ompc::mpi
