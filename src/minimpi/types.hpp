// Core identifiers and constants for the minimpi message-passing substrate.
//
// minimpi reproduces the MPI semantics OMPC depends on (DESIGN.md §2):
// ranks, tags, communicator contexts, wildcard matching and non-overtaking
// delivery within a communicator. Ranks are threads of one process; the
// "wire" is the simulated network in network.hpp.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace ompc::mpi {

using Rank = int;
using Tag = int;

/// Matches messages from any source (like MPI_ANY_SOURCE).
inline constexpr Rank kAnySource = -1;
/// Matches messages with any tag (like MPI_ANY_TAG).
inline constexpr Tag kAnyTag = -1;

/// User tags must stay below this bound; the range above is reserved for
/// internal protocols (collectives), mirroring MPI's MPI_TAG_UB contract.
inline constexpr Tag kMaxUserTag = (1 << 29) - 1;

/// Reserved tag space for collective operations (barrier/bcast/gather).
inline constexpr Tag kCollectiveTagBase = 1 << 29;

/// Identifies a communicator; each context is an isolated matching domain.
using ContextId = int;

/// Receive completion information (like MPI_Status).
struct Status {
  Rank source = kAnySource;
  Tag tag = kAnyTag;
  std::size_t count = 0;  ///< Payload size in bytes.
};

/// Deterministic fault-injection order: kill `rank` once the universe has
/// been running for `at_ns` nanoseconds (see Universe::kill_rank).
struct KillSpec {
  Rank rank = -1;
  std::int64_t at_ns = 0;
};

/// Thrown by blocking operations of a rank that has been killed by fault
/// injection. Ranks are threads, so "dying" means every blocked receive or
/// probe unwinds with this error and the rank's main function returns.
class RankKilledError : public std::runtime_error {
 public:
  explicit RankKilledError(Rank rank)
      : std::runtime_error("rank " + std::to_string(rank) +
                           " was killed by fault injection"),
        rank_(rank) {}

  Rank rank() const noexcept { return rank_; }

 private:
  Rank rank_;
};

}  // namespace ompc::mpi
