// One-sided (RMA) memory windows, in the style of MPI_Win / GASNet's
// extended API.
//
// A window exposes a pre-registered byte range of one rank for remote
// put/get: the origin names (rank, window id, offset) and the universe's
// delivery dispatcher moves the bytes directly — no receive is posted, no
// matching happens, and the target's event handlers are never involved.
// That is what turns the runtime's repeated rendezvous pairs (Exchange,
// buddy replication) into single put operations.
//
// Registration is local (win_create registers the calling rank's memory;
// there is no collective epoch, targets register eagerly — the worker heap
// registers every device block at allocation). Windows of one rank must
// not overlap: a put names exactly one destination region or it is a
// protocol error, so create() rejects duplicates and overlaps up front.
//
// Completion: put/get return a Request that completes when the bytes have
// landed (put: target ack; get: reply copied into the origin buffer).
// flush(target) waits for every pending one-sided operation this rank has
// toward `target`. Payload contracts are identical to isend_payload —
// borrowed/shared payloads are the zero-copy path.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <stdexcept>
#include <string>
#include <utility>

#include "minimpi/payload.hpp"
#include "minimpi/types.hpp"

namespace ompc::mpi {

class Universe;

/// Names one registered region of one rank. Callers pick ids; the worker
/// heap uses the block's device address, which is unique per live block.
using WindowId = std::uint64_t;

/// Default tag for one-sided data: inside the data-tag range so RMA
/// payload copies are visible to the copy accounting like any other
/// data-plane traffic. Node-local windows writes (self-puts) may pass a
/// control tag instead to stay out of the wire-copy books.
inline constexpr Tag kRmaDataTag = kFirstDataTag;

/// Invalid window registration (duplicate id, overlapping region, unknown
/// id on destroy).
class WindowError : public std::runtime_error {
 public:
  explicit WindowError(const std::string& what) : std::runtime_error(what) {}
};

/// The universe-wide registry of exposed regions, keyed by (rank, id).
/// Thread-safe: registration happens on rank threads while the conduit's
/// delivery thread resolves targets concurrently.
class WindowRegistry {
 public:
  /// Registers [base, base+size) of `rank` under `id`. Throws WindowError
  /// on a duplicate id or any overlap with an existing window of `rank`.
  void create(Rank rank, WindowId id, void* base, std::size_t size);

  /// Unregisters; throws WindowError if (rank, id) is unknown.
  void destroy(Rank rank, WindowId id);

  /// Lands a put: copies `payload` into (rank, id) at `offset` while
  /// holding the registry lock, so a concurrent destroy() cannot race the
  /// memcpy — once destroy returns, no in-flight put touches the region
  /// and the owner may free the bytes. Returns false when the window is
  /// unknown or the access is out of bounds (an in-flight put can
  /// legitimately outlive its window, like a payload outliving a cancelled
  /// receive; the caller drops the bytes and still acks).
  bool fill(Rank rank, WindowId id, std::uint64_t offset,
            const Payload& payload) const;

  /// Stages a get: copies `len` bytes out of (rank, id) at `offset` into
  /// `*out` under the registry lock (same exclusion guarantee as fill).
  /// Returns false — leaving `*out` untouched — when the window is unknown
  /// or the access is out of bounds.
  bool read(Rank rank, WindowId id, std::uint64_t offset, std::size_t len,
            Payload* out) const;

  std::size_t count(Rank rank) const;

  /// Whether (rank, id) is currently registered. Pre-resolution check for
  /// persistent puts (Comm::put_init fails fast on an unknown target
  /// instead of silently dropping every cycle's bytes).
  bool exists(Rank rank, WindowId id) const;

 private:
  struct Region {
    std::byte* base = nullptr;
    std::size_t size = 0;
  };
  mutable std::mutex mutex_;
  std::map<std::pair<Rank, WindowId>, Region> windows_;
};

/// RAII handle for a window registered through Comm::win_create: destroys
/// the registration when it goes out of scope. Move-only.
class Window {
 public:
  Window() = default;
  Window(Window&& other) noexcept { *this = std::move(other); }
  Window& operator=(Window&& other) noexcept;
  Window(const Window&) = delete;
  Window& operator=(const Window&) = delete;
  ~Window();

  bool valid() const noexcept { return universe_ != nullptr; }
  WindowId id() const noexcept { return id_; }
  std::size_t size() const noexcept { return size_; }

  /// Unregisters now (no-op when already released/moved-from).
  void release();

 private:
  friend class Comm;
  Window(Universe* universe, Rank rank, WindowId id, std::size_t size)
      : universe_(universe), rank_(rank), id_(id), size_(size) {}

  Universe* universe_ = nullptr;
  Rank rank_ = -1;
  WindowId id_ = 0;
  std::size_t size_ = 0;
};

}  // namespace ompc::mpi
