#include "minimpi/shm_conduit.hpp"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <condition_variable>
#include <cstring>
#include <memory>
#include <mutex>
#include <queue>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#define OMPC_HAVE_SHM 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

#include "common/check.hpp"
#include "common/log.hpp"
#include "common/time.hpp"

namespace ompc::mpi {

#ifdef OMPC_HAVE_SHM

namespace {

/// Bounded per-(src,dst) byte stream. Payloads larger than the capacity
/// chunk through it (the producer stalls for space; the drain thread always
/// makes progress), so the segment size is independent of message size.
constexpr std::size_t kRingCapacity = std::size_t{64} * 1024;

/// On-wire record framing inside a ring: header, then payload bytes.
struct RecordHeader {
  std::int64_t due_ns = 0;  ///< delivery deadline, steady-clock epoch ns
  std::int64_t seq = 0;     ///< submit order (FIFO tie-break on equal due)
  std::int32_t src = 0;
  std::int32_t dst = 0;
  std::int32_t tag = 0;
  std::int32_t context = 0;
  std::int32_t channel = 0;
  std::uint8_t op = 0;
  std::uint8_t pad[3] = {};
  std::uint64_t window = 0;
  std::uint64_t offset = 0;
  std::uint64_t op_id = 0;
  std::uint64_t rma_size = 0;
  std::uint64_t payload_size = 0;
};
static_assert(std::is_trivially_copyable_v<RecordHeader>);

/// One SPSC byte ring living inside the mapped segment. `head` counts bytes
/// ever published by the producer side, `tail` bytes ever consumed; both
/// free-run and index the buffer modulo kRingCapacity, so full/empty are
/// unambiguous. Producers of one ring are serialized by an in-process mutex
/// (ranks are threads and MPI_THREAD_MULTIPLE allows concurrent senders).
struct alignas(64) Ring {
  std::atomic<std::uint64_t> head{0};
  char pad0[64 - sizeof(std::atomic<std::uint64_t>)];
  std::atomic<std::uint64_t> tail{0};
  char pad1[64 - sizeof(std::atomic<std::uint64_t>)];
  std::byte data[kRingCapacity];
};

std::int64_t to_epoch_ns(TimePoint tp) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             tp.time_since_epoch())
      .count();
}

TimePoint from_epoch_ns(std::int64_t ns) {
  return TimePoint(std::chrono::duration_cast<Clock::duration>(
      std::chrono::nanoseconds(ns)));
}

class ShmConduit final : public Conduit {
 public:
  ShmConduit(const NetworkModel& model, int ranks, DeliverFn deliver)
      : pacer_(model),
        instant_(model.is_instant()),
        ranks_(ranks),
        deliver_(std::move(deliver)) {
    OMPC_CHECK(ranks_ >= 1);
    map_segment();
    producer_locks_ =
        std::make_unique<std::mutex[]>(static_cast<std::size_t>(ranks_ * ranks_));
    drain_ = std::thread([this] {
      log::set_thread_label("shm");
      drain_main();
    });
    drain_id_ = drain_.get_id();
  }

  ~ShmConduit() override {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    cv_.notify_all();
    drain_.join();
    ::munmap(segment_, segment_bytes_);
  }

  const char* name() const noexcept override { return "shm"; }

  void submit(Envelope&& env) override {
    submitted_.fetch_add(1, std::memory_order_relaxed);
    const TimePoint due = instant_ ? Clock::now() : pacer_.due_for(env);
    const std::int64_t seq = next_seq_.fetch_add(1, std::memory_order_relaxed);

    // Handler-context loopback: messages originated on the drain thread
    // itself (one-sided acks/replies posted while delivering) must not
    // stage into a ring only the drain thread empties — a full ring would
    // deadlock it against itself. They go straight to the pending queue,
    // the same way AM replies run on the progress engine's loopback path.
    if (std::this_thread::get_id() == drain_id_) {
      std::lock_guard<std::mutex> lock(mutex_);
      pending_.push(PendingRec{due, seq, std::move(env)});
      return;
    }

    RecordHeader h;
    h.due_ns = to_epoch_ns(due);
    h.seq = seq;
    h.src = env.src;
    h.dst = env.dst;
    h.tag = env.tag;
    h.context = env.context;
    h.channel = env.channel;
    h.op = static_cast<std::uint8_t>(env.op);
    h.window = env.window;
    h.offset = env.offset;
    h.op_id = env.op_id;
    h.rma_size = env.rma_size;
    h.payload_size = env.payload.size();

    const std::size_t idx =
        static_cast<std::size_t>(env.src) * static_cast<std::size_t>(ranks_) +
        static_cast<std::size_t>(env.dst);
    Ring& ring = *rings_[idx];
    {
      // One record at a time per ring: header and payload bytes of two
      // concurrent senders must not interleave.
      std::lock_guard<std::mutex> lock(producer_locks_[idx]);
      ring_write(ring, reinterpret_cast<const std::byte*>(&h), sizeof h);
      if (!env.payload.empty()) {
        // Staging copy into the shared ring — counted: the shm data plane
        // genuinely pays it where the in-process conduit moves a pointer.
        note_payload_copy(env.tag, env.payload.size());
        ring_write(ring, env.payload.data(), env.payload.size());
      }
    }
    // Persistent-send completion at ring-credit time: the staging copy is
    // in the ring, so the sender's buffer is reusable without waiting for
    // the drain thread — a re-armed send never re-handshakes. The
    // ring-parsed envelope at the destination carries no completion hook.
    if (env.delivered)
      env.delivered->complete(Status{
          env.src, env.tag, static_cast<std::size_t>(h.payload_size)});
    cv_.notify_one();
  }

  std::int64_t submitted() const noexcept override {
    return submitted_.load(std::memory_order_relaxed);
  }

 private:
  struct PendingRec {
    TimePoint due;
    std::int64_t seq;
    Envelope env;
  };
  struct Later {
    bool operator()(const PendingRec& a, const PendingRec& b) const {
      return a.due != b.due ? a.due > b.due : a.seq > b.seq;
    }
  };

  void map_segment() {
    static std::atomic<int> counter{0};
    const std::string name = "/ompc-shm-" + std::to_string(::getpid()) + "-" +
                             std::to_string(counter.fetch_add(1));
    const int fd =
        ::shm_open(name.c_str(), O_CREAT | O_EXCL | O_RDWR, 0600);
    if (fd < 0)
      throw ConduitError("shm conduit unavailable: shm_open(" + name +
                         ") failed: " + std::strerror(errno));
    segment_bytes_ = sizeof(Ring) * static_cast<std::size_t>(ranks_) *
                     static_cast<std::size_t>(ranks_);
    if (::ftruncate(fd, static_cast<off_t>(segment_bytes_)) != 0) {
      const std::string err = std::strerror(errno);
      ::close(fd);
      ::shm_unlink(name.c_str());
      throw ConduitError("shm conduit unavailable: ftruncate failed: " + err);
    }
    void* mem = ::mmap(nullptr, segment_bytes_, PROT_READ | PROT_WRITE,
                       MAP_SHARED, fd, 0);
    ::close(fd);
    // Unlink immediately: the mapping keeps the segment alive, and no name
    // can leak even if the process dies.
    ::shm_unlink(name.c_str());
    if (mem == MAP_FAILED)
      throw ConduitError(std::string("shm conduit unavailable: mmap failed: ") +
                         std::strerror(errno));
    segment_ = mem;
    rings_.reserve(static_cast<std::size_t>(ranks_ * ranks_));
    for (int i = 0; i < ranks_ * ranks_; ++i)
      rings_.push_back(new (static_cast<std::byte*>(segment_) +
                            sizeof(Ring) * static_cast<std::size_t>(i)) Ring);
  }

  /// Producer side: copies `n` bytes into the ring, wrapping and stalling
  /// for space as needed (the drain thread always frees space).
  static void ring_write(Ring& ring, const std::byte* src, std::size_t n) {
    std::size_t written = 0;
    while (written < n) {
      const std::uint64_t head = ring.head.load(std::memory_order_relaxed);
      const std::uint64_t tail = ring.tail.load(std::memory_order_acquire);
      const std::size_t free = kRingCapacity - static_cast<std::size_t>(head - tail);
      if (free == 0) {
        std::this_thread::yield();
        continue;
      }
      const std::size_t at = static_cast<std::size_t>(head % kRingCapacity);
      const std::size_t run = std::min({n - written, free, kRingCapacity - at});
      std::memcpy(ring.data + at, src + written, run);
      written += run;
      ring.head.store(head + run, std::memory_order_release);
    }
  }

  /// Consumer side: copies `n` bytes out, stalling until the producer has
  /// published them. Only the drain thread calls this.
  void ring_read(Ring& ring, std::byte* dst, std::size_t n) {
    std::size_t read = 0;
    while (read < n) {
      const std::uint64_t tail = ring.tail.load(std::memory_order_relaxed);
      const std::uint64_t head = ring.head.load(std::memory_order_acquire);
      const std::size_t avail = static_cast<std::size_t>(head - tail);
      if (avail == 0) {
        // Mid-record: the producer is actively streaming the rest.
        std::this_thread::yield();
        continue;
      }
      const std::size_t at = static_cast<std::size_t>(tail % kRingCapacity);
      const std::size_t run = std::min({n - read, avail, kRingCapacity - at});
      std::memcpy(dst + read, ring.data + at, run);
      read += run;
      ring.tail.store(tail + run, std::memory_order_release);
    }
  }

  /// Reassembles every complete record currently in `ring` into the pending
  /// queue. Returns true if anything was consumed.
  bool parse_ring(Ring& ring) {
    bool any = false;
    for (;;) {
      const std::uint64_t tail = ring.tail.load(std::memory_order_relaxed);
      const std::uint64_t head = ring.head.load(std::memory_order_acquire);
      if (static_cast<std::size_t>(head - tail) < sizeof(RecordHeader)) break;
      RecordHeader h;
      ring_read(ring, reinterpret_cast<std::byte*>(&h), sizeof h);
      Envelope env;
      env.src = h.src;
      env.dst = h.dst;
      env.tag = h.tag;
      env.context = h.context;
      env.channel = h.channel;
      env.op = static_cast<RmaOp>(h.op);
      env.window = h.window;
      env.offset = h.offset;
      env.op_id = h.op_id;
      env.rma_size = h.rma_size;
      if (h.payload_size != 0) {
        Bytes bytes(h.payload_size);
        ring_read(ring, bytes.data(), h.payload_size);
        // Reassembly copy out of the shared ring — the second counted copy
        // of the shm data plane.
        note_payload_copy(h.tag, h.payload_size);
        env.payload = Payload(std::move(bytes));
      }
      {
        std::lock_guard<std::mutex> lock(mutex_);
        pending_.push(PendingRec{from_epoch_ns(h.due_ns), h.seq,
                                 std::move(env)});
      }
      any = true;
    }
    return any;
  }

  void drain_main() {
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
      // Pull everything the rings hold, then deliver what is due.
      lock.unlock();
      for (Ring* r : rings_) parse_ring(*r);
      lock.lock();
      while (!pending_.empty() && Clock::now() >= pending_.top().due) {
        Envelope env =
            std::move(const_cast<PendingRec&>(pending_.top()).env);
        pending_.pop();
        lock.unlock();
        deliver_(std::move(env));
        lock.lock();
      }
      if (stop_ && pending_.empty() && rings_empty()) return;
      if (!pending_.empty()) {
        cv_.wait_until(lock, pending_.top().due);
      } else {
        // Idle: producers notify on submit; the timeout covers a record
        // whose first bytes land between the ring scan and this wait.
        cv_.wait_for(lock, std::chrono::microseconds(200));
      }
    }
  }

  bool rings_empty() const {
    for (Ring* r : rings_) {
      if (r->head.load(std::memory_order_acquire) !=
          r->tail.load(std::memory_order_acquire))
        return false;
    }
    return true;
  }

  LinkPacer pacer_;
  const bool instant_;
  const int ranks_;
  DeliverFn deliver_;

  void* segment_ = nullptr;
  std::size_t segment_bytes_ = 0;
  std::vector<Ring*> rings_;  ///< views into the mapped segment
  std::unique_ptr<std::mutex[]> producer_locks_;

  std::atomic<std::int64_t> submitted_{0};
  std::atomic<std::int64_t> next_seq_{0};

  std::mutex mutex_;
  std::condition_variable cv_;
  std::priority_queue<PendingRec, std::vector<PendingRec>, Later> pending_;
  bool stop_ = false;

  std::thread::id drain_id_{};
  std::thread drain_;  // started last, joined in dtor
};

}  // namespace

std::unique_ptr<Conduit> make_shm_conduit(const NetworkModel& model,
                                          int ranks,
                                          Conduit::DeliverFn deliver) {
  return std::make_unique<ShmConduit>(model, ranks, std::move(deliver));
}

#else  // !OMPC_HAVE_SHM

std::unique_ptr<Conduit> make_shm_conduit(const NetworkModel&, int,
                                          Conduit::DeliverFn) {
  throw ConduitError(
      "shm conduit unavailable: this platform has no POSIX shared memory "
      "(shm_open); use OMPC_CONDUIT=inprocess");
}

#endif

}  // namespace ompc::mpi
