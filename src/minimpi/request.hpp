// Nonblocking-operation handles (like MPI_Request).
//
// A Request is a shared handle onto the operation's completion state. Send
// requests complete at submission (eager protocol copies the payload);
// receive requests complete when the matching engine fills the buffer.
#pragma once

#include <condition_variable>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "minimpi/types.hpp"

namespace ompc::mpi {

namespace detail {

/// Shared completion state. The matching engine fills `status` and flips
/// `done` under `mutex`; waiters block on `cv`.
struct RequestState {
  std::mutex mutex;
  std::condition_variable cv;
  bool done = false;
  Rank killed_rank = -1;  ///< >= 0: completed by poison, wait() throws
  Status status;

  // Receive-side destination; unused (empty) for send requests.
  std::byte* buffer = nullptr;
  std::size_t capacity = 0;

  // Matching criteria for pending receives (needed for cancellation-free
  // bookkeeping and debug dumps).
  Rank source = kAnySource;
  Tag tag = kAnyTag;
  ContextId context = 0;

  void complete(const Status& st) {
    {
      std::lock_guard<std::mutex> lock(mutex);
      status = st;
      done = true;
    }
    cv.notify_all();
  }

  /// Fault injection: completes the request exceptionally — the owning rank
  /// died, so waiters must unwind rather than block forever.
  void kill(Rank rank) {
    {
      std::lock_guard<std::mutex> lock(mutex);
      if (done) return;  // already matched; the data won a race with death
      killed_rank = rank;
      done = true;
    }
    cv.notify_all();
  }
};

}  // namespace detail

/// Handle to a nonblocking operation. Copyable; all copies refer to the
/// same operation.
class Request {
 public:
  Request() = default;
  explicit Request(std::shared_ptr<detail::RequestState> state)
      : state_(std::move(state)) {}

  bool valid() const noexcept { return state_ != nullptr; }

  /// Blocks until the operation completes; returns its Status. Throws
  /// RankKilledError if the operation's rank was killed while it waited.
  Status wait() {
    std::unique_lock<std::mutex> lock(state_->mutex);
    state_->cv.wait(lock, [&] { return state_->done; });
    if (state_->killed_rank >= 0) throw RankKilledError(state_->killed_rank);
    return state_->status;
  }

  /// Nonblocking completion check; fills `out` when complete.
  bool test(Status* out = nullptr) {
    std::lock_guard<std::mutex> lock(state_->mutex);
    if (!state_->done) return false;
    if (state_->killed_rank >= 0) throw RankKilledError(state_->killed_rank);
    if (out != nullptr) *out = state_->status;
    return true;
  }

  std::shared_ptr<detail::RequestState> state() const { return state_; }

 private:
  std::shared_ptr<detail::RequestState> state_;
};

/// Waits for every request in `reqs` (like MPI_Waitall).
inline void wait_all(std::span<Request> reqs) {
  for (auto& r : reqs) r.wait();
}
inline void wait_all(std::vector<Request>& reqs) {
  wait_all(std::span<Request>(reqs));
}

}  // namespace ompc::mpi
