// Nonblocking-operation handles (like MPI_Request).
//
// A Request is a shared handle onto the operation's completion state. Send
// requests complete at submission (eager protocol copies the payload);
// receive requests complete when the matching engine fills the buffer.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <stdexcept>
#include <utility>
#include <vector>

#include "minimpi/types.hpp"

namespace ompc::mpi {

namespace detail {

/// Shared completion state. The matching engine fills `status` and flips
/// `done` under `mutex`; waiters block on `cv`.
struct RequestState {
  std::mutex mutex;
  std::condition_variable cv;
  bool done = false;
  Rank killed_rank = -1;  ///< >= 0: completed by poison, wait() throws
  Status status;

  // Receive-side destination; unused (empty) for send requests.
  std::byte* buffer = nullptr;
  std::size_t capacity = 0;

  // Matching criteria for pending receives (needed for cancellation-free
  // bookkeeping and debug dumps).
  Rank source = kAnySource;
  Tag tag = kAnyTag;
  ContextId context = 0;

  /// Re-armable slot (persistent request): the same state object cycles
  /// through start()/wait() instead of being allocated per operation, and
  /// the dead-rank drop path fails it by source (see
  /// Mailbox::fail_persistent_from) so an armed receive from a corpse never
  /// lingers as a zombie pre-posted slot.
  bool persistent = false;

  void complete(const Status& st) {
    {
      std::lock_guard<std::mutex> lock(mutex);
      status = st;
      done = true;
    }
    cv.notify_all();
  }

  /// Fault injection: completes the request exceptionally — the owning rank
  /// died, so waiters must unwind rather than block forever.
  void kill(Rank rank) {
    {
      std::lock_guard<std::mutex> lock(mutex);
      if (done) return;  // already matched; the data won a race with death
      killed_rank = rank;
      done = true;
    }
    cv.notify_all();
  }
};

}  // namespace detail

/// Handle to a nonblocking operation. Copyable; all copies refer to the
/// same operation.
class Request {
 public:
  Request() = default;
  explicit Request(std::shared_ptr<detail::RequestState> state)
      : state_(std::move(state)) {}

  bool valid() const noexcept { return state_ != nullptr; }

  /// Blocks until the operation completes; returns its Status. Throws
  /// RankKilledError if the operation's rank was killed while it waited.
  Status wait() {
    std::unique_lock<std::mutex> lock(state_->mutex);
    state_->cv.wait(lock, [&] { return state_->done; });
    if (state_->killed_rank >= 0) throw RankKilledError(state_->killed_rank);
    return state_->status;
  }

  /// Nonblocking completion check; fills `out` when complete.
  bool test(Status* out = nullptr) {
    std::lock_guard<std::mutex> lock(state_->mutex);
    if (!state_->done) return false;
    if (state_->killed_rank >= 0) throw RankKilledError(state_->killed_rank);
    if (out != nullptr) *out = state_->status;
    return true;
  }

  std::shared_ptr<detail::RequestState> state() const { return state_; }

 private:
  std::shared_ptr<detail::RequestState> state_;
};

/// A re-armable nonblocking operation (like MPI_Send_init / MPI_Recv_init /
/// a persistent put). Buffer, peer, tag and shape are fixed at creation by
/// Comm::send_init/recv_init/put_init; each start()/wait() cycle re-uses the
/// same completion slot — no mailbox-slot allocation, no window
/// re-resolution. Move-only; destroying a still-armed request disarms it
/// (removes the pre-posted slot) so it can never outlive its buffer.
///
/// Kills are sticky: once a cycle failed with RankKilledError, every later
/// start() throws the same error — recreate the channel after recovery.
class PersistentRequest {
 public:
  PersistentRequest() = default;
  PersistentRequest(std::shared_ptr<detail::RequestState> state,
                    std::function<void()> arm,
                    std::function<void()> disarm = {})
      : state_(std::move(state)),
        arm_(std::move(arm)),
        disarm_(std::move(disarm)) {}

  PersistentRequest(PersistentRequest&& other) noexcept { swap(other); }
  PersistentRequest& operator=(PersistentRequest&& other) noexcept {
    if (this != &other) {
      release();
      swap(other);
    }
    return *this;
  }
  PersistentRequest(const PersistentRequest&) = delete;
  PersistentRequest& operator=(const PersistentRequest&) = delete;
  ~PersistentRequest() { release(); }

  bool valid() const noexcept { return state_ != nullptr; }
  bool armed() const noexcept { return armed_; }
  /// Completed start()/wait() cycles — the channel's reuse count.
  std::int64_t cycles() const noexcept { return cycles_; }

  /// Arms the operation for one cycle. A completed-but-unwaited cycle is
  /// reclaimed implicitly; starting while the previous cycle is genuinely
  /// in flight is a caller bug (std::logic_error). Throws RankKilledError
  /// when a previous cycle was killed or the peer is already dead.
  void start() {
    if (state_ == nullptr)
      throw std::logic_error("start() on an empty PersistentRequest");
    {
      std::lock_guard<std::mutex> lock(state_->mutex);
      if (state_->killed_rank >= 0) {
        armed_ = false;
        throw RankKilledError(state_->killed_rank);
      }
      if (armed_) {
        if (!state_->done)
          throw std::logic_error(
              "PersistentRequest::start() while the previous cycle is still "
              "in flight (missing wait())");
        ++cycles_;  // implicit reclaim of a completed, unwaited cycle
      }
      armed_ = false;
      state_->done = false;
      state_->status = Status{};
    }
    arm_();  // may throw (poisoned mailbox, dead peer): stays disarmed
    armed_ = true;
  }

  /// Blocks for the armed cycle and returns the slot to the idle
  /// (re-armable) state. Throws RankKilledError if a rank died under it.
  Status wait() {
    if (!armed_)
      throw std::logic_error("PersistentRequest::wait() without start()");
    try {
      const Status st = Request(state_).wait();
      armed_ = false;
      ++cycles_;
      return st;
    } catch (...) {
      armed_ = false;  // the slot was killed; nothing left to disarm
      throw;
    }
  }

  /// Nonblocking poll; reclaims the cycle when complete.
  bool test(Status* out = nullptr) {
    if (!armed_)
      throw std::logic_error("PersistentRequest::test() without start()");
    try {
      if (!Request(state_).test(out)) return false;
    } catch (...) {
      armed_ = false;
      throw;
    }
    armed_ = false;
    ++cycles_;
    return true;
  }

  std::shared_ptr<detail::RequestState> state() const { return state_; }

 private:
  void swap(PersistentRequest& o) noexcept {
    state_.swap(o.state_);
    arm_.swap(o.arm_);
    disarm_.swap(o.disarm_);
    std::swap(armed_, o.armed_);
    std::swap(cycles_, o.cycles_);
  }
  void release() noexcept {
    if (armed_ && disarm_) {
      try {
        disarm_();
      } catch (...) {  // disarm during teardown races a kill: best effort
      }
    }
    armed_ = false;
  }

  std::shared_ptr<detail::RequestState> state_;
  std::function<void()> arm_;
  std::function<void()> disarm_;
  bool armed_ = false;
  std::int64_t cycles_ = 0;
};

/// Waits for every request in `reqs` (like MPI_Waitall).
inline void wait_all(std::span<Request> reqs) {
  for (auto& r : reqs) r.wait();
}
inline void wait_all(std::vector<Request>& reqs) {
  wait_all(std::span<Request>(reqs));
}

}  // namespace ompc::mpi
