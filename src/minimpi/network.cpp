#include "minimpi/network.hpp"

#include "common/log.hpp"

namespace ompc::mpi {

DeliveryEngine::DeliveryEngine(NetworkModel model,
                               std::function<void(Envelope&&)> deliver)
    : pacer_(model), deliver_(std::move(deliver)) {
  thread_ = std::thread([this] {
    log::set_thread_label("net");
    engine_main();
  });
}

DeliveryEngine::~DeliveryEngine() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
}

void DeliveryEngine::submit(Envelope&& env) {
  const TimePoint due = pacer_.due_for(env);
  std::lock_guard<std::mutex> lock(mutex_);
  queue_.push(Pending{due, next_seq_++, std::move(env)});
  ++submitted_;
  cv_.notify_one();
}

std::int64_t DeliveryEngine::submitted() const noexcept {
  std::lock_guard<std::mutex> lock(mutex_);
  return submitted_;
}

void DeliveryEngine::engine_main() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    if (queue_.empty()) {
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      continue;
    }
    const TimePoint due = queue_.top().due;
    if (Clock::now() < due) {
      // Woken early either by a new (possibly earlier) message or by stop.
      cv_.wait_until(lock, due);
      if (stop_ && queue_.empty()) return;
      continue;
    }
    Envelope env = std::move(const_cast<Pending&>(queue_.top()).env);
    queue_.pop();
    lock.unlock();
    deliver_(std::move(env));
    lock.lock();
  }
}

}  // namespace ompc::mpi
