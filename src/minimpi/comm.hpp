// Communicator view: the per-rank handle used for all point-to-point and
// collective operations (like an MPI_Comm bound to the calling rank).
//
// All byte-oriented (untyped) like MPI_BYTE traffic; structured payloads go
// through common/serialize.hpp. Fully thread-safe for point-to-point use
// (MPI_THREAD_MULTIPLE); collectives must be called by one thread per rank
// at a time, as in MPI.
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "common/serialize.hpp"
#include "minimpi/payload.hpp"
#include "minimpi/request.hpp"
#include "minimpi/types.hpp"

namespace ompc::mpi {

class Universe;

class Comm {
 public:
  Comm() = default;
  Comm(Universe* universe, ContextId context, Rank rank)
      : universe_(universe), context_(context), rank_(rank) {}

  Rank rank() const noexcept { return rank_; }
  int size() const noexcept;
  ContextId context() const noexcept { return context_; }
  Universe& universe() const noexcept { return *universe_; }

  /// A new communicator over the same ranks with a fresh context
  /// (like MPI_Comm_dup): traffic on it can never match traffic here.
  Comm dup() const;

  // --- point to point ------------------------------------------------

  void send(const void* buf, std::size_t n, Rank dst, Tag tag) const;
  Request isend(const void* buf, std::size_t n, Rank dst, Tag tag) const;
  /// Zero-copy variant: the payload is moved onto the wire.
  Request isend_bytes(Bytes payload, Rank dst, Tag tag) const;
  /// Fully general variant: owned, borrowed or shared payloads (see
  /// payload.hpp for the lifetime contracts of the zero-copy modes).
  Request isend_payload(Payload payload, Rank dst, Tag tag) const;

  Status recv(void* buf, std::size_t capacity, Rank src, Tag tag) const;
  Request irecv(void* buf, std::size_t capacity, Rank src, Tag tag) const;

  /// Receives a message of unknown size: probes for its extent, then
  /// receives exactly that message (safe because probe+recv use the exact
  /// source/tag from the probed status).
  Bytes recv_bytes(Rank src, Tag tag, Status* status_out = nullptr) const;

  std::optional<Status> iprobe(Rank src, Tag tag) const;
  Status probe(Rank src, Tag tag) const;

  /// Cancels a posted receive of THIS rank (no-op once matched); see
  /// Mailbox::cancel.
  void cancel(const Request& req) const;

  // --- collectives (reserved tag space; one at a time per comm) -------

  void barrier() const;
  void bcast(void* buf, std::size_t n, Rank root) const;
  /// Gathers per-rank blobs at `root`; result[r] is rank r's blob (empty
  /// vector on non-root ranks).
  std::vector<Bytes> gather_bytes(std::span<const std::byte> mine,
                                  Rank root) const;
  std::uint64_t allreduce_sum(std::uint64_t value) const;

 private:
  Universe* universe_ = nullptr;
  ContextId context_ = 0;
  Rank rank_ = 0;
};

}  // namespace ompc::mpi
