// Communicator view: the per-rank handle used for all point-to-point and
// collective operations (like an MPI_Comm bound to the calling rank).
//
// All byte-oriented (untyped) like MPI_BYTE traffic; structured payloads go
// through common/serialize.hpp. Fully thread-safe for point-to-point use
// (MPI_THREAD_MULTIPLE); collectives must be called by one thread per rank
// at a time, as in MPI.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>

#include "common/serialize.hpp"
#include "minimpi/payload.hpp"
#include "minimpi/request.hpp"
#include "minimpi/types.hpp"
#include "minimpi/window.hpp"

namespace ompc::mpi {

class Universe;

class Comm {
 public:
  Comm() = default;
  Comm(Universe* universe, ContextId context, Rank rank)
      : universe_(universe), context_(context), rank_(rank) {}

  Rank rank() const noexcept { return rank_; }
  int size() const noexcept;
  ContextId context() const noexcept { return context_; }
  Universe& universe() const noexcept { return *universe_; }

  /// A new communicator over the same ranks with a fresh context
  /// (like MPI_Comm_dup): traffic on it can never match traffic here.
  Comm dup() const;

  // --- point to point ------------------------------------------------
  //
  // isend_payload is THE send primitive: everything that leaves a rank is a
  // Payload (owned, borrowed or shared — see payload.hpp for the lifetime
  // contracts). isend and isend_bytes are thin convenience wrappers over
  // it: isend stages a copy (counted on the data plane), isend_bytes moves
  // freshly serialized bytes onto the wire copy-free.

  void send(const void* buf, std::size_t n, Rank dst, Tag tag) const;
  /// Wrapper: copies [buf, buf+n) into an owned payload. Prefer
  /// isend_bytes/isend_payload when the bytes already live in a movable or
  /// pinnable container — the staging copy here is pure overhead.
  Request isend(const void* buf, std::size_t n, Rank dst, Tag tag) const;
  /// Wrapper: moves the bytes onto the wire — no copy. The natural fit for
  /// serialized control messages (ArchiveWriter::take() results).
  Request isend_bytes(Bytes payload, Rank dst, Tag tag) const;
  /// The primitive: owned, borrowed or shared payloads.
  Request isend_payload(Payload payload, Rank dst, Tag tag) const;

  Status recv(void* buf, std::size_t capacity, Rank src, Tag tag) const;
  Request irecv(void* buf, std::size_t capacity, Rank src, Tag tag) const;

  /// Receives a message of unknown size: probes for its extent, then
  /// receives exactly that message (safe because probe+recv use the exact
  /// source/tag from the probed status).
  Bytes recv_bytes(Rank src, Tag tag, Status* status_out = nullptr) const;

  std::optional<Status> iprobe(Rank src, Tag tag) const;
  Status probe(Rank src, Tag tag) const;

  /// Cancels a posted receive of THIS rank (no-op once matched); see
  /// Mailbox::cancel.
  void cancel(const Request& req) const;

  // --- persistent channels (MPI_Send_init / MPI_Recv_init style) --------
  //
  // Fixed (peer, tag, buffer, shape) operations that iterative programs
  // re-issue wave after wave: create once, then start()/wait() cycles
  // re-use the pre-registered slot — no mailbox-slot allocation, no window
  // re-resolution, no re-handshake. See PersistentRequest (request.hpp)
  // for the lifecycle contract (implicit reclaim, sticky kills, destructor
  // disarm).

  /// Persistent send of [buf, buf+n) to (dst, tag). Each cycle borrows the
  /// buffer zero-copy; wait() returns once the transport has staged or
  /// delivered the bytes, i.e. the buffer is reusable.
  PersistentRequest send_init(const void* buf, std::size_t n, Rank dst,
                              Tag tag) const;

  /// Persistent receive into [buf, buf+capacity) from (src, tag). The
  /// shape is fixed, so wildcards are rejected (the point of the channel is
  /// a pre-matched slot). If `src` dies while a cycle is armed — or before
  /// the next start() — the cycle fails with RankKilledError and the
  /// channel stays dead (sticky).
  PersistentRequest recv_init(void* buf, std::size_t capacity, Rank src,
                              Tag tag) const;

  /// Persistent one-sided put of [src, src+n) into `target`'s pre-resolved
  /// (window, offset). Fails fast with WindowError when the window is
  /// unknown at creation time. `keepalive` (optional) pins the source
  /// block across cycles (Payload::share); without it each cycle borrows
  /// the memory (caller keeps it valid until wait()).
  PersistentRequest put_init(Rank target, WindowId window,
                             std::uint64_t offset, const void* src,
                             std::size_t n,
                             std::shared_ptr<const void> keepalive = nullptr,
                             Tag tag = kRmaDataTag) const;

  // --- one-sided (RMA) -------------------------------------------------
  //
  // GASNet-extended-style put/get against pre-registered windows (see
  // window.hpp). No receive is posted at the target and no event handler
  // runs there: the universe's delivery dispatcher moves the bytes. The
  // payload contracts are exactly isend_payload's.

  /// Registers [base, base+size) of THIS rank under `id` for remote
  /// put/get. Returns the RAII registration handle. Throws WindowError on
  /// duplicate ids or overlap with an existing window of this rank.
  Window win_create(WindowId id, void* base, std::size_t size) const;

  /// Writes `payload` into `target`'s window at `offset`. The request
  /// completes when the bytes have landed (target ack); it throws
  /// RankKilledError from wait() if either end dies first. `tag` only
  /// feeds the data-plane copy accounting: the default marks the transfer
  /// as wire data, node-local self-puts may pass a control tag (< 16).
  Request put(Rank target, WindowId window, std::uint64_t offset,
              Payload payload, Tag tag = kRmaDataTag) const;

  /// Reads `n` bytes from `target`'s window at `offset` into `dst`. The
  /// request completes once the reply landed; Status.count carries the
  /// bytes the target actually exposed (short when the window vanished).
  Request get(Rank target, WindowId window, std::uint64_t offset, void* dst,
              std::size_t n, Tag tag = kRmaDataTag) const;

  /// Waits for every pending put/get this rank has toward `target`
  /// (kAnySource: toward anyone) — like MPI_Win_flush.
  void flush(Rank target = kAnySource) const;

  // --- collectives (reserved tag space; one at a time per comm) -------

  void barrier() const;
  void bcast(void* buf, std::size_t n, Rank root) const;
  /// Gathers per-rank blobs at `root`; result[r] is rank r's blob (empty
  /// vector on non-root ranks).
  std::vector<Bytes> gather_bytes(std::span<const std::byte> mine,
                                  Rank root) const;
  std::uint64_t allreduce_sum(std::uint64_t value) const;

 private:
  Universe* universe_ = nullptr;
  ContextId context_ = 0;
  Rank rank_ = 0;
};

}  // namespace ompc::mpi
