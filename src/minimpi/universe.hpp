// The Universe owns the simulated cluster: one mailbox per rank, the
// transport conduit, the one-sided window registry and the communicator
// context allocator. Universe::run spawns one thread per rank (DESIGN.md
// decision 1: ranks are threads whose address spaces are separated by
// discipline — all inter-rank data flows through messages).
//
// Transport split (GASNet-style): the universe is the transport-independent
// core — liveness, matching, counting, one-sided op completion — while the
// Conduit behind post() owns staging, pacing and the delivery thread. See
// conduit.hpp for the available transports and the OMPC_CONDUIT override.
#pragma once

#include <atomic>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "minimpi/comm.hpp"
#include "minimpi/conduit.hpp"
#include "minimpi/mailbox.hpp"
#include "minimpi/window.hpp"

namespace ompc::mpi {

struct UniverseOptions {
  int ranks = 2;
  NetworkModel network{};
  /// Number of pre-created communicator contexts (the paper's event system
  /// round-robins events over these; see Comm selection in src/core).
  int comms = 1;
  /// Fault injection: ranks to kill at fixed offsets from run() start. The
  /// same effect as calling kill_rank() for each entry once run() begins.
  std::vector<KillSpec> kills;
  /// Transport selection; the OMPC_CONDUIT environment variable overrides
  /// it process-wide (validated at construction, see conduit.hpp).
  ConduitKind conduit = ConduitKind::InProcess;
};

/// Per-rank execution context handed to the rank main function.
class RankContext {
 public:
  RankContext(Universe& universe, Rank rank)
      : universe_(&universe), rank_(rank) {}

  Rank rank() const noexcept { return rank_; }
  int num_ranks() const noexcept;
  Universe& universe() const noexcept { return *universe_; }

  /// The world communicator (context 0).
  Comm world() const;
  /// One of the pre-created communicators, index in [0, options().comms).
  Comm comm(int index) const;

 private:
  Universe* universe_;
  Rank rank_;
};

class Universe {
 public:
  explicit Universe(const UniverseOptions& opts);
  ~Universe();

  Universe(const Universe&) = delete;
  Universe& operator=(const Universe&) = delete;

  /// Runs `rank_main` on every rank (one thread each), joins them all, and
  /// rethrows the first rank exception (by rank order) if any.
  void run(const std::function<void(RankContext&)>& rank_main);

  /// Convenience: construct + run.
  static void launch(const UniverseOptions& opts,
                     const std::function<void(RankContext&)>& rank_main);

  const UniverseOptions& options() const noexcept { return opts_; }
  int num_ranks() const noexcept { return opts_.ranks; }

  /// The transport actually in use (after the OMPC_CONDUIT override).
  ConduitKind conduit_kind() const noexcept { return conduit_kind_; }
  const char* conduit_name() const noexcept { return conduit_->name(); }

  /// Communicator view for `rank` on pre-created context `index`.
  Comm comm(Rank rank, int index = 0);

  /// Allocates a fresh communicator context (Comm::dup).
  ContextId allocate_context();

  // --- fault injection (paper §5: failures must be testable) ------------

  /// Schedules rank `r` to die `at_ns` nanoseconds after run() starts (or
  /// immediately, if run() is already past that point). Death poisons the
  /// rank's mailbox — its blocked receives throw RankKilledError so the
  /// rank thread unwinds — fails its pending one-sided operations, and
  /// silently drops all its future traffic.
  void kill_rank(Rank r, std::int64_t at_ns);

  /// Whether `r` has been killed by fault injection.
  bool is_dead(Rank r) const {
    return dead_[static_cast<std::size_t>(r)].load(std::memory_order_acquire);
  }

  /// Total messages put on the wire (two-sided, one-sided and acks alike).
  std::int64_t messages_sent() const noexcept {
    return messages_sent_.load(std::memory_order_relaxed);
  }

  // --- internal transport (used by Comm) -------------------------------
  void post(Envelope&& env);
  Mailbox& mailbox(Rank rank);
  WindowRegistry& windows() noexcept { return windows_; }

  /// Registers a pending one-sided op and posts its envelope. For gets,
  /// `get_dst`/`get_capacity` describe the origin's landing buffer. The
  /// returned request completes when the bytes have landed (put: ack from
  /// the target; get: reply copied into the buffer); it completes
  /// exceptionally (RankKilledError) when origin or target dies first.
  Request rma_start(Envelope&& env, std::byte* get_dst = nullptr,
                    std::size_t get_capacity = 0);

  /// Persistent one-sided re-arm: registers `state` (a pre-existing,
  /// re-armed slot) as the pending op for `env` and posts it — rma_start
  /// without the state allocation. The slot completes exactly like a
  /// transient put/get (ack/reply, or kill when a rank dies).
  void rma_restart(Envelope&& env,
                   const std::shared_ptr<detail::RequestState>& state);

  /// Waits for every pending one-sided op of `origin` toward `target`
  /// (kAnySource: toward anyone). Throws RankKilledError like wait().
  void rma_flush(Rank origin, Rank target);

 private:
  /// Conduit delivery callback: two-sided traffic goes to the mailbox,
  /// one-sided ops are executed here (window write / read + ack).
  void deliver_envelope(Envelope&& env);
  void rma_complete(Envelope&& env);  ///< PutAck / GetReply at the origin
  void rma_fail(std::uint64_t op_id, Rank dead);
  void fail_rma_ops_of(Rank r);

  void execute_kill(Rank r);
  void reaper_main();

  UniverseOptions opts_;
  ConduitKind conduit_kind_ = ConduitKind::InProcess;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  std::atomic<ContextId> next_context_;
  std::atomic<std::int64_t> messages_sent_{0};

  // One-sided state: exposed regions plus the origin-side table of
  // operations whose completion (ack/reply) is still in flight.
  WindowRegistry windows_;
  struct PendingRma {
    Rank origin = -1;
    Rank target = -1;
    std::shared_ptr<detail::RequestState> state;
  };
  std::mutex rma_mutex_;
  std::unordered_map<std::uint64_t, PendingRma> pending_rma_;
  std::atomic<std::uint64_t> next_op_id_{1};

  // Fault injection: pending kills ordered by deadline, executed by the
  // reaper thread while run() is active.
  std::unique_ptr<std::atomic<bool>[]> dead_;
  std::mutex kill_mutex_;
  std::condition_variable kill_cv_;
  std::vector<KillSpec> pending_kills_;  ///< at_ns relative to run() start
  TimePoint run_start_{};
  bool running_ = false;
  bool reaper_stop_ = false;
  std::thread reaper_;

  std::unique_ptr<Conduit> conduit_;  // last: drains before members vanish
};

}  // namespace ompc::mpi
