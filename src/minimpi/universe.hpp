// The Universe owns the simulated cluster: one mailbox per rank, the
// delivery engine, and the communicator context allocator. Universe::run
// spawns one thread per rank (DESIGN.md decision 1: ranks are threads whose
// address spaces are separated by discipline — all inter-rank data flows
// through messages).
#pragma once

#include <atomic>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "minimpi/comm.hpp"
#include "minimpi/mailbox.hpp"
#include "minimpi/network.hpp"

namespace ompc::mpi {

struct UniverseOptions {
  int ranks = 2;
  NetworkModel network{};
  /// Number of pre-created communicator contexts (the paper's event system
  /// round-robins events over these; see Comm selection in src/core).
  int comms = 1;
  /// Fault injection: ranks to kill at fixed offsets from run() start. The
  /// same effect as calling kill_rank() for each entry once run() begins.
  std::vector<KillSpec> kills;
};

/// Per-rank execution context handed to the rank main function.
class RankContext {
 public:
  RankContext(Universe& universe, Rank rank)
      : universe_(&universe), rank_(rank) {}

  Rank rank() const noexcept { return rank_; }
  int num_ranks() const noexcept;
  Universe& universe() const noexcept { return *universe_; }

  /// The world communicator (context 0).
  Comm world() const;
  /// One of the pre-created communicators, index in [0, options().comms).
  Comm comm(int index) const;

 private:
  Universe* universe_;
  Rank rank_;
};

class Universe {
 public:
  explicit Universe(const UniverseOptions& opts);
  ~Universe();

  Universe(const Universe&) = delete;
  Universe& operator=(const Universe&) = delete;

  /// Runs `rank_main` on every rank (one thread each), joins them all, and
  /// rethrows the first rank exception (by rank order) if any.
  void run(const std::function<void(RankContext&)>& rank_main);

  /// Convenience: construct + run.
  static void launch(const UniverseOptions& opts,
                     const std::function<void(RankContext&)>& rank_main);

  const UniverseOptions& options() const noexcept { return opts_; }
  int num_ranks() const noexcept { return opts_.ranks; }

  /// Communicator view for `rank` on pre-created context `index`.
  Comm comm(Rank rank, int index = 0);

  /// Allocates a fresh communicator context (Comm::dup).
  ContextId allocate_context();

  // --- fault injection (paper §5: failures must be testable) ------------

  /// Schedules rank `r` to die `at_ns` nanoseconds after run() starts (or
  /// immediately, if run() is already past that point). Death poisons the
  /// rank's mailbox — its blocked receives throw RankKilledError so the
  /// rank thread unwinds — and silently drops all its future traffic.
  void kill_rank(Rank r, std::int64_t at_ns);

  /// Whether `r` has been killed by fault injection.
  bool is_dead(Rank r) const {
    return dead_[static_cast<std::size_t>(r)].load(std::memory_order_acquire);
  }

  /// Total messages put on the wire (instant + delayed).
  std::int64_t messages_sent() const noexcept {
    return messages_sent_.load(std::memory_order_relaxed);
  }

  // --- internal transport (used by Comm) -------------------------------
  void post(Envelope&& env);
  Mailbox& mailbox(Rank rank);

 private:
  void execute_kill(Rank r);
  void reaper_main();

  UniverseOptions opts_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  std::unique_ptr<DeliveryEngine> engine_;  ///< Null for an instant network.
  std::atomic<ContextId> next_context_;
  std::atomic<std::int64_t> messages_sent_{0};

  // Fault injection: pending kills ordered by deadline, executed by the
  // reaper thread while run() is active.
  std::unique_ptr<std::atomic<bool>[]> dead_;
  std::mutex kill_mutex_;
  std::condition_variable kill_cv_;
  std::vector<KillSpec> pending_kills_;  ///< at_ns relative to run() start
  TimePoint run_start_{};
  bool running_ = false;
  bool reaper_stop_ = false;
  std::thread reaper_;
};

}  // namespace ompc::mpi
