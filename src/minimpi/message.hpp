// Wire representation of one point-to-point message.
#pragma once

#include <cstdint>
#include <memory>

#include "common/serialize.hpp"
#include "minimpi/payload.hpp"
#include "minimpi/request.hpp"
#include "minimpi/types.hpp"

namespace ompc::mpi {

/// One-sided operation carried by an envelope. `None` is ordinary two-sided
/// traffic that flows into the destination's mailbox; the other codes are
/// the extended (RMA) protocol and are consumed by the universe's delivery
/// dispatcher — they never enter the matching engine.
enum class RmaOp : std::uint8_t {
  None = 0,  ///< two-sided message (mailbox matching)
  Put,       ///< write payload into (dst, window) at offset
  PutAck,    ///< target -> origin: the put's bytes have landed
  Get,       ///< ask dst to send `rma_size` bytes of (window, offset)
  GetReply,  ///< target -> origin: the requested bytes
};

/// A message in flight: envelope metadata plus its payload. Owned payloads
/// give buffered-send semantics (sender's buffer immediately reusable);
/// borrowed/shared payloads are the zero-copy data plane — see payload.hpp
/// for the lifetime contracts.
struct Envelope {
  Rank src = 0;
  Rank dst = 0;
  Tag tag = 0;
  ContextId context = 0;
  int channel = 0;      ///< Link channel (context striped over VCIs).
  Payload payload;

  // One-sided (RMA) extension; meaningful only when op != RmaOp::None.
  RmaOp op = RmaOp::None;
  std::uint64_t window = 0;    ///< target window id (Put/Get)
  std::uint64_t offset = 0;    ///< byte offset into the window (Put/Get)
  std::uint64_t op_id = 0;     ///< origin's pending-operation key
  std::uint64_t rma_size = 0;  ///< requested byte count (Get)

  /// Persistent-send completion hook (never serialized; local to the
  /// sending process). When set, the transport completes this slot once the
  /// sender's buffer is reusable: the shm conduit after the ring staging
  /// copy, the in-process conduit at mailbox delivery, and the dead-rank
  /// drop path immediately (matching transient isend semantics).
  std::shared_ptr<detail::RequestState> delivered;
};

}  // namespace ompc::mpi
