// Wire representation of one point-to-point message.
#pragma once

#include <cstdint>

#include "common/serialize.hpp"
#include "minimpi/payload.hpp"
#include "minimpi/types.hpp"

namespace ompc::mpi {

/// A message in flight: envelope metadata plus its payload. Owned payloads
/// give buffered-send semantics (sender's buffer immediately reusable);
/// borrowed/shared payloads are the zero-copy data plane — see payload.hpp
/// for the lifetime contracts.
struct Envelope {
  Rank src = 0;
  Rank dst = 0;
  Tag tag = 0;
  ContextId context = 0;
  int channel = 0;      ///< Link channel (context striped over VCIs).
  Payload payload;
};

}  // namespace ompc::mpi
