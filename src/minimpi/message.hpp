// Wire representation of one point-to-point message.
#pragma once

#include <cstdint>

#include "common/serialize.hpp"
#include "minimpi/types.hpp"

namespace ompc::mpi {

/// A message in flight: envelope metadata plus an owned payload copy.
/// Payloads are copied on send (eager protocol) so the sender's buffer is
/// immediately reusable, matching buffered-send semantics.
struct Envelope {
  Rank src = 0;
  Rank dst = 0;
  Tag tag = 0;
  ContextId context = 0;
  int channel = 0;      ///< Link channel (context striped over VCIs).
  Bytes payload;
};

}  // namespace ompc::mpi
