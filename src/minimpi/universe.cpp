#include "minimpi/universe.hpp"

#include <algorithm>
#include <cstring>
#include <exception>
#include <string>
#include <thread>

#include "common/check.hpp"
#include "common/log.hpp"

namespace ompc::mpi {

int RankContext::num_ranks() const noexcept { return universe_->num_ranks(); }

Comm RankContext::world() const { return universe_->comm(rank_, 0); }

Comm RankContext::comm(int index) const { return universe_->comm(rank_, index); }

Universe::Universe(const UniverseOptions& opts)
    : opts_(opts), next_context_(opts.comms) {
  OMPC_CHECK_MSG(opts_.ranks >= 1, "universe needs at least one rank");
  OMPC_CHECK_MSG(opts_.comms >= 1, "universe needs at least one communicator");
  OMPC_CHECK_MSG(opts_.network.channels >= 1, "network needs >= 1 channel");
  mailboxes_.reserve(static_cast<std::size_t>(opts_.ranks));
  for (int r = 0; r < opts_.ranks; ++r)
    mailboxes_.push_back(std::make_unique<Mailbox>());
  dead_ = std::make_unique<std::atomic<bool>[]>(
      static_cast<std::size_t>(std::max(1, opts_.ranks)));
  for (int r = 0; r < opts_.ranks; ++r) dead_[static_cast<std::size_t>(r)] = false;
  // Transport selection is validated here, construction time, so an unknown
  // OMPC_CONDUIT value or an unavailable transport fails loudly before any
  // rank runs (both throw ConduitError with an actionable message).
  conduit_kind_ = resolve_conduit_kind(opts_.conduit);
  conduit_ = make_conduit(
      conduit_kind_, opts_.network, opts_.ranks,
      [this](Envelope&& env) { deliver_envelope(std::move(env)); });
}

Universe::~Universe() = default;

void Universe::execute_kill(Rank r) {
  OMPC_CHECK(r >= 0 && r < opts_.ranks);
  bool expected = false;
  if (!dead_[static_cast<std::size_t>(r)].compare_exchange_strong(expected,
                                                                  true))
    return;
  OMPC_LOG_WARN("fault injection: killing rank " << r);
  mailbox(r).poison(r);
  // One-sided ops are not posted receives, so poisoning cannot reach them:
  // fail every pending op that originates from or targets the corpse, or
  // their waiters would block forever.
  fail_rma_ops_of(r);
  // Pre-posted persistent receives FROM the corpse on every other rank must
  // fail like cancelled receives — their source is fixed, so no future
  // message can ever match them (the dead-rank drop path swallows the
  // sender's traffic). Leaving them armed would be a zombie slot.
  for (int other = 0; other < opts_.ranks; ++other)
    if (other != r) mailbox(other).fail_persistent_from(r);
}

void Universe::kill_rank(Rank r, std::int64_t at_ns) {
  std::lock_guard<std::mutex> lock(kill_mutex_);
  pending_kills_.push_back(KillSpec{r, at_ns});
  kill_cv_.notify_all();
}

void Universe::reaper_main() {
  std::unique_lock<std::mutex> lock(kill_mutex_);
  for (;;) {
    if (reaper_stop_) return;
    // Fire everything that is due; find the next deadline.
    const std::int64_t elapsed =
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             run_start_)
            .count();
    std::int64_t next_due = -1;
    for (auto it = pending_kills_.begin(); it != pending_kills_.end();) {
      if (it->at_ns <= elapsed) {
        const Rank r = it->rank;
        it = pending_kills_.erase(it);
        lock.unlock();
        execute_kill(r);
        lock.lock();
        // Restart the scan: the list may have changed while unlocked.
        it = pending_kills_.begin();
        continue;
      }
      if (next_due < 0 || it->at_ns < next_due) next_due = it->at_ns;
      ++it;
    }
    if (next_due < 0) {
      kill_cv_.wait(lock);
    } else {
      kill_cv_.wait_for(lock, std::chrono::nanoseconds(next_due - elapsed));
    }
  }
}

void Universe::run(const std::function<void(RankContext&)>& rank_main) {
  const int n = opts_.ranks;
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(n));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(n));

  {
    std::lock_guard<std::mutex> lock(kill_mutex_);
    run_start_ = Clock::now();
    running_ = true;
    reaper_stop_ = false;
    for (const KillSpec& k : opts_.kills) pending_kills_.push_back(k);
  }
  reaper_ = std::thread([this] {
    log::set_thread_label("reaper");
    reaper_main();
  });

  for (int r = 0; r < n; ++r) {
    threads.emplace_back([this, r, &rank_main, &errors] {
      log::set_thread_label("r" + std::to_string(r));
      RankContext ctx(*this, r);
      try {
        rank_main(ctx);
      } catch (const RankKilledError&) {
        // A killed rank unwinding is the *intended* fault-injection
        // behaviour, not an error of the run.
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  {
    std::lock_guard<std::mutex> lock(kill_mutex_);
    running_ = false;
    reaper_stop_ = true;
    pending_kills_.clear();
    kill_cv_.notify_all();
  }
  reaper_.join();
  for (auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

void Universe::launch(const UniverseOptions& opts,
                      const std::function<void(RankContext&)>& rank_main) {
  Universe u(opts);
  u.run(rank_main);
}

Comm Universe::comm(Rank rank, int index) {
  OMPC_CHECK(rank >= 0 && rank < opts_.ranks);
  OMPC_CHECK_MSG(index >= 0 && index < opts_.comms,
                 "communicator index " << index << " out of range (comms="
                                       << opts_.comms << ')');
  return Comm(this, index, rank);
}

ContextId Universe::allocate_context() {
  return next_context_.fetch_add(1, std::memory_order_relaxed);
}

void Universe::post(Envelope&& env) {
  OMPC_CHECK(env.dst >= 0 && env.dst < opts_.ranks);
  // A dead rank neither sends nor receives: its traffic vanishes from the
  // wire (messages already in flight when it died are still delivered).
  // One-sided initiations cannot vanish silently — their origin is blocked
  // on the completion — so the pending op fails instead.
  if (is_dead(env.src) || is_dead(env.dst)) {
    if (env.op == RmaOp::Put || env.op == RmaOp::Get)
      rma_fail(env.op_id, is_dead(env.dst) ? env.dst : env.src);
    // A persistent send completes normally even when the bytes vanish —
    // exactly the transient isend semantics (eager completion, silent drop).
    if (env.delivered)
      env.delivered->complete(Status{env.src, env.tag, env.payload.size()});
    return;
  }
  messages_sent_.fetch_add(1, std::memory_order_relaxed);
  env.channel = env.context % opts_.network.channels;
  // Self-sends never cross the NIC: deliver through the local queue at
  // memory speed (what every MPI implementation and Charm++'s local-message
  // path do). Everything else goes through the transport conduit.
  if (env.src != env.dst) {
    conduit_->submit(std::move(env));
  } else {
    deliver_envelope(std::move(env));
  }
}

void Universe::deliver_envelope(Envelope&& env) {
  switch (env.op) {
    case RmaOp::None: {
      // Persistent-send completion (in-process conduit and self-sends): the
      // sender's buffer is reusable once the delivery fill has happened.
      // The shm conduit completed the slot at ring staging instead, and its
      // ring-parsed envelopes carry no hook.
      std::shared_ptr<detail::RequestState> delivered =
          std::move(env.delivered);
      const Status sent{env.src, env.tag, env.payload.size()};
      mailbox(env.dst).deliver(std::move(env));
      if (delivered) delivered->complete(sent);
      return;
    }
    case RmaOp::Put: {
      if (is_dead(env.dst)) return;  // corpse: bytes vanish, op was failed
      // The landing copy of a put — the one copy of the (in-process) RMA
      // data plane, counted like a delivery fill. fill() copies under the
      // registry lock so a concurrent window destroy (the target freeing
      // the block) cannot race the memcpy.
      if (windows_.fill(env.dst, env.window, env.offset, env.payload)) {
        if (!env.payload.empty()) note_payload_copy(env.tag, env.payload.size());
      } else {
        // The window vanished while the put was in flight (target freed the
        // block, e.g. during recovery). Like a payload whose receive was
        // cancelled, the bytes are dropped; the ack still completes the
        // origin so it cannot hang on memory that no longer exists.
        OMPC_LOG_WARN("put from rank " << env.src << " into unknown window "
                                       << env.window << " of rank " << env.dst
                                       << "; bytes dropped");
      }
      Envelope ack;
      ack.src = env.dst;
      ack.dst = env.src;
      ack.tag = env.tag;
      ack.context = env.context;
      ack.op = RmaOp::PutAck;
      ack.op_id = env.op_id;
      post(std::move(ack));
      return;
    }
    case RmaOp::Get: {
      if (is_dead(env.dst)) return;
      Envelope reply;
      reply.src = env.dst;
      reply.dst = env.src;
      reply.tag = env.tag;
      reply.context = env.context;
      reply.op = RmaOp::GetReply;
      reply.op_id = env.op_id;
      // Staging copy at the target (gets cannot borrow: the region may be
      // freed while the reply is in flight), done under the registry lock
      // like a put's landing copy. Counted for data tags.
      if (windows_.read(env.dst, env.window, env.offset,
                        static_cast<std::size_t>(env.rma_size),
                        &reply.payload)) {
        if (env.rma_size != 0)
          note_payload_copy(env.tag, static_cast<std::size_t>(env.rma_size));
      } else {
        // Unknown window: reply empty. The origin's Status.count stays 0,
        // so a caller that checks sees the short read.
        OMPC_LOG_WARN("get by rank " << env.src << " of unknown window "
                                     << env.window << " on rank " << env.dst);
      }
      post(std::move(reply));
      return;
    }
    case RmaOp::PutAck:
    case RmaOp::GetReply:
      rma_complete(std::move(env));
      return;
  }
}

Request Universe::rma_start(Envelope&& env, std::byte* get_dst,
                            std::size_t get_capacity) {
  auto state = std::make_shared<detail::RequestState>();
  state->buffer = get_dst;
  state->capacity = get_capacity;
  const std::uint64_t id = next_op_id_.fetch_add(1, std::memory_order_relaxed);
  env.op_id = id;
  {
    std::lock_guard<std::mutex> lock(rma_mutex_);
    pending_rma_.emplace(id, PendingRma{env.src, env.dst, state});
  }
  // post() fails the op (via rma_fail) when either end is already dead, and
  // execute_kill fails it when one dies while the ack is pending — so the
  // returned request can never be left hanging.
  post(std::move(env));
  return Request(std::move(state));
}

void Universe::rma_restart(Envelope&& env,
                           const std::shared_ptr<detail::RequestState>& state) {
  const std::uint64_t id = next_op_id_.fetch_add(1, std::memory_order_relaxed);
  env.op_id = id;
  {
    std::lock_guard<std::mutex> lock(rma_mutex_);
    pending_rma_.emplace(id, PendingRma{env.src, env.dst, state});
  }
  // Same completion guarantees as rma_start: post() fails the op when either
  // end is already dead, execute_kill fails it when one dies in flight.
  post(std::move(env));
}

void Universe::rma_complete(Envelope&& env) {
  std::shared_ptr<detail::RequestState> state;
  {
    std::lock_guard<std::mutex> lock(rma_mutex_);
    const auto it = pending_rma_.find(env.op_id);
    if (it == pending_rma_.end()) return;  // op already failed by a kill
    state = std::move(it->second.state);
    pending_rma_.erase(it);
  }
  std::size_t landed = 0;
  if (env.op == RmaOp::GetReply && state->buffer != nullptr &&
      !env.payload.empty()) {
    landed = std::min(env.payload.size(), state->capacity);
    // Landing copy into the origin's buffer (the get counterpart of the
    // put's window write).
    note_payload_copy(env.tag, landed);
    std::memcpy(state->buffer, env.payload.data(), landed);
  }
  const std::size_t count =
      env.op == RmaOp::GetReply ? env.payload.size() : landed;
  state->complete(Status{env.src, env.tag, count});
}

void Universe::rma_fail(std::uint64_t op_id, Rank dead) {
  std::shared_ptr<detail::RequestState> state;
  {
    std::lock_guard<std::mutex> lock(rma_mutex_);
    const auto it = pending_rma_.find(op_id);
    if (it == pending_rma_.end()) return;
    state = std::move(it->second.state);
    pending_rma_.erase(it);
  }
  state->kill(dead);
}

void Universe::fail_rma_ops_of(Rank r) {
  std::vector<std::shared_ptr<detail::RequestState>> victims;
  {
    std::lock_guard<std::mutex> lock(rma_mutex_);
    for (auto it = pending_rma_.begin(); it != pending_rma_.end();) {
      if (it->second.origin == r || it->second.target == r) {
        victims.push_back(std::move(it->second.state));
        it = pending_rma_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (auto& s : victims) s->kill(r);
}

void Universe::rma_flush(Rank origin, Rank target) {
  std::vector<std::shared_ptr<detail::RequestState>> waits;
  {
    std::lock_guard<std::mutex> lock(rma_mutex_);
    for (const auto& [id, op] : pending_rma_) {
      (void)id;
      if (op.origin != origin) continue;
      if (target != kAnySource && op.target != target) continue;
      waits.push_back(op.state);
    }
  }
  for (auto& s : waits) Request(s).wait();
}

Mailbox& Universe::mailbox(Rank rank) {
  return *mailboxes_[static_cast<std::size_t>(rank)];
}

}  // namespace ompc::mpi
