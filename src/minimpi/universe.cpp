#include "minimpi/universe.hpp"

#include <exception>
#include <string>
#include <thread>

#include "common/check.hpp"
#include "common/log.hpp"

namespace ompc::mpi {

int RankContext::num_ranks() const noexcept { return universe_->num_ranks(); }

Comm RankContext::world() const { return universe_->comm(rank_, 0); }

Comm RankContext::comm(int index) const { return universe_->comm(rank_, index); }

Universe::Universe(const UniverseOptions& opts)
    : opts_(opts), next_context_(opts.comms) {
  OMPC_CHECK_MSG(opts_.ranks >= 1, "universe needs at least one rank");
  OMPC_CHECK_MSG(opts_.comms >= 1, "universe needs at least one communicator");
  OMPC_CHECK_MSG(opts_.network.channels >= 1, "network needs >= 1 channel");
  mailboxes_.reserve(static_cast<std::size_t>(opts_.ranks));
  for (int r = 0; r < opts_.ranks; ++r)
    mailboxes_.push_back(std::make_unique<Mailbox>());
  if (!opts_.network.is_instant()) {
    engine_ = std::make_unique<DeliveryEngine>(
        opts_.network,
        [this](Envelope&& env) { mailbox(env.dst).deliver(std::move(env)); });
  }
}

Universe::~Universe() = default;

void Universe::run(const std::function<void(RankContext&)>& rank_main) {
  const int n = opts_.ranks;
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(n));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(n));

  for (int r = 0; r < n; ++r) {
    threads.emplace_back([this, r, &rank_main, &errors] {
      log::set_thread_label("r" + std::to_string(r));
      RankContext ctx(*this, r);
      try {
        rank_main(ctx);
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  for (auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

void Universe::launch(const UniverseOptions& opts,
                      const std::function<void(RankContext&)>& rank_main) {
  Universe u(opts);
  u.run(rank_main);
}

Comm Universe::comm(Rank rank, int index) {
  OMPC_CHECK(rank >= 0 && rank < opts_.ranks);
  OMPC_CHECK_MSG(index >= 0 && index < opts_.comms,
                 "communicator index " << index << " out of range (comms="
                                       << opts_.comms << ')');
  return Comm(this, index, rank);
}

ContextId Universe::allocate_context() {
  return next_context_.fetch_add(1, std::memory_order_relaxed);
}

void Universe::post(Envelope&& env) {
  OMPC_CHECK(env.dst >= 0 && env.dst < opts_.ranks);
  messages_sent_.fetch_add(1, std::memory_order_relaxed);
  env.channel = env.context % opts_.network.channels;
  // Self-sends never cross the NIC: deliver through the local queue at
  // memory speed (what every MPI implementation and Charm++'s local-message
  // path do).
  if (engine_ && env.src != env.dst) {
    engine_->submit(std::move(env));
  } else {
    mailbox(env.dst).deliver(std::move(env));
  }
}

Mailbox& Universe::mailbox(Rank rank) {
  return *mailboxes_[static_cast<std::size_t>(rank)];
}

}  // namespace ompc::mpi
