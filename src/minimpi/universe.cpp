#include "minimpi/universe.hpp"

#include <algorithm>
#include <exception>
#include <string>
#include <thread>

#include "common/check.hpp"
#include "common/log.hpp"

namespace ompc::mpi {

int RankContext::num_ranks() const noexcept { return universe_->num_ranks(); }

Comm RankContext::world() const { return universe_->comm(rank_, 0); }

Comm RankContext::comm(int index) const { return universe_->comm(rank_, index); }

Universe::Universe(const UniverseOptions& opts)
    : opts_(opts), next_context_(opts.comms) {
  OMPC_CHECK_MSG(opts_.ranks >= 1, "universe needs at least one rank");
  OMPC_CHECK_MSG(opts_.comms >= 1, "universe needs at least one communicator");
  OMPC_CHECK_MSG(opts_.network.channels >= 1, "network needs >= 1 channel");
  mailboxes_.reserve(static_cast<std::size_t>(opts_.ranks));
  for (int r = 0; r < opts_.ranks; ++r)
    mailboxes_.push_back(std::make_unique<Mailbox>());
  dead_ = std::make_unique<std::atomic<bool>[]>(
      static_cast<std::size_t>(std::max(1, opts_.ranks)));
  for (int r = 0; r < opts_.ranks; ++r) dead_[static_cast<std::size_t>(r)] = false;
  if (!opts_.network.is_instant()) {
    engine_ = std::make_unique<DeliveryEngine>(
        opts_.network,
        [this](Envelope&& env) { mailbox(env.dst).deliver(std::move(env)); });
  }
}

Universe::~Universe() = default;

void Universe::execute_kill(Rank r) {
  OMPC_CHECK(r >= 0 && r < opts_.ranks);
  bool expected = false;
  if (!dead_[static_cast<std::size_t>(r)].compare_exchange_strong(expected,
                                                                  true))
    return;
  OMPC_LOG_WARN("fault injection: killing rank " << r);
  mailbox(r).poison(r);
}

void Universe::kill_rank(Rank r, std::int64_t at_ns) {
  std::lock_guard<std::mutex> lock(kill_mutex_);
  pending_kills_.push_back(KillSpec{r, at_ns});
  kill_cv_.notify_all();
}

void Universe::reaper_main() {
  std::unique_lock<std::mutex> lock(kill_mutex_);
  for (;;) {
    if (reaper_stop_) return;
    // Fire everything that is due; find the next deadline.
    const std::int64_t elapsed =
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             run_start_)
            .count();
    std::int64_t next_due = -1;
    for (auto it = pending_kills_.begin(); it != pending_kills_.end();) {
      if (it->at_ns <= elapsed) {
        const Rank r = it->rank;
        it = pending_kills_.erase(it);
        lock.unlock();
        execute_kill(r);
        lock.lock();
        // Restart the scan: the list may have changed while unlocked.
        it = pending_kills_.begin();
        continue;
      }
      if (next_due < 0 || it->at_ns < next_due) next_due = it->at_ns;
      ++it;
    }
    if (next_due < 0) {
      kill_cv_.wait(lock);
    } else {
      kill_cv_.wait_for(lock, std::chrono::nanoseconds(next_due - elapsed));
    }
  }
}

void Universe::run(const std::function<void(RankContext&)>& rank_main) {
  const int n = opts_.ranks;
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(n));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(n));

  {
    std::lock_guard<std::mutex> lock(kill_mutex_);
    run_start_ = Clock::now();
    running_ = true;
    reaper_stop_ = false;
    for (const KillSpec& k : opts_.kills) pending_kills_.push_back(k);
  }
  reaper_ = std::thread([this] {
    log::set_thread_label("reaper");
    reaper_main();
  });

  for (int r = 0; r < n; ++r) {
    threads.emplace_back([this, r, &rank_main, &errors] {
      log::set_thread_label("r" + std::to_string(r));
      RankContext ctx(*this, r);
      try {
        rank_main(ctx);
      } catch (const RankKilledError&) {
        // A killed rank unwinding is the *intended* fault-injection
        // behaviour, not an error of the run.
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  {
    std::lock_guard<std::mutex> lock(kill_mutex_);
    running_ = false;
    reaper_stop_ = true;
    pending_kills_.clear();
    kill_cv_.notify_all();
  }
  reaper_.join();
  for (auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

void Universe::launch(const UniverseOptions& opts,
                      const std::function<void(RankContext&)>& rank_main) {
  Universe u(opts);
  u.run(rank_main);
}

Comm Universe::comm(Rank rank, int index) {
  OMPC_CHECK(rank >= 0 && rank < opts_.ranks);
  OMPC_CHECK_MSG(index >= 0 && index < opts_.comms,
                 "communicator index " << index << " out of range (comms="
                                       << opts_.comms << ')');
  return Comm(this, index, rank);
}

ContextId Universe::allocate_context() {
  return next_context_.fetch_add(1, std::memory_order_relaxed);
}

void Universe::post(Envelope&& env) {
  OMPC_CHECK(env.dst >= 0 && env.dst < opts_.ranks);
  // A dead rank neither sends nor receives: its traffic vanishes from the
  // wire (messages already in flight when it died are still delivered).
  if (is_dead(env.src) || is_dead(env.dst)) return;
  messages_sent_.fetch_add(1, std::memory_order_relaxed);
  env.channel = env.context % opts_.network.channels;
  // Self-sends never cross the NIC: deliver through the local queue at
  // memory speed (what every MPI implementation and Charm++'s local-message
  // path do).
  if (engine_ && env.src != env.dst) {
    engine_->submit(std::move(env));
  } else {
    mailbox(env.dst).deliver(std::move(env));
  }
}

Mailbox& Universe::mailbox(Rank rank) {
  return *mailboxes_[static_cast<std::size_t>(rank)];
}

}  // namespace ompc::mpi
