#include "minimpi/window.hpp"

#include "minimpi/universe.hpp"

namespace ompc::mpi {

void WindowRegistry::create(Rank rank, WindowId id, void* base,
                            std::size_t size) {
  auto* b = static_cast<std::byte*>(base);
  std::lock_guard<std::mutex> lock(mutex_);
  const auto key = std::make_pair(rank, id);
  if (windows_.count(key) != 0)
    throw WindowError("window id " + std::to_string(id) +
                      " already registered on rank " + std::to_string(rank));
  // Overlap scan over this rank's windows: a put must name exactly one
  // destination region. Linear in the rank's window count, which tracks
  // its live allocation count — registration is off the message hot path.
  for (auto it = windows_.lower_bound({rank, 0});
       it != windows_.end() && it->first.first == rank; ++it) {
    const Region& r = it->second;
    if (b < r.base + r.size && r.base < b + size)
      throw WindowError("window id " + std::to_string(id) + " on rank " +
                        std::to_string(rank) +
                        " overlaps existing window id " +
                        std::to_string(it->first.second));
  }
  windows_.emplace(key, Region{b, size});
}

void WindowRegistry::destroy(Rank rank, WindowId id) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (windows_.erase({rank, id}) != 1)
    throw WindowError("destroy of unknown window id " + std::to_string(id) +
                      " on rank " + std::to_string(rank));
}

bool WindowRegistry::fill(Rank rank, WindowId id, std::uint64_t offset,
                          const Payload& payload) const {
  // The copy happens under the registry lock on purpose: handing out a raw
  // pointer would let the owner destroy the window and free the bytes
  // between resolution and the memcpy (a real use-after-free once the
  // worker heap trims blocks after failover). Holding the lock makes
  // destroy() a barrier: after it returns, no landing copy is in flight.
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = windows_.find({rank, id});
  if (it == windows_.end()) return false;
  const Region& r = it->second;
  if (offset > r.size || payload.size() > r.size - offset) return false;
  payload.copy_to(r.base + offset);
  return true;
}

bool WindowRegistry::read(Rank rank, WindowId id, std::uint64_t offset,
                          std::size_t len, Payload* out) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = windows_.find({rank, id});
  if (it == windows_.end()) return false;
  const Region& r = it->second;
  if (offset > r.size || len > r.size - offset) return false;
  *out = Payload::copy_of(r.base + offset, len);
  return true;
}

bool WindowRegistry::exists(Rank rank, WindowId id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return windows_.count({rank, id}) != 0;
}

std::size_t WindowRegistry::count(Rank rank) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t n = 0;
  for (auto it = windows_.lower_bound({rank, 0});
       it != windows_.end() && it->first.first == rank; ++it)
    ++n;
  return n;
}

Window& Window::operator=(Window&& other) noexcept {
  if (this != &other) {
    release();
    universe_ = other.universe_;
    rank_ = other.rank_;
    id_ = other.id_;
    size_ = other.size_;
    other.universe_ = nullptr;
  }
  return *this;
}

Window::~Window() { release(); }

void Window::release() {
  if (universe_ == nullptr) return;
  universe_->windows().destroy(rank_, id_);
  universe_ = nullptr;
}

}  // namespace ompc::mpi
