// POSIX shared-memory conduit (GASNet-PSHM style).
//
// One shm_open/mmap segment holds a grid of ranks x ranks byte rings, one
// per (src, dst) pair. submit() serializes the envelope — fixed header then
// payload bytes — into the destination ring, chunking through the bounded
// ring when the payload exceeds free space (so arbitrarily large messages
// cross a fixed-size segment, the way PSHM bounce buffers do). A drain
// thread reassembles records into owned-payload envelopes, holds them until
// their simulated wire deadline (the same LinkPacer pricing as the
// in-process conduit), and delivers in per-link FIFO order.
//
// The segment is unlinked immediately after mmap, so no name leaks even on
// crash; the rings are exercised in-process (all ranks are threads of one
// process), which is exactly the GASNet-PSHM situation of co-located
// processes sharing a node — minus a second process, so CTest needs no
// multi-process harness. Coordination (producer mutexes, the drain wakeup)
// uses in-process primitives; a true multi-process deployment would move
// those onto futexes in the segment.
//
// Copy honesty: unlike the in-process conduit's zero-copy std::move
// hand-off, the shm data plane costs two extra counted copies per transfer
// (stage into the ring, ring -> owned payload) on top of the delivery fill.
// Copy-sensitive tests and gates therefore pin or assume the in-process
// conduit; see the README "Transports" section for the trade-off.
#pragma once

#include <memory>

#include "minimpi/conduit.hpp"

namespace ompc::mpi {

/// Builds the shm conduit, or throws ConduitError when POSIX shared memory
/// is unavailable on this platform (the segment cannot be created).
std::unique_ptr<Conduit> make_shm_conduit(const NetworkModel& model,
                                          int ranks,
                                          Conduit::DeliverFn deliver);

}  // namespace ompc::mpi
