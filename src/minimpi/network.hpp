// Simulated interconnect: per-message cost model and delayed delivery.
//
// Every message pays `latency + bytes/bandwidth` of wire time, and messages
// sharing a (src, dst, channel) link serialize — the paper's MPICH "Virtual
// Communication Interfaces" map to `channels`: communicator contexts are
// striped across channels, so running the event system over more
// communicators genuinely increases network concurrency, exactly the effect
// §6.1 exploits with 64 VCIs (and bench/ablation_vci measures).
//
// Delivery runs on a dedicated engine thread ordered by a time-priority
// queue. An instant network (zero latency, infinite bandwidth) bypasses the
// engine entirely so unit tests run at memory speed.
//
// The cost model (NetworkModel + LinkPacer) is transport-independent: every
// conduit (conduit.hpp) prices messages through the same pacer, so swapping
// transports never changes the simulated wire.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "common/time.hpp"
#include "minimpi/message.hpp"

namespace ompc::mpi {

/// Cost parameters of the simulated wire.
struct NetworkModel {
  /// Fixed per-message wire latency in nanoseconds.
  std::int64_t latency_ns = 0;
  /// Link bandwidth in bytes/second; <= 0 means infinite.
  double bandwidth_Bps = 0.0;
  /// Number of independent hardware channels per (src,dst) pair (VCIs).
  int channels = 1;

  bool is_instant() const noexcept {
    return latency_ns <= 0 && bandwidth_Bps <= 0.0;
  }

  /// Pure wire time for a message of `bytes` bytes.
  std::int64_t transfer_ns(std::size_t bytes) const noexcept {
    std::int64_t t = latency_ns;
    if (bandwidth_Bps > 0.0)
      t += static_cast<std::int64_t>(static_cast<double>(bytes) /
                                     bandwidth_Bps * 1e9);
    return t;
  }

  /// A model scaled in time by `factor` (used by benches to dilate the wire
  /// consistently with dilated compute).
  NetworkModel dilated(double factor) const {
    NetworkModel m = *this;
    m.latency_ns = static_cast<std::int64_t>(
        static_cast<double>(latency_ns) * factor);
    if (bandwidth_Bps > 0.0) m.bandwidth_Bps = bandwidth_Bps / factor;
    return m;
  }
};

/// Computes simulated delivery deadlines: a message occupies its
/// (src, dst, channel) link from max(now, link free) for its full transfer
/// time, which is what makes message storms actually cost time. Shared by
/// every conduit so the cost model is identical across transports.
/// Thread-safe.
class LinkPacer {
 public:
  explicit LinkPacer(NetworkModel model) : model_(model) {}

  /// Delivery deadline for `env` — also marks the link busy until then.
  TimePoint due_for(const Envelope& env) {
    const TimePoint now = Clock::now();
    const auto wire =
        std::chrono::nanoseconds(model_.transfer_ns(env.payload.size()));
    const LinkKey key{env.src, env.dst, env.channel};
    std::lock_guard<std::mutex> lock(mutex_);
    TimePoint& busy_until = link_busy_until_[key];
    const TimePoint start = std::max(now, busy_until);
    const TimePoint due = start + wire;
    busy_until = due;
    return due;
  }

 private:
  struct LinkKey {
    Rank src;
    Rank dst;
    int channel;
    auto operator<=>(const LinkKey&) const = default;
  };

  NetworkModel model_;
  std::mutex mutex_;
  std::map<LinkKey, TimePoint> link_busy_until_;
};

/// Delayed-delivery engine. `deliver` is invoked on the engine thread once a
/// message's simulated wire time has elapsed.
class DeliveryEngine {
 public:
  DeliveryEngine(NetworkModel model,
                 std::function<void(Envelope&&)> deliver);
  ~DeliveryEngine();

  DeliveryEngine(const DeliveryEngine&) = delete;
  DeliveryEngine& operator=(const DeliveryEngine&) = delete;

  /// Computes the delivery deadline for `env` (serializing on its link) and
  /// enqueues it. Thread-safe.
  void submit(Envelope&& env);

  /// Total messages ever submitted (for tests/benchmarks).
  std::int64_t submitted() const noexcept;

 private:
  struct Pending {
    TimePoint due;
    std::int64_t seq;  ///< Tie-break so equal deadlines keep FIFO order.
    Envelope env;
  };
  struct Later {
    bool operator()(const Pending& a, const Pending& b) const {
      return a.due != b.due ? a.due > b.due : a.seq > b.seq;
    }
  };

  void engine_main();

  LinkPacer pacer_;
  std::function<void(Envelope&&)> deliver_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::priority_queue<Pending, std::vector<Pending>, Later> queue_;
  std::int64_t next_seq_ = 0;
  std::int64_t submitted_ = 0;
  bool stop_ = false;
  std::thread thread_;  // started last, joined in dtor after stop_ is set
};

}  // namespace ompc::mpi
