#include "minimpi/conduit.hpp"

#include <atomic>
#include <cstdlib>

#include "minimpi/shm_conduit.hpp"

namespace ompc::mpi {

const char* to_string(ConduitKind kind) noexcept {
  switch (kind) {
    case ConduitKind::InProcess: return "inprocess";
    case ConduitKind::Shm: return "shm";
  }
  return "?";
}

ConduitKind parse_conduit_name(const std::string& name) {
  if (name == "inprocess" || name == "in-process")
    return ConduitKind::InProcess;
  if (name == "shm" || name == "pshm") return ConduitKind::Shm;
  throw ConduitError("OMPC_CONDUIT=\"" + name +
                     "\" is not a known conduit (expected: inprocess, shm)");
}

ConduitKind resolve_conduit_kind(ConduitKind configured) {
  const char* env = std::getenv("OMPC_CONDUIT");
  if (env == nullptr || *env == '\0') return configured;
  return parse_conduit_name(env);
}

namespace {

/// The default transport: envelopes are handed off by std::move — zero
/// serialization, zero copies — through the DeliveryEngine's time-priority
/// queue (or inline for an instant network, so unit tests run at memory
/// speed without a delivery thread in the loop).
class InProcessConduit final : public Conduit {
 public:
  InProcessConduit(const NetworkModel& model, DeliverFn deliver)
      : deliver_(std::move(deliver)) {
    if (!model.is_instant())
      engine_ = std::make_unique<DeliveryEngine>(
          model, [this](Envelope&& env) { deliver_(std::move(env)); });
  }

  const char* name() const noexcept override { return "inprocess"; }

  void submit(Envelope&& env) override {
    inline_submitted_.fetch_add(1, std::memory_order_relaxed);
    if (engine_) {
      engine_->submit(std::move(env));
    } else {
      deliver_(std::move(env));
    }
  }

  std::int64_t submitted() const noexcept override {
    return inline_submitted_.load(std::memory_order_relaxed);
  }

 private:
  DeliverFn deliver_;
  std::unique_ptr<DeliveryEngine> engine_;  ///< null for an instant network
  std::atomic<std::int64_t> inline_submitted_{0};
};

}  // namespace

std::unique_ptr<Conduit> make_conduit(ConduitKind kind,
                                      const NetworkModel& model, int ranks,
                                      Conduit::DeliverFn deliver) {
  switch (kind) {
    case ConduitKind::InProcess:
      return std::make_unique<InProcessConduit>(model, std::move(deliver));
    case ConduitKind::Shm:
      return make_shm_conduit(model, ranks, std::move(deliver));
  }
  throw ConduitError("unknown conduit kind");
}

}  // namespace ompc::mpi
