#include "minimpi/mailbox.hpp"

#include <cstring>
#include <vector>

#include "common/check.hpp"

namespace ompc::mpi {

namespace {

Status status_of(const Envelope& env) {
  return Status{env.src, env.tag, env.payload.size()};
}

/// Copies a matched payload into the receive buffer — the single delivery
/// copy every message pays (zero-copy payloads pay no other). Truncation is
/// a protocol bug in this codebase (buffers are always sized by the
/// sender's header), so it fails fast rather than emulating
/// MPI_ERR_TRUNCATE.
void fill(detail::RequestState& slot, const Envelope& env) {
  OMPC_CHECK_MSG(env.payload.size() <= slot.capacity,
                 "receive truncation: payload " << env.payload.size()
                                                << " > capacity "
                                                << slot.capacity);
  env.payload.copy_to(slot.buffer);
  if (!env.payload.empty()) note_payload_copy(env.tag, env.payload.size());
}

}  // namespace

void Mailbox::deliver(Envelope&& env) {
  std::shared_ptr<detail::RequestState> matched;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (poisoned_) return;  // a dead rank never receives anything
    for (auto it = posted_.begin(); it != posted_.end(); ++it) {
      if (matches(env, (*it)->source, (*it)->tag, (*it)->context)) {
        matched = *it;
        posted_.erase(it);
        break;
      }
    }
    if (!matched) {
      // A borrowed payload parked here can outlive its sender's eager
      // completion (persistent sends complete once the transport has the
      // bytes): own the bytes before the sender's buffer becomes reusable.
      env.payload.materialize();
      unexpected_.push_back(std::move(env));
      arrival_cv_.notify_all();
      return;
    }
    fill(*matched, env);
  }
  // Completion takes the request's own lock; done outside the mailbox lock
  // is unnecessary (ordering is mailbox -> request everywhere) but keeps the
  // critical section minimal (CP.43).
  matched->complete(status_of(env));
}

Request Mailbox::post_recv(void* buf, std::size_t capacity, Rank src, Tag tag,
                           ContextId context) {
  auto state = std::make_shared<detail::RequestState>();
  state->buffer = static_cast<std::byte*>(buf);
  state->capacity = capacity;
  state->source = src;
  state->tag = tag;
  state->context = context;

  std::optional<Envelope> hit;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (poisoned_) throw RankKilledError(rank_);
    for (auto it = unexpected_.begin(); it != unexpected_.end(); ++it) {
      if (matches(*it, src, tag, context)) {
        hit = std::move(*it);
        unexpected_.erase(it);
        break;
      }
    }
    if (!hit) {
      posted_.push_back(state);
      return Request(std::move(state));
    }
    fill(*state, *hit);
  }
  state->complete(status_of(*hit));
  return Request(std::move(state));
}

Status Mailbox::recv(void* buf, std::size_t capacity, Rank src, Tag tag,
                     ContextId context) {
  return post_recv(buf, capacity, src, tag, context).wait();
}

void Mailbox::arm_recv(const std::shared_ptr<detail::RequestState>& state) {
  std::optional<Envelope> hit;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (poisoned_) throw RankKilledError(rank_);
    for (auto it = unexpected_.begin(); it != unexpected_.end(); ++it) {
      if (matches(*it, state->source, state->tag, state->context)) {
        hit = std::move(*it);
        unexpected_.erase(it);
        break;
      }
    }
    if (!hit) {
      posted_.push_back(state);
      return;
    }
    fill(*state, *hit);
  }
  state->complete(status_of(*hit));
}

std::optional<Status> Mailbox::iprobe(Rank src, Tag tag, ContextId context) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& env : unexpected_) {
    if (matches(env, src, tag, context)) return status_of(env);
  }
  return std::nullopt;
}

Status Mailbox::probe(Rank src, Tag tag, ContextId context) {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    if (poisoned_) throw RankKilledError(rank_);
    for (const auto& env : unexpected_) {
      if (matches(env, src, tag, context)) return status_of(env);
    }
    arrival_cv_.wait(lock);
  }
}

std::size_t Mailbox::unexpected_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return unexpected_.size();
}

void Mailbox::cancel(const std::shared_ptr<detail::RequestState>& state) {
  if (state == nullptr) return;
  std::lock_guard<std::mutex> lock(mutex_);
  posted_.remove(state);
}

void Mailbox::poison(Rank rank) {
  std::list<std::shared_ptr<detail::RequestState>> orphans;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (poisoned_) return;
    poisoned_ = true;
    rank_ = rank;
    unexpected_.clear();
    orphans.swap(posted_);
  }
  // Outside the mailbox lock (completion takes each request's own lock).
  for (auto& slot : orphans) slot->kill(rank);
  arrival_cv_.notify_all();  // blocked probes re-check poisoned_ and throw
}

bool Mailbox::poisoned() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return poisoned_;
}

void Mailbox::fail_persistent_from(Rank dead) {
  std::vector<std::shared_ptr<detail::RequestState>> victims;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto it = posted_.begin(); it != posted_.end();) {
      if ((*it)->persistent && (*it)->source == dead) {
        victims.push_back(std::move(*it));
        it = posted_.erase(it);
      } else {
        ++it;
      }
    }
  }
  // Outside the mailbox lock, like poison(); kill() is a no-op for slots
  // that won a race with an in-flight delivery.
  for (auto& slot : victims) slot->kill(dead);
}

}  // namespace ompc::mpi
