// Umbrella header for the minimpi substrate.
#pragma once

#include "minimpi/comm.hpp"      // IWYU pragma: export
#include "minimpi/mailbox.hpp"   // IWYU pragma: export
#include "minimpi/message.hpp"   // IWYU pragma: export
#include "minimpi/payload.hpp"   // IWYU pragma: export
#include "minimpi/network.hpp"   // IWYU pragma: export
#include "minimpi/request.hpp"   // IWYU pragma: export
#include "minimpi/types.hpp"     // IWYU pragma: export
#include "minimpi/universe.hpp"  // IWYU pragma: export
