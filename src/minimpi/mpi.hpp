// Umbrella header for the minimpi substrate: the whole conduit-era surface
// — communicators, transports (conduit.hpp), one-sided windows
// (window.hpp), matching, payload contracts — in one include. Runtime and
// test code should include this instead of picking per-file headers.
#pragma once

#include "minimpi/comm.hpp"      // IWYU pragma: export
#include "minimpi/conduit.hpp"   // IWYU pragma: export
#include "minimpi/mailbox.hpp"   // IWYU pragma: export
#include "minimpi/message.hpp"   // IWYU pragma: export
#include "minimpi/network.hpp"   // IWYU pragma: export
#include "minimpi/payload.hpp"   // IWYU pragma: export
#include "minimpi/request.hpp"   // IWYU pragma: export
#include "minimpi/types.hpp"     // IWYU pragma: export
#include "minimpi/universe.hpp"  // IWYU pragma: export
#include "minimpi/window.hpp"    // IWYU pragma: export
