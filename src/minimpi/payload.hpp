// Ownership-flexible message payloads (the zero-copy data plane).
//
// The eager protocol used to force every payload through an owned copy: the
// sender memcpy'd its buffer into the envelope, and delivery memcpy'd it
// again into the posted receive. For multi-megabyte Submit/Retrieve traffic
// that staging copy is pure head-node overhead (the Fig. 7a cost this repo
// optimizes), so Envelope now carries a Payload that can
//
//  - own its bytes          (moved-in Bytes; control messages, collectives),
//  - borrow the caller's    (the head's Submit path: the origin thread waits
//    buffer                  for the event completion, which the destination
//                            sends only after delivery filled its receive —
//                            so the borrowed memory outlives the flight), or
//  - share ownership        (worker device blocks: the block stays alive
//                            while a Retrieve/Exchange payload is in flight,
//                            even across Delete events or the rank dying).
//
// Copy accounting: every byte-copy of a *data-plane* payload (tags at or
// above kFirstDataTag — event data messages) is counted process-wide, so
// "the Submit path performs exactly one copy" is an assertable invariant
// (RuntimeStats::payload_copies), not a code-review claim. Control traffic
// (small tags) and collectives (reserved tags) are not data-plane and are
// not counted.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstring>
#include <memory>
#include <span>

#include "common/serialize.hpp"
#include "minimpi/types.hpp"

namespace ompc::mpi {

/// Tags at or above this carry bulk data payloads (the event system's
/// per-event data messages); smaller user tags are control traffic. Copy
/// accounting only tracks the data range.
inline constexpr Tag kFirstDataTag = 16;

namespace detail {
inline std::atomic<std::int64_t> g_payload_copies{0};
inline std::atomic<std::int64_t> g_payload_copy_bytes{0};
}  // namespace detail

inline constexpr bool is_data_tag(Tag tag) noexcept {
  return tag >= kFirstDataTag && tag <= kMaxUserTag;
}

/// Records one byte-copy of a payload travelling under `tag` (no-op for
/// non-data tags). Called by the matching engine on delivery and by any
/// producer that stages bytes into an owned payload.
inline void note_payload_copy(Tag tag, std::size_t bytes) {
  if (!is_data_tag(tag)) return;
  detail::g_payload_copies.fetch_add(1, std::memory_order_relaxed);
  detail::g_payload_copy_bytes.fetch_add(static_cast<std::int64_t>(bytes),
                                         std::memory_order_relaxed);
}

/// Process-wide count of data-plane payload byte-copies (all ranks; ranks
/// share the process in this simulated cluster).
inline std::int64_t payload_copies() {
  return detail::g_payload_copies.load(std::memory_order_relaxed);
}
inline std::int64_t payload_copy_bytes() {
  return detail::g_payload_copy_bytes.load(std::memory_order_relaxed);
}

/// A message payload with owned, borrowed or shared backing storage.
/// Move-only: copying a payload would defeat the accounting (and the
/// point).
class Payload {
 public:
  Payload() = default;

  /// Owned: takes the bytes by move — no copy.
  /*implicit*/ Payload(Bytes bytes)
      : owned_(std::move(bytes)), data_(owned_.data()), size_(owned_.size()) {}

  /// Owned copy of `[data, data+n)`. The one constructor that copies;
  /// callers on the data plane should prefer borrow()/share().
  static Payload copy_of(const void* data, std::size_t n) {
    Bytes b(n);
    if (n != 0) std::memcpy(b.data(), data, n);
    return Payload(std::move(b));
  }

  /// Borrowed view: the caller guarantees `[data, data+n)` stays valid and
  /// unmodified until the message has been delivered (e.g. an origin thread
  /// that blocks on the event completion, which the destination only sends
  /// after delivery).
  static Payload borrow(const void* data, std::size_t n) {
    Payload p;
    p.data_ = static_cast<const std::byte*>(data);
    p.size_ = n;
    return p;
  }

  /// Shared view: `keepalive` pins the backing storage for the payload's
  /// lifetime, so the owner may free (or die) while the message is in
  /// flight.
  static Payload share(std::shared_ptr<const void> keepalive,
                       const void* data, std::size_t n) {
    Payload p;
    p.keepalive_ = std::move(keepalive);
    p.data_ = static_cast<const std::byte*>(data);
    p.size_ = n;
    return p;
  }

  // Moves are safe for the owned case because std::vector's heap block (and
  // therefore data_) survives the move.
  Payload(Payload&&) = default;
  Payload& operator=(Payload&&) = default;
  Payload(const Payload&) = delete;
  Payload& operator=(const Payload&) = delete;

  const std::byte* data() const noexcept { return data_; }
  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }
  std::span<const std::byte> view() const noexcept { return {data_, size_}; }

  /// The delivery copy into a matched receive buffer. The caller accounts
  /// for it via note_payload_copy (only the mailbox knows the tag).
  void copy_to(void* dst) const {
    if (size_ != 0) std::memcpy(dst, data_, size_);
  }

  /// Converts a borrowed view into owned bytes; no-op when the payload
  /// already owns or pins its storage. Transports call this before parking
  /// a message whose sender was (or is about to be) released eagerly — a
  /// borrowed pointer must not outlive the sender's right to reuse it.
  void materialize() {
    if (size_ == 0 || data_ == owned_.data() || keepalive_ != nullptr) return;
    Bytes b(size_);
    std::memcpy(b.data(), data_, size_);
    owned_ = std::move(b);
    data_ = owned_.data();
  }

 private:
  Bytes owned_;
  std::shared_ptr<const void> keepalive_;
  const std::byte* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace ompc::mpi
