// Per-rank message matching engine.
//
// Implements MPI matching semantics: a receive matches a message when the
// communicator context is equal and source/tag are equal or wildcarded.
// Posted receives are honoured in post order; unexpected messages are kept
// and scanned in arrival order, which preserves the non-overtaking
// guarantee (messages on one communicator between a rank pair are matched
// in the order they were delivered).
#pragma once

#include <deque>
#include <list>
#include <memory>
#include <optional>

#include "minimpi/message.hpp"
#include "minimpi/request.hpp"

namespace ompc::mpi {

class Mailbox {
 public:
  /// Hands an arrived message to this rank: completes the first matching
  /// posted receive or stores it in the unexpected queue.
  void deliver(Envelope&& env);

  /// Posts a nonblocking receive into [buf, buf+capacity).
  Request post_recv(void* buf, std::size_t capacity, Rank src, Tag tag,
                    ContextId context);

  /// Re-arms a persistent receive: inserts the SAME pre-registered state
  /// back into the matching engine (no allocation — the cached delivery
  /// slot of the persistent fast path). The slot's buffer/source/tag were
  /// fixed by recv_init; the caller re-armed `done` beforehand. Matches the
  /// unexpected queue first, like post_recv. Throws RankKilledError when
  /// this mailbox is poisoned.
  void arm_recv(const std::shared_ptr<detail::RequestState>& state);

  /// Blocking receive (post + wait).
  Status recv(void* buf, std::size_t capacity, Rank src, Tag tag,
              ContextId context);

  /// Nonblocking probe of the unexpected queue.
  std::optional<Status> iprobe(Rank src, Tag tag, ContextId context);

  /// Blocking probe: waits until a matching message has arrived and returns
  /// its envelope metadata without consuming it.
  Status probe(Rank src, Tag tag, ContextId context);

  /// Removes a posted receive from the matching engine (like
  /// MPI_Cancel+MPI_Request_free for receives). No-op if the request
  /// already matched. Needed when the expected sender died: the buffer the
  /// receive points into may be reused/freed, and a stale in-flight
  /// payload must not land in it.
  void cancel(const std::shared_ptr<detail::RequestState>& state);

  /// Number of unexpected (arrived, unmatched) messages — test/debug hook.
  std::size_t unexpected_count() const;

  /// Fault injection: marks the owning rank dead. Every blocked receive or
  /// probe (and any future blocking call) throws RankKilledError; arriving
  /// messages are dropped on the floor. `rank` is only used for the error.
  void poison(Rank rank);

  /// Dead-rank drop path for pre-posted slots: fails every armed persistent
  /// receive whose fixed source is `dead` (exactly like a cancelled receive
  /// completing exceptionally). A transient posted receive keeps waiting —
  /// its caller may legitimately re-match from another source — but a
  /// persistent slot's source is fixed, so leaving it armed would be a
  /// zombie that can never complete.
  void fail_persistent_from(Rank dead);

  bool poisoned() const;

 private:
  static bool matches(const Envelope& env, Rank src, Tag tag,
                      ContextId context) noexcept {
    return env.context == context &&
           (src == kAnySource || env.src == src) &&
           (tag == kAnyTag || env.tag == tag);
  }

  mutable std::mutex mutex_;
  std::condition_variable arrival_cv_;  ///< Signalled on unexpected arrivals.
  std::deque<Envelope> unexpected_;
  std::list<std::shared_ptr<detail::RequestState>> posted_;
  bool poisoned_ = false;
  Rank rank_ = -1;  ///< set by poison(), for the error message only
};

}  // namespace ompc::mpi
