// Pluggable transports for the minimpi substrate (GASNet's conduit split).
//
// A Conduit owns everything between Universe::post and the destination's
// delivery callback: staging, pacing against the simulated NetworkModel,
// and the thread that ultimately hands each Envelope back to the universe.
// The universe keeps what is transport-independent — matching, liveness,
// message counting, one-sided windows — so transports can be swapped
// without touching MPI semantics. Two conduits exist:
//
//  - InProcessConduit: today's DeliveryEngine. Envelopes move by std::move,
//    so borrowed/shared payloads cross rank boundaries with zero copies
//    (the default, and the one the copy-accounting gates assume).
//  - ShmConduit: POSIX shm_open/mmap rings in the GASNet-PSHM style; every
//    envelope is serialized through a shared-memory byte ring and
//    reassembled on the drain thread (see shm_conduit.hpp).
//
// Selection: UniverseOptions::conduit, overridable process-wide with
// OMPC_CONDUIT=inprocess|shm (resolved and validated at Universe
// construction; unknown or unavailable conduits fail fast with
// ConduitError).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>

#include "minimpi/message.hpp"
#include "minimpi/network.hpp"

namespace ompc::mpi {

enum class ConduitKind {
  InProcess,  ///< direct hand-off through the delivery engine (default)
  Shm,        ///< POSIX shared-memory rings (PSHM style)
};

const char* to_string(ConduitKind kind) noexcept;

/// Conduit selection or construction failed: unknown OMPC_CONDUIT value, or
/// the transport is unavailable on this platform/configuration.
class ConduitError : public std::runtime_error {
 public:
  explicit ConduitError(const std::string& what) : std::runtime_error(what) {}
};

/// Abstract transport. submit() accepts a cross-rank envelope (self-sends
/// never reach a conduit); the conduit must eventually invoke the delivery
/// callback exactly once per submitted envelope, honouring the simulated
/// wire cost and per-link FIFO order. Delivery may happen on the caller's
/// thread (instant in-process networks) or on a conduit-owned thread.
class Conduit {
 public:
  using DeliverFn = std::function<void(Envelope&&)>;

  virtual ~Conduit() = default;

  virtual const char* name() const noexcept = 0;
  virtual void submit(Envelope&& env) = 0;

  /// Total envelopes ever submitted (tests/benches).
  virtual std::int64_t submitted() const noexcept = 0;
};

/// Parses a conduit name ("inprocess", "shm", plus the aliases
/// "in-process" and "pshm"). Throws ConduitError for anything else.
ConduitKind parse_conduit_name(const std::string& name);

/// Applies the OMPC_CONDUIT environment override (when set) to the
/// configured kind. Throws ConduitError for unrecognized values.
ConduitKind resolve_conduit_kind(ConduitKind configured);

/// Constructs the requested conduit, or throws ConduitError when the
/// transport is unavailable (e.g. shm on a platform without POSIX shared
/// memory). `ranks` sizes per-pair transport state.
std::unique_ptr<Conduit> make_conduit(ConduitKind kind,
                                      const NetworkModel& model, int ranks,
                                      Conduit::DeliverFn deliver);

}  // namespace ompc::mpi
