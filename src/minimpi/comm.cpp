#include "minimpi/comm.hpp"

#include <cstring>

#include "common/check.hpp"
#include "minimpi/universe.hpp"

namespace ompc::mpi {

namespace {
// Collective sub-protocol tags, offset into the reserved tag space.
constexpr Tag kBarrierArrive = kCollectiveTagBase + 0;
constexpr Tag kBarrierRelease = kCollectiveTagBase + 1;
constexpr Tag kBcast = kCollectiveTagBase + 2;
constexpr Tag kGather = kCollectiveTagBase + 3;
constexpr Tag kReduce = kCollectiveTagBase + 4;

void check_user_tag(Tag tag) {
  OMPC_CHECK_MSG(tag >= 0 && tag <= kMaxUserTag,
                 "tag " << tag << " outside user range [0, " << kMaxUserTag
                        << ']');
}
}  // namespace

int Comm::size() const noexcept { return universe_->num_ranks(); }

Comm Comm::dup() const {
  // Collective, like MPI_Comm_dup: every rank must call it, and all ranks
  // must agree on the new context id. Rank 0 allocates and broadcasts.
  ContextId ctx = 0;
  if (rank_ == 0) ctx = universe_->allocate_context();
  bcast(&ctx, sizeof ctx, 0);
  return Comm(universe_, ctx, rank_);
}

Request Comm::isend_payload(Payload payload, Rank dst, Tag tag) const {
  check_user_tag(tag);
  Envelope env;
  env.src = rank_;
  env.dst = dst;
  env.tag = tag;
  env.context = context_;
  env.payload = std::move(payload);
  universe_->post(std::move(env));

  // The payload now lives on the wire, so the send request is complete at
  // once. Owned payloads give buffered-send semantics; borrowed payloads
  // require the caller to keep the memory valid until delivery (see
  // payload.hpp for the contract).
  auto state = std::make_shared<detail::RequestState>();
  state->complete(Status{rank_, tag, 0});
  return Request(std::move(state));
}

Request Comm::isend_bytes(Bytes payload, Rank dst, Tag tag) const {
  return isend_payload(Payload(std::move(payload)), dst, tag);
}

Request Comm::isend(const void* buf, std::size_t n, Rank dst, Tag tag) const {
  // Staging copy into an owned payload; counted when it is data-plane
  // traffic (zero-copy callers use isend_payload with borrow/share).
  if (n != 0) note_payload_copy(tag, n);
  return isend_payload(Payload::copy_of(buf, n), dst, tag);
}

void Comm::send(const void* buf, std::size_t n, Rank dst, Tag tag) const {
  isend(buf, n, dst, tag).wait();
}

Request Comm::irecv(void* buf, std::size_t capacity, Rank src, Tag tag) const {
  if (tag != kAnyTag) check_user_tag(tag);
  return universe_->mailbox(rank_).post_recv(buf, capacity, src, tag, context_);
}

Status Comm::recv(void* buf, std::size_t capacity, Rank src, Tag tag) const {
  return irecv(buf, capacity, src, tag).wait();
}

Bytes Comm::recv_bytes(Rank src, Tag tag, Status* status_out) const {
  const Status probed = probe(src, tag);
  Bytes payload(probed.count);
  // Pin down the exact message we probed: wildcards are resolved to the
  // probed source/tag so a concurrent arrival cannot swap in.
  const Status st = universe_->mailbox(rank_).recv(
      payload.data(), payload.size(), probed.source, probed.tag, context_);
  if (status_out != nullptr) *status_out = st;
  return payload;
}

std::optional<Status> Comm::iprobe(Rank src, Tag tag) const {
  return universe_->mailbox(rank_).iprobe(src, tag, context_);
}

Status Comm::probe(Rank src, Tag tag) const {
  return universe_->mailbox(rank_).probe(src, tag, context_);
}

void Comm::cancel(const Request& req) const {
  if (!req.valid()) return;
  universe_->mailbox(rank_).cancel(req.state());
}

// --- persistent channels -------------------------------------------------

PersistentRequest Comm::send_init(const void* buf, std::size_t n, Rank dst,
                                  Tag tag) const {
  check_user_tag(tag);
  OMPC_CHECK_MSG(dst >= 0, "send_init needs a concrete destination rank");
  auto state = std::make_shared<detail::RequestState>();
  state->persistent = true;
  state->tag = tag;
  state->context = context_;
  Universe* u = universe_;
  const Rank src = rank_;
  const ContextId ctx = context_;
  return PersistentRequest(state, [u, state, buf, n, dst, tag, src, ctx] {
    Envelope env;
    env.src = src;
    env.dst = dst;
    env.tag = tag;
    env.context = ctx;
    env.payload = Payload::borrow(buf, n);
    env.delivered = state;  // transport completes the slot when staged
    u->post(std::move(env));
  });
}

PersistentRequest Comm::recv_init(void* buf, std::size_t capacity, Rank src,
                                  Tag tag) const {
  check_user_tag(tag);
  OMPC_CHECK_MSG(src != kAnySource,
                 "recv_init needs a fixed source (no wildcards: the channel "
                 "shape is pre-matched)");
  auto state = std::make_shared<detail::RequestState>();
  state->persistent = true;
  state->buffer = static_cast<std::byte*>(buf);
  state->capacity = capacity;
  state->source = src;
  state->tag = tag;
  state->context = context_;
  Universe* u = universe_;
  const Rank me = rank_;
  return PersistentRequest(
      state,
      [u, state, me, src] {
        // execute_kill fails only ARMED slots (fail_persistent_from), so a
        // source that died while this channel was idle must fail the arm
        // here. The re-check after arming closes the race where the kill
        // runs entirely between the first check and the mailbox insert:
        // the dead flag is set before execute_kill's mailbox scan, so one
        // of the two always observes it.
        if (u->is_dead(src)) throw RankKilledError(src);
        u->mailbox(me).arm_recv(state);
        if (u->is_dead(src)) {
          u->mailbox(me).cancel(state);
          state->kill(src);  // no-op if real data won the race with death
          std::lock_guard<std::mutex> lock(state->mutex);
          if (state->killed_rank >= 0) throw RankKilledError(src);
        }
      },
      [u, state, me] { u->mailbox(me).cancel(state); });
}

PersistentRequest Comm::put_init(Rank target, WindowId window,
                                 std::uint64_t offset, const void* src,
                                 std::size_t n,
                                 std::shared_ptr<const void> keepalive,
                                 Tag tag) const {
  check_user_tag(tag);
  // Pre-resolve the target window: a channel toward a window that does not
  // exist is a programming error, unlike a transient put racing a window
  // teardown (which drops-but-acks).
  if (!universe_->windows().exists(target, window))
    throw WindowError("put_init: unknown window id " + std::to_string(window) +
                      " on rank " + std::to_string(target));
  auto state = std::make_shared<detail::RequestState>();
  state->persistent = true;
  state->tag = tag;
  state->context = context_;
  Universe* u = universe_;
  const Rank me = rank_;
  const ContextId ctx = context_;
  return PersistentRequest(
      state, [u, state, me, target, window, offset, src, n,
              keepalive = std::move(keepalive), tag, ctx] {
        Envelope env;
        env.src = me;
        env.dst = target;
        env.tag = tag;
        env.context = ctx;
        env.op = RmaOp::Put;
        env.window = window;
        env.offset = offset;
        env.rma_size = n;
        env.payload = keepalive ? Payload::share(keepalive, src, n)
                                : Payload::borrow(src, n);
        u->rma_restart(std::move(env), state);
      });
}

// --- one-sided (RMA) ---------------------------------------------------

Window Comm::win_create(WindowId id, void* base, std::size_t size) const {
  universe_->windows().create(rank_, id, base, size);
  return Window(universe_, rank_, id, size);
}

Request Comm::put(Rank target, WindowId window, std::uint64_t offset,
                  Payload payload, Tag tag) const {
  check_user_tag(tag);
  Envelope env;
  env.src = rank_;
  env.dst = target;
  env.tag = tag;
  env.context = context_;
  env.op = RmaOp::Put;
  env.window = window;
  env.offset = offset;
  env.rma_size = payload.size();
  env.payload = std::move(payload);
  return universe_->rma_start(std::move(env));
}

Request Comm::get(Rank target, WindowId window, std::uint64_t offset,
                  void* dst, std::size_t n, Tag tag) const {
  check_user_tag(tag);
  Envelope env;
  env.src = rank_;
  env.dst = target;
  env.tag = tag;
  env.context = context_;
  env.op = RmaOp::Get;
  env.window = window;
  env.offset = offset;
  env.rma_size = n;
  return universe_->rma_start(std::move(env), static_cast<std::byte*>(dst), n);
}

void Comm::flush(Rank target) const { universe_->rma_flush(rank_, target); }

// --- collectives -------------------------------------------------------
//
// Implemented over the same message path as user traffic so they pay
// realistic network costs. Flat fan-in barrier; binomial-tree bcast.

void Comm::barrier() const {
  auto& box = universe_->mailbox(rank_);
  const int n = size();
  if (n == 1) return;
  if (rank_ == 0) {
    for (int i = 1; i < n; ++i)
      box.recv(nullptr, 0, kAnySource, kBarrierArrive, context_);
    for (int i = 1; i < n; ++i) {
      Envelope env{0, i, kBarrierRelease, context_, 0, {}};
      universe_->post(std::move(env));
    }
  } else {
    Envelope env{rank_, 0, kBarrierArrive, context_, 0, {}};
    universe_->post(std::move(env));
    box.recv(nullptr, 0, 0, kBarrierRelease, context_);
  }
}

void Comm::bcast(void* buf, std::size_t n, Rank root) const {
  auto& box = universe_->mailbox(rank_);
  const int p = size();
  if (p == 1) return;
  // Binomial tree on virtual ranks (root mapped to 0): log2(p) rounds.
  const int vrank = (rank_ - root + p) % p;
  if (vrank != 0) {
    // Receive from parent: clear the lowest set bit of vrank.
    const int vparent = vrank & (vrank - 1);
    const int parent = (vparent + root) % p;
    box.recv(buf, n, parent, kBcast, context_);
  }
  // Forward to children: set bits above the lowest set bit of vrank.
  for (int mask = 1; mask < p; mask <<= 1) {
    if ((vrank & (mask - 1)) != 0 || (vrank & mask) != 0) continue;
    const int vchild = vrank | mask;
    if (vchild >= p) break;
    const int child = (vchild + root) % p;
    Envelope env;
    env.src = rank_;
    env.dst = child;
    env.tag = kBcast;
    env.context = context_;
    env.payload = Payload::copy_of(buf, n);
    universe_->post(std::move(env));
  }
}

std::vector<Bytes> Comm::gather_bytes(std::span<const std::byte> mine,
                                      Rank root) const {
  const int p = size();
  std::vector<Bytes> out;
  if (rank_ == root) {
    out.resize(static_cast<std::size_t>(p));
    out[static_cast<std::size_t>(root)].assign(mine.begin(), mine.end());
    for (int r = 0; r < p; ++r) {
      if (r == root) continue;
      const Status st =
          universe_->mailbox(rank_).probe(r, kGather, context_);
      out[static_cast<std::size_t>(r)].resize(st.count);
      universe_->mailbox(rank_).recv(out[static_cast<std::size_t>(r)].data(),
                                     st.count, r, kGather, context_);
    }
  } else {
    Envelope env;
    env.src = rank_;
    env.dst = root;
    env.tag = kGather;
    env.context = context_;
    env.payload = Payload::copy_of(mine.data(), mine.size());
    universe_->post(std::move(env));
  }
  return out;
}

std::uint64_t Comm::allreduce_sum(std::uint64_t value) const {
  const int p = size();
  std::uint64_t total = value;
  auto& box = universe_->mailbox(rank_);
  if (rank_ == 0) {
    for (int r = 1; r < p; ++r) {
      std::uint64_t v = 0;
      box.recv(&v, sizeof v, r, kReduce, context_);
      total += v;
    }
  } else {
    Envelope env;
    env.src = rank_;
    env.dst = 0;
    env.tag = kReduce;
    env.context = context_;
    env.payload = Payload::copy_of(&value, sizeof value);
    universe_->post(std::move(env));
  }
  bcast(&total, sizeof total, 0);
  return total;
}

}  // namespace ompc::mpi
