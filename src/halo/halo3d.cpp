#include "halo/halo3d.hpp"

#include <array>
#include <cstring>

#include "common/time.hpp"
#include "offload/kernel_registry.hpp"

namespace ompc::halo {
namespace {

// Face order: -x, +x, -y, +y, -z, +z. X faces are indexed (j,k), Y faces
// (i,k), Z faces (i,j) — all c*c doubles.
constexpr int kFaces = 6;

inline std::size_t cell(int c, int i, int j, int k) {
  return (static_cast<std::size_t>(k) * static_cast<std::size_t>(c) +
          static_cast<std::size_t>(j)) *
             static_cast<std::size_t>(c) +
         static_cast<std::size_t>(i);
}

inline std::size_t fidx(int c, int a, int b) {
  return static_cast<std::size_t>(b) * static_cast<std::size_t>(c) +
         static_cast<std::size_t>(a);
}

/// Copies the six boundary layers of `block` into the face buffers. Shared
/// verbatim by the device kernel and the serial oracle so the distributed
/// result is bitwise-identical to the reference.
void pack_faces(const double* block, int c, double* const faces[kFaces]) {
  for (int k = 0; k < c; ++k)
    for (int j = 0; j < c; ++j) {
      faces[0][fidx(c, j, k)] = block[cell(c, 0, j, k)];
      faces[1][fidx(c, j, k)] = block[cell(c, c - 1, j, k)];
    }
  for (int k = 0; k < c; ++k)
    for (int i = 0; i < c; ++i) {
      faces[2][fidx(c, i, k)] = block[cell(c, i, 0, k)];
      faces[3][fidx(c, i, k)] = block[cell(c, i, c - 1, k)];
    }
  for (int j = 0; j < c; ++j)
    for (int i = 0; i < c; ++i) {
      faces[4][fidx(c, i, j)] = block[cell(c, i, j, 0)];
      faces[5][fidx(c, i, j)] = block[cell(c, i, j, c - 1)];
    }
}

/// 7-point stencil update of `block` in place. `halo[d]` is the facing
/// layer of the neighbor in direction d: halo[0] = the -x neighbor's +x
/// face, halo[1] = the +x neighbor's -x face, and so on. The weight is an
/// exact binary fraction so every run agrees bit-for-bit.
void update_block(double* block, int c, const double* const halo[kFaces]) {
  constexpr double w = 0.125;
  const std::size_t n = static_cast<std::size_t>(c) *
                        static_cast<std::size_t>(c) *
                        static_cast<std::size_t>(c);
  std::vector<double> old(block, block + n);
  for (int k = 0; k < c; ++k)
    for (int j = 0; j < c; ++j)
      for (int i = 0; i < c; ++i) {
        const double xm = i > 0 ? old[cell(c, i - 1, j, k)]
                                : halo[0][fidx(c, j, k)];
        const double xp = i < c - 1 ? old[cell(c, i + 1, j, k)]
                                    : halo[1][fidx(c, j, k)];
        const double ym = j > 0 ? old[cell(c, i, j - 1, k)]
                                : halo[2][fidx(c, i, k)];
        const double yp = j < c - 1 ? old[cell(c, i, j + 1, k)]
                                    : halo[3][fidx(c, i, k)];
        const double zm = k > 0 ? old[cell(c, i, j, k - 1)]
                                : halo[4][fidx(c, i, j)];
        const double zp = k < c - 1 ? old[cell(c, i, j, k + 1)]
                                    : halo[5][fidx(c, i, j)];
        const double center = old[cell(c, i, j, k)];
        block[cell(c, i, j, k)] =
            center + w * (xm + xp + ym + yp + zm + zp - 6.0 * center);
      }
}

/// buffers[0..5]: the six face buffers (out), buffers[6]: the cell block
/// (in). scalars: cells per side.
const offload::KernelId kHaloPack =
    offload::KernelRegistry::instance().register_kernel(
        "halo3d_pack", [](offload::KernelContext& ctx) {
          auto r = ctx.scalars();
          const int c = static_cast<int>(r.get<std::uint64_t>());
          double* faces[kFaces];
          for (int f = 0; f < kFaces; ++f)
            faces[f] = ctx.buffer<double>(static_cast<std::size_t>(f));
          pack_faces(ctx.buffer<double>(kFaces), c, faces);
        });

/// buffers[0]: the cell block (inout), buffers[1..6]: the facing neighbor
/// faces (in). scalars: cells per side.
const offload::KernelId kHaloUpdate =
    offload::KernelRegistry::instance().register_kernel(
        "halo3d_update", [](offload::KernelContext& ctx) {
          auto r = ctx.scalars();
          const int c = static_cast<int>(r.get<std::uint64_t>());
          const double* halo[kFaces];
          for (int f = 0; f < kFaces; ++f)
            halo[f] = ctx.buffer<double>(static_cast<std::size_t>(f) + 1);
          update_block(ctx.buffer<double>(0), c, halo);
        });

/// Deterministic initial condition, a function of the global cell index.
double init_value(int gx, int gy, int gz) {
  return static_cast<double>((gx * 31 + gy * 17 + gz * 7) % 97) * 0.125;
}

struct Grid {
  int nx, ny, nz, c;

  int id(int sx, int sy, int sz) const {
    return (sz * ny + sy) * nx + sx;
  }
  /// Periodic neighbor of subdomain s in face direction d.
  int neighbor(int s, int d) const {
    int sx = s % nx, sy = (s / nx) % ny, sz = s / (nx * ny);
    switch (d) {
      case 0: sx = (sx + nx - 1) % nx; break;
      case 1: sx = (sx + 1) % nx; break;
      case 2: sy = (sy + ny - 1) % ny; break;
      case 3: sy = (sy + 1) % ny; break;
      case 4: sz = (sz + nz - 1) % nz; break;
      default: sz = (sz + 1) % nz; break;
    }
    return id(sx, sy, sz);
  }
};

/// The facing face of the neighbor in direction d (-x neighbor contributes
/// its +x face, and so on): flips the direction's sign bit.
inline int facing(int d) { return d ^ 1; }

void init_blocks(const HaloSpec& spec,
                 std::vector<std::vector<double>>& blocks) {
  const int c = spec.cells;
  const Grid g{spec.nx, spec.ny, spec.nz, c};
  blocks.assign(static_cast<std::size_t>(spec.subdomains()),
                std::vector<double>(static_cast<std::size_t>(c) *
                                    static_cast<std::size_t>(c) *
                                    static_cast<std::size_t>(c)));
  for (int sz = 0; sz < spec.nz; ++sz)
    for (int sy = 0; sy < spec.ny; ++sy)
      for (int sx = 0; sx < spec.nx; ++sx) {
        auto& b = blocks[static_cast<std::size_t>(g.id(sx, sy, sz))];
        for (int k = 0; k < c; ++k)
          for (int j = 0; j < c; ++j)
            for (int i = 0; i < c; ++i)
              b[cell(c, i, j, k)] =
                  init_value(sx * c + i, sy * c + j, sz * c + k);
      }
}

std::uint64_t fnv1a(std::uint64_t h, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

std::uint64_t field_checksum(const std::vector<std::vector<double>>& blocks) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const auto& b : blocks)
    h = fnv1a(h, b.data(), b.size() * sizeof(double));
  return h;
}

}  // namespace

HaloResult run_halo3d(
    const core::ClusterOptions& opts, const HaloSpec& spec,
    const std::function<void(core::Runtime&, int)>& before_iter) {
  const int c = spec.cells;
  const int S = spec.subdomains();
  const Grid g{spec.nx, spec.ny, spec.nz, c};
  const std::size_t face_doubles =
      static_cast<std::size_t>(c) * static_cast<std::size_t>(c);

  std::vector<std::vector<double>> blocks;
  init_blocks(spec, blocks);
  std::vector<std::array<std::vector<double>, kFaces>> faces(
      static_cast<std::size_t>(S));
  for (auto& fs : faces)
    for (auto& f : fs) f.assign(face_doubles, 0.0);

  HaloResult result;
  result.stats = core::launch(opts, [&](core::Runtime& rt) {
    for (auto& b : blocks)
      rt.enter_data(b.data(), b.size() * sizeof(double));
    for (auto& fs : faces)
      for (auto& f : fs)
        rt.enter_data(f.data(), f.size() * sizeof(double), /*copy=*/false);

    for (int it = 0; it < spec.iters; ++it) {
      if (before_iter) before_iter(rt, it);
      Stopwatch sw;
      // Pack: each subdomain fills its six face buffers from its block.
      for (int s = 0; s < S; ++s) {
        auto& fs = faces[static_cast<std::size_t>(s)];
        core::Args args;
        omp::DepList deps;
        for (auto& f : fs) {
          args.buf(f.data());
          deps.push_back(omp::out(f.data()));
        }
        args.buf(blocks[static_cast<std::size_t>(s)].data());
        deps.push_back(omp::in(blocks[static_cast<std::size_t>(s)].data()));
        args.scalar<std::uint64_t>(static_cast<std::uint64_t>(c));
        rt.target(std::move(deps), kHaloPack, std::move(args));
      }
      // Update: each subdomain consumes the facing face of its six
      // periodic neighbors. Same wave — the face deps order update after
      // pack; the Data Manager forwards faces worker-to-worker.
      for (int s = 0; s < S; ++s) {
        core::Args args;
        omp::DepList deps;
        args.buf(blocks[static_cast<std::size_t>(s)].data());
        deps.push_back(
            omp::inout(blocks[static_cast<std::size_t>(s)].data()));
        for (int d = 0; d < kFaces; ++d) {
          auto& f = faces[static_cast<std::size_t>(g.neighbor(s, d))]
                         [static_cast<std::size_t>(facing(d))];
          args.buf(f.data());
          deps.push_back(omp::in(f.data()));
        }
        args.scalar<std::uint64_t>(static_cast<std::uint64_t>(c));
        rt.target(std::move(deps), kHaloUpdate, std::move(args));
      }
      rt.wait_all();
      result.iter_ns.push_back(sw.elapsed_ns());
    }

    for (auto& b : blocks) rt.exit_data(b.data());
    for (auto& fs : faces)
      for (auto& f : fs) rt.exit_data(f.data(), /*copy=*/false);
  });

  result.checksum = field_checksum(blocks);
  return result;
}

std::uint64_t serial_checksum(const HaloSpec& spec) {
  const int c = spec.cells;
  const int S = spec.subdomains();
  const Grid g{spec.nx, spec.ny, spec.nz, c};
  const std::size_t face_doubles =
      static_cast<std::size_t>(c) * static_cast<std::size_t>(c);

  std::vector<std::vector<double>> blocks;
  init_blocks(spec, blocks);
  std::vector<std::array<std::vector<double>, kFaces>> faces(
      static_cast<std::size_t>(S));
  for (auto& fs : faces)
    for (auto& f : fs) f.assign(face_doubles, 0.0);

  for (int it = 0; it < spec.iters; ++it) {
    for (int s = 0; s < S; ++s) {
      double* fp[kFaces];
      for (int f = 0; f < kFaces; ++f)
        fp[f] = faces[static_cast<std::size_t>(s)]
                     [static_cast<std::size_t>(f)].data();
      pack_faces(blocks[static_cast<std::size_t>(s)].data(), c, fp);
    }
    for (int s = 0; s < S; ++s) {
      const double* halo[kFaces];
      for (int d = 0; d < kFaces; ++d)
        halo[d] = faces[static_cast<std::size_t>(g.neighbor(s, d))]
                       [static_cast<std::size_t>(facing(d))].data();
      update_block(blocks[static_cast<std::size_t>(s)].data(), c, halo);
    }
  }
  return field_checksum(blocks);
}

}  // namespace ompc::halo
