// 3D halo-exchange workload: an N-neighbor stencil over a periodic grid of
// subdomains, run as target tasks over the cluster device. Every iteration
// is two tasks per subdomain — pack (boundary layers -> 6 face buffers) and
// update (7-point stencil reading the 6 facing neighbor faces) — with one
// wait_all() per iteration, so steady state is the SAME wave re-recorded
// every step: the schedule cache hits and, with persistent_channels on, the
// runtime arms its per-wave ChannelPlan (bench/fig5_halo gates exactly
// that). Shared by examples/halo3d, bench/fig5_halo and tests/test_halo.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/runtime.hpp"

namespace ompc::halo {

/// Workload shape: an nx x ny x nz periodic grid of cubic subdomains,
/// `cells` cells per side each, advanced `iters` stencil iterations.
struct HaloSpec {
  int nx = 2;
  int ny = 2;
  int nz = 1;
  int cells = 8;
  int iters = 4;

  int subdomains() const noexcept { return nx * ny * nz; }
};

struct HaloResult {
  core::RuntimeStats stats;
  /// FNV-1a over the final field bits (subdomain-major) — bitwise result
  /// identity, used to compare persistent/transient/recovery runs and the
  /// serial reference.
  std::uint64_t checksum = 0;
  /// Head wall time of each iteration (task recording + wait_all).
  std::vector<std::int64_t> iter_ns;
};

/// Runs the workload through the cluster runtime. The caller owns every
/// knob via `opts` (conduit, persistent_channels, checkpointing, kills...).
/// `before_iter`, when set, runs on the head before each iteration's tasks
/// are recorded — the membership tests use it to join/leave workers while
/// channels are armed.
HaloResult run_halo3d(
    const core::ClusterOptions& opts, const HaloSpec& spec,
    const std::function<void(core::Runtime&, int)>& before_iter = {});

/// Bit-exact serial oracle: the same pack/update arithmetic on host
/// vectors, no runtime involved.
std::uint64_t serial_checksum(const HaloSpec& spec);

}  // namespace ompc::halo
