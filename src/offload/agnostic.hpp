// Device-agnostic offloading layer (libomptarget's middle layer, Figure 2).
//
// Exposes the OpenMP accelerator-model operations the compiler would emit —
// `target enter data`, `target exit data`, `target update`, `target` — over
// any registered plugin, maintaining the host<->target mapping tables and
// reference counts. This is the single-device path; the OMPC runtime
// (src/core) layers cluster-wide data management and scheduling on top of
// the same plugin interface.
#pragma once

#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "offload/mapping.hpp"
#include "offload/plugin.hpp"

namespace ompc::offload {

/// Direction of a map clause, matching the OpenMP map types used in the
/// paper's Listing 1.
enum class MapType {
  To,       ///< map(to:)      — allocate on 0->1, copy host->device
  From,     ///< map(from:)    — copy device->host on 1->0, deallocate
  ToFrom,   ///< map(tofrom:)  — both
  Alloc,    ///< map(alloc:)   — allocate only
  Release,  ///< map(release:) — drop one reference, no copy
  Delete,   ///< map(delete:)  — force the mapping away regardless of count
};

struct MapClause {
  void* host = nullptr;
  std::size_t size = 0;
  MapType type = MapType::To;
};

inline MapClause map_to(void* p, std::size_t n) { return {p, n, MapType::To}; }
inline MapClause map_from(void* p, std::size_t n) {
  return {p, n, MapType::From};
}
inline MapClause map_tofrom(void* p, std::size_t n) {
  return {p, n, MapType::ToFrom};
}
inline MapClause map_alloc(void* p, std::size_t n) {
  return {p, n, MapType::Alloc};
}
inline MapClause map_release(void* p, std::size_t n) {
  return {p, n, MapType::Release};
}

class OffloadManager {
 public:
  /// Registers a plugin; its devices are appended to the global device
  /// numbering. Returns the first global id assigned.
  int register_plugin(std::shared_ptr<DevicePlugin> plugin);

  int num_devices() const;

  /// `target enter data map(...)` on `device`.
  void target_data_begin(int device, std::span<const MapClause> maps);
  /// `target exit data map(...)` on `device`.
  void target_data_end(int device, std::span<const MapClause> maps);

  /// `target update to/from(...)` — explicit refresh of a live mapping.
  void target_update_to(int device, const void* host, std::size_t size);
  void target_update_from(int device, void* host, std::size_t size);

  /// `target` region: maps in `maps` (begin before, end after, like an
  /// implicit data environment), translates `buffer_args` host pointers to
  /// device addresses and runs the kernel.
  void target(int device, KernelId kernel,
              std::span<const MapClause> maps,
              std::span<void* const> buffer_args, Bytes scalars = {});

  /// Device address of a mapped host pointer (0 when unmapped).
  TargetPtr translate(int device, const void* host) const;

  /// Mapped-entry count on a device (test hook).
  std::size_t mapped_entries(int device) const;

 private:
  struct DeviceSlot {
    DevicePlugin* plugin = nullptr;
    int local_id = 0;
    MappingTable table;
  };

  DeviceSlot& slot(int device);
  const DeviceSlot& slot(int device) const;

  void begin_one(DeviceSlot& d, const MapClause& m);
  void end_one(DeviceSlot& d, const MapClause& m);

  mutable std::mutex mutex_;
  std::vector<std::shared_ptr<DevicePlugin>> plugins_;
  std::vector<DeviceSlot> devices_;
};

}  // namespace ompc::offload
