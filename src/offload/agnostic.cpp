#include "offload/agnostic.hpp"

#include "common/check.hpp"

namespace ompc::offload {

int OffloadManager::register_plugin(std::shared_ptr<DevicePlugin> plugin) {
  std::lock_guard<std::mutex> lock(mutex_);
  const int first = static_cast<int>(devices_.size());
  const int n = plugin->number_of_devices();
  for (int i = 0; i < n; ++i) {
    DeviceSlot d;
    d.plugin = plugin.get();
    d.local_id = i;
    devices_.push_back(std::move(d));
  }
  plugins_.push_back(std::move(plugin));
  return first;
}

int OffloadManager::num_devices() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<int>(devices_.size());
}

OffloadManager::DeviceSlot& OffloadManager::slot(int device) {
  OMPC_CHECK_MSG(device >= 0 && device < static_cast<int>(devices_.size()),
                 "unknown device " << device);
  return devices_[static_cast<std::size_t>(device)];
}

const OffloadManager::DeviceSlot& OffloadManager::slot(int device) const {
  OMPC_CHECK_MSG(device >= 0 && device < static_cast<int>(devices_.size()),
                 "unknown device " << device);
  return devices_[static_cast<std::size_t>(device)];
}

void OffloadManager::begin_one(DeviceSlot& d, const MapClause& m) {
  const bool copy = m.type == MapType::To || m.type == MapType::ToFrom;
  if (d.table.contains(m.host)) {
    d.table.retain(m.host);
    // Present already: the OpenMP spec skips the copy when the reference
    // count was not zero (no `always` modifier here).
    return;
  }
  const TargetPtr tgt = d.plugin->data_alloc(d.local_id, m.size);
  d.table.insert(m.host, m.size, tgt);
  if (copy) d.plugin->data_submit(d.local_id, tgt, m.host, m.size);
}

void OffloadManager::end_one(DeviceSlot& d, const MapClause& m) {
  const bool copy = m.type == MapType::From || m.type == MapType::ToFrom;
  const MapEntry* e = d.table.find(m.host);
  OMPC_CHECK_MSG(e != nullptr, "exit data for unmapped pointer " << m.host);
  if (m.type == MapType::Delete) {
    // Force the mapping away regardless of the reference count.
    MapEntry gone = *e;
    while (d.table.release(m.host) == std::nullopt) {
    }
    d.plugin->data_delete(d.local_id, gone.target);
    return;
  }
  if (copy) {
    d.plugin->data_retrieve(d.local_id, m.host, e->target, e->size);
  }
  if (auto gone = d.table.release(m.host)) {
    d.plugin->data_delete(d.local_id, gone->target);
  }
}

void OffloadManager::target_data_begin(int device,
                                       std::span<const MapClause> maps) {
  std::lock_guard<std::mutex> lock(mutex_);
  DeviceSlot& d = slot(device);
  for (const MapClause& m : maps) begin_one(d, m);
}

void OffloadManager::target_data_end(int device,
                                     std::span<const MapClause> maps) {
  std::lock_guard<std::mutex> lock(mutex_);
  DeviceSlot& d = slot(device);
  for (const MapClause& m : maps) end_one(d, m);
}

void OffloadManager::target_update_to(int device, const void* host,
                                      std::size_t size) {
  std::lock_guard<std::mutex> lock(mutex_);
  DeviceSlot& d = slot(device);
  const TargetPtr tgt = d.table.translate(host);
  OMPC_CHECK_MSG(tgt != kNullTargetPtr, "update of unmapped pointer " << host);
  d.plugin->data_submit(d.local_id, tgt, host, size);
}

void OffloadManager::target_update_from(int device, void* host,
                                        std::size_t size) {
  std::lock_guard<std::mutex> lock(mutex_);
  DeviceSlot& d = slot(device);
  const TargetPtr tgt = d.table.translate(host);
  OMPC_CHECK_MSG(tgt != kNullTargetPtr, "update of unmapped pointer " << host);
  d.plugin->data_retrieve(d.local_id, host, tgt, size);
}

void OffloadManager::target(int device, KernelId kernel,
                            std::span<const MapClause> maps,
                            std::span<void* const> buffer_args,
                            Bytes scalars) {
  target_data_begin(device, maps);
  std::vector<TargetPtr> args;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    DeviceSlot& d = slot(device);
    args.reserve(buffer_args.size());
    for (void* host : buffer_args) {
      const TargetPtr tgt = d.table.translate(host);
      OMPC_CHECK_MSG(tgt != kNullTargetPtr,
                     "target argument " << host << " is not mapped");
      args.push_back(tgt);
    }
  }
  DeviceSlot& d = slot(device);
  d.plugin->run_target_region(d.local_id, kernel, args, scalars);
  target_data_end(device, maps);
}

TargetPtr OffloadManager::translate(int device, const void* host) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return slot(device).table.translate(host);
}

std::size_t OffloadManager::mapped_entries(int device) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return slot(device).table.size();
}

}  // namespace ompc::offload
