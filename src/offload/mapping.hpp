// Host <-> target data mapping table (libomptarget's HostDataToTargetMap).
//
// The agnostic layer tracks, per device, which host ranges are currently
// mapped, their device address and a reference count. Ref counting follows
// the OpenMP spec: `enter data map(to:)` increments (allocating + copying
// on 0 -> 1), `exit data map(release/from:)` decrements (copying back /
// deallocating on 1 -> 0), and lookups inside a range resolve to the
// containing entry.
#pragma once

#include <cstdint>
#include <map>
#include <optional>

#include "common/check.hpp"

namespace ompc::offload {

struct MapEntry {
  std::uintptr_t host_begin = 0;
  std::size_t size = 0;
  std::uint64_t target = 0;  ///< TargetPtr of the device allocation.
  int ref_count = 0;
};

class MappingTable {
 public:
  /// Finds the entry whose [host_begin, host_begin+size) contains `host`.
  const MapEntry* find(const void* host) const {
    const auto key = reinterpret_cast<std::uintptr_t>(host);
    auto it = entries_.upper_bound(key);
    if (it == entries_.begin()) return nullptr;
    --it;
    const MapEntry& e = it->second;
    return (key >= e.host_begin && key < e.host_begin + e.size) ? &e : nullptr;
  }

  /// Device address corresponding to `host` (offset-adjusted); 0 when the
  /// pointer is unmapped.
  std::uint64_t translate(const void* host) const {
    const MapEntry* e = find(host);
    if (e == nullptr) return 0;
    const auto key = reinterpret_cast<std::uintptr_t>(host);
    return e->target + (key - e->host_begin);
  }

  bool contains(const void* host) const { return find(host) != nullptr; }

  /// Inserts a fresh mapping with ref_count 1. The range must not overlap
  /// an existing entry (the OpenMP spec makes overlapping maps UB; we make
  /// it a hard error).
  MapEntry& insert(const void* host, std::size_t size, std::uint64_t target) {
    const auto key = reinterpret_cast<std::uintptr_t>(host);
    OMPC_CHECK_MSG(!overlaps(key, size),
                   "overlapping device mapping of " << host);
    MapEntry e{key, size, target, 1};
    return entries_.emplace(key, e).first->second;
  }

  /// Bumps the ref count of the entry containing `host`; returns it.
  MapEntry& retain(const void* host) {
    MapEntry* e = find_mutable(host);
    OMPC_CHECK_MSG(e != nullptr, "retain of unmapped pointer " << host);
    ++e->ref_count;
    return *e;
  }

  /// Drops one reference. Returns the entry *by value* when the count hits
  /// zero (the caller must free the device memory and the entry is gone);
  /// nullopt while references remain.
  std::optional<MapEntry> release(const void* host) {
    MapEntry* e = find_mutable(host);
    OMPC_CHECK_MSG(e != nullptr, "release of unmapped pointer " << host);
    OMPC_CHECK(e->ref_count > 0);
    if (--e->ref_count > 0) return std::nullopt;
    MapEntry out = *e;
    entries_.erase(e->host_begin);
    return out;
  }

  std::size_t size() const noexcept { return entries_.size(); }
  bool empty() const noexcept { return entries_.empty(); }

 private:
  MapEntry* find_mutable(const void* host) {
    return const_cast<MapEntry*>(find(host));
  }

  bool overlaps(std::uintptr_t begin, std::size_t size) const {
    auto it = entries_.lower_bound(begin);
    if (it != entries_.end() && it->first < begin + size) return true;
    if (it != entries_.begin()) {
      --it;
      if (it->second.host_begin + it->second.size > begin) return true;
    }
    return false;
  }

  std::map<std::uintptr_t, MapEntry> entries_;
};

}  // namespace ompc::offload
