// Kernel registry: the stand-in for the compiler's fat binary.
//
// Clang embeds device code in the host image and libomptarget looks entry
// points up by name; here all ranks share one process image, so a kernel is
// a function registered under a stable id. An execute event ships only the
// kernel id plus argument metadata — never code — exactly like the real
// runtime ships an entry-point index.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "common/serialize.hpp"

namespace ompc::omp {
class TaskRuntime;
}

namespace ompc::offload {

using KernelId = std::uint32_t;

inline constexpr KernelId kInvalidKernel = 0;

/// Execution context handed to a kernel body on the executing device.
class KernelContext {
 public:
  KernelContext(std::span<void* const> buffers, std::span<const std::byte> scalars,
                omp::TaskRuntime* pool, int device)
      : buffers_(buffers), scalars_(scalars), pool_(pool), device_(device) {}

  /// Positional buffer argument, typed view (device-local memory).
  template <typename T>
  T* buffer(std::size_t index) const {
    return static_cast<T*>(buffers_[index]);
  }
  std::size_t num_buffers() const noexcept { return buffers_.size(); }

  /// Reader over the serialized firstprivate scalars, in push order.
  ArchiveReader scalars() const { return ArchiveReader(scalars_); }

  int device() const noexcept { return device_; }

  /// Second level of parallelism inside the node (§3.1): chunked loop over
  /// the device's local thread pool, or serial when the device has none.
  void parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain,
                    const std::function<void(std::int64_t, std::int64_t)>& body) const;

 private:
  std::span<void* const> buffers_;
  std::span<const std::byte> scalars_;
  omp::TaskRuntime* pool_;
  int device_;
};

using KernelFn = std::function<void(KernelContext&)>;

/// Process-wide name -> function table. Registration is expected at static
/// initialization (OMPC_REGISTER_KERNEL) or test setup; lookups are
/// lock-protected and cheap relative to any offload operation.
class KernelRegistry {
 public:
  static KernelRegistry& instance();

  /// Registers (or replaces) a kernel under `name`; returns its id.
  KernelId register_kernel(const std::string& name, KernelFn fn);

  KernelId lookup(const std::string& name) const;
  const std::string& name_of(KernelId id) const;

  /// Invokes kernel `id` with the given context. Throws on unknown id.
  void run(KernelId id, KernelContext& ctx) const;

 private:
  KernelRegistry() = default;
  mutable std::mutex mutex_;
  std::vector<std::pair<std::string, KernelFn>> kernels_;  // id-1 indexed
};

/// Registers `fn` under `name` at static-init time and yields its id.
#define OMPC_REGISTER_KERNEL(name, fn)                                  \
  const ::ompc::offload::KernelId name##_kernel_id =                    \
      ::ompc::offload::KernelRegistry::instance().register_kernel(#name, fn)

}  // namespace ompc::offload
