#include "offload/kernel_registry.hpp"

#include "common/check.hpp"
#include "omptask/runtime.hpp"

namespace ompc::offload {

void KernelContext::parallel_for(
    std::int64_t begin, std::int64_t end, std::int64_t grain,
    const std::function<void(std::int64_t, std::int64_t)>& body) const {
  if (pool_ != nullptr) {
    pool_->parallel_for(begin, end, grain, body);
  } else {
    if (begin < end) body(begin, end);
  }
}

KernelRegistry& KernelRegistry::instance() {
  static KernelRegistry registry;
  return registry;
}

KernelId KernelRegistry::register_kernel(const std::string& name,
                                         KernelFn fn) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (std::size_t i = 0; i < kernels_.size(); ++i) {
    if (kernels_[i].first == name) {
      kernels_[i].second = std::move(fn);
      return static_cast<KernelId>(i + 1);
    }
  }
  kernels_.emplace_back(name, std::move(fn));
  return static_cast<KernelId>(kernels_.size());
}

KernelId KernelRegistry::lookup(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (std::size_t i = 0; i < kernels_.size(); ++i) {
    if (kernels_[i].first == name) return static_cast<KernelId>(i + 1);
  }
  return kInvalidKernel;
}

const std::string& KernelRegistry::name_of(KernelId id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  OMPC_CHECK_MSG(id >= 1 && id <= kernels_.size(), "unknown kernel id " << id);
  return kernels_[id - 1].first;
}

void KernelRegistry::run(KernelId id, KernelContext& ctx) const {
  KernelFn fn;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    OMPC_CHECK_MSG(id >= 1 && id <= kernels_.size(),
                   "unknown kernel id " << id);
    fn = kernels_[id - 1].second;
  }
  fn(ctx);  // user code outside the lock
}

}  // namespace ompc::offload
