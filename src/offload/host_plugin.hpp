// Host-fallback device plugin.
//
// Mirrors libomptarget's behaviour when no accelerator exists: the "device"
// is the host itself, allocations are heap blocks, transfers are memcpys
// and kernels run inline on the calling thread (optionally with a local
// thread pool for KernelContext::parallel_for). Used directly by tests and
// as the single-node fallback of the agnostic layer.
#pragma once

#include <memory>
#include <mutex>
#include <unordered_set>

#include "offload/plugin.hpp"

namespace ompc::omp {
class TaskRuntime;
}

namespace ompc::offload {

class HostPlugin final : public DevicePlugin {
 public:
  /// `pool_threads` > 0 gives kernels a parallel_for pool.
  explicit HostPlugin(int pool_threads = 0);
  ~HostPlugin() override;

  std::string name() const override { return "host"; }
  int number_of_devices() const override { return 1; }

  TargetPtr data_alloc(int device, std::size_t size) override;
  void data_delete(int device, TargetPtr ptr) override;
  void data_submit(int device, TargetPtr dst, const void* src,
                   std::size_t size) override;
  void data_retrieve(int device, void* dst, TargetPtr src,
                     std::size_t size) override;
  bool data_exchange(int src_device, TargetPtr src, int dst_device,
                     TargetPtr dst, std::size_t size) override;
  void run_target_region(int device, KernelId kernel,
                         const std::vector<TargetPtr>& buffers,
                         const Bytes& scalars) override;

  /// Outstanding (undeleted) allocations — leak check hook for tests.
  std::size_t live_allocations() const;

 private:
  std::unique_ptr<omp::TaskRuntime> pool_;
  mutable std::mutex mutex_;
  std::unordered_set<TargetPtr> live_;
};

}  // namespace ompc::offload
