#include "offload/host_plugin.hpp"

#include <cstdlib>
#include <cstring>

#include "common/check.hpp"
#include "omptask/runtime.hpp"

namespace ompc::offload {

HostPlugin::HostPlugin(int pool_threads) {
  if (pool_threads > 0)
    pool_ = std::make_unique<omp::TaskRuntime>(pool_threads);
}

HostPlugin::~HostPlugin() {
  // Free anything the user leaked through unbalanced enter/exit data; the
  // tests assert live_allocations() == 0 so leaks still surface.
  std::lock_guard<std::mutex> lock(mutex_);
  for (TargetPtr p : live_) std::free(reinterpret_cast<void*>(p));
}

TargetPtr HostPlugin::data_alloc(int device, std::size_t size) {
  OMPC_CHECK(device == 0);
  void* p = std::malloc(size == 0 ? 1 : size);
  OMPC_CHECK_MSG(p != nullptr, "host plugin allocation of " << size
                                                            << " bytes failed");
  const auto tp = reinterpret_cast<TargetPtr>(p);
  std::lock_guard<std::mutex> lock(mutex_);
  live_.insert(tp);
  return tp;
}

void HostPlugin::data_delete(int device, TargetPtr ptr) {
  OMPC_CHECK(device == 0);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    OMPC_CHECK_MSG(live_.erase(ptr) == 1, "double free of device ptr " << ptr);
  }
  std::free(reinterpret_cast<void*>(ptr));
}

void HostPlugin::data_submit(int device, TargetPtr dst, const void* src,
                             std::size_t size) {
  OMPC_CHECK(device == 0);
  std::memcpy(reinterpret_cast<void*>(dst), src, size);
}

void HostPlugin::data_retrieve(int device, void* dst, TargetPtr src,
                               std::size_t size) {
  OMPC_CHECK(device == 0);
  std::memcpy(dst, reinterpret_cast<void*>(src), size);
}

bool HostPlugin::data_exchange(int src_device, TargetPtr src, int dst_device,
                               TargetPtr dst, std::size_t size) {
  OMPC_CHECK(src_device == 0 && dst_device == 0);
  std::memmove(reinterpret_cast<void*>(dst), reinterpret_cast<void*>(src),
               size);
  return true;
}

void HostPlugin::run_target_region(int device, KernelId kernel,
                                   const std::vector<TargetPtr>& buffers,
                                   const Bytes& scalars) {
  OMPC_CHECK(device == 0);
  std::vector<void*> ptrs;
  ptrs.reserve(buffers.size());
  for (TargetPtr p : buffers) ptrs.push_back(reinterpret_cast<void*>(p));
  KernelContext ctx(ptrs, scalars, pool_.get(), device);
  KernelRegistry::instance().run(kernel, ctx);
}

std::size_t HostPlugin::live_allocations() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return live_.size();
}

}  // namespace ompc::offload
