// Device plugin interface — the miniature of libomptarget's plugin API
// (Figure 2 of the paper). Every offloading backend implements exactly
// these operations; the paper's §4.2 notes the event types of the OMPC
// plugin have "a one-to-one match" with this interface:
//
//   data_alloc / data_delete      — allocation and removal of memory regions
//   data_submit / data_retrieve   — submission and retrieval of data
//   data_exchange                 — indirect forwarding between two devices
//   run_target_region             — execution of a target region
//
// The host-fallback plugin (host_plugin.hpp) executes inline; the OMPC
// cluster plugin (src/core/cluster_plugin.hpp) turns each call into an
// event exchanged over minimpi.
#pragma once

#include <cstdint>
#include <string>

#include "common/serialize.hpp"
#include "offload/kernel_registry.hpp"

namespace ompc::offload {

/// Opaque device address. Plugins define its meaning (the host plugin and
/// the cluster plugin both use it as a pointer value in the owning rank's
/// address space — never dereferenced outside that rank).
using TargetPtr = std::uint64_t;

inline constexpr TargetPtr kNullTargetPtr = 0;

class DevicePlugin {
 public:
  virtual ~DevicePlugin() = default;

  virtual std::string name() const = 0;

  /// Number of devices this plugin exposes (cluster plugin: worker nodes).
  virtual int number_of_devices() const = 0;

  /// Allocates `size` bytes on `device`; returns an opaque device address.
  virtual TargetPtr data_alloc(int device, std::size_t size) = 0;

  /// Frees a device allocation.
  virtual void data_delete(int device, TargetPtr ptr) = 0;

  /// Copies host -> device.
  virtual void data_submit(int device, TargetPtr dst, const void* src,
                           std::size_t size) = 0;

  /// Copies device -> host.
  virtual void data_retrieve(int device, void* dst, TargetPtr src,
                             std::size_t size) = 0;

  /// Copies device -> device without staging through the host. Returns
  /// false if the plugin cannot (caller then bounces through the host).
  virtual bool data_exchange(int src_device, TargetPtr src, int dst_device,
                             TargetPtr dst, std::size_t size) = 0;

  /// Runs a registered kernel on `device`. `buffers` are device addresses
  /// positionally bound to the kernel's buffer parameters; `scalars` is the
  /// serialized firstprivate blob.
  virtual void run_target_region(int device, KernelId kernel,
                                 const std::vector<TargetPtr>& buffers,
                                 const Bytes& scalars) = 0;
};

}  // namespace ompc::offload
