// Utility-layer tests: serialization bounds, statistics, RNG/hash
// determinism, precise sleep and the table printer.
#include <gtest/gtest.h>

#include <sstream>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/serialize.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/time.hpp"

namespace ompc {
namespace {

TEST(Serialize, PodRoundTrip) {
  ArchiveWriter w;
  w.put<int>(-5);
  w.put<double>(1.25);
  w.put<std::uint8_t>(255);
  struct P {
    int a;
    float b;
  } p{3, 4.5f};
  w.put(p);
  ArchiveReader r(w.bytes());
  EXPECT_EQ(r.get<int>(), -5);
  EXPECT_DOUBLE_EQ(r.get<double>(), 1.25);
  EXPECT_EQ(r.get<std::uint8_t>(), 255);
  const P q = r.get<P>();
  EXPECT_EQ(q.a, 3);
  EXPECT_FLOAT_EQ(q.b, 4.5f);
  EXPECT_TRUE(r.exhausted());
}

TEST(Serialize, StringsBlobsVectors) {
  ArchiveWriter w;
  w.put_string("hello");
  w.put_string("");
  Bytes blob{std::byte{1}, std::byte{2}};
  w.put_blob(blob);
  w.put_vector(std::vector<int>{7, 8, 9});
  ArchiveReader r(w.bytes());
  EXPECT_EQ(r.get_string(), "hello");
  EXPECT_EQ(r.get_string(), "");
  EXPECT_EQ(r.get_blob(), blob);
  EXPECT_EQ(r.get_vector<int>(), (std::vector<int>{7, 8, 9}));
}

TEST(Serialize, UnderflowThrows) {
  ArchiveWriter w;
  w.put<int>(1);
  ArchiveReader r(w.bytes());
  r.get<int>();
  EXPECT_THROW(r.get<int>(), CheckError);
}

TEST(Serialize, MalformedLengthPrefixThrows) {
  ArchiveWriter w;
  w.put<std::uint64_t>(1'000'000);  // claims a huge string
  ArchiveReader r(w.bytes());
  EXPECT_THROW(r.get_string(), CheckError);
}

TEST(Serialize, RawBytesWithRemaining) {
  ArchiveWriter w;
  w.put<int>(1);
  const char raw[] = {'x', 'y', 'z'};
  w.put_raw(raw, 3);
  ArchiveReader r(w.bytes());
  r.get<int>();
  EXPECT_EQ(r.remaining(), 3u);
  char out[3];
  r.get_raw(out, 3);
  EXPECT_EQ(out[2], 'z');
}

TEST(Stats, RunningStatsMoments) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 1e-3);  // sample stddev
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(Stats, EmptyAndSingle) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(Stats, SamplePercentiles) {
  SampleStats s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_NEAR(s.median(), 50.5, 1e-9);
  EXPECT_NEAR(s.percentile(0.0), 1.0, 1e-9);
  EXPECT_NEAR(s.percentile(1.0), 100.0, 1e-9);
  EXPECT_NEAR(s.percentile(0.9), 90.1, 1e-9);
}

TEST(Rng, DeterministicPerSeed) {
  XorShift64 a(42), b(42), c(43);
  EXPECT_EQ(a.next(), b.next());
  EXPECT_NE(a.next(), c.next());
}

TEST(Rng, BoundsRespected) {
  XorShift64 rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(10), 10u);
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
  EXPECT_EQ(rng.next_below(0), 0u);
}

TEST(Rng, ZeroSeedIsRemapped) {
  XorShift64 z(0);
  EXPECT_NE(z.next(), 0u);
}

TEST(Hash, Fnv1aKnownProperties) {
  const char a[] = "abc";
  const char b[] = "abd";
  EXPECT_EQ(fnv1a(a, 3), fnv1a(a, 3));
  EXPECT_NE(fnv1a(a, 3), fnv1a(b, 3));
  EXPECT_NE(fnv1a(a, 3), fnv1a(a, 2));
  // Chaining with a seed differs from unchained.
  EXPECT_NE(fnv1a(a, 3, fnv1a(b, 3)), fnv1a(a, 3));
}

TEST(Time, PreciseSleepIsAccurate) {
  const Stopwatch timer;
  precise_sleep_ns(5'000'000);  // 5 ms
  const double ms = timer.elapsed_ms();
  EXPECT_GE(ms, 4.8);
  EXPECT_LE(ms, 30.0);  // loaded-machine upper bound
}

TEST(Time, ZeroAndNegativeSleepReturnImmediately) {
  const Stopwatch timer;
  precise_sleep_ns(0);
  precise_sleep_ns(-100);
  EXPECT_LE(timer.elapsed_ms(), 5.0);
}

TEST(Table, AlignsColumnsAndFormatsNumbers) {
  Table t({"name", "value"});
  t.add_row({"x", Table::num(1.23456, 2)});
  t.add_row({"longer-name", "short"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| name"), std::string::npos);
  EXPECT_NE(out.find("1.23"), std::string::npos);
  EXPECT_NE(out.find("longer-name"), std::string::npos);
  // Header separator present.
  EXPECT_NE(out.find("|--"), std::string::npos);
}

TEST(Table, RaggedRowsRender) {
  Table t({"a"});
  t.add_row({"1", "2", "3"});  // wider than header
  t.add_row({});               // empty row
  std::ostringstream os;
  t.print(os);
  EXPECT_FALSE(os.str().empty());
}

TEST(Check, MacrosThrowWithContext) {
  try {
    OMPC_CHECK_MSG(1 == 2, "custom context " << 42);
    FAIL() << "should have thrown";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("custom context 42"),
              std::string::npos);
  }
}

}  // namespace
}  // namespace ompc
