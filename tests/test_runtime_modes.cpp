// Runtime configuration-space tests: async modes, schedulers, forwarding
// policies, helper-thread ceilings, VCI counts and simulated networks, all
// validated end-to-end through Task Bench checksums.
#include <gtest/gtest.h>

#include "taskbench/kernel.hpp"
#include "taskbench/runners.hpp"

namespace ompc::core {
namespace {

using taskbench::expected_checksum;
using taskbench::Pattern;
using taskbench::run_ompc;
using taskbench::TaskBenchSpec;

TaskBenchSpec spec_of(Pattern p, int steps = 5, int width = 6) {
  TaskBenchSpec s;
  s.pattern = p;
  s.steps = steps;
  s.width = width;
  s.iterations = 0;
  s.output_bytes = 64;
  return s;
}

ClusterOptions base_opts(int workers) {
  ClusterOptions o;
  o.num_workers = workers;
  o.network = {};
  return o;
}

class AsyncModes : public ::testing::TestWithParam<AsyncMode> {};

TEST_P(AsyncModes, StencilValidUnderMode) {
  const TaskBenchSpec s = spec_of(Pattern::Stencil1D);
  ClusterOptions o = base_opts(3);
  o.async_mode = GetParam();
  EXPECT_EQ(run_ompc(s, o).checksum, expected_checksum(s));
}

INSTANTIATE_TEST_SUITE_P(Both, AsyncModes,
                         ::testing::Values(AsyncMode::HelperThreads,
                                           AsyncMode::TwoStep));

class Schedulers : public ::testing::TestWithParam<SchedulerKind> {};

TEST_P(Schedulers, FftValidUnderEveryPolicy) {
  const TaskBenchSpec s = spec_of(Pattern::Fft, 5, 8);
  ClusterOptions o = base_opts(3);
  o.scheduler = GetParam();
  EXPECT_EQ(run_ompc(s, o).checksum, expected_checksum(s));
}

INSTANTIATE_TEST_SUITE_P(All, Schedulers,
                         ::testing::Values(SchedulerKind::Heft,
                                           SchedulerKind::RoundRobin,
                                           SchedulerKind::Random,
                                           SchedulerKind::MinLoad));

TEST(RuntimeModes, ViaHeadForwardingProducesSameResult) {
  const TaskBenchSpec s = spec_of(Pattern::Stencil1D);
  ClusterOptions o = base_opts(3);
  o.forwarding = Forwarding::ViaHead;
  const auto r = run_ompc(s, o);
  EXPECT_EQ(r.checksum, expected_checksum(s));
  EXPECT_EQ(r.stats.exchanges, 0);  // never worker->worker
  EXPECT_GT(r.stats.retrieves, 0);
}

TEST(RuntimeModes, DirectForwardingUsesExchanges) {
  const TaskBenchSpec s = spec_of(Pattern::Stencil1D);
  const auto r = run_ompc(s, base_opts(3));
  EXPECT_EQ(r.checksum, expected_checksum(s));
  EXPECT_GT(r.stats.exchanges, 0);
}

TEST(RuntimeModes, SingleHelperThreadStillCompletes) {
  // One in-flight target region at a time: fully serialized dispatch.
  const TaskBenchSpec s = spec_of(Pattern::Tree, 4, 8);
  ClusterOptions o = base_opts(2);
  o.helper_threads = 1;
  EXPECT_EQ(run_ompc(s, o).checksum, expected_checksum(s));
}

TEST(RuntimeModes, WidthBeyondHelperCeilingCompletes) {
  TaskBenchSpec s = spec_of(Pattern::Trivial, 2, 24);
  ClusterOptions o = base_opts(4);
  o.helper_threads = 4;  // 24 ready tasks, 4 in flight
  EXPECT_EQ(run_ompc(s, o).checksum, expected_checksum(s));
}

TEST(RuntimeModes, SingleVciWorks) {
  const TaskBenchSpec s = spec_of(Pattern::Fft, 4, 4);
  ClusterOptions o = base_opts(2);
  o.vci = 1;
  EXPECT_EQ(run_ompc(s, o).checksum, expected_checksum(s));
}

TEST(RuntimeModes, ManyVcisWork) {
  const TaskBenchSpec s = spec_of(Pattern::Fft, 4, 4);
  ClusterOptions o = base_opts(2);
  o.vci = 16;
  EXPECT_EQ(run_ompc(s, o).checksum, expected_checksum(s));
}

TEST(RuntimeModes, SimulatedNetworkDoesNotChangeResults) {
  const TaskBenchSpec s = spec_of(Pattern::Stencil1D, 4, 6);
  ClusterOptions o = base_opts(3);
  o.network = {10'000, 1.0e9, 4};  // 10 us, 1 GB/s
  const auto r = run_ompc(s, o);
  EXPECT_EQ(r.checksum, expected_checksum(s));
}

TEST(RuntimeModes, SingleWorkerClusterIsCorrect) {
  for (Pattern p :
       {Pattern::Trivial, Pattern::Stencil1D, Pattern::Fft, Pattern::Tree}) {
    const TaskBenchSpec s = spec_of(p, 4, 4);
    EXPECT_EQ(run_ompc(s, base_opts(1)).checksum, expected_checksum(s))
        << taskbench::pattern_name(p);
  }
}

TEST(RuntimeModes, ManyWorkersFewTasks) {
  // More workers than tasks: schedulers must not index out of range and
  // idle workers must shut down cleanly.
  const TaskBenchSpec s = spec_of(Pattern::Trivial, 1, 3);
  EXPECT_EQ(run_ompc(s, base_opts(8)).checksum, expected_checksum(s));
}

TEST(RuntimeModes, BusyKernelModeMatchesSleepChecksum) {
  TaskBenchSpec s = spec_of(Pattern::Stencil1D, 3, 4);
  s.iterations = 10'000;
  s.mode = taskbench::KernelMode::Busy;
  const auto busy = run_ompc(s, base_opts(2));
  s.mode = taskbench::KernelMode::Sleep;
  const auto sleep = run_ompc(s, base_opts(2));
  // The compute mode must never affect the dataflow result.
  EXPECT_EQ(busy.checksum, sleep.checksum);
  EXPECT_EQ(busy.checksum, expected_checksum(s));
}

TEST(RuntimeModes, StatsDifferentiateForwardingPolicies) {
  const TaskBenchSpec s = spec_of(Pattern::Stencil1D, 6, 6);
  ClusterOptions direct = base_opts(3);
  ClusterOptions viahead = base_opts(3);
  viahead.forwarding = Forwarding::ViaHead;
  const auto rd = run_ompc(s, direct);
  const auto rv = run_ompc(s, viahead);
  // ViaHead moves every forwarded buffer twice (retrieve + submit).
  EXPECT_GT(rv.stats.bytes_moved, rd.stats.bytes_moved);
}

TEST(RuntimeModes, LargeGraphSmokesThrough) {
  TaskBenchSpec s = spec_of(Pattern::Fft, 16, 32);
  const auto r = run_ompc(s, base_opts(8));
  EXPECT_EQ(r.checksum, expected_checksum(s));
  EXPECT_EQ(r.stats.target_tasks, 16 * 32);
}

}  // namespace
}  // namespace ompc::core
