// Scheduler tests: cluster graph construction (dependences -> weighted
// edges), the collapsed view, HEFT placement properties and the paper's
// two adaptations, plus the ablation policies.
#include <gtest/gtest.h>

#include <map>

#include "core/heft.hpp"

namespace ompc::core {
namespace {

// Distinct fake addresses for dependence tracking.
const char* addr(int i) {
  static char pool[256];
  return &pool[i];
}

ClusterTask target_task(omp::DepList deps, double cost = 1e-3) {
  ClusterTask t;
  t.type = TaskType::Target;
  t.deps = std::move(deps);
  t.cost_s = cost;
  return t;
}

TEST(ClusterGraph, FlowDependenceMakesEdge) {
  ClusterGraph g([](const void*) { return std::size_t{100}; });
  const int a = g.add_task(target_task({omp::out(addr(0))}));
  const int b = g.add_task(target_task({omp::in(addr(0))}));
  g.build_edges();
  ASSERT_EQ(g.edges().size(), 1u);
  EXPECT_EQ(g.edges()[0].from, a);
  EXPECT_EQ(g.edges()[0].to, b);
  EXPECT_EQ(g.edges()[0].bytes, 100u);
}

TEST(ClusterGraph, ReadersDoNotDependOnEachOther) {
  ClusterGraph g;
  g.add_task(target_task({omp::out(addr(0))}));
  const int r1 = g.add_task(target_task({omp::in(addr(0))}));
  const int r2 = g.add_task(target_task({omp::in(addr(0))}));
  const int w2 = g.add_task(target_task({omp::inout(addr(0))}));
  g.build_edges();
  // r1 and r2 each have 1 pred (the writer); w2 has 3 preds? No: WAR edges
  // from both readers plus flow from writer — but readers_since_write was
  // cleared... writer w2 gets edges from w1 AND r1 AND r2.
  EXPECT_EQ(g.task(r1).preds.size(), 1u);
  EXPECT_EQ(g.task(r2).preds.size(), 1u);
  EXPECT_EQ(g.task(w2).preds.size(), 3u);
}

TEST(ClusterGraph, MultipleDepsSamePairDeduplicateKeepingMaxBytes) {
  std::map<const void*, std::size_t> sizes{{addr(0), 10}, {addr(1), 99}};
  ClusterGraph g([&](const void* p) { return sizes.at(p); });
  const int a =
      g.add_task(target_task({omp::out(addr(0)), omp::out(addr(1))}));
  const int b =
      g.add_task(target_task({omp::in(addr(0)), omp::in(addr(1))}));
  g.build_edges();
  ASSERT_EQ(g.edges().size(), 1u);
  EXPECT_EQ(g.edges()[0].bytes, 99u);
  EXPECT_EQ(g.edge_bytes(a, b), 99u);
}

TEST(ClusterGraph, TopologicalOrderRespectsEdges) {
  ClusterGraph g;
  const int a = g.add_task(target_task({omp::out(addr(0))}));
  const int b = g.add_task(target_task({omp::in(addr(0)), omp::out(addr(1))}));
  const int c = g.add_task(target_task({omp::in(addr(1))}));
  g.build_edges();
  const auto order = g.topological_order();
  ASSERT_EQ(order.size(), 3u);
  std::map<int, std::size_t> pos;
  for (std::size_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
  EXPECT_LT(pos[a], pos[b]);
  EXPECT_LT(pos[b], pos[c]);
}

TEST(ClusterGraph, CollapsedViewSkipsDataTasks) {
  ClusterGraph g([](const void*) { return std::size_t{64}; });
  ClusterTask enter;
  enter.type = TaskType::DataEnter;
  enter.buffer = addr(0);
  enter.deps = {omp::out(addr(0))};
  g.add_task(std::move(enter));
  const int t1 = g.add_task(target_task({omp::inout(addr(0))}));
  ClusterTask exit_task;
  exit_task.type = TaskType::DataExit;
  exit_task.buffer = addr(0);
  exit_task.deps = {omp::inout(addr(0))};
  g.add_task(std::move(exit_task));
  g.build_edges();

  const CollapsedView v = g.collapsed();
  EXPECT_EQ(v.task_ids.size(), 1u);
  EXPECT_EQ(v.task_ids[0], t1);
}

TEST(ClusterGraph, CollapsedViewBridgesThroughDataTasks) {
  // target A -> exit-like data node -> target B must become A -> B.
  ClusterGraph g([](const void*) { return std::size_t{32}; });
  const int a = g.add_task(target_task({omp::out(addr(0))}));
  ClusterTask mover;
  mover.type = TaskType::DataEnter;
  mover.buffer = addr(0);
  mover.deps = {omp::inout(addr(0))};
  g.add_task(std::move(mover));
  const int b = g.add_task(target_task({omp::in(addr(0))}));
  g.build_edges();
  const CollapsedView v = g.collapsed();
  const int av = v.view_index[static_cast<std::size_t>(a)];
  const int bv = v.view_index[static_cast<std::size_t>(b)];
  ASSERT_GE(av, 0);
  ASSERT_GE(bv, 0);
  bool found = false;
  for (const auto& [s, bytes] : v.succs[static_cast<std::size_t>(av)]) {
    if (s == bv) {
      found = true;
      EXPECT_EQ(bytes, 32u);
    }
  }
  EXPECT_TRUE(found);
}

// --- scheduling policies -------------------------------------------------

ClusterGraph chain_graph(int n, std::size_t bytes) {
  ClusterGraph g([bytes](const void*) { return bytes; });
  for (int i = 0; i < n; ++i) {
    g.add_task(target_task({omp::inout(addr(0))}));
  }
  g.build_edges();
  return g;
}

ClusterGraph independent_graph(int n) {
  ClusterGraph g;
  for (int i = 0; i < n; ++i) {
    g.add_task(target_task({omp::inout(addr(i))}));
  }
  g.build_edges();
  return g;
}

TEST(Heft, ChainStaysOnOneWorkerWhenCommIsExpensive) {
  // Communication >> computation: moving the chain between workers would
  // only add transfer time, so HEFT must keep it put.
  ClusterGraph g = chain_graph(10, 1'000'000);
  CostModel cost;
  cost.latency_s = 1e-4;
  cost.per_byte_s = 1e-8;  // 10 ms per edge vs 1 ms per task
  const ScheduleResult r =
      schedule(SchedulerKind::Heft, g, 4, cost, 1e-3);
  for (std::size_t i = 1; i < g.size(); ++i) {
    EXPECT_EQ(r.processor[i], r.processor[0]) << "task " << i << " migrated";
  }
}

TEST(Heft, IndependentTasksSpreadAcrossWorkers) {
  ClusterGraph g = independent_graph(16);
  const ScheduleResult r =
      schedule(SchedulerKind::Heft, g, 4, CostModel{}, 1e-3);
  std::map<int, int> per_worker;
  for (std::size_t i = 0; i < g.size(); ++i) ++per_worker[r.processor[i]];
  EXPECT_EQ(per_worker.size(), 4u);
  for (const auto& [w, count] : per_worker) {
    EXPECT_GE(w, 0);
    EXPECT_EQ(count, 4) << "load imbalance on worker " << w;
  }
}

TEST(Heft, HostTasksPinnedToHead) {
  ClusterGraph g;
  ClusterTask host;
  host.type = TaskType::Host;
  host.host_fn = [] {};
  host.deps = {omp::out(addr(0))};
  g.add_task(std::move(host));
  g.add_task(target_task({omp::in(addr(0))}));
  g.build_edges();
  const ScheduleResult r =
      schedule(SchedulerKind::Heft, g, 3, CostModel{}, 1e-3);
  EXPECT_EQ(r.processor[0], kHeadProc);
  EXPECT_NE(r.processor[1], kHeadProc);
}

TEST(Heft, DataTasksPinnedToConsumerAndProducer) {
  ClusterGraph g([](const void*) { return std::size_t{8}; });
  ClusterTask enter;
  enter.type = TaskType::DataEnter;
  enter.buffer = addr(0);
  enter.deps = {omp::out(addr(0))};
  const int e = g.add_task(std::move(enter));
  const int t = g.add_task(target_task({omp::inout(addr(0))}));
  ClusterTask exit_task;
  exit_task.type = TaskType::DataExit;
  exit_task.buffer = addr(0);
  exit_task.deps = {omp::inout(addr(0))};
  const int x = g.add_task(std::move(exit_task));
  g.build_edges();
  const ScheduleResult r =
      schedule(SchedulerKind::Heft, g, 4, CostModel{}, 1e-3);
  // §4.4 adaptation 2: both data tasks co-scheduled with the target task.
  EXPECT_EQ(r.processor[static_cast<std::size_t>(e)],
            r.processor[static_cast<std::size_t>(t)]);
  EXPECT_EQ(r.processor[static_cast<std::size_t>(x)],
            r.processor[static_cast<std::size_t>(t)]);
}

TEST(Heft, MakespanEstimatePositiveAndBounded) {
  ClusterGraph g = independent_graph(8);
  const ScheduleResult r =
      schedule(SchedulerKind::Heft, g, 2, CostModel{}, 1e-3);
  // 8 tasks x 1 ms on 2 workers: between 4 ms (perfect) and 8 ms (serial).
  EXPECT_GE(r.makespan_estimate_s, 0.004 - 1e-9);
  EXPECT_LE(r.makespan_estimate_s, 0.008 + 1e-9);
}

class SimplePolicies : public ::testing::TestWithParam<SchedulerKind> {};

TEST_P(SimplePolicies, EveryTargetTaskGetsAValidWorker) {
  ClusterGraph g = independent_graph(13);
  const ScheduleResult r = schedule(GetParam(), g, 5, CostModel{}, 1e-3, 42);
  for (std::size_t i = 0; i < g.size(); ++i) {
    EXPECT_GE(r.processor[i], 0);
    EXPECT_LT(r.processor[i], 5);
  }
}

TEST_P(SimplePolicies, SingleWorkerDegenerateCase) {
  ClusterGraph g = chain_graph(5, 10);
  const ScheduleResult r = schedule(GetParam(), g, 1, CostModel{}, 1e-3, 7);
  for (std::size_t i = 0; i < g.size(); ++i) EXPECT_EQ(r.processor[i], 0);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, SimplePolicies,
                         ::testing::Values(SchedulerKind::Heft,
                                           SchedulerKind::RoundRobin,
                                           SchedulerKind::Random,
                                           SchedulerKind::MinLoad));

TEST(SimplePoliciesDetail, RoundRobinStripes) {
  ClusterGraph g = independent_graph(8);
  const ScheduleResult r =
      schedule(SchedulerKind::RoundRobin, g, 4, CostModel{}, 1e-3);
  for (std::size_t i = 0; i < 8; ++i)
    EXPECT_EQ(r.processor[i], static_cast<int>(i % 4));
}

TEST(SimplePoliciesDetail, RandomIsSeedDeterministic) {
  ClusterGraph g1 = independent_graph(20);
  ClusterGraph g2 = independent_graph(20);
  const auto r1 = schedule(SchedulerKind::Random, g1, 4, CostModel{}, 1e-3, 99);
  const auto r2 = schedule(SchedulerKind::Random, g2, 4, CostModel{}, 1e-3, 99);
  EXPECT_EQ(r1.processor, r2.processor);
}

TEST(CostModel, FromNetworkMatchesTransferTime) {
  mpi::NetworkModel net{10'000, 1.0e9, 4};
  const CostModel m = CostModel::from_network(net);
  EXPECT_DOUBLE_EQ(m.latency_s, 1e-5);
  // 1 MB at 1 GB/s = 1 ms + latency.
  EXPECT_NEAR(m.comm_s(1'000'000), 1.01e-3, 1e-9);
}

}  // namespace
}  // namespace ompc::core
