// Worker-local buddy checkpoints (§5 + CheckpointLocality): the snapshot
// data plane lives on the workers, the head keeps metadata — and recovery
// still reproduces bitwise-identical results when the snapshot owner dies
// (restored from its buddy replica), degrades to a clean RecoveryError
// when owner AND buddy die in one checkpoint period, and a death mid-
// capture leaves the previous snapshot generation intact (two-phase
// commit). Also covers composition with Forwarding::ViaHead.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/checkpoint.hpp"
#include "core/fault.hpp"
#include "core/runtime.hpp"
#include "minimpi/mpi.hpp"
#include "offload/kernel_registry.hpp"
#include "taskbench/kernel.hpp"
#include "taskbench/runners.hpp"

namespace ompc {
namespace {

using core::CheckpointLocality;
using core::CheckpointStore;
using core::ClusterOptions;
using core::DataManager;
using core::EventSystem;
using core::RecoveryError;
using core::WorkerMemory;
using taskbench::expected_checksum;
using taskbench::KernelMode;
using taskbench::Pattern;
using taskbench::read_digest;
using taskbench::TaskBenchSpec;

ClusterOptions buddy_opts(int workers) {
  ClusterOptions o;
  o.num_workers = workers;
  o.heartbeat_period_ms = 5;
  o.heartbeat_timeout_ms = 60;
  o.checkpoint_period = 1;
  o.checkpoint_locality = CheckpointLocality::Buddy;
  return o;
}

TaskBenchSpec stepwise_spec(Pattern p) {
  TaskBenchSpec s;
  s.pattern = p;
  s.steps = 4;
  s.width = 8;
  s.iterations = 4'000'000;  // 20 ms sleep tasks: waves outlive detection
  s.output_bytes = 32;
  s.mode = KernelMode::Sleep;
  return s;
}

// --- failure-free: the head sees metadata, not bytes ----------------------

TEST(WorkerLocalCheckpoint, BuddyModeKeepsCaptureBytesOffTheHead) {
  TaskBenchSpec spec = stepwise_spec(Pattern::Stencil1D);
  spec.iterations = 0;  // no compute needed without kills
  spec.output_bytes = 4096;

  ClusterOptions head = buddy_opts(3);
  head.heartbeat_period_ms = 0;
  head.checkpoint_locality = CheckpointLocality::Head;
  ClusterOptions buddy = head;
  buddy.checkpoint_locality = CheckpointLocality::Buddy;

  const auto rh = taskbench::run_ompc_stepwise(spec, head);
  const auto rb = taskbench::run_ompc_stepwise(spec, buddy);
  ASSERT_EQ(rh.checksum, expected_checksum(spec));
  ASSERT_EQ(rb.checksum, expected_checksum(spec));

  // Head mode pulls every worker-resident dirty buffer home per boundary;
  // Buddy mode ships commands only (plus replicas worker->worker).
  EXPECT_GT(rh.stats.checkpoint_head_bytes, 0);
  EXPECT_GT(rb.stats.snapshot_replicas, 0);
  EXPECT_LT(rb.stats.checkpoint_head_bytes,
            rh.stats.checkpoint_head_bytes / 10);
  // Same logical snapshots were taken in both modes.
  EXPECT_EQ(rb.stats.checkpoint_bytes, rh.stats.checkpoint_bytes);
}

// --- owner dies: restore from the buddy, all 4 patterns -------------------

class BuddyRecoveryAcrossPatterns : public ::testing::TestWithParam<Pattern> {
};

TEST_P(BuddyRecoveryAcrossPatterns, KilledSnapshotOwnerChecksumStillMatches) {
  const TaskBenchSpec spec = stepwise_spec(GetParam());
  ClusterOptions opts = buddy_opts(3);
  opts.kills.push_back({2, 30'000'000});  // worker rank 2 dies at 30 ms

  const auto r = taskbench::run_ompc_stepwise(spec, opts);
  EXPECT_EQ(r.checksum, expected_checksum(spec))
      << "buddy-restored run diverged on " << pattern_name(spec.pattern);
  EXPECT_GE(r.stats.recoveries, 1);
  EXPECT_EQ(r.stats.workers_lost, 1);
  EXPECT_GE(r.stats.snapshot_replicas, 1);
  EXPECT_GE(r.stats.replayed_tasks, 1);
}

INSTANTIATE_TEST_SUITE_P(AllPatterns, BuddyRecoveryAcrossPatterns,
                         ::testing::Values(Pattern::Trivial,
                                           Pattern::Stencil1D, Pattern::Fft,
                                           Pattern::Tree),
                         [](const auto& info) {
                           return std::string(pattern_name(info.param));
                         });

// --- owner AND buddy die in one period: clean degradation -----------------

/// buffers[0]: u64 cell. scalars: (sleep_ns). Burns sleep_ns, then += 1.
const offload::KernelId kIncrement =
    offload::KernelRegistry::instance().register_kernel(
        "test_ckpt_local_increment", [](offload::KernelContext& ctx) {
          auto r = ctx.scalars();
          const auto sleep_ns = r.get<std::int64_t>();
          precise_sleep_ns(sleep_ns);
          *ctx.buffer<std::uint64_t>(0) += 1;
        });

TEST(WorkerLocalCheckpoint, OwnerAndBuddyDyingInOnePeriodIsRecoveryError) {
  // One buffer, one 30 ms task per wave: HEFT pins the task to the first
  // worker (rank 1), whose ring buddy is rank 2. Both die at the same
  // instant — any gap between the kills is a race, because recovery from
  // the owner's death fetches the buddy's shadow to the head and the now
  // head-resident entry would survive the buddy's later death. With no
  // window for that hoist, the latest snapshot's owner and buddy are both
  // gone and so is the prior generation's (same pinned placement):
  // recovery must surface a clean RecoveryError — the sole survivor
  // (rank 3) holds no copy.
  ClusterOptions opts = buddy_opts(3);
  opts.kills.push_back({1, 100'000'000});
  opts.kills.push_back({2, 100'000'000});

  std::uint64_t cell = 0;
  const auto body = [&](core::Runtime& rt) {
    rt.enter_data(&cell, sizeof cell);
    for (int w = 0; w < 16; ++w) {
      core::Args args;
      args.buf(&cell).scalar<std::int64_t>(30'000'000);
      rt.target({omp::inout(&cell)}, kIncrement, std::move(args), 30e-3);
      rt.wait_all();
    }
    rt.exit_data(&cell);
  };
  EXPECT_THROW(core::launch(opts, body), RecoveryError);
}

// --- two-phase commit at the unit level -----------------------------------

/// Head-side fixture with direct access to the universe's fault injection:
/// a head rank driving DataManager/CheckpointStore by hand plus `workers`
/// event-system-only worker ranks.
struct MiniCluster {
  explicit MiniCluster(int workers) {
    opts.num_workers = workers;
    opts.network = {};
    opts.checkpoint_locality = CheckpointLocality::Buddy;
  }

  void run(const std::function<void(DataManager&, EventSystem&,
                                    mpi::Universe&)>& body) {
    mpi::UniverseOptions uopts;
    uopts.ranks = opts.ranks();
    uopts.comms = 1 + opts.vci;
    mpi::Universe universe(uopts);
    universe.run([&](mpi::RankContext& ctx) {
      if (ctx.rank() == 0) {
        EventSystem events(ctx, opts, nullptr, nullptr);
        DataManager dm(events, opts);
        body(dm, events, universe);
        try {
          dm.cleanup_all();
        } catch (const core::WorkerDiedError&) {
          // Cleanup against an injected corpse: its memory dies with it.
        }
        events.shutdown_cluster();
      } else {
        WorkerMemory memory(&ctx.universe(), ctx.rank());
        omp::TaskRuntime pool(1);
        EventSystem events(ctx, opts, &memory, &pool);
        events.wait_until_stopped();
      }
    });
  }

  ClusterOptions opts;
};

/// buffers[0]: u64 cell. scalars: (value). Overwrites the cell.
const offload::KernelId kSet =
    offload::KernelRegistry::instance().register_kernel(
        "test_ckpt_local_set", [](offload::KernelContext& ctx) {
          auto r = ctx.scalars();
          *ctx.buffer<std::uint64_t>(0) = r.get<std::uint64_t>();
        });

/// Runs kSet(value) on `worker`'s replica of `cell` and applies the write
/// invalidation, so the worker owns the only (dirty) copy.
void write_on_worker(DataManager& dm, EventSystem& events, mpi::Rank worker,
                     std::uint64_t* cell, std::uint64_t value) {
  const void* args[] = {cell};
  const std::vector<offload::TargetPtr> addrs = dm.prepare_args(worker, args);
  core::ExecuteHeader h;
  h.kernel = kSet;
  h.buffers = {addrs[0]};
  ArchiveWriter w;
  w.put(value);
  h.scalars = w.take();
  events.run(worker, core::EventKind::Execute, h.serialize());
  dm.after_write(worker, {omp::inout(cell)});
}

void kill_and_wait(mpi::Universe& u, mpi::Rank r) {
  u.kill_rank(r, 0);
  while (!u.is_dead(r)) precise_sleep_ns(1'000'000);
}

TEST(WorkerLocalCheckpoint, DeathMidCaptureLeavesPreviousGenerationIntact) {
  // Generation 1 snapshots value 1 (owner rank 1, buddy rank 2). The buddy
  // then dies, so the generation-2 capture aborts mid-snapshot — and the
  // committed generation must still restore value 1 from the owner.
  MiniCluster c(2);
  c.run([](DataManager& dm, EventSystem& events, mpi::Universe& u) {
    std::uint64_t cell = 0;
    dm.register_buffer(&cell, sizeof cell);
    CheckpointStore ckpt(&events, CheckpointLocality::Buddy);
    const mpi::Rank live[] = {1, 2};

    write_on_worker(dm, events, 1, &cell, 1);
    ckpt.capture(dm, 0, live);
    EXPECT_EQ(ckpt.generation(), 1u);
    EXPECT_EQ(ckpt.worker_resident_entries(), 1u);
    EXPECT_EQ(ckpt.stats().snapshot_replicas, 1);

    write_on_worker(dm, events, 1, &cell, 2);
    kill_and_wait(u, 2);  // the buddy dies before the boundary
    EXPECT_THROW(ckpt.capture(dm, 1, live), core::WorkerDiedError);
    EXPECT_EQ(ckpt.generation(), 1u);  // previous generation committed
    EXPECT_EQ(ckpt.wave(), 0);

    dm.purge_rank(2);
    dm.reset_all_to_host();
    ckpt.restore(dm);
    EXPECT_EQ(cell, 1u);  // generation 1, not the aborted generation 2
  });
}

TEST(WorkerLocalCheckpoint, RestoreFallsBackToBuddyWhenOwnerDies) {
  MiniCluster c(2);
  c.run([](DataManager& dm, EventSystem& events, mpi::Universe& u) {
    std::uint64_t cell = 0;
    dm.register_buffer(&cell, sizeof cell);
    CheckpointStore ckpt(&events, CheckpointLocality::Buddy);
    const mpi::Rank live[] = {1, 2};

    write_on_worker(dm, events, 1, &cell, 7);
    ckpt.capture(dm, 0, live);
    EXPECT_EQ(ckpt.worker_resident_entries(), 1u);

    kill_and_wait(u, 1);  // the snapshot owner dies
    dm.purge_rank(1);
    dm.reset_all_to_host();
    ckpt.restore(dm);
    EXPECT_EQ(cell, 7u);  // bitwise-identical, served by the buddy replica

    // The restored entry became head-resident: another restore (or a
    // capture reusing it) no longer depends on any worker.
    EXPECT_EQ(ckpt.worker_resident_entries(), 0u);
    cell = 0;
    ckpt.restore(dm);
    EXPECT_EQ(cell, 7u);
  });
}

TEST(WorkerLocalCheckpoint, SnapshotLostWhenEveryHolderDies) {
  MiniCluster c(2);
  c.run([](DataManager& dm, EventSystem& events, mpi::Universe& u) {
    std::uint64_t cell = 0;
    dm.register_buffer(&cell, sizeof cell);
    CheckpointStore ckpt(&events, CheckpointLocality::Buddy);
    const mpi::Rank live[] = {1, 2};

    write_on_worker(dm, events, 1, &cell, 9);
    ckpt.capture(dm, 0, live);

    kill_and_wait(u, 1);
    kill_and_wait(u, 2);
    dm.purge_rank(1);
    dm.purge_rank(2);
    dm.reset_all_to_host();
    EXPECT_THROW(ckpt.restore(dm), RecoveryError);
  });
}

TEST(WorkerLocalCheckpoint, DoubleKillFallsBackToPriorGeneration) {
  // Generation 1 snapshots value 1 (owner rank 1, buddy rank 2); the write
  // then moves to rank 3, so generation 2 snapshots value 2 with owner
  // rank 3, buddy rank 1. Killing ranks 3 AND 1 voids generation 2 — but
  // generation 1 still has a live holder (the buddy, rank 2), so restore
  // degrades one period instead of failing the launch: value 1 comes
  // back, flagged so the caller replays from the earlier boundary.
  MiniCluster c(3);
  c.run([](DataManager& dm, EventSystem& events, mpi::Universe& u) {
    std::uint64_t cell = 0;
    dm.register_buffer(&cell, sizeof cell);
    CheckpointStore ckpt(&events, CheckpointLocality::Buddy);
    const mpi::Rank live[] = {1, 2, 3};

    write_on_worker(dm, events, 1, &cell, 1);
    ckpt.capture(dm, 0, live);
    write_on_worker(dm, events, 3, &cell, 2);
    ckpt.capture(dm, 1, live);
    EXPECT_EQ(ckpt.generation(), 2u);

    kill_and_wait(u, 3);  // generation 2's owner...
    kill_and_wait(u, 1);  // ...and its buddy
    dm.purge_rank(3);
    dm.purge_rank(1);
    dm.reset_all_to_host();

    ckpt.restore(dm);
    EXPECT_EQ(cell, 1u);  // the prior generation's value
    EXPECT_TRUE(ckpt.last_restore_degraded());
    EXPECT_EQ(ckpt.wave(), 0);  // caller must replay from this boundary
    EXPECT_EQ(ckpt.stats().degraded_restores, 1);
  });
}

TEST(WorkerLocalCheckpoint, SnapshotLossNamesTheUnrecoverableBuffers) {
  // When no generation survives, the error must say exactly which buffers
  // are gone and who held them — the difference between a debuggable
  // failure report and a shrug.
  MiniCluster c(2);
  c.run([](DataManager& dm, EventSystem& events, mpi::Universe& u) {
    std::uint64_t cell = 0;
    dm.register_buffer(&cell, sizeof cell);
    CheckpointStore ckpt(&events, CheckpointLocality::Buddy);
    const mpi::Rank live[] = {1, 2};

    write_on_worker(dm, events, 1, &cell, 9);
    ckpt.capture(dm, 0, live);

    kill_and_wait(u, 1);
    kill_and_wait(u, 2);
    dm.purge_rank(1);
    dm.purge_rank(2);
    dm.reset_all_to_host();
    try {
      ckpt.restore(dm);
      FAIL() << "restore with every holder dead must throw";
    } catch (const RecoveryError& e) {
      const std::string msg = e.what();
      EXPECT_NE(msg.find("unrecoverable buffers"), std::string::npos) << msg;
      EXPECT_NE(msg.find("owner=r1"), std::string::npos) << msg;
      EXPECT_NE(msg.find("buddy=r2"), std::string::npos) << msg;
      EXPECT_NE(msg.find("size=8"), std::string::npos) << msg;
    }
  });
}

TEST(WorkerLocalCheckpoint, CleanEntryWithDeadHoldersIsRecaptured) {
  // A clean buffer's entry normally rides along by reference — but when
  // every holder of its shadow died, reuse would checkpoint a promise
  // nobody can keep. Capture must re-snapshot it from the current freshest
  // copy (the head, after recovery) even though the buffer is clean.
  MiniCluster c(3);
  c.run([](DataManager& dm, EventSystem& events, mpi::Universe& u) {
    std::uint64_t cell = 0;
    dm.register_buffer(&cell, sizeof cell);
    CheckpointStore ckpt(&events, CheckpointLocality::WorkerLocal);
    const mpi::Rank live[] = {1, 2, 3};

    write_on_worker(dm, events, 1, &cell, 5);
    ckpt.capture(dm, 0, live);
    EXPECT_EQ(ckpt.worker_resident_entries(), 1u);

    // WorkerLocal has no buddy: the owner dying strands the snapshot...
    kill_and_wait(u, 1);
    dm.purge_rank(1);
    dm.reset_all_to_host();
    EXPECT_THROW(ckpt.restore(dm), RecoveryError);

    // ...but the next boundary self-heals: the clean entry is re-captured
    // from the head copy (which still holds 0 after reset) instead of
    // reused, and restore works again.
    const mpi::Rank survivors[] = {2, 3};
    cell = 5;  // pretend replay regenerated the value on the head
    ckpt.capture(dm, 1, survivors);
    EXPECT_EQ(ckpt.worker_resident_entries(), 0u);
    cell = 0;
    ckpt.restore(dm);
    EXPECT_EQ(cell, 5u);
  });
}

// --- composition with the ViaHead forwarding ablation ---------------------

TEST(WorkerLocalCheckpoint, BuddyComposesWithViaHeadForwarding) {
  const TaskBenchSpec spec = stepwise_spec(Pattern::Stencil1D);
  ClusterOptions opts = buddy_opts(3);
  opts.forwarding = core::Forwarding::ViaHead;
  opts.kills.push_back({2, 30'000'000});

  const auto r = taskbench::run_ompc_stepwise(spec, opts);
  EXPECT_EQ(r.checksum, expected_checksum(spec));
  EXPECT_GE(r.stats.recoveries, 1);
  EXPECT_EQ(r.stats.workers_lost, 1);
}

}  // namespace
}  // namespace ompc
