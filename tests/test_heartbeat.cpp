// Heartbeat ring tests (§3.1's fault-detection mechanism): healthy rings
// stay quiet, a silenced node is flagged by its successor, and recovery
// detection hooks fire exactly once.
#include <gtest/gtest.h>

#include <atomic>

#include "core/heartbeat.hpp"
#include "minimpi/mpi.hpp"

namespace ompc::core {
namespace {

mpi::UniverseOptions instant(int ranks) {
  mpi::UniverseOptions o;
  o.ranks = ranks;
  return o;
}

TEST(Heartbeat, RingTopologyIndices) {
  mpi::Universe::launch(instant(4), [](mpi::RankContext& ctx) {
    HeartbeatRing ring(ctx.world().dup(), {}, nullptr);
    const int n = 4;
    EXPECT_EQ(ring.successor(), (ctx.rank() + 1) % n);
    EXPECT_EQ(ring.predecessor(), (ctx.rank() - 1 + n) % n);
    ring.stop();
  });
}

TEST(Heartbeat, HealthyRingReportsNoFailures) {
  std::atomic<int> failures{0};
  mpi::Universe::launch(instant(3), [&](mpi::RankContext& ctx) {
    HeartbeatRing::Options opts;
    opts.period_ms = 5;
    opts.timeout_ms = 60;
    HeartbeatRing ring(ctx.world().dup(), opts,
                       [&](mpi::Rank) { failures.fetch_add(1); });
    precise_sleep_ns(150'000'000);  // 150 ms of healthy pinging
    EXPECT_FALSE(ring.predecessor_failed());
    ring.stop();
  });
  EXPECT_EQ(failures.load(), 0);
}

TEST(Heartbeat, SilencedNodeIsDetectedByItsSuccessor) {
  std::atomic<int> flagged_rank{-1};
  std::atomic<int> failures{0};
  mpi::Universe::launch(instant(3), [&](mpi::RankContext& ctx) {
    HeartbeatRing::Options opts;
    opts.period_ms = 5;
    opts.timeout_ms = 50;
    // pause() silences the rank without killing it — disable the
    // liveness confirmation to test the bare ring protocol.
    opts.verify_liveness = false;
    HeartbeatRing ring(ctx.world().dup(), opts, [&](mpi::Rank dead) {
      failures.fetch_add(1);
      flagged_rank.store(dead);
    });
    if (ctx.rank() == 1) {
      precise_sleep_ns(20'000'000);
      ring.pause();  // rank 1 goes silent
    }
    precise_sleep_ns(200'000'000);
    if (ctx.rank() == 2) {
      // Rank 2 monitors rank 1 and must have flagged it.
      EXPECT_TRUE(ring.predecessor_failed());
    }
    ring.stop();
  });
  EXPECT_EQ(failures.load(), 1);  // fired exactly once, by rank 2
  EXPECT_EQ(flagged_rank.load(), 1);
}

TEST(Heartbeat, AdaptiveThresholdTightensOnAQuietRing) {
  // A healthy, punctual ring converges its EWMA-derived miss threshold
  // well below the fixed worst-case timeout — detection speed becomes a
  // property of measured behaviour, not static configuration.
  mpi::Universe::launch(instant(2), [](mpi::RankContext& ctx) {
    HeartbeatRing::Options opts;
    opts.period_ms = 2;
    opts.timeout_ms = 200;
    opts.adaptive = true;
    HeartbeatRing ring(ctx.world().dup(), opts, nullptr);
    precise_sleep_ns(250'000'000);  // ~125 punctual pings
    const std::int64_t threshold = ring.current_threshold_ns();
    EXPECT_LT(threshold, opts.timeout_ms * 1'000'000 / 2)
        << "threshold never tightened below half the fixed timeout";
    // The auto floor (4 periods) holds: no hair-trigger detection.
    EXPECT_GE(threshold, 4 * opts.period_ms * 1'000'000);
    EXPECT_FALSE(ring.predecessor_failed());
    ring.stop();
  });
}

TEST(Heartbeat, AdaptiveThresholdRespectsConfiguredFloor) {
  mpi::Universe::launch(instant(2), [](mpi::RankContext& ctx) {
    HeartbeatRing::Options opts;
    opts.period_ms = 2;
    opts.timeout_ms = 200;
    opts.adaptive = true;
    opts.min_timeout_ms = 75;  // operator override beats the estimate
    HeartbeatRing ring(ctx.world().dup(), opts, nullptr);
    precise_sleep_ns(200'000'000);
    EXPECT_GE(ring.current_threshold_ns(), 75'000'000);
    EXPECT_LE(ring.current_threshold_ns(), 200'000'000);
    ring.stop();
  });
}

TEST(Heartbeat, AdaptiveRingStillDetectsARealDeath) {
  // Tight adaptive thresholds must not change the outcome that matters:
  // an actually-dead neighbour (universe-level kill, liveness confirmed)
  // is flagged, and faster than the fixed timeout would allow.
  std::atomic<int> flagged_rank{-1};
  mpi::UniverseOptions uo = instant(3);
  uo.kills.push_back({1, 60'000'000});  // rank 1 dies at 60 ms
  mpi::Universe u(uo);
  u.run([&](mpi::RankContext& ctx) {
    HeartbeatRing::Options opts;
    opts.period_ms = 5;
    opts.timeout_ms = 100;
    opts.adaptive = true;
    HeartbeatRing ring(ctx.world().dup(), opts, [&](mpi::Rank dead) {
      flagged_rank.store(dead);
    });
    precise_sleep_ns(250'000'000);
    ring.stop();
  });
  EXPECT_EQ(flagged_rank.load(), 1);
}

TEST(Heartbeat, StarvedRingThreadDoesNotDeclareALivePeer) {
  // The false-alarm guard: a rank that goes SILENT (paused) while still
  // alive in the universe is NOT declared dead when liveness verification
  // is on — the miss is treated as scheduler starvation and the adaptive
  // threshold widens instead.
  std::atomic<int> failures{0};
  mpi::Universe::launch(instant(3), [&](mpi::RankContext& ctx) {
    HeartbeatRing::Options opts;
    opts.period_ms = 5;
    opts.timeout_ms = 40;
    opts.adaptive = true;
    HeartbeatRing ring(ctx.world().dup(), opts,
                       [&](mpi::Rank) { failures.fetch_add(1); });
    if (ctx.rank() == 1) {
      precise_sleep_ns(20'000'000);
      ring.pause();  // silent but alive
    }
    precise_sleep_ns(200'000'000);
    EXPECT_FALSE(ring.predecessor_failed());
    ring.stop();
  });
  EXPECT_EQ(failures.load(), 0);
}

TEST(Heartbeat, SingleRankRingIsNoop) {
  mpi::Universe::launch(instant(1), [](mpi::RankContext& ctx) {
    HeartbeatRing ring(ctx.world().dup(), {}, nullptr);
    precise_sleep_ns(30'000'000);
    EXPECT_FALSE(ring.predecessor_failed());
    ring.stop();
  });
}

TEST(Heartbeat, StopIsIdempotent) {
  mpi::Universe::launch(instant(2), [](mpi::RankContext& ctx) {
    HeartbeatRing ring(ctx.world().dup(), {}, nullptr);
    ring.stop();
    ring.stop();  // second stop must be a no-op, destructor a third
  });
  SUCCEED();
}

}  // namespace
}  // namespace ompc::core
