// Heartbeat ring tests (§3.1's fault-detection mechanism): healthy rings
// stay quiet, a silenced node is flagged by its successor, and recovery
// detection hooks fire exactly once.
#include <gtest/gtest.h>

#include <atomic>

#include "core/heartbeat.hpp"
#include "minimpi/mpi.hpp"

namespace ompc::core {
namespace {

mpi::UniverseOptions instant(int ranks) {
  mpi::UniverseOptions o;
  o.ranks = ranks;
  return o;
}

TEST(Heartbeat, RingTopologyIndices) {
  mpi::Universe::launch(instant(4), [](mpi::RankContext& ctx) {
    HeartbeatRing ring(ctx.world().dup(), {}, nullptr);
    const int n = 4;
    EXPECT_EQ(ring.successor(), (ctx.rank() + 1) % n);
    EXPECT_EQ(ring.predecessor(), (ctx.rank() - 1 + n) % n);
    ring.stop();
  });
}

TEST(Heartbeat, HealthyRingReportsNoFailures) {
  std::atomic<int> failures{0};
  mpi::Universe::launch(instant(3), [&](mpi::RankContext& ctx) {
    HeartbeatRing::Options opts;
    opts.period_ms = 5;
    opts.timeout_ms = 60;
    HeartbeatRing ring(ctx.world().dup(), opts,
                       [&](mpi::Rank) { failures.fetch_add(1); });
    precise_sleep_ns(150'000'000);  // 150 ms of healthy pinging
    EXPECT_FALSE(ring.predecessor_failed());
    ring.stop();
  });
  EXPECT_EQ(failures.load(), 0);
}

TEST(Heartbeat, SilencedNodeIsDetectedByItsSuccessor) {
  std::atomic<int> flagged_rank{-1};
  std::atomic<int> failures{0};
  mpi::Universe::launch(instant(3), [&](mpi::RankContext& ctx) {
    HeartbeatRing::Options opts;
    opts.period_ms = 5;
    opts.timeout_ms = 50;
    HeartbeatRing ring(ctx.world().dup(), opts, [&](mpi::Rank dead) {
      failures.fetch_add(1);
      flagged_rank.store(dead);
    });
    if (ctx.rank() == 1) {
      precise_sleep_ns(20'000'000);
      ring.pause();  // rank 1 goes silent
    }
    precise_sleep_ns(200'000'000);
    if (ctx.rank() == 2) {
      // Rank 2 monitors rank 1 and must have flagged it.
      EXPECT_TRUE(ring.predecessor_failed());
    }
    ring.stop();
  });
  EXPECT_EQ(failures.load(), 1);  // fired exactly once, by rank 2
  EXPECT_EQ(flagged_rank.load(), 1);
}

TEST(Heartbeat, SingleRankRingIsNoop) {
  mpi::Universe::launch(instant(1), [](mpi::RankContext& ctx) {
    HeartbeatRing ring(ctx.world().dup(), {}, nullptr);
    precise_sleep_ns(30'000'000);
    EXPECT_FALSE(ring.predecessor_failed());
    ring.stop();
  });
}

TEST(Heartbeat, StopIsIdempotent) {
  mpi::Universe::launch(instant(2), [](mpi::RankContext& ctx) {
    HeartbeatRing ring(ctx.world().dup(), {}, nullptr);
    ring.stop();
    ring.stop();  // second stop must be a no-op, destructor a third
  });
  SUCCEED();
}

}  // namespace
}  // namespace ompc::core
