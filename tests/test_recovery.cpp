// Fault-tolerant wave execution (paper §5): deterministic fault injection
// kills a worker mid-wave; the heartbeat ring detects it, the head rolls
// the cluster back to the last wave-boundary checkpoint, re-ranks the
// survivors and re-executes the lost sub-graph — and the results are
// bitwise identical to a failure-free run. With checkpointing disabled the
// same failure must surface as a clean RecoveryError, never a hang.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>

#include "core/fault.hpp"
#include "core/runtime.hpp"
#include "minimpi/mpi.hpp"
#include "taskbench/kernel.hpp"
#include "taskbench/runners.hpp"

namespace ompc {
namespace {

using core::AsyncMode;
using core::ClusterOptions;
using core::RecoveryError;
using taskbench::expected_checksum;
using taskbench::KernelMode;
using taskbench::Pattern;
using taskbench::run_ompc;
using taskbench::TaskBenchSpec;

// --- minimpi-level fault injection --------------------------------------

TEST(FaultInjection, KilledRankUnblocksAndItsTrafficIsDropped) {
  mpi::UniverseOptions o;
  o.ranks = 2;
  o.kills.push_back({1, 10'000'000});  // rank 1 dies at 10 ms
  std::atomic<bool> victim_unblocked{false};

  mpi::Universe u(o);
  u.run([&](mpi::RankContext& ctx) {
    if (ctx.rank() == 1) {
      // Blocked receive that no one will ever satisfy: the kill must
      // unwind it (RankKilledError is swallowed by Universe::run).
      std::uint64_t v = 0;
      ctx.world().recv(&v, sizeof v, 0, /*tag=*/3);
      victim_unblocked.store(true);  // unreachable
    } else {
      precise_sleep_ns(40'000'000);
      EXPECT_TRUE(u.is_dead(1));
      // Sends to a corpse vanish instead of erroring (fire and forget).
      const std::uint64_t v = 42;
      ctx.world().send(&v, sizeof v, 1, /*tag=*/4);
    }
  });
  EXPECT_FALSE(victim_unblocked.load());
}

TEST(FaultInjection, KillIsIdempotentAndQueryable) {
  mpi::UniverseOptions o;
  o.ranks = 2;
  mpi::Universe u(o);
  u.run([&](mpi::RankContext& ctx) {
    if (ctx.rank() == 0) {
      u.kill_rank(1, 0);
      u.kill_rank(1, 0);  // double kill is a no-op
      precise_sleep_ns(20'000'000);
      EXPECT_TRUE(u.is_dead(1));
      EXPECT_FALSE(u.is_dead(0));
    } else {
      // Spin until poisoned; iprobe on a dead rank stays quiet (nullopt)
      // rather than throwing, so detection-style polling loops survive.
      while (!u.is_dead(1)) precise_sleep_ns(1'000'000);
      EXPECT_FALSE(ctx.world().iprobe(0, 5).has_value());
    }
  });
}

// --- end-to-end recovery over Task Bench --------------------------------

ClusterOptions recovery_opts(int workers) {
  ClusterOptions o;
  o.num_workers = workers;
  o.heartbeat_period_ms = 5;
  o.heartbeat_timeout_ms = 60;
  o.checkpoint_period = 1;
  return o;
}

TaskBenchSpec recovery_spec(Pattern p) {
  TaskBenchSpec s;
  s.pattern = p;
  s.steps = 4;
  s.width = 8;
  // Sleep-mode compute long enough that the wave is still executing when
  // the kill fires and the ring detects it (kill 30 ms + timeout 60 ms).
  s.iterations = 4'000'000;  // 20 ms per task
  s.output_bytes = 32;
  s.mode = KernelMode::Sleep;
  return s;
}

class RecoveryAcrossPatterns : public ::testing::TestWithParam<Pattern> {};

TEST_P(RecoveryAcrossPatterns, KilledWorkerMidWaveChecksumStillMatches) {
  const TaskBenchSpec spec = recovery_spec(GetParam());
  ClusterOptions opts = recovery_opts(3);
  opts.kills.push_back({2, 30'000'000});  // worker rank 2 dies at 30 ms

  const auto r = run_ompc(spec, opts);
  EXPECT_EQ(r.checksum, expected_checksum(spec))
      << "recovered run diverged on " << pattern_name(spec.pattern);
  EXPECT_GE(r.stats.recoveries, 1);
  EXPECT_EQ(r.stats.workers_lost, 1);
  EXPECT_GE(r.stats.checkpoints, 1);
  EXPECT_GE(r.stats.replayed_tasks, 1);
}

INSTANTIATE_TEST_SUITE_P(AllPatterns, RecoveryAcrossPatterns,
                         ::testing::Values(Pattern::Trivial,
                                           Pattern::Stencil1D, Pattern::Fft,
                                           Pattern::Tree),
                         [](const auto& info) {
                           return std::string(pattern_name(info.param));
                         });

TEST(Recovery, CheckpointingDisabledRaisesRecoveryErrorNotHang) {
  TaskBenchSpec spec = recovery_spec(Pattern::Stencil1D);
  spec.iterations = 8'000'000;  // 40 ms per task: outlive detection for sure
  ClusterOptions opts = recovery_opts(2);
  opts.checkpoint_period = 0;  // fault tolerance off
  opts.kills.push_back({1, 20'000'000});

  EXPECT_THROW(run_ompc(spec, opts), RecoveryError);
}

TEST(Recovery, SurvivorsAreReRankedOntoRemainingWorkers) {
  const TaskBenchSpec spec = recovery_spec(Pattern::Stencil1D);
  ClusterOptions opts = recovery_opts(3);
  opts.kills.push_back({1, 30'000'000});  // kill the FIRST worker rank

  const auto r = run_ompc(spec, opts);
  EXPECT_EQ(r.checksum, expected_checksum(spec));
  EXPECT_GE(r.stats.recoveries, 1);
}

TEST(Recovery, HeadDetectsItsOwnRingPredecessorDying) {
  // The last rank is the head's ring predecessor: its death is detected by
  // the head's own HeartbeatRing rather than via a worker report.
  const TaskBenchSpec spec = recovery_spec(Pattern::Tree);
  ClusterOptions opts = recovery_opts(3);
  opts.kills.push_back({3, 30'000'000});  // rank 3 = last worker

  const auto r = run_ompc(spec, opts);
  EXPECT_EQ(r.checksum, expected_checksum(spec));
  EXPECT_GE(r.stats.recoveries, 1);
  EXPECT_EQ(r.stats.workers_lost, 1);
}

TEST(Recovery, CascadingFailureWithDeadRingSuccessorStillRecovers) {
  // Kill rank 3 first, then rank 2 — whose ring successor (3) is already a
  // corpse, so no ring member can flag it. The head's failure monitor must
  // catch it through the post-failure liveness fallback; the run finishes
  // on the sole survivor with correct results.
  TaskBenchSpec spec = recovery_spec(Pattern::Stencil1D);
  spec.iterations = 6'000'000;  // 30 ms tasks: outlive both detections
  ClusterOptions opts = recovery_opts(3);
  opts.kills.push_back({3, 30'000'000});
  opts.kills.push_back({2, 150'000'000});

  const auto r = run_ompc(spec, opts);
  EXPECT_EQ(r.checksum, expected_checksum(spec));
  EXPECT_GE(r.stats.recoveries, 2);
  EXPECT_EQ(r.stats.workers_lost, 2);
}

TEST(Recovery, TwoStepDispatchKilledWorkerMidWaveStillRecovers) {
  // ROADMAP "TwoStep × recovery" gap: under AsyncMode::TwoStep the
  // in-flight pool scales with the cluster, widening the abort window when
  // a worker dies mid-wave — many more helper jobs unwind with
  // WorkerDiedError at once. Recovery must still converge to the
  // sequential oracle's checksums.
  const TaskBenchSpec spec = recovery_spec(Pattern::Stencil1D);
  ClusterOptions opts = recovery_opts(3);
  opts.async_mode = AsyncMode::TwoStep;
  opts.kills.push_back({2, 30'000'000});

  const auto r = run_ompc(spec, opts);
  EXPECT_EQ(r.checksum, expected_checksum(spec));
  EXPECT_GE(r.stats.recoveries, 1);
  EXPECT_EQ(r.stats.workers_lost, 1);
  EXPECT_GE(r.stats.replayed_tasks, 1);
}

TEST(Recovery, TwoStepWideTrivialWaveRecoversAcrossLargeInFlightPool) {
  // Wide independent wave (width 16 over 3 workers) so the TwoStep pool
  // genuinely holds many regions in flight at the moment of death.
  TaskBenchSpec spec = recovery_spec(Pattern::Trivial);
  spec.width = 16;
  ClusterOptions opts = recovery_opts(3);
  opts.async_mode = AsyncMode::TwoStep;
  opts.kills.push_back({1, 30'000'000});

  const auto r = run_ompc(spec, opts);
  EXPECT_EQ(r.checksum, expected_checksum(spec));
  EXPECT_GE(r.stats.recoveries, 1);
}

TEST(Recovery, FailureFreeRunWithFaultToleranceOnIsUnaffected) {
  // Checkpointing on, nobody dies: results identical, zero recoveries, and
  // the checkpoint actually captured the program's buffers.
  TaskBenchSpec spec = recovery_spec(Pattern::Fft);
  spec.iterations = 0;  // no need for long waves here
  const ClusterOptions opts = recovery_opts(2);

  const auto r = run_ompc(spec, opts);
  EXPECT_EQ(r.checksum, expected_checksum(spec));
  EXPECT_EQ(r.stats.recoveries, 0);
  EXPECT_EQ(r.stats.workers_lost, 0);
  EXPECT_EQ(r.stats.checkpoints, 1);  // one wave, one boundary snapshot
  // 2 rows x 8 columns x 32 B
  EXPECT_EQ(r.stats.checkpoint_bytes, 2 * 8 * 32);
}

}  // namespace
}  // namespace ompc
