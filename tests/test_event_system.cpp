// Direct tests of the §4.2 event system: every event kind, tag isolation,
// concurrency, and clean shutdown.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "core/event_system.hpp"

namespace ompc::core {
namespace {

const offload::KernelId kStamp =
    offload::KernelRegistry::instance().register_kernel(
        "event_test_stamp", [](offload::KernelContext& ctx) {
          auto r = ctx.scalars();
          const auto v = r.get<std::uint64_t>();
          *ctx.buffer<std::uint64_t>(0) = v;
        });

/// Boots a head + N workers cluster and runs `body` on the head.
void with_cluster(int workers, const std::function<void(EventSystem&)>& body,
                  ClusterOptions opts = {}) {
  opts.num_workers = workers;
  opts.network = {};
  mpi::UniverseOptions uopts;
  uopts.ranks = opts.ranks();
  uopts.comms = 1 + opts.vci;
  mpi::Universe universe(uopts);
  universe.run([&](mpi::RankContext& ctx) {
    if (ctx.rank() == 0) {
      EventSystem events(ctx, opts, nullptr, nullptr);
      body(events);
      events.shutdown_cluster();
    } else {
      WorkerMemory memory(&ctx.universe(), ctx.rank());
      omp::TaskRuntime pool(1);
      EventSystem events(ctx, opts, &memory, &pool);
      events.wait_until_stopped();
      EXPECT_EQ(memory.live(), 0u) << "worker leaked device memory";
    }
  });
}

offload::TargetPtr alloc_on(EventSystem& es, mpi::Rank w, std::size_t size) {
  ArchiveWriter h;
  h.put(AllocHeader{size});
  const Bytes reply = es.run(w, EventKind::Alloc, h.take());
  ArchiveReader r(reply);
  return r.get<offload::TargetPtr>();
}

void delete_on(EventSystem& es, mpi::Rank w, offload::TargetPtr p) {
  ArchiveWriter h;
  h.put(DeleteHeader{p});
  es.run(w, EventKind::Delete, h.take());
}

TEST(EventSystem, AllocReturnsDistinctAddresses) {
  with_cluster(1, [](EventSystem& es) {
    const auto a = alloc_on(es, 1, 128);
    const auto b = alloc_on(es, 1, 128);
    EXPECT_NE(a, 0u);
    EXPECT_NE(b, 0u);
    EXPECT_NE(a, b);
    delete_on(es, 1, a);
    delete_on(es, 1, b);
  });
}

TEST(EventSystem, SubmitThenRetrieveRoundTrips) {
  with_cluster(1, [](EventSystem& es) {
    const std::size_t n = 1024;
    const auto ptr = alloc_on(es, 1, n);
    Bytes payload(n);
    for (std::size_t i = 0; i < n; ++i)
      payload[i] = static_cast<std::byte>(i & 0xff);
    ArchiveWriter sh;
    sh.put(SubmitHeader{ptr, n});
    es.run(1, EventKind::Submit, sh.take(), Bytes(payload));

    Bytes back(n);
    es.start_retrieve(1, ptr, back.data(), n)->wait();
    EXPECT_EQ(back, payload);
    delete_on(es, 1, ptr);
  });
}

TEST(EventSystem, ExchangeForwardsWorkerToWorker) {
  with_cluster(2, [](EventSystem& es) {
    const std::size_t n = 512;
    const auto src = alloc_on(es, 1, n);
    const auto dst = alloc_on(es, 2, n);
    Bytes payload(n, std::byte{0x5A});
    ArchiveWriter sh;
    sh.put(SubmitHeader{src, n});
    es.run(1, EventKind::Submit, sh.take(), Bytes(payload));

    // Head commands the forward; data flows 1 -> 2 directly.
    const mpi::Tag data_tag = es.allocate_tag();
    ArchiveWriter rh;
    rh.put(ExchangeRecvHeader{dst, n, 1, data_tag});
    auto recv_ev = es.start(2, EventKind::ExchangeRecv, rh.take());
    ArchiveWriter th;
    th.put(ExchangeSendHeader{src, n, 2, data_tag});
    auto send_ev = es.start(1, EventKind::ExchangeSend, th.take());
    send_ev->wait();
    recv_ev->wait();

    Bytes back(n);
    es.start_retrieve(2, dst, back.data(), n)->wait();
    EXPECT_EQ(back, payload);
    delete_on(es, 1, src);
    delete_on(es, 2, dst);
  });
}

TEST(EventSystem, ExecuteRunsRegisteredKernel) {
  with_cluster(1, [](EventSystem& es) {
    const auto ptr = alloc_on(es, 1, sizeof(std::uint64_t));
    ExecuteHeader h;
    h.kernel = kStamp;
    h.buffers = {ptr};
    ArchiveWriter scalars;
    scalars.put<std::uint64_t>(0xDEADBEEF);
    h.scalars = scalars.take();
    es.run(1, EventKind::Execute, h.serialize());

    std::uint64_t out = 0;
    es.start_retrieve(1, ptr, &out, sizeof out)->wait();
    EXPECT_EQ(out, 0xDEADBEEFu);
    delete_on(es, 1, ptr);
  });
}

TEST(EventSystem, ManyConcurrentEventsFromManyThreads) {
  with_cluster(3, [](EventSystem& es) {
    constexpr int kThreads = 8;
    constexpr int kPerThread = 25;
    std::vector<std::thread> threads;
    std::atomic<int> ok{0};
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        const mpi::Rank w = 1 + (t % 3);
        for (int i = 0; i < kPerThread; ++i) {
          const std::uint64_t v =
              (static_cast<std::uint64_t>(t) << 16) | static_cast<unsigned>(i);
          const auto ptr = alloc_on(es, w, sizeof v);
          ArchiveWriter sh;
          sh.put(SubmitHeader{ptr, sizeof v});
          Bytes payload(sizeof v);
          std::memcpy(payload.data(), &v, sizeof v);
          es.run(w, EventKind::Submit, sh.take(), std::move(payload));
          std::uint64_t back = 0;
          es.start_retrieve(w, ptr, &back, sizeof back)->wait();
          if (back == v) ok.fetch_add(1);
          delete_on(es, w, ptr);
        }
      });
    }
    for (auto& th : threads) th.join();
    EXPECT_EQ(ok.load(), kThreads * kPerThread);
  });
}

TEST(EventSystem, StatsCountEvents) {
  with_cluster(1, [](EventSystem& es) {
    const auto before = es.stats().originated.load();
    const auto p = alloc_on(es, 1, 8);
    delete_on(es, 1, p);
    EXPECT_EQ(es.stats().originated.load(), before + 2);
  });
}

TEST(EventSystem, TagAllocationIsUniqueAcrossThreads) {
  with_cluster(1, [](EventSystem& es) {
    constexpr int kThreads = 4;
    constexpr int kEach = 500;
    std::vector<std::vector<mpi::Tag>> tags(kThreads);
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        for (int i = 0; i < kEach; ++i) tags[t].push_back(es.allocate_tag());
      });
    }
    for (auto& th : threads) th.join();
    std::set<mpi::Tag> all;
    for (const auto& v : tags)
      for (mpi::Tag tag : v) EXPECT_TRUE(all.insert(tag).second);
    EXPECT_EQ(all.size(), static_cast<std::size_t>(kThreads * kEach));
  });
}

TEST(EventSystem, CleanShutdownWithIdleWorkers) {
  // No events at all: shutdown alone must terminate every rank.
  with_cluster(4, [](EventSystem&) {});
  SUCCEED();
}

class EventSystemHandlers : public ::testing::TestWithParam<int> {};

TEST_P(EventSystemHandlers, PipelinedSubmitsUnderAnyHandlerCount) {
  ClusterOptions opts;
  opts.handler_threads = GetParam();
  with_cluster(
      2,
      [](EventSystem& es) {
        // Issue several submits before collecting: exercises pending-I/O
        // re-enqueueing when handlers < in-flight events.
        constexpr int kN = 8;
        std::vector<offload::TargetPtr> ptrs;
        std::vector<OriginEventPtr> pending;
        for (int i = 0; i < kN; ++i) {
          const mpi::Rank w = 1 + (i % 2);
          ptrs.push_back(alloc_on(es, w, 64));
          ArchiveWriter sh;
          sh.put(SubmitHeader{ptrs.back(), 64});
          pending.push_back(es.start(w, EventKind::Submit, sh.take(),
                                     Bytes(64, std::byte{char(i)})));
        }
        for (auto& ev : pending) ev->wait();
        for (int i = 0; i < kN; ++i) {
          Bytes back(64);
          const mpi::Rank w = 1 + (i % 2);
          es.start_retrieve(w, ptrs[static_cast<std::size_t>(i)], back.data(), 64)
              ->wait();
          EXPECT_EQ(back[0], std::byte{char(i)});
          delete_on(es, w, ptrs[static_cast<std::size_t>(i)]);
        }
      },
      opts);
}

INSTANTIATE_TEST_SUITE_P(HandlerCounts, EventSystemHandlers,
                         ::testing::Values(1, 2, 4));

}  // namespace
}  // namespace ompc::core
