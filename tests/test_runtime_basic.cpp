// End-to-end tests of the OMPC runtime facade: offload round trips, depend
// chains, write invalidation and multi-wave execution.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "core/runtime.hpp"

namespace ompc::core {
namespace {

using offload::KernelContext;
using offload::KernelRegistry;

// Kernels used across the runtime tests. Registered once; ids are stable
// within the process.
const offload::KernelId kScaleAdd = KernelRegistry::instance().register_kernel(
    "test_scale_add", [](KernelContext& ctx) {
      auto* data = ctx.buffer<double>(0);
      auto r = ctx.scalars();
      const auto n = r.get<std::uint64_t>();
      const auto scale = r.get<double>();
      const auto add = r.get<double>();
      for (std::uint64_t i = 0; i < n; ++i) data[i] = data[i] * scale + add;
    });

const offload::KernelId kSum = KernelRegistry::instance().register_kernel(
    "test_sum", [](KernelContext& ctx) {
      const auto* src = ctx.buffer<double>(0);
      auto* dst = ctx.buffer<double>(1);
      auto r = ctx.scalars();
      const auto n = r.get<std::uint64_t>();
      double total = 0.0;
      for (std::uint64_t i = 0; i < n; ++i) total += src[i];
      dst[0] = total;
    });

ClusterOptions small_cluster(int workers) {
  ClusterOptions o;
  o.num_workers = workers;
  o.helper_threads = 8;
  o.network = {};  // instant network: unit tests run at memory speed
  return o;
}

TEST(RuntimeBasic, RoundTripSingleTarget) {
  std::vector<double> a(128);
  std::iota(a.begin(), a.end(), 0.0);

  launch(small_cluster(2), [&](Runtime& rt) {
    rt.enter_data(a.data(), a.size() * sizeof(double));
    rt.target({omp::inout(a.data())}, kScaleAdd,
              Args().buf(a.data()).scalar<std::uint64_t>(a.size())
                  .scalar(2.0).scalar(1.0));
    rt.exit_data(a.data());
  });

  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i], static_cast<double>(i) * 2.0 + 1.0) << "i=" << i;
  }
}

TEST(RuntimeBasic, ChainOfDependentTargets) {
  std::vector<double> a(64, 1.0);

  launch(small_cluster(3), [&](Runtime& rt) {
    rt.enter_data(a.data(), a.size() * sizeof(double));
    for (int step = 0; step < 5; ++step) {
      rt.target({omp::inout(a.data())}, kScaleAdd,
                Args().buf(a.data()).scalar<std::uint64_t>(a.size())
                    .scalar(2.0).scalar(0.0));
    }
    rt.exit_data(a.data());
  });

  for (double v : a) EXPECT_DOUBLE_EQ(v, 32.0);  // 1 * 2^5
}

TEST(RuntimeBasic, ProducerConsumerAcrossBuffers) {
  std::vector<double> src(100);
  std::iota(src.begin(), src.end(), 1.0);
  std::vector<double> dst(1, 0.0);
  const double expect = std::accumulate(src.begin(), src.end(), 0.0);

  launch(small_cluster(2), [&](Runtime& rt) {
    rt.enter_data(src.data(), src.size() * sizeof(double));
    rt.enter_data(dst.data(), sizeof(double));
    rt.target({omp::inout(src.data())}, kScaleAdd,
              Args().buf(src.data()).scalar<std::uint64_t>(src.size())
                  .scalar(1.0).scalar(0.0));
    rt.target({omp::in(src.data()), omp::inout(dst.data())}, kSum,
              Args().buf(src.data()).buf(dst.data())
                  .scalar<std::uint64_t>(src.size()));
    rt.exit_data(dst.data());
    rt.exit_data(src.data());
  });

  EXPECT_DOUBLE_EQ(dst[0], expect);
}

TEST(RuntimeBasic, MultipleWavesReuseBuffers) {
  std::vector<double> a(32, 1.0);

  launch(small_cluster(2), [&](Runtime& rt) {
    rt.enter_data(a.data(), a.size() * sizeof(double));
    rt.target({omp::inout(a.data())}, kScaleAdd,
              Args().buf(a.data()).scalar<std::uint64_t>(a.size())
                  .scalar(3.0).scalar(0.0));
    rt.wait_all();  // wave 1

    rt.target({omp::inout(a.data())}, kScaleAdd,
              Args().buf(a.data()).scalar<std::uint64_t>(a.size())
                  .scalar(0.0).scalar(7.0));
    rt.exit_data(a.data());
    rt.wait_all();  // wave 2

    EXPECT_EQ(rt.stats().waves, 2);
  });

  for (double v : a) EXPECT_DOUBLE_EQ(v, 7.0);
}

TEST(RuntimeBasic, HostTaskRunsOnHeadAndOrders) {
  std::vector<double> a(16, 2.0);
  bool host_ran = false;

  launch(small_cluster(2), [&](Runtime& rt) {
    rt.enter_data(a.data(), a.size() * sizeof(double));
    rt.target({omp::inout(a.data())}, kScaleAdd,
              Args().buf(a.data()).scalar<std::uint64_t>(a.size())
                  .scalar(2.0).scalar(0.0));
    rt.exit_data(a.data());
    // Host task ordered after the exit-data by its dependence.
    rt.host_task([&] { host_ran = a[0] == 4.0; }, {omp::in(a.data())});
  });

  EXPECT_TRUE(host_ran);
}

TEST(RuntimeBasic, ManyIndependentTasksAllExecute) {
  constexpr int kTasks = 40;
  std::vector<std::vector<double>> bufs(kTasks, std::vector<double>(8, 1.0));

  const RuntimeStats stats = launch(small_cluster(4), [&](Runtime& rt) {
    for (auto& b : bufs) {
      rt.enter_data(b.data(), b.size() * sizeof(double));
      rt.target({omp::inout(b.data())}, kScaleAdd,
                Args().buf(b.data()).scalar<std::uint64_t>(b.size())
                    .scalar(5.0).scalar(0.0));
      rt.exit_data(b.data());
    }
  });

  EXPECT_EQ(stats.target_tasks, kTasks);
  for (const auto& b : bufs) {
    for (double v : b) EXPECT_DOUBLE_EQ(v, 5.0);
  }
}

TEST(RuntimeBasic, StatsAreCoherent) {
  std::vector<double> a(16, 1.0);
  const RuntimeStats stats = launch(small_cluster(2), [&](Runtime& rt) {
    rt.enter_data(a.data(), a.size() * sizeof(double));
    rt.target({omp::inout(a.data())}, kScaleAdd,
              Args().buf(a.data()).scalar<std::uint64_t>(a.size())
                  .scalar(1.0).scalar(1.0));
    rt.exit_data(a.data());
  });

  EXPECT_EQ(stats.waves, 1);
  EXPECT_EQ(stats.target_tasks, 1);
  EXPECT_EQ(stats.data_tasks, 2);
  EXPECT_GT(stats.events_originated, 0);
  EXPECT_GT(stats.bytes_moved, 0);
  EXPECT_GT(stats.wall_ns, 0);
  EXPECT_GE(stats.startup_ns, 0);
  EXPECT_GT(stats.messages_sent, 0);
}

TEST(RuntimeBasic, TargetWithoutEnterFails) {
  std::vector<double> a(4, 0.0);
  EXPECT_THROW(
      launch(small_cluster(1),
             [&](Runtime& rt) {
               rt.target({omp::inout(a.data())}, kScaleAdd,
                         Args().buf(a.data()).scalar<std::uint64_t>(4)
                             .scalar(1.0).scalar(0.0));
             }),
      CheckError);
}

TEST(RuntimeBasic, BufferArgMissingFromDependsFails) {
  std::vector<double> a(4, 0.0);
  EXPECT_THROW(
      launch(small_cluster(1),
             [&](Runtime& rt) {
               rt.enter_data(a.data(), a.size() * sizeof(double));
               rt.target({}, kScaleAdd,
                         Args().buf(a.data()).scalar<std::uint64_t>(4)
                             .scalar(1.0).scalar(0.0));
             }),
      CheckError);
}

}  // namespace
}  // namespace ompc::core
