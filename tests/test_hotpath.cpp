// Head hot-path invariants (persistent pools, zero-copy data plane,
// dirty-set checkpoints) — asserted through counters, not eyeballed:
//  - the Submit/Retrieve/Exchange paths each perform exactly ONE payload
//    byte-copy (the delivery fill), tracked by mpi::payload_copies();
//  - pools are created once per launch, so steady-state waves spawn zero
//    threads (RuntimeStats::threads_spawned is wave-count-independent);
//  - checkpoint capture copies only the dirty subset and keeps clean
//    entries by reference.
#include <gtest/gtest.h>

#include <cstring>
#include <thread>

#include "core/checkpoint.hpp"
#include "core/data_manager.hpp"
#include "core/helper_pool.hpp"
#include "core/runtime.hpp"
#include "minimpi/mpi.hpp"
#include "offload/kernel_registry.hpp"

namespace ompc::core {
namespace {

// The exact copy counts below assume the zero-copy in-process conduit. The
// shm conduit genuinely pays two extra copies per cross-rank transfer
// (ring staging + reassembly), so under OMPC_CONDUIT=shm these counting
// tests do not apply — the invariant they pin is a property of the
// in-process data plane, not of every transport.
#define OMPC_SKIP_IF_NOT_ZERO_COPY_CONDUIT()                                 \
  do {                                                                       \
    if (mpi::resolve_conduit_kind(mpi::ConduitKind::InProcess) !=            \
        mpi::ConduitKind::InProcess)                                         \
      GTEST_SKIP() << "copy counts assume the zero-copy inprocess conduit";  \
  } while (0)

// --- Payload semantics ---------------------------------------------------

TEST(Payload, OwnedBytesAreMovedNotCopied) {
  const std::int64_t before = mpi::payload_copies();
  Bytes b(1024, std::byte{7});
  const std::byte* heap = b.data();
  mpi::Payload p(std::move(b));
  EXPECT_EQ(p.data(), heap);  // same heap block: moved, not copied
  EXPECT_EQ(p.size(), 1024u);
  EXPECT_EQ(mpi::payload_copies(), before);
}

TEST(Payload, BorrowViewsCallerMemory) {
  Bytes src(64, std::byte{3});
  const mpi::Payload p = mpi::Payload::borrow(src.data(), src.size());
  EXPECT_EQ(p.data(), src.data());
  src[0] = std::byte{9};  // borrowed: views the live buffer
  EXPECT_EQ(p.data()[0], std::byte{9});
}

TEST(Payload, ShareKeepsBackingStorageAlive) {
  auto block = std::make_shared<Bytes>(32, std::byte{5});
  const std::byte* raw = block->data();
  mpi::Payload p = mpi::Payload::share(
      std::shared_ptr<const void>(block, block->data()), raw, 32);
  block.reset();  // payload is now the only owner
  EXPECT_EQ(p.data()[31], std::byte{5});
}

TEST(Payload, MoveKeepsOwnedDataStable) {
  mpi::Payload a(Bytes(256, std::byte{1}));
  const std::byte* heap = a.data();
  mpi::Payload b(std::move(a));
  EXPECT_EQ(b.data(), heap);
  mpi::Payload c = mpi::Payload::borrow(nullptr, 0);
  c = std::move(b);
  EXPECT_EQ(c.data(), heap);
}

// --- minimpi-level copy accounting ---------------------------------------

TEST(PayloadCopies, BorrowedDataSendCopiesOnceAtDelivery) {
  OMPC_SKIP_IF_NOT_ZERO_COPY_CONDUIT();
  mpi::UniverseOptions o;
  o.ranks = 2;
  mpi::Universe u(o);
  u.run([&](mpi::RankContext& ctx) {
    const mpi::Tag tag = mpi::kFirstDataTag + 1;
    const std::int64_t before = mpi::payload_copies();
    if (ctx.rank() == 0) {
      Bytes src(4096, std::byte{0xAB});
      ctx.world().isend_payload(mpi::Payload::borrow(src.data(), src.size()),
                                1, tag);
      ctx.world().barrier();  // receiver has matched: the count is final
      EXPECT_EQ(mpi::payload_copies() - before, 1);
    } else {
      Bytes dst(4096);
      ctx.world().recv(dst.data(), dst.size(), 0, tag);
      EXPECT_EQ(dst[4095], std::byte{0xAB});
      ctx.world().barrier();
    }
  });
}

TEST(PayloadCopies, ControlTagsAreNotCounted) {
  mpi::UniverseOptions o;
  o.ranks = 2;
  mpi::Universe u(o);
  u.run([&](mpi::RankContext& ctx) {
    const std::int64_t before = mpi::payload_copies();
    if (ctx.rank() == 0) {
      const std::uint64_t v = 42;
      ctx.world().send(&v, sizeof v, 1, /*tag=*/3);  // control range
    } else {
      std::uint64_t v = 0;
      ctx.world().recv(&v, sizeof v, 0, 3);
      EXPECT_EQ(v, 42u);
    }
    EXPECT_EQ(mpi::payload_copies(), before);
  });
}

// --- WorkerMemory shared blocks ------------------------------------------

TEST(WorkerMemory, ShareOutlivesFree) {
  WorkerMemory mem;
  const offload::TargetPtr p = mem.alloc(128);
  std::memset(reinterpret_cast<void*>(p), 0x5C, 128);
  mpi::Payload view = mem.share(p, 128);
  mem.free(p);  // an in-flight payload must survive the Delete event
  EXPECT_EQ(mem.live(), 0u);
  EXPECT_EQ(view.data()[127], std::byte{0x5C});
}

TEST(WorkerMemory, ShareOfUnknownPtrFails) {
  WorkerMemory mem;
  EXPECT_THROW(mem.share(0xDEAD, 8), CheckError);
  const offload::TargetPtr p = mem.alloc(8);
  EXPECT_THROW(mem.share(p, 64), CheckError);  // beyond the allocation
  mem.free(p);
}

// --- data-plane copy counts through the Data Manager ---------------------

struct Cluster {
  explicit Cluster(int workers, Forwarding fw = Forwarding::Direct) {
    opts.num_workers = workers;
    opts.network = {};
    opts.forwarding = fw;
  }

  void run(const std::function<void(DataManager&, EventSystem&)>& body) {
    mpi::UniverseOptions uopts;
    uopts.ranks = opts.ranks();
    uopts.comms = 1 + opts.vci;
    mpi::Universe universe(uopts);
    universe.run([&](mpi::RankContext& ctx) {
      if (ctx.rank() == 0) {
        EventSystem events(ctx, opts, nullptr, nullptr);
        DataManager dm(events, opts);
        body(dm, events);
        dm.cleanup_all();
        events.shutdown_cluster();
      } else {
        WorkerMemory memory(&ctx.universe(), ctx.rank());
        omp::TaskRuntime pool(1);
        EventSystem events(ctx, opts, &memory, &pool);
        events.wait_until_stopped();
        EXPECT_EQ(memory.live(), 0u) << "rank " << ctx.rank() << " leaked";
      }
    });
  }

  ClusterOptions opts;
};

TEST(DataPlaneCopies, SubmitIsExactlyOneCopy) {
  OMPC_SKIP_IF_NOT_ZERO_COPY_CONDUIT();
  Cluster c(1);
  c.run([](DataManager& dm, EventSystem&) {
    std::vector<std::uint64_t> buf(512, 11);
    dm.register_buffer(buf.data(), buf.size() * sizeof(std::uint64_t));
    const void* args[] = {buf.data()};
    const std::int64_t copies = mpi::payload_copies();
    const std::int64_t bytes = mpi::payload_copy_bytes();
    dm.prepare_args(1, args);  // alloc (control) + submit (data payload)
    EXPECT_EQ(dm.stats().submits.load(), 1);
    EXPECT_EQ(mpi::payload_copies() - copies, 1);
    EXPECT_EQ(mpi::payload_copy_bytes() - bytes,
              static_cast<std::int64_t>(buf.size() * sizeof(std::uint64_t)));
  });
}

TEST(DataPlaneCopies, ExitRetrieveIsExactlyOneCopy) {
  OMPC_SKIP_IF_NOT_ZERO_COPY_CONDUIT();
  Cluster c(1);
  c.run([](DataManager& dm, EventSystem&) {
    std::uint64_t buf = 7;
    dm.register_buffer(&buf, sizeof buf);
    const void* args[] = {&buf};
    dm.prepare_args(1, args);
    dm.after_write(1, {omp::inout(&buf)});  // worker holds the only copy
    const std::int64_t copies = mpi::payload_copies();
    dm.exit_to_head(&buf, /*copy=*/true);
    EXPECT_EQ(mpi::payload_copies() - copies, 1);
  });
}

TEST(DataPlaneCopies, DirectForwardIsExactlyOneCopy) {
  OMPC_SKIP_IF_NOT_ZERO_COPY_CONDUIT();
  Cluster c(2);
  c.run([](DataManager& dm, EventSystem&) {
    std::vector<std::uint64_t> buf(64, 9);
    dm.register_buffer(buf.data(), buf.size() * sizeof(std::uint64_t));
    const void* args[] = {buf.data()};
    dm.prepare_args(1, args);
    dm.after_write(1, {omp::inout(buf.data())});
    const std::int64_t copies = mpi::payload_copies();
    dm.prepare_args(2, args);  // direct worker->worker exchange
    EXPECT_EQ(dm.stats().exchanges.load(), 1);
    EXPECT_EQ(mpi::payload_copies() - copies, 1);
  });
}

TEST(DataPlaneCopies, ViaHeadForwardIsTwoCopies) {
  OMPC_SKIP_IF_NOT_ZERO_COPY_CONDUIT();
  // The ablation strawman bounces through the head: one retrieve fill into
  // the host buffer + one submit fill into the consumer — still no staging
  // copies on top.
  Cluster c(2, Forwarding::ViaHead);
  c.run([](DataManager& dm, EventSystem&) {
    std::uint64_t buf = 42;
    dm.register_buffer(&buf, sizeof buf);
    const void* args[] = {&buf};
    dm.prepare_args(1, args);
    dm.after_write(1, {omp::inout(&buf)});
    const std::int64_t copies = mpi::payload_copies();
    dm.prepare_args(2, args);
    EXPECT_EQ(mpi::payload_copies() - copies, 2);
  });
}

TEST(SharedRegistry, ConcurrentLookupsWhileTransferring) {
  // Reader-heavy hammering of the registry (shared_mutex) while transfers
  // run; correctness smoke for the reader/writer split.
  Cluster c(2);
  c.run([](DataManager& dm, EventSystem&) {
    std::vector<std::uint64_t> a(256, 1), b(256, 2);
    dm.register_buffer(a.data(), a.size() * sizeof(std::uint64_t));
    dm.register_buffer(b.data(), b.size() * sizeof(std::uint64_t));
    std::atomic<bool> stop{false};
    std::vector<std::thread> readers;
    for (int i = 0; i < 4; ++i) {
      readers.emplace_back([&] {
        while (!stop.load(std::memory_order_relaxed)) {
          EXPECT_TRUE(dm.is_registered(a.data()));
          EXPECT_EQ(dm.buffer_size(b.data()), 256 * sizeof(std::uint64_t));
        }
      });
    }
    const void* args[] = {a.data(), b.data()};
    for (mpi::Rank w = 1; w <= 2; ++w) dm.prepare_args(w, args);
    stop.store(true);
    for (auto& t : readers) t.join();
    EXPECT_EQ(dm.snapshot(a.data()).valid_workers.size(), 2u);
  });
}

// --- dirty-set checkpoints ------------------------------------------------

TEST(DirtyCheckpoint, CleanIntervalCopiesNothing) {
  Cluster c(1);
  c.run([](DataManager& dm, EventSystem&) {
    std::vector<std::uint64_t> a(128, 1), b(128, 2);
    dm.register_buffer(a.data(), a.size() * sizeof(std::uint64_t));
    dm.register_buffer(b.data(), b.size() * sizeof(std::uint64_t));

    CheckpointStore ckpt;
    ckpt.capture(dm, 0);  // first capture: everything is dirty
    const std::int64_t full = 2 * 128 * sizeof(std::uint64_t);
    EXPECT_EQ(ckpt.stats().bytes_captured, full);
    EXPECT_EQ(ckpt.stats().dirty_bytes, full);

    ckpt.capture(dm, 1);  // nothing written since: all entries reused
    EXPECT_EQ(ckpt.stats().bytes_captured, 2 * full);  // logical volume
    EXPECT_EQ(ckpt.stats().dirty_bytes, full);         // no new copies
    EXPECT_EQ(ckpt.stats().entries_reused, 2);
  });
}

TEST(DirtyCheckpoint, OnlyWrittenBufferIsRecaptured) {
  Cluster c(1);
  c.run([](DataManager& dm, EventSystem&) {
    std::vector<std::uint64_t> a(128, 1), b(128, 2);
    const std::int64_t each = 128 * sizeof(std::uint64_t);
    dm.register_buffer(a.data(), static_cast<std::size_t>(each));
    dm.register_buffer(b.data(), static_cast<std::size_t>(each));

    CheckpointStore ckpt;
    ckpt.capture(dm, 0);

    // A task writes `a` on worker 1; `b` stays clean.
    const void* args[] = {a.data()};
    dm.prepare_args(1, args);
    dm.after_write(1, {omp::inout(a.data())});

    const std::int64_t retrieves = dm.stats().retrieves.load();
    ckpt.capture(dm, 1);
    EXPECT_EQ(ckpt.stats().dirty_bytes, 2 * each + each);  // full + only `a`
    EXPECT_EQ(ckpt.stats().entries_reused, 1);             // `b` by reference
    // The clean buffer was not even retrieved from anywhere.
    EXPECT_EQ(dm.stats().retrieves.load(), retrieves + 1);
  });
}

TEST(DirtyCheckpoint, HostTaskWriteIsRecaptured) {
  // Host tasks write head memory in place (no after_write invalidation
  // runs); the checkpointer must still treat their out/inout deps as
  // dirty, or recovery would silently roll the host write back.
  Cluster c(1);
  c.run([](DataManager& dm, EventSystem&) {
    std::uint64_t cell = 1;
    dm.register_buffer(&cell, sizeof cell);
    CheckpointStore ckpt;
    ckpt.capture(dm, 0);
    cell = 2;  // what a host task with omp::inout(&cell) does
    dm.after_host_write({omp::inout(&cell)});
    ckpt.capture(dm, 1);
    EXPECT_EQ(ckpt.stats().entries_reused, 0);
    EXPECT_EQ(ckpt.stats().dirty_bytes,
              2 * static_cast<std::int64_t>(sizeof cell));
    // The recaptured entry holds the written value.
    cell = 0;
    dm.reset_all_to_host();
    ckpt.restore(dm);
    EXPECT_EQ(cell, 2u);
  });
}

TEST(DirtyCheckpoint, RestoredContentMatchesCapturedBytes) {
  Cluster c(1);
  c.run([](DataManager& dm, EventSystem&) {
    std::uint64_t cell = 0xC0FFEE;
    dm.register_buffer(&cell, sizeof cell);
    CheckpointStore ckpt;
    ckpt.capture(dm, 0);
    cell = 0;  // host-side corruption stands in for a failed wave
    dm.reset_all_to_host();
    ckpt.restore(dm);
    EXPECT_EQ(cell, 0xC0FFEEu);
    // Restore re-synced every buffer with its entry: a follow-up capture
    // reuses rather than re-copies.
    ckpt.capture(dm, 1);
    EXPECT_EQ(ckpt.stats().entries_reused, 1);
  });
}

// --- persistent pools -----------------------------------------------------

TEST(HelperPoolUnit, RunsJobsOnPersistentThreads) {
  HelperPool pool(4, "tp");
  EXPECT_EQ(pool.num_threads(), 4);
  std::atomic<int> sum{0};
  std::mutex m;
  std::condition_variable cv;
  int remaining = 64;
  for (int i = 0; i < 64; ++i) {
    pool.submit([&] {
      sum.fetch_add(1);
      std::lock_guard<std::mutex> lock(m);
      if (--remaining == 0) cv.notify_all();
    });
  }
  std::unique_lock<std::mutex> lock(m);
  cv.wait(lock, [&] { return remaining == 0; });
  EXPECT_EQ(sum.load(), 64);
  // jobs_run_ is bumped after the job body returns (it counts *completed*
  // jobs), so the last increment can trail the cv notify issued inside the
  // job; wait for it rather than racing it.
  while (pool.jobs_run() < 64) std::this_thread::yield();
  EXPECT_EQ(pool.jobs_run(), 64);
}

/// buffers[0]: u64 cell, incremented once per task.
const offload::KernelId kBump =
    offload::KernelRegistry::instance().register_kernel(
        "test_hotpath_bump", [](offload::KernelContext& ctx) {
          *ctx.buffer<std::uint64_t>(0) += 1;
        });

/// kBump with a scalar sleep first, so kills land mid-wave deterministically.
const offload::KernelId kSleepyBump =
    offload::KernelRegistry::instance().register_kernel(
        "test_hotpath_sleepy_bump", [](offload::KernelContext& ctx) {
          auto r = ctx.scalars();
          precise_sleep_ns(r.get<std::int64_t>());
          *ctx.buffer<std::uint64_t>(0) += 1;
        });

RuntimeStats run_waves(int waves, int cells) {
  ClusterOptions opts;
  opts.num_workers = 2;
  std::vector<std::uint64_t> data(static_cast<std::size_t>(cells), 0);
  RuntimeStats stats = launch(opts, [&](Runtime& rt) {
    for (auto& c : data) rt.enter_data(&c, sizeof c);
    for (int w = 0; w < waves; ++w) {
      for (auto& c : data) {
        Args args;
        args.buf(&c);
        rt.target({omp::inout(&c)}, kBump, std::move(args));
      }
      rt.wait_all();
    }
    for (auto& c : data) rt.exit_data(&c);
  });
  for (const auto c : data) EXPECT_EQ(c, static_cast<std::uint64_t>(waves));
  return stats;
}

TEST(PersistentPools, SteadyStateWavesSpawnZeroThreads) {
  // Pools are created once per launch: the spawn count must not grow with
  // the number of waves (the old dispatcher created 16 + 3W threads per
  // wave; the old prepare_args one per extra buffer of every task).
  const RuntimeStats two = run_waves(2, 4);
  const RuntimeStats ten = run_waves(10, 4);
  EXPECT_GT(two.threads_spawned, 0);
  EXPECT_EQ(two.threads_spawned, ten.threads_spawned);
}

TEST(PersistentPools, EndToEndSubmitPathIsSingleCopyPerTransfer) {
  OMPC_SKIP_IF_NOT_ZERO_COPY_CONDUIT();
  // Every data transfer (submit/retrieve/exchange) across the run pays
  // exactly one payload copy: the delivery fill.
  const RuntimeStats s = run_waves(3, 4);
  EXPECT_EQ(s.payload_copies, s.submits + s.retrieves + s.exchanges);
}

// --- schedule memoization (paper Fig. 7b) ---------------------------------

TEST(ScheduleCache, SteadyStateIdenticalWavesHitTheCache) {
  // Iterative programs re-record an identical DAG every time step; after
  // the first wave schedules it, every repeat must be served from the
  // cache. The enter wave (wave 0) and the exit wave differ structurally
  // and are expected misses.
  constexpr int kWaves = 6;
  ClusterOptions opts;
  opts.num_workers = 2;
  std::vector<std::uint64_t> data(4, 0);
  const RuntimeStats stats = launch(opts, [&](Runtime& rt) {
    for (auto& c : data) rt.enter_data(&c, sizeof c);
    rt.wait_all();  // enter-only wave: its own structure
    for (int w = 0; w < kWaves; ++w) {
      for (auto& c : data) {
        Args args;
        args.buf(&c);
        rt.target({omp::inout(&c)}, kBump, std::move(args));
      }
      rt.wait_all();
    }
    for (auto& c : data) rt.exit_data(&c);
  });
  for (const auto c : data) EXPECT_EQ(c, static_cast<std::uint64_t>(kWaves));
  EXPECT_GE(stats.schedule_cache_hits, kWaves - 1);
}

TEST(ScheduleCache, DistinctGraphsDoNotFalselyHit) {
  // Waves of different widths must each be scheduled on their own.
  ClusterOptions opts;
  opts.num_workers = 2;
  std::vector<std::uint64_t> data(4, 0);
  const RuntimeStats stats = launch(opts, [&](Runtime& rt) {
    for (auto& c : data) rt.enter_data(&c, sizeof c);
    for (std::size_t width = 1; width <= data.size(); ++width) {
      for (std::size_t i = 0; i < width; ++i) {
        Args args;
        args.buf(&data[i]);
        rt.target({omp::inout(&data[i])}, kBump, std::move(args));
      }
      rt.wait_all();
    }
    for (auto& c : data) rt.exit_data(&c);
  });
  EXPECT_EQ(data[0], 4u);  // touched by every wave
  EXPECT_EQ(data[3], 1u);  // only by the widest
  EXPECT_EQ(stats.schedule_cache_hits, 0);
}

TEST(ScheduleCache, InvalidatedOnWorkerDeathAndStillCorrect) {
  // A cached schedule maps tasks onto the pre-failure worker table; after
  // recovery re-ranks the survivors it must not be replayed (the cache is
  // cleared and re-keyed by the live-worker set). Correctness of the
  // post-recovery waves is the observable: a stale processor index would
  // dispatch onto a corpse.
  constexpr int kWaves = 8;
  ClusterOptions opts;
  opts.num_workers = 3;
  opts.heartbeat_period_ms = 5;
  opts.heartbeat_timeout_ms = 50;
  opts.checkpoint_period = 1;
  opts.kills.push_back({2, 60'000'000});

  std::vector<std::uint64_t> data(4, 0);
  const RuntimeStats stats = launch(opts, [&](Runtime& rt) {
    for (auto& c : data) rt.enter_data(&c, sizeof c);
    rt.wait_all();
    for (int w = 0; w < kWaves; ++w) {
      for (auto& c : data) {
        Args args;
        args.buf(&c).scalar<std::int64_t>(20'000'000);
        rt.target({omp::inout(&c)}, kSleepyBump, std::move(args), 20e-3);
      }
      rt.wait_all();
    }
    for (auto& c : data) rt.exit_data(&c);
  });
  for (const auto c : data) EXPECT_EQ(c, static_cast<std::uint64_t>(kWaves));
  EXPECT_GE(stats.recoveries, 1);
  // The cache still serves the steady state on both sides of the failure.
  EXPECT_GE(stats.schedule_cache_hits, 1);
}

}  // namespace
}  // namespace ompc::core
