// Host task runtime tests: OpenMP dependence semantics (RAW, WAR, WAW),
// work stealing, taskwait epochs and the caller-participating parallel_for.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "omptask/runtime.hpp"

namespace ompc::omp {
namespace {

TEST(OmpTask, IndependentTasksAllRun) {
  TaskRuntime rt(3);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) rt.submit([&] { count.fetch_add(1); });
  rt.taskwait();
  EXPECT_EQ(count.load(), 100);
  EXPECT_EQ(rt.executed(), 100);
}

TEST(OmpTask, RawDependenceOrdersProducerConsumer) {
  TaskRuntime rt(3);
  int cell = 0;
  std::atomic<bool> consumer_saw_value{false};
  rt.submit([&] { cell = 41; }, {out(&cell)});
  rt.submit([&] { consumer_saw_value = (cell == 41); }, {in(&cell)});
  rt.taskwait();
  EXPECT_TRUE(consumer_saw_value.load());
}

TEST(OmpTask, WarDependenceProtectsReaders) {
  // Readers of version 1 must all run before the second writer.
  TaskRuntime rt(4);
  std::atomic<int> version{0};
  std::atomic<int> readers_of_v1{0};
  int cell = 0;
  rt.submit([&] { version = 1; }, {out(&cell)});
  for (int r = 0; r < 8; ++r) {
    rt.submit([&] { if (version.load() == 1) readers_of_v1.fetch_add(1); },
              {in(&cell)});
  }
  rt.submit([&] { version = 2; }, {inout(&cell)});
  rt.taskwait();
  EXPECT_EQ(readers_of_v1.load(), 8);
}

TEST(OmpTask, WawDependenceSerializesWriters) {
  TaskRuntime rt(4);
  int cell = 0;
  std::vector<int> order;
  std::mutex m;
  for (int i = 0; i < 10; ++i) {
    rt.submit(
        [&, i] {
          std::lock_guard<std::mutex> lock(m);
          order.push_back(i);
        },
        {out(&cell)});
  }
  rt.taskwait();
  std::vector<int> expect(10);
  std::iota(expect.begin(), expect.end(), 0);
  EXPECT_EQ(order, expect);  // strict submission order
}

TEST(OmpTask, DiamondDependence) {
  TaskRuntime rt(4);
  int a = 0, b = 0, c = 0;
  rt.submit([&] { a = 1; }, {out(&a)});
  rt.submit([&] { b = a + 1; }, {in(&a), out(&b)});
  rt.submit([&] { c = a + 2; }, {in(&a), out(&c)});
  int result = 0;
  rt.submit([&] { result = b + c; }, {in(&b), in(&c)});
  rt.taskwait();
  EXPECT_EQ(result, 5);
}

TEST(OmpTask, LongChainExecutesInOrder) {
  TaskRuntime rt(2);
  int cell = 0;
  for (int i = 0; i < 500; ++i) {
    rt.submit([&] { ++cell; }, {inout(&cell)});
  }
  rt.taskwait();
  EXPECT_EQ(cell, 500);
}

TEST(OmpTask, DisjointChainsRunConcurrently) {
  TaskRuntime rt(4);
  constexpr int kChains = 8;
  int cells[kChains] = {};
  for (int step = 0; step < 50; ++step) {
    for (int c = 0; c < kChains; ++c) {
      rt.submit([&, c] { ++cells[c]; }, {inout(&cells[c])});
    }
  }
  rt.taskwait();
  for (int c = 0; c < kChains; ++c) EXPECT_EQ(cells[c], 50);
}

TEST(OmpTask, TaskwaitEpochAllowsResubmission) {
  TaskRuntime rt(2);
  int cell = 0;
  rt.submit([&] { cell = 1; }, {out(&cell)});
  rt.taskwait();
  EXPECT_EQ(cell, 1);
  rt.submit([&] { cell = 2; }, {out(&cell)});
  rt.taskwait();
  EXPECT_EQ(cell, 2);
}

TEST(OmpTask, TaskwaitOnEmptyRuntimeReturns) {
  TaskRuntime rt(1);
  rt.taskwait();  // must not hang
  SUCCEED();
}

TEST(OmpTask, IsFinishedTracksLifecycle) {
  TaskRuntime rt(1);
  std::atomic<bool> gate{false};
  const TaskId id = rt.submit([&] {
    while (!gate.load()) std::this_thread::yield();
  });
  EXPECT_FALSE(rt.is_finished(id));
  gate = true;
  rt.taskwait();
  EXPECT_TRUE(rt.is_finished(id));
}

TEST(OmpTask, SubmitFromWithinTask) {
  TaskRuntime rt(2);
  std::atomic<int> count{0};
  rt.submit([&] {
    for (int i = 0; i < 10; ++i) rt.submit([&] { count.fetch_add(1); });
  });
  rt.taskwait();  // waits for nested submissions too (pending counter)
  EXPECT_EQ(count.load(), 10);
}

TEST(OmpTask, StealsHappenUnderImbalance) {
  // All tasks submitted from an external thread land in the inbox; pool
  // workers must steal them.
  TaskRuntime rt(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 200; ++i) rt.submit([&] { count.fetch_add(1); });
  rt.taskwait();
  EXPECT_EQ(count.load(), 200);
  EXPECT_GT(rt.steals(), 0);
}

TEST(OmpTaskParallelFor, CoversRangeExactlyOnce) {
  TaskRuntime rt(4);
  std::vector<std::atomic<int>> hits(1000);
  rt.parallel_for(0, 1000, 7, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i)
      hits[static_cast<std::size_t>(i)].fetch_add(1);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(OmpTaskParallelFor, EmptyAndSingleRanges) {
  TaskRuntime rt(2);
  int calls = 0;
  rt.parallel_for(5, 5, 1, [&](std::int64_t, std::int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  std::atomic<int> total{0};
  rt.parallel_for(0, 1, 10, [&](std::int64_t lo, std::int64_t hi) {
    total.fetch_add(static_cast<int>(hi - lo));
  });
  EXPECT_EQ(total.load(), 1);
}

TEST(OmpTaskParallelFor, NestedInsideTaskDoesNotDeadlock) {
  TaskRuntime rt(2);
  std::atomic<std::int64_t> sum{0};
  rt.submit([&] {
    rt.parallel_for(0, 256, 16, [&](std::int64_t lo, std::int64_t hi) {
      for (std::int64_t i = lo; i < hi; ++i) sum.fetch_add(i);
    });
  });
  rt.taskwait();
  EXPECT_EQ(sum.load(), 255 * 256 / 2);
}

class OmpTaskThreads : public ::testing::TestWithParam<int> {};

TEST_P(OmpTaskThreads, MixedGraphCorrectUnderAnyPoolSize) {
  TaskRuntime rt(GetParam());
  // Wavefront: matrix of counters where cell (i,j) depends on (i-1,j) and
  // (i,j-1) — classic dependence stress.
  constexpr int n = 12;
  int grid[n][n] = {};
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      DepList deps;
      deps.push_back(out(&grid[i][j]));
      if (i > 0) deps.push_back(in(&grid[i - 1][j]));
      if (j > 0) deps.push_back(in(&grid[i][j - 1]));
      rt.submit(
          [&, i, j] {
            const int up = i > 0 ? grid[i - 1][j] : 0;
            const int left = j > 0 ? grid[i][j - 1] : 0;
            grid[i][j] = up + left + 1;
          },
          deps);
    }
  }
  rt.taskwait();
  // Verify against the recurrence computed by hand:
  // row 0 / col 0: 1,2,3,...; grid[1][1]=2+2+1; grid[2][2]=9+9+1.
  EXPECT_EQ(grid[0][0], 1);
  EXPECT_EQ(grid[0][3], 4);
  EXPECT_EQ(grid[1][1], 5);
  EXPECT_EQ(grid[2][2], 19);
  EXPECT_GT(grid[n - 1][n - 1], 0);
}

INSTANTIATE_TEST_SUITE_P(PoolSizes, OmpTaskThreads,
                         ::testing::Values(1, 2, 4, 8));

}  // namespace
}  // namespace ompc::omp
