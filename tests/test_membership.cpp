// Head failover + elastic membership (§5 extension): the head's recording
// state (wave log, ownership map, checkpoint metadata) is replicated to a
// shadow worker at every wave boundary, so killing the HEAD mid-run elects
// the freshest replica holder, re-homes the control plane onto it, and
// resumes from the last committed wave — with results bitwise identical to
// a failure-free run. Workers also join (from the spare pool) and leave at
// wave boundaries while the computation runs; churn composes with buddy
// checkpointing and worker recovery. The _shm ctest rerun exercises the
// same suite over the shared-memory conduit.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/runtime.hpp"
#include "minimpi/mpi.hpp"
#include "offload/kernel_registry.hpp"
#include "taskbench/kernel.hpp"
#include "taskbench/runners.hpp"

namespace ompc {
namespace {

using core::CheckpointLocality;
using core::ClusterOptions;
using core::RecoveryError;
using taskbench::expected_checksum;
using taskbench::KernelMode;
using taskbench::Pattern;
using taskbench::TaskBenchSpec;

// ThreadSanitizer slows the control plane (scheduling, events, elections)
// roughly an order of magnitude while sleep-based kernels keep real-time
// pace. Stretch both the task lengths and the fault-injection instants by
// the same factor so every kill still lands in the phase the test aims at
// (e.g. "after the first replication round, mid-wave").
#if defined(__SANITIZE_THREAD__)
#define OMPC_TEST_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define OMPC_TEST_TSAN 1
#endif
#endif
#ifdef OMPC_TEST_TSAN
constexpr std::int64_t kTimeScale = 8;
#else
constexpr std::int64_t kTimeScale = 1;
#endif

/// Fault-injection instant in ns, dilated for sanitized builds.
constexpr std::int64_t at_ms(std::int64_t ms) {
  return ms * 1'000'000 * kTimeScale;
}

ClusterOptions failover_opts(int workers) {
  ClusterOptions o;
  o.num_workers = workers;
  o.heartbeat_period_ms = 5;
  o.heartbeat_timeout_ms = 60;
  o.checkpoint_period = 1;
  o.checkpoint_locality = CheckpointLocality::Buddy;
  return o;
}

TaskBenchSpec failover_spec(Pattern p) {
  TaskBenchSpec s;
  s.pattern = p;
  s.steps = 4;
  s.width = 8;
  s.iterations = 4'000'000 * kTimeScale;  // 20 ms sleep tasks: waves
                                          // outlive detection windows
  s.output_bytes = 32;
  s.mode = KernelMode::Sleep;
  return s;
}

// --- the head dies: elected successor resumes, results identical ----------

class HeadFailoverAcrossPatterns : public ::testing::TestWithParam<Pattern> {
};

TEST_P(HeadFailoverAcrossPatterns, HeadKilledMidWaveChecksumStillMatches) {
  const TaskBenchSpec spec = failover_spec(GetParam());
  ClusterOptions opts = failover_opts(3);
  opts.kills.push_back({0, at_ms(30)});  // the HEAD dies mid-wave

  const auto r = taskbench::run_ompc_stepwise(spec, opts);
  EXPECT_EQ(r.checksum, expected_checksum(spec))
      << "failover run diverged on " << pattern_name(spec.pattern);
  EXPECT_GE(r.stats.failovers, 1);
  EXPECT_GE(r.stats.recoveries, 1);
  EXPECT_GE(r.stats.replication_updates, 1);
}

INSTANTIATE_TEST_SUITE_P(AllPatterns, HeadFailoverAcrossPatterns,
                         ::testing::Values(Pattern::Trivial,
                                           Pattern::Stencil1D, Pattern::Fft,
                                           Pattern::Tree),
                         [](const auto& info) {
                           return std::string(pattern_name(info.param));
                         });

TEST(HeadFailover, HeadKilledNearLaterBoundaryStillMatches) {
  // A later kill time lands around the wave-2 boundary (capture +
  // replication in flight) rather than mid-execution — the replica must be
  // consistent wherever the cut falls.
  const TaskBenchSpec spec = failover_spec(Pattern::Stencil1D);
  ClusterOptions opts = failover_opts(3);
  opts.kills.push_back({0, at_ms(130)});

  const auto r = taskbench::run_ompc_stepwise(spec, opts);
  EXPECT_EQ(r.checksum, expected_checksum(spec));
  EXPECT_GE(r.stats.failovers, 1);
}

TEST(HeadFailover, HeadAndWorkerKilledInOneWindow) {
  // The head AND a worker die a few milliseconds apart. The survivors
  // elect the shadow (rank 1, untouched); its post-adoption liveness sweep
  // picks up the worker corpse nobody reported (its ring successor was the
  // dead head), and one recovery replays around both.
  const TaskBenchSpec spec = failover_spec(Pattern::Tree);
  ClusterOptions opts = failover_opts(3);
  opts.kills.push_back({0, at_ms(30)});
  opts.kills.push_back({3, at_ms(34)});

  const auto r = taskbench::run_ompc_stepwise(spec, opts);
  EXPECT_EQ(r.checksum, expected_checksum(spec));
  EXPECT_GE(r.stats.failovers, 1);
  EXPECT_GE(r.stats.workers_lost, 1);
}

TEST(HeadFailover, HeadKilledDuringWorkerRecoveryStillMatches) {
  // Worker 2 dies first; the head dies ~70 ms later, which lands inside
  // the detection/rollback window for worker 2 on a loaded box (snapshot
  // fetches in flight). The promoted head must finish BOTH recoveries.
  const TaskBenchSpec spec = failover_spec(Pattern::Stencil1D);
  ClusterOptions opts = failover_opts(3);
  opts.kills.push_back({2, at_ms(30)});
  opts.kills.push_back({0, at_ms(100)});

  const auto r = taskbench::run_ompc_stepwise(spec, opts);
  EXPECT_EQ(r.checksum, expected_checksum(spec));
  EXPECT_GE(r.stats.failovers, 1);
  EXPECT_GE(r.stats.workers_lost, 1);
}

TEST(HeadFailover, HeadAndShadowDyingTogetherIsCleanRecoveryError) {
  // The only replica holder dies with the head: no candidate can win the
  // election, so the surviving control thread must give up with a clean
  // RecoveryError once its hand-off wait times out — never a hang.
  const TaskBenchSpec spec = failover_spec(Pattern::Trivial);
  ClusterOptions opts = failover_opts(3);
  opts.kills.push_back({1, at_ms(30)});  // the shadow (first live worker)
  opts.kills.push_back({0, at_ms(34)});  // then the head

  EXPECT_THROW(taskbench::run_ompc_stepwise(spec, opts), RecoveryError);
}

TEST(HeadFailover, ReplicationOffMakesHeadDeathACleanError) {
  const TaskBenchSpec spec = failover_spec(Pattern::Trivial);
  ClusterOptions opts = failover_opts(2);
  opts.head_replication = false;
  opts.kills.push_back({0, at_ms(30)});

  EXPECT_THROW(taskbench::run_ompc_stepwise(spec, opts), RecoveryError);
}

TEST(HeadFailover, CountersSurviveTheHandoff) {
  // Wave/task/checkpoint counters are part of the replicated head state:
  // a run that loses its head must report the same totals as one that
  // does not (each wait_all counted exactly once, adopted not reset).
  const TaskBenchSpec spec = failover_spec(Pattern::Stencil1D);
  const ClusterOptions clean_opts = failover_opts(3);
  ClusterOptions kill_opts = clean_opts;
  kill_opts.kills.push_back({0, at_ms(30)});

  const auto clean = taskbench::run_ompc_stepwise(spec, clean_opts);
  const auto killed = taskbench::run_ompc_stepwise(spec, kill_opts);
  ASSERT_EQ(killed.checksum, expected_checksum(spec));
  EXPECT_GE(killed.stats.failovers, 1);
  EXPECT_EQ(killed.stats.waves, clean.stats.waves);
  EXPECT_EQ(killed.stats.target_tasks, clean.stats.target_tasks);
  // Checkpoint counters ride in the replicated store metadata: the killed
  // run re-captures during replay, so it can only see MORE boundaries.
  EXPECT_GE(killed.stats.checkpoints, clean.stats.checkpoints);
}

// --- elastic membership: join/leave at wave boundaries --------------------

/// buffers[0]: u64 cell. scalars: (sleep_ns). Burns sleep_ns, then += 1.
const offload::KernelId kTick =
    offload::KernelRegistry::instance().register_kernel(
        "test_membership_tick", [](offload::KernelContext& ctx) {
          auto r = ctx.scalars();
          const auto sleep_ns = r.get<std::int64_t>();
          precise_sleep_ns(sleep_ns);
          *ctx.buffer<std::uint64_t>(0) += 1;
        });

/// One wave: every cell gets one tick task of `task_ns`.
void tick_wave(core::Runtime& rt, std::vector<std::uint64_t>& cells,
               std::int64_t task_ns) {
  for (std::uint64_t& c : cells) {
    core::Args args;
    args.buf(&c).scalar<std::int64_t>(task_ns);
    rt.target({omp::inout(&c)}, kTick, std::move(args),
              static_cast<double>(task_ns) * 1e-9);
  }
  rt.wait_all();
}

TEST(ElasticMembership, SpareJoinsRunsTasksAndSurvivesOwnerKill) {
  // A spare rank joins at a wave boundary, receives a slice of the
  // buffers (migrated worker->worker), executes tasks from the next HEFT
  // pass on — and then DIES. Its buffers must come back through the buddy
  // snapshot like any other owner's, so every cell still reaches kWaves.
  ClusterOptions opts = failover_opts(3);
  opts.spare_workers = 1;
  opts.kills.push_back({4, 250'000'000});  // the joiner, well after joining

  constexpr int kWaves = 16;
  std::vector<std::uint64_t> cells(8, 0);
  const auto stats = core::launch(opts, [&](core::Runtime& rt) {
    for (std::uint64_t& c : cells) rt.enter_data(&c, sizeof c);
    for (int w = 0; w < kWaves; ++w) {
      if (w == 2) EXPECT_EQ(rt.request_join(), 4);
      tick_wave(rt, cells, 15'000'000);
    }
    for (std::uint64_t& c : cells) rt.exit_data(&c);
  });

  for (const std::uint64_t c : cells) EXPECT_EQ(c, kWaves);
  EXPECT_EQ(stats.workers_joined, 1);
  EXPECT_GE(stats.recoveries, 1);
  EXPECT_GE(stats.workers_lost, 1);
}

TEST(ElasticMembership, JoinAndWorkerKillInTheSameWindowBothApply) {
  // The join request and a worker death race within one wave: whichever
  // boundary processes first, the joined rank must end up schedulable and
  // the corpse recovered around.
  ClusterOptions opts = failover_opts(3);
  opts.spare_workers = 1;
  opts.kills.push_back({2, 90'000'000});

  constexpr int kWaves = 8;
  std::vector<std::uint64_t> cells(8, 0);
  const auto stats = core::launch(opts, [&](core::Runtime& rt) {
    for (std::uint64_t& c : cells) rt.enter_data(&c, sizeof c);
    for (int w = 0; w < kWaves; ++w) {
      if (w == 1) EXPECT_EQ(rt.request_join(), 4);
      tick_wave(rt, cells, 15'000'000);
    }
    for (std::uint64_t& c : cells) rt.exit_data(&c);
  });

  for (const std::uint64_t c : cells) EXPECT_EQ(c, kWaves);
  EXPECT_EQ(stats.workers_joined, 1);
  EXPECT_GE(stats.recoveries, 1);
}

TEST(ElasticMembership, LeaveRetiresWorkerAndItCanRejoin) {
  // request_leave() drains a worker back to the spare pool at the next
  // boundary; a later request_join() hands the same rank back. Both
  // transitions happen mid-computation with correct results.
  ClusterOptions opts = failover_opts(3);

  constexpr int kWaves = 6;
  std::vector<std::uint64_t> cells(8, 0);
  const auto stats = core::launch(opts, [&](core::Runtime& rt) {
    for (std::uint64_t& c : cells) rt.enter_data(&c, sizeof c);
    for (int w = 0; w < kWaves; ++w) {
      if (w == 1) EXPECT_TRUE(rt.request_leave(2));
      if (w == 3) EXPECT_EQ(rt.request_join(), 2);
      tick_wave(rt, cells, 5'000'000);
    }
    for (std::uint64_t& c : cells) rt.exit_data(&c);
  });

  for (const std::uint64_t c : cells) EXPECT_EQ(c, kWaves);
  EXPECT_EQ(stats.workers_retired, 1);
  EXPECT_EQ(stats.workers_joined, 1);
  EXPECT_EQ(stats.recoveries, 0);
}

TEST(ElasticMembership, LeaveRefusesUnknownAndLastWorker) {
  ClusterOptions opts = failover_opts(1);
  opts.spare_workers = 1;
  std::vector<std::uint64_t> cells(2, 0);
  const auto stats = core::launch(opts, [&](core::Runtime& rt) {
    for (std::uint64_t& c : cells) rt.enter_data(&c, sizeof c);
    EXPECT_FALSE(rt.request_leave(1));   // sole live worker
    EXPECT_FALSE(rt.request_leave(2));   // a spare, not live
    EXPECT_FALSE(rt.request_leave(99));  // nonsense
    tick_wave(rt, cells, 1'000'000);
    EXPECT_EQ(rt.request_join(), 2);
    tick_wave(rt, cells, 1'000'000);
    EXPECT_TRUE(rt.request_leave(1));  // now there are two
    tick_wave(rt, cells, 1'000'000);
    for (std::uint64_t& c : cells) rt.exit_data(&c);
  });
  for (const std::uint64_t c : cells) EXPECT_EQ(c, 3u);
  EXPECT_EQ(stats.workers_joined, 1);
  EXPECT_EQ(stats.workers_retired, 1);
}

TEST(ElasticMembership, ChurnSoakFiftyWaves) {
  // 50 waves of sustained join/leave churn — including retiring rank 1,
  // the replication shadow, which forces a full replica resync — with
  // buddy checkpoints at every boundary and zero failures injected.
  ClusterOptions opts = failover_opts(3);
  opts.spare_workers = 1;

  constexpr int kWaves = 50;
  std::vector<std::uint64_t> cells(8, 0);
  const auto stats = core::launch(opts, [&](core::Runtime& rt) {
    for (std::uint64_t& c : cells) rt.enter_data(&c, sizeof c);
    for (int w = 0; w < kWaves; ++w) {
      switch (w) {
        case 5:
          EXPECT_EQ(rt.request_join(), 4);
          break;
        case 10:
          EXPECT_TRUE(rt.request_leave(1));  // the shadow retires
          break;
        case 20:
          EXPECT_EQ(rt.request_join(), 1);
          break;
        case 30:
          EXPECT_TRUE(rt.request_leave(2));
          break;
        case 40:
          EXPECT_TRUE(rt.request_leave(4));
          break;
        default:
          break;
      }
      tick_wave(rt, cells, 2'000'000);
    }
    for (std::uint64_t& c : cells) rt.exit_data(&c);
  });

  for (const std::uint64_t c : cells) EXPECT_EQ(c, kWaves);
  EXPECT_EQ(stats.workers_joined, 2);
  EXPECT_EQ(stats.workers_retired, 3);
  EXPECT_EQ(stats.recoveries, 0);
  EXPECT_EQ(stats.workers_lost, 0);
}

TEST(ElasticMembership, JoinComposesWithHeadFailover) {
  // The joined worker is part of the replicated membership table: when the
  // head later dies, the promoted head must keep scheduling on it.
  ClusterOptions opts = failover_opts(3);
  opts.spare_workers = 1;
  opts.kills.push_back({0, 200'000'000});  // the head, after the join

  constexpr int kWaves = 16;
  std::vector<std::uint64_t> cells(8, 0);
  const auto stats = core::launch(opts, [&](core::Runtime& rt) {
    for (std::uint64_t& c : cells) rt.enter_data(&c, sizeof c);
    for (int w = 0; w < kWaves; ++w) {
      if (w == 1) EXPECT_EQ(rt.request_join(), 4);
      tick_wave(rt, cells, 15'000'000);
    }
    for (std::uint64_t& c : cells) rt.exit_data(&c);
  });

  for (const std::uint64_t c : cells) EXPECT_EQ(c, kWaves);
  EXPECT_EQ(stats.workers_joined, 1);
  EXPECT_GE(stats.failovers, 1);
}

}  // namespace
}  // namespace ompc
