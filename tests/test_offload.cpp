// Offload substrate tests: mapping table semantics (libomptarget ref
// counting), host plugin, kernel registry and the agnostic layer's
// OpenMP map-clause behaviour.
#include <gtest/gtest.h>

#include <vector>

#include "offload/agnostic.hpp"
#include "offload/host_plugin.hpp"

namespace ompc::offload {
namespace {

TEST(MappingTable, InsertFindTranslate) {
  MappingTable t;
  std::vector<double> host(100);
  t.insert(host.data(), 100 * sizeof(double), 0x1000);
  EXPECT_TRUE(t.contains(host.data()));
  EXPECT_TRUE(t.contains(&host[99]));
  EXPECT_FALSE(t.contains(host.data() + 100));
  // Interior pointers translate with offset.
  EXPECT_EQ(t.translate(&host[10]), 0x1000u + 10 * sizeof(double));
  EXPECT_EQ(t.translate(host.data() + 100), 0u);
}

TEST(MappingTable, RefCountRetainRelease) {
  MappingTable t;
  int x = 0;
  t.insert(&x, sizeof x, 0x2000);
  t.retain(&x);
  EXPECT_EQ(t.release(&x), std::nullopt);  // 2 -> 1: still mapped
  const auto gone = t.release(&x);         // 1 -> 0: entry returned
  ASSERT_TRUE(gone.has_value());
  EXPECT_EQ(gone->target, 0x2000u);
  EXPECT_FALSE(t.contains(&x));
}

TEST(MappingTable, OverlappingInsertFails) {
  MappingTable t;
  std::vector<char> buf(64);
  t.insert(buf.data(), 64, 0x3000);
  EXPECT_THROW(t.insert(buf.data() + 16, 8, 0x4000), CheckError);
  EXPECT_THROW(t.insert(buf.data() - 1, 4, 0x5000), CheckError);
}

TEST(MappingTable, DisjointRangesCoexist) {
  MappingTable t;
  std::vector<char> a(16), b(16);
  t.insert(a.data(), 16, 0x100);
  t.insert(b.data(), 16, 0x200);
  EXPECT_EQ(t.size(), 2u);
  EXPECT_EQ(t.translate(a.data()), 0x100u);
  EXPECT_EQ(t.translate(b.data()), 0x200u);
}

TEST(HostPlugin, AllocSubmitRetrieveDelete) {
  HostPlugin plugin;
  const TargetPtr p = plugin.data_alloc(0, 64);
  ASSERT_NE(p, kNullTargetPtr);
  EXPECT_EQ(plugin.live_allocations(), 1u);
  std::vector<std::uint8_t> src(64, 0xAB), dst(64, 0);
  plugin.data_submit(0, p, src.data(), 64);
  plugin.data_retrieve(0, dst.data(), p, 64);
  EXPECT_EQ(src, dst);
  plugin.data_delete(0, p);
  EXPECT_EQ(plugin.live_allocations(), 0u);
}

TEST(HostPlugin, ExchangeCopiesBetweenAllocations) {
  HostPlugin plugin;
  const TargetPtr a = plugin.data_alloc(0, 16);
  const TargetPtr b = plugin.data_alloc(0, 16);
  std::uint64_t v[2] = {7, 9};
  plugin.data_submit(0, a, v, 16);
  EXPECT_TRUE(plugin.data_exchange(0, a, 0, b, 16));
  std::uint64_t out[2] = {};
  plugin.data_retrieve(0, out, b, 16);
  EXPECT_EQ(out[0], 7u);
  EXPECT_EQ(out[1], 9u);
  plugin.data_delete(0, a);
  plugin.data_delete(0, b);
}

TEST(HostPlugin, DoubleFreeIsFatal) {
  HostPlugin plugin;
  const TargetPtr p = plugin.data_alloc(0, 8);
  plugin.data_delete(0, p);
  EXPECT_THROW(plugin.data_delete(0, p), CheckError);
}

TEST(KernelRegistry, RegisterLookupRun) {
  auto& reg = KernelRegistry::instance();
  int hits = 0;
  const KernelId id = reg.register_kernel(
      "offload_test_kernel", [&hits](KernelContext&) { ++hits; });
  EXPECT_EQ(reg.lookup("offload_test_kernel"), id);
  EXPECT_EQ(reg.name_of(id), "offload_test_kernel");
  KernelContext ctx({}, {}, nullptr, 0);
  reg.run(id, ctx);
  EXPECT_EQ(hits, 1);
}

TEST(KernelRegistry, ReRegistrationReplacesKeepingId) {
  auto& reg = KernelRegistry::instance();
  const KernelId id1 =
      reg.register_kernel("offload_replace_me", [](KernelContext&) {});
  int called = 0;
  const KernelId id2 = reg.register_kernel(
      "offload_replace_me", [&called](KernelContext&) { ++called; });
  EXPECT_EQ(id1, id2);
  KernelContext ctx({}, {}, nullptr, 0);
  reg.run(id2, ctx);
  EXPECT_EQ(called, 1);
}

TEST(KernelRegistry, UnknownKernelThrows) {
  auto& reg = KernelRegistry::instance();
  EXPECT_EQ(reg.lookup("no_such_kernel"), kInvalidKernel);
  KernelContext ctx({}, {}, nullptr, 0);
  EXPECT_THROW(reg.run(999999, ctx), CheckError);
}

TEST(KernelContext, ScalarsRoundTripInOrder) {
  ArchiveWriter w;
  w.put<int>(42);
  w.put<double>(2.5);
  w.put<std::uint8_t>(7);
  const Bytes blob = w.take();
  KernelContext ctx({}, blob, nullptr, 3);
  auto r = ctx.scalars();
  EXPECT_EQ(r.get<int>(), 42);
  EXPECT_DOUBLE_EQ(r.get<double>(), 2.5);
  EXPECT_EQ(r.get<std::uint8_t>(), 7);
  EXPECT_TRUE(r.exhausted());
  EXPECT_EQ(ctx.device(), 3);
}

// --- agnostic layer ------------------------------------------------------

class AgnosticLayer : public ::testing::Test {
 protected:
  void SetUp() override {
    plugin_ = std::make_shared<HostPlugin>();
    first_dev_ = mgr_.register_plugin(plugin_);
  }
  OffloadManager mgr_;
  std::shared_ptr<HostPlugin> plugin_;
  int first_dev_ = 0;
};

TEST_F(AgnosticLayer, EnterExitDataRoundTrip) {
  std::vector<float> host(32, 1.5f);
  const MapClause m = map_tofrom(host.data(), 32 * sizeof(float));
  mgr_.target_data_begin(first_dev_, {&m, 1});
  EXPECT_EQ(mgr_.mapped_entries(first_dev_), 1u);
  EXPECT_NE(mgr_.translate(first_dev_, host.data()), kNullTargetPtr);
  mgr_.target_data_end(first_dev_, {&m, 1});
  EXPECT_EQ(mgr_.mapped_entries(first_dev_), 0u);
  EXPECT_EQ(plugin_->live_allocations(), 0u);
}

TEST_F(AgnosticLayer, RefCountedReentry) {
  std::vector<int> host(8);
  const MapClause to = map_to(host.data(), 8 * sizeof(int));
  mgr_.target_data_begin(first_dev_, {&to, 1});
  mgr_.target_data_begin(first_dev_, {&to, 1});  // count = 2
  const MapClause rel = map_release(host.data(), 8 * sizeof(int));
  mgr_.target_data_end(first_dev_, {&rel, 1});
  EXPECT_EQ(mgr_.mapped_entries(first_dev_), 1u);  // still mapped
  mgr_.target_data_end(first_dev_, {&rel, 1});
  EXPECT_EQ(mgr_.mapped_entries(first_dev_), 0u);
}

TEST_F(AgnosticLayer, TargetRunsKernelOnMappedData) {
  static const KernelId kDouble = KernelRegistry::instance().register_kernel(
      "agnostic_double", [](KernelContext& ctx) {
        auto* d = ctx.buffer<double>(0);
        auto r = ctx.scalars();
        const auto n = r.get<std::uint64_t>();
        for (std::uint64_t i = 0; i < n; ++i) d[i] *= 2.0;
      });
  std::vector<double> host(16, 3.0);
  const MapClause m = map_tofrom(host.data(), 16 * sizeof(double));
  void* args[] = {host.data()};
  ArchiveWriter w;
  w.put<std::uint64_t>(16);
  mgr_.target(first_dev_, kDouble, {&m, 1}, args, w.take());
  for (double v : host) EXPECT_DOUBLE_EQ(v, 6.0);
  EXPECT_EQ(mgr_.mapped_entries(first_dev_), 0u);
}

TEST_F(AgnosticLayer, TargetUpdateRefreshesLiveMapping) {
  std::vector<int> host(4, 1);
  const MapClause m = map_to(host.data(), 4 * sizeof(int));
  mgr_.target_data_begin(first_dev_, {&m, 1});
  host.assign(4, 9);
  mgr_.target_update_to(first_dev_, host.data(), 4 * sizeof(int));
  host.assign(4, 0);
  mgr_.target_update_from(first_dev_, host.data(), 4 * sizeof(int));
  for (int v : host) EXPECT_EQ(v, 9);
  const MapClause rel = map_release(host.data(), 4 * sizeof(int));
  mgr_.target_data_end(first_dev_, {&rel, 1});
}

TEST_F(AgnosticLayer, ExitOfUnmappedPointerFails) {
  int x = 0;
  const MapClause m = map_from(&x, sizeof x);
  EXPECT_THROW(mgr_.target_data_end(first_dev_, {&m, 1}), CheckError);
}

TEST_F(AgnosticLayer, SecondPluginExtendsDeviceNumbering) {
  auto second = std::make_shared<HostPlugin>();
  const int dev2 = mgr_.register_plugin(second);
  EXPECT_EQ(dev2, first_dev_ + 1);
  EXPECT_EQ(mgr_.num_devices(), 2);
  // Mapping on one device is invisible on the other.
  std::vector<int> host(4);
  const MapClause m = map_to(host.data(), 4 * sizeof(int));
  mgr_.target_data_begin(dev2, {&m, 1});
  EXPECT_EQ(mgr_.translate(first_dev_, host.data()), kNullTargetPtr);
  EXPECT_NE(mgr_.translate(dev2, host.data()), kNullTargetPtr);
  const MapClause rel = map_release(host.data(), 4 * sizeof(int));
  mgr_.target_data_end(dev2, {&rel, 1});
}

}  // namespace
}  // namespace ompc::offload
