// Multi-tenant runtime: N concurrent task graphs share one cluster through
// per-tenant submission queues, weighted-deficit-round-robin fair-share
// over ready waves, and admission control with backpressure. The acceptance
// bar: per-tenant results are bitwise identical to solo runs (the
// expected_checksum oracle IS the solo value), under worker AND head kills
// mid-stream, on both conduits (see the _shm ctest rerun). The elastic
// helper-pool rules (reserve-driven growth, idle shrink) and the TenantStats
// percentile math are unit-tested here too.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "common/time.hpp"
#include "core/helper_pool.hpp"
#include "core/runtime.hpp"
#include "taskbench/kernel.hpp"
#include "taskbench/runners.hpp"

namespace ompc {
namespace {

using core::ClusterOptions;
using core::HelperPool;
using core::TenantStats;
using taskbench::all_patterns;
using taskbench::expected_checksum;
using taskbench::KernelMode;
using taskbench::Pattern;
using taskbench::pattern_name;
using taskbench::run_multi_tenant;
using taskbench::TaskBenchSpec;
using taskbench::TenantStream;

// ThreadSanitizer slows the control plane ~an order of magnitude while
// sleep-based kernels keep real-time pace; dilate task lengths and kill
// instants together so kills land in the phase they aim at.
#if defined(__SANITIZE_THREAD__)
#define OMPC_TEST_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define OMPC_TEST_TSAN 1
#endif
#endif
#ifdef OMPC_TEST_TSAN
constexpr std::int64_t kTimeScale = 8;
#else
constexpr std::int64_t kTimeScale = 1;
#endif

constexpr std::int64_t at_ms(std::int64_t ms) {
  return ms * 1'000'000 * kTimeScale;
}

// --- TenantStats percentile math ------------------------------------------

TEST(TenantStatsUnit, NearestRankPercentiles) {
  TenantStats ts;
  EXPECT_EQ(ts.latency_percentile_ns(99), 0);  // empty: no samples yet
  for (std::int64_t v : {70, 10, 50, 30, 90, 20, 100, 40, 80, 60})
    ts.wave_latency_ns.push_back(v);
  EXPECT_EQ(ts.latency_percentile_ns(50), 50);
  EXPECT_EQ(ts.latency_percentile_ns(95), 100);
  EXPECT_EQ(ts.latency_percentile_ns(99), 100);
  EXPECT_EQ(ts.latency_percentile_ns(10), 10);
}

// --- elastic helper pool --------------------------------------------------

TEST(HelperPoolElastic, ReserveGrowsIdleShrinkRetiresToFloor) {
  HelperPool pool(/*min=*/1, /*max=*/4, /*idle_shrink_ms=*/50, "el");
  EXPECT_EQ(pool.num_threads(), 1);
  EXPECT_EQ(pool.threads_spawned(), 1);

  pool.reserve(8);  // announced demand is capped at the ceiling
  EXPECT_EQ(pool.num_threads(), 4);
  EXPECT_EQ(pool.threads_spawned(), 4);
  EXPECT_EQ(pool.peak_threads(), 4);

  // Above-floor threads idle past the shrink window retire themselves.
  for (int i = 0; i < 500 && pool.num_threads() > 1; ++i)
    precise_sleep_ns(10'000'000);
  EXPECT_EQ(pool.num_threads(), 1);
  EXPECT_EQ(pool.threads_retired(), 3);

  // Regrowth after a shrink works, and jobs actually run on the regrown
  // threads.
  pool.reserve(2);
  EXPECT_EQ(pool.num_threads(), 2);
  EXPECT_EQ(pool.threads_spawned(), 5);
  std::atomic<int> ran{0};
  pool.submit([&ran] { ++ran; });
  for (int i = 0; i < 500 && pool.jobs_run() < 1; ++i)
    precise_sleep_ns(1'000'000);
  EXPECT_EQ(ran.load(), 1);
}

TEST(HelperPoolElastic, FixedCtorNeverShrinks) {
  HelperPool pool(3, "fx");
  EXPECT_EQ(pool.num_threads(), 3);
  precise_sleep_ns(100'000'000);
  EXPECT_EQ(pool.num_threads(), 3);  // floor == ceiling, no idle shrink
  EXPECT_EQ(pool.threads_retired(), 0);
}

// --- concurrent tenants, no faults ----------------------------------------

TEST(MultiTenant, FourTenantsAllPatternsBitwiseMatchSolo) {
  // One tenant per Task Bench pattern, all four streams in flight at once,
  // with a tight queue bound so the submitter threads exercise the
  // blocking backpressure path (submit_wait) rather than racing ahead.
  std::vector<TenantStream> streams;
  for (Pattern p : all_patterns()) {
    TaskBenchSpec s;
    s.pattern = p;
    s.steps = 5;
    s.width = 4;
    s.iterations = 0;
    s.output_bytes = 48;
    streams.push_back({s});
  }
  ClusterOptions opts;
  opts.num_workers = 4;
  opts.max_pending_waves = 2;

  const core::RuntimeStats stats = run_multi_tenant(opts, streams);

  for (const TenantStream& st : streams) {
    SCOPED_TRACE(pattern_name(st.spec.pattern));
    // expected_checksum is the solo oracle: equality means the mixed run
    // is bitwise identical to running this tenant alone.
    EXPECT_EQ(st.checksum, expected_checksum(st.spec));
    // steps waves (wave 0 carries the enters) + the exit wave.
    EXPECT_EQ(st.stats.completed_waves, st.spec.steps + 1);
    EXPECT_EQ(st.stats.submitted_waves, st.spec.steps + 1);
    EXPECT_EQ(st.stats.rejected_waves, 0);
    // The ping-pong recording repeats with period 2, so steady-state waves
    // hit the schedule cache — per tenant, since the hash covers the
    // tenant's own buffer addresses.
    EXPECT_GE(st.stats.schedule_cache_hits, 1);
    // Tail-latency accounting: one sample per wave, ordered percentiles.
    EXPECT_EQ(st.stats.wave_latency_ns.size(),
              static_cast<std::size_t>(st.spec.steps + 1));
    EXPECT_GT(st.stats.latency_percentile_ns(50), 0);
    EXPECT_LE(st.stats.latency_percentile_ns(50),
              st.stats.latency_percentile_ns(99));
  }
  EXPECT_EQ(stats.tenants, 4);
  EXPECT_EQ(stats.tenant_waves, 4 * 6);
  EXPECT_GE(stats.schedule_cache_hits, 4);
  EXPECT_GT(stats.pool_threads_peak, 0);
}

// --- admission control ----------------------------------------------------

TEST(MultiTenant, AdmissionRejectsWithoutConsumingTheWave) {
  ClusterOptions opts;
  opts.num_workers = 1;
  opts.max_pending_waves = 2;

  std::atomic<int> a_runs{0};
  std::atomic<int> b_runs{0};
  const core::RuntimeStats stats = core::launch(opts, [&](core::Runtime& rt) {
    const core::TenantId ta = rt.create_tenant();
    const core::TenantId tb = rt.create_tenant();
    core::TenantSession sa(rt, ta);
    core::TenantSession sb(rt, tb);

    sa.host_task([&a_runs] { ++a_runs; });
    sa.submit();
    sa.host_task([&a_runs] { ++a_runs; });
    sa.submit();
    sa.host_task([&a_runs] { ++a_runs; });
    try {
      sa.submit();
      FAIL() << "third submit should exceed max_pending_waves=2";
    } catch (const core::AdmissionError& e) {
      EXPECT_EQ(e.tenant(), ta);
    }
    // The rejected wave was NOT consumed: it stays recorded for a retry.
    EXPECT_TRUE(sa.has_recorded());

    // The other tenant is unaffected by A's backpressure.
    sb.host_task([&b_runs] { ++b_runs; });
    sb.submit();

    sa.close();  // discards the still-recorded third wave
    sb.close();
    rt.serve_tenants();

    EXPECT_EQ(rt.tenant_stats(ta).rejected_waves, 1);
    EXPECT_EQ(rt.tenant_stats(ta).completed_waves, 2);
    EXPECT_EQ(rt.tenant_stats(tb).rejected_waves, 0);
    EXPECT_EQ(rt.tenant_stats(tb).completed_waves, 1);
  });

  EXPECT_EQ(a_runs.load(), 2);  // the rejected wave never ran
  EXPECT_EQ(b_runs.load(), 1);
  EXPECT_EQ(stats.admission_rejections, 1);
  EXPECT_EQ(stats.tenants, 2);
  EXPECT_EQ(stats.tenant_waves, 3);
}

// --- weighted fair-share --------------------------------------------------

TEST(MultiTenant, WeightedDeficitRoundRobinServesProportionally) {
  // Pre-queue every wave before serving, then observe the exact service
  // order. Quantum = 4 tasks x weight per token arrival, and the token
  // keeps spending its deficit before advancing: tenant A (weight 2)
  // affords 8 one-task waves per visit, B (weight 1) affords 4.
  ClusterOptions opts;
  opts.num_workers = 1;
  opts.max_pending_waves = 0;  // unbounded: pre-queueing must not reject

  std::mutex order_mutex;
  std::vector<int> order;
  core::launch(opts, [&](core::Runtime& rt) {
    const core::TenantId ta = rt.create_tenant(2.0);
    const core::TenantId tb = rt.create_tenant(1.0);
    core::TenantSession sa(rt, ta);
    core::TenantSession sb(rt, tb);
    const auto enqueue = [&](core::TenantSession& s, int tag, int waves) {
      for (int i = 0; i < waves; ++i) {
        s.host_task([&order_mutex, &order, tag] {
          std::lock_guard<std::mutex> lock(order_mutex);
          order.push_back(tag);
        });
        s.submit();
      }
    };
    enqueue(sa, 0, 12);
    enqueue(sb, 1, 6);
    sa.close();
    sb.close();
    rt.serve_tenants();
  });

  const std::vector<int> expect = {0, 0, 0, 0, 0, 0, 0, 0,  // A: 8 = 4 x 2.0
                                   1, 1, 1, 1,              // B: 4 = 4 x 1.0
                                   0, 0, 0, 0,              // A: remaining 4
                                   1, 1};                   // B: remaining 2
  EXPECT_EQ(order, expect);
}

// --- faults mid-stream ----------------------------------------------------

ClusterOptions tenant_ft_opts(int workers) {
  ClusterOptions o;
  o.num_workers = workers;
  o.heartbeat_period_ms = 5;
  o.heartbeat_timeout_ms = 60;
  o.checkpoint_period = 1;
  return o;
}

TaskBenchSpec tenant_ft_spec(Pattern p) {
  TaskBenchSpec s;
  s.pattern = p;
  s.steps = 3;
  s.width = 6;
  // Sleep tasks long enough that waves are still executing when the kill
  // fires and the ring detects it (kill 30 ms + timeout 60 ms).
  s.iterations = 4'000'000 * kTimeScale;  // 20 ms per task
  s.output_bytes = 32;
  s.mode = KernelMode::Sleep;
  return s;
}

TEST(MultiTenantFaults, WorkerKilledMidStreamEveryTenantRecovers) {
  std::vector<TenantStream> streams;
  for (Pattern p : all_patterns()) streams.push_back({tenant_ft_spec(p)});
  ClusterOptions opts = tenant_ft_opts(3);
  opts.kills.push_back({2, at_ms(30)});  // worker rank 2 dies mid-stream

  const core::RuntimeStats stats = run_multi_tenant(opts, streams);

  for (const TenantStream& st : streams) {
    SCOPED_TRACE(pattern_name(st.spec.pattern));
    EXPECT_EQ(st.checksum, expected_checksum(st.spec));
    EXPECT_EQ(st.stats.completed_waves, st.spec.steps + 1);
  }
  EXPECT_EQ(stats.workers_lost, 1);
  EXPECT_GE(stats.recoveries, 1);
  // The recovery episode is charged to the tenants whose waves replayed
  // (at checkpoint_period=1 that is the tenant(s) in the current log).
  std::int64_t charged = 0;
  std::int64_t charged_latency = 0;
  for (const TenantStream& st : streams) {
    charged += st.stats.recoveries;
    charged_latency += st.stats.recovery_latency_ns;
  }
  EXPECT_GE(charged, 1);
  EXPECT_GT(charged_latency, 0);
}

TEST(MultiTenantFaults, HeadKilledMidStreamElectedSuccessorFinishes) {
  std::vector<TenantStream> streams;
  for (Pattern p : all_patterns()) streams.push_back({tenant_ft_spec(p)});
  ClusterOptions opts = tenant_ft_opts(3);
  opts.checkpoint_locality = core::CheckpointLocality::Buddy;
  opts.kills.push_back({0, at_ms(30)});  // the HEAD dies mid-stream

  const core::RuntimeStats stats = run_multi_tenant(opts, streams);

  for (const TenantStream& st : streams) {
    SCOPED_TRACE(pattern_name(st.spec.pattern));
    EXPECT_EQ(st.checksum, expected_checksum(st.spec));
    EXPECT_EQ(st.stats.completed_waves, st.spec.steps + 1);
  }
  EXPECT_GE(stats.failovers, 1);
  EXPECT_GE(stats.recoveries, 1);
}

}  // namespace
}  // namespace ompc
