// Cross-runtime Task Bench validation: every runner (OMPC, MPI, StarPU-
// like, Charm-like) must reproduce the sequential reference checksum for
// every dependency pattern — this exercises the full stack end to end
// (matching, network, events, data manager, scheduler, baselines).
#include <gtest/gtest.h>

#include "taskbench/kernel.hpp"
#include "taskbench/runners.hpp"

namespace ompc::taskbench {
namespace {

TaskBenchSpec tiny_spec(Pattern p) {
  TaskBenchSpec s;
  s.pattern = p;
  s.steps = 6;
  s.width = 8;
  s.iterations = 0;  // no compute burn: validation only
  s.output_bytes = 32;
  s.mode = KernelMode::Sleep;
  return s;
}

mpi::NetworkModel instant() { return {}; }

class RunnerEquivalence
    : public ::testing::TestWithParam<std::tuple<std::string, Pattern, int>> {
};

TEST_P(RunnerEquivalence, ChecksumMatchesReference) {
  const auto& [runtime, pattern, nodes] = GetParam();
  const TaskBenchSpec spec = tiny_spec(pattern);
  const std::uint64_t expect = expected_checksum(spec);

  const RunResult r = run_named(runtime, spec, nodes, instant());
  EXPECT_EQ(r.checksum, expect)
      << runtime << " diverged on " << pattern_name(pattern) << " with "
      << nodes << " nodes";
}

INSTANTIATE_TEST_SUITE_P(
    AllRuntimesPatternsNodes, RunnerEquivalence,
    ::testing::Combine(
        ::testing::Values("ompc", "mpi", "starpu", "charm"),
        ::testing::Values(Pattern::Trivial, Pattern::Stencil1D, Pattern::Fft,
                          Pattern::Tree),
        ::testing::Values(1, 2, 3, 4)),
    [](const auto& info) {
      return std::get<0>(info.param) + "_" +
             pattern_name(std::get<1>(info.param)) + "_n" +
             std::to_string(std::get<2>(info.param));
    });

TEST(RunnerEquivalence, SequentialMatchesItself) {
  for (Pattern p : all_patterns()) {
    const TaskBenchSpec spec = tiny_spec(p);
    EXPECT_EQ(run_sequential(spec).checksum, expected_checksum(spec));
  }
}

TEST(RunnerEquivalence, WiderGraphUnderSimulatedNetwork) {
  // Non-instant network: exercises the delivery engine + link serialization
  // under every runner. Kept small so wire time stays in milliseconds.
  mpi::NetworkModel net{5'000, 2.0e9, 4};  // 5 us latency, 2 GB/s
  TaskBenchSpec spec = tiny_spec(Pattern::Stencil1D);
  spec.width = 16;
  spec.steps = 8;
  const std::uint64_t expect = expected_checksum(spec);
  for (const char* rt : {"ompc", "mpi", "starpu", "charm"}) {
    EXPECT_EQ(run_named(rt, spec, 4, net).checksum, expect) << rt;
  }
}

}  // namespace
}  // namespace ompc::taskbench
