// Wire-protocol round-trip tests for the event system's message formats.
#include <gtest/gtest.h>

#include "core/proto.hpp"

namespace ompc::core {
namespace {

TEST(Proto, EventAnnounceRoundTrip) {
  EventAnnounce a;
  a.kind = EventKind::Submit;
  a.tag = 12345;
  a.origin = 3;
  ArchiveWriter h;
  h.put(SubmitHeader{0xDEAD, 4096});
  a.header = h.take();

  const Bytes wire = a.serialize();
  const EventAnnounce b = EventAnnounce::deserialize(wire);
  EXPECT_EQ(b.kind, EventKind::Submit);
  EXPECT_EQ(b.tag, 12345);
  EXPECT_EQ(b.origin, 3);
  ArchiveReader r(b.header);
  const auto hdr = r.get<SubmitHeader>();
  EXPECT_EQ(hdr.dst, 0xDEADu);
  EXPECT_EQ(hdr.size, 4096u);
}

TEST(Proto, EmptyHeaderAnnounce) {
  EventAnnounce a;
  a.kind = EventKind::Shutdown;
  a.tag = 0;
  a.origin = 0;
  const EventAnnounce b = EventAnnounce::deserialize(a.serialize());
  EXPECT_EQ(b.kind, EventKind::Shutdown);
  EXPECT_TRUE(b.header.empty());
}

TEST(Proto, CompletionCarriesResult) {
  EventCompletion c;
  c.tag = 777;
  ArchiveWriter w;
  w.put<std::uint64_t>(0xABCDEF);
  c.result = w.take();
  const EventCompletion d = EventCompletion::deserialize(c.serialize());
  EXPECT_EQ(d.tag, 777);
  ArchiveReader r(d.result);
  EXPECT_EQ(r.get<std::uint64_t>(), 0xABCDEFu);
}

TEST(Proto, ExecuteHeaderRoundTrip) {
  ExecuteHeader h;
  h.kernel = 42;
  h.buffers = {1, 2, 3, 0xFFFFFFFFFFFFull};
  ArchiveWriter s;
  s.put<double>(2.5);
  s.put<int>(-1);
  h.scalars = s.take();

  const ExecuteHeader g = ExecuteHeader::deserialize(h.serialize());
  EXPECT_EQ(g.kernel, 42u);
  EXPECT_EQ(g.buffers, h.buffers);
  ArchiveReader r(g.scalars);
  EXPECT_DOUBLE_EQ(r.get<double>(), 2.5);
  EXPECT_EQ(r.get<int>(), -1);
}

TEST(Proto, ExecuteHeaderEmptyArgs) {
  ExecuteHeader h;
  h.kernel = 1;
  const ExecuteHeader g = ExecuteHeader::deserialize(h.serialize());
  EXPECT_TRUE(g.buffers.empty());
  EXPECT_TRUE(g.scalars.empty());
}

TEST(Proto, TruncatedAnnounceThrows) {
  EventAnnounce a;
  a.kind = EventKind::Alloc;
  a.tag = 5;
  a.origin = 1;
  ArchiveWriter h;
  h.put(AllocHeader{64});
  a.header = h.take();
  Bytes wire = a.serialize();
  wire.resize(wire.size() / 2);
  EXPECT_THROW(EventAnnounce::deserialize(wire), CheckError);
}

TEST(Proto, EventKindNamesAreDistinct) {
  std::set<std::string> names;
  for (EventKind k :
       {EventKind::Alloc, EventKind::Delete, EventKind::Submit,
        EventKind::Retrieve, EventKind::ExchangeSend, EventKind::ExchangeRecv,
        EventKind::Execute, EventKind::Shutdown}) {
    EXPECT_TRUE(names.insert(to_string(k)).second);
  }
  EXPECT_EQ(names.size(), 8u);
}

}  // namespace
}  // namespace ompc::core
