// CheckpointStore behaviour at wave boundaries: snapshot cadence follows
// checkpoint_period, rollback restores the last boundary (not the initial
// state), and multi-wave programs recover losing only the waves since the
// last checkpoint — re-executed with bit-identical results.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/runtime.hpp"
#include "offload/kernel_registry.hpp"
#include "taskbench/spec.hpp"

namespace ompc::core {
namespace {

/// buffers[0]: u64 cell. scalars: (sleep_ns). Adds 1 to the cell, burning
/// `sleep_ns` first so waves are long enough for mid-wave kills.
const offload::KernelId kIncrement =
    offload::KernelRegistry::instance().register_kernel(
        "test_checkpoint_increment", [](offload::KernelContext& ctx) {
          auto r = ctx.scalars();
          const auto sleep_ns = r.get<std::int64_t>();
          precise_sleep_ns(sleep_ns);
          *ctx.buffer<std::uint64_t>(0) += 1;
        });

/// Runs `waves` waves over `cells` u64 buffers; each wave increments every
/// cell once. Returns the final host values.
std::vector<std::uint64_t> run_increments(const ClusterOptions& opts,
                                          int waves, int cells,
                                          std::int64_t sleep_ns,
                                          RuntimeStats* stats_out = nullptr) {
  std::vector<std::uint64_t> data(static_cast<std::size_t>(cells), 0);
  const RuntimeStats stats = launch(opts, [&](Runtime& rt) {
    for (auto& c : data) rt.enter_data(&c, sizeof c);
    for (int w = 0; w < waves; ++w) {
      for (auto& c : data) {
        Args args;
        args.buf(&c).scalar(sleep_ns);
        rt.target({omp::inout(&c)}, kIncrement, std::move(args),
                  static_cast<double>(sleep_ns) / 1e9);
      }
      rt.wait_all();
    }
    for (auto& c : data) rt.exit_data(&c);
  });
  if (stats_out != nullptr) *stats_out = stats;
  return data;
}

TEST(Checkpoint, CadenceFollowsCheckpointPeriod) {
  ClusterOptions opts;
  opts.num_workers = 2;
  opts.checkpoint_period = 2;

  RuntimeStats stats;
  const auto vals = run_increments(opts, /*waves=*/5, /*cells=*/4,
                                   /*sleep_ns=*/0, &stats);
  for (const auto v : vals) EXPECT_EQ(v, 5u);
  // Boundaries before waves 0, 2, 4 (the exit wave, index 5, is captured
  // at neither: 5 % 2 != 0).
  EXPECT_EQ(stats.checkpoints, 3);
  EXPECT_EQ(stats.recoveries, 0);
}

TEST(Checkpoint, DisabledPeriodTakesNoSnapshots) {
  ClusterOptions opts;
  opts.num_workers = 2;
  opts.checkpoint_period = 0;

  RuntimeStats stats;
  const auto vals =
      run_increments(opts, /*waves=*/3, /*cells=*/4, /*sleep_ns=*/0, &stats);
  for (const auto v : vals) EXPECT_EQ(v, 3u);
  EXPECT_EQ(stats.checkpoints, 0);
  EXPECT_EQ(stats.checkpoint_bytes, 0);
}

TEST(Checkpoint, FailureAfterResultsDeliveredReplaysInsteadOfRegressing) {
  // Both waves complete and wave 1's exit_data delivers the results (2) to
  // the host; the worker then dies while the head idles, so the repair
  // runs at the final *empty* implicit barrier. Rollback rewrites the
  // exited buffers with the wave-0 snapshot (zeros) — replay of the logged
  // waves must then regenerate and re-deliver the results. Restoring
  // without replaying would silently hand the user zeros.
  ClusterOptions opts;
  opts.num_workers = 2;
  opts.heartbeat_period_ms = 5;
  opts.heartbeat_timeout_ms = 40;
  opts.checkpoint_period = 4;  // one boundary, before wave 0
  opts.kills.push_back({1, 40'000'000});

  std::vector<std::uint64_t> data(4, 0);
  RuntimeStats stats = launch(opts, [&](Runtime& rt) {
    for (int w = 0; w < 2; ++w) {
      for (auto& c : data) {
        if (w == 0) rt.enter_data(&c, sizeof c);
        Args args;
        args.buf(&c).scalar<std::int64_t>(0);
        rt.target({omp::inout(&c)}, kIncrement, std::move(args));
        if (w == 1) rt.exit_data(&c);
      }
      rt.wait_all();  // both waves done within a few ms
    }
    for (const auto v : data) EXPECT_EQ(v, 2u);  // results delivered
    // Idle past the kill (40 ms) and its detection (~80 ms): the failure
    // lands with nothing recorded, so the final implicit barrier sees an
    // empty graph and must still repair + replay.
    precise_sleep_ns(150'000'000);
  });
  for (const auto v : data) EXPECT_EQ(v, 2u);
  EXPECT_GE(stats.recoveries, 1);
  EXPECT_EQ(stats.workers_lost, 1);
  EXPECT_GE(stats.replayed_tasks, 1);
}

TEST(Checkpoint, MultiWaveRecoveryReplaysOnlySinceLastBoundary) {
  // 4 compute waves of ~60 ms each (4 cells over 2 workers x 2 handlers);
  // worker rank 1 dies at 100 ms, mid wave 2. Recovery must roll back to
  // the wave-2 boundary checkpoint and replay only the lost waves, ending
  // with every cell incremented exactly 4x.
  ClusterOptions opts;
  opts.num_workers = 2;
  opts.heartbeat_period_ms = 5;
  opts.heartbeat_timeout_ms = 50;
  opts.checkpoint_period = 2;
  opts.kills.push_back({1, 100'000'000});

  RuntimeStats stats;
  const auto vals = run_increments(opts, /*waves=*/4, /*cells=*/4,
                                   /*sleep_ns=*/60'000'000, &stats);
  for (const auto v : vals) EXPECT_EQ(v, 4u);
  EXPECT_GE(stats.recoveries, 1);
  EXPECT_EQ(stats.workers_lost, 1);
  EXPECT_GE(stats.replayed_tasks, 1);
}

}  // namespace
}  // namespace ompc::core
