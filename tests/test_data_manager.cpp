// Data Manager tests against §4.3's rules: placement, forwarding source
// selection, read-only replication, write invalidation, exit retrieval and
// cluster-wide cleanup — observed through snapshots and worker memory.
#include <gtest/gtest.h>

#include "core/data_manager.hpp"

namespace ompc::core {
namespace {

struct Cluster {
  explicit Cluster(int workers, Forwarding fw = Forwarding::Direct) {
    opts.num_workers = workers;
    opts.network = {};
    opts.forwarding = fw;
  }

  void run(const std::function<void(DataManager&, EventSystem&)>& body) {
    mpi::UniverseOptions uopts;
    uopts.ranks = opts.ranks();
    uopts.comms = 1 + opts.vci;
    mpi::Universe universe(uopts);
    universe.run([&](mpi::RankContext& ctx) {
      if (ctx.rank() == 0) {
        EventSystem events(ctx, opts, nullptr, nullptr);
        DataManager dm(events, opts);
        body(dm, events);
        dm.cleanup_all();
        events.shutdown_cluster();
      } else {
        WorkerMemory memory(&ctx.universe(), ctx.rank());
        omp::TaskRuntime pool(1);
        EventSystem events(ctx, opts, &memory, &pool);
        events.wait_until_stopped();
        EXPECT_EQ(memory.live(), 0u) << "rank " << ctx.rank() << " leaked";
      }
    });
  }

  ClusterOptions opts;
};

TEST(DataManager, RegisterAndSizeLookup) {
  Cluster c(1);
  c.run([](DataManager& dm, EventSystem&) {
    double buf[4] = {};
    dm.register_buffer(buf, sizeof buf);
    EXPECT_TRUE(dm.is_registered(buf));
    EXPECT_EQ(dm.buffer_size(buf), sizeof buf);
    EXPECT_FALSE(dm.is_registered(buf + 1));
    EXPECT_EQ(dm.num_buffers(), 1u);
  });
}

TEST(DataManager, DoubleRegisterFails) {
  Cluster c(1);
  c.run([](DataManager& dm, EventSystem&) {
    int x = 0;
    dm.register_buffer(&x, sizeof x);
    EXPECT_THROW(dm.register_buffer(&x, sizeof x), CheckError);
  });
}

TEST(DataManager, EnterPlacesBufferOnWorker) {
  Cluster c(2);
  c.run([](DataManager& dm, EventSystem&) {
    int buf[8] = {1, 2, 3, 4, 5, 6, 7, 8};
    dm.register_buffer(buf, sizeof buf);
    dm.enter_to_worker(1, buf, /*copy=*/true);
    const auto s = dm.snapshot(buf);
    EXPECT_TRUE(s.valid_on_head);  // head copy stays fresh after enter
    EXPECT_TRUE(s.valid_workers.contains(1));
    EXPECT_FALSE(s.valid_workers.contains(2));
    EXPECT_TRUE(s.allocated_workers.contains(1));
  });
}

TEST(DataManager, AllocOnlyEnterAllocatesWithoutValidating) {
  Cluster c(1);
  c.run([](DataManager& dm, EventSystem&) {
    int buf[4] = {};
    dm.register_buffer(buf, sizeof buf);
    dm.enter_to_worker(1, buf, /*copy=*/false);
    const auto s = dm.snapshot(buf);
    EXPECT_TRUE(s.allocated_workers.contains(1));
    EXPECT_TRUE(s.valid_workers.empty());
  });
}

TEST(DataManager, PrepareArgsSubmitsFromHeadOnFirstUse) {
  Cluster c(2);
  c.run([](DataManager& dm, EventSystem&) {
    std::uint64_t buf = 0xABCD;
    dm.register_buffer(&buf, sizeof buf);
    const void* args[] = {&buf};
    const auto addrs = dm.prepare_args(2, args);
    ASSERT_EQ(addrs.size(), 1u);
    EXPECT_NE(addrs[0], 0u);
    EXPECT_EQ(dm.stats().submits.load(), 1);
    EXPECT_TRUE(dm.snapshot(&buf).valid_workers.contains(2));
  });
}

TEST(DataManager, ReadOnlyUseReplicatesAcrossWorkers) {
  Cluster c(3);
  c.run([](DataManager& dm, EventSystem&) {
    int buf[16] = {};
    dm.register_buffer(buf, sizeof buf);
    const void* args[] = {buf};
    dm.prepare_args(1, args);
    dm.prepare_args(2, args);
    dm.prepare_args(3, args);
    const auto s = dm.snapshot(buf);
    // §4.3: read-only data kept in all previous locations.
    EXPECT_EQ(s.valid_workers.size(), 3u);
  });
}

TEST(DataManager, SecondUseOnSameWorkerIsFree) {
  Cluster c(1);
  c.run([](DataManager& dm, EventSystem&) {
    int buf[4] = {};
    dm.register_buffer(buf, sizeof buf);
    const void* args[] = {buf};
    dm.prepare_args(1, args);
    const auto submits = dm.stats().submits.load();
    const auto allocs = dm.stats().allocs.load();
    dm.prepare_args(1, args);  // already valid: no transfer, no alloc
    EXPECT_EQ(dm.stats().submits.load(), submits);
    EXPECT_EQ(dm.stats().allocs.load(), allocs);
  });
}

TEST(DataManager, WriteInvalidatesOtherReplicas) {
  Cluster c(3);
  c.run([](DataManager& dm, EventSystem&) {
    int buf[16] = {};
    dm.register_buffer(buf, sizeof buf);
    const void* args[] = {buf};
    dm.prepare_args(1, args);
    dm.prepare_args(2, args);
    dm.prepare_args(3, args);

    dm.after_write(2, {omp::inout(buf)});
    const auto s = dm.snapshot(buf);
    // §4.3: writer keeps the only copy; stale replicas removed.
    EXPECT_EQ(s.valid_workers, std::set<mpi::Rank>{2});
    EXPECT_EQ(s.allocated_workers, std::set<mpi::Rank>{2});
    EXPECT_FALSE(s.valid_on_head);
    EXPECT_EQ(dm.stats().deletes.load(), 2);
  });
}

TEST(DataManager, ReadDependenceDoesNotInvalidate) {
  Cluster c(2);
  c.run([](DataManager& dm, EventSystem&) {
    int buf[4] = {};
    dm.register_buffer(buf, sizeof buf);
    const void* args[] = {buf};
    dm.prepare_args(1, args);
    dm.prepare_args(2, args);
    dm.after_write(2, {omp::in(buf)});  // in-dep: not a write
    EXPECT_EQ(dm.snapshot(buf).valid_workers.size(), 2u);
  });
}

TEST(DataManager, ForwardingUsesWorkerToWorkerExchange) {
  Cluster c(2);
  c.run([](DataManager& dm, EventSystem&) {
    std::uint64_t buf = 42;
    dm.register_buffer(&buf, sizeof buf);
    const void* args[] = {&buf};
    dm.prepare_args(1, args);
    dm.after_write(1, {omp::inout(&buf)});  // worker 1 owns the only copy

    dm.prepare_args(2, args);  // must forward 1 -> 2 directly
    EXPECT_EQ(dm.stats().exchanges.load(), 1);
    EXPECT_EQ(dm.stats().retrieves.load(), 0);  // head never staged it
    EXPECT_TRUE(dm.snapshot(&buf).valid_workers.contains(2));
  });
}

TEST(DataManager, ViaHeadForwardingStagesThroughHost) {
  Cluster c(2, Forwarding::ViaHead);
  c.run([](DataManager& dm, EventSystem&) {
    std::uint64_t buf = 42;
    dm.register_buffer(&buf, sizeof buf);
    const void* args[] = {&buf};
    dm.prepare_args(1, args);
    dm.after_write(1, {omp::inout(&buf)});
    dm.prepare_args(2, args);
    EXPECT_EQ(dm.stats().exchanges.load(), 0);
    EXPECT_EQ(dm.stats().retrieves.load(), 1);  // bounced via the head
    EXPECT_GE(dm.stats().submits.load(), 2);
  });
}

TEST(DataManager, ExitRetrievesFreshestCopyAndRemovesAll) {
  Cluster c(2);
  c.run([](DataManager& dm, EventSystem& es) {
    std::uint64_t buf = 7;
    dm.register_buffer(&buf, sizeof buf);
    const void* args[] = {&buf};
    const auto addrs = dm.prepare_args(1, args);

    // Worker 1 mutates its device copy; the head copy is now stale.
    const std::uint64_t updated = 1234;
    ArchiveWriter sh;
    sh.put(SubmitHeader{addrs[0], sizeof updated});
    Bytes payload(sizeof updated);
    std::memcpy(payload.data(), &updated, sizeof updated);
    es.run(1, EventKind::Submit, sh.take(), std::move(payload));
    dm.after_write(1, {omp::inout(&buf)});

    dm.exit_to_head(&buf, /*copy=*/true);
    EXPECT_EQ(buf, 1234u);                // retrieved from worker 1
    EXPECT_FALSE(dm.is_registered(&buf));  // unmapped
  });
}

TEST(DataManager, ExitWithoutCopySkipsRetrieve) {
  Cluster c(1);
  c.run([](DataManager& dm, EventSystem&) {
    std::uint64_t buf = 7;
    dm.register_buffer(&buf, sizeof buf);
    const void* args[] = {&buf};
    dm.prepare_args(1, args);
    dm.after_write(1, {omp::inout(&buf)});
    dm.exit_to_head(&buf, /*copy=*/false);
    EXPECT_EQ(buf, 7u);  // host value untouched
    EXPECT_EQ(dm.stats().retrieves.load(), 0);
  });
}

TEST(DataManager, ConcurrentFanOutFromOneSource) {
  Cluster c(4);
  c.run([](DataManager& dm, EventSystem&) {
    std::vector<std::uint64_t> buf(64, 9);
    dm.register_buffer(buf.data(), buf.size() * sizeof(std::uint64_t));
    const void* args[] = {buf.data()};
    dm.prepare_args(1, args);
    dm.after_write(1, {omp::inout(buf.data())});

    // Three threads replicate from worker 1 concurrently.
    std::vector<std::thread> threads;
    for (mpi::Rank w = 2; w <= 4; ++w) {
      threads.emplace_back([&dm, &buf, w] {
        const void* a[] = {buf.data()};
        dm.prepare_args(w, a);
      });
    }
    for (auto& t : threads) t.join();
    EXPECT_EQ(dm.snapshot(buf.data()).valid_workers.size(), 4u);
    EXPECT_EQ(dm.stats().exchanges.load(), 3);
  });
}

TEST(DataManager, ConcurrentRequestsForSameWorkerCoalesce) {
  Cluster c(1);
  c.run([](DataManager& dm, EventSystem&) {
    std::vector<std::uint64_t> buf(64, 3);
    dm.register_buffer(buf.data(), buf.size() * sizeof(std::uint64_t));
    std::vector<std::thread> threads;
    for (int i = 0; i < 4; ++i) {
      threads.emplace_back([&] {
        const void* a[] = {buf.data()};
        dm.prepare_args(1, a);
      });
    }
    for (auto& t : threads) t.join();
    // Exactly one alloc + one submit despite four concurrent requests.
    EXPECT_EQ(dm.stats().allocs.load(), 1);
    EXPECT_EQ(dm.stats().submits.load(), 1);
  });
}

TEST(DataManager, PrepareUnregisteredBufferFails) {
  Cluster c(1);
  c.run([](DataManager& dm, EventSystem&) {
    int x = 0;
    const void* args[] = {&x};
    EXPECT_THROW(dm.prepare_args(1, args), CheckError);
  });
}

TEST(DataManager, CleanupReleasesEverything) {
  Cluster c(2);
  c.run([](DataManager& dm, EventSystem&) {
    int a = 0, b = 0;
    dm.register_buffer(&a, sizeof a);
    dm.register_buffer(&b, sizeof b);
    const void* args_a[] = {&a};
    const void* args_b[] = {&b};
    dm.prepare_args(1, args_a);
    dm.prepare_args(2, args_b);
    dm.cleanup_all();
    EXPECT_EQ(dm.num_buffers(), 0u);
    // Worker-side leak assertions run in Cluster::run at shutdown.
  });
}

}  // namespace
}  // namespace ompc::core
