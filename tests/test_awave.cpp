// Awave numerical tests: velocity models, FD propagation physics, RTM
// imaging, and serial-vs-OMPC-distributed equivalence.
#include <gtest/gtest.h>

#include <cmath>

#include "awave/driver.hpp"

namespace ompc::awave {
namespace {

VelocityModel test_model() { return sigsbee_like(72, 64, 10.0f); }

FdParams fast_params() {
  FdParams p;
  p.nt = 160;
  p.f_peak = 18.0f;
  p.sponge = 12;
  p.snapshot_stride = 4;
  return p;
}

TEST(AwaveModel, LayeredModelHasRequestedInterfaces) {
  const VelocityModel m =
      layered_model(32, 40, 10.0f, {10, 25}, {1500.0f, 2500.0f, 3500.0f});
  EXPECT_FLOAT_EQ(m.at(5, 0), 1500.0f);
  EXPECT_FLOAT_EQ(m.at(5, 9), 1500.0f);
  EXPECT_FLOAT_EQ(m.at(5, 10), 2500.0f);
  EXPECT_FLOAT_EQ(m.at(5, 24), 2500.0f);
  EXPECT_FLOAT_EQ(m.at(5, 25), 3500.0f);
  EXPECT_FLOAT_EQ(m.at(31, 39), 3500.0f);
}

TEST(AwaveModel, SigsbeeLikeHasWaterSaltAndGradient) {
  const VelocityModel m = test_model();
  EXPECT_FLOAT_EQ(m.at(m.nx / 2, 0), 1492.0f);       // water at surface
  EXPECT_FLOAT_EQ(m.at(m.nx / 2, m.nz / 2), 4480.0f);  // salt core
  EXPECT_GT(m.vmax(), 4000.0f);
  EXPECT_LT(m.vmin(), 1600.0f);
}

TEST(AwaveModel, MarmousiLikeVelocityRangeIsPlausible) {
  const VelocityModel m = marmousi_like(80, 60);
  EXPECT_GE(m.vmin(), 1200.0f);
  EXPECT_LE(m.vmax(), 4600.0f);
  // Lateral variation: two columns in the same row differ (dipping beds).
  bool lateral = false;
  for (int z = m.nz / 4; z < m.nz && !lateral; ++z)
    lateral = std::abs(m.at(10, z) - m.at(70, z)) > 50.0f;
  EXPECT_TRUE(lateral);
}

TEST(AwaveFd, StableDtScalesInverselyWithVelocity) {
  VelocityModel slow(32, 32, 10.0f, 1500.0f);
  VelocityModel fast(32, 32, 10.0f, 4500.0f);
  EXPECT_NEAR(stable_dt(slow) / stable_dt(fast), 3.0f, 1e-4f);
}

TEST(AwaveFd, PropagationStaysFiniteAndBounded) {
  const VelocityModel m = test_model();
  FdParams p = fast_params();
  Propagator prop(m, p);
  for (int t = 0; t < p.nt; ++t) {
    prop.step(m.nx / 2, 2, ricker(static_cast<float>(t) * prop.dt(),
                                  p.f_peak));
  }
  double energy = 0.0;
  for (float v : prop.current()) {
    ASSERT_TRUE(std::isfinite(v));
    energy += static_cast<double>(v) * v;
  }
  EXPECT_GT(energy, 0.0);   // the wave exists
  EXPECT_LT(energy, 1e12);  // and did not blow up (CFL respected)
}

TEST(AwaveFd, WaveArrivesAtReceiverAtPhysicalTime) {
  // Homogeneous medium: direct arrival at a receiver `d` meters away must
  // land near t = d / v (within the wavelet's half-width).
  VelocityModel m(200, 80, 10.0f, 2000.0f);
  FdParams p;
  p.nt = 500;
  p.f_peak = 15.0f;
  p.sponge = 16;
  Shot shot{40, 6};
  Receivers recv{6, 1};
  const Seismogram seis = model_shot(m, p, shot, recv);

  const int rec_x = 100;  // 600 m offset from the source at x=40
  int peak_t = 0;
  float peak_amp = 0.0f;
  for (int t = 0; t < p.nt; ++t) {
    const float a = std::abs(seis.at(t, rec_x));
    if (a > peak_amp) {
      peak_amp = a;
      peak_t = t;
    }
  }
  ASSERT_GT(peak_amp, 0.0f);
  Propagator prop(m, p);  // for dt
  const float arrival_s = static_cast<float>(peak_t) * prop.dt();
  const float expected_s = 600.0f / 2000.0f + 1.2f / p.f_peak;  // + delay
  EXPECT_NEAR(arrival_s, expected_s, 0.12f);
}

TEST(AwaveRtm, ImageConcentratesNearReflector) {
  // Single flat reflector: RTM energy below the interface (minus sponge)
  // should dominate the smooth region well above it.
  // Window must cover the two-way travel time to the reflector: 300 m down
  // and back at 1800 m/s ~ 0.33 s, plus the wavelet delay.
  const int nx = 96, nz = 72;
  const int iface = 30;
  const VelocityModel m =
      layered_model(nx, nz, 10.0f, {iface}, {1800.0f, 3200.0f});
  FdParams p = fast_params();
  p.nt = 750;
  const std::vector<Shot> shots = spread_shots(m, 1);
  const Seismogram obs = model_shot(m, p, shots[0], Receivers{});
  const Image img = rtm_shot(m, p, shots[0], Receivers{}, obs);

  auto band_rms = [&](int z0, int z1) {
    double acc = 0.0;
    int n = 0;
    for (int z = z0; z < z1; ++z) {
      for (int x = p.sponge + 4; x < nx - p.sponge - 4; ++x) {
        const float v = img[static_cast<std::size_t>(z) * nx + x];
        acc += static_cast<double>(v) * v;
        ++n;
      }
    }
    return std::sqrt(acc / n);
  };
  // Reflector band vs a quiet band in the middle of the water column.
  const double near_reflector = band_rms(iface - 4, iface + 4);
  const double quiet = band_rms(iface / 2 - 4, iface / 2 + 4);
  EXPECT_GT(near_reflector, 2.0 * quiet);
}

TEST(AwaveDriver, DistributedImageMatchesSerial) {
  AwaveConfig cfg;
  cfg.model = sigsbee_like(64, 56);
  cfg.params = fast_params();
  cfg.params.nt = 120;
  cfg.shots = 4;

  const AwaveResult serial = migrate_serial(cfg);

  core::ClusterOptions opts;
  opts.num_workers = 2;
  opts.network = {};  // instant
  const AwaveResult dist = migrate_ompc(cfg, opts);

  ASSERT_EQ(serial.image.size(), dist.image.size());
  // Identical arithmetic per shot, stacking in the same order: bitwise.
  for (std::size_t i = 0; i < serial.image.size(); ++i) {
    ASSERT_EQ(serial.image[i], dist.image[i]) << "pixel " << i;
  }
  EXPECT_GT(image_rms(dist.image), 0.0);
  EXPECT_EQ(dist.stats.target_tasks, cfg.shots);
}

TEST(AwaveDriver, EachModelProducesDistinctImage) {
  AwaveConfig cfg;
  cfg.params = fast_params();
  cfg.params.nt = 100;
  cfg.shots = 2;

  cfg.model = sigsbee_like(64, 56);
  const AwaveResult sig = migrate_serial(cfg);
  cfg.model = marmousi_like(64, 56);
  const AwaveResult mar = migrate_serial(cfg);

  EXPECT_NE(image_rms(sig.image), image_rms(mar.image));
}

}  // namespace
}  // namespace ompc::awave
