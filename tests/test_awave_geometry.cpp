// Awave geometry and API edge cases: shot spreading, receiver strides,
// propagator reset, imaging helpers and CFL guards.
#include <gtest/gtest.h>

#include <cmath>

#include "awave/rtm.hpp"

namespace ompc::awave {
namespace {

TEST(Shots, SpreadIsEvenAndInBounds) {
  const VelocityModel m(100, 50, 10.0f);
  const auto shots = spread_shots(m, 4);
  ASSERT_EQ(shots.size(), 4u);
  EXPECT_EQ(shots[0].sx, 12);  // (0.5/4) * 100
  EXPECT_EQ(shots[1].sx, 37);
  EXPECT_EQ(shots[2].sx, 62);
  EXPECT_EQ(shots[3].sx, 87);
  for (const Shot& s : shots) {
    EXPECT_GE(s.sx, 0);
    EXPECT_LT(s.sx, m.nx);
    EXPECT_GE(s.sz, 4);  // below the FD halo
  }
}

TEST(Shots, SingleShotCentered) {
  const VelocityModel m(100, 50, 10.0f);
  const auto shots = spread_shots(m, 1);
  ASSERT_EQ(shots.size(), 1u);
  EXPECT_EQ(shots[0].sx, 50);
}

TEST(Receivers, StrideControlsCount) {
  Receivers r;
  r.stride = 1;
  EXPECT_EQ(r.count(100), 100);
  r.stride = 3;
  EXPECT_EQ(r.count(100), 34);  // ceil(100/3)
  r.stride = 100;
  EXPECT_EQ(r.count(100), 1);
}

TEST(Receivers, StridedSeismogramSubsamplesColumns) {
  VelocityModel m(60, 40, 10.0f, 2000.0f);
  FdParams p;
  p.nt = 60;
  Receivers dense{6, 1};
  Receivers sparse{6, 4};
  const Seismogram full = model_shot(m, p, Shot{30, 6}, dense);
  const Seismogram sub = model_shot(m, p, Shot{30, 6}, sparse);
  EXPECT_EQ(full.nrec, 60);
  EXPECT_EQ(sub.nrec, 15);
  // Strided traces are exactly the dense traces at multiples of 4.
  for (int t = 0; t < p.nt; ++t) {
    for (int r = 0; r < sub.nrec; ++r) {
      EXPECT_FLOAT_EQ(sub.at(t, r), full.at(t, r * 4));
    }
  }
}

TEST(Propagator, ResetClearsFields) {
  VelocityModel m(40, 40, 10.0f, 2000.0f);
  FdParams p;
  Propagator prop(m, p);
  for (int t = 0; t < 30; ++t) prop.step(20, 6, 1.0f);
  double energy = 0.0;
  for (float v : prop.current()) energy += static_cast<double>(v) * v;
  EXPECT_GT(energy, 0.0);
  prop.reset();
  for (float v : prop.current()) EXPECT_EQ(v, 0.0f);
}

TEST(Propagator, ExplicitDtHonoredAndCflGuarded) {
  VelocityModel m(32, 32, 10.0f, 3000.0f);
  FdParams ok;
  ok.dt = stable_dt(m) * 0.5f;
  Propagator prop(m, ok);
  EXPECT_FLOAT_EQ(prop.dt(), ok.dt);

  FdParams bad;
  bad.dt = stable_dt(m, 1.0f) * 1.5f;  // violates CFL
  EXPECT_THROW(Propagator(m, bad), CheckError);
}

TEST(Propagator, SnapshotStrideControlsCount) {
  VelocityModel m(40, 40, 10.0f, 2000.0f);
  FdParams p;
  p.nt = 40;
  p.snapshot_stride = 5;
  std::vector<Field> snaps;
  (void)model_shot(m, p, Shot{20, 6}, Receivers{}, &snaps);
  EXPECT_EQ(snaps.size(), 8u);  // t = 0,5,...,35
}

TEST(Imaging, StackAccumulatesAndChecksSizes) {
  Image total(16, 1.0f);
  Image part(16, 2.0f);
  stack_image(total, part);
  for (float v : total) EXPECT_FLOAT_EQ(v, 3.0f);
  Image wrong(8);
  EXPECT_THROW(stack_image(total, wrong), CheckError);
}

TEST(Imaging, RmsBehaves) {
  Image zero(100, 0.0f);
  EXPECT_DOUBLE_EQ(image_rms(zero), 0.0);
  Image ones(100, 1.0f);
  EXPECT_NEAR(image_rms(ones), 1.0, 1e-12);
  Image mixed(2);
  mixed[0] = 3.0f;
  mixed[1] = 4.0f;
  EXPECT_NEAR(image_rms(mixed), std::sqrt(12.5), 1e-6);
}

TEST(Wavelet, RickerPeaksAtDelayAndDecays) {
  const float f = 15.0f;
  const float delay = 1.2f / f;
  EXPECT_NEAR(ricker(delay, f), 1.0f, 1e-5f);  // maximum at the delay
  EXPECT_LT(std::abs(ricker(0.0f, f)), 0.1f);  // near-zero at onset
  EXPECT_LT(std::abs(ricker(delay * 3.0f, f)), 1e-3f);  // decayed
}

TEST(Wavelet, ZeroCrossingsSurroundPeak) {
  const float f = 20.0f;
  const float delay = 1.2f / f;
  // The Ricker has two symmetric negative lobes around the main peak.
  const float lobe = 1.0f / (static_cast<float>(M_PI) * f) * 1.5f;
  EXPECT_LT(ricker(delay - lobe, f), 0.0f);
  EXPECT_LT(ricker(delay + lobe, f), 0.0f);
}

}  // namespace
}  // namespace ompc::awave
