// ChannelPlan acceptance on the 3D halo-exchange workload (src/halo): a
// steady-state iterative app must arm persistent channels and re-use its
// device allocations, produce results bitwise-identical to the serial
// oracle and the transient ablation, and survive every event that
// invalidates the plan — worker death + rollback, head failover, and
// runtime join/leave — without diverging. The _shm ctest rerun runs the
// same suite over the shared-memory conduit.
#include <gtest/gtest.h>

#include <cstdint>

#include "halo/halo3d.hpp"

namespace ompc::halo {
namespace {

#if defined(__SANITIZE_THREAD__)
#define OMPC_TEST_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define OMPC_TEST_TSAN 1
#endif
#endif
#ifdef OMPC_TEST_TSAN
constexpr std::int64_t kTimeScale = 8;
#else
constexpr std::int64_t kTimeScale = 1;
#endif

constexpr std::int64_t at_ms(std::int64_t ms) {
  return ms * 1'000'000 * kTimeScale;
}

HaloSpec small_spec(int iters) {
  HaloSpec s;
  s.nx = 2;
  s.ny = 2;
  s.nz = 1;
  s.cells = 6;
  s.iters = iters;
  return s;
}

core::ClusterOptions base_opts(bool persistent) {
  core::ClusterOptions o;
  o.num_workers = 3;
  o.persistent_channels = persistent;
  return o;
}

core::ClusterOptions fault_opts(bool persistent) {
  core::ClusterOptions o = base_opts(persistent);
  o.heartbeat_period_ms = 5;
  o.heartbeat_timeout_ms = 60;
  o.checkpoint_period = 1;
  o.checkpoint_locality = core::CheckpointLocality::Buddy;
  return o;
}

TEST(Halo3D, SteadyStateArmsChannelsAndMatchesSerial) {
  const HaloSpec spec = small_spec(6);
  const HaloResult r = run_halo3d(base_opts(true), spec);
  EXPECT_EQ(r.checksum, serial_checksum(spec));
  // Identical waves: everything past the warmup runs armed and re-uses
  // the previous iteration's device allocations.
  EXPECT_GT(r.stats.schedule_cache_hits, 0);
  EXPECT_GT(r.stats.channels_armed, 0);
  EXPECT_GT(r.stats.persistent_reuses, 0);
}

TEST(Halo3D, TransientAblationBitwiseIdenticalAndNeverArms) {
  const HaloSpec spec = small_spec(5);
  const HaloResult on = run_halo3d(base_opts(true), spec);
  const HaloResult off = run_halo3d(base_opts(false), spec);
  EXPECT_EQ(on.checksum, off.checksum);
  EXPECT_EQ(off.checksum, serial_checksum(spec));
  EXPECT_EQ(off.stats.channels_armed, 0);
  EXPECT_EQ(off.stats.persistent_reuses, 0);
  // The ablation pays for renegotiation every wave.
  EXPECT_LT(on.stats.messages_sent, off.stats.messages_sent);
}

TEST(Halo3D, WorkerDeathRollbackInvalidatesArmedChannels) {
  // A worker dies while the plan is armed: rollback disarms, recovery
  // replays, steady state re-arms — result bitwise-identical.
  const HaloSpec spec = small_spec(15);
  core::ClusterOptions opts = fault_opts(true);
  opts.kills.push_back({2, at_ms(25)});
  const HaloResult r = run_halo3d(opts, spec);
  EXPECT_EQ(r.checksum, serial_checksum(spec));
  EXPECT_GE(r.stats.recoveries, 1);
  EXPECT_GT(r.stats.channels_armed, 0);
}

TEST(Halo3D, HeadFailoverWithChannelsArmedStaysBitwise) {
  // The head dies mid-run: the promoted head starts with no armed plan and
  // a disjoint channel-tag stripe, so orphaned payloads can never match.
  const HaloSpec spec = small_spec(15);
  core::ClusterOptions opts = fault_opts(true);
  opts.kills.push_back({0, at_ms(25)});
  const HaloResult r = run_halo3d(opts, spec);
  EXPECT_EQ(r.checksum, serial_checksum(spec));
  EXPECT_GE(r.stats.failovers, 1);
}

TEST(Halo3D, JoinAndLeaveInvalidateWhileIterating) {
  // Membership churn mid-run: a spare joins (the schedule re-spreads, the
  // plan disarms and re-arms around the new shape), then a worker leaves.
  const HaloSpec spec = small_spec(12);
  core::ClusterOptions opts = fault_opts(true);
  opts.spare_workers = 1;
  const HaloResult r = run_halo3d(
      opts, spec, [](core::Runtime& rt, int it) {
        if (it == 4) EXPECT_EQ(rt.request_join(), 4);
        if (it == 8) EXPECT_TRUE(rt.request_leave(2));
      });
  EXPECT_EQ(r.checksum, serial_checksum(spec));
  EXPECT_EQ(r.stats.workers_joined, 1);
  EXPECT_EQ(r.stats.workers_retired, 1);
  EXPECT_GT(r.stats.channels_armed, 0);
}

}  // namespace
}  // namespace ompc::halo
