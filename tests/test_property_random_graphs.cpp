// Property-based sweep: randomly shaped Task Bench specs (seeded, so
// reproducible) must validate on every runtime — the broadest end-to-end
// invariant in the suite: for any (pattern, steps, width, nodes, bytes),
// checksum(runner) == checksum(sequential reference).
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "taskbench/kernel.hpp"
#include "taskbench/runners.hpp"

namespace ompc::taskbench {
namespace {

struct RandomCase {
  TaskBenchSpec spec;
  int nodes;
};

RandomCase make_case(std::uint64_t seed) {
  XorShift64 rng(seed);
  RandomCase c;
  c.spec.pattern =
      all_patterns()[static_cast<std::size_t>(rng.next_below(4))];
  c.spec.steps = 1 + static_cast<int>(rng.next_below(9));
  c.spec.width = 1 + static_cast<int>(rng.next_below(12));
  c.spec.iterations = 0;
  c.spec.output_bytes = 16 + rng.next_below(200);
  c.nodes = 1 + static_cast<int>(rng.next_below(5));
  return c;
}

class RandomGraphs : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomGraphs, AllRuntimesAgreeWithReference) {
  const RandomCase c = make_case(GetParam());
  const std::uint64_t expect = expected_checksum(c.spec);
  SCOPED_TRACE(std::string("pattern=") + pattern_name(c.spec.pattern) +
               " steps=" + std::to_string(c.spec.steps) +
               " width=" + std::to_string(c.spec.width) +
               " nodes=" + std::to_string(c.nodes) +
               " bytes=" + std::to_string(c.spec.output_bytes));
  for (const char* rt : {"ompc", "mpi", "starpu", "charm"}) {
    EXPECT_EQ(run_named(rt, c.spec, c.nodes, {}).checksum, expect) << rt;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomGraphs,
                         ::testing::Range<std::uint64_t>(1, 25));

}  // namespace
}  // namespace ompc::taskbench
