// Property-based sweep: randomly shaped Task Bench specs (seeded, so
// reproducible) must validate on every runtime — the broadest end-to-end
// invariant in the suite: for any (pattern, steps, width, nodes, bytes),
// checksum(runner) == checksum(sequential reference).
//
// The second half is the randomized tenancy soak: N random DAG streams
// driven from N threads through the multi-tenant serve loop, with a
// randomized kill schedule (none / a worker / the head) layered on top.
// The invariant is absolute: the run either completes with every tenant's
// checksum bitwise equal to its solo oracle, or fails with a clean
// RecoveryError — never wrong data, never a hang. Failures print the RNG
// seed; rerun a single case with OMPC_TEST_SEED=<seed>.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/fault.hpp"
#include "taskbench/kernel.hpp"
#include "taskbench/runners.hpp"

namespace ompc::taskbench {
namespace {

struct RandomCase {
  TaskBenchSpec spec;
  int nodes;
};

RandomCase make_case(std::uint64_t seed) {
  XorShift64 rng(seed);
  RandomCase c;
  c.spec.pattern =
      all_patterns()[static_cast<std::size_t>(rng.next_below(4))];
  c.spec.steps = 1 + static_cast<int>(rng.next_below(9));
  c.spec.width = 1 + static_cast<int>(rng.next_below(12));
  c.spec.iterations = 0;
  c.spec.output_bytes = 16 + rng.next_below(200);
  c.nodes = 1 + static_cast<int>(rng.next_below(5));
  return c;
}

class RandomGraphs : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomGraphs, AllRuntimesAgreeWithReference) {
  const RandomCase c = make_case(GetParam());
  const std::uint64_t expect = expected_checksum(c.spec);
  SCOPED_TRACE(std::string("pattern=") + pattern_name(c.spec.pattern) +
               " steps=" + std::to_string(c.spec.steps) +
               " width=" + std::to_string(c.spec.width) +
               " nodes=" + std::to_string(c.nodes) +
               " bytes=" + std::to_string(c.spec.output_bytes));
  for (const char* rt : {"ompc", "mpi", "starpu", "charm"}) {
    EXPECT_EQ(run_named(rt, c.spec, c.nodes, {}).checksum, expect) << rt;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomGraphs,
                         ::testing::Range<std::uint64_t>(1, 25));

// --- randomized tenancy soak ----------------------------------------------

#if defined(__SANITIZE_THREAD__)
#define OMPC_TEST_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define OMPC_TEST_TSAN 1
#endif
#endif
#ifdef OMPC_TEST_TSAN
constexpr std::int64_t kTimeScale = 8;
#else
constexpr std::int64_t kTimeScale = 1;
#endif

/// The soak seed: the suite's parameter, unless OMPC_TEST_SEED overrides it
/// (every instantiation then replays that one case — the reproduction knob
/// the failure message advertises).
std::uint64_t soak_seed(std::uint64_t param) {
  if (const char* env = std::getenv("OMPC_TEST_SEED"))
    return std::strtoull(env, nullptr, 10);
  return param;
}

class TenancySoak : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TenancySoak, RandomStreamsRandomKillsNeverYieldWrongData) {
  const std::uint64_t seed = soak_seed(GetParam());
  SCOPED_TRACE("tenancy soak seed=" + std::to_string(seed) +
               " — rerun just this case with OMPC_TEST_SEED=" +
               std::to_string(seed));
  XorShift64 rng(seed);

  const int tenants = 2 + static_cast<int>(rng.next_below(3));  // 2..4
  std::vector<TenantStream> streams;
  for (int n = 0; n < tenants; ++n) {
    TenantStream st;
    st.spec.pattern =
        all_patterns()[static_cast<std::size_t>(rng.next_below(4))];
    st.spec.steps = 2 + static_cast<int>(rng.next_below(4));   // 2..5
    st.spec.width = 1 + static_cast<int>(rng.next_below(5));   // 1..5
    // Sleep tasks of 1..10 ms: long enough that kills land mid-wave.
    st.spec.iterations =
        (200'000 + static_cast<std::int64_t>(rng.next_below(1'800'001))) *
        kTimeScale;
    st.spec.output_bytes = 16 + rng.next_below(113);
    st.spec.mode = KernelMode::Sleep;
    st.weight = 0.5 + 0.5 * static_cast<double>(rng.next_below(4));  // 0.5..2
    streams.push_back(st);
  }

  core::ClusterOptions opts;
  opts.num_workers = 3;
  opts.heartbeat_period_ms = 5;
  opts.heartbeat_timeout_ms = 60;
  opts.checkpoint_period = 1;
  opts.checkpoint_locality = core::CheckpointLocality::Buddy;
  opts.max_pending_waves = 4;

  // Kill schedule: nothing, one worker, or the head — at a random instant
  // early enough to land while waves are still streaming.
  const std::uint64_t fate = rng.next_below(3);
  const std::int64_t kill_ns =
      (20 + static_cast<std::int64_t>(rng.next_below(61))) * 1'000'000 *
      kTimeScale;
  if (fate == 1) {
    opts.kills.push_back(
        {1 + static_cast<mpi::Rank>(rng.next_below(3)), kill_ns});
  } else if (fate == 2) {
    opts.kills.push_back({0, kill_ns});  // the head
  }

  try {
    run_multi_tenant(opts, streams);
  } catch (const core::RecoveryError&) {
    // Tolerated: an unrecoverable cascade must surface cleanly. Anything
    // else (wrong checksum below, another exception type, a hang caught by
    // the ctest timeout) is a failure.
    return;
  }
  for (const TenantStream& st : streams) {
    SCOPED_TRACE(std::string("pattern=") + pattern_name(st.spec.pattern) +
                 " steps=" + std::to_string(st.spec.steps) +
                 " width=" + std::to_string(st.spec.width) +
                 " weight=" + std::to_string(st.weight));
    EXPECT_EQ(st.checksum, expected_checksum(st.spec));
    EXPECT_EQ(st.stats.completed_waves, st.spec.steps + 1);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TenancySoak,
                         ::testing::Range<std::uint64_t>(1, 7));

}  // namespace
}  // namespace ompc::taskbench
