// Task Bench pattern properties (the paper's Fig. 4) and kernel
// determinism: structural invariants checked across widths and steps with
// parameterized sweeps.
#include <gtest/gtest.h>

#include <algorithm>

#include "taskbench/kernel.hpp"
#include "taskbench/spec.hpp"

namespace ompc::taskbench {
namespace {

TaskBenchSpec make(Pattern p, int steps, int width) {
  TaskBenchSpec s;
  s.pattern = p;
  s.steps = steps;
  s.width = width;
  return s;
}

TEST(Pattern, NamesRoundTrip) {
  for (Pattern p : all_patterns()) {
    EXPECT_EQ(pattern_from_name(pattern_name(p)), p);
  }
  EXPECT_THROW(pattern_from_name("bogus"), CheckError);
}

TEST(Pattern, FirstStepNeverHasDependencies) {
  for (Pattern p : all_patterns()) {
    const TaskBenchSpec s = make(p, 4, 16);
    for (int i = 0; i < s.width; ++i) {
      EXPECT_TRUE(dependencies(s, 0, i).empty());
    }
  }
}

TEST(Pattern, TrivialHasNoDependenciesAnywhere) {
  const TaskBenchSpec s = make(Pattern::Trivial, 8, 8);
  for (int t = 0; t < s.steps; ++t)
    for (int i = 0; i < s.width; ++i)
      EXPECT_TRUE(dependencies(s, t, i).empty());
}

TEST(Pattern, StencilIsThreePointPeriodic) {
  const TaskBenchSpec s = make(Pattern::Stencil1D, 4, 8);
  EXPECT_EQ(dependencies(s, 1, 3), (std::vector<int>{2, 3, 4}));
  // Periodic wrap at both ends.
  EXPECT_EQ(dependencies(s, 1, 0), (std::vector<int>{0, 1, 7}));
  EXPECT_EQ(dependencies(s, 1, 7), (std::vector<int>{0, 6, 7}));
}

TEST(Pattern, StencilDegenerateWidths) {
  // Width 1: all neighbours collapse to the point itself.
  EXPECT_EQ(dependencies(make(Pattern::Stencil1D, 2, 1), 1, 0),
            (std::vector<int>{0}));
  // Width 2: wrap makes exactly two distinct deps.
  EXPECT_EQ(dependencies(make(Pattern::Stencil1D, 2, 2), 1, 0),
            (std::vector<int>{0, 1}));
}

TEST(Pattern, FftButterflyDistanceDoublesPerStep) {
  const TaskBenchSpec s = make(Pattern::Fft, 4, 8);  // log2(8)=3 levels
  EXPECT_EQ(dependencies(s, 1, 0), (std::vector<int>{0, 1}));  // dist 1
  EXPECT_EQ(dependencies(s, 2, 0), (std::vector<int>{0, 2}));  // dist 2
  EXPECT_EQ(dependencies(s, 3, 0), (std::vector<int>{0, 4}));  // dist 4
}

TEST(Pattern, FftPartnersAreSymmetric) {
  const TaskBenchSpec s = make(Pattern::Fft, 4, 16);
  for (int t = 1; t < s.steps; ++t) {
    for (int i = 0; i < s.width; ++i) {
      for (int j : dependencies(s, t, i)) {
        if (j == i) continue;
        const auto back = dependencies(s, t, j);
        EXPECT_TRUE(std::find(back.begin(), back.end(), i) != back.end())
            << "asymmetric butterfly at t=" << t << " i=" << i;
      }
    }
  }
}

TEST(Pattern, TreeParentIsHalf) {
  const TaskBenchSpec s = make(Pattern::Tree, 3, 8);
  EXPECT_EQ(dependencies(s, 1, 0), (std::vector<int>{0}));
  EXPECT_EQ(dependencies(s, 1, 5), (std::vector<int>{2}));
  EXPECT_EQ(dependencies(s, 1, 7), (std::vector<int>{3}));
}

TEST(Pattern, TreeConsumersAreChildren) {
  const TaskBenchSpec s = make(Pattern::Tree, 3, 8);
  EXPECT_EQ(consumers(s, 0, 1), (std::vector<int>{2, 3}));
  EXPECT_EQ(consumers(s, 0, 3), (std::vector<int>{6, 7}));
  // Point 0's children include itself (0/2 == 0): self not removed here,
  // the runner layer treats self-edges as local state.
  const auto c0 = consumers(s, 0, 0);
  EXPECT_TRUE(std::find(c0.begin(), c0.end(), 1) != c0.end());
}

class PatternSweep
    : public ::testing::TestWithParam<std::tuple<Pattern, int, int>> {};

TEST_P(PatternSweep, DependenciesInBoundsSortedUnique) {
  const auto& [pattern, steps, width] = GetParam();
  const TaskBenchSpec s = make(pattern, steps, width);
  for (int t = 0; t < steps; ++t) {
    for (int i = 0; i < width; ++i) {
      const auto deps = dependencies(s, t, i);
      EXPECT_TRUE(std::is_sorted(deps.begin(), deps.end()));
      EXPECT_TRUE(std::adjacent_find(deps.begin(), deps.end()) == deps.end());
      for (int j : deps) {
        EXPECT_GE(j, 0);
        EXPECT_LT(j, width);
      }
    }
  }
}

TEST_P(PatternSweep, ConsumersAreTheExactDualOfDependencies) {
  const auto& [pattern, steps, width] = GetParam();
  const TaskBenchSpec s = make(pattern, steps, width);
  for (int t = 0; t + 1 < steps; ++t) {
    for (int i = 0; i < width; ++i) {
      for (int c : consumers(s, t, i)) {
        const auto deps = dependencies(s, t + 1, c);
        EXPECT_TRUE(std::find(deps.begin(), deps.end(), i) != deps.end());
      }
      // And the reverse direction.
      for (int j = 0; j < width; ++j) {
        const auto deps = dependencies(s, t + 1, j);
        if (std::find(deps.begin(), deps.end(), i) != deps.end()) {
          const auto cons = consumers(s, t, i);
          EXPECT_TRUE(std::find(cons.begin(), cons.end(), j) != cons.end());
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PatternSweep,
    ::testing::Combine(::testing::Values(Pattern::Trivial, Pattern::Stencil1D,
                                         Pattern::Fft, Pattern::Tree),
                       ::testing::Values(2, 5),
                       ::testing::Values(1, 2, 7, 8, 16)),
    [](const auto& info) {
      return std::string(pattern_name(std::get<0>(info.param))) + "_s" +
             std::to_string(std::get<1>(info.param)) + "_w" +
             std::to_string(std::get<2>(info.param));
    });

TEST(CcrBytes, InverseToCcrAndClamped) {
  mpi::NetworkModel net{10'000, 100.0e6, 1};  // 10 us, 100 MB/s
  // 10 ms task at CCR 1.0: comm 10 ms => ~1 MB (minus latency).
  const std::size_t b1 = bytes_for_ccr(0.010, 1.0, net);
  EXPECT_NEAR(static_cast<double>(b1), 999'000.0, 2'000.0);
  // CCR 2.0 halves the data; CCR 0.5 doubles it.
  EXPECT_GT(bytes_for_ccr(0.010, 0.5, net), b1);
  EXPECT_LT(bytes_for_ccr(0.010, 2.0, net), b1);
  // Degenerate: comm budget below latency clamps to the 16-byte floor.
  EXPECT_EQ(bytes_for_ccr(1e-9, 10.0, net), 16u);
}

TEST(Kernel, DigestDependsOnCoordinatesAndInputs) {
  TaskBenchSpec s;
  s.iterations = 0;
  s.output_bytes = 32;
  Bytes out1(32), out2(32), out3(32);
  const std::uint64_t in1[] = {1};
  const std::uint64_t in2[] = {2};
  point_compute(s, 1, 2, std::span<const std::uint64_t>(in1, 1), out1);
  point_compute(s, 1, 3, std::span<const std::uint64_t>(in1, 1), out2);
  point_compute(s, 1, 2, std::span<const std::uint64_t>(in2, 1), out3);
  EXPECT_NE(read_digest(out1), read_digest(out2));  // coordinate sensitivity
  EXPECT_NE(read_digest(out1), read_digest(out3));  // input sensitivity
}

TEST(Kernel, DigestDeterministicAcrossCalls) {
  TaskBenchSpec s;
  s.iterations = 0;
  s.output_bytes = 64;
  Bytes a(64), b(64);
  point_compute(s, 3, 4, {}, a);
  point_compute(s, 3, 4, {}, b);
  EXPECT_EQ(a, b);
}

TEST(Kernel, CombineDigestsIsOrderIndependent) {
  const std::uint64_t d1[] = {5, 9, 1};
  const std::uint64_t d2[] = {1, 5, 9};
  EXPECT_EQ(combine_digests(d1), combine_digests(d2));
}

TEST(Kernel, BusyBurnReturnsStableNoise) {
  EXPECT_EQ(burn(KernelMode::Busy, 1000), burn(KernelMode::Busy, 1000));
  EXPECT_NE(burn(KernelMode::Busy, 1000), burn(KernelMode::Busy, 1001));
  EXPECT_EQ(burn(KernelMode::Busy, 0), 0u);
}

TEST(Kernel, SleepBurnTakesCalibratedTime) {
  const Stopwatch timer;
  burn(KernelMode::Sleep, 1'000'000);  // 5 ms at 5 ns/iter
  const double ms = timer.elapsed_ms();
  EXPECT_GE(ms, 4.5);
  EXPECT_LE(ms, 25.0);  // generous upper bound for a loaded CI machine
}

TEST(Kernel, ExpectedChecksumMatchesKnownStructure) {
  // Changing any spec dimension must change the reference checksum.
  TaskBenchSpec a = make(Pattern::Stencil1D, 4, 8);
  TaskBenchSpec b = make(Pattern::Stencil1D, 5, 8);
  TaskBenchSpec c = make(Pattern::Stencil1D, 4, 9);
  TaskBenchSpec d = make(Pattern::Fft, 4, 8);
  EXPECT_NE(expected_checksum(a), expected_checksum(b));
  EXPECT_NE(expected_checksum(a), expected_checksum(c));
  EXPECT_NE(expected_checksum(a), expected_checksum(d));
  EXPECT_EQ(expected_checksum(a), expected_checksum(a));
}

TEST(Render, PatternRenderingMentionsDependencies) {
  const std::string r = render_pattern(Pattern::Stencil1D, 4, 2);
  EXPECT_NE(r.find("stencil_1d"), std::string::npos);
  EXPECT_NE(r.find("<-"), std::string::npos);
}

}  // namespace
}  // namespace ompc::taskbench
