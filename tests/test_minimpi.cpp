// minimpi substrate tests: MPI matching semantics, wildcards, ordering,
// nonblocking ops, collectives, and the simulated network's timing and
// link-serialization behaviour.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>

#include "common/time.hpp"
#include "minimpi/mpi.hpp"

namespace ompc::mpi {
namespace {

UniverseOptions instant(int ranks, int comms = 1) {
  UniverseOptions o;
  o.ranks = ranks;
  o.comms = comms;
  return o;
}

TEST(MiniMpiBasic, SendRecvRoundTrip) {
  Universe::launch(instant(2), [](RankContext& ctx) {
    Comm comm = ctx.world();
    if (ctx.rank() == 0) {
      const int v = 42;
      comm.send(&v, sizeof v, 1, 7);
    } else {
      int v = 0;
      const Status st = comm.recv(&v, sizeof v, 0, 7);
      EXPECT_EQ(v, 42);
      EXPECT_EQ(st.source, 0);
      EXPECT_EQ(st.tag, 7);
      EXPECT_EQ(st.count, sizeof v);
    }
  });
}

TEST(MiniMpiBasic, SelfSendWorks) {
  Universe::launch(instant(1), [](RankContext& ctx) {
    Comm comm = ctx.world();
    const double v = 3.14;
    comm.isend(&v, sizeof v, 0, 1);
    double out = 0.0;
    comm.recv(&out, sizeof out, 0, 1);
    EXPECT_DOUBLE_EQ(out, 3.14);
  });
}

TEST(MiniMpiBasic, ZeroByteMessages) {
  Universe::launch(instant(2), [](RankContext& ctx) {
    Comm comm = ctx.world();
    if (ctx.rank() == 0) {
      comm.send(nullptr, 0, 1, 9);
    } else {
      const Status st = comm.recv(nullptr, 0, 0, 9);
      EXPECT_EQ(st.count, 0u);
    }
  });
}

TEST(MiniMpiMatching, TagsSelectMessages) {
  Universe::launch(instant(2), [](RankContext& ctx) {
    Comm comm = ctx.world();
    if (ctx.rank() == 0) {
      const int a = 1, b = 2;
      comm.send(&a, sizeof a, 1, 10);
      comm.send(&b, sizeof b, 1, 20);
    } else {
      int v = 0;
      comm.recv(&v, sizeof v, 0, 20);  // out of arrival order, by tag
      EXPECT_EQ(v, 2);
      comm.recv(&v, sizeof v, 0, 10);
      EXPECT_EQ(v, 1);
    }
  });
}

TEST(MiniMpiMatching, AnySourceAndAnyTagWildcards) {
  Universe::launch(instant(3), [](RankContext& ctx) {
    Comm comm = ctx.world();
    if (ctx.rank() != 0) {
      const int v = ctx.rank() * 100;
      comm.send(&v, sizeof v, 0, ctx.rank());
    } else {
      int seen = 0;
      for (int i = 0; i < 2; ++i) {
        int v = 0;
        const Status st = comm.recv(&v, sizeof v, kAnySource, kAnyTag);
        EXPECT_EQ(v, st.source * 100);
        EXPECT_EQ(st.tag, st.source);
        seen += st.source;
      }
      EXPECT_EQ(seen, 3);  // both ranks delivered exactly once
    }
  });
}

TEST(MiniMpiMatching, NonOvertakingSameSourceSameTag) {
  Universe::launch(instant(2), [](RankContext& ctx) {
    Comm comm = ctx.world();
    if (ctx.rank() == 0) {
      for (int i = 0; i < 100; ++i) comm.send(&i, sizeof i, 1, 5);
    } else {
      for (int i = 0; i < 100; ++i) {
        int v = -1;
        comm.recv(&v, sizeof v, 0, 5);
        EXPECT_EQ(v, i);  // FIFO per (source, tag)
      }
    }
  });
}

TEST(MiniMpiMatching, CommunicatorContextsIsolateTraffic) {
  Universe::launch(instant(2, 2), [](RankContext& ctx) {
    Comm c0 = ctx.comm(0);
    Comm c1 = ctx.comm(1);
    if (ctx.rank() == 0) {
      const int a = 10, b = 20;
      c1.send(&b, sizeof b, 1, 3);  // same tag, different context
      c0.send(&a, sizeof a, 1, 3);
    } else {
      int v = 0;
      c0.recv(&v, sizeof v, 0, 3);
      EXPECT_EQ(v, 10);
      c1.recv(&v, sizeof v, 0, 3);
      EXPECT_EQ(v, 20);
    }
  });
}

TEST(MiniMpiMatching, DupCreatesIsolatedContext) {
  Universe::launch(instant(2), [](RankContext& ctx) {
    Comm world = ctx.world();
    Comm dup = world.dup();
    EXPECT_NE(world.context(), dup.context());
    if (ctx.rank() == 0) {
      const int v = 7;
      dup.send(&v, sizeof v, 1, 1);
    } else {
      EXPECT_FALSE(world.iprobe(0, 1).has_value() &&
                   dup.iprobe(0, 1).has_value());
      int v = 0;
      dup.recv(&v, sizeof v, 0, 1);
      EXPECT_EQ(v, 7);
    }
  });
}

TEST(MiniMpiNonblocking, IrecvBeforeSendCompletes) {
  Universe::launch(instant(2), [](RankContext& ctx) {
    Comm comm = ctx.world();
    if (ctx.rank() == 1) {
      int v = 0;
      Request r = comm.irecv(&v, sizeof v, 0, 2);
      EXPECT_TRUE(r.valid());
      comm.send(nullptr, 0, 0, 3);  // signal: receiver is ready
      const Status st = r.wait();
      EXPECT_EQ(v, 99);
      EXPECT_EQ(st.count, sizeof v);
    } else {
      comm.recv(nullptr, 0, 1, 3);
      const int v = 99;
      comm.send(&v, sizeof v, 1, 2);
    }
  });
}

TEST(MiniMpiNonblocking, TestPollsWithoutBlocking) {
  Universe::launch(instant(2), [](RankContext& ctx) {
    Comm comm = ctx.world();
    if (ctx.rank() == 1) {
      int v = 0;
      Request r = comm.irecv(&v, sizeof v, 0, 4);
      EXPECT_FALSE(r.test());  // nothing sent yet
      comm.send(nullptr, 0, 0, 5);
      r.wait();
      EXPECT_TRUE(r.test());
      EXPECT_EQ(v, 31);
    } else {
      comm.recv(nullptr, 0, 1, 5);
      const int v = 31;
      comm.send(&v, sizeof v, 1, 4);
    }
  });
}

TEST(MiniMpiProbe, ProbeReportsSizeWithoutConsuming) {
  Universe::launch(instant(2), [](RankContext& ctx) {
    Comm comm = ctx.world();
    if (ctx.rank() == 0) {
      std::vector<int> vals{1, 2, 3, 4, 5};
      comm.send(vals.data(), vals.size() * sizeof(int), 1, 8);
    } else {
      const Status st = comm.probe(0, 8);
      EXPECT_EQ(st.count, 5 * sizeof(int));
      // Probe again: the message is still there.
      EXPECT_TRUE(comm.iprobe(0, 8).has_value());
      const Bytes payload = comm.recv_bytes(0, 8);
      EXPECT_EQ(payload.size(), 5 * sizeof(int));
      EXPECT_FALSE(comm.iprobe(0, 8).has_value());  // now consumed
    }
  });
}

TEST(MiniMpiCollectives, BarrierSynchronizes) {
  std::atomic<int> phase{0};
  Universe::launch(instant(4), [&](RankContext& ctx) {
    Comm comm = ctx.world();
    phase.fetch_add(1);
    comm.barrier();
    // After the barrier every rank must observe all 4 arrivals.
    EXPECT_EQ(phase.load(), 4);
    comm.barrier();
  });
}

TEST(MiniMpiCollectives, BcastFromEveryRoot) {
  for (int root = 0; root < 4; ++root) {
    Universe::launch(instant(4), [&](RankContext& ctx) {
      Comm comm = ctx.world();
      std::array<double, 3> buf{};
      if (ctx.rank() == root) buf = {1.5, 2.5, static_cast<double>(root)};
      comm.bcast(buf.data(), sizeof buf, root);
      EXPECT_DOUBLE_EQ(buf[0], 1.5);
      EXPECT_DOUBLE_EQ(buf[2], static_cast<double>(root));
    });
  }
}

TEST(MiniMpiCollectives, GatherCollectsPerRankBlobs) {
  Universe::launch(instant(3), [](RankContext& ctx) {
    Comm comm = ctx.world();
    // Rank r contributes r+1 bytes of value r.
    Bytes mine(static_cast<std::size_t>(ctx.rank() + 1),
               static_cast<std::byte>(ctx.rank()));
    const auto all = comm.gather_bytes(mine, 0);
    if (ctx.rank() == 0) {
      ASSERT_EQ(all.size(), 3u);
      for (int r = 0; r < 3; ++r) {
        EXPECT_EQ(all[static_cast<std::size_t>(r)].size(),
                  static_cast<std::size_t>(r + 1));
        EXPECT_EQ(all[static_cast<std::size_t>(r)][0],
                  static_cast<std::byte>(r));
      }
    } else {
      EXPECT_TRUE(all.empty());
    }
  });
}

TEST(MiniMpiCollectives, AllReduceSumMatchesOnAllRanks) {
  Universe::launch(instant(5), [](RankContext& ctx) {
    Comm comm = ctx.world();
    const std::uint64_t total =
        comm.allreduce_sum(static_cast<std::uint64_t>(ctx.rank() + 1));
    EXPECT_EQ(total, 15u);  // 1+2+3+4+5
  });
}

TEST(MiniMpiNetwork, LatencyDelaysDelivery) {
  UniverseOptions o;
  o.ranks = 2;
  o.network.latency_ns = 5'000'000;  // 5 ms
  Universe::launch(o, [](RankContext& ctx) {
    Comm comm = ctx.world();
    if (ctx.rank() == 0) {
      comm.recv(nullptr, 0, 1, 1);  // handshake: both sides ready
      const Stopwatch timer;
      const int v = 1;
      comm.send(&v, sizeof v, 1, 2);
      int r = 0;
      comm.recv(&r, sizeof r, 1, 3);
      // Round trip >= 2x latency.
      EXPECT_GE(timer.elapsed_ms(), 9.0);
    } else {
      comm.send(nullptr, 0, 0, 1);
      int v = 0;
      comm.recv(&v, sizeof v, 0, 2);
      comm.send(&v, sizeof v, 0, 3);
    }
  });
}

TEST(MiniMpiNetwork, BandwidthScalesWithSize) {
  UniverseOptions o;
  o.ranks = 2;
  o.network.bandwidth_Bps = 10.0e6;  // 10 MB/s
  Universe::launch(o, [](RankContext& ctx) {
    Comm comm = ctx.world();
    const std::size_t big = 100'000;  // 10 ms on the wire
    if (ctx.rank() == 0) {
      comm.recv(nullptr, 0, 1, 1);
      Bytes payload(big);
      const Stopwatch timer;
      comm.isend(payload.data(), big, 1, 2);
      comm.recv(nullptr, 0, 1, 3);
      EXPECT_GE(timer.elapsed_ms(), 9.0);
      EXPECT_LE(timer.elapsed_ms(), 200.0);
    } else {
      comm.send(nullptr, 0, 0, 1);
      Bytes sink(big);
      comm.recv(sink.data(), big, 0, 2);
      comm.send(nullptr, 0, 0, 3);
    }
  });
}

TEST(MiniMpiNetwork, SameLinkSerializesDifferentLinksDoNot) {
  UniverseOptions o;
  o.ranks = 3;
  o.network.bandwidth_Bps = 10.0e6;  // 10 MB/s => 10 ms per 100 KB
  o.network.channels = 1;
  Universe::launch(o, [](RankContext& ctx) {
    Comm comm = ctx.world();
    const std::size_t big = 100'000;
    if (ctx.rank() == 0) {
      // Handshake, then two messages down the SAME link back to back.
      comm.recv(nullptr, 0, 1, 1);
      Bytes payload(big);
      comm.isend(payload.data(), big, 1, 2);
      comm.isend(payload.data(), big, 1, 3);
    } else if (ctx.rank() == 1) {
      comm.send(nullptr, 0, 0, 1);
      Bytes sink(big);
      const Stopwatch timer;
      comm.recv(sink.data(), big, 0, 2);
      comm.recv(sink.data(), big, 0, 3);
      // Serialized: ~20 ms total, not ~10.
      EXPECT_GE(timer.elapsed_ms(), 18.0);
    }
  });
}

TEST(MiniMpiNetwork, SelfSendBypassesTheWire) {
  UniverseOptions o;
  o.ranks = 2;
  o.network.latency_ns = 50'000'000;  // 50 ms: wire traffic is slow
  Universe::launch(o, [](RankContext& ctx) {
    if (ctx.rank() != 0) return;
    Comm comm = ctx.world();
    const Stopwatch timer;
    const int v = 5;
    comm.isend(&v, sizeof v, 0, 1);
    int r = 0;
    comm.recv(&r, sizeof r, 0, 1);
    EXPECT_EQ(r, 5);
    EXPECT_LT(timer.elapsed_ms(), 10.0);  // local queue, not the NIC
  });
}

TEST(MiniMpiStress, ManyConcurrentPairsAllDeliver) {
  const int ranks = 8;
  const int msgs = 200;
  std::atomic<std::int64_t> received{0};
  Universe::launch(instant(ranks), [&](RankContext& ctx) {
    Comm comm = ctx.world();
    const int me = ctx.rank();
    const int peer = me ^ 1;  // pairs (0,1) (2,3) ...
    std::vector<Request> sends;
    for (int i = 0; i < msgs; ++i) {
      const std::uint64_t v =
          (static_cast<std::uint64_t>(me) << 32) | static_cast<unsigned>(i);
      sends.push_back(comm.isend(&v, sizeof v, peer, i));
    }
    for (int i = 0; i < msgs; ++i) {
      std::uint64_t v = 0;
      comm.recv(&v, sizeof v, peer, i);
      EXPECT_EQ(v >> 32, static_cast<std::uint64_t>(peer));
      EXPECT_EQ(v & 0xffffffffu, static_cast<unsigned>(i));
      received.fetch_add(1);
    }
    wait_all(sends);
  });
  EXPECT_EQ(received.load(), ranks * msgs);
}

TEST(MiniMpiStress, MultiThreadedRank) {
  // MPI_THREAD_MULTIPLE semantics: several threads of one rank send and
  // receive concurrently on distinct tags.
  Universe::launch(instant(2), [](RankContext& ctx) {
    Comm comm = ctx.world();
    constexpr int kThreads = 4;
    constexpr int kMsgs = 50;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        const int base = 1000 * (t + 1);
        if (ctx.rank() == 0) {
          for (int i = 0; i < kMsgs; ++i) {
            const int v = base + i;
            comm.send(&v, sizeof v, 1, base + i);
          }
        } else {
          for (int i = 0; i < kMsgs; ++i) {
            int v = 0;
            comm.recv(&v, sizeof v, 0, base + i);
            EXPECT_EQ(v, base + i);
          }
        }
      });
    }
    for (auto& th : threads) th.join();
  });
}

TEST(MiniMpiErrors, RankExceptionPropagates) {
  EXPECT_THROW(Universe::launch(instant(1),
                                [](RankContext&) {
                                  throw std::runtime_error("rank failed");
                                }),
               std::runtime_error);
}

TEST(MiniMpiErrors, UserTagRangeEnforced) {
  Universe::launch(instant(1), [](RankContext& ctx) {
    Comm comm = ctx.world();
    const int v = 1;
    EXPECT_THROW(comm.send(&v, sizeof v, 0, kCollectiveTagBase), CheckError);
    EXPECT_THROW(comm.send(&v, sizeof v, 0, -3), CheckError);
  });
}

TEST(MiniMpiErrors, TruncationIsFatal) {
  Universe::launch(instant(1), [](RankContext& ctx) {
    Comm comm = ctx.world();
    const std::uint64_t v = 1;
    comm.isend(&v, sizeof v, 0, 1);
    std::uint32_t small = 0;
    EXPECT_THROW(comm.recv(&small, sizeof small, 0, 1), CheckError);
  });
}

// --- conduit-parameterized transport behaviour ---------------------------
//
// The same protocol-level guarantees must hold on every transport: these
// run the core matching/collective/probe paths on both the in-process
// conduit and the shared-memory ring conduit. (When OMPC_CONDUIT forces a
// specific conduit process-wide, the mismatched parameterization skips —
// the forced conduit is already covered by its own instantiation.)

class MiniMpiConduit : public ::testing::TestWithParam<ConduitKind> {
 protected:
  void SetUp() override {
    if (resolve_conduit_kind(GetParam()) != GetParam())
      GTEST_SKIP() << "OMPC_CONDUIT overrides this parameterization";
  }

  UniverseOptions opts(int ranks, int comms = 1) const {
    UniverseOptions o = instant(ranks, comms);
    o.conduit = GetParam();
    return o;
  }
};

TEST_P(MiniMpiConduit, PointToPointWithWildcards) {
  Universe::launch(opts(3), [](RankContext& ctx) {
    Comm comm = ctx.world();
    if (ctx.rank() != 0) {
      const int v = ctx.rank() * 11;
      comm.send(&v, sizeof v, 0, ctx.rank());
    } else {
      int seen = 0;
      for (int i = 0; i < 2; ++i) {
        int v = 0;
        const Status st = comm.recv(&v, sizeof v, kAnySource, kAnyTag);
        EXPECT_EQ(v, st.source * 11);
        seen += st.source;
      }
      EXPECT_EQ(seen, 3);
    }
  });
}

TEST_P(MiniMpiConduit, NonOvertakingPerSourceTag) {
  Universe::launch(opts(2), [](RankContext& ctx) {
    Comm comm = ctx.world();
    if (ctx.rank() == 0) {
      for (int i = 0; i < 200; ++i) comm.send(&i, sizeof i, 1, 5);
    } else {
      for (int i = 0; i < 200; ++i) {
        int v = -1;
        comm.recv(&v, sizeof v, 0, 5);
        EXPECT_EQ(v, i);
      }
    }
  });
}

TEST_P(MiniMpiConduit, CollectivesAgree) {
  Universe::launch(opts(4), [](RankContext& ctx) {
    Comm comm = ctx.world();
    comm.barrier();
    std::uint64_t v = ctx.rank() == 2 ? 77u : 0u;
    comm.bcast(&v, sizeof v, 2);
    EXPECT_EQ(v, 77u);
    const std::uint64_t total =
        comm.allreduce_sum(static_cast<std::uint64_t>(ctx.rank() + 1));
    EXPECT_EQ(total, 10u);
  });
}

TEST_P(MiniMpiConduit, ProbeAndCancel) {
  Universe::launch(opts(2), [](RankContext& ctx) {
    Comm comm = ctx.world();
    if (ctx.rank() == 0) {
      std::vector<int> vals{9, 8, 7};
      comm.send(vals.data(), vals.size() * sizeof(int), 1, 6);
    } else {
      const Status st = comm.probe(0, 6);
      EXPECT_EQ(st.count, 3 * sizeof(int));
      const Bytes payload = comm.recv_bytes(0, 6);
      EXPECT_EQ(payload.size(), 3 * sizeof(int));
      // A posted receive that never matches can be cancelled cleanly.
      int v = 0;
      Request r = comm.irecv(&v, sizeof v, 0, 999);
      comm.cancel(r);
    }
  });
}

TEST_P(MiniMpiConduit, LargePayloadsSurviveChunking) {
  // 1 MiB payloads: far beyond the shm ring capacity (64 KiB), so the shm
  // conduit must chunk the record through the ring without corruption.
  Universe::launch(opts(2), [](RankContext& ctx) {
    Comm comm = ctx.world();
    const std::size_t big = 1 << 20;
    if (ctx.rank() == 0) {
      Bytes payload(big);
      for (std::size_t i = 0; i < big; ++i)
        payload[i] = static_cast<std::byte>(i * 31 + 7);
      comm.send(payload.data(), big, 1, 12);
    } else {
      Bytes sink(big);
      const Status st = comm.recv(sink.data(), big, 0, 12);
      EXPECT_EQ(st.count, big);
      std::size_t bad = 0;
      for (std::size_t i = 0; i < big; ++i)
        if (sink[i] != static_cast<std::byte>(i * 31 + 7)) ++bad;
      EXPECT_EQ(bad, 0u);
    }
  });
}

TEST_P(MiniMpiConduit, ConduitNameMatchesSelection) {
  Universe u(opts(1));
  EXPECT_EQ(u.conduit_kind(), GetParam());
  EXPECT_STREQ(u.conduit_name(), to_string(GetParam()));
}

// --- persistent (pre-posted) channels ------------------------------------

TEST_P(MiniMpiConduit, PersistentChannelRearmsBitwiseIdentical) {
  // One send_init/recv_init pair cycled many times: every cycle must
  // deliver exactly the bytes of that cycle (no stale slot, no cross-cycle
  // mixing) and the reuse counter must track completed cycles.
  Universe::launch(opts(2), [](RankContext& ctx) {
    Comm comm = ctx.world();
    constexpr int kCycles = 16;
    constexpr std::size_t kWords = 32;
    std::array<std::uint64_t, kWords> buf{};
    if (ctx.rank() == 0) {
      PersistentRequest send = comm.send_init(buf.data(), sizeof buf, 1, 21);
      for (int cyc = 0; cyc < kCycles; ++cyc) {
        for (std::size_t i = 0; i < kWords; ++i)
          buf[i] = static_cast<std::uint64_t>(cyc) * 1000 + i;
        send.start();
        send.wait();  // transport staged the bytes: buffer reusable
      }
      EXPECT_EQ(send.cycles(), kCycles);
    } else {
      PersistentRequest recv = comm.recv_init(buf.data(), sizeof buf, 0, 21);
      for (int cyc = 0; cyc < kCycles; ++cyc) {
        recv.start();
        const Status st = recv.wait();
        EXPECT_EQ(st.source, 0);
        EXPECT_EQ(st.tag, 21);
        EXPECT_EQ(st.count, sizeof buf);
        for (std::size_t i = 0; i < kWords; ++i)
          EXPECT_EQ(buf[i], static_cast<std::uint64_t>(cyc) * 1000 + i);
      }
      EXPECT_EQ(recv.cycles(), kCycles);
    }
  });
}

TEST_P(MiniMpiConduit, PersistentMisuseIsALogicError) {
  Universe::launch(opts(2), [](RankContext& ctx) {
    Comm comm = ctx.world();
    if (ctx.rank() == 1) {
      int v = 0;
      // Fixed shape is the point of the channel: wildcards are rejected.
      EXPECT_THROW(comm.recv_init(&v, sizeof v, kAnySource, 5), CheckError);
      PersistentRequest recv = comm.recv_init(&v, sizeof v, 0, 5);
      EXPECT_THROW(recv.wait(), std::logic_error);  // wait before start
      recv.start();
      // Re-start while the armed cycle is genuinely in flight (the sender
      // has not been signalled yet) is a missing wait().
      EXPECT_THROW(recv.start(), std::logic_error);
      comm.send(nullptr, 0, 0, 6);  // now ask for the payload
      const Status st = recv.wait();
      EXPECT_EQ(v, 77);
      EXPECT_EQ(st.count, sizeof v);
      EXPECT_EQ(recv.cycles(), 1);
    } else {
      comm.recv(nullptr, 0, 1, 6);
      const int v = 77;
      comm.send(&v, sizeof v, 1, 5);
    }
  });
}

TEST_P(MiniMpiConduit, KillWhilePersistentRecvArmedFailsTheCycle) {
  // A rank death must fail an armed persistent receive like a cancelled
  // receive — never leave a zombie pre-posted slot — and the channel stays
  // dead (sticky) for subsequent start() calls.
  Universe::launch(opts(2), [](RankContext& ctx) {
    Comm comm = ctx.world();
    if (ctx.rank() == 1) {
      int v = 0;
      PersistentRequest recv = comm.recv_init(&v, sizeof v, 0, 9);
      recv.start();
      ctx.universe().kill_rank(0, 0);
      while (!ctx.universe().is_dead(0))
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      try {
        recv.wait();
        FAIL() << "an armed receive from a corpse must not complete";
      } catch (const RankKilledError& e) {
        EXPECT_EQ(e.rank(), 0);
      }
      EXPECT_THROW(recv.start(), RankKilledError);  // sticky
    }
    // Rank 0's thread unwinds via its poisoned mailbox.
  });
}

TEST_P(MiniMpiConduit, RecvInitFromDeadRankFailsOnStart) {
  // Arming toward an already-dead peer fails the pending start() instead
  // of parking a slot no send can ever match.
  Universe::launch(opts(2), [](RankContext& ctx) {
    Comm comm = ctx.world();
    if (ctx.rank() == 1) {
      ctx.universe().kill_rank(0, 0);
      while (!ctx.universe().is_dead(0))
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      int v = 0;
      PersistentRequest recv = comm.recv_init(&v, sizeof v, 0, 9);
      EXPECT_THROW(recv.start(), RankKilledError);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Conduits, MiniMpiConduit,
                         ::testing::Values(ConduitKind::InProcess,
                                           ConduitKind::Shm),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

TEST(MiniMpiConduitEnv, UnknownConduitNameIsRejected) {
  // Validated at Universe construction with a clear error (satellite of
  // the conduit redesign): a typo'd OMPC_CONDUIT must not silently fall
  // back to the default transport.
  EXPECT_THROW(parse_conduit_name("gasnet"), ConduitError);
  EXPECT_EQ(parse_conduit_name("shm"), ConduitKind::Shm);
  EXPECT_EQ(parse_conduit_name("pshm"), ConduitKind::Shm);
  EXPECT_EQ(parse_conduit_name("inprocess"), ConduitKind::InProcess);
}

class MiniMpiRankCount : public ::testing::TestWithParam<int> {};

TEST_P(MiniMpiRankCount, RingPassesTokenThroughAllRanks) {
  const int n = GetParam();
  Universe::launch(instant(n), [&](RankContext& ctx) {
    Comm comm = ctx.world();
    const int me = ctx.rank();
    if (n == 1) return;
    if (me == 0) {
      int token = 1;
      comm.send(&token, sizeof token, 1, 0);
      comm.recv(&token, sizeof token, n - 1, 0);
      EXPECT_EQ(token, n);  // incremented once per hop
    } else {
      int token = 0;
      comm.recv(&token, sizeof token, me - 1, 0);
      ++token;
      comm.send(&token, sizeof token, (me + 1) % n, 0);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Rings, MiniMpiRankCount,
                         ::testing::Values(1, 2, 3, 5, 8, 16, 33));

}  // namespace
}  // namespace ompc::mpi
