// One-sided (RMA) window tests: put/get landing semantics, flush ordering,
// registration validation (duplicates, overlap), unknown-window behaviour,
// and fault injection against pending one-sided operations — on both
// transport conduits.
#include <gtest/gtest.h>

#include <array>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>

#include "minimpi/mpi.hpp"

namespace ompc::mpi {
namespace {

class WindowConduit : public ::testing::TestWithParam<ConduitKind> {
 protected:
  void SetUp() override {
    if (resolve_conduit_kind(GetParam()) != GetParam())
      GTEST_SKIP() << "OMPC_CONDUIT overrides this parameterization";
  }

  UniverseOptions opts(int ranks) const {
    UniverseOptions o;
    o.ranks = ranks;
    o.conduit = GetParam();
    return o;
  }
};

TEST_P(WindowConduit, PutLandsBytesInTargetWindow) {
  Universe::launch(opts(2), [](RankContext& ctx) {
    Comm comm = ctx.world();
    if (ctx.rank() == 1) {
      std::array<int, 8> region{};
      Window win = comm.win_create(42, region.data(), sizeof region);
      comm.send(nullptr, 0, 0, 1);  // window is up
      comm.recv(nullptr, 0, 0, 2);  // put has been flushed
      for (int i = 0; i < 8; ++i) EXPECT_EQ(region[static_cast<std::size_t>(i)], i * 3);
    } else {
      comm.recv(nullptr, 0, 1, 1);
      std::array<int, 8> vals{};
      for (int i = 0; i < 8; ++i) vals[static_cast<std::size_t>(i)] = i * 3;
      comm.put(1, 42, 0, Payload::copy_of(vals.data(), sizeof vals)).wait();
      comm.send(nullptr, 0, 1, 2);
    }
  });
}

TEST_P(WindowConduit, PutAtOffsetWritesOnlyThatRange) {
  Universe::launch(opts(2), [](RankContext& ctx) {
    Comm comm = ctx.world();
    if (ctx.rank() == 1) {
      std::array<std::byte, 16> region;
      region.fill(std::byte{0xAA});
      Window win = comm.win_create(7, region.data(), region.size());
      comm.send(nullptr, 0, 0, 1);
      comm.recv(nullptr, 0, 0, 2);
      for (std::size_t i = 0; i < 16; ++i) {
        const std::byte want = (i >= 4 && i < 8) ? std::byte{0x55}
                                                 : std::byte{0xAA};
        EXPECT_EQ(region[i], want) << "byte " << i;
      }
    } else {
      comm.recv(nullptr, 0, 1, 1);
      std::array<std::byte, 4> patch;
      patch.fill(std::byte{0x55});
      comm.put(1, 7, 4, Payload::copy_of(patch.data(), patch.size())).wait();
      comm.send(nullptr, 0, 1, 2);
    }
  });
}

TEST_P(WindowConduit, GetRoundTripReadsRemoteWindow) {
  Universe::launch(opts(2), [](RankContext& ctx) {
    Comm comm = ctx.world();
    if (ctx.rank() == 1) {
      std::array<double, 4> region{1.0, 2.0, 4.0, 8.0};
      Window win = comm.win_create(3, region.data(), sizeof region);
      comm.send(nullptr, 0, 0, 1);
      comm.recv(nullptr, 0, 0, 2);  // reader is done
    } else {
      comm.recv(nullptr, 0, 1, 1);
      std::array<double, 4> out{};
      const Status st =
          comm.get(1, 3, 0, out.data(), sizeof out).wait();
      EXPECT_EQ(st.count, sizeof out);
      EXPECT_DOUBLE_EQ(out[0], 1.0);
      EXPECT_DOUBLE_EQ(out[3], 8.0);
      comm.send(nullptr, 0, 1, 2);
    }
  });
}

TEST_P(WindowConduit, FlushOrdersPutsBeforeSubsequentGet) {
  // On a network with real latency: issue several puts, flush (which must
  // wait for every landing ack), then get the region back — the get must
  // observe all the flushed bytes.
  UniverseOptions o = opts(2);
  o.network.latency_ns = 2'000'000;  // 2 ms
  Universe::launch(o, [](RankContext& ctx) {
    Comm comm = ctx.world();
    if (ctx.rank() == 1) {
      std::array<int, 4> region{};
      Window win = comm.win_create(9, region.data(), sizeof region);
      comm.send(nullptr, 0, 0, 1);
      comm.recv(nullptr, 0, 0, 2);
    } else {
      comm.recv(nullptr, 0, 1, 1);
      for (int i = 0; i < 4; ++i) {
        const int v = 100 + i;
        comm.put(1, 9, static_cast<std::uint64_t>(i) * sizeof(int),
                 Payload::copy_of(&v, sizeof v));
      }
      comm.flush(1);  // all four landings acked
      std::array<int, 4> out{};
      comm.get(1, 9, 0, out.data(), sizeof out).wait();
      for (int i = 0; i < 4; ++i) EXPECT_EQ(out[static_cast<std::size_t>(i)], 100 + i);
      comm.send(nullptr, 0, 1, 2);
    }
  });
}

TEST_P(WindowConduit, DuplicateAndOverlappingWindowsRejected) {
  Universe::launch(opts(1), [](RankContext& ctx) {
    Comm comm = ctx.world();
    std::array<std::byte, 64> region{};
    Window a = comm.win_create(1, region.data(), 32);
    // Same id again: rejected.
    EXPECT_THROW(comm.win_create(1, region.data() + 32, 32), WindowError);
    // Different id, overlapping bytes: rejected.
    EXPECT_THROW(comm.win_create(2, region.data() + 16, 32), WindowError);
    // Disjoint region under a fresh id: fine.
    Window b = comm.win_create(3, region.data() + 32, 32);
    // Releasing frees the region for re-registration.
    a.release();
    Window c = comm.win_create(4, region.data(), 32);
  });
}

TEST_P(WindowConduit, PutToUnknownWindowIsDroppedButAcked) {
  Universe::launch(opts(2), [](RankContext& ctx) {
    Comm comm = ctx.world();
    if (ctx.rank() == 0) {
      const int v = 13;
      // No such window on rank 1: the bytes are dropped at delivery, but
      // the operation still completes (like a payload for a cancelled
      // receive) — it must not hang the origin.
      const Status st =
          comm.put(1, 777, 0, Payload::copy_of(&v, sizeof v)).wait();
      EXPECT_EQ(st.source, 1);
    }
    comm.barrier();
  });
}

TEST_P(WindowConduit, GetFromUnknownWindowReadsShort) {
  Universe::launch(opts(2), [](RankContext& ctx) {
    Comm comm = ctx.world();
    if (ctx.rank() == 0) {
      std::uint64_t sentinel = 0xDEADBEEF;
      const Status st = comm.get(1, 777, 0, &sentinel, sizeof sentinel).wait();
      EXPECT_EQ(st.count, 0u);                 // short read: nothing exposed
      EXPECT_EQ(sentinel, 0xDEADBEEF);         // buffer untouched
    }
    comm.barrier();
  });
}

TEST_P(WindowConduit, SelfPutIsLocalAndImmediate) {
  Universe::launch(opts(1), [](RankContext& ctx) {
    Comm comm = ctx.world();
    std::array<int, 2> region{};
    Window win = comm.win_create(5, region.data(), sizeof region);
    const std::array<int, 2> vals{21, 34};
    comm.put(0, 5, 0, Payload::copy_of(vals.data(), sizeof vals)).wait();
    EXPECT_EQ(region[0], 21);
    EXPECT_EQ(region[1], 34);
  });
}

TEST_P(WindowConduit, KilledRankFailsItsPendingPuts) {
  // A put toward a corpse must complete exceptionally, not hang; and the
  // target's memory keeps its previous generation — the killed origin's
  // bytes never land.
  Universe::launch(opts(2), [](RankContext& ctx) {
    Comm comm = ctx.world();
    if (ctx.rank() == 0) {
      ctx.universe().kill_rank(1, 0);
      while (!ctx.universe().is_dead(1))
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      const int v = 1;
      try {
        comm.put(1, 11, 0, Payload::copy_of(&v, sizeof v)).wait();
        FAIL() << "put toward a dead rank must not complete";
      } catch (const RankKilledError& e) {
        EXPECT_EQ(e.rank(), 1);
      }
    }
    // Rank 1's thread unwinds via its poisoned mailbox.
  });
}

TEST_P(WindowConduit, OriginDeathLeavesTargetGenerationIntact) {
  Universe::launch(opts(2), [](RankContext& ctx) {
    Comm comm = ctx.world();
    if (ctx.rank() == 1) {
      std::array<int, 4> region{7, 7, 7, 7};  // the committed generation
      Window win = comm.win_create(6, region.data(), sizeof region);
      ctx.universe().kill_rank(0, 0);
      while (!ctx.universe().is_dead(0))
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      // Give a (dropped) posthumous put every chance to arrive, then check
      // nothing overwrote the committed bytes.
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      for (int i = 0; i < 4; ++i) EXPECT_EQ(region[static_cast<std::size_t>(i)], 7);
    } else {
      // Rank 0 tries to put after its own death: the post is dropped and
      // the operation fails locally.
      while (!ctx.universe().is_dead(0))
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      const std::array<int, 4> vals{9, 9, 9, 9};
      EXPECT_THROW(
          comm.put(1, 6, 0, Payload::copy_of(vals.data(), sizeof vals)).wait(),
          RankKilledError);
    }
  });
}

TEST_P(WindowConduit, WindowCountTracksRegistrations) {
  Universe::launch(opts(1), [](RankContext& ctx) {
    Comm comm = ctx.world();
    auto& reg = ctx.universe().windows();
    EXPECT_EQ(reg.count(0), 0u);
    std::array<std::byte, 8> a{}, b{};
    {
      Window wa = comm.win_create(1, a.data(), a.size());
      Window wb = comm.win_create(2, b.data(), b.size());
      EXPECT_EQ(reg.count(0), 2u);
    }
    EXPECT_EQ(reg.count(0), 0u);  // RAII released both
  });
}

// --- persistent (pre-armed) one-sided puts -------------------------------

TEST_P(WindowConduit, PutInitRearmsAndLandsEachCycle) {
  // One put_init cycled many times into the same pre-resolved window:
  // every cycle's bytes must land before wait() returns, with no slot
  // re-registration between cycles.
  Universe::launch(opts(2), [](RankContext& ctx) {
    Comm comm = ctx.world();
    constexpr int kCycles = 8;
    if (ctx.rank() == 1) {
      std::array<int, 4> region{};
      Window win = comm.win_create(33, region.data(), sizeof region);
      comm.send(nullptr, 0, 0, 1);  // window is up
      for (int cyc = 0; cyc < kCycles; ++cyc) {
        comm.recv(nullptr, 0, 0, 2);  // cycle flushed
        for (int i = 0; i < 4; ++i)
          EXPECT_EQ(region[static_cast<std::size_t>(i)], cyc * 10 + i);
        comm.send(nullptr, 0, 0, 3);  // checked, go again
      }
    } else {
      comm.recv(nullptr, 0, 1, 1);
      std::array<int, 4> vals{};
      PersistentRequest put =
          comm.put_init(1, 33, 0, vals.data(), sizeof vals);
      for (int cyc = 0; cyc < kCycles; ++cyc) {
        for (int i = 0; i < 4; ++i)
          vals[static_cast<std::size_t>(i)] = cyc * 10 + i;
        put.start();
        put.wait();  // remote completion: the bytes have landed
        comm.send(nullptr, 0, 1, 2);
        comm.recv(nullptr, 0, 1, 3);
      }
      EXPECT_EQ(put.cycles(), kCycles);
    }
  });
}

TEST_P(WindowConduit, PutInitToUnknownWindowFailsFast) {
  // Unlike a transient put (dropped-but-acked), a persistent channel to a
  // window that does not exist is a setup error — fail at creation, not
  // silently on every cycle.
  Universe::launch(opts(2), [](RankContext& ctx) {
    Comm comm = ctx.world();
    if (ctx.rank() == 0) {
      int v = 0;
      EXPECT_THROW(comm.put_init(1, 999, 0, &v, sizeof v), WindowError);
    }
  });
}

TEST_P(WindowConduit, KilledTargetFailsPersistentPutCycles) {
  // The target dies after the channel is created: the next cycle completes
  // exceptionally (like a transient put toward a corpse) and the channel
  // stays dead for subsequent start() calls.
  Universe::launch(opts(2), [](RankContext& ctx) {
    Comm comm = ctx.world();
    if (ctx.rank() == 0) {
      comm.recv(nullptr, 0, 1, 1);  // window is up
      int v = 5;
      PersistentRequest put = comm.put_init(1, 11, 0, &v, sizeof v);
      ctx.universe().kill_rank(1, 0);
      while (!ctx.universe().is_dead(1))
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      try {
        put.start();
        put.wait();
        FAIL() << "a put cycle toward a dead rank must not complete";
      } catch (const RankKilledError& e) {
        EXPECT_EQ(e.rank(), 1);
      }
      EXPECT_THROW(put.start(), RankKilledError);  // sticky
    } else {
      std::array<int, 4> region{};
      Window win = comm.win_create(11, region.data(), sizeof region);
      comm.send(nullptr, 0, 0, 1);
      // Keep the window registered until the kill lands (RAII would
      // unregister it the moment this body returns).
      while (!ctx.universe().is_dead(1))
        std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Conduits, WindowConduit,
                         ::testing::Values(ConduitKind::InProcess,
                                           ConduitKind::Shm),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

}  // namespace
}  // namespace ompc::mpi
