// Task Bench command line: run any dependency pattern on any runtime, the
// way the paper's OMPC Bench tool drives its experiments (§6.1).
//
// Usage:
//   taskbench_cli [--runtime ompc|mpi|starpu|charm|seq] [--pattern NAME]
//                 [--steps N] [--width N] [--nodes N] [--iters N]
//                 [--ccr X] [--busy] [--show-pattern]
#include <cstdio>
#include <cstring>
#include <string>

#include "taskbench/kernel.hpp"
#include "taskbench/runners.hpp"

int main(int argc, char** argv) {
  using namespace ompc::taskbench;

  std::string runtime = "ompc";
  TaskBenchSpec spec;
  spec.steps = 8;
  spec.width = 8;
  spec.iterations = 100'000;  // 0.5 ms per task
  int nodes = 4;
  double ccr = 0.0;
  bool show = false;

  for (int a = 1; a < argc; ++a) {
    auto next = [&]() -> const char* {
      return a + 1 < argc ? argv[++a] : "";
    };
    if (!std::strcmp(argv[a], "--runtime")) runtime = next();
    else if (!std::strcmp(argv[a], "--pattern"))
      spec.pattern = pattern_from_name(next());
    else if (!std::strcmp(argv[a], "--steps")) spec.steps = std::atoi(next());
    else if (!std::strcmp(argv[a], "--width")) spec.width = std::atoi(next());
    else if (!std::strcmp(argv[a], "--nodes")) nodes = std::atoi(next());
    else if (!std::strcmp(argv[a], "--iters"))
      spec.iterations = std::atoll(next());
    else if (!std::strcmp(argv[a], "--ccr")) ccr = std::atof(next());
    else if (!std::strcmp(argv[a], "--busy")) spec.mode = KernelMode::Busy;
    else if (!std::strcmp(argv[a], "--show-pattern")) show = true;
    else {
      std::fprintf(stderr, "unknown flag %s\n", argv[a]);
      return 2;
    }
  }

  if (show) {
    std::fputs(render_pattern(spec.pattern, std::min(spec.width, 8),
                              std::min(spec.steps, 4))
                   .c_str(),
               stdout);
    return 0;
  }

  ompc::mpi::NetworkModel net{20'000, 100.0e6, 8};  // dilated IB-ish link
  if (ccr > 0.0) spec.output_bytes = bytes_for_ccr(spec.task_seconds(), ccr, net);

  std::printf("runtime=%s pattern=%s graph=%dx%d nodes=%d task=%.2fms "
              "bytes/task=%zu\n",
              runtime.c_str(), pattern_name(spec.pattern), spec.steps,
              spec.width, nodes, spec.task_seconds() * 1e3,
              spec.output_bytes);

  const RunResult r = run_named(runtime, spec, nodes, net);
  const bool ok = r.checksum == expected_checksum(spec);
  std::printf("wall=%.3fs messages=%lld checksum=%016llx %s\n", r.wall_s,
              static_cast<long long>(r.messages),
              static_cast<unsigned long long>(r.checksum),
              ok ? "VALID" : "INVALID");
  if (runtime == "ompc") {
    std::printf("  events=%lld submits=%lld exchanges=%lld retrieves=%lld "
                "bytes=%lld sched=%.2fms makespan-est=%.3fs\n",
                static_cast<long long>(r.stats.events_originated),
                static_cast<long long>(r.stats.submits),
                static_cast<long long>(r.stats.exchanges),
                static_cast<long long>(r.stats.retrieves),
                static_cast<long long>(r.stats.bytes_moved),
                ompc::ns_to_ms(r.stats.schedule_ns),
                r.stats.makespan_estimate_s);
  }
  return ok ? 0 : 1;
}
