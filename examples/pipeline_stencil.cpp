// Pipeline stencil example: blocked 1D heat diffusion where each block is a
// target task and halo coupling is expressed purely through depend()
// clauses — the Data Manager forwards halos worker-to-worker (§4.3), no
// explicit communication in user code.
//
// Usage: ./build/examples/pipeline_stencil [blocks] [iters] [workers]
#include <cmath>
#include <cstdio>
#include <vector>

#include "core/runtime.hpp"

namespace {

using ompc::offload::KernelContext;
using ompc::offload::KernelRegistry;

constexpr int kBlockSize = 4096;

// buffers[0] = output block, buffers[1] = input block, buffers[2]/[3] =
// left/right input neighbours (optional, flag in scalars).
const ompc::offload::KernelId kDiffuse =
    KernelRegistry::instance().register_kernel(
        "diffuse_block", [](KernelContext& ctx) {
          auto r = ctx.scalars();
          const auto n = r.get<std::uint64_t>();
          const auto has_left = r.get<std::uint8_t>();
          const auto has_right = r.get<std::uint8_t>();
          const auto alpha = r.get<double>();

          double* out = ctx.buffer<double>(0);
          const double* in = ctx.buffer<double>(1);
          std::size_t next = 2;
          const double* left =
              has_left ? ctx.buffer<double>(next++) : nullptr;
          const double* right =
              has_right ? ctx.buffer<double>(next++) : nullptr;

          auto at = [&](std::int64_t i) -> double {
            if (i < 0) return left ? left[n - 1] : in[0];
            if (i >= static_cast<std::int64_t>(n))
              return right ? right[0] : in[n - 1];
            return in[i];
          };
          for (std::uint64_t i = 0; i < n; ++i) {
            const auto s = static_cast<std::int64_t>(i);
            out[i] = at(s) + alpha * (at(s - 1) - 2.0 * at(s) + at(s + 1));
          }
        });

/// Serial reference for validation.
std::vector<double> reference(std::vector<double> u, int iters,
                              double alpha) {
  std::vector<double> next(u.size());
  for (int it = 0; it < iters; ++it) {
    for (std::size_t i = 0; i < u.size(); ++i) {
      const double l = i > 0 ? u[i - 1] : u[0];
      const double rgt = i + 1 < u.size() ? u[i + 1] : u[u.size() - 1];
      next[i] = u[i] + alpha * (l - 2.0 * u[i] + rgt);
    }
    std::swap(u, next);
  }
  return u;
}

}  // namespace

int main(int argc, char** argv) {
  const int blocks = argc > 1 ? std::atoi(argv[1]) : 8;
  const int iters = argc > 2 ? std::atoi(argv[2]) : 10;
  const int workers = argc > 3 ? std::atoi(argv[3]) : 4;
  const double alpha = 0.4;

  // Initial condition: a hot spike in the middle.
  std::vector<double> init(static_cast<std::size_t>(blocks) * kBlockSize,
                           0.0);
  init[init.size() / 2] = 1000.0;

  // Ping-pong block storage.
  std::vector<std::vector<std::vector<double>>> rows(2);
  for (auto& row : rows) {
    row.resize(static_cast<std::size_t>(blocks));
    for (int b = 0; b < blocks; ++b)
      row[static_cast<std::size_t>(b)].assign(kBlockSize, 0.0);
  }
  for (int b = 0; b < blocks; ++b) {
    std::copy(init.begin() + b * kBlockSize,
              init.begin() + (b + 1) * kBlockSize,
              rows[0][static_cast<std::size_t>(b)].begin());
  }

  ompc::core::ClusterOptions opts;
  opts.num_workers = workers;

  ompc::core::launch(opts, [&](ompc::core::Runtime& rt) {
    for (auto& row : rows)
      for (auto& blk : row)
        rt.enter_data(blk.data(), blk.size() * sizeof(double));

    for (int it = 0; it < iters; ++it) {
      auto& in = rows[static_cast<std::size_t>(it % 2)];
      auto& out = rows[static_cast<std::size_t>((it + 1) % 2)];
      for (int b = 0; b < blocks; ++b) {
        ompc::core::Args args;
        ompc::omp::DepList deps;
        args.buf(out[static_cast<std::size_t>(b)].data());
        deps.push_back(
            ompc::omp::inout(out[static_cast<std::size_t>(b)].data()));
        args.buf(in[static_cast<std::size_t>(b)].data());
        deps.push_back(
            ompc::omp::in(in[static_cast<std::size_t>(b)].data()));
        const bool has_left = b > 0;
        const bool has_right = b + 1 < blocks;
        if (has_left) {
          args.buf(in[static_cast<std::size_t>(b - 1)].data());
          deps.push_back(
              ompc::omp::in(in[static_cast<std::size_t>(b - 1)].data()));
        }
        if (has_right) {
          args.buf(in[static_cast<std::size_t>(b + 1)].data());
          deps.push_back(
              ompc::omp::in(in[static_cast<std::size_t>(b + 1)].data()));
        }
        args.scalar<std::uint64_t>(kBlockSize)
            .scalar<std::uint8_t>(has_left)
            .scalar<std::uint8_t>(has_right)
            .scalar(alpha);
        rt.target(std::move(deps), kDiffuse, std::move(args));
      }
    }

    const auto final_row = static_cast<std::size_t>(iters % 2);
    for (std::size_t p = 0; p < 2; ++p)
      for (auto& blk : rows[p]) rt.exit_data(blk.data(), p == final_row);
  });

  // Validate against the serial reference.
  const std::vector<double> expect = reference(init, iters, alpha);
  const auto& got_row = rows[static_cast<std::size_t>(iters % 2)];
  double max_err = 0.0;
  for (int b = 0; b < blocks; ++b) {
    for (int i = 0; i < kBlockSize; ++i) {
      const double got = got_row[static_cast<std::size_t>(b)]
                                [static_cast<std::size_t>(i)];
      const double want =
          expect[static_cast<std::size_t>(b) * kBlockSize +
                 static_cast<std::size_t>(i)];
      max_err = std::max(max_err, std::abs(got - want));
    }
  }
  std::printf("blocked heat diffusion: %d blocks x %d cells, %d iters on %d "
              "workers\n",
              blocks, kBlockSize, iters, workers);
  std::printf("max error vs serial reference: %.3e -> %s\n", max_err,
              max_err < 1e-12 ? "OK" : "WRONG");
  return max_err < 1e-12 ? 0 : 1;
}
