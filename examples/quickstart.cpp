// Quickstart: SAXPY on a simulated OMPC cluster.
//
// The OpenMP program this mirrors (paper Listing 1 style):
//
//   #pragma omp target enter data map(to: x[:N], y[:N]) nowait ...
//           ... depend(out: *x) depend(out: *y)
//   #pragma omp target nowait depend(in: *x) depend(inout: *y)
//   { for (i...) y[i] += a * x[i]; }
//   #pragma omp target exit data map(from: y[:N]) nowait depend(inout: *y)
//   // implicit barrier
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>
#include <vector>

#include "core/runtime.hpp"

namespace {

using ompc::offload::KernelContext;
using ompc::offload::KernelRegistry;

// The "device code": registered once, looked up by the runtime when an
// execute event reaches a worker (the fat-binary stand-in).
const ompc::offload::KernelId kSaxpy =
    KernelRegistry::instance().register_kernel("saxpy", [](KernelContext& ctx) {
      const float* x = ctx.buffer<float>(0);
      float* y = ctx.buffer<float>(1);
      auto r = ctx.scalars();
      const auto n = r.get<std::uint64_t>();
      const auto a = r.get<float>();
      // Second level of parallelism: this loop runs on the worker node's
      // local thread pool.
      ctx.parallel_for(0, static_cast<std::int64_t>(n), 1024,
                       [&](std::int64_t lo, std::int64_t hi) {
                         for (std::int64_t i = lo; i < hi; ++i)
                           y[i] += a * x[i];
                       });
    });

}  // namespace

int main() {
  constexpr std::uint64_t kN = 1 << 16;
  constexpr float kA = 2.5f;
  std::vector<float> x(kN), y(kN);
  for (std::uint64_t i = 0; i < kN; ++i) {
    x[i] = static_cast<float>(i % 100);
    y[i] = 1.0f;
  }

  ompc::core::ClusterOptions opts;
  opts.num_workers = 4;

  const ompc::core::RuntimeStats stats =
      ompc::core::launch(opts, [&](ompc::core::Runtime& rt) {
        rt.enter_data(x.data(), kN * sizeof(float));
        rt.enter_data(y.data(), kN * sizeof(float));
        rt.target({ompc::omp::in(x.data()), ompc::omp::inout(y.data())},
                  kSaxpy,
                  ompc::core::Args().buf(x.data()).buf(y.data())
                      .scalar(kN).scalar(kA));
        rt.exit_data(y.data());
        rt.exit_data(x.data(), /*copy=*/false);
      });

  // Verify on the host.
  std::uint64_t wrong = 0;
  for (std::uint64_t i = 0; i < kN; ++i) {
    const float expect = 1.0f + kA * static_cast<float>(i % 100);
    if (y[i] != expect) ++wrong;
  }

  std::printf("saxpy over %llu elements on %d workers: %s\n",
              static_cast<unsigned long long>(kN), opts.num_workers,
              wrong == 0 ? "OK" : "WRONG");
  std::printf("  wall %.2f ms | %lld events | %lld bytes moved | %lld msgs\n",
              ompc::ns_to_ms(stats.wall_ns),
              static_cast<long long>(stats.events_originated),
              static_cast<long long>(stats.bytes_moved),
              static_cast<long long>(stats.messages_sent));
  return wrong == 0 ? 0 : 1;
}
