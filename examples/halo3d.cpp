// 3D halo-exchange example: a periodic grid of cubic subdomains advanced by
// a 7-point stencil, each iteration two target tasks per subdomain (pack
// the six boundary faces, then update from the facing neighbor faces). The
// iteration structure never changes, so steady state runs entirely on the
// schedule cache — with persistent channels on (the default) the runtime
// pre-posts the wave's receives and pre-arms its one-sided puts instead of
// renegotiating them every iteration.
//
// Usage: ./build/halo3d [nx ny nz] [cells] [iters] [workers] [transient]
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/time.hpp"
#include "halo/halo3d.hpp"

int main(int argc, char** argv) {
  ompc::halo::HaloSpec spec;
  spec.nx = argc > 1 ? std::atoi(argv[1]) : 2;
  spec.ny = argc > 2 ? std::atoi(argv[2]) : 2;
  spec.nz = argc > 3 ? std::atoi(argv[3]) : 2;
  spec.cells = argc > 4 ? std::atoi(argv[4]) : 8;
  spec.iters = argc > 5 ? std::atoi(argv[5]) : 10;
  const int workers = argc > 6 ? std::atoi(argv[6]) : 4;
  const bool transient = argc > 7 && std::strcmp(argv[7], "transient") == 0;

  ompc::core::ClusterOptions opts;
  opts.num_workers = workers;
  opts.persistent_channels = !transient;

  const ompc::halo::HaloResult r = ompc::halo::run_halo3d(opts, spec);
  const std::uint64_t want = ompc::halo::serial_checksum(spec);

  std::printf("halo3d: %dx%dx%d subdomains of %d^3 cells, %d iters on %d "
              "workers (%s channels)\n",
              spec.nx, spec.ny, spec.nz, spec.cells, spec.iters, workers,
              transient ? "transient" : "persistent");
  double mean_ms = 0.0;
  for (const std::int64_t ns : r.iter_ns) mean_ms += ompc::ns_to_ms(ns);
  if (!r.iter_ns.empty()) mean_ms /= static_cast<double>(r.iter_ns.size());
  std::printf("mean iteration %.2f ms; %lld waves from the schedule cache, "
              "%lld armed, %lld allocation re-uses, %lld messages\n",
              mean_ms, static_cast<long long>(r.stats.schedule_cache_hits),
              static_cast<long long>(r.stats.channels_armed),
              static_cast<long long>(r.stats.persistent_reuses),
              static_cast<long long>(r.stats.messages_sent));
  std::printf("checksum %016llx vs serial %016llx -> %s\n",
              static_cast<unsigned long long>(r.checksum),
              static_cast<unsigned long long>(want),
              r.checksum == want ? "OK" : "WRONG");
  return r.checksum == want ? 0 : 1;
}
