// Map-reduce example: Monte Carlo estimation of pi with independent target
// tasks (the embarrassingly parallel end of the spectrum — what OMPC's
// HEFT scheduler spreads perfectly) and a host task doing the reduction on
// the head node, ordered by dependences.
//
// Usage: ./build/examples/montecarlo_pi [tasks] [samples-per-task] [workers]
#include <cstdio>
#include <vector>

#include "common/rng.hpp"
#include "core/runtime.hpp"

namespace {

using ompc::offload::KernelContext;
using ompc::offload::KernelRegistry;

// buffers[0] = uint64 hit counter; scalars = {seed, samples}.
const ompc::offload::KernelId kDarts =
    KernelRegistry::instance().register_kernel(
        "mc_darts", [](KernelContext& ctx) {
          auto r = ctx.scalars();
          const auto seed = r.get<std::uint64_t>();
          const auto samples = r.get<std::uint64_t>();
          ompc::XorShift64 rng(seed);
          std::uint64_t hits = 0;
          for (std::uint64_t s = 0; s < samples; ++s) {
            const double x = rng.next_double() * 2.0 - 1.0;
            const double y = rng.next_double() * 2.0 - 1.0;
            if (x * x + y * y <= 1.0) ++hits;
          }
          *ctx.buffer<std::uint64_t>(0) = hits;
        });

}  // namespace

int main(int argc, char** argv) {
  const int tasks = argc > 1 ? std::atoi(argv[1]) : 32;
  const std::uint64_t samples = argc > 2 ? std::strtoull(argv[2], nullptr, 10)
                                         : 200'000;
  const int workers = argc > 3 ? std::atoi(argv[3]) : 4;

  std::vector<std::uint64_t> hits(static_cast<std::size_t>(tasks), 0);
  std::uint64_t total_hits = 0;

  ompc::core::ClusterOptions opts;
  opts.num_workers = workers;

  ompc::core::launch(opts, [&](ompc::core::Runtime& rt) {
    for (int t = 0; t < tasks; ++t) {
      auto* slot = &hits[static_cast<std::size_t>(t)];
      rt.enter_data(slot, sizeof *slot);
      rt.target({ompc::omp::inout(slot)}, kDarts,
                ompc::core::Args().buf(slot)
                    .scalar<std::uint64_t>(0x9000 + t)
                    .scalar(samples));
      rt.exit_data(slot);
    }
    // Reduction as a classical `task`: pinned to the head (§4.4), ordered
    // after every exit-data via its depend list.
    ompc::omp::DepList deps;
    for (auto& h : hits) deps.push_back(ompc::omp::in(&h));
    rt.host_task(
        [&] {
          for (std::uint64_t h : hits) total_hits += h;
        },
        std::move(deps));
  });

  const double total =
      static_cast<double>(samples) * static_cast<double>(tasks);
  const double pi = 4.0 * static_cast<double>(total_hits) / total;
  std::printf("pi ~ %.6f from %.0f samples over %d tasks on %d workers "
              "(error %.2e)\n",
              pi, total, tasks, workers, std::abs(pi - 3.14159265358979));
  return std::abs(pi - 3.14159265358979) < 0.01 ? 0 : 1;
}
