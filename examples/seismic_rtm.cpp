// Seismic imaging example: Reverse Time Migration of a synthetic survey
// distributed over an OMPC cluster, one shot per target task (the paper's
// Awave experiment, §6.2 / Fig. 7b).
//
// Usage: ./build/examples/seismic_rtm [sigsbee|marmousi] [shots] [workers]
#include <cstdio>
#include <cstring>
#include <string>

#include "awave/driver.hpp"

namespace {

/// Coarse ASCII rendering of the migrated image: reflectors show up as
/// high-amplitude bands.
void render(const ompc::awave::Image& img, int nx, int nz) {
  const char* shades = " .:-=+*#%@";
  float peak = 1e-30f;
  for (float v : img) peak = std::max(peak, std::abs(v));
  const int cols = 72, rows = 24;
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      const int x = c * nx / cols;
      const int z = r * nz / rows;
      const float v =
          std::abs(img[static_cast<std::size_t>(z) * nx + x]) / peak;
      const int shade = std::min(9, static_cast<int>(v * 30.0f));
      std::putchar(shades[shade]);
    }
    std::putchar('\n');
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::string model_name = argc > 1 ? argv[1] : "sigsbee";
  const int shots = argc > 2 ? std::atoi(argv[2]) : 4;
  const int workers = argc > 3 ? std::atoi(argv[3]) : 4;

  ompc::awave::AwaveConfig cfg;
  cfg.model = model_name == "marmousi"
                  ? ompc::awave::marmousi_like(192, 96)
                  : ompc::awave::sigsbee_like(192, 96);
  cfg.params.nt = 700;
  cfg.params.f_peak = 16.0f;
  cfg.params.sponge = 16;
  cfg.shots = shots;

  ompc::core::ClusterOptions opts;
  opts.num_workers = workers;

  std::printf("migrating %d shot(s) of the %s-like model (%dx%d) on %d "
              "workers...\n",
              shots, model_name.c_str(), cfg.model.nx, cfg.model.nz, workers);
  const ompc::awave::AwaveResult result =
      ompc::awave::migrate_ompc(cfg, opts);

  std::printf("done in %.2f s (image RMS %.3e)\n", result.wall_s,
              ompc::awave::image_rms(result.image));
  std::printf("events=%lld exchanges=%lld bytes=%lld\n",
              static_cast<long long>(result.stats.events_originated),
              static_cast<long long>(result.stats.exchanges),
              static_cast<long long>(result.stats.bytes_moved));
  render(result.image, cfg.model.nx, cfg.model.nz);
  return 0;
}
